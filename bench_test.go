// Package multiflip_test benchmarks regenerate every table and figure of
// the paper at reduced scale (program subsets, small per-campaign N), so
// `go test -bench=.` demonstrates each experiment end to end and reports
// its headline metric. cmd/study regenerates everything at full scale.
package multiflip_test

import (
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/ir"
	"multiflip/internal/memfault"
	"multiflip/internal/prog"
	"multiflip/internal/study"
	"multiflip/internal/vm"
)

// benchProgs is the subset used by the per-figure benchmarks: one
// high-detection program (qsort), one low-detection/high-SDC outlier
// (CRC32), and one float-heavy kernel (FFT).
var benchProgs = []string{"qsort", "CRC32", "FFT"}

const benchN = 60 // experiments per campaign inside benchmarks

func runStudy(b *testing.B, progs []string, maxMBFs []int, wins []core.WinSize) *study.Study {
	b.Helper()
	s, err := study.Run(study.Options{
		N:        benchN,
		Seed:     1,
		Programs: progs,
		MaxMBFs:  maxMBFs,
		WinSizes: wins,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTableI regenerates Table I (the parameter grid).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := study.TableI().Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates Table II: builds and profiles all 15
// benchmark programs and renders their candidate counts.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var total uint64
		for _, bench := range prog.All() {
			p, err := bench.Build()
			if err != nil {
				b.Fatal(err)
			}
			t, err := core.NewTarget(bench.Name, p)
			if err != nil {
				b.Fatal(err)
			}
			total += t.ReadCands
		}
		if total == 0 {
			b.Fatal("no candidates profiled")
		}
	}
}

// BenchmarkFigure1 regenerates Fig 1: single bit-flip outcome
// classification for both techniques.
func BenchmarkFigure1(b *testing.B) {
	var sdc float64
	for i := 0; i < b.N; i++ {
		s := runStudy(b, benchProgs, []int{2}, []core.WinSize{core.Win(0)})
		for _, tech := range core.Techniques() {
			if err := s.Figure1(tech).Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		sdc = s.Data["CRC32"].Single[core.InjectOnWrite].SDCPct()
	}
	b.ReportMetric(sdc, "CRC32-write-SDC%")
}

// BenchmarkFigure2 regenerates Fig 2: the same-register (win-size = 0)
// max-MBF sweep for both techniques.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runStudy(b, benchProgs, core.StandardMaxMBF(), []core.WinSize{core.Win(0)})
		for _, tech := range core.Techniques() {
			if err := s.Figure2(tech).Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure3 regenerates Fig 3: the activated-error distribution at
// max-MBF = 30 over the full win-size grid.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runStudy(b, benchProgs, []int{30}, core.StandardWinSizes())
		for _, tech := range core.Techniques() {
			if err := s.Figure3(tech).Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure4 regenerates Fig 4: the multi-register SDC grid for
// inject-on-read (max-MBF sweep over two window clusters).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runStudy(b, benchProgs, core.StandardMaxMBF(),
			[]core.WinSize{core.Win(1), core.Win(100)})
		if err := s.Figure45(core.InjectOnRead).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates Fig 5: as Fig 4 for inject-on-write.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runStudy(b, benchProgs, core.StandardMaxMBF(),
			[]core.WinSize{core.Win(1), core.Win(100)})
		if err := s.Figure45(core.InjectOnWrite).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates Table III: the per-program argmax
// configuration search over a multi-register grid.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runStudy(b, benchProgs, []int{2, 3},
			[]core.WinSize{core.Win(1), core.Win(4), core.WinRange(11, 100)})
		t, err := s.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIV regenerates Table IV (and exercises the Fig 6
// transition machinery): recorded single-bit campaigns, pinned multi-bit
// reruns, transition likelihoods.
func BenchmarkTableIV(b *testing.B) {
	var tranI float64
	for i := 0; i < b.N; i++ {
		s := runStudy(b, benchProgs, []int{2, 3},
			[]core.WinSize{core.Win(1), core.Win(4)})
		trans, err := s.RunTransitions()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.TableIV(trans).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		tranI = trans["qsort"][core.InjectOnRead].TranI
	}
	b.ReportMetric(tranI, "qsort-read-TranI%")
}

// BenchmarkRQAnswers regenerates the research-question summary over a
// reduced grid.
func BenchmarkRQAnswers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runStudy(b, benchProgs, []int{2, 30},
			[]core.WinSize{core.Win(0), core.Win(1), core.Win(100)})
		if err := s.Answers(nil).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHangFactor measures the hang-budget sensitivity study.
func BenchmarkAblationHangFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := study.HangFactorAblation("histo", core.InjectOnRead, benchN, 1,
			[]uint64{2, 10, 100})
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAlignment measures the misaligned-trap ablation.
func BenchmarkAblationAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := study.AlignmentAblation("CRC32", core.InjectOnWrite, benchN, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemFaultSweep regenerates the memory-word multi-bit fault
// extension table (the paper's future work, §V).
func BenchmarkMemFaultSweep(b *testing.B) {
	bench, err := prog.ByName("CRC32")
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := memfault.SweepTable(target, []int{1, 3, 8}, benchN, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMGoldenRun measures raw VM throughput on fault-free runs of
// three differently shaped workloads, under the default configuration:
// compiled fast-tier kernels between event horizons, token-threaded
// dispatch with superinstruction fusion everywhere else.
func BenchmarkVMGoldenRun(b *testing.B) {
	benchVMGoldenRun(b, vm.Options{})
}

// BenchmarkVMGoldenRunNoCompile is the compiled-tier ablation: the same
// runs forced onto the token-threaded interpreter, isolating the
// fast-tier share of the speedup. The compiled-tier differential tests
// guarantee both variants produce bit-identical results.
func BenchmarkVMGoldenRunNoCompile(b *testing.B) {
	benchVMGoldenRun(b, vm.Options{NoCompile: true})
}

// BenchmarkVMGoldenRunNoFuse is the dispatch ablation: the compiled tier
// off and superinstructions disabled too, isolating the fusion share.
// (The compiled tier would otherwise mask fusion entirely on these
// kernel-covered workloads.)
func BenchmarkVMGoldenRunNoFuse(b *testing.B) {
	benchVMGoldenRun(b, vm.Options{NoCompile: true, NoFuse: true})
}

func benchVMGoldenRun(b *testing.B, opts vm.Options) {
	for _, name := range []string{"CRC32", "FFT", "susan_smoothing"} {
		bench, err := prog.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		p, err := bench.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var dyn uint64
			for i := 0; i < b.N; i++ {
				res, err := vm.Run(p, opts)
				if err != nil {
					b.Fatal(err)
				}
				dyn = res.Dyn
			}
			b.ReportMetric(float64(dyn)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkCampaignSnapshot measures one Table I campaign (qsort,
// inject-on-read, single-bit) with golden-run snapshot fast-forwarding
// and convergence-gated early termination, against the baselines below.
// The differential tests guarantee all variants produce bit-identical
// results; the deltas here are pure wall-clock.
func BenchmarkCampaignSnapshot(b *testing.B) {
	benchCampaignSnapshot(b, false, false)
}

// BenchmarkCampaignNoSnapshot is the full-replay baseline for
// BenchmarkCampaignSnapshot.
func BenchmarkCampaignNoSnapshot(b *testing.B) {
	benchCampaignSnapshot(b, true, false)
}

// BenchmarkCampaignNoConverge is the convergence/memo ablation: snapshot
// fast-forwarding stays on, but every experiment runs its post-injection
// tail to completion. The delta against BenchmarkCampaignSnapshot
// isolates the early-termination win.
func BenchmarkCampaignNoConverge(b *testing.B) {
	benchCampaignSnapshot(b, false, true)
}

func benchCampaignSnapshot(b *testing.B, noSnapshots, noConverge bool) {
	bench, err := prog.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		b.Fatal(err)
	}
	const perIter = 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunCampaign(core.CampaignSpec{
			Target:      target,
			Technique:   core.InjectOnRead,
			Config:      core.SingleBit(),
			N:           perIter,
			Seed:        uint64(i),
			NoSnapshots: noSnapshots,
			NoConverge:  noConverge,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(perIter)*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
}

// BenchmarkCampaignLiveness measures the static liveness pruning tier on
// the Table I single-bit campaigns: for qsort (the paper's Table I
// exemplar) and CRC32 (a dead-bit-heavy kernel), both techniques, the
// same campaign runs with the tier on and with it ablated
// (CampaignSpec.NoLiveness). The liveness soundness differential
// guarantees both variants record bit-identical experiments; the delta
// here is pure wall-clock bought by classifying dead-bit flips without
// executing them.
func BenchmarkCampaignLiveness(b *testing.B) {
	for _, name := range []string{"qsort", "CRC32"} {
		bench, err := prog.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		p, err := bench.Build()
		if err != nil {
			b.Fatal(err)
		}
		target, err := core.NewTarget(bench.Name, p)
		if err != nil {
			b.Fatal(err)
		}
		for _, tech := range core.Techniques() {
			for _, ablate := range []bool{false, true} {
				label := "live"
				if ablate {
					label = "noliveness"
				}
				b.Run(fmt.Sprintf("%s/%s/%s", name, tech, label), func(b *testing.B) {
					const perIter = 200
					pruned := 0
					for i := 0; i < b.N; i++ {
						res, err := core.RunCampaign(core.CampaignSpec{
							Target:     target,
							Technique:  tech,
							Config:     core.SingleBit(),
							N:          perIter,
							Seed:       uint64(i),
							NoLiveness: ablate,
						})
						if err != nil {
							b.Fatal(err)
						}
						pruned += res.StaticPruned
					}
					b.ReportMetric(float64(perIter)*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
					b.ReportMetric(100*float64(pruned)/float64(perIter*b.N), "pruned%")
				})
			}
		}
	}
}

// BenchmarkCampaignJournal measures the campaign service's durability
// overhead on the BenchmarkCampaignSnapshot workload: the same campaign
// run through a journal instead of the in-memory fast path. "mem" prices
// the sharded claim/checkpoint protocol alone (in-memory journal);
// "file" adds the checksummed append-only file journal and the shared
// memo file. The resume differential tests guarantee all three paths are
// bit-identical; the deltas here are pure wall-clock.
func BenchmarkCampaignJournal(b *testing.B) {
	bench, err := prog.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		b.Fatal(err)
	}
	const perIter = 200
	service := map[string]func(i int) *core.Service{
		"mem": func(int) *core.Service {
			return &core.Service{Journal: core.NewMemJournal()}
		},
		// Each iteration journals into its own subdirectory: the memo
		// fingerprint is seed-independent by design, so a shared directory
		// would let later iterations ride earlier iterations' memo files
		// and understate the file-backed cost.
		"file": func(i int) *core.Service {
			return &core.Service{Dir: filepath.Join(b.TempDir(), fmt.Sprint(i))}
		},
	}
	for _, name := range []string{"mem", "file"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunCampaign(core.CampaignSpec{
					Target:    target,
					Technique: core.InjectOnRead,
					Config:    core.SingleBit(),
					N:         perIter,
					Seed:      uint64(i),
					Service:   service[name](i),
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(perIter)*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
		})
	}
}

// BenchmarkCampaignThroughput measures end-to-end experiments per second
// of the parallel campaign runner.
func BenchmarkCampaignThroughput(b *testing.B) {
	bench, err := prog.ByName("histo")
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		b.Fatal(err)
	}
	const perIter = 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunCampaign(core.CampaignSpec{
			Target:    target,
			Technique: core.InjectOnRead,
			Config:    core.Config{MaxMBF: 3, Win: core.Win(10)},
			N:         perIter,
			Seed:      uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(perIter)*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
}

// BenchmarkCampaignLargeGlobals runs a register campaign over the named
// megapixel workload (internal/prog, 1 MiB of globals): snapshots restore
// copy-on-write, and the convergence tier hashes only each interval's
// write set — this is the configuration the page-granular design exists
// for. BenchmarkCampaignLargeGlobalsNoConverge is its early-termination
// ablation.
func BenchmarkCampaignLargeGlobals(b *testing.B) {
	benchCampaignLargeGlobals(b, false)
}

// BenchmarkCampaignLargeGlobalsNoConverge is the convergence/memo
// ablation for BenchmarkCampaignLargeGlobals.
func BenchmarkCampaignLargeGlobalsNoConverge(b *testing.B) {
	benchCampaignLargeGlobals(b, true)
}

func benchCampaignLargeGlobals(b *testing.B, noConverge bool) {
	bench, err := prog.ByName("megapixel")
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	target, err := core.NewTargetOpts(bench.Name, p, core.TargetOptions{NoConverge: noConverge})
	if err != nil {
		b.Fatal(err)
	}
	const perIter = 24
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunCampaign(core.CampaignSpec{
			Target:     target,
			Technique:  core.InjectOnRead,
			Config:     core.SingleBit(),
			N:          perIter,
			Seed:       uint64(i),
			NoConverge: noConverge,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(perIter)*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
}

// BenchmarkCampaignBatchClaim ablates the experiment engine's batched
// index claiming on the Table I qsort campaign: batch=1 is the
// pre-engine claim-per-experiment behaviour (one shared atomic bump per
// experiment), batch=16 the engine default. Results are bit-identical
// either way (TestEngineClaimBatchInvariance enforces it); the delta is
// pure claim-counter contention.
func BenchmarkCampaignBatchClaim(b *testing.B) {
	bench, err := prog.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		b.Fatal(err)
	}
	const perIter = 200
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunCampaign(core.CampaignSpec{
					Target:     target,
					Technique:  core.InjectOnRead,
					Config:     core.SingleBit(),
					N:          perIter,
					Seed:       uint64(i),
					ClaimBatch: batch,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(perIter)*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
		})
	}
}

// BenchmarkCampaignStuckAt measures the stuck-at model end to end: the
// persistent-fault extension on the same qsort workload as
// BenchmarkCampaignSnapshot.
func BenchmarkCampaignStuckAt(b *testing.B) {
	bench, err := prog.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		b.Fatal(err)
	}
	const perIter = 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunStuckAt(core.StuckAtSpec{
			Target: target,
			Window: core.Win(100),
			N:      perIter,
			Seed:   uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(perIter)*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
}

// buildCaptureProg builds a synthetic workload over words 64-bit global
// words (a power of two). Every iteration stores to word
// (i*stride)&(words-1): stride 0 confines the write set to one page,
// an odd stride sweeps the whole segment. The per-iteration instruction
// count is independent of both words and stride, so run length is
// constant across configurations.
func buildCaptureProg(words, loops, stride int) (*ir.Program, error) {
	mb := ir.NewModule(fmt.Sprintf("capture-%d-%d", words, stride))
	base := mb.GlobalZero(8 * words)
	f := mb.Func("main", 0)
	acc := f.Let(ir.C(0))
	f.For(ir.C(0), ir.C(uint64(loops)), func(i ir.Reg) {
		w := f.BinW(ir.W64, ir.OpAnd, f.BinW(ir.W64, ir.OpMul, i, ir.C(uint64(stride))), ir.C(uint64(words-1)))
		addr := f.BinW(ir.W64, ir.OpAdd, ir.C(base), f.BinW(ir.W64, ir.OpMul, w, ir.C(8)))
		f.Store64(addr, i, 0)
		f.Mov(acc, f.BinW(ir.W64, ir.OpXor, acc, f.Load64(addr, 0)))
	})
	f.Out64(acc)
	f.RetVoid()
	return mb.Build()
}

// BenchmarkSnapshotCapture measures golden-run checkpoint capture under
// the page-granular copy-on-write representation. The three corners pin
// the scaling claim: capture cost tracks the pages dirtied per interval,
// not the size of the global segment — "256KiB/local" runs at
// "8KiB/local" speed, far below "256KiB/spread", despite both 256KiB
// variants executing identical instruction streams.
func BenchmarkSnapshotCapture(b *testing.B) {
	const loops = 20000
	cases := []struct {
		name   string
		words  int
		stride int
	}{
		{"mem=256KiB/dirty=local", 1 << 15, 0},
		{"mem=256KiB/dirty=spread", 1 << 15, 37},
		{"mem=8KiB/dirty=local", 1 << 10, 0},
	}
	for _, c := range cases {
		p, err := buildCaptureProg(c.words, loops, c.stride)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			snaps := 0
			for i := 0; i < b.N; i++ {
				res, err := vm.Run(p, vm.Options{Checkpoint: 512, MaxSnapshots: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stop != vm.StopReturned {
					b.Fatalf("run stopped with %s", res.Stop)
				}
				snaps = len(res.Snapshots)
			}
			b.ReportMetric(float64(snaps), "snapshots")
		})
	}
}

// BenchmarkCampaignSupervised pins the cost of the supervised execution
// layer on the healthy path: the recover scope, the tier ladder and the
// failure-policy bookkeeping every experiment now runs through. Both
// policies execute identical work when nothing fails, so the two
// sub-benchmarks should sit within noise of each other and of the
// pre-supervision engine — a spread here means supervision overhead
// leaked into the per-experiment path.
func BenchmarkCampaignSupervised(b *testing.B) {
	bench, err := prog.ByName("CRC32")
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		b.Fatal(err)
	}
	for _, tt := range []struct {
		name   string
		policy core.FailurePolicy
	}{
		{"failfast", core.FailFast},
		{"quarantine", core.Quarantine},
	} {
		b.Run(tt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunCampaign(core.CampaignSpec{
					Target:    target,
					Technique: core.InjectOnRead,
					Config:    core.Config{MaxMBF: 3, Win: core.Win(10)},
					N:         benchN,
					Seed:      1,
					OnFailure: tt.policy,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.N() != benchN {
					b.Fatalf("campaign ran %d experiments, want %d", res.N(), benchN)
				}
			}
		})
	}
}
