// Command study runs the paper's full experimental design and regenerates
// every table and figure: 182 campaigns per program (91 per technique) at
// a configurable experiment count, plus the §IV-C3 transition study and
// the simulator-choice ablations.
//
// Usage:
//
//	study -n 500                        # all 15 programs, full Table I grid
//	study -n 10000                      # paper scale (hours of CPU time)
//	study -progs CRC32,basicmath -n 200 # subset
//	study -quick                        # reduced grid for a fast smoke run
//
// Output goes to stdout; use -o to write a file (EXPERIMENTS.md is
// generated this way).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"multiflip/internal/core"
	"multiflip/internal/memfault"
	"multiflip/internal/study"
)

func main() {
	var (
		n           = flag.Int("n", 500, "experiments per campaign (paper: 10000)")
		seed        = flag.Uint64("seed", 1, "study seed")
		progs       = flag.String("progs", "", "comma-separated program subset (empty = all 15)")
		quick       = flag.Bool("quick", false, "reduced grid: max-MBF {2,3,10,30}, win {0,1,4,RND(11-100),1000}")
		transitions = flag.Bool("transitions", true, "run the transition study (Table IV)")
		ablations   = flag.Bool("ablations", true, "run the hang-budget and alignment ablations")
		memfaults   = flag.Bool("memfault", true, "run the memory-word multi-bit fault extension (paper future work)")
		stuckat     = flag.Bool("stuckat", true, "run the stuck-at register-fault extension (one campaign per program)")
		stuckwin    = flag.String("stuckwin", "", `stuck-at extension hold window in Table I notation ("100", "11-100"; empty = default)`)
		workers     = flag.Int("workers", 0, "parallel workers per campaign (0 = GOMAXPROCS)")
		nosnap      = flag.Bool("nosnap", false, "disable golden-run snapshot fast-forwarding (full prefix replay)")
		noconverge  = flag.Bool("noconverge", false, "disable convergence-gated early termination and the fault-equivalence memo")
		nocompile   = flag.Bool("nocompile", false, "disable the compiled fast tier (run the interpreter between event horizons)")
		noliveness  = flag.Bool("noliveness", false, "disable static liveness pruning (execute experiments the oracle could classify)")
		classifier  = flag.String("classifier", "", `outcome classifier for every campaign: "exact" (default) or "tol:abs=E,rel=E[,word=4|8][,float]"`)
		onfail      = flag.String("onfail", "", `failure policy for experiments failing every supervision tier: "fast" (abort, default) or "quarantine" (poison and keep draining)`)
		journal     = flag.String("journal", "", "journal directory: run campaigns as durable sharded jobs (checkpointed, resumable, multi-process)")
		resume      = flag.Bool("resume", false, "resume journaled campaigns from their last checkpoints (requires -journal)")
		out         = flag.String("o", "", "output file (empty = stdout)")
		csvDir      = flag.String("csv", "", "also write each table as CSV into this directory")
		composition = flag.Bool("composition", false, "only run single-bit campaigns and print the candidate-composition tables")
		verbose     = flag.Bool("v", false, "log campaign progress to stderr")
	)
	flag.Parse()
	if err := run(params{
		n: *n, seed: *seed, progs: *progs, quick: *quick,
		transitions: *transitions, ablations: *ablations, memfaults: *memfaults,
		composition: *composition, stuckat: *stuckat, stuckwin: *stuckwin,
		workers: *workers, nosnap: *nosnap, noconverge: *noconverge, nocompile: *nocompile,
		noliveness: *noliveness,
		classifier: *classifier, onfail: *onfail, journal: *journal, resume: *resume,
		out: *out, csvDir: *csvDir, verbose: *verbose,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "study:", err)
		os.Exit(1)
	}
}

// params carries the parsed command line.
type params struct {
	n           int
	seed        uint64
	progs       string
	quick       bool
	transitions bool
	ablations   bool
	memfaults   bool
	composition bool
	stuckat     bool
	stuckwin    string
	workers     int
	nosnap      bool
	noconverge  bool
	nocompile   bool
	noliveness  bool
	classifier  string
	onfail      string
	journal     string
	resume      bool
	out         string
	csvDir      string
	verbose     bool
}

// run resolves the output writer and delegates to runTo. Writing to a
// file checks the Close error explicitly: EXPERIMENTS.md is produced via
// -o, and a full disk surfacing only in Close must not yield a silently
// truncated report with exit code 0.
func run(p params) error {
	if p.out == "" {
		return runTo(os.Stdout, p)
	}
	f, err := os.Create(p.out)
	if err != nil {
		return err
	}
	if err := runTo(f, p); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", p.out, err)
	}
	return nil
}

func runTo(w io.Writer, p params) error {
	if p.resume && p.journal == "" {
		return fmt.Errorf("-resume needs -journal DIR (there is no journal to resume from)")
	}
	n, seed := p.n, p.seed
	opts := study.Options{
		N:           n,
		Seed:        seed,
		Workers:     p.workers,
		NoSnapshots: p.nosnap,
		NoConverge:  p.noconverge,
		NoCompile:   p.nocompile,
		NoLiveness:  p.noliveness,
		NoStuckAt:   !p.stuckat,
		JournalDir:  p.journal,
		Resume:      p.resume,
	}
	cl, err := core.ParseClassifier(p.classifier)
	if err != nil {
		return fmt.Errorf("-classifier: %w", err)
	}
	opts.Classifier = cl
	policy, err := core.ParseFailurePolicy(p.onfail)
	if err != nil {
		return fmt.Errorf("-onfail: %w", err)
	}
	opts.OnFailure = policy
	if p.stuckwin != "" {
		win, err := core.ParseStuckWindow(p.stuckwin)
		if err != nil {
			return fmt.Errorf("-stuckwin: %w", err)
		}
		opts.StuckAtWindow = win
	}
	if p.progs != "" {
		// Tolerate spaces around the commas: "CRC32, basicmath" names the
		// same programs as "CRC32,basicmath".
		for _, name := range strings.Split(p.progs, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Programs = append(opts.Programs, name)
			}
		}
		if len(opts.Programs) == 0 {
			// An empty Programs list means "all 15"; a -progs value that
			// trims to nothing must fail fast, not launch the full study.
			return fmt.Errorf("-progs %q names no programs", p.progs)
		}
	}
	if p.quick {
		opts.MaxMBFs = []int{2, 3, 10, 30}
		opts.WinSizes = []core.WinSize{
			core.Win(0), core.Win(1), core.Win(4), core.WinRange(11, 100), core.Win(1000),
		}
	}
	if p.verbose {
		opts.Log = os.Stderr
	}

	if p.composition {
		// Composition only needs the profile and the single-bit campaigns;
		// shrink the multi-bit grid to its minimum and skip the extension.
		opts.MaxMBFs = []int{2}
		opts.WinSizes = []core.WinSize{core.Win(0)}
		opts.NoStuckAt = true
		s, err := study.Run(opts)
		if err != nil {
			return err
		}
		for _, tech := range core.Techniques() {
			if err := s.CandidateComposition(tech).Render(w); err != nil {
				return err
			}
		}
		return nil
	}

	s, err := study.Run(opts)
	if err != nil {
		return err
	}
	if err := s.RenderAll(w, p.transitions); err != nil {
		return err
	}
	if p.csvDir != "" {
		// The transition campaigns RenderAll already ran are memoized on
		// the study, so the CSV export reuses their results.
		if err := s.WriteCSVDir(p.csvDir, p.transitions); err != nil {
			return err
		}
	}
	if p.ablations {
		// Hang budgets and alignment traps only matter for rare outcome
		// flips, so the ablations use a larger sample than the grid.
		ablN := 10 * n
		if ablN > 5000 {
			ablN = 5000
		}
		abl, err := study.HangFactorAblation("qsort", core.InjectOnRead, ablN, seed, []uint64{2, 10, 100})
		if err != nil {
			return err
		}
		if err := abl.Render(w); err != nil {
			return err
		}
		for _, tech := range core.Techniques() {
			abl, err = study.AlignmentAblation("CRC32", tech, ablN, seed)
			if err != nil {
				return err
			}
			if err := abl.Render(w); err != nil {
				return err
			}
		}
		// The static-pruning confrontation reuses the ablation sample: how
		// many experiments the liveness tier classifies without executing,
		// and that every one of them agrees with actual execution.
		live, err := study.LivenessPredictionTable([]string{"qsort", "CRC32"}, ablN, seed)
		if err != nil {
			return err
		}
		if err := live.Render(w); err != nil {
			return err
		}
	}
	if p.memfaults {
		for _, name := range []string{"CRC32", "sha"} {
			target := s.Data[name]
			if target == nil {
				continue
			}
			tb, err := memfault.SweepTable(target.Target, []int{1, 2, 3, 4, 8}, n, seed)
			if err != nil {
				return err
			}
			if err := tb.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}
