// Command proginfo prints Table II of the paper for this repository's
// benchmark suite: every program with its suite, package, description and
// the candidate-instruction counts for the inject-on-read and
// inject-on-write techniques, plus profile data (dynamic instructions,
// golden output size).
//
// Usage:
//
//	proginfo [-v]
//	proginfo -disasm sha    # print a program's IR listing
//	proginfo -liveness sha  # per-function dead-bit density
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"multiflip/internal/core"
	"multiflip/internal/ir"
	"multiflip/internal/liveness"
	"multiflip/internal/prog"
)

func main() {
	verbose := flag.Bool("v", false, "also print per-program static instruction counts and disassembly sizes")
	disasm := flag.String("disasm", "", "print the IR disassembly of the named program and exit")
	live := flag.String("liveness", "", "print the named program's per-function dead-bit density and exit")
	flag.Parse()
	if *disasm != "" {
		if err := runDisasm(*disasm); err != nil {
			fmt.Fprintln(os.Stderr, "proginfo:", err)
			os.Exit(1)
		}
		return
	}
	if *live != "" {
		if err := runLiveness(*live); err != nil {
			fmt.Fprintln(os.Stderr, "proginfo:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*verbose); err != nil {
		fmt.Fprintln(os.Stderr, "proginfo:", err)
		os.Exit(1)
	}
}

// runLiveness prints the static dead-bit density the liveness tier sees:
// per function, how many of the injection-candidate bits (read slots and
// destination writes over static instructions) are provably dead, i.e.
// flips the campaign engine classifies Benign without executing.
func runLiveness(name string) error {
	b, err := prog.ByName(name)
	if err != nil {
		return err
	}
	p, err := b.Build()
	if err != nil {
		return err
	}
	an := liveness.Analyze(p)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "function\tread bits\tdead\twrite bits\tdead\tdensity")
	for _, st := range an.Stats(p) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f%%\n",
			st.Name, st.ReadBits, st.DeadRead, st.WriteBits, st.DeadWrite, 100*st.Density())
	}
	st := an.ProgStat(p)
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\t%d\t%.1f%%\n",
		st.ReadBits, st.DeadRead, st.WriteBits, st.DeadWrite, 100*st.Density())
	return tw.Flush()
}

func runDisasm(name string) error {
	b, err := prog.ByName(name)
	if err != nil {
		return err
	}
	p, err := b.Build()
	if err != nil {
		return err
	}
	_, err = fmt.Print(ir.Disassemble(p))
	return err
}

func run(verbose bool) error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "program\tsuite\tpackage\tinject-on-read\tinject-on-write\tdynamic\tgolden bytes")
	for _, b := range prog.All() {
		p, err := b.Build()
		if err != nil {
			return err
		}
		t, err := core.NewTarget(b.Name, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\n",
			b.Name, b.Suite, b.Package, t.ReadCands, t.WriteCands, t.GoldenDyn, len(t.Golden))
		if verbose {
			fmt.Fprintf(tw, "  static instrs: %d, funcs: %d, globals: %d bytes\t\t\t\t\t\t\n",
				p.StaticInstrs(), len(p.Funcs), len(p.Globals))
		}
	}
	return tw.Flush()
}
