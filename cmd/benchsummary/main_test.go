package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: multiflip
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCampaignSnapshot-8   	     100	   2904950 ns/op	     68858 experiments/s
BenchmarkCampaignLiveness/CRC32/inject-on-read/live-8  	      50	   2462026 ns/op	     81249 experiments/s	        16.00 pruned%
BenchmarkVMGoldenRun/CRC32-8  	     300	    812345 ns/op	       42.50 Minstr/s
PASS
ok  	multiflip	0.082s
`

func TestParse(t *testing.T) {
	sum, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if sum.GOOS != "linux" || sum.GOARCH != "amd64" || !strings.Contains(sum.CPU, "Xeon") {
		t.Fatalf("environment not captured: %+v", sum)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(sum.Benchmarks))
	}
	b := sum.Benchmarks[1]
	if b.Name != "BenchmarkCampaignLiveness/CRC32/inject-on-read/live" {
		t.Errorf("name = %q (GOMAXPROCS suffix not stripped?)", b.Name)
	}
	if b.Package != "multiflip" {
		t.Errorf("package = %q", b.Package)
	}
	if b.Iterations != 50 {
		t.Errorf("iterations = %d", b.Iterations)
	}
	want := map[string]float64{"ns/op": 2462026, "experiments/s": 81249, "pruned%": 16}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
	if len(b.Metrics) != len(want) {
		t.Errorf("metrics = %v", b.Metrics)
	}
}

func TestParseSkipsChatter(t *testing.T) {
	sum, err := parse(strings.NewReader("=== RUN TestX\n--- PASS: TestX\nBenchmark garbage line\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 0 {
		t.Fatalf("chatter parsed as benchmarks: %+v", sum.Benchmarks)
	}
}
