// Command benchsummary turns `go test -bench` text output into a
// machine-readable JSON summary, so benchmark runs can be archived,
// diffed and plotted without scraping the human-oriented format.
//
// Usage:
//
//	go test -run '^$' -bench . . | benchsummary -o BENCH.json
//	benchsummary -o BENCH.json bench.txt
//
// Every benchmark line contributes one entry with its iteration count
// and every reported metric — the standard ns/op (and B/op, allocs/op
// under -benchmem) as well as custom b.ReportMetric units such as
// experiments/s or pruned%. The environment lines (goos, goarch, cpu,
// pkg) are carried through as context.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Summary is the JSON document: the benchmark environment plus one entry
// per benchmark result line, in input order.
type Summary struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line: `BenchmarkX/sub-8  20  123 ns/op  45 u/s`.
type Benchmark struct {
	// Name is the benchmark path with the trailing -GOMAXPROCS suffix
	// stripped ("BenchmarkCampaignLiveness/qsort/inject-on-read/live").
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from `pkg:`).
	Package string `json:"package,omitempty"`
	// Iterations is b.N for the reported timing.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line, e.g. {"ns/op": 123, "experiments/s": 45000}.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "output file (empty = stdout)")
	flag.Parse()
	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "benchsummary: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out string) error {
	sum, err := parse(in)
	if err != nil {
		return err
	}
	if len(sum.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// parse scans -bench output. Unrecognized lines (test chatter, PASS/ok
// trailers) are skipped, so the full `go test` stream can be piped in.
func parse(in io.Reader) (*Summary, error) {
	sum := &Summary{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			sum.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			sum.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			sum.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			sum.Benchmarks = append(sum.Benchmarks, b)
		}
	}
	return sum, sc.Err()
}

// parseLine splits one result line into name, iterations and the
// (value, unit) metric pairs that follow.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, iterations, and at least one "value unit" pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix the harness appends ("...-8").
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
