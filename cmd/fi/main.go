// Command fi runs a single fault-injection campaign: one benchmark
// program, one fault model, one configuration.
//
// Usage:
//
//	fi -prog CRC32 -tech read -mbf 3 -win 10 -n 10000 -seed 1
//	fi -prog CRC32 -model stuckat -win 100 -n 10000 -seed 1
//
// The default model ("flip") is the paper's transient bit-flip model: the
// win flag is the (max-MBF, win-size) cluster's window in Table I
// notation — "0", "4", "1000" (fixed) or "2-10", "101-1000" (RND ranges)
// — and mbf=1 is the single bit-flip model. With -model stuckat, one
// register bit is instead held at 0/1 across every read in a dynamic
// window of -win instructions (the persistent-fault extension); -tech and
// -mbf are ignored.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"multiflip/internal/core"
	"multiflip/internal/prog"
	"multiflip/internal/report"
	"multiflip/internal/stats"
)

func main() {
	var (
		progName = flag.String("prog", "CRC32", "benchmark program (see cmd/proginfo for the list)")
		model    = flag.String("model", "flip", `fault model: "flip" (transient bit flips) or "stuckat" (bit held across a read window)`)
		tech     = flag.String("tech", "read", `technique: "read" (inject-on-read) or "write" (inject-on-write); flip model only`)
		mbf      = flag.Int("mbf", 1, "max-MBF: maximum bit-flip errors per run (1 = single-bit model); flip model only")
		win      = flag.String("win", "", `window: injection spacing for flip ("0", "100", "2-10", ...; default 0), hold length for stuckat (default 100)`)
		n        = flag.Int("n", 1000, "experiments in the campaign (the paper uses 10000)")
		seed     = flag.Uint64("seed", 1, "campaign seed (campaigns are exactly reproducible)")
		hang     = flag.Uint64("hang", core.DefaultHangFactor, "hang budget as a multiple of the fault-free dynamic instruction count")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		nosnap   = flag.Bool("nosnap", false, "disable golden-run snapshot fast-forwarding (full prefix replay)")
		noconv   = flag.Bool("noconverge", false, "disable convergence-gated early termination and the fault-equivalence memo")
	)
	flag.Parse()
	if err := run(*progName, *model, *tech, *mbf, *win, *n, *seed, *hang, *workers, *nosnap, *noconv); err != nil {
		fmt.Fprintln(os.Stderr, "fi:", err)
		os.Exit(1)
	}
}

func run(progName, model, techName string, mbf int, winSpec string, n int, seed, hang uint64, workers int, nosnap, noconv bool) error {
	// Reject a bad model name or window before target preparation:
	// profiling runs the whole golden run plus snapshot and trace
	// capture, which is seconds of waste on a typo.
	if model != "flip" && model != "stuckat" {
		return fmt.Errorf("unknown model %q (want flip or stuckat)", model)
	}
	win := core.Win(0)
	if model == "stuckat" {
		win = core.Win(core.DefaultStuckWindow)
	}
	if winSpec != "" {
		var err error
		if model == "stuckat" {
			win, err = core.ParseStuckWindow(winSpec)
		} else {
			win, err = core.ParseWinSize(winSpec)
		}
		if err != nil {
			return err
		}
	}
	b, err := prog.ByName(progName)
	if err != nil {
		return err
	}
	p, err := b.Build()
	if err != nil {
		return err
	}
	target, err := core.NewTargetOpts(progName, p, core.TargetOptions{NoConverge: noconv})
	if err != nil {
		return err
	}
	if model == "stuckat" {
		return runStuckAt(target, win, n, seed, hang, workers, nosnap, noconv)
	}
	return runFlip(target, techName, mbf, win, n, seed, hang, workers, nosnap, noconv)
}

func runFlip(target *core.Target, techName string, mbf int, win core.WinSize, n int, seed, hang uint64, workers int, nosnap, noconv bool) error {
	var tech core.Technique
	switch techName {
	case "read":
		tech = core.InjectOnRead
	case "write":
		tech = core.InjectOnWrite
	default:
		return fmt.Errorf("unknown technique %q (want read or write)", techName)
	}
	cfg := core.Config{MaxMBF: mbf, Win: win}
	res, err := core.RunCampaign(core.CampaignSpec{
		Target:      target,
		Technique:   tech,
		Config:      cfg,
		N:           n,
		Seed:        seed,
		HangFactor:  hang,
		Workers:     workers,
		NoSnapshots: nosnap,
		NoConverge:  noconv,
	})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Campaign: %s, %s, %s, n=%d, seed=%d (golden: %d dyn instr, %d/%d candidates)",
		target.Name, tech, cfg, res.N(), seed, target.GoldenDyn, target.ReadCands, target.WriteCands)
	return renderCampaign(title, &res.EngineResult)
}

func runStuckAt(target *core.Target, win core.WinSize, n int, seed, hang uint64, workers int, nosnap, noconv bool) error {
	res, err := core.RunStuckAt(core.StuckAtSpec{
		Target:      target,
		Window:      win,
		N:           n,
		Seed:        seed,
		HangFactor:  hang,
		Workers:     workers,
		NoSnapshots: nosnap,
		NoConverge:  noconv,
	})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Campaign: %s, stuck-at (bit held for a %s-instruction read window), n=%d, seed=%d (golden: %d dyn instr, %d read candidates)",
		target.Name, win, res.N(), seed, target.GoldenDyn, target.ReadCands)
	return renderCampaign(title, &res.EngineResult)
}

// renderCampaign prints the shared outcome table every model's campaign
// reports.
func renderCampaign(title string, res *core.EngineResult) error {
	t := &report.Table{
		Title:   title,
		Columns: []string{"outcome", "count", "percent", "95% CI"},
	}
	for _, o := range core.Outcomes() {
		t.AddRow(o.String(),
			strconv.Itoa(res.Count(o)),
			stats.FormatPct(res.Pct(o)),
			"±"+stats.FormatPct(res.CI95(o)))
	}
	t.AddRow("Detection", "", stats.FormatPct(res.DetectionPct()), "")
	t.Notes = append(t.Notes,
		fmt.Sprintf("error resilience: %.3f", res.Resilience()),
		fmt.Sprintf("mean activated errors per experiment: %.2f", float64(res.ActivatedTotal)/float64(res.N())),
		fmt.Sprintf("early exits: %d converged with the golden run, %d fault-equivalence memo hits", res.Converged, res.MemoHits))
	return t.Render(os.Stdout)
}
