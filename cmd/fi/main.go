// Command fi runs a single fault-injection campaign: one benchmark
// program, one fault model, one configuration.
//
// Usage:
//
//	fi -prog CRC32 -tech read -mbf 3 -win 10 -n 10000 -seed 1
//	fi -prog CRC32 -model stuckat -win 100 -n 10000 -seed 1
//	fi -prog CRC32 -n 10000 -journal ./j          # durable, checkpointed
//	fi -prog CRC32 -n 10000 -journal ./j -resume  # continue after a crash
//	fi -journal ./j -status                       # inspect a journal dir
//
// The default model ("flip") is the paper's transient bit-flip model: the
// win flag is the (max-MBF, win-size) cluster's window in Table I
// notation — "0", "4", "1000" (fixed) or "2-10", "101-1000" (RND ranges)
// — and mbf=1 is the single bit-flip model. With -model stuckat, one
// register bit is instead held at 0/1 across every read in a dynamic
// window of -win instructions (the persistent-fault extension); -tech and
// -mbf are ignored.
//
// With -journal DIR the campaign runs as a durable job: it executes in
// shards checkpointed to a content-addressed journal under DIR, a killed
// run continues from its last checkpoint when re-run with -resume, and
// several fi processes given the same flags and -resume drain one
// campaign concurrently. -status lists every campaign in DIR with its
// shard progress and running tally.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"multiflip/internal/core"
	"multiflip/internal/prog"
	"multiflip/internal/report"
	"multiflip/internal/stats"
)

// options carries the parsed command line.
type options struct {
	prog       string
	model      string
	tech       string
	mbf        int
	winSpec    string
	n          int
	seed       uint64
	hang       uint64
	workers    int
	nosnap     bool
	noconv     bool
	nocomp     bool
	nolive     bool
	classSpec  string
	onfailSpec string
	journal    string
	resume     bool
	status     bool

	// classifier is the parsed classSpec; onfail the parsed onfailSpec.
	classifier core.Classifier
	onfail     core.FailurePolicy
}

func main() {
	var o options
	flag.StringVar(&o.prog, "prog", "CRC32", "benchmark program (see cmd/proginfo for the list)")
	flag.StringVar(&o.model, "model", "flip", `fault model: "flip" (transient bit flips) or "stuckat" (bit held across a read window)`)
	flag.StringVar(&o.tech, "tech", "read", `technique: "read" (inject-on-read) or "write" (inject-on-write); flip model only`)
	flag.IntVar(&o.mbf, "mbf", 1, "max-MBF: maximum bit-flip errors per run (1 = single-bit model); flip model only")
	flag.StringVar(&o.winSpec, "win", "", `window: injection spacing for flip ("0", "100", "2-10", ...; default 0), hold length for stuckat (default 100)`)
	flag.IntVar(&o.n, "n", 1000, "experiments in the campaign (the paper uses 10000)")
	flag.Uint64Var(&o.seed, "seed", 1, "campaign seed (campaigns are exactly reproducible)")
	flag.Uint64Var(&o.hang, "hang", core.DefaultHangFactor, "hang budget as a multiple of the fault-free dynamic instruction count")
	flag.IntVar(&o.workers, "workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.BoolVar(&o.nosnap, "nosnap", false, "disable golden-run snapshot fast-forwarding (full prefix replay)")
	flag.BoolVar(&o.noconv, "noconverge", false, "disable convergence-gated early termination and the fault-equivalence memo")
	flag.BoolVar(&o.nocomp, "nocompile", false, "disable the compiled fast tier (run the interpreter between event horizons)")
	flag.BoolVar(&o.nolive, "noliveness", false, "disable static liveness pruning (execute experiments the oracle could classify)")
	flag.StringVar(&o.classSpec, "classifier", "", `outcome classifier: "exact" (default) or "tol:abs=E,rel=E[,word=4|8][,float]" (tolerant output comparison)`)
	flag.StringVar(&o.onfailSpec, "onfail", "", `failure policy for experiments failing every supervision tier: "fast" (abort, default) or "quarantine" (poison and keep draining)`)
	flag.StringVar(&o.journal, "journal", "", "journal directory: run the campaign as a durable sharded job (checkpointed, resumable, multi-process)")
	flag.BoolVar(&o.resume, "resume", false, "resume the journaled campaign from its last checkpoint (requires -journal)")
	flag.BoolVar(&o.status, "status", false, "list the campaigns in the -journal directory instead of running one")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "fi:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.resume && o.journal == "" {
		return fmt.Errorf("-resume needs -journal DIR (there is no journal to resume from)")
	}
	if o.status {
		if o.journal == "" {
			return fmt.Errorf("-status needs -journal DIR")
		}
		return runStatus(o.journal)
	}
	// Reject a bad model name or window before target preparation:
	// profiling runs the whole golden run plus snapshot and trace
	// capture, which is seconds of waste on a typo.
	if o.model != "flip" && o.model != "stuckat" {
		return fmt.Errorf("unknown model %q (want flip or stuckat)", o.model)
	}
	var err error
	if o.classifier, err = core.ParseClassifier(o.classSpec); err != nil {
		return err
	}
	if o.onfail, err = core.ParseFailurePolicy(o.onfailSpec); err != nil {
		return err
	}
	win := core.Win(0)
	if o.model == "stuckat" {
		win = core.Win(core.DefaultStuckWindow)
	}
	if o.winSpec != "" {
		var err error
		if o.model == "stuckat" {
			win, err = core.ParseStuckWindow(o.winSpec)
		} else {
			win, err = core.ParseWinSize(o.winSpec)
		}
		if err != nil {
			return err
		}
	}
	b, err := prog.ByName(o.prog)
	if err != nil {
		return err
	}
	p, err := b.Build()
	if err != nil {
		return err
	}
	target, err := core.NewTargetOpts(o.prog, p, core.TargetOptions{NoConverge: o.noconv, NoCompile: o.nocomp, NoLiveness: o.nolive})
	if err != nil {
		return err
	}
	if o.model == "stuckat" {
		return runStuckAt(target, win, o)
	}
	return runFlip(target, win, o)
}

// service returns the campaign Service for the flags, or nil without
// -journal (the campaign then runs on the engine's in-memory fast path).
func (o *options) service() *core.Service {
	if o.journal == "" {
		return nil
	}
	return &core.Service{Dir: o.journal, Resume: o.resume}
}

func runFlip(target *core.Target, win core.WinSize, o options) error {
	var tech core.Technique
	switch o.tech {
	case "read":
		tech = core.InjectOnRead
	case "write":
		tech = core.InjectOnWrite
	default:
		return fmt.Errorf("unknown technique %q (want read or write)", o.tech)
	}
	cfg := core.Config{MaxMBF: o.mbf, Win: win}
	res, err := core.RunCampaign(core.CampaignSpec{
		Target:      target,
		Technique:   tech,
		Config:      cfg,
		N:           o.n,
		Seed:        o.seed,
		HangFactor:  o.hang,
		Workers:     o.workers,
		NoSnapshots: o.nosnap,
		NoConverge:  o.noconv,
		NoCompile:   o.nocomp,
		NoLiveness:  o.nolive,
		Classifier:  o.classifier,
		OnFailure:   o.onfail,
		Service:     o.service(),
	})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Campaign: %s, %s, %s, n=%d, seed=%d%s (golden: %d dyn instr, %d/%d candidates)",
		target.Name, tech, cfg, res.N(), o.seed, classifierTag(o.classifier),
		target.GoldenDyn, target.ReadCands, target.WriteCands)
	return renderCampaign(title, &res.EngineResult)
}

func runStuckAt(target *core.Target, win core.WinSize, o options) error {
	res, err := core.RunStuckAt(core.StuckAtSpec{
		Target:      target,
		Window:      win,
		N:           o.n,
		Seed:        o.seed,
		HangFactor:  o.hang,
		Workers:     o.workers,
		NoSnapshots: o.nosnap,
		NoConverge:  o.noconv,
		NoCompile:   o.nocomp,
		Classifier:  o.classifier,
		OnFailure:   o.onfail,
		Service:     o.service(),
	})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Campaign: %s, stuck-at (bit held for a %s-instruction read window), n=%d, seed=%d%s (golden: %d dyn instr, %d read candidates)",
		target.Name, win, res.N(), o.seed, classifierTag(o.classifier),
		target.GoldenDyn, target.ReadCands)
	return renderCampaign(title, &res.EngineResult)
}

// runStatus lists every campaign journal in the directory with its shard
// progress and the running tally over checkpointed shards.
func runStatus(dir string) error {
	infos, err := core.InspectDir(dir)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Printf("no campaign journals in %s\n", dir)
		return nil
	}
	t := &report.Table{
		Title: fmt.Sprintf("Campaign journals in %s", dir),
		Columns: []string{"campaign", "n", "seed", "shards done/leased/pending",
			"experiments", "pruned", "SDC so far", "0->1", "1->0"},
	}
	var extra []string
	for _, in := range infos {
		st := in.Status
		sdc := "-"
		if st.Tally.N() > 0 {
			sdc = stats.FormatPct(st.Tally.SDCPct()) + "%"
		}
		// Journals written before the static-pruning tier carry no counter
		// and land on the same "-" as campaigns where the tier never fired.
		pruned := "-"
		if st.StaticPruned > 0 {
			pruned = strconv.Itoa(st.StaticPruned)
		}
		t.AddRow(in.Meta.Model,
			strconv.Itoa(in.Meta.N),
			strconv.FormatUint(in.Meta.Seed, 10),
			fmt.Sprintf("%d/%d/%d of %d", st.Done, st.Leased, st.Pending, st.Shards),
			fmt.Sprintf("%d/%d", st.ExperimentsDone, st.ExperimentsTotal),
			pruned,
			sdc,
			dirCell(&st.Tally, core.Dir0to1),
			dirCell(&st.Tally, core.Dir1to0))
		// In-flight shards with live leases: who holds what, and for how
		// much longer, instead of lumping them in with pending shards.
		for _, l := range st.Leases {
			extra = append(extra, fmt.Sprintf("%s seed=%d: shard %d leased by %s, expires in %s (heartbeats extend it)",
				in.Meta.Model, in.Meta.Seed, l.Shard, l.Worker, l.Remaining.Round(100*time.Millisecond)))
		}
		if st.Quarantined > 0 {
			extra = append(extra, fmt.Sprintf("%s seed=%d: %d experiment(s) quarantined — run the campaign front-end for the repro records",
				in.Meta.Model, in.Meta.Seed, st.Quarantined))
		}
	}
	t.Notes = append(t.Notes,
		"The tally covers checkpointed shards only; shard merging is exact, so percentages are true partial results.",
		"0->1 / 1->0 split checkpointed experiments by flip direction (count and SDC%); journals written before the dimensional tally show \"-\".",
		"pruned counts experiments classified Benign by the static liveness tier without executing; \"-\" means none (or a journal written before the tier).")
	t.Notes = append(t.Notes, extra...)
	return t.Render(os.Stdout)
}

// dirCell renders one flip-direction column of the status table:
// "count (sdc%)" over the checkpointed shards, or "-" when the journal
// predates the dimensional tally (its breakdown is empty).
func dirCell(tl *core.Tally, dir core.FlipDir) string {
	if tl.Dims.N() == 0 {
		return "-"
	}
	n := tl.Dims.DirTotal(dir)
	return fmt.Sprintf("%d (%s%%)", n, stats.FormatPct(stats.Percent(tl.Dims.DirCount(core.OutcomeSDC, dir), n)))
}

// classifierTag renders the campaign title's classifier suffix: empty
// for the default exact comparison, ", classifier=<name>" otherwise.
func classifierTag(c core.Classifier) string {
	if c == nil {
		return ""
	}
	if name := c.Name(); name != "exact" {
		return ", classifier=" + name
	}
	return ""
}

// renderCampaign prints the shared outcome table every model's campaign
// reports.
func renderCampaign(title string, res *core.EngineResult) error {
	t := &report.Table{
		Title:   title,
		Columns: []string{"outcome", "count", "percent", "95% CI"},
	}
	for _, o := range core.Outcomes() {
		t.AddRow(o.String(),
			strconv.Itoa(res.Count(o)),
			stats.FormatPct(res.Pct(o)),
			"±"+stats.FormatPct(res.CI95(o)))
	}
	// The Internal row appears only when the Quarantine policy actually
	// poisoned experiments: healthy output is byte-identical to builds
	// that predate the supervision layer.
	if n := res.Count(core.OutcomeInternal); n > 0 {
		t.AddRow(core.OutcomeInternal.String(),
			strconv.Itoa(n),
			stats.FormatPct(res.Pct(core.OutcomeInternal)),
			"±"+stats.FormatPct(res.CI95(core.OutcomeInternal)))
	}
	t.AddRow("Detection", "", stats.FormatPct(res.DetectionPct()), "")
	t.Notes = append(t.Notes,
		fmt.Sprintf("error resilience: %.3f", res.Resilience()),
		fmt.Sprintf("mean activated errors per experiment: %.2f", float64(res.ActivatedTotal)/float64(res.N())),
		fmt.Sprintf("early exits: %d converged with the golden run, %d fault-equivalence memo hits", res.Converged, res.MemoHits))
	// Only campaigns where the tier fired mention it: flag-identical output
	// to builds predating the static-pruning tier otherwise.
	if res.StaticPruned > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("static pruning: %d experiment(s) proved Benign by the liveness oracle without executing", res.StaticPruned))
	}
	for _, q := range res.Quarantined {
		failure := ""
		if n := len(q.Errs); n > 0 {
			failure = q.Errs[n-1]
		}
		if q.Panic != "" {
			failure = fmt.Sprintf("panic: %s [stack %s]", q.Panic, q.Stack)
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"quarantined: experiment %d (seed %d) failed every tier (%s): %s",
			q.Index, q.Seed, strings.Join(q.Tiers, "->"), failure))
	}
	return t.Render(os.Stdout)
}
