// Command fi runs a single fault-injection campaign: one benchmark
// program, one technique, one (max-MBF, win-size) error cluster.
//
// Usage:
//
//	fi -prog CRC32 -tech read -mbf 3 -win 10 -n 10000 -seed 1
//
// The win flag accepts Table I notation: "0", "4", "1000" (fixed) or
// "2-10", "101-1000" (RND ranges). mbf=1 is the single bit-flip model.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"multiflip/internal/core"
	"multiflip/internal/prog"
	"multiflip/internal/report"
	"multiflip/internal/stats"
)

func main() {
	var (
		progName = flag.String("prog", "CRC32", "benchmark program (see cmd/proginfo for the list)")
		tech     = flag.String("tech", "read", `technique: "read" (inject-on-read) or "write" (inject-on-write)`)
		mbf      = flag.Int("mbf", 1, "max-MBF: maximum bit-flip errors per run (1 = single-bit model)")
		win      = flag.String("win", "0", `win-size: dynamic instructions between injections ("0", "100", "2-10", ...)`)
		n        = flag.Int("n", 1000, "experiments in the campaign (the paper uses 10000)")
		seed     = flag.Uint64("seed", 1, "campaign seed (campaigns are exactly reproducible)")
		hang     = flag.Uint64("hang", core.DefaultHangFactor, "hang budget as a multiple of the fault-free dynamic instruction count")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		nosnap   = flag.Bool("nosnap", false, "disable golden-run snapshot fast-forwarding (full prefix replay)")
		noconv   = flag.Bool("noconverge", false, "disable convergence-gated early termination and the fault-equivalence memo")
	)
	flag.Parse()
	if err := run(*progName, *tech, *mbf, *win, *n, *seed, *hang, *workers, *nosnap, *noconv); err != nil {
		fmt.Fprintln(os.Stderr, "fi:", err)
		os.Exit(1)
	}
}

func run(progName, techName string, mbf int, winSpec string, n int, seed, hang uint64, workers int, nosnap, noconv bool) error {
	b, err := prog.ByName(progName)
	if err != nil {
		return err
	}
	p, err := b.Build()
	if err != nil {
		return err
	}
	target, err := core.NewTargetOpts(progName, p, core.TargetOptions{NoConverge: noconv})
	if err != nil {
		return err
	}
	var tech core.Technique
	switch techName {
	case "read":
		tech = core.InjectOnRead
	case "write":
		tech = core.InjectOnWrite
	default:
		return fmt.Errorf("unknown technique %q (want read or write)", techName)
	}
	win, err := parseWin(winSpec)
	if err != nil {
		return err
	}
	cfg := core.Config{MaxMBF: mbf, Win: win}
	res, err := core.RunCampaign(core.CampaignSpec{
		Target:      target,
		Technique:   tech,
		Config:      cfg,
		N:           n,
		Seed:        seed,
		HangFactor:  hang,
		Workers:     workers,
		NoSnapshots: nosnap,
		NoConverge:  noconv,
	})
	if err != nil {
		return err
	}

	t := &report.Table{
		Title: fmt.Sprintf("Campaign: %s, %s, %s, n=%d, seed=%d (golden: %d dyn instr, %d/%d candidates)",
			progName, tech, cfg, res.N(), seed, target.GoldenDyn, target.ReadCands, target.WriteCands),
		Columns: []string{"outcome", "count", "percent", "95% CI"},
	}
	for _, o := range core.Outcomes() {
		t.AddRow(o.String(),
			strconv.Itoa(res.Count(o)),
			stats.FormatPct(res.Pct(o)),
			"±"+stats.FormatPct(res.CI95(o)))
	}
	t.AddRow("Detection", "", stats.FormatPct(res.DetectionPct()), "")
	t.Notes = append(t.Notes,
		fmt.Sprintf("error resilience: %.3f", res.Resilience()),
		fmt.Sprintf("mean activated errors per experiment: %.2f", float64(res.ActivatedTotal)/float64(res.N())),
		fmt.Sprintf("early exits: %d converged with the golden run, %d fault-equivalence memo hits", res.Converged, res.MemoHits))
	return t.Render(os.Stdout)
}

// parseWin parses Table I win-size notation.
func parseWin(s string) (core.WinSize, error) {
	s = strings.TrimSpace(s)
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		l, err1 := strconv.Atoi(lo)
		h, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || l < 1 || h < l {
			return core.WinSize{}, fmt.Errorf("bad win range %q", s)
		}
		return core.WinRange(l, h), nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return core.WinSize{}, fmt.Errorf("bad win value %q", s)
	}
	return core.Win(v), nil
}
