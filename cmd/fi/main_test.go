package main

import (
	"testing"

	"multiflip/internal/core"
)

func TestParseWin(t *testing.T) {
	tests := []struct {
		give    string
		want    core.WinSize
		wantErr bool
	}{
		{give: "0", want: core.Win(0)},
		{give: "4", want: core.Win(4)},
		{give: "1000", want: core.Win(1000)},
		{give: " 10 ", want: core.Win(10)},
		{give: "2-10", want: core.WinRange(2, 10)},
		{give: "101-1000", want: core.WinRange(101, 1000)},
		{give: "", wantErr: true},
		{give: "x", wantErr: true},
		{give: "-1", wantErr: true},
		{give: "10-2", wantErr: true},
		{give: "0-5", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseWin(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseWin(%q) accepted, want error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseWin(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("parseWin(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	if err := run("no-such-prog", "read", 1, "0", 10, 1, 10, 1, false, false); err == nil {
		t.Error("unknown program accepted")
	}
	if err := run("CRC32", "sideways", 1, "0", 10, 1, 10, 1, false, false); err == nil {
		t.Error("unknown technique accepted")
	}
}
