package main

import "testing"

// base returns a valid option set for tests to break one field at a time.
func base() options {
	return options{prog: "CRC32", model: "flip", tech: "read", mbf: 1,
		winSpec: "0", n: 10, seed: 1, hang: 10, workers: 1}
}

func TestRunRejectsUnknowns(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"unknown program", func(o *options) { o.prog = "no-such-prog" }},
		{"unknown technique", func(o *options) { o.tech = "sideways" }},
		{"unknown model", func(o *options) { o.model = "no-such-model" }},
		{"stuck-at zero window", func(o *options) { o.model = "stuckat" }},
		{"resume without journal", func(o *options) { o.resume = true }},
		{"status without journal", func(o *options) { o.status = true }},
	}
	for _, c := range cases {
		o := base()
		c.mut(&o)
		if err := run(o); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}
