package main

import "testing"

func TestRunRejectsUnknowns(t *testing.T) {
	if err := run("no-such-prog", "flip", "read", 1, "0", 10, 1, 10, 1, false, false); err == nil {
		t.Error("unknown program accepted")
	}
	if err := run("CRC32", "flip", "sideways", 1, "0", 10, 1, 10, 1, false, false); err == nil {
		t.Error("unknown technique accepted")
	}
	if err := run("CRC32", "no-such-model", "read", 1, "0", 10, 1, 10, 1, false, false); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run("CRC32", "stuckat", "read", 1, "0", 10, 1, 10, 1, false, false); err == nil {
		t.Error("stuck-at campaign with a zero window accepted")
	}
}
