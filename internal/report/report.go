// Package report renders the study's tables and figure-data series as
// aligned ASCII tables and as CSV, so every table and figure of the paper
// can be regenerated as text.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with optional footnotes.
type Table struct {
	// Title names the table or figure it reproduces.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells; ragged rows are padded when rendering.
	Rows [][]string
	// Notes are rendered under the table, one bullet per entry.
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned, boxed ASCII rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", width-len(cell)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	total := 0
	for _, width := range widths {
		total += width + 2
	}
	if total > 2 {
		total -= 2
	}
	if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", min(total, 100))); err != nil {
		return err
	}
	if len(t.Columns) > 0 {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", line(t.Columns), strings.Repeat("-", min(total, 100))); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "* %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as CSV (title and notes become # comments).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if len(t.Columns) > 0 {
		if err := cw.Write(t.Columns); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
