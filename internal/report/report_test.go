package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Sample",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	t.AddRow("alpha", "1")
	t.AddRow("beta-long", "22")
	return t
}

func TestRenderAligned(t *testing.T) {
	out := sample().String()
	if !strings.Contains(out, "Sample") {
		t.Fatal("missing title")
	}
	lines := strings.Split(out, "\n")
	var header, alpha string
	for _, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
		}
		if strings.HasPrefix(l, "alpha") {
			alpha = l
		}
	}
	if header == "" || alpha == "" {
		t.Fatalf("missing rows:\n%s", out)
	}
	// The value column must start at the same offset in every line.
	if strings.Index(header, "value") != strings.Index(alpha, "1") {
		t.Fatalf("columns not aligned:\n%s", out)
	}
	if !strings.Contains(out, "* a note") {
		t.Fatal("missing note")
	}
}

func TestRenderRaggedRows(t *testing.T) {
	tb := &Table{Title: "R", Columns: []string{"a"}}
	tb.AddRow("x", "extra", "cells")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "cells") {
		t.Fatalf("ragged cells dropped:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# Sample", "name,value", "alpha,1", "beta-long,22", "# a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestCSVQuotesCommas(t *testing.T) {
	tb := &Table{Columns: []string{"desc"}}
	tb.AddRow("has, comma")
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"has, comma"`) {
		t.Fatalf("comma not quoted: %s", b.String())
	}
}
