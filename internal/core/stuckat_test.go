package core_test

import (
	"os"
	"reflect"
	"testing"

	"multiflip/internal/core"
)

// TestRunStuckAtBasic sanity-checks a stuck-at campaign: full tally,
// activation within the window bound, and a non-degenerate outcome mix.
func TestRunStuckAtBasic(t *testing.T) {
	tg := target(t, "CRC32")
	res, err := core.RunStuckAt(core.StuckAtSpec{
		Target: tg,
		Window: core.Win(100),
		N:      300,
		Seed:   1,
		Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 300 {
		t.Fatalf("N = %d", res.N())
	}
	sawActive, sawInert := false, false
	for _, e := range res.Experiments {
		if e.Activated < 0 {
			t.Fatalf("negative activation: %+v", e)
		}
		if e.Activated > 0 {
			sawActive = true
		} else {
			// Zero activation is legal for stuck-at (the bit already
			// carried the held value) and such runs must be Benign.
			sawInert = true
			if e.Outcome != core.OutcomeBenign {
				t.Fatalf("zero-activation experiment classified %v", e.Outcome)
			}
		}
	}
	if !sawActive {
		t.Error("no stuck-at experiment activated")
	}
	if !sawInert {
		t.Log("note: every experiment activated (possible but unusual)")
	}
	if res.Count(core.OutcomeBenign) == res.N() {
		t.Fatalf("degenerate outcome distribution: %v", res.Counts)
	}
}

// TestStuckAtDeterministicAcrossWorkers mirrors the register-campaign
// guarantee: results are bit-identical for any worker count.
func TestStuckAtDeterministicAcrossWorkers(t *testing.T) {
	tg := target(t, "histo")
	run := func(workers int) *core.StuckAtResult {
		res, err := core.RunStuckAt(core.StuckAtSpec{
			Target:  tg,
			Window:  core.WinRange(10, 200),
			N:       150,
			Seed:    42,
			Workers: workers,
			Record:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.Counts != b.Counts {
		t.Fatalf("counts differ across worker counts: %v vs %v", a.Counts, b.Counts)
	}
	for i := range a.Experiments {
		if a.Experiments[i] != b.Experiments[i] {
			t.Fatalf("experiment %d differs across worker counts", i)
		}
	}
}

// TestStuckAtSnapshotDifferential checks golden-run fast-forwarding is
// invisible to the stuck-at model, like it is for the flip models.
func TestStuckAtSnapshotDifferential(t *testing.T) {
	for _, name := range []string{"CRC32", "qsort", "FFT"} {
		tg := target(t, name)
		spec := core.StuckAtSpec{
			Target: tg,
			Window: core.Win(50),
			N:      60,
			Seed:   9,
			Record: true,
		}
		fast, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec.NoSnapshots = true
		slow, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatalf("%s (nosnap): %v", name, err)
		}
		if !reflect.DeepEqual(fast.Experiments, slow.Experiments) {
			t.Errorf("%s: experiments diverge between fast-forwarded and full-replay stuck-at campaigns", name)
		}
		if fast.Counts != slow.Counts || fast.ActivatedTotal != slow.ActivatedTotal {
			t.Errorf("%s: aggregates diverge between fast-forwarded and full-replay stuck-at campaigns", name)
		}
	}
}

// TestStuckAtConvergeDifferential checks convergence-gated early
// termination and the fault-equivalence memo stay invisible for the
// stuck-at model, and that the early exits actually fire (a hold whose
// register is dead reconverges immediately after the window).
func TestStuckAtConvergeDifferential(t *testing.T) {
	earlyExits := 0
	for _, name := range []string{"CRC32", "sha", "histo", "qsort"} {
		tg := target(t, name)
		spec := core.StuckAtSpec{
			Target: tg,
			Window: core.Win(100),
			N:      60,
			Seed:   11,
			Record: true,
		}
		fast, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec.NoConverge = true
		slow, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatalf("%s (noconverge): %v", name, err)
		}
		if slow.Converged != 0 || slow.MemoHits != 0 {
			t.Fatalf("%s: NoConverge stuck-at campaign reported early exits", name)
		}
		earlyExits += fast.Converged + fast.MemoHits
		if !reflect.DeepEqual(fast.Experiments, slow.Experiments) {
			t.Errorf("%s: experiments diverge between converge and no-converge stuck-at campaigns", name)
		}
		if fast.Counts != slow.Counts || fast.TrapCounts != slow.TrapCounts ||
			fast.CrashActivated != slow.CrashActivated {
			t.Errorf("%s: aggregates diverge between converge and no-converge stuck-at campaigns", name)
		}
	}
	if earlyExits == 0 && os.Getenv("MULTIFLIP_NOCONVERGE") == "" {
		t.Error("no stuck-at experiment converged or hit the memo")
	}
}

// TestStuckAtValidationErrors checks spec validation.
func TestStuckAtValidationErrors(t *testing.T) {
	tg := target(t, "CRC32")
	bad := []core.StuckAtSpec{
		{Window: core.Win(100), N: 1},                          // no target
		{Target: tg, Window: core.Win(100)},                    // no N
		{Target: tg, Window: core.WinSize{Lo: 5, Hi: 2}, N: 1}, // bad range
	}
	for i, spec := range bad {
		if _, err := core.RunStuckAt(spec); err == nil {
			t.Errorf("spec %d accepted, want error", i)
		}
	}
	// The zero window defaults rather than erroring.
	if _, err := core.RunStuckAt(core.StuckAtSpec{Target: tg, N: 10, Seed: 1}); err != nil {
		t.Errorf("defaulted window rejected: %v", err)
	}
}
