package core_test

import (
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/prog"
)

// TestAllProgramsSurviveInjection is the suite-wide integration check:
// every Table II program accepts single- and multi-bit campaigns with
// both techniques, and every experiment lands in a defined category.
func TestAllProgramsSurviveInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	configs := []core.Config{
		core.SingleBit(),
		{MaxMBF: 3, Win: core.Win(0)},
		{MaxMBF: 3, Win: core.Win(1)},
		{MaxMBF: 30, Win: core.WinRange(11, 100)},
	}
	for _, b := range prog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			tg := target(t, b.Name)
			for _, tech := range core.Techniques() {
				for _, cfg := range configs {
					res, err := core.RunCampaign(core.CampaignSpec{
						Target:    tg,
						Technique: tech,
						Config:    cfg,
						N:         40,
						Seed:      3,
					})
					if err != nil {
						t.Fatalf("%s %s: %v", tech, cfg, err)
					}
					if res.N() != 40 {
						t.Fatalf("%s %s: %d classified outcomes, want 40", tech, cfg, res.N())
					}
					if res.ActivatedTotal < 40 {
						t.Fatalf("%s %s: some experiments activated no error", tech, cfg)
					}
				}
			}
		})
	}
}

// TestSingleBitOutcomesVaryAcrossSuite: across the 15 programs, single-bit
// injection must produce a spread of SDC rates (the paper's Fig 1 is not
// flat); a constant rate would indicate the injector ignores program
// structure.
func TestSingleBitOutcomesVaryAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	minSDC, maxSDC := 101.0, -1.0
	for _, b := range prog.All() {
		tg := target(t, b.Name)
		res, err := core.RunCampaign(core.CampaignSpec{
			Target:    tg,
			Technique: core.InjectOnWrite,
			Config:    core.SingleBit(),
			N:         150,
			Seed:      17,
		})
		if err != nil {
			t.Fatal(err)
		}
		sdc := res.SDCPct()
		if sdc < minSDC {
			minSDC = sdc
		}
		if sdc > maxSDC {
			maxSDC = sdc
		}
	}
	if maxSDC-minSDC < 10 {
		t.Fatalf("SDC spread across suite = %.1f..%.1f pp; suspiciously flat", minSDC, maxSDC)
	}
}
