package core_test

import (
	"os"
	"reflect"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/prog"
)

// convergeOn reports whether the process-wide convergence kill switch is
// inactive; "early exits fire" assertions only hold then.
func convergeOn() bool { return os.Getenv("MULTIFLIP_NOCONVERGE") == "" }

// TestCampaignConvergeDifferential enforces the tentpole invariant at the
// campaign level: for every workload, both techniques and the single- and
// multi-bit models, a campaign with convergence-gated early termination
// and fault-equivalence memoization produces experiment records
// bit-identical to one with both disabled — and the early exits actually
// fire somewhere across the grid.
func TestCampaignConvergeDifferential(t *testing.T) {
	const (
		n    = 40
		seed = 4242
	)
	configs := []core.Config{
		core.SingleBit(),
		{MaxMBF: 3, Win: core.Win(10)},
	}
	earlyExits := 0
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		target, err := core.NewTarget(bench.Name, p)
		if err != nil {
			t.Fatal(err)
		}
		if target.Trace == nil {
			t.Fatalf("%s: target has no golden trace", bench.Name)
		}
		off, err := core.NewTargetOpts(bench.Name, p, core.TargetOptions{NoConverge: true})
		if err != nil {
			t.Fatal(err)
		}
		if off.Trace != nil {
			t.Fatalf("%s: NoConverge target recorded a trace", bench.Name)
		}
		for _, tech := range core.Techniques() {
			for _, cfg := range configs {
				spec := core.CampaignSpec{
					Target:    target,
					Technique: tech,
					Config:    cfg,
					N:         n,
					Seed:      seed,
					Record:    true,
				}
				fast, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s: %v", bench.Name, tech, cfg, err)
				}
				spec.Target = off
				spec.NoConverge = true
				slow, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s (noconverge): %v", bench.Name, tech, cfg, err)
				}
				if slow.Converged != 0 || slow.MemoHits != 0 {
					t.Fatalf("%s %s %s: NoConverge campaign reported early exits", bench.Name, tech, cfg)
				}
				earlyExits += fast.Converged + fast.MemoHits
				if !reflect.DeepEqual(fast.Experiments, slow.Experiments) {
					t.Errorf("%s %s %s: experiments diverge between converge and no-converge campaigns",
						bench.Name, tech, cfg)
					continue
				}
				if fast.Counts != slow.Counts || fast.TrapCounts != slow.TrapCounts ||
					fast.CrashActivated != slow.CrashActivated ||
					fast.ActivatedTotal != slow.ActivatedTotal {
					t.Errorf("%s %s %s: aggregates diverge between converge and no-converge campaigns",
						bench.Name, tech, cfg)
				}
			}
		}
	}
	if earlyExits == 0 && convergeOn() {
		t.Error("no experiment across the grid converged or hit the memo; the early-exit tier never fires")
	}
}

// TestCampaignMemoHit pins the fault-equivalence memo: two experiments
// pinned to the same first-injection location collapse to the same
// post-injection state, so the second reuses the first's recorded outcome
// (Workers=1 makes the order deterministic) and the records stay
// bit-identical to a memo-less campaign.
func TestCampaignMemoHit(t *testing.T) {
	bench, err := prog.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		t.Fatal(err)
	}
	// Find an SDC location: its post-injection state diverges from golden,
	// so the memo (not convergence) resolves the duplicate.
	probe, err := core.RunCampaign(core.CampaignSpec{
		Target:    target,
		Technique: core.InjectOnWrite,
		Config:    core.SingleBit(),
		N:         60,
		Seed:      7,
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var pin core.Pin
	found := false
	for _, e := range probe.Experiments {
		if e.Outcome == core.OutcomeSDC {
			pin = core.Pin{Cand: e.Cand, Bit: e.Bit}
			found = true
			break
		}
	}
	if !found {
		t.Skip("no SDC experiment in the probe campaign")
	}
	spec := core.CampaignSpec{
		Target:    target,
		Technique: core.InjectOnWrite,
		Config:    core.SingleBit(),
		Seed:      8,
		Workers:   1,
		Record:    true,
		Pins:      []core.Pin{pin, pin},
	}
	res, err := core.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoHits != 1 && convergeOn() {
		t.Errorf("pinned duplicate campaign reported %d memo hits, want 1", res.MemoHits)
	}
	if !reflect.DeepEqual(res.Experiments[0], res.Experiments[1]) {
		t.Errorf("memoized experiment diverges from its twin: %+v vs %+v",
			res.Experiments[0], res.Experiments[1])
	}
	spec.NoConverge = true
	slow, err := core.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Experiments, slow.Experiments) {
		t.Error("memoized experiments diverge from the no-converge rerun")
	}
}

// The concurrent-failure (errors.Join) and memo-determinism tests moved
// to engine_test.go: they are engine properties, written once against
// core.Engine and run for all three fault models.
