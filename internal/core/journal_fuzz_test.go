package core_test

// Fuzzing the file-journal loader against crash debris: a journal
// truncated at an arbitrary byte (a torn final write) with arbitrary
// bytes appended (a partial record from a dying writer, or plain
// corruption). The loader's contract under any such mutation: never
// error, never panic, recover every checkpoint whose record survived
// intact, and never invent or alter one.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/vm"
)

// fuzzMeta is the synthetic campaign every fuzz case journals: 5 shards
// of 8 experiments, with records.
func fuzzMeta() core.CampaignMeta {
	return core.CampaignMeta{Fingerprint: 0xfedc, Model: "fuzz", N: 40, ShardSize: 8, Seed: 9, Record: true}
}

// syntheticShard builds a deterministic, validation-passing checkpoint
// for one shard of the fuzz campaign.
func syntheticShard(meta core.CampaignMeta, shard int) core.ShardResult {
	lo, hi := meta.Span(shard)
	sr := core.ShardResult{Shard: shard}
	for i := lo; i < hi; i++ {
		exp := core.Experiment{
			Cand:      uint64(i * 7),
			Bit:       i % 64,
			Outcome:   core.Outcome(1 + i%core.NumOutcomes),
			Activated: i % 3,
		}
		if exp.Outcome == core.OutcomeException {
			exp.Trap = vm.TrapKind(1 + i%(core.NumTrapKinds-1))
		}
		sr.Add(&exp, i%5 == 0, i%7 == 0, i%11 == 0)
		sr.Experiments = append(sr.Experiments, exp)
	}
	return sr
}

func FuzzJournalLoader(f *testing.F) {
	f.Add(byte(0), uint16(0), []byte(nil))
	f.Add(byte(3), uint16(77), []byte(nil))
	f.Add(byte(5), uint16(65535), []byte("tail"))
	f.Add(byte(2), uint16(300), []byte("00000000 {\"t\":\"done\",\"s\":1}\n"))
	f.Add(byte(1), uint16(9), []byte("\n\n\x00\xff garbage \n"))
	f.Fuzz(func(t *testing.T, nDone byte, cut uint16, garbage []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "campaign-fuzz.mfj")
		j, err := core.OpenFileJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		meta := fuzzMeta()
		if err := j.Bind(meta); err != nil {
			t.Fatal(err)
		}
		done := int(nDone) % (meta.NumShards() + 1)
		// sizeAfter[s] is the file size once shard s's record is fully
		// written: the record survives any cut at or past it.
		sizeAfter := make([]int64, done)
		want := make(map[int]core.ShardResult, done)
		for s := 0; s < done; s++ {
			sr := syntheticShard(meta, s)
			if err := j.Checkpoint(sr); err != nil {
				t.Fatal(err)
			}
			want[s] = sr
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			sizeAfter[s] = fi.Size()
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		// Mutate: truncate at an arbitrary byte, append arbitrary bytes.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		k := int(cut) % (len(data) + 1)
		mutated := append(data[:k:k], garbage...)
		mutPath := filepath.Join(dir, "campaign-mut.mfj")
		if err := os.WriteFile(mutPath, mutated, 0o644); err != nil {
			t.Fatal(err)
		}

		check := func(pass string) []*core.ShardResult {
			mj, err := core.OpenFileJournal(mutPath)
			if err != nil {
				t.Fatalf("%s: loader errored on mutated journal: %v", pass, err)
			}
			defer mj.Close()
			results, err := mj.Results()
			if err != nil {
				t.Fatalf("%s: %v", pass, err)
			}
			// Anything recovered from a real checkpoint must be bit-identical
			// to what was journaled. (Fuzz-crafted garbage could in principle
			// append a brand-new valid record — that is legitimate input, not
			// corruption — so unknown shards are not an error.)
			for _, sr := range results {
				if w, ok := want[sr.Shard]; ok && !reflect.DeepEqual(*sr, w) {
					t.Fatalf("%s: shard %d recovered altered", pass, sr.Shard)
				}
			}
			// Every checkpoint fully before the cut must survive: torn tails
			// and appended garbage may only cost records they overlap.
			recovered := make(map[int]bool, len(results))
			for _, sr := range results {
				recovered[sr.Shard] = true
			}
			for s := 0; s < done; s++ {
				if int64(k) >= sizeAfter[s] && !recovered[s] {
					t.Fatalf("%s: shard %d's intact checkpoint lost (cut %d >= %d)", pass, s, k, sizeAfter[s])
				}
			}
			return results
		}
		first := check("load")
		second := check("reload")
		if len(first) != len(second) {
			t.Fatalf("reload recovered %d shards, first load %d", len(second), len(first))
		}
	})
}
