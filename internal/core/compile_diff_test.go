package core_test

// The campaign-level compiled-tier differential suite: for every
// workload, both techniques and the single- and multi-bit register
// models — plus the stuck-at model — campaigns executed on the compiled
// fast tier must be bit-identical to NoCompile campaigns, down to the
// per-experiment records, the outcome and trap histograms and the
// early-exit counters (Workers=1 makes Converged/MemoHits deterministic,
// so they are compared too). The memfault analogue lives in
// internal/memfault; the VM-level suite in internal/vm.

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/prog"
	"multiflip/internal/vm"
)

// compileOn reports whether the process-wide compiled-tier kill switch is
// inactive; non-vacuity assertions only hold then.
func compileOn() bool { return os.Getenv("MULTIFLIP_NOCOMPILE") == "" }

// TestCampaignCompileDifferential pins the compiled tier at the campaign
// level across the full workload grid.
func TestCampaignCompileDifferential(t *testing.T) {
	const (
		n    = 30
		seed = 90125
	)
	configs := []core.Config{
		core.SingleBit(),
		{MaxMBF: 3, Win: core.Win(10)},
	}
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		if compileOn() && !vm.Compiled(p) {
			t.Fatalf("%s: no compiled kernel engages; the differential below would compare the interpreter against itself (re-run go generate ./...)", bench.Name)
		}
		target, err := core.NewTarget(bench.Name, p)
		if err != nil {
			t.Fatal(err)
		}
		off, err := core.NewTargetOpts(bench.Name, p, core.TargetOptions{NoCompile: true})
		if err != nil {
			t.Fatal(err)
		}
		// The golden profile feeds candidate sampling and SDC comparison;
		// both tiers must capture the same one.
		if !bytes.Equal(target.Golden, off.Golden) ||
			target.GoldenDyn != off.GoldenDyn ||
			target.ReadCands != off.ReadCands ||
			target.WriteCands != off.WriteCands {
			t.Fatalf("%s: golden profiles diverge between tiers", bench.Name)
		}
		if !reflect.DeepEqual(target.Trace, off.Trace) {
			t.Fatalf("%s: golden traces diverge between tiers", bench.Name)
		}
		for _, tech := range core.Techniques() {
			for _, cfg := range configs {
				spec := core.CampaignSpec{
					Target:    target,
					Technique: tech,
					Config:    cfg,
					N:         n,
					Seed:      seed,
					Workers:   1,
					Record:    true,
				}
				fast, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s: %v", bench.Name, tech, cfg, err)
				}
				spec.Target = off
				spec.NoCompile = true
				slow, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s (nocompile): %v", bench.Name, tech, cfg, err)
				}
				sameResult(t, fmt.Sprintf("%s %s %s compiled vs nocompile", bench.Name, tech, cfg),
					&fast.EngineResult, &slow.EngineResult, true)
			}
		}
	}
}

// TestStuckAtCompileDifferential is the same contract for the stuck-at
// model, whose hold windows exercise the kernels' repeated-read path.
func TestStuckAtCompileDifferential(t *testing.T) {
	for _, name := range []string{"CRC32", "dijkstra"} {
		bench, err := prog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := bench.Build()
		if err != nil {
			t.Fatal(err)
		}
		target, err := core.NewTarget(name, p)
		if err != nil {
			t.Fatal(err)
		}
		off, err := core.NewTargetOpts(name, p, core.TargetOptions{NoCompile: true})
		if err != nil {
			t.Fatal(err)
		}
		spec := core.StuckAtSpec{
			Target:  target,
			Window:  core.Win(50),
			N:       40,
			Seed:    31,
			Workers: 1,
			Record:  true,
		}
		fast, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Target = off
		spec.NoCompile = true
		slow, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, name+" stuckat compiled vs nocompile",
			&fast.EngineResult, &slow.EngineResult, true)
	}
}
