package core_test

import (
	"reflect"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/ir"
	"multiflip/internal/prog"
)

// diffConfigs spans the fault-model shapes that stress the fast-forward
// path differently: single-bit, same-register multi-bit (win-size 0), and
// multi-register windows (fixed and random).
var diffConfigs = []core.Config{
	core.SingleBit(),
	{MaxMBF: 4, Win: core.Win(0)},
	{MaxMBF: 3, Win: core.Win(10)},
	{MaxMBF: 2, Win: core.WinRange(2, 10)},
}

// TestCampaignSnapshotDifferential enforces the tentpole invariant: for
// every workload, both techniques and several fault models, a campaign
// fast-forwarded from golden-run snapshots produces experiment records
// bit-identical to a full-replay campaign.
func TestCampaignSnapshotDifferential(t *testing.T) {
	const (
		n    = 40
		seed = 12345
	)
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		target, err := core.NewTarget(bench.Name, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(target.Snapshots) == 0 {
			t.Fatalf("%s: target has no golden-run snapshots", bench.Name)
		}
		for _, tech := range core.Techniques() {
			for _, cfg := range diffConfigs {
				spec := core.CampaignSpec{
					Target:    target,
					Technique: tech,
					Config:    cfg,
					N:         n,
					Seed:      seed,
					Record:    true,
				}
				fast, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s: %v", bench.Name, tech, cfg, err)
				}
				spec.NoSnapshots = true
				slow, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s (no snapshots): %v", bench.Name, tech, cfg, err)
				}
				if !reflect.DeepEqual(fast.Experiments, slow.Experiments) {
					t.Errorf("%s %s %s: experiments diverge between snapshot and full-replay campaigns",
						bench.Name, tech, cfg)
					continue
				}
				if fast.Counts != slow.Counts || fast.TrapCounts != slow.TrapCounts ||
					fast.CrashActivated != slow.CrashActivated ||
					fast.ActivatedTotal != slow.ActivatedTotal {
					t.Errorf("%s %s %s: aggregates diverge between snapshot and full-replay campaigns",
						bench.Name, tech, cfg)
				}
			}
		}
	}
}

// TestCampaignSnapshotIntervalInvariance checks that results do not depend
// on where checkpoints happen to fall: targets prepared with very
// different snapshot intervals (and the snapshot-free target) all yield
// the same experiments.
func TestCampaignSnapshotIntervalInvariance(t *testing.T) {
	const (
		n    = 60
		seed = 777
	)
	bench, err := prog.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	variants := []core.TargetOptions{
		{NoSnapshots: true},
		{SnapshotInterval: 17, MaxSnapshots: 4}, // tiny interval, heavy thinning
		{SnapshotInterval: 500},
		{SnapshotInterval: 1 << 30}, // beyond the golden run: no snapshots land
	}
	baseline := make(map[core.Technique]*core.CampaignResult)
	for i, topts := range variants {
		target, err := core.NewTargetOpts(bench.Name, p, topts)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range core.Techniques() {
			res, err := core.RunCampaign(core.CampaignSpec{
				Target:    target,
				Technique: tech,
				Config:    core.Config{MaxMBF: 3, Win: core.Win(4)},
				N:         n,
				Seed:      seed + uint64(tech),
				Record:    true,
			})
			if err != nil {
				t.Fatalf("variant %d %s: %v", i, tech, err)
			}
			if i == 0 {
				baseline[tech] = res
				continue
			}
			if !reflect.DeepEqual(res.Experiments, baseline[tech].Experiments) {
				t.Errorf("variant %d %s: experiments differ from full-replay baseline", i, tech)
			}
		}
	}
}

// TestPinnedCampaignSnapshotDifferential covers the §IV-C3 rerun path:
// pinned experiments (exact candidate + bit of an earlier single-bit run)
// must also be invariant under fast-forwarding.
func TestPinnedCampaignSnapshotDifferential(t *testing.T) {
	bench, err := prog.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.RunCampaign(core.CampaignSpec{
		Target:    target,
		Technique: core.InjectOnWrite,
		Config:    core.SingleBit(),
		N:         50,
		Seed:      3,
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pins := make([]core.Pin, len(single.Experiments))
	for i, e := range single.Experiments {
		pins[i] = core.Pin{Cand: e.Cand, Bit: e.Bit}
	}
	spec := core.CampaignSpec{
		Target:    target,
		Technique: core.InjectOnWrite,
		Config:    core.Config{MaxMBF: 3, Win: core.Win(1)},
		Seed:      4,
		Record:    true,
		Pins:      pins,
	}
	fast, err := core.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.NoSnapshots = true
	slow, err := core.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast.Experiments, slow.Experiments) {
		t.Error("pinned experiments diverge between snapshot and full-replay campaigns")
	}
}

// buildWideGlobalProg returns a synthetic workload whose global segment
// (64 KiB) far exceeds the VM's eager-restore bound, forcing campaigns
// through the lazy copy-on-write resume path: experiments mount snapshot
// pages in place and copy only the pages they write.
func buildWideGlobalProg(t *testing.T) *ir.Program {
	t.Helper()
	const words = 1 << 13
	mb := ir.NewModule("wide-globals")
	base := mb.GlobalZero(8 * words)
	f := mb.Func("main", 0)
	acc := f.Let(ir.C(0))
	f.For(ir.C(0), ir.C(3000), func(i ir.Reg) {
		w := f.BinW(ir.W64, ir.OpAnd, f.BinW(ir.W64, ir.OpMul, i, ir.C(2654435761)), ir.C(words-1))
		addr := f.BinW(ir.W64, ir.OpAdd, ir.C(base), f.BinW(ir.W64, ir.OpMul, w, ir.C(8)))
		f.Store64(addr, f.BinW(ir.W64, ir.OpAdd, i, ir.C(0x1234)), 0)
		f.Mov(acc, f.BinW(ir.W64, ir.OpXor, acc, f.Load64(addr, 0)))
	})
	f.Out64(acc)
	f.RetVoid()
	p, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCampaignSnapshotDifferentialLargeGlobals extends the differential
// invariant to the page-granular copy-on-write representation at scale: a
// 64 KiB-global workload, prepared at two checkpoint densities, must
// produce experiment records bit-identical to full replay for both
// techniques.
func TestCampaignSnapshotDifferentialLargeGlobals(t *testing.T) {
	p := buildWideGlobalProg(t)
	for _, topts := range []core.TargetOptions{
		{},                                      // default (dense) interval
		{SnapshotInterval: 32},                  // denser: longer sharing chains
		{SnapshotInterval: 17, MaxSnapshots: 8}, // heavy thinning
	} {
		target, err := core.NewTargetOpts("wide-globals", p, topts)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range core.Techniques() {
			for _, cfg := range []core.Config{core.SingleBit(), {MaxMBF: 3, Win: core.Win(10)}} {
				spec := core.CampaignSpec{
					Target:    target,
					Technique: tech,
					Config:    cfg,
					N:         30,
					Seed:      99,
					Record:    true,
				}
				fast, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatal(err)
				}
				spec.NoSnapshots = true
				slow, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fast.Experiments, slow.Experiments) {
					t.Errorf("interval=%d %s %s: experiments diverge between CoW-snapshot and full-replay campaigns",
						topts.SnapshotInterval, tech, cfg)
				}
			}
		}
	}
}
