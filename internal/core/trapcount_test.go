package core_test

import (
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/vm"
)

func TestTrapCountsMatchExceptionTotal(t *testing.T) {
	tg := target(t, "qsort")
	res, err := core.RunCampaign(core.CampaignSpec{
		Target:    tg,
		Technique: core.InjectOnRead,
		Config:    core.SingleBit(),
		N:         400,
		Seed:      2,
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range res.TrapCounts {
		sum += c
	}
	if sum != res.Count(core.OutcomeException) {
		t.Fatalf("trap counts sum to %d, exception outcomes %d",
			sum, res.Count(core.OutcomeException))
	}
	if res.TrapCounts[vm.TrapNone] != 0 {
		t.Fatal("TrapNone counted as an exception")
	}
	// Pointer-rich workloads must show segmentation faults as the
	// dominant exception, as in the paper.
	if res.TrapCounts[vm.TrapSegfault] == 0 {
		t.Fatal("no segmentation faults in a pointer-heavy workload")
	}
	// Per-experiment records carry the trap kind for exception outcomes
	// and TrapNone otherwise.
	for _, e := range res.Experiments {
		if e.Outcome == core.OutcomeException && e.Trap == vm.TrapNone {
			t.Fatal("exception outcome without trap kind")
		}
		if e.Outcome != core.OutcomeException && e.Outcome != core.OutcomeHang && e.Trap != vm.TrapNone {
			t.Fatalf("outcome %v carries trap %v", e.Outcome, e.Trap)
		}
	}
}

func TestMisalignedTrapsOccurSomewhere(t *testing.T) {
	// Across a few thousand experiments on an address-heavy program, some
	// flips must land in an address's low bits and raise the misaligned
	// trap — the class the alignment ablation toggles.
	tg := target(t, "CRC32")
	res, err := core.RunCampaign(core.CampaignSpec{
		Target:    tg,
		Technique: core.InjectOnRead,
		Config:    core.SingleBit(),
		N:         4000,
		Seed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapCounts[vm.TrapMisaligned] == 0 {
		t.Skip("no misaligned traps in this sample; acceptable but unusual")
	}
}
