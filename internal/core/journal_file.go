package core

// FileJournal: the durable Journal. The format is an append-only log of
// checksummed JSON records, one per line:
//
//	crc32(payload) as 8 hex digits, a space, the JSON payload, '\n'
//
// Record types (the "t" field): "meta" (campaign identity, first
// record), "lease" (shard, worker, expiry) and "done" (shard
// checkpoint). Each record is written with a single O_APPEND write, so
// concurrent worker processes sharing the file interleave whole records
// on any POSIX filesystem. There is no compaction and, by default, no
// fsync: a crash can lose the tail of the log, never the middle, and
// whatever a torn tail loses is re-executed deterministically on resume.
// FileJournalOptions.Sync upgrades durability for machine-level crashes
// (power loss): checkpoint and meta records are fsynced after their
// append, and the parent directory is fsynced when the journal file is
// created, so an acknowledged checkpoint survives anything short of
// media failure. Lease records are advisory and are deliberately never
// synced — losing one costs at most a duplicate shard run.
//
// The loader is tolerant by construction: a line whose checksum or JSON
// does not parse is skipped (a torn write from a crashed or concurrent
// writer), a trailing partial line is left pending until its newline
// arrives, and an inconsistent "done" record is dropped by the shared
// journalState validation. The worst case of any corruption is a shard
// that re-runs — results are unaffected. FuzzJournalLoader pins this.
//
// Every mutating call first absorbs records appended by other processes
// since the last read, so a FileJournal is also a live view of a
// campaign being drained by a fleet.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"multiflip/internal/xrand"
)

// journalIO is the file surface FileJournal actually uses. *os.File
// implements it directly; FaultFile (faultjournal.go) wraps one to
// inject deterministic I/O failures for the robustness tests and the
// chaos CI job.
type journalIO interface {
	io.ReaderAt
	io.Writer
	Sync() error
	Close() error
}

// encodeLine frames one record payload: 8 hex digits of CRC-32, a
// space, the payload, '\n'. The journal and the shared memo use the same
// framing.
func encodeLine(payload []byte) []byte {
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload))
}

// decodeLine unframes one record line (without its '\n'), reporting
// whether the checksum held.
func decodeLine(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	return payload, true
}

// splitLines splits record data on '\n', dropping a trailing partial
// line (a torn final write).
func splitLines(data []byte) [][]byte {
	var out [][]byte
	for {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return out
		}
		out = append(out, data[:nl])
		data = data[nl+1:]
	}
}

// journalRecord is the on-disk union of the three record types.
type journalRecord struct {
	T     string        `json:"t"`
	Meta  *CampaignMeta `json:"meta,omitempty"`
	Shard int           `json:"s,omitempty"`
	// Worker and Exp (lease expiry, Unix milliseconds) belong to "lease"
	// records.
	Worker string       `json:"w,omitempty"`
	Exp    int64        `json:"exp,omitempty"`
	Res    *ShardResult `json:"res,omitempty"`
}

// FileJournal implements Journal over an append-only record log shared
// by worker processes.
type FileJournal struct {
	mu   sync.Mutex
	f    journalIO
	path string
	// readOff is how far absorb has consumed the file; pending buffers a
	// trailing partial line until the rest of it lands.
	readOff int64
	pending []byte
	sync    bool
	// rng drives the append-retry backoff jitter (nil degrades to a fixed
	// half-backoff). Deliberately not part of the campaign's deterministic
	// random streams: retry timing never influences results.
	rng *xrand.Rand
	st  journalState
}

// FileJournalOptions configures OpenFileJournalOpts.
type FileJournalOptions struct {
	// Sync fsyncs the journal after every checkpoint or meta append and
	// fsyncs the parent directory when the journal file is created, so
	// acknowledged checkpoints survive machine-level crashes (power
	// loss), not just process death. Off by default: a lost unsynced
	// tail only re-runs deterministic shards on resume.
	Sync bool
	// LeaseGrace is the wall-clock skew margin granted to lease expiries
	// written by other processes (0 = DefaultLeaseGrace, negative =
	// none). See DefaultLeaseTTL for the cross-process clock contract.
	LeaseGrace time.Duration
	// Fault, when set, wraps the journal file in a FaultFile injecting
	// the plan's deterministic I/O failure schedule (tests, chaos CI).
	// Nil falls back to the MULTIFLIP_JOURNAL_FAULTS environment plan, if
	// any.
	Fault *FaultPlan
}

// OpenFileJournal opens (creating if needed) a journal file and absorbs
// its records. Opening never fails on corrupt content — bad records are
// skipped — only on I/O errors.
func OpenFileJournal(path string) (*FileJournal, error) {
	return OpenFileJournalOpts(path, FileJournalOptions{})
}

// OpenFileJournalOpts is OpenFileJournal with explicit durability and
// clock-skew options.
func OpenFileJournalOpts(path string, opts FileJournalOptions) (*FileJournal, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: open journal: %w", err)
	}
	if opts.Sync && created {
		// Make the new directory entry itself durable: without this a
		// power loss can forget the file existed even though its first
		// records were fsynced.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	var fio journalIO = f
	fault := opts.Fault
	if fault == nil {
		fault = envFaultPlan
	}
	if fault != nil {
		fio = NewFaultFile(f, fault)
	}
	j := &FileJournal{f: fio, path: path, sync: opts.Sync,
		rng: xrand.New(uint64(time.Now().UnixNano())),
		st:  journalState{now: time.Now, grace: opts.LeaseGrace}}
	if err := j.absorbLocked(); err != nil {
		fio.Close()
		return nil, err
	}
	return j, nil
}

// syncDir fsyncs a directory, making its entries durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("core: sync journal dir: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("core: sync journal dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("core: sync journal dir: %w", cerr)
	}
	return nil
}

// Path returns the journal file's path.
func (j *FileJournal) Path() string { return j.path }

// Meta returns the bound campaign identity (zero until Bind or until the
// file's meta record is absorbed).
func (j *FileJournal) Meta() CampaignMeta {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.meta
}

// absorbLocked reads records appended since the last absorb and applies
// them. Torn or corrupt lines are skipped; a trailing partial line stays
// pending. Callers hold j.mu.
func (j *FileJournal) absorbLocked() error {
	buf := make([]byte, 64*1024)
	for {
		n, err := j.f.ReadAt(buf, j.readOff)
		if n > 0 {
			j.readOff += int64(n)
			j.pending = append(j.pending, buf[:n]...)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return j.wrapErr("read journal", err)
		}
	}
	for {
		nl := bytes.IndexByte(j.pending, '\n')
		if nl < 0 {
			break
		}
		line := j.pending[:nl]
		j.pending = j.pending[nl+1:]
		j.applyLine(line)
	}
	return nil
}

// applyLine parses and applies one complete record line, skipping
// anything malformed.
func (j *FileJournal) applyLine(line []byte) {
	payload, ok := decodeLine(line)
	if !ok {
		return
	}
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return
	}
	switch rec.T {
	case "meta":
		if rec.Meta != nil && !j.st.bound {
			// init only fails on invalid shape; a bad meta record is skipped
			// like any other corrupt line.
			_ = j.st.init(*rec.Meta)
		}
	case "lease":
		// Absorbed expiries are wall-clock timestamps from another
		// process's clock (or re-reads of our own appends, which
		// applyLease recognizes and ignores); the lease-liveness check
		// grants them the skew grace margin.
		j.st.applyLease(rec.Shard, rec.Worker, time.UnixMilli(rec.Exp), false)
	case "done":
		if rec.Res != nil {
			j.st.applyDone(rec.Res)
		}
	}
}

// appendAttempts bounds the append retry loop: transient I/O errors
// (ENOSPC racing a cleaner, EIO blips, short writes) get a handful of
// backed-off re-issues before the campaign gives up.
const appendAttempts = 6

// appendBackoff{Base,Cap} shape the retry backoff: exponential from
// Base, capped at Cap, jittered to [d/2, d). Variables, not constants,
// so the fault-injection tests can shrink them.
var (
	appendBackoffBase = 2 * time.Millisecond
	appendBackoffCap  = 250 * time.Millisecond
)

// appendLocked writes one record with a single O_APPEND write, retrying
// transient failures with jittered exponential backoff. durable also
// fsyncs (in sync mode) before the append counts as done. After ANY
// failure — a write error, a short write, a failed fsync — the record's
// durability is unknown, so the whole framed line is re-issued, never
// assumed written: a short first write leaves torn debris the loader
// skips, and a complete-but-unacknowledged one a duplicate the
// record-application layer already drops. Callers hold j.mu and apply
// the record after the append succeeds.
func (j *FileJournal) appendLocked(rec *journalRecord, durable bool) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return j.wrapErr("encode journal record", err)
	}
	line := encodeLine(payload)
	backoff := appendBackoffBase
	var last error
	for attempt := 0; attempt < appendAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(j.jitter(backoff))
			if backoff *= 2; backoff > appendBackoffCap {
				backoff = appendBackoffCap
			}
		}
		if _, err := j.f.Write(line); err != nil {
			last = err
			continue
		}
		if durable && j.sync {
			if err := j.f.Sync(); err != nil {
				last = err
				continue
			}
		}
		return nil
	}
	return j.wrapErr("append journal record", last)
}

// jitter spreads a backoff delay over [d/2, d) so retrying workers
// sharing a stressed filesystem don't beat in sync.
func (j *FileJournal) jitter(d time.Duration) time.Duration {
	half := d / 2
	if j.rng == nil || half <= 0 {
		return half
	}
	return half + time.Duration(j.rng.Uint64n(uint64(half)))
}

// wrapErr labels a journal error with the campaign fingerprint and file
// path, so a failed multi-process drain names which campaign file broke.
func (j *FileJournal) wrapErr(op string, err error) error {
	if j.st.bound {
		return fmt.Errorf("core: campaign %016x journal %s: %s: %w",
			j.st.meta.Fingerprint, j.path, op, err)
	}
	return fmt.Errorf("core: journal %s: %s: %w", j.path, op, err)
}

// Bind implements Journal: absorb the file, then install or validate the
// campaign identity, writing the meta record if the file had none.
func (j *FileJournal) Bind(meta CampaignMeta) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.absorbLocked(); err != nil {
		return err
	}
	hadMeta := j.st.bound
	if err := j.st.init(meta); err != nil {
		return err
	}
	if !hadMeta {
		return j.appendLocked(&journalRecord{T: "meta", Meta: &meta}, true)
	}
	return nil
}

// Claim implements Journal. The lease record is persisted before the
// claim is returned, so a peer absorbing the log sees the shard as taken.
func (j *FileJournal) Claim(worker string, ttl time.Duration) (int, ClaimState, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.absorbLocked(); err != nil {
		return 0, ClaimWait, err
	}
	shard, state := j.st.findClaim()
	if state != ClaimOK {
		return shard, state, nil
	}
	// The lease record is deliberately not fsynced even in sync mode:
	// leases are advisory, and losing one to a crash only lets a peer
	// start the shard sooner.
	exp := j.st.now().Add(ttl)
	if err := j.appendLocked(&journalRecord{T: "lease", Shard: shard, Worker: worker, Exp: exp.UnixMilli()}, false); err != nil {
		return 0, ClaimWait, err
	}
	j.st.applyLease(shard, worker, exp, true)
	return shard, ClaimOK, nil
}

// Renew implements Journal: the lease heartbeat. The renewal re-uses the
// lease-append path (and, on re-read, the same own-echo suppression), is
// never fsynced, and is dropped without error when it no longer applies
// — the shard completed, or the lease expired and a peer stole it, in
// which case extending it would stomp the thief's claim.
func (j *FileJournal) Renew(worker string, shard int, ttl time.Duration) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.absorbLocked(); err != nil {
		return err
	}
	if !j.st.renewable(shard, worker) {
		return nil
	}
	exp := j.st.now().Add(ttl)
	if err := j.appendLocked(&journalRecord{T: "lease", Shard: shard, Worker: worker, Exp: exp.UnixMilli()}, false); err != nil {
		return err
	}
	j.st.applyLease(shard, worker, exp, true)
	return nil
}

// Checkpoint implements Journal. A shard that is already checkpointed —
// a peer beat us to it after a lease steal — is dropped without a write:
// shard results are deterministic, so the duplicate is identical.
func (j *FileJournal) Checkpoint(res ShardResult) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.absorbLocked(); err != nil {
		return err
	}
	if !j.st.bound || res.Shard < 0 || res.Shard >= len(j.st.shards) {
		return fmt.Errorf("core: checkpoint shard %d outside campaign", res.Shard)
	}
	if j.st.shards[res.Shard].res != nil {
		return nil
	}
	if err := j.appendLocked(&journalRecord{T: "done", Shard: res.Shard, Res: &res}, true); err != nil {
		return err
	}
	j.st.applyDone(&res)
	return nil
}

// Results implements Journal.
func (j *FileJournal) Results() ([]*ShardResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.absorbLocked(); err != nil {
		return nil, err
	}
	return j.st.results(), nil
}

// Status implements Journal.
func (j *FileJournal) Status() (CampaignStatus, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.absorbLocked(); err != nil {
		return CampaignStatus{}, err
	}
	if !j.st.bound {
		return CampaignStatus{}, fmt.Errorf("core: journal %s holds no campaign", j.path)
	}
	return j.st.status(), nil
}

// Close implements Journal.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// JournalInfo pairs a journal file with its campaign identity and
// progress, for `fi -status`.
type JournalInfo struct {
	Path   string
	Meta   CampaignMeta
	Status CampaignStatus
}

// InspectDir scans a journal directory and reports every campaign in it,
// sorted by path. It degrades per entry rather than failing the scan:
// journals whose meta record is missing or torn are skipped (there is
// nothing to report yet), as are entries that cannot be opened at all (a
// permission problem, or a stray directory matching the name pattern). A
// nonexistent or empty directory — or one holding only memo-*.mfj files —
// reports no campaigns and no error.
func InspectDir(dir string) ([]JournalInfo, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "campaign-*.mfj"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []JournalInfo
	for _, p := range paths {
		j, err := OpenFileJournal(p)
		if err != nil {
			continue
		}
		st, serr := j.Status()
		meta := j.Meta()
		j.Close()
		if serr != nil {
			continue
		}
		out = append(out, JournalInfo{Path: p, Meta: meta, Status: st})
	}
	return out, nil
}
