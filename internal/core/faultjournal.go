package core

// The fault-injecting journal harness: a journalIO wrapper that turns
// the tool's own methodology on its own durability layer. A FaultPlan
// seeds a deterministic schedule of injected I/O failures — ENOSPC,
// EIO, short writes, failed fsyncs — and FaultFile applies it to the
// campaign journal's writes, exactly the fault classes an append-only
// log on a real filesystem sees. The robustness tests and the chaos CI
// job drive a journaled campaign through the wrapper and require the
// final results bit-identical to a clean run: the retry/backoff layer
// (journal_file.go appendLocked), the re-issue-after-failed-fsync rule
// and the torn-line-tolerant loader must absorb every injected fault.
//
// Determinism matters here as much as in the campaigns themselves: the
// schedule is a pure function of (plan seed, write sequence number), so
// a failing chaos run replays with the same seed.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"multiflip/internal/xrand"
)

// FaultPlan seeds a deterministic I/O failure schedule for a FaultFile.
type FaultPlan struct {
	// Seed pins the schedule: the same plan injects the same faults at
	// the same write sequence numbers.
	Seed uint64
	// Permille is the per-operation fault probability in 1/1000 units
	// (60 = 6% of writes/fsyncs fail). Values outside (0, 1000] inject
	// nothing.
	Permille int
}

// ParseFaultPlan parses the "seed:permille" notation of the
// MULTIFLIP_JOURNAL_FAULTS environment variable ("9:60" = seed 9, 6%
// fault rate).
func ParseFaultPlan(s string) (*FaultPlan, error) {
	seedStr, pmStr, ok := strings.Cut(strings.TrimSpace(s), ":")
	if !ok {
		return nil, fmt.Errorf("core: fault plan %q: want seed:permille", s)
	}
	seed, err1 := strconv.ParseUint(seedStr, 10, 64)
	pm, err2 := strconv.Atoi(pmStr)
	if err1 != nil || err2 != nil || pm < 1 || pm > 1000 {
		return nil, fmt.Errorf("core: fault plan %q: want seed:permille with permille in [1,1000]", s)
	}
	return &FaultPlan{Seed: seed, Permille: pm}, nil
}

// envFaultPlan is the process-wide fault plan from
// MULTIFLIP_JOURNAL_FAULTS, applied to every FileJournal opened without
// an explicit FileJournalOptions.Fault. The chaos CI job sets it to
// stress a whole journaled study through unmodified front-ends; a
// malformed value is ignored rather than crashing every journal open.
var envFaultPlan = func() *FaultPlan {
	v := os.Getenv("MULTIFLIP_JOURNAL_FAULTS")
	if v == "" {
		return nil
	}
	p, err := ParseFaultPlan(v)
	if err != nil {
		return nil
	}
	return p
}()

// faultsInjected counts injected faults process-wide, so tests can
// assert their fault schedule actually fired (a vacuously green
// robustness test is worse than none).
var faultsInjected atomic.Int64

// FaultFile wraps a journalIO, injecting the plan's failure schedule
// into Write and Sync. Reads pass through untouched — the loader's
// tolerance for torn and duplicate records is exercised by the debris
// the injected write failures leave behind, not by corrupting reads.
// Each injected write fault rotates through ENOSPC, EIO and a short
// write (half the record, then ENOSPC: the torn-tail case); injected
// fsyncs fail with EIO. Safe for concurrent use.
type FaultFile struct {
	inner journalIO

	mu  sync.Mutex
	rng *xrand.Rand
	pm  uint64
	// seq numbers the fault decisions taken, faults the faults injected;
	// kind rotates the write-fault flavor.
	seq, faults, kind int
}

// NewFaultFile wraps inner with plan's deterministic fault schedule.
func NewFaultFile(inner journalIO, plan *FaultPlan) *FaultFile {
	return &FaultFile{
		inner: inner,
		rng:   xrand.New(plan.Seed),
		pm:    uint64(plan.Permille),
	}
}

// Faults reports how many faults this file has injected.
func (ff *FaultFile) Faults() int {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.faults
}

// inject decides whether the next operation faults, and with which
// rotation index.
func (ff *FaultFile) inject() (int, bool) {
	ff.seq++
	if ff.pm < 1 || ff.pm > 1000 || ff.rng.Uint64n(1000) >= ff.pm {
		return 0, false
	}
	ff.faults++
	ff.kind++
	faultsInjected.Add(1)
	return ff.kind, true
}

// ReadAt implements journalIO (pass-through).
func (ff *FaultFile) ReadAt(p []byte, off int64) (int, error) {
	return ff.inner.ReadAt(p, off)
}

// Write implements journalIO with the injected write-fault rotation.
func (ff *FaultFile) Write(p []byte) (int, error) {
	ff.mu.Lock()
	kind, fault := ff.inject()
	ff.mu.Unlock()
	if !fault {
		return ff.inner.Write(p)
	}
	switch kind % 3 {
	case 0:
		return 0, syscall.ENOSPC
	case 1:
		return 0, syscall.EIO
	default:
		// The torn-tail case: half the record really lands, then the
		// device fills. The loader must skip the debris and the writer
		// must re-issue the whole record.
		n, err := ff.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, syscall.ENOSPC
	}
}

// Sync implements journalIO: injected fsync failures report EIO, after
// which the caller must treat the preceding append as not durable and
// re-issue it — never assume it was written.
func (ff *FaultFile) Sync() error {
	ff.mu.Lock()
	_, fault := ff.inject()
	ff.mu.Unlock()
	if fault {
		return syscall.EIO
	}
	return ff.inner.Sync()
}

// Close implements journalIO (pass-through).
func (ff *FaultFile) Close() error { return ff.inner.Close() }

// interface check
var _ io.ReaderAt = (*FaultFile)(nil)
