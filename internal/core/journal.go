package core

// The campaign journal: the durable half of the campaign service. A
// journaled campaign is split into fixed experiment shards — contiguous
// index spans, the batched claim unit the engine already schedules by —
// and the journal records three kinds of events: the campaign's identity
// (CampaignMeta), shard leases (which worker is running which shard, and
// until when), and shard checkpoints (a completed shard's aggregate,
// ShardResult). Because every experiment derives its randomness from
// (Seed, index) alone, a shard's result is a pure function of the
// campaign parameters: re-running a shard after a crash, or on a
// different worker, reproduces it bit-identically. That makes the whole
// scheme idempotent — the journal accepts the first checkpoint per shard
// and drops duplicates, so lease stealing and crash/restart cycles can
// execute a shard several times without ever double-counting it.
//
// Leases are advisory, not locks: they minimize duplicate work, they do
// not guard correctness. A worker that stalls past its lease's expiry
// loses the shard to a peer; if it later finishes anyway, its checkpoint
// is either the accepted one or an identical duplicate.
//
// Two implementations exist: MemJournal (in-process, used by tests and
// by multiple drainers sharing one process) and FileJournal
// (journal_file.go, append-only checksummed records shared by worker
// processes).

import (
	"fmt"
	"sync"
	"time"
)

// DefaultShardSize is the number of experiments per journal shard: the
// granularity of checkpointing, resume and lease stealing.
const DefaultShardSize = 64

// DefaultLeaseTTL is the shard lease duration. It must exceed the
// worst-case wall-clock time of one shard; an expired lease invites a
// peer to re-run the shard (correct but wasted work).
//
// Cross-process contract: a lease's expiry is stamped by the claiming
// process's clock and judged by the observing process's clock. Within
// one process the comparison uses Go's monotonic clock and is exact;
// across processes it is wall-clock arithmetic, so drainers sharing a
// journal directory must keep their clocks within the lease grace
// margin (DefaultLeaseGrace, or Service.LeaseGrace) of each other.
// Clock skew never breaks correctness — checkpoints are idempotent and
// shard results deterministic — it only costs duplicate work (a lease
// stolen early) or idle waiting (a lease honored late).
const DefaultLeaseTTL = 30 * time.Second

// DefaultLeaseGrace is the slack added to lease expiries stamped by
// other processes before a lease is considered expired, absorbing
// wall-clock skew between drainers. Larger values delay legitimate
// steals from crashed peers by the same margin; smaller values risk
// premature steals (duplicate work) when clocks disagree.
const DefaultLeaseGrace = 2 * time.Second

// CampaignMeta identifies a journaled campaign. The fingerprint is
// content-addressed over the target's behaviour (golden output, dynamic
// profile), the fault model's parameters and the engine knobs that can
// influence recorded results, so a journal can never silently resume a
// different campaign.
type CampaignMeta struct {
	// Fingerprint is the campaign's content address (Engine.fingerprint).
	Fingerprint uint64 `json:"fp"`
	// Model is the fault model's self-description (FaultModel.Describe),
	// kept for inspection and as a fingerprint cross-check.
	Model string `json:"model"`
	// N is the campaign's experiment count.
	N int `json:"n"`
	// ShardSize is the experiments per shard.
	ShardSize int `json:"shard"`
	// Seed is the campaign seed.
	Seed uint64 `json:"seed"`
	// Record marks a campaign whose checkpoints carry per-experiment
	// records.
	Record bool `json:"record"`
}

// NumShards returns the campaign's shard count.
func (m *CampaignMeta) NumShards() int {
	if m.ShardSize <= 0 || m.N <= 0 {
		return 0
	}
	return (m.N + m.ShardSize - 1) / m.ShardSize
}

// Span returns shard's experiment index range [lo, hi).
func (m *CampaignMeta) Span(shard int) (lo, hi int) {
	lo = shard * m.ShardSize
	hi = lo + m.ShardSize
	if hi > m.N {
		hi = m.N
	}
	return lo, hi
}

// equal reports whether two metas describe the same campaign.
func (m *CampaignMeta) equal(o *CampaignMeta) bool {
	return m.Fingerprint == o.Fingerprint && m.Model == o.Model &&
		m.N == o.N && m.ShardSize == o.ShardSize &&
		m.Seed == o.Seed && m.Record == o.Record
}

// ShardResult is one shard's aggregate: the associative unit campaign
// results are folded from. Workers accumulate one per claimed shard and
// checkpoint it; resumed campaigns fold stored ShardResults instead of
// re-running their experiments. The fields mirror EngineResult's
// aggregates (EngineResult.Fold merges one in).
type ShardResult struct {
	// Shard is the shard index; the experiment span follows from
	// CampaignMeta.Span.
	Shard int `json:"s"`
	// Tally holds the shard's per-outcome counts.
	Tally Tally `json:"tally"`
	// Crash is the shard's slice of the crash-activation histogram.
	Crash [ActivatedCap + 1]int `json:"crash"`
	// Traps is the shard's slice of the per-trap-kind counters.
	Traps [NumTrapKinds]int `json:"traps"`
	// Activated sums activated errors over the shard's experiments.
	Activated int `json:"act"`
	// Converged counts convergence-terminated experiments in the shard.
	Converged int `json:"conv"`
	// MemoHits counts memo-resolved experiments in the shard.
	MemoHits int `json:"memo"`
	// StaticPruned counts experiments the static liveness tier classified
	// without executing. Omitted when zero, so journals written before
	// the liveness tier existed are unchanged on disk and load with zero
	// pruned.
	StaticPruned int `json:"spruned,omitempty"`
	// Experiments holds the shard's per-experiment records, in index
	// order, when the campaign records them (nil otherwise).
	Experiments []Experiment `json:"exps,omitempty"`
	// Quarantined holds the repro records of the shard's poisoned
	// experiments (Quarantine failure policy), in index order. Omitted
	// when empty, so journals written before the supervision layer
	// existed — and the overwhelmingly common healthy shard — are
	// unchanged on disk and load with zero quarantined.
	Quarantined []QuarantineRecord `json:"quar,omitempty"`
}

// Add folds one experiment into the shard aggregate. converged, memoHit
// and staticPruned report how the experiment terminated early (or was
// classified without running), if it was.
func (s *ShardResult) Add(exp *Experiment, converged, memoHit, staticPruned bool) {
	s.Tally.AddDim(exp.Outcome, exp.Bit, exp.Dir)
	s.Activated += exp.Activated
	if exp.Outcome == OutcomeException {
		a := exp.Activated
		if a > ActivatedCap {
			a = ActivatedCap
		}
		if a >= 0 {
			s.Crash[a]++
		}
		if int(exp.Trap) >= 0 && int(exp.Trap) < NumTrapKinds {
			s.Traps[exp.Trap]++
		}
	}
	if converged {
		s.Converged++
	}
	if memoHit {
		s.MemoHits++
	}
	if staticPruned {
		s.StaticPruned++
	}
}

// Fold merges one shard aggregate into the result; lo is the shard's
// first experiment index (recorded experiments land at [lo, lo+len)).
// Folding is associative and commutative over disjoint shards — every
// field is a sum, a histogram of sums, or an index-placed record — so
// shards checkpoint independently and merge in any order and grouping.
func (r *EngineResult) Fold(s *ShardResult, lo int) {
	r.Tally.Merge(&s.Tally)
	for a, c := range s.Crash {
		r.CrashActivated[a] += c
	}
	for k, c := range s.Traps {
		r.TrapCounts[k] += c
	}
	r.ActivatedTotal += s.Activated
	r.Converged += s.Converged
	r.MemoHits += s.MemoHits
	r.StaticPruned += s.StaticPruned
	r.Quarantined = append(r.Quarantined, s.Quarantined...)
	if r.Experiments != nil && len(s.Experiments) > 0 && lo >= 0 && lo+len(s.Experiments) <= len(r.Experiments) {
		copy(r.Experiments[lo:], s.Experiments)
	}
}

// Merge folds another partial result into r. Both sides must aggregate
// disjoint experiment subsets of the same campaign. Experiments merge
// positionally: both slices are full-length with zero-valued holes for
// experiments the partial result does not cover (Outcome 0 is unset —
// real outcomes start at OutcomeBenign = 1). Merging is associative and
// commutative; the shard-merge property test pins it.
func (r *EngineResult) Merge(o *EngineResult) {
	r.Tally.Merge(&o.Tally)
	for a, c := range o.CrashActivated {
		r.CrashActivated[a] += c
	}
	for k, c := range o.TrapCounts {
		r.TrapCounts[k] += c
	}
	r.ActivatedTotal += o.ActivatedTotal
	r.Converged += o.Converged
	r.MemoHits += o.MemoHits
	r.StaticPruned += o.StaticPruned
	// Re-sorting after the append keeps Merge commutative for the
	// quarantine records too (both sides cover disjoint indices).
	r.Quarantined = append(r.Quarantined, o.Quarantined...)
	sortQuarantined(r.Quarantined)
	if r.Experiments != nil && len(o.Experiments) == len(r.Experiments) {
		for i := range o.Experiments {
			if o.Experiments[i].Outcome != 0 {
				r.Experiments[i] = o.Experiments[i]
			}
		}
	}
}

// ClaimState is the outcome of a Journal.Claim call.
type ClaimState int

// Claim outcomes.
const (
	// ClaimOK: a shard was leased to the caller.
	ClaimOK ClaimState = iota
	// ClaimWait: nothing is claimable right now — the remaining shards
	// are leased to live workers. Retry after a short delay: a lease may
	// expire (steal it) or its shard may complete.
	ClaimWait
	// ClaimDrained: every shard is checkpointed.
	ClaimDrained
)

// CampaignStatus is a point-in-time snapshot of a journaled campaign:
// shard progress plus the running tally over checkpointed shards. Because
// shard merging is associative, the snapshot is exact for the completed
// portion — a live campaign can be watched mid-flight.
type CampaignStatus struct {
	// Shards is the total shard count; Done, Leased and Pending partition
	// it (Leased counts unexpired leases on incomplete shards).
	Shards, Done, Leased, Pending int
	// ExperimentsTotal and ExperimentsDone count experiments; Done covers
	// exactly the checkpointed shards.
	ExperimentsTotal, ExperimentsDone int
	// Tally is the running outcome tally over checkpointed shards.
	Tally Tally
	// Converged, MemoHits and StaticPruned sum the early-exit and
	// static-pruning counters over checkpointed shards.
	Converged, MemoHits, StaticPruned int
	// Quarantined counts experiments poisoned under the Quarantine
	// failure policy across checkpointed shards.
	Quarantined int
	// Leases lists the live leases on incomplete shards — who is running
	// what, and for how much longer — in shard order. len(Leases) ==
	// Leased.
	Leases []LeaseInfo
}

// LeaseInfo describes one live shard lease in a status snapshot. For
// leases restored from journal records (other processes' workers) the
// remaining time is wall-clock arithmetic including the skew grace
// margin, so it can exceed the TTL by up to that margin.
type LeaseInfo struct {
	// Shard is the leased shard's index.
	Shard int
	// Worker is the lease holder's worker ID.
	Worker string
	// Remaining is the time until the lease may be stolen.
	Remaining time.Duration
}

// Journal records a campaign's durable state: its identity, shard leases
// and shard checkpoints. Implementations must be safe for concurrent use
// — every engine worker claims and checkpoints through the one journal —
// and must keep completion idempotent: the first checkpoint per shard
// wins, duplicates are dropped. MemJournal and FileJournal implement it;
// the interface is the seam for future backends (a database, an object
// store).
type Journal interface {
	// Bind attaches the journal to a campaign, creating the record if the
	// journal is empty and validating the identity if it is not: binding
	// a journal that holds a different campaign is an error.
	Bind(meta CampaignMeta) error
	// Claim leases one incomplete shard to worker for ttl, preferring
	// unleased shards and stealing expired leases (lowest index first).
	Claim(worker string, ttl time.Duration) (shard int, state ClaimState, err error)
	// Renew extends worker's live lease on shard by ttl from now: the
	// heartbeat a worker sends at experiment boundaries so a shard slower
	// than the TTL is not stolen mid-run. A renewal that no longer
	// applies — the shard completed, or the lease expired and was stolen
	// — is dropped without error: like the lease itself, renewal is
	// advisory and never guards correctness.
	Renew(worker string, shard int, ttl time.Duration) error
	// Checkpoint records a completed shard. The first checkpoint per
	// shard is accepted; later ones are dropped without error (shard
	// results are deterministic, so duplicates are identical).
	Checkpoint(res ShardResult) error
	// Results returns the accepted checkpoint of every completed shard.
	Results() ([]*ShardResult, error)
	// Status snapshots the campaign's progress.
	Status() (CampaignStatus, error)
	// Close releases the journal's resources. The campaign state itself
	// stays (durable backends keep it on disk; MemJournal keeps it in
	// memory for the process lifetime).
	Close() error
}

// journalState is the shard bookkeeping shared by MemJournal and
// FileJournal. Callers hold the owning journal's lock.
type journalState struct {
	meta   CampaignMeta
	bound  bool
	shards []shardState
	now    func() time.Time
	// grace is the slack granted to lease expiries absorbed from other
	// processes (wall-clock timestamps with no monotonic reading): 0
	// selects DefaultLeaseGrace, negative disables the margin. Leases
	// applied locally carry Go's monotonic clock and get no grace.
	grace time.Duration
}

// shardState tracks one shard: its accepted checkpoint (nil while
// pending) and the latest lease. leaseLocal marks an expiry stamped by
// this process — a monotonic-clock time.Time that compares exactly —
// as opposed to one restored from a journal record, which is wall-clock
// only and is judged with the skew grace margin.
type shardState struct {
	res         *ShardResult
	leaseWorker string
	leaseExp    time.Time
	leaseLocal  bool
}

// init installs or validates the campaign identity.
func (st *journalState) init(meta CampaignMeta) error {
	if meta.N <= 0 || meta.ShardSize <= 0 {
		return fmt.Errorf("core: journal meta needs N > 0 and ShardSize > 0")
	}
	if st.bound {
		if !st.meta.equal(&meta) {
			return fmt.Errorf("core: journal holds a different campaign: %q n=%d seed=%d (want %q n=%d seed=%d)",
				st.meta.Model, st.meta.N, st.meta.Seed, meta.Model, meta.N, meta.Seed)
		}
		return nil
	}
	st.meta = meta
	st.bound = true
	st.shards = make([]shardState, meta.NumShards())
	return nil
}

// applyLease records worker's lease on shard until exp. local marks an
// expiry stamped by this process's clock (monotonic, exact); an absorbed
// record that echoes the lease this process already holds — same worker,
// same millisecond — is dropped so re-reading our own journal writes
// never downgrades a monotonic expiry to a wall-clock one.
func (st *journalState) applyLease(shard int, worker string, exp time.Time, local bool) {
	if !st.bound || shard < 0 || shard >= len(st.shards) {
		return
	}
	sh := &st.shards[shard]
	if sh.res != nil {
		return
	}
	if !local && sh.leaseLocal && worker == sh.leaseWorker &&
		exp.UnixMilli() == sh.leaseExp.UnixMilli() {
		return
	}
	sh.leaseWorker = worker
	sh.leaseExp = exp
	sh.leaseLocal = local
}

// leaseDeadline returns the instant the shard's lease may be stolen:
// the stamped expiry, stretched by the skew grace margin for leases
// restored from journal records (wall-clock only). The zero time means
// no lease.
func (st *journalState) leaseDeadline(sh *shardState) time.Time {
	if sh.leaseWorker == "" {
		return time.Time{}
	}
	exp := sh.leaseExp
	if !sh.leaseLocal {
		grace := st.grace
		if grace == 0 {
			grace = DefaultLeaseGrace
		}
		if grace > 0 {
			exp = exp.Add(grace)
		}
	}
	return exp
}

// leaseLive reports whether the shard's lease holds at now: exact for
// leases this process stamped, stretched by the skew grace margin for
// leases restored from journal records.
func (st *journalState) leaseLive(sh *shardState, now time.Time) bool {
	return st.leaseDeadline(sh).After(now)
}

// renewable reports whether worker may extend its lease on shard: the
// shard is still incomplete and the worker still holds a live lease on
// it. A renewal after a steal or a completion must be dropped — it would
// stomp the thief's lease or waste a record on a done shard.
func (st *journalState) renewable(shard int, worker string) bool {
	if !st.bound || shard < 0 || shard >= len(st.shards) {
		return false
	}
	sh := &st.shards[shard]
	return sh.res == nil && sh.leaseWorker == worker && st.leaseLive(sh, st.now())
}

// applyDone accepts a shard checkpoint unless the shard already has one
// or the record is inconsistent with the campaign meta (a corrupt or
// foreign record; conservatively dropped — the shard just re-runs).
func (st *journalState) applyDone(res *ShardResult) bool {
	if !st.bound || res.Shard < 0 || res.Shard >= len(st.shards) {
		return false
	}
	sh := &st.shards[res.Shard]
	if sh.res != nil {
		return false
	}
	lo, hi := st.meta.Span(res.Shard)
	if res.Tally.N() != hi-lo {
		return false
	}
	if st.meta.Record && len(res.Experiments) != hi-lo {
		return false
	}
	if !st.meta.Record && len(res.Experiments) != 0 {
		return false
	}
	sh.res = res
	return true
}

// findClaim picks the next claimable shard: the lowest-index incomplete
// shard that is unleased or whose lease expired. It does not record the
// lease — the caller persists a lease record first, then applies it.
func (st *journalState) findClaim() (int, ClaimState) {
	if !st.bound {
		return 0, ClaimWait
	}
	now := st.now()
	allDone := true
	for i := range st.shards {
		sh := &st.shards[i]
		if sh.res != nil {
			continue
		}
		allDone = false
		if !st.leaseLive(sh, now) {
			return i, ClaimOK
		}
	}
	if allDone {
		return 0, ClaimDrained
	}
	return 0, ClaimWait
}

// results returns the accepted checkpoints in shard order.
func (st *journalState) results() []*ShardResult {
	out := make([]*ShardResult, 0, len(st.shards))
	for i := range st.shards {
		if st.shards[i].res != nil {
			out = append(out, st.shards[i].res)
		}
	}
	return out
}

// status snapshots progress.
func (st *journalState) status() CampaignStatus {
	s := CampaignStatus{
		Shards:           len(st.shards),
		ExperimentsTotal: st.meta.N,
	}
	now := st.now()
	for i := range st.shards {
		sh := &st.shards[i]
		switch {
		case sh.res != nil:
			s.Done++
			lo, hi := st.meta.Span(i)
			s.ExperimentsDone += hi - lo
			s.Tally.Merge(&sh.res.Tally)
			s.Converged += sh.res.Converged
			s.MemoHits += sh.res.MemoHits
			s.StaticPruned += sh.res.StaticPruned
			s.Quarantined += len(sh.res.Quarantined)
		case st.leaseLive(sh, now):
			s.Leased++
			s.Leases = append(s.Leases, LeaseInfo{
				Shard:     i,
				Worker:    sh.leaseWorker,
				Remaining: st.leaseDeadline(sh).Sub(now),
			})
		default:
			s.Pending++
		}
	}
	s.Pending = s.Shards - s.Done - s.Leased
	return s
}

// MemJournal is the in-process Journal: campaign state in memory, shared
// by any number of drainers in one process. It backs the lease-steal and
// crash-harness tests and serves as the reference implementation; it is
// also the cheapest way to watch a live in-process campaign
// (Journal.Status from another goroutine).
type MemJournal struct {
	mu sync.Mutex
	st journalState
}

// NewMemJournal returns an empty in-memory journal.
func NewMemJournal() *MemJournal {
	return &MemJournal{st: journalState{now: time.Now}}
}

// Bind implements Journal.
func (j *MemJournal) Bind(meta CampaignMeta) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.init(meta)
}

// Claim implements Journal.
func (j *MemJournal) Claim(worker string, ttl time.Duration) (int, ClaimState, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	shard, state := j.st.findClaim()
	if state == ClaimOK {
		j.st.applyLease(shard, worker, j.st.now().Add(ttl), true)
	}
	return shard, state, nil
}

// Renew implements Journal.
func (j *MemJournal) Renew(worker string, shard int, ttl time.Duration) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.st.renewable(shard, worker) {
		j.st.applyLease(shard, worker, j.st.now().Add(ttl), true)
	}
	return nil
}

// Checkpoint implements Journal.
func (j *MemJournal) Checkpoint(res ShardResult) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.st.applyDone(&res)
	return nil
}

// Results implements Journal.
func (j *MemJournal) Results() ([]*ShardResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.results(), nil
}

// Status implements Journal.
func (j *MemJournal) Status() (CampaignStatus, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.st.bound {
		return CampaignStatus{}, fmt.Errorf("core: journal is not bound to a campaign")
	}
	return j.st.status(), nil
}

// Close implements Journal (a no-op: the state lives in memory).
func (j *MemJournal) Close() error { return nil }
