package core_test

// The static-pruning soundness differential: a campaign with the
// liveness tier enabled must produce experiment records bit-identical
// to one where every statically-pruned experiment is forced to execute
// (CampaignSpec.NoLiveness) — pruning may only change how fast a
// campaign runs and the StaticPruned counter, never what it records.
// The grid covers all workloads, both techniques and the prunable
// cluster shapes; the memfault and stuck-at halves pin that the other
// fault models are untouched by the tier (their models never prune, and
// the oracle built during target preparation must not perturb the
// profile they run on).

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/ir"
	"multiflip/internal/memfault"
	"multiflip/internal/prog"
)

// livenessOn reports whether the process-wide liveness kill switch is
// inactive; "pruning fires" assertions only hold then.
func livenessOn() bool { return os.Getenv("MULTIFLIP_NOLIVENESS") == "" }

// TestCampaignLivenessDifferential enforces the tentpole invariant at
// campaign scale: for every workload, both techniques and the cluster
// shapes the tier can prune (single-bit, and multi-bit with win-size 0),
// a campaign with static pruning produces experiment records and
// aggregates bit-identical to one that executes everything — and the
// pruning actually fires somewhere across the grid.
func TestCampaignLivenessDifferential(t *testing.T) {
	const (
		n    = 40
		seed = 1717
	)
	configs := []core.Config{
		core.SingleBit(),
		{MaxMBF: 4, Win: core.Win(0)},
	}
	pruned := 0
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		target, err := core.NewTarget(bench.Name, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range core.Techniques() {
			for _, cfg := range configs {
				spec := core.CampaignSpec{
					Target:    target,
					Technique: tech,
					Config:    cfg,
					N:         n,
					Seed:      seed,
					Record:    true,
				}
				fast, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s: %v", bench.Name, tech, cfg, err)
				}
				spec.NoLiveness = true
				slow, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s (noliveness): %v", bench.Name, tech, cfg, err)
				}
				if slow.StaticPruned != 0 {
					t.Fatalf("%s %s %s: NoLiveness campaign reported %d pruned experiments",
						bench.Name, tech, cfg, slow.StaticPruned)
				}
				pruned += fast.StaticPruned
				if !reflect.DeepEqual(fast.Experiments, slow.Experiments) {
					t.Errorf("%s %s %s: experiments diverge between pruned and executed campaigns",
						bench.Name, tech, cfg)
					continue
				}
				if fast.Counts != slow.Counts || fast.TrapCounts != slow.TrapCounts ||
					fast.CrashActivated != slow.CrashActivated ||
					fast.ActivatedTotal != slow.ActivatedTotal {
					t.Errorf("%s %s %s: aggregates diverge between pruned and executed campaigns",
						bench.Name, tech, cfg)
				}
			}
		}
	}
	if pruned == 0 && livenessOn() {
		t.Error("no experiment across the grid was statically pruned; the liveness tier never fires")
	}
}

// deadBitsProgram builds a workload whose hot loop writes a register of
// which 63 of 64 bits are provably dead (`and v, 1` immediately masks
// the sum), so a single-bit inject-on-write campaign must statically
// prune a large share of its experiments.
func deadBitsProgram(t *testing.T) *ir.Program {
	t.Helper()
	m := ir.NewModule("deadbits")
	f := m.Func("main", 0)
	f.For(ir.C(0), ir.C(64), func(i ir.Reg) {
		v := f.BinW(ir.W64, ir.OpAdd, i, ir.C(0x1234_5678_9abc))
		w := f.BinW(ir.W64, ir.OpAnd, v, ir.C(1))
		f.Out8(w)
	})
	f.RetVoid()
	return m.MustBuild()
}

// TestLivenessGuaranteedPrune pins the tier on a program constructed to
// prune: most single-bit write experiments land on the masked sum's dead
// bits and must be classified without executing, all of them Benign.
func TestLivenessGuaranteedPrune(t *testing.T) {
	if !livenessOn() {
		t.Skip("MULTIFLIP_NOLIVENESS set")
	}
	target, err := core.NewTarget("deadbits", deadBitsProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunCampaign(core.CampaignSpec{
		Target:    target,
		Technique: core.InjectOnWrite,
		Config:    core.SingleBit(),
		N:         200,
		Seed:      3,
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The loop body writes 4+ registers per iteration, one of which has
	// 63/64 dead bits; uniform sampling must hit it often.
	if res.StaticPruned < 10 {
		t.Fatalf("StaticPruned = %d over 200 experiments on a mostly-dead program", res.StaticPruned)
	}
	// Differential on the same synthetic target for good measure.
	slow, err := core.RunCampaign(core.CampaignSpec{
		Target:     target,
		Technique:  core.InjectOnWrite,
		Config:     core.SingleBit(),
		N:          200,
		Seed:       3,
		Record:     true,
		NoLiveness: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Experiments, slow.Experiments) {
		t.Error("experiments diverge between pruned and executed campaigns on the synthetic target")
	}
}

// TestTargetLivenessNeutral checks that building the liveness oracle
// during target preparation does not perturb the profile: golden output,
// dynamic count, candidate spaces, role decomposition and snapshot
// placement are bit-identical with the tier on and off.
func TestTargetLivenessNeutral(t *testing.T) {
	bench, err := prog.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	on, err := core.NewTarget(bench.Name, p)
	if err != nil {
		t.Fatal(err)
	}
	off, err := core.NewTargetOpts(bench.Name, p, core.TargetOptions{NoLiveness: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(on.Golden, off.Golden) {
		t.Fatal("golden outputs diverge between liveness and no-liveness profiling")
	}
	if on.GoldenDyn != off.GoldenDyn ||
		on.ReadCands != off.ReadCands || on.WriteCands != off.WriteCands ||
		on.ReadRoles != off.ReadRoles || on.WriteRoles != off.WriteRoles {
		t.Fatal("profiles diverge between liveness and no-liveness target preparation")
	}
	if len(on.Snapshots) != len(off.Snapshots) {
		t.Fatalf("snapshot counts diverge: %d vs %d", len(on.Snapshots), len(off.Snapshots))
	}
	for i := range on.Snapshots {
		if on.Snapshots[i].Dyn != off.Snapshots[i].Dyn {
			t.Fatalf("snapshot %d placed at dyn %d (liveness) vs %d (no-liveness)",
				i, on.Snapshots[i].Dyn, off.Snapshots[i].Dyn)
		}
	}
}

// TestMemFaultLivenessNeutral extends the invariant to the memory-fault
// model, which never prunes: campaigns on an oracle-carrying target and
// on a NoLiveness target classify identically for every workload.
func TestMemFaultLivenessNeutral(t *testing.T) {
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		on, err := core.NewTarget(bench.Name, p)
		if err != nil {
			t.Fatal(err)
		}
		off, err := core.NewTargetOpts(bench.Name, p, core.TargetOptions{NoLiveness: true})
		if err != nil {
			t.Fatal(err)
		}
		spec := memfault.Spec{Target: on, Bits: 2, N: 30, Seed: 11, Record: true}
		a, err := memfault.Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		spec.Target = off
		b, err := memfault.Run(spec)
		if err != nil {
			t.Fatalf("%s (noliveness): %v", bench.Name, err)
		}
		if !reflect.DeepEqual(a.Outcomes, b.Outcomes) || a.Counts != b.Counts {
			t.Errorf("%s: memfault outcomes diverge between liveness and no-liveness targets", bench.Name)
		}
	}
}

// TestStuckAtLivenessNeutral does the same for stuck-at campaigns: the
// model's forced holds depend on dynamic state, so the tier never prunes
// them and their records must be identical either way.
func TestStuckAtLivenessNeutral(t *testing.T) {
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		on, err := core.NewTarget(bench.Name, p)
		if err != nil {
			t.Fatal(err)
		}
		off, err := core.NewTargetOpts(bench.Name, p, core.TargetOptions{NoLiveness: true})
		if err != nil {
			t.Fatal(err)
		}
		spec := core.StuckAtSpec{Target: on, N: 30, Seed: 13, Record: true}
		a, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		spec.Target = off
		b, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatalf("%s (noliveness): %v", bench.Name, err)
		}
		if a.StaticPruned != 0 || b.StaticPruned != 0 {
			t.Fatalf("%s: stuck-at campaign reported static pruning", bench.Name)
		}
		if !reflect.DeepEqual(a.Experiments, b.Experiments) || a.Counts != b.Counts {
			t.Errorf("%s: stuck-at experiments diverge between liveness and no-liveness targets", bench.Name)
		}
	}
}
