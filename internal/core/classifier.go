package core

// Outcome classification as a pluggable seam. The paper's §III-E
// categories hinge on one judgement call — when does an output count as
// corrupted? — and the exact byte comparison the register campaigns
// always used is only one answer. Floating-point workloads (Lowery's
// "Relative error due to a single bit-flip in floating-point
// arithmetic", PAPERS.md) need a tolerance: a flip in a low mantissa
// bit perturbs the output by a relative error far below any level an
// application would call corrupt. A Classifier owns that judgement;
// everything structural about classification (traps, hangs, missing
// output) is shared, because no tolerance makes a segfault benign.
//
// Classifier identity folds into the campaign fingerprint
// (Engine.memoFingerprint): a memoized continuation outcome and a
// journaled shard checkpoint are both classifier-dependent facts, so
// campaigns classified differently must never share memo entries or
// journal files.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"multiflip/internal/vm"
)

// Classifier maps a run result to the paper's outcome categories
// (§III-E) given the target's golden output. Implementations must be
// stateless and safe for concurrent use (every engine worker
// classifies through the one value), and Name must be a stable, full
// parameterization: two classifiers with equal names must classify
// every (golden, result) pair identically, because the name is what
// the campaign fingerprint digests.
type Classifier interface {
	// Name renders the classifier's identity and parameters.
	Name() string
	// Classify maps a run result to its outcome.
	Classify(golden []byte, res *vm.Result) Outcome
}

// preClassify handles the classifier-independent outcomes:
//
//   - a trap is Detected by Hardware Exception;
//   - exceeding the dynamic-instruction budget is a Hang (the
//     output-limit stop is classified likewise: only a watchdog would
//     catch it);
//   - normal termination with no output is NoOutput.
//
// The remaining judgement — golden-vs-actual output — is the
// classifier's. Convergence-terminated runs (res.Converged) pass
// through unchanged: they report the golden stop reason and output, so
// they classify as the full run would — Benign under any classifier,
// since every classifier accepts output byte-identical to golden.
func preClassify(res *vm.Result) (Outcome, bool) {
	switch res.Stop {
	case vm.StopTrap:
		return OutcomeException, true
	case vm.StopHang, vm.StopOutputLimit:
		return OutcomeHang, true
	}
	if len(res.Output) == 0 {
		return OutcomeNoOutput, true
	}
	return 0, false
}

// ExactClassifier is the default classifier: output byte-identical to
// golden is Benign, anything else is an SDC. This is the paper's
// comparison and the one every campaign before the classifier seam
// used.
type ExactClassifier struct{}

// Name implements Classifier. "exact" is the default identity and is
// deliberately NOT folded into campaign fingerprints, so journals and
// memos written before the classifier seam existed resume unchanged.
func (ExactClassifier) Name() string { return "exact" }

// Classify implements Classifier.
func (ExactClassifier) Classify(golden []byte, res *vm.Result) Outcome {
	if o, done := preClassify(res); done {
		return o
	}
	if bytes.Equal(res.Output, golden) {
		return OutcomeBenign
	}
	return OutcomeSDC
}

// ToleranceClassifier classifies output word-wise with an absolute and
// a relative epsilon, per the relative-error structure of Lowery's
// floating-point bit-flip analysis: output of the golden length is
// split into Word-byte little-endian words, and a run is Benign when
// every word is within tolerance of its golden counterpart —
// |actual − golden| ≤ Abs, or ≤ Rel·|golden|. Output of a different
// length, or any word out of tolerance, is an SDC.
//
// Byte-identical words are accepted before any decoding, so a
// zero-epsilon ToleranceClassifier is bit-for-bit equivalent to
// ExactClassifier on equal-length outputs (including NaN words in
// Float mode, where a numeric comparison would reject NaN == NaN); the
// classifier-ablation CI job holds it to that.
type ToleranceClassifier struct {
	// Abs is the absolute tolerance per word (in ulps of the integer
	// encoding, or in magnitude for Float mode).
	Abs float64
	// Rel is the relative tolerance per word, as a fraction of the
	// golden word's magnitude.
	Rel float64
	// Word is the word size in bytes: 4 or 8 (0 selects 4). A trailing
	// partial word is compared byte-exact.
	Word int
	// Float decodes words as IEEE-754 (binary32/binary64 per Word)
	// before comparing; otherwise words compare as unsigned integers.
	Float bool
}

// word returns the configured word size with the default applied.
func (c ToleranceClassifier) word() int {
	if c.Word == 8 {
		return 8
	}
	return 4
}

// Name implements Classifier.
func (c ToleranceClassifier) Name() string {
	n := fmt.Sprintf("tol:abs=%g,rel=%g,word=%d", c.Abs, c.Rel, c.word())
	if c.Float {
		n += ",float"
	}
	return n
}

// Classify implements Classifier.
func (c ToleranceClassifier) Classify(golden []byte, res *vm.Result) Outcome {
	if o, done := preClassify(res); done {
		return o
	}
	out := res.Output
	if len(out) != len(golden) {
		return OutcomeSDC
	}
	w := c.word()
	i := 0
	for ; i+w <= len(out); i += w {
		a, g := out[i:i+w], golden[i:i+w]
		if bytes.Equal(a, g) {
			continue
		}
		if !c.within(decode(a), decode(g), w) {
			return OutcomeSDC
		}
	}
	if !bytes.Equal(out[i:], golden[i:]) {
		return OutcomeSDC // trailing partial word: byte-exact
	}
	return OutcomeBenign
}

// decode reads a little-endian word of len(b) ∈ {4, 8} bytes.
func decode(b []byte) uint64 {
	if len(b) == 8 {
		return binary.LittleEndian.Uint64(b)
	}
	return uint64(binary.LittleEndian.Uint32(b))
}

// within reports whether actual a tolerably approximates golden g.
func (c ToleranceClassifier) within(a, g uint64, w int) bool {
	var av, gv float64
	if c.Float {
		if w == 8 {
			av, gv = math.Float64frombits(a), math.Float64frombits(g)
		} else {
			av, gv = float64(math.Float32frombits(uint32(a))), float64(math.Float32frombits(uint32(g)))
		}
		// NaN or infinity where golden was finite (or vice versa; the
		// byte-equal fast path already accepted identical encodings)
		// never tolerates.
		if math.IsNaN(av) || math.IsNaN(gv) || math.IsInf(av, 0) || math.IsInf(gv, 0) {
			return false
		}
	} else {
		av, gv = float64(a), float64(g)
	}
	diff := math.Abs(av - gv)
	return diff <= c.Abs || diff <= c.Rel*math.Abs(gv)
}

// ParseClassifier parses a classifier spec as the fi and study CLIs
// accept it:
//
//	""                          the default (exact)
//	"exact"                     byte-identical output
//	"tol"                       tolerance classifier, all defaults
//	"tol:abs=1,rel=1e-6,word=8,float"
//
// tol options are comma-separated key=value pairs (abs, rel, word)
// plus the bare "float" flag, each optional.
func ParseClassifier(s string) (Classifier, error) {
	switch s {
	case "", "exact":
		return ExactClassifier{}, nil
	}
	rest, ok := strings.CutPrefix(s, "tol")
	if !ok {
		return nil, fmt.Errorf("core: unknown classifier %q (want \"exact\" or \"tol:abs=...,rel=...[,word=4|8][,float]\")", s)
	}
	c := ToleranceClassifier{}
	if rest == "" {
		return c, nil
	}
	rest, ok = strings.CutPrefix(rest, ":")
	if !ok {
		return nil, fmt.Errorf("core: unknown classifier %q", s)
	}
	for _, opt := range strings.Split(rest, ",") {
		key, val, hasVal := strings.Cut(opt, "=")
		switch {
		case key == "float" && !hasVal:
			c.Float = true
		case key == "abs" && hasVal:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("core: classifier abs=%q: want a number >= 0", val)
			}
			c.Abs = f
		case key == "rel" && hasVal:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("core: classifier rel=%q: want a number >= 0", val)
			}
			c.Rel = f
		case key == "word" && hasVal:
			w, err := strconv.Atoi(val)
			if err != nil || (w != 4 && w != 8) {
				return nil, fmt.Errorf("core: classifier word=%q: want 4 or 8", val)
			}
			c.Word = w
		default:
			return nil, fmt.Errorf("core: classifier option %q: want abs=, rel=, word= or float", opt)
		}
	}
	return c, nil
}
