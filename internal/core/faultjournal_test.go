package core

// Fault-injecting journal tests (internal: the seams are appendLocked,
// the backoff knobs and the journalIO scripting): schedule determinism,
// retry-through-faults, the re-issue-after-failed-fsync rule, and the
// campaign-naming error wrap on retry exhaustion.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"multiflip/internal/xrand"
)

// shrinkBackoff makes the append-retry backoff near-instant for the
// duration of a test, so exhaustion paths run in microseconds. Tests
// using it must not run in parallel (the knobs are package globals).
func shrinkBackoff(t *testing.T) {
	t.Helper()
	base, cap := appendBackoffBase, appendBackoffCap
	appendBackoffBase, appendBackoffCap = 10*time.Microsecond, 50*time.Microsecond
	t.Cleanup(func() { appendBackoffBase, appendBackoffCap = base, cap })
}

// scriptFile is a scripted in-memory journalIO: it can fail the first k
// writes and the first k fsyncs, and counts both.
type scriptFile struct {
	data   []byte
	writes int
	syncs  int
	// failWrites/failSyncs fail that many leading calls with ENOSPC/EIO.
	failWrites int
	failSyncs  int
}

func (s *scriptFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(s.data)) {
		return 0, io.EOF
	}
	n := copy(p, s.data[off:])
	if off+int64(n) == int64(len(s.data)) {
		return n, io.EOF
	}
	return n, nil
}

func (s *scriptFile) Write(p []byte) (int, error) {
	s.writes++
	if s.writes <= s.failWrites {
		return 0, syscall.ENOSPC
	}
	s.data = append(s.data, p...)
	return len(p), nil
}

func (s *scriptFile) Sync() error {
	s.syncs++
	if s.syncs <= s.failSyncs {
		return syscall.EIO
	}
	return nil
}

func (s *scriptFile) Close() error { return nil }

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("9:60")
	if err != nil || p.Seed != 9 || p.Permille != 60 {
		t.Fatalf("ParseFaultPlan(9:60) = %+v, %v", p, err)
	}
	for _, bad := range []string{"", "9", "9:", ":60", "9:0", "9:1001", "x:60", "9:y"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

// TestFaultFileDeterministicSchedule pins the harness's replayability:
// the same plan over the same operation sequence injects the same
// faults at the same sequence numbers.
func TestFaultFileDeterministicSchedule(t *testing.T) {
	trace := func() (string, int) {
		ff := NewFaultFile(&scriptFile{}, &FaultPlan{Seed: 42, Permille: 300})
		var log bytes.Buffer
		rec := []byte("0123456789abcdef\n")
		for i := 0; i < 200; i++ {
			var err error
			if i%5 == 4 {
				err = ff.Sync()
			} else {
				_, err = ff.Write(rec)
			}
			fmt.Fprintf(&log, "%d:%v;", i, err)
		}
		return log.String(), ff.Faults()
	}
	log1, faults1 := trace()
	log2, faults2 := trace()
	if log1 != log2 || faults1 != faults2 {
		t.Fatalf("fault schedule not deterministic: %d vs %d faults", faults1, faults2)
	}
	if faults1 == 0 {
		t.Fatal("permille 300 over 200 ops injected nothing (vacuous harness)")
	}
}

// TestAppendReissuesAfterFailedFsync pins the durability rule: after a
// failed fsync the append's fate is unknown, so the whole framed line is
// re-written — never assumed written. Two scripted fsync failures must
// cost two full re-issues.
func TestAppendReissuesAfterFailedFsync(t *testing.T) {
	shrinkBackoff(t)
	sf := &scriptFile{failSyncs: 2}
	j := &FileJournal{f: sf, path: "test.mfj", sync: true, rng: xrand.New(1)}
	if err := j.appendLocked(&journalRecord{T: "lease", Shard: 0, Worker: "w", Exp: 1}, true); err != nil {
		t.Fatal(err)
	}
	if sf.writes != 3 || sf.syncs != 3 {
		t.Fatalf("want 3 writes and 3 fsyncs (2 re-issues), got %d/%d", sf.writes, sf.syncs)
	}
	if got := bytes.Count(sf.data, []byte("\n")); got != 3 {
		t.Fatalf("want the full line re-issued 3 times, found %d lines", got)
	}
	// The duplicates are identical framed records: each line must decode.
	for _, line := range splitLines(sf.data) {
		if _, ok := decodeLine(line); !ok {
			t.Fatalf("re-issued line does not decode: %q", line)
		}
	}
}

// TestAppendExhaustionNamesCampaign checks the error wrap on retry
// exhaustion: a journal bound to a campaign must name the campaign
// fingerprint and the file path, and keep the root cause unwrappable.
func TestAppendExhaustionNamesCampaign(t *testing.T) {
	shrinkBackoff(t)
	sf := &scriptFile{failWrites: 1 << 30}
	j := &FileJournal{f: sf, path: "cdir/test.mfj", sync: true, rng: xrand.New(1)}
	j.st.bound = true
	j.st.meta.Fingerprint = 0xabcdef0123456789
	err := j.appendLocked(&journalRecord{T: "done", Shard: 0}, true)
	if err == nil {
		t.Fatal("append on a dead file succeeded")
	}
	msg := err.Error()
	if want := fmt.Sprintf("%016x", uint64(0xabcdef0123456789)); !bytes.Contains([]byte(msg), []byte(want)) {
		t.Errorf("error misses the campaign fingerprint: %v", err)
	}
	if !bytes.Contains([]byte(msg), []byte("cdir/test.mfj")) {
		t.Errorf("error misses the journal path: %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("root cause not unwrappable: %v", err)
	}
	if sf.writes != appendAttempts {
		t.Errorf("gave up after %d attempts, want %d", sf.writes, appendAttempts)
	}
}

// TestJournalDrainsUnderFaultPlan drives a full claim/checkpoint drain
// through OpenFileJournalOpts with an aggressive fault plan: every
// injected ENOSPC, EIO, short write and failed fsync must be absorbed by
// the retry layer, and a clean reopen must see every shard checkpointed
// exactly once.
func TestJournalDrainsUnderFaultPlan(t *testing.T) {
	shrinkBackoff(t)
	path := filepath.Join(t.TempDir(), "campaign-1.mfj")
	before := faultsInjected.Load()
	j, err := OpenFileJournalOpts(path, FileJournalOptions{
		Sync:  true,
		Fault: &FaultPlan{Seed: 7, Permille: 250},
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := CampaignMeta{Fingerprint: 1, Model: "t", N: 32, ShardSize: 4, Seed: 9}
	if err := j.Bind(meta); err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < meta.NumShards(); shard++ {
		got, state, err := j.Claim("w1", time.Minute)
		if err != nil || state != ClaimOK || got != shard {
			t.Fatalf("claim %d: got %d, %v, %v", shard, got, state, err)
		}
		sr := ShardResult{Shard: shard}
		for k := 0; k < meta.ShardSize; k++ {
			sr.Add(&Experiment{Outcome: OutcomeBenign, Bit: -1}, false, false, false)
		}
		if err := j.Checkpoint(sr); err != nil {
			t.Fatalf("checkpoint %d: %v", shard, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if faultsInjected.Load() == before {
		t.Fatal("fault plan injected nothing (vacuous drain)")
	}

	// A clean reopen replays the faulted log: torn debris and duplicate
	// re-issues must collapse to one checkpoint per shard.
	clean, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	status, err := clean.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.Done != meta.NumShards() || status.Pending != 0 || status.Leased != 0 {
		t.Fatalf("reopened journal: %+v", status)
	}
	if status.Tally.N() != meta.N {
		t.Fatalf("reopened tally covers %d experiments, want %d", status.Tally.N(), meta.N)
	}
}
