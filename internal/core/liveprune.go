package core

import (
	"math/bits"
	"os"
	"sort"

	"multiflip/internal/ir"
	"multiflip/internal/liveness"
)

// The static pruning tier: a bit-level liveness analysis
// (internal/liveness) proves some (pc, register, bit) flips unobservable,
// and the target records — during the golden profiling run it performs
// anyway — which candidate indices land on such locations. A register
// campaign consults that oracle before touching the VM: an experiment
// whose entire sampled flip mask is statically dead is recorded as Benign
// with zero execution, counted in EngineResult.StaticPruned.
//
// Pruning must be invisible in every recorded field. The oracle therefore
// carries, per candidate, the golden register value at the injection
// point (for the flip-direction breakdown) and the slot's role and
// sampling width; PredictStatic replicates the VM's mask sampling on a
// copy of the experiment's random stream, so a pruned experiment reports
// the same Cand/Bit/Dir/Role/Activated an executed run would, and an
// unpruned experiment's stream is untouched. The soundness differential
// suite re-executes every prunable experiment under MULTIFLIP_NOLIVENESS
// and asserts the aggregates match exactly, modulo the counter itself.

// livenessEnabled is the process-wide kill switch for the static pruning
// tier, mirroring fusion (MULTIFLIP_NOFUSE), the compiled tier
// (MULTIFLIP_NOCOMPILE) and convergence (MULTIFLIP_NOCONVERGE).
var livenessEnabled = os.Getenv("MULTIFLIP_NOLIVENESS") == ""

// maxOracleEntries bounds the per-target oracle. A target whose golden
// run yields more dead candidates than this drops the oracle entirely
// (deterministically — the profiling run is deterministic), trading the
// pruning win for bounded memory; campaigns remain correct either way.
const maxOracleEntries = 1 << 20

// liveCand is one prunable candidate: the statically dead bits within
// its sampling width, the golden register value at the injection point,
// and the metadata an executed run would have reported.
type liveCand struct {
	dead   uint64
	golden uint64
	wbits  uint8
	role   ir.SlotRole
}

// liveOracle maps candidate indices with a non-empty dead-bit mask to
// their liveCand entries, per technique. Candidate slices are sorted
// (the profiling run visits candidates in order).
type liveOracle struct {
	readCands  []uint64
	readInfo   []liveCand
	writeCands []uint64
	writeInfo  []liveCand
}

// lookup returns the entry for cand in the technique's candidate space.
func (o *liveOracle) lookup(onWrite bool, cand uint64) (liveCand, bool) {
	cands, info := o.readCands, o.readInfo
	if onWrite {
		cands, info = o.writeCands, o.writeInfo
	}
	i := sort.Search(len(cands), func(i int) bool { return cands[i] >= cand })
	if i >= len(cands) || cands[i] != cand {
		return liveCand{}, false
	}
	return info[i], true
}

// oracleBuilder accumulates the oracle from the VM's candidate-
// enumeration hook during the golden profiling run.
type oracleBuilder struct {
	prog     *ir.Program
	an       *liveness.Analysis
	o        liveOracle
	overflow bool
}

func newOracleBuilder(p *ir.Program) *oracleBuilder {
	return &oracleBuilder{prog: p, an: liveness.Analyze(p)}
}

// onCand implements vm.Options.OnCand (see its slot conventions).
func (b *oracleBuilder) onCand(onWrite bool, cand uint64, fn, pc, slot int, val uint64) {
	if b.overflow {
		return
	}
	var dead uint64
	var wbits int
	var role ir.SlotRole
	code := b.prog.Funcs[fn].Code
	switch {
	case slot >= 0:
		dead = b.an.DeadReadBits(fn, pc, slot)
		if dead == 0 {
			return
		}
		in := &code[pc]
		wbits = ir.SlotWidth(in, slot).Bits()
		role = ir.ReadSlotRole(in, slot)
	case slot == -1:
		dead = b.an.DeadWriteBits(fn, pc)
		if dead == 0 {
			return
		}
		in := &code[pc]
		wbits = ir.DestWidth(in).Bits()
		role = ir.DestRole(in)
	default:
		// Call-result write at the matching return: pc is the caller's
		// resume point, the call instruction sits at pc-1, and the VM
		// samples the flip at full width with ir.RoleOther.
		dead = b.an.DeadWriteBits(fn, pc-1)
		if dead == 0 {
			return
		}
		wbits = 64
		role = ir.RoleOther
	}
	if len(b.o.readCands)+len(b.o.writeCands) >= maxOracleEntries {
		b.overflow = true
		return
	}
	e := liveCand{dead: dead, golden: val, wbits: uint8(wbits), role: role}
	if onWrite {
		b.o.writeCands = append(b.o.writeCands, cand)
		b.o.writeInfo = append(b.o.writeInfo, e)
	} else {
		b.o.readCands = append(b.o.readCands, cand)
		b.o.readInfo = append(b.o.readInfo, e)
	}
}

// finish returns the built oracle, or nil when it overflowed (or is
// empty: a nil oracle and an empty one prune identically — nothing).
func (b *oracleBuilder) finish() *liveOracle {
	if b.overflow {
		return nil
	}
	return &b.o
}

// StaticPredictor is the engine's optional pre-execution classification
// seam: a fault model that can prove some planned experiments Benign
// without running them implements it, and Engine.runOne consults it
// right after planning (unless Engine.NoLiveness or the process-wide
// MULTIFLIP_NOLIVENESS kill switch is set). The returned Experiment must
// be field-for-field identical to what executing the plan would record —
// the prediction replaces the run, it must not change its story.
type StaticPredictor interface {
	PredictStatic(t *Target, inj *Injection) (Experiment, bool)
}

// PredictStatic implements StaticPredictor for the register model: a
// same-register plan (single-bit, or multi-bit with win-size 0) whose
// whole sampled mask lands on statically dead bits of its target
// register is Benign without execution.
//
// The mask is sampled from a copy of the plan's random stream, exactly
// as vm.applyFirst would sample it; the plan's own stream is never
// advanced, so declining to prune leaves the VM's draws — and thus the
// recorded outcome — bit-identical to a run that never consulted the
// oracle. Multi-register windows and stuck-at holds never prune: their
// follow-up behaviour depends on dynamic state.
func (m *RegisterModel) PredictStatic(t *Target, inj *Injection) (Experiment, bool) {
	p := inj.Plan
	if t.oracle == nil || p == nil || p.Stuck || !p.SameReg || p.Rng == nil || len(inj.MemFlips) != 0 {
		return Experiment{}, false
	}
	c, ok := t.oracle.lookup(p.OnWrite, p.FirstCand)
	if !ok {
		return Experiment{}, false
	}
	wbits := int(c.wbits)
	rng := *p.Rng // value copy: replicate the draws without consuming them
	var mask uint64
	if p.PinnedBit >= 0 {
		mask = 1 << uint(p.PinnedBit%wbits)
		for bits.OnesCount64(mask) < p.MaxFlips && bits.OnesCount64(mask) < wbits {
			mask |= rng.DistinctBits(1, wbits)
		}
	} else {
		mask = rng.DistinctBits(p.MaxFlips, wbits)
	}
	if mask&^c.dead != 0 {
		return Experiment{}, false // some sampled bit may be observed
	}
	exp := Experiment{
		Cand:      inj.Cand,
		Bit:       -1,
		Dir:       DirUnknown,
		Role:      c.role,
		Outcome:   OutcomeBenign,
		Activated: bits.OnesCount64(mask),
	}
	if exp.Activated == 1 {
		exp.Bit = bits.TrailingZeros64(mask)
		exp.Dir = DirFromPre(int(c.golden >> uint(exp.Bit) & 1))
	}
	return exp, true
}
