package core

import (
	"fmt"
	"sort"

	"multiflip/internal/ir"
	"multiflip/internal/vm"
)

// Target is a workload prepared for fault injection: the program plus its
// fault-free profile (golden output, dynamic instruction count, and the
// candidate-space sizes for both techniques).
type Target struct {
	// Name identifies the workload (Table II program name).
	Name string
	// Prog is the executable program.
	Prog *ir.Program
	// Golden is the fault-free output, the SDC comparison baseline.
	Golden []byte
	// GoldenDyn is the fault-free dynamic instruction count.
	GoldenDyn uint64
	// ReadCands is the inject-on-read candidate-space size (dynamic
	// register-read operand slots).
	ReadCands uint64
	// WriteCands is the inject-on-write candidate-space size (dynamic
	// destination-register writes).
	WriteCands uint64
	// ReadRoles decomposes the inject-on-read candidate space by
	// ir.SlotRole (address/data/control/float/other): the data-type mix
	// the paper uses to explain detection-rate differences (§IV-A).
	ReadRoles [ir.NumSlotRoles]uint64
	// WriteRoles decomposes the inject-on-write candidate space likewise.
	WriteRoles [ir.NumSlotRoles]uint64
	// Snapshots are golden-run checkpoints in ascending dynamic order;
	// the campaign runner resumes experiments from them to skip the
	// fault-free prefix. Empty when the target was prepared with
	// TargetOptions.NoSnapshots.
	Snapshots []*vm.Snapshot
	// Trace is the golden run's state-hash trace: experiments carry it so
	// the VM can terminate them early once their injected state
	// reconverges with the golden run, and so campaigns can memoize
	// outcomes by post-injection state. Nil when the target was prepared
	// with NoSnapshots or NoConverge.
	Trace *vm.GoldenTrace

	// oracle maps candidate indices whose injection point has statically
	// dead bits to the pruning metadata PredictStatic needs. Nil when the
	// target was prepared with NoLiveness (or the process-wide kill
	// switch), or when the program has no dead candidates.
	oracle *liveOracle
}

// DefaultSnapshotInterval is the golden-run checkpoint spacing in dynamic
// instructions. Snapshot capture is copy-on-write at page granularity —
// cost and memory scale with the pages dirtied per interval, not with
// run length or segment size — so targets can afford checkpoints every
// few dozen instructions, shrinking the prefix tail each fast-forwarded
// experiment still replays.
const DefaultSnapshotInterval = 64

// DefaultTargetMaxSnapshots bounds the snapshots a target stores. It is
// deliberately higher than vm.DefaultMaxSnapshots: a target's store is
// shared by all of its campaigns, and shared clean pages keep the
// per-snapshot footprint small.
const DefaultTargetMaxSnapshots = 512

// TargetOptions tunes target preparation.
type TargetOptions struct {
	// SnapshotInterval is the golden-run checkpoint spacing in dynamic
	// instructions. Zero selects DefaultSnapshotInterval.
	SnapshotInterval uint64
	// MaxSnapshots bounds the stored snapshots (0 = vm.DefaultMaxSnapshots).
	MaxSnapshots int
	// NoSnapshots skips golden-run checkpointing entirely; every experiment
	// then replays the fault-free prefix from instruction 0.
	NoSnapshots bool
	// NoFusion profiles the target with superinstruction execution
	// disabled. The profile (golden output, candidate counts, snapshots)
	// is bit-identical either way; the knob supports the fusion
	// differential tests.
	NoFusion bool
	// NoCompile profiles the target with the compiled fast tier disabled.
	// The profile is bit-identical either way; the knob supports the
	// compile differential tests.
	NoCompile bool
	// NoConverge skips recording the golden state-hash trace, so every
	// campaign on this target runs its experiments to completion. Results
	// are bit-identical either way (the convergence differential tests
	// enforce it).
	NoConverge bool
	// NoLiveness skips the bit-level static liveness analysis and the
	// candidate oracle built from it, so campaigns on this target execute
	// every experiment instead of statically pruning dead-bit flips.
	// Recorded outcomes are bit-identical either way (the liveness
	// soundness differential enforces it).
	NoLiveness bool
}

// NewTarget profiles p fault-free, recording golden-run snapshots at the
// default interval, and returns the prepared target.
func NewTarget(name string, p *ir.Program) (*Target, error) {
	return NewTargetOpts(name, p, TargetOptions{})
}

// NewTargetOpts is NewTarget with explicit preparation options.
func NewTargetOpts(name string, p *ir.Program, opts TargetOptions) (*Target, error) {
	vopts := vm.Options{NoFuse: opts.NoFusion, NoCompile: opts.NoCompile}
	var ob *oracleBuilder
	if livenessEnabled && !opts.NoLiveness {
		// Piggyback oracle construction on the profiling run: the VM
		// reports every injection candidate in order, and the builder
		// keeps the ones whose target bits the static analysis proves
		// dead. Profiling already runs on the observer tier, so the
		// hook does not perturb the profile.
		ob = newOracleBuilder(p)
		vopts.OnCand = ob.onCand
	}
	if !opts.NoSnapshots {
		vopts.Checkpoint = opts.SnapshotInterval
		if vopts.Checkpoint == 0 {
			vopts.Checkpoint = DefaultSnapshotInterval
		}
		vopts.MaxSnapshots = opts.MaxSnapshots
		if vopts.MaxSnapshots == 0 {
			vopts.MaxSnapshots = DefaultTargetMaxSnapshots
		}
		// The golden trace piggybacks on the checkpoint pass.
		vopts.RecordTrace = !opts.NoConverge
	}
	prof, err := vm.ProfileWith(p, vopts)
	if err != nil {
		return nil, fmt.Errorf("core: prepare %s: %w", name, err)
	}
	if len(prof.Output) == 0 {
		return nil, fmt.Errorf("core: prepare %s: fault-free run produced no output", name)
	}
	t := &Target{
		Name:       name,
		Prog:       p,
		Golden:     prof.Output,
		GoldenDyn:  prof.Dyn,
		ReadCands:  prof.ReadSlots,
		WriteCands: prof.Writes,
		ReadRoles:  prof.ReadRoles,
		WriteRoles: prof.WriteRoles,
		Snapshots:  prof.Snapshots,
		Trace:      prof.Trace,
	}
	if ob != nil {
		t.oracle = ob.finish()
	}
	return t, nil
}

// SnapshotBefore returns the latest golden-run snapshot whose candidate
// counter for the technique is <= cand — the furthest checkpoint from
// which a run injecting first at candidate cand can legally resume — or
// nil when no snapshot precedes the candidate.
func (t *Target) SnapshotBefore(tech Technique, cand uint64) *vm.Snapshot {
	onWrite := tech == InjectOnWrite
	// Candidate counters increase with Dyn, so Snapshots is sorted by
	// Candidates too; find the first snapshot past cand.
	i := sort.Search(len(t.Snapshots), func(i int) bool {
		return t.Snapshots[i].Candidates(onWrite) > cand
	})
	if i == 0 {
		return nil
	}
	return t.Snapshots[i-1]
}

// SnapshotBeforeDyn returns the latest golden-run snapshot taken at or
// before dynamic instruction dyn — the furthest checkpoint from which a
// run whose first fault lands at instant dyn can legally resume — or nil
// when no snapshot precedes it. Memory-fault campaigns use it to
// fast-forward: their corruptions are scheduled by dynamic instant rather
// than by candidate index.
func (t *Target) SnapshotBeforeDyn(dyn uint64) *vm.Snapshot {
	i := sort.Search(len(t.Snapshots), func(i int) bool {
		return t.Snapshots[i].Dyn > dyn
	})
	if i == 0 {
		return nil
	}
	return t.Snapshots[i-1]
}

// Roles returns the candidate-role decomposition for a technique.
func (t *Target) Roles(tech Technique) [ir.NumSlotRoles]uint64 {
	if tech == InjectOnWrite {
		return t.WriteRoles
	}
	return t.ReadRoles
}

// Candidates returns the candidate-space size for a technique.
func (t *Target) Candidates(tech Technique) uint64 {
	if tech == InjectOnWrite {
		return t.WriteCands
	}
	return t.ReadCands
}

// Classify maps a run result to the paper's outcome categories (§III-E)
// with the default exact-output classifier. Campaigns that want a
// different output judgement set Engine.Classifier (or the Classifier
// field of their spec) instead; this method is the back-compat
// shorthand for the default.
func (t *Target) Classify(res *vm.Result) Outcome {
	return ExactClassifier{}.Classify(t.Golden, res)
}
