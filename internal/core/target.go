package core

import (
	"bytes"
	"fmt"

	"multiflip/internal/ir"
	"multiflip/internal/vm"
)

// Target is a workload prepared for fault injection: the program plus its
// fault-free profile (golden output, dynamic instruction count, and the
// candidate-space sizes for both techniques).
type Target struct {
	// Name identifies the workload (Table II program name).
	Name string
	// Prog is the executable program.
	Prog *ir.Program
	// Golden is the fault-free output, the SDC comparison baseline.
	Golden []byte
	// GoldenDyn is the fault-free dynamic instruction count.
	GoldenDyn uint64
	// ReadCands is the inject-on-read candidate-space size (dynamic
	// register-read operand slots).
	ReadCands uint64
	// WriteCands is the inject-on-write candidate-space size (dynamic
	// destination-register writes).
	WriteCands uint64
	// ReadRoles decomposes the inject-on-read candidate space by
	// ir.SlotRole (address/data/control/float/other): the data-type mix
	// the paper uses to explain detection-rate differences (§IV-A).
	ReadRoles [ir.NumSlotRoles]uint64
	// WriteRoles decomposes the inject-on-write candidate space likewise.
	WriteRoles [ir.NumSlotRoles]uint64
}

// NewTarget profiles p fault-free and returns the prepared target.
func NewTarget(name string, p *ir.Program) (*Target, error) {
	prof, err := vm.Profile(p)
	if err != nil {
		return nil, fmt.Errorf("core: prepare %s: %w", name, err)
	}
	if len(prof.Output) == 0 {
		return nil, fmt.Errorf("core: prepare %s: fault-free run produced no output", name)
	}
	return &Target{
		Name:       name,
		Prog:       p,
		Golden:     prof.Output,
		GoldenDyn:  prof.Dyn,
		ReadCands:  prof.ReadSlots,
		WriteCands: prof.Writes,
		ReadRoles:  prof.ReadRoles,
		WriteRoles: prof.WriteRoles,
	}, nil
}

// Roles returns the candidate-role decomposition for a technique.
func (t *Target) Roles(tech Technique) [ir.NumSlotRoles]uint64 {
	if tech == InjectOnWrite {
		return t.WriteRoles
	}
	return t.ReadRoles
}

// Candidates returns the candidate-space size for a technique.
func (t *Target) Candidates(tech Technique) uint64 {
	if tech == InjectOnWrite {
		return t.WriteCands
	}
	return t.ReadCands
}

// Classify maps a run result to the paper's outcome categories (§III-E):
//
//   - a trap is Detected by Hardware Exception;
//   - exceeding the dynamic-instruction budget is a Hang (the output-limit
//     stop is classified likewise: only a watchdog would catch it);
//   - normal termination with no output is NoOutput;
//   - normal termination with golden output is Benign;
//   - normal termination with different output is an SDC.
func (t *Target) Classify(res *vm.Result) Outcome {
	switch res.Stop {
	case vm.StopTrap:
		return OutcomeException
	case vm.StopHang, vm.StopOutputLimit:
		return OutcomeHang
	}
	if len(res.Output) == 0 {
		return OutcomeNoOutput
	}
	if bytes.Equal(res.Output, t.Golden) {
		return OutcomeBenign
	}
	return OutcomeSDC
}
