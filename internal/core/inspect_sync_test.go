package core_test

// Satellite coverage for the durability surface: the fsync opt-in mode
// must run and resume campaigns bit-identically to the default mode (it
// only changes when data hits the platter, not what is written), and
// InspectDir — the engine behind `fi -status` — must treat missing,
// empty, memo-only and torn journal directories as "no campaigns", never
// as errors or panics.

import (
	"os"
	"path/filepath"
	"testing"

	"multiflip/internal/core"
)

func TestSyncModeCampaign(t *testing.T) {
	tg := target(t, "CRC32")
	spec := core.CampaignSpec{
		Target:    tg,
		Technique: core.InjectOnRead,
		Config:    core.SingleBit(),
		N:         24,
		Seed:      61,
		Record:    true,
	}
	baseline, err := core.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	spec.Service = &core.Service{Dir: dir, Sync: true, ShardSize: 8}
	synced, err := core.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "synced campaign vs in-memory", &baseline.EngineResult, &synced.EngineResult, false)

	// Resume folds the completed journal instead of re-running.
	spec.Service.Resume = true
	resumed, err := core.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "resumed synced campaign", &baseline.EngineResult, &resumed.EngineResult, false)

	infos, err := core.InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("InspectDir found %d campaigns, want 1", len(infos))
	}
	if infos[0].Meta.N != spec.N {
		t.Fatalf("inspected campaign has N=%d, want %d", infos[0].Meta.N, spec.N)
	}
	if st := infos[0].Status; st.Done != st.Shards || st.ExperimentsDone != st.ExperimentsTotal {
		t.Fatalf("completed campaign reports %d/%d shards, %d/%d experiments done",
			st.Done, st.Shards, st.ExperimentsDone, st.ExperimentsTotal)
	}
}

func TestInspectDirEdgeCases(t *testing.T) {
	t.Run("nonexistent", func(t *testing.T) {
		infos, err := core.InspectDir(filepath.Join(t.TempDir(), "never-created"))
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 0 {
			t.Fatalf("nonexistent dir reports %d campaigns", len(infos))
		}
	})
	t.Run("empty", func(t *testing.T) {
		infos, err := core.InspectDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 0 {
			t.Fatalf("empty dir reports %d campaigns", len(infos))
		}
	})
	t.Run("memo-only", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "memo-00000000deadbeef.mfj"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		infos, err := core.InspectDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 0 {
			t.Fatalf("memo-only dir reports %d campaigns", len(infos))
		}
	})
	t.Run("torn", func(t *testing.T) {
		// A campaign file that is pure garbage — e.g. a crash before the
		// meta line was durable, then further corruption — must be skipped,
		// not inspected into a panic or an error.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "campaign-0000000000000bad.mfj"),
			[]byte("not a journal\x00\xff{"), 0o644); err != nil {
			t.Fatal(err)
		}
		infos, err := core.InspectDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 0 {
			t.Fatalf("torn-journal dir reports %d campaigns", len(infos))
		}
	})
}
