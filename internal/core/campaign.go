package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"multiflip/internal/vm"
	"multiflip/internal/xrand"
)

// DefaultHangFactor multiplies the fault-free dynamic instruction count to
// form the hang budget. The paper's LLFI timeout is one to two orders of
// magnitude above the fault-free execution time (§III-E).
const DefaultHangFactor = 10

// ActivatedCap bounds the activated-error histogram; the paper's largest
// max-MBF is 30.
const ActivatedCap = 31

// NumTrapKinds sizes the per-trap-kind exception counters (vm.TrapKind
// values are dense, starting at TrapNone = 0).
const NumTrapKinds = int(vm.TrapStackOverflow) + 1

// Pin forces an experiment's first injection: the candidate index and bit
// of an earlier (usually single-bit) experiment. Used by the §IV-C3
// transition study, which starts each multi-bit experiment at the exact
// location of a single-bit experiment.
type Pin struct {
	Cand uint64
	Bit  int
}

// Experiment records one fault-injection experiment.
type Experiment struct {
	// Cand is the first injection's candidate-space index.
	Cand uint64
	// Bit is the first injection's bit index within its register, or -1
	// when the first injection flipped several bits at once.
	Bit int
	// Outcome is the §III-E classification.
	Outcome Outcome
	// Trap is the hardware-exception kind for OutcomeException runs
	// (vm.TrapNone otherwise).
	Trap vm.TrapKind
	// Activated is the number of bit flips actually performed before the
	// run ended.
	Activated int
}

// CampaignSpec describes a fault-injection campaign: N experiments with
// one fault model on one workload (§III-E).
type CampaignSpec struct {
	// Target is the prepared workload.
	Target *Target
	// Technique selects inject-on-read or inject-on-write.
	Technique Technique
	// Config is the (max-MBF, win-size) cluster; MaxMBF = 1 for the
	// single bit-flip model.
	Config Config
	// N is the number of experiments. Ignored when Pins is set.
	N int
	// Seed makes the campaign reproducible. Experiment i draws its
	// private stream from (Seed, i) regardless of scheduling.
	Seed uint64
	// HangFactor scales the fault-free dynamic instruction count into the
	// hang budget. Zero selects DefaultHangFactor.
	HangFactor uint64
	// Workers bounds campaign parallelism. Zero selects GOMAXPROCS.
	Workers int
	// Record keeps per-experiment records in the result (needed by the
	// transition analysis).
	Record bool
	// NoAlignTrap disables the misaligned-access exception (alignment
	// ablation).
	NoAlignTrap bool
	// NoSnapshots forces every experiment to replay the fault-free prefix
	// from instruction 0 instead of fast-forwarding from the target's
	// golden-run snapshots. Results are bit-identical either way (the
	// differential tests enforce it); the knob exists for that comparison
	// and as an escape hatch.
	NoSnapshots bool
	// NoFusion disables superinstruction execution in every experiment of
	// this campaign: each instruction dispatches alone through the VM's
	// handler table. Results are bit-identical either way (the fusion
	// differential tests enforce it); the knob exists for that comparison
	// and for the CI dispatch ablation.
	NoFusion bool
	// NoConverge disables convergence-gated early termination and the
	// fault-equivalence memo for this campaign: every experiment runs to
	// completion even after its state reconverges with the golden run.
	// Results are bit-identical either way (the convergence differential
	// tests enforce it); the knob exists for that comparison and for the
	// CI convergence ablation (MULTIFLIP_NOCONVERGE disables both
	// process-wide).
	NoConverge bool
	// Pins, when non-empty, forces experiment i's first injection to
	// Pins[i] and sets N = len(Pins).
	Pins []Pin
}

func (s *CampaignSpec) validate() error {
	if s.Target == nil {
		return fmt.Errorf("core: campaign needs a target")
	}
	if s.Technique != InjectOnRead && s.Technique != InjectOnWrite {
		return fmt.Errorf("core: invalid technique %d", int(s.Technique))
	}
	if err := s.Config.validate(); err != nil {
		return err
	}
	if len(s.Pins) == 0 && s.N <= 0 {
		return fmt.Errorf("core: campaign needs N > 0 or pins")
	}
	if s.Target.Candidates(s.Technique) == 0 {
		return fmt.Errorf("core: target %s has no %s candidates", s.Target.Name, s.Technique)
	}
	return nil
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Spec echoes the campaign parameters.
	Spec CampaignSpec
	// Tally holds the per-outcome counts and derives the percentage and
	// confidence-interval statistics (N, Pct, SDCPct, DetectionPct, CI95,
	// Resilience).
	Tally
	// CrashActivated histograms the number of activated errors of
	// experiments that ended in a hardware exception, capped at
	// ActivatedCap (Fig 3's distribution).
	CrashActivated [ActivatedCap + 1]int
	// TrapCounts indexes OutcomeException experiments by vm.TrapKind,
	// breaking the paper's exception category into segmentation faults,
	// misaligned accesses, arithmetic errors, aborts and stack overflows.
	TrapCounts [NumTrapKinds]int
	// ActivatedTotal sums activated errors over all experiments.
	ActivatedTotal int
	// Converged counts experiments the VM terminated early because their
	// injected state reconverged with the golden run. Deterministic per
	// campaign (each experiment converges on its own).
	Converged int
	// MemoHits counts experiments resolved from the fault-equivalence
	// memo: their post-injection state matched an already-executed
	// experiment's, so the recorded outcome was reused. The count depends
	// on worker scheduling (which equivalent experiment runs first);
	// outcomes never do.
	MemoHits int
	// Experiments holds per-experiment records when Spec.Record is set.
	Experiments []Experiment
}

// memoVal is the fault-equivalence memo's payload: the outcome of the
// continuation from a post-injection state. Activation counts and first
// locations stay per-experiment — they are fixed before the memo key is
// computed.
type memoVal struct {
	outcome Outcome
	trap    vm.TrapKind
}

// expStats reports how an experiment terminated, for the campaign's
// early-exit accounting.
type expStats struct {
	converged bool
	memoHit   bool
}

// experimentHook, when non-nil, is called with each claimed experiment
// index before it runs. Test seam: the error-propagation tests use it to
// hold workers at a barrier so several fail concurrently.
var experimentHook func(idx int)

// RunCampaign executes the campaign. Experiments run in parallel but the
// result is identical for any worker count: every experiment derives its
// private random stream from (Seed, experiment index).
func RunCampaign(spec CampaignSpec) (*CampaignResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	n := spec.N
	if len(spec.Pins) > 0 {
		n = len(spec.Pins)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	exps := make([]Experiment, n)
	var (
		next      atomic.Int64
		failed    atomic.Bool
		wg        sync.WaitGroup
		errMu     sync.Mutex
		errs      []error
		memo      sync.Map
		converged atomic.Int64
		memoHits  atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				// The failed check gates the claim loop: once any worker
				// errors, the whole campaign's result is discarded, so its
				// peers must stop claiming experiments instead of running
				// the rest of the grid for nothing.
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if h := experimentHook; h != nil {
					h(i)
				}
				var pin *Pin
				if len(spec.Pins) > 0 {
					pin = &spec.Pins[i]
				}
				exp, st, err := runOne(&spec, uint64(i), pin, &memo)
				if err != nil {
					// Every worker's failure is collected: a grid-wide abort
					// with several concurrent causes surfaces all of them
					// (errors.Join), not just whichever lost the race.
					errMu.Lock()
					errs = append(errs, err)
					errMu.Unlock()
					failed.Store(true)
					return
				}
				if st.converged {
					converged.Add(1)
				}
				if st.memoHit {
					memoHits.Add(1)
				}
				exps[i] = exp
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	res := &CampaignResult{
		Spec:      spec,
		Converged: int(converged.Load()),
		MemoHits:  int(memoHits.Load()),
	}
	for i := range exps {
		e := &exps[i]
		res.Add(e.Outcome)
		res.ActivatedTotal += e.Activated
		if e.Outcome == OutcomeException {
			a := e.Activated
			if a > ActivatedCap {
				a = ActivatedCap
			}
			res.CrashActivated[a]++
			if int(e.Trap) < NumTrapKinds {
				res.TrapCounts[e.Trap]++
			}
		}
	}
	if spec.Record {
		res.Experiments = exps
	}
	return res, nil
}

// runOne performs experiment idx of the campaign.
func runOne(spec *CampaignSpec, idx uint64, pin *Pin, memo *sync.Map) (Experiment, expStats, error) {
	t := spec.Target
	rng := xrand.ForExperiment(spec.Seed, idx)

	var cand uint64
	pinnedBit := -1
	if pin != nil {
		cand = pin.Cand
		pinnedBit = pin.Bit
	} else {
		cand = rng.Uint64n(t.Candidates(spec.Technique))
	}

	plan := &vm.Plan{
		OnWrite:   spec.Technique == InjectOnWrite,
		FirstCand: cand,
		MaxFlips:  spec.Config.MaxMBF,
		PinnedBit: pinnedBit,
		Rng:       rng,
	}
	switch {
	case spec.Config.IsSingle():
		plan.SameReg = true // one flip; mode is irrelevant but cheapest
	case spec.Config.Win.IsZero():
		plan.SameReg = true
	default:
		plan.NextWindow = spec.Config.Win.Sampler()
	}

	hangFactor := spec.HangFactor
	if hangFactor == 0 {
		hangFactor = DefaultHangFactor
	}
	// Fast-forward past the fault-free prefix: resume from the latest
	// golden-run snapshot preceding the first injection candidate. The
	// prefix is deterministic and consumes no randomness, so the outcome
	// is bit-identical to a full replay.
	var resume *vm.Snapshot
	if !spec.NoSnapshots {
		resume = t.SnapshotBefore(spec.Technique, cand)
	}
	// Convergence-gated early termination plus the fault-equivalence memo:
	// the VM compares the post-injection state against the golden trace
	// (terminating with the golden outcome on reconvergence) and hands us
	// its state key at the first divergent boundary, so experiments that
	// collapse to an already-seen injected state reuse the recorded
	// outcome instead of re-executing.
	trace := t.Trace
	if spec.NoConverge {
		trace = nil
	}
	var (
		hit   memoVal
		hitOK bool
	)
	var memoCheck func(vm.StateKey) bool
	if trace != nil {
		memoCheck = func(k vm.StateKey) bool {
			if v, ok := memo.Load(k); ok {
				hit = v.(memoVal)
				hitOK = true
				return true
			}
			return false
		}
	}
	res, err := vm.Run(t.Prog, vm.Options{
		MaxDyn:      hangFactor*t.GoldenDyn + 1000,
		MaxOutput:   4*len(t.Golden) + 4096,
		NoAlignTrap: spec.NoAlignTrap,
		Plan:        plan,
		Resume:      resume,
		NoFuse:      spec.NoFusion,
		Trace:       trace,
		MemoCheck:   memoCheck,
	})
	if err != nil {
		return Experiment{}, expStats{}, fmt.Errorf("core: %s experiment %d: %w", t.Name, idx, err)
	}
	var st expStats
	var outcome Outcome
	trap := vm.TrapNone
	if res.Stop == vm.StopMemo && hitOK {
		// The first injection and activation count are this experiment's
		// own (fixed before the key was computed); only the continuation's
		// outcome is reused.
		outcome, trap = hit.outcome, hit.trap
		st.memoHit = true
	} else {
		if res.Stop == vm.StopTrap {
			trap = res.Trap
		}
		outcome = t.Classify(res)
		st.converged = res.Converged
		if res.PostKeyed {
			memo.Store(res.PostKey, memoVal{outcome: outcome, trap: trap})
		}
	}
	return Experiment{
		Cand:      cand,
		Bit:       res.FirstBit,
		Outcome:   outcome,
		Trap:      trap,
		Activated: res.Injected,
	}, st, nil
}
