package core

import (
	"fmt"

	"multiflip/internal/ir"
	"multiflip/internal/vm"
	"multiflip/internal/xrand"
)

// DefaultHangFactor multiplies the fault-free dynamic instruction count to
// form the hang budget. The paper's LLFI timeout is one to two orders of
// magnitude above the fault-free execution time (§III-E).
const DefaultHangFactor = 10

// ActivatedCap bounds the activated-error histogram; the paper's largest
// max-MBF is 30.
const ActivatedCap = 31

// NumTrapKinds sizes the per-trap-kind exception counters (vm.TrapKind
// values are dense, starting at TrapNone = 0).
const NumTrapKinds = int(vm.TrapStackOverflow) + 1

// Pin forces an experiment's first injection: the candidate index and bit
// of an earlier (usually single-bit) experiment. Used by the §IV-C3
// transition study, which starts each multi-bit experiment at the exact
// location of a single-bit experiment.
type Pin struct {
	Cand uint64
	Bit  int
}

// Experiment records one fault-injection experiment. The first-flip
// metadata (Bit, Dir, Role) is uniform across fault models: the VM
// surfaces it from plan execution, so register flips, memory-word
// flips and stuck-at holds all report it identically.
type Experiment struct {
	// Cand is the first injection's candidate-space index.
	Cand uint64
	// Bit is the first injection's bit index within its register (or
	// memory word), or -1 when the first injection flipped several bits
	// at once or never happened.
	Bit int
	// Dir is the first flip's direction (0→1 or 1→0), from the pre-flip
	// bit value; DirUnknown when Bit is unknown or — for stuck-at holds
	// — no forced read ever changed a value.
	Dir FlipDir
	// Role is the ir.SlotRole of the first injection's target
	// (ir.RoleNone when no injection occurred).
	Role ir.SlotRole
	// Outcome is the §III-E classification.
	Outcome Outcome
	// Trap is the hardware-exception kind for OutcomeException runs
	// (vm.TrapNone otherwise).
	Trap vm.TrapKind
	// Activated is the number of bit flips actually performed before the
	// run ended.
	Activated int
}

// RecordFlipMeta fills an experiment's uniform first-flip metadata from
// the raw run result; every fault model's Record calls it so the three
// models report bit position, direction and role identically.
func RecordFlipMeta(exp *Experiment, res *vm.Result) {
	exp.Bit = res.FirstBit
	exp.Dir = DirFromPre(res.FirstPre)
	exp.Role = res.FirstRole
	exp.Activated = res.Injected
}

// CampaignSpec describes a fault-injection campaign: N experiments with
// one fault model on one workload (§III-E).
type CampaignSpec struct {
	// Target is the prepared workload.
	Target *Target
	// Technique selects inject-on-read or inject-on-write.
	Technique Technique
	// Config is the (max-MBF, win-size) cluster; MaxMBF = 1 for the
	// single bit-flip model.
	Config Config
	// N is the number of experiments. Ignored when Pins is set.
	N int
	// Seed makes the campaign reproducible. Experiment i draws its
	// private stream from (Seed, i) regardless of scheduling.
	Seed uint64
	// HangFactor scales the fault-free dynamic instruction count into the
	// hang budget. Zero selects DefaultHangFactor.
	HangFactor uint64
	// Workers bounds campaign parallelism. Zero selects GOMAXPROCS.
	Workers int
	// ClaimBatch is the number of experiments a worker claims per atomic
	// operation (0 = the engine default). Results are identical for any
	// value; the knob supports the batch-claim ablation benchmark.
	ClaimBatch int
	// Record keeps per-experiment records in the result (needed by the
	// transition analysis).
	Record bool
	// NoAlignTrap disables the misaligned-access exception (alignment
	// ablation).
	NoAlignTrap bool
	// Classifier judges golden-vs-actual output when classifying
	// outcomes (nil = ExactClassifier). Non-default classifiers journal
	// under their own campaign fingerprint.
	Classifier Classifier
	// OnFailure decides what happens to an experiment that fails or
	// panics at every supervision tier: FailFast (default) aborts the
	// campaign, Quarantine poisons the experiment (OutcomeInternal, repro
	// metadata in CampaignResult.Quarantined) and keeps draining.
	OnFailure FailurePolicy
	// NoSnapshots forces every experiment to replay the fault-free prefix
	// from instruction 0 instead of fast-forwarding from the target's
	// golden-run snapshots. Results are bit-identical either way (the
	// differential tests enforce it); the knob exists for that comparison
	// and as an escape hatch.
	NoSnapshots bool
	// NoFusion disables superinstruction execution in every experiment of
	// this campaign: each instruction dispatches alone through the VM's
	// handler table. Results are bit-identical either way (the fusion
	// differential tests enforce it); the knob exists for that comparison
	// and for the CI dispatch ablation.
	NoFusion bool
	// NoCompile disables the compiled fast tier in every experiment of
	// this campaign: event-horizon stretches execute through the
	// token-threaded interpreter instead of the workload's generated
	// native kernel. Results are bit-identical either way (the compile
	// differential tests enforce it); the knob exists for that comparison
	// and for the CI compile ablation (MULTIFLIP_NOCOMPILE disables the
	// tier process-wide).
	NoCompile bool
	// NoConverge disables convergence-gated early termination and the
	// fault-equivalence memo for this campaign: every experiment runs to
	// completion even after its state reconverges with the golden run.
	// Results are bit-identical either way (the convergence differential
	// tests enforce it); the knob exists for that comparison and for the
	// CI convergence ablation (MULTIFLIP_NOCONVERGE disables both
	// process-wide).
	NoConverge bool
	// NoLiveness disables static-liveness pruning for this campaign:
	// every experiment executes even when the liveness oracle could prove
	// it Benign without running. Results are bit-identical either way
	// modulo the StaticPruned counter (the liveness soundness
	// differential enforces it); the knob exists for that comparison and
	// for the CI liveness ablation (MULTIFLIP_NOLIVENESS disables the
	// tier process-wide).
	NoLiveness bool
	// Pins, when non-empty, forces experiment i's first injection to
	// Pins[i] and sets N = len(Pins).
	Pins []Pin
	// Service, when set (and naming a journal or directory), runs the
	// campaign as a durable job: sharded, checkpointed, resumable, and
	// drainable by several processes at once.
	Service *Service
}

// validate checks the engine-level fields; the model-level checks
// (technique, config, candidates) run once inside Engine.Run via
// RegisterModel.Validate.
func (s *CampaignSpec) validate() error {
	if s.Target == nil {
		return fmt.Errorf("core: campaign needs a target")
	}
	if len(s.Pins) == 0 && s.N <= 0 {
		return fmt.Errorf("core: campaign needs N > 0 or pins")
	}
	return nil
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Spec echoes the campaign parameters.
	Spec CampaignSpec
	// EngineResult holds the outcome tally, the activated-error and
	// trap-kind histograms, the early-exit counters and (when
	// Spec.Record is set) the per-experiment records.
	EngineResult
}

// RegisterModel is the paper's register bit-flip fault model expressed as
// an engine FaultModel: single or multiple bit flips injected into the
// registers an instruction reads (inject-on-read) or writes
// (inject-on-write), clustered by (max-MBF, win-size). RunCampaign wraps
// it; the type is exported so the engine seam tests — and campaigns
// composed directly on the Engine — can construct it.
type RegisterModel struct {
	// Spec supplies the technique, the error cluster, the optional pins
	// and the snapshot knob; its engine-level fields (N, Seed, Workers,
	// ...) are ignored here.
	Spec *CampaignSpec
}

// Prefix implements FaultModel.
func (m *RegisterModel) Prefix() string { return "core" }

// Describe implements FaultModel: the register model's full
// parameterization for the campaign fingerprint. Pinned campaigns fold a
// digest of the pin list — two campaigns with different pins plan
// different experiments.
func (m *RegisterModel) Describe() string {
	s := m.Spec
	d := fmt.Sprintf("register tech=%s mbf=%d win=%s", s.Technique, s.Config.MaxMBF, s.Config.Win)
	if len(s.Pins) > 0 {
		h := uint64(0)
		for _, p := range s.Pins {
			h = mix(h, p.Cand)
			h = mix(h, uint64(int64(p.Bit)))
		}
		d += fmt.Sprintf(" pins=%d:%016x", len(s.Pins), h)
	}
	return d
}

// Validate implements FaultModel.
func (m *RegisterModel) Validate(t *Target, n int) error {
	s := m.Spec
	if s.Technique != InjectOnRead && s.Technique != InjectOnWrite {
		return fmt.Errorf("core: invalid technique %d", int(s.Technique))
	}
	if err := s.Config.validate(); err != nil {
		return err
	}
	if t.Candidates(s.Technique) == 0 {
		return fmt.Errorf("core: target %s has no %s candidates", t.Name, s.Technique)
	}
	// Pinned campaigns run exactly one experiment per pin; an engine N
	// past the pin list would index out of range inside a worker.
	if len(s.Pins) > 0 && n != len(s.Pins) {
		return fmt.Errorf("core: pinned campaign needs N == len(Pins): %d vs %d", n, len(s.Pins))
	}
	return nil
}

// Plan implements FaultModel: the first flip lands on a uniformly drawn
// (or pinned) candidate, follow-up flips follow the cluster's window
// sampler, and the experiment fast-forwards from the latest golden-run
// snapshot preceding the first candidate. The prefix is deterministic
// and consumes no randomness, so the outcome is bit-identical to a full
// replay.
func (m *RegisterModel) Plan(t *Target, idx uint64, rng *xrand.Rand) Injection {
	s := m.Spec
	var cand uint64
	pinnedBit := -1
	if len(s.Pins) > 0 {
		pin := &s.Pins[idx]
		cand = pin.Cand
		pinnedBit = pin.Bit
	} else {
		cand = rng.Uint64n(t.Candidates(s.Technique))
	}
	plan := &vm.Plan{
		OnWrite:   s.Technique == InjectOnWrite,
		FirstCand: cand,
		MaxFlips:  s.Config.MaxMBF,
		PinnedBit: pinnedBit,
		Rng:       rng,
	}
	switch {
	case s.Config.IsSingle():
		plan.SameReg = true // one flip; mode is irrelevant but cheapest
	case s.Config.Win.IsZero():
		plan.SameReg = true
	default:
		plan.NextWindow = s.Config.Win.Sampler()
	}
	inj := Injection{Cand: cand, Plan: plan}
	if !s.NoSnapshots {
		inj.Resume = t.SnapshotBefore(s.Technique, cand)
	}
	return inj
}

// Record implements FaultModel.
func (m *RegisterModel) Record(exp *Experiment, res *vm.Result) {
	RecordFlipMeta(exp, res)
}

// RunCampaign executes the campaign on the shared experiment engine.
// Experiments run in parallel but the result is identical for any worker
// count: every experiment derives its private random stream from (Seed,
// experiment index).
func RunCampaign(spec CampaignSpec) (*CampaignResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	n := spec.N
	if len(spec.Pins) > 0 {
		n = len(spec.Pins)
	}
	er, err := (&Engine{
		Target:        spec.Target,
		Model:         &RegisterModel{Spec: &spec},
		N:             n,
		Seed:          spec.Seed,
		HangFactor:    spec.HangFactor,
		Workers:       spec.Workers,
		ClaimBatch:    spec.ClaimBatch,
		Record:        spec.Record,
		NoFusion:      spec.NoFusion,
		NoCompile:     spec.NoCompile,
		NoConverge:    spec.NoConverge,
		NoLiveness:    spec.NoLiveness,
		NoAlignTrap:   spec.NoAlignTrap,
		Classifier:    spec.Classifier,
		FailurePolicy: spec.OnFailure,
		Service:       spec.Service,
	}).Run()
	if err != nil {
		return nil, err
	}
	return &CampaignResult{Spec: spec, EngineResult: *er}, nil
}
