package core

// Stuck-at register faults. The paper's fault model is transient: a bit
// flips once and the corrupted value decays or propagates. Hardware also
// exhibits *persistent* faults — a latch or bitcell stuck at VDD or
// ground — which BEC ("Bit-Level Static Analysis for Reliability against
// Soft Errors", PAPERS.md) treats as a first-class model alongside
// transient flips. This file expresses that class as a third FaultModel
// on the shared experiment engine: one register bit held at a constant 0
// or 1 across every read of the register within a sampled dynamic
// window, rather than XOR-flipped once. Sampling the window start from
// the inject-on-read candidate space (rather than from raw dynamic
// instants) keeps the model liveness-filtered like the register flip
// campaigns: the hold always begins at an actual read of the faulty
// register.

import (
	"fmt"

	"multiflip/internal/vm"
	"multiflip/internal/xrand"
)

// DefaultStuckWindow is the hold length, in dynamic instructions, used
// when StuckAtSpec.Window is left zero.
const DefaultStuckWindow = 100

// StuckAtSpec describes a stuck-at campaign: N experiments, each holding
// one register bit at a constant value across a dynamic window.
type StuckAtSpec struct {
	// Target is the prepared workload.
	Target *Target
	// Window is the hold length in dynamic instructions, in Table I
	// notation (fixed, or an RND range sampled per experiment). The zero
	// value selects Win(DefaultStuckWindow); note Win(0) IS the zero
	// value, so a zero-length hold is not expressible (it would inject
	// nothing anyway). Front-ends reject an explicit "0".
	Window WinSize
	// N is the number of experiments.
	N int
	// Seed makes the campaign reproducible.
	Seed uint64
	// HangFactor scales the hang budget (0 = DefaultHangFactor).
	HangFactor uint64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Record keeps per-experiment records in the result.
	Record bool
	// NoSnapshots forces full fault-free prefix replay (differential
	// testing; results are bit-identical either way).
	NoSnapshots bool
	// NoFusion disables superinstruction execution in every experiment.
	NoFusion bool
	// NoCompile disables the compiled fast tier in every experiment.
	NoCompile bool
	// NoConverge disables convergence-gated early termination and the
	// fault-equivalence memo.
	NoConverge bool
	// Classifier judges golden-vs-actual output when classifying
	// outcomes (nil = ExactClassifier).
	Classifier Classifier
	// OnFailure decides what happens to an experiment that fails or
	// panics at every supervision tier (FailFast aborts, Quarantine
	// poisons and keeps draining).
	OnFailure FailurePolicy
	// Service, when set (and naming a journal or directory), runs the
	// campaign as a durable job (see core.Service).
	Service *Service
}

// window returns the spec's hold window with the default applied.
func (s *StuckAtSpec) window() WinSize {
	if s.Window == (WinSize{}) {
		return Win(DefaultStuckWindow)
	}
	return s.Window
}

// ParseStuckWindow parses a stuck-at hold window in Table I notation and
// enforces the >= 1 floor. Front-ends use it instead of ParseWinSize
// because Win(0) is StuckAtSpec.Window's zero value: passed through, an
// explicit "0" would silently select the default instead of failing.
func ParseStuckWindow(s string) (WinSize, error) {
	w, err := ParseWinSize(s)
	if err != nil {
		return WinSize{}, err
	}
	if w.Lo < 1 {
		return WinSize{}, fmt.Errorf("core: stuck-at window must be >= 1 instruction, got %q", s)
	}
	return w, nil
}

// StuckAtResult aggregates a stuck-at campaign.
type StuckAtResult struct {
	// Spec echoes the campaign parameters.
	Spec StuckAtSpec
	// EngineResult holds the outcome tally, histograms, early-exit
	// counters and (when Spec.Record is set) the per-experiment records.
	// Experiment.Activated counts the reads whose value the hold actually
	// changed, so — unlike single-bit flip campaigns, whose candidates
	// are live by construction — it can be zero.
	EngineResult
}

// StuckAtModel is the stuck-at register fault class expressed as an
// engine FaultModel. RunStuckAt wraps it; the type is exported so the
// engine seam tests — and campaigns composed directly on the Engine —
// can construct it.
type StuckAtModel struct {
	// Spec supplies the hold window and the snapshot knob; its
	// engine-level fields (N, Seed, Workers, ...) are ignored here.
	Spec *StuckAtSpec
}

// Prefix implements FaultModel.
func (m *StuckAtModel) Prefix() string { return "stuckat" }

// Describe implements FaultModel.
func (m *StuckAtModel) Describe() string {
	return fmt.Sprintf("stuckat win=%s", m.Spec.window())
}

// Validate implements FaultModel. A zero Lo cannot reach here: the only
// representable zero window is the WinSize zero value, which window()
// already defaulted.
func (m *StuckAtModel) Validate(t *Target, n int) error {
	w := m.Spec.window()
	if err := w.validate(); err != nil {
		return err
	}
	if t.Candidates(InjectOnRead) == 0 {
		return fmt.Errorf("core: target %s has no %s candidates", t.Name, InjectOnRead)
	}
	return nil
}

// Plan implements FaultModel. Draw order per experiment is fixed (anchor
// candidate, stuck value, window length; the bit index follows on the
// same stream at activation time inside the VM), so experiments are
// deterministic per (seed, index) regardless of scheduling.
func (m *StuckAtModel) Plan(t *Target, idx uint64, rng *xrand.Rand) Injection {
	s := m.Spec
	cand := rng.Uint64n(t.Candidates(InjectOnRead))
	high := rng.Intn(2) == 1
	w := s.window()
	win := uint64(w.Lo)
	if w.IsRandom() {
		win = uint64(rng.IntRange(w.Lo, w.Hi))
	}
	plan := &vm.Plan{
		FirstCand:  cand,
		MaxFlips:   1, // unused by stuck plans; kept well-formed
		PinnedBit:  -1,
		Rng:        rng,
		Stuck:      true,
		StuckHigh:  high,
		HoldWindow: win,
	}
	inj := Injection{Cand: cand, Plan: plan}
	if !s.NoSnapshots {
		inj.Resume = t.SnapshotBefore(InjectOnRead, cand)
	}
	return inj
}

// Record implements FaultModel.
func (m *StuckAtModel) Record(exp *Experiment, res *vm.Result) {
	RecordFlipMeta(exp, res)
}

// RunStuckAt executes a stuck-at campaign on the shared experiment
// engine. Like the other campaign types, results are reproducible for
// any worker count.
func RunStuckAt(spec StuckAtSpec) (*StuckAtResult, error) {
	if spec.Target == nil {
		return nil, fmt.Errorf("core: stuck-at campaign needs a target")
	}
	if spec.N <= 0 {
		return nil, fmt.Errorf("core: stuck-at campaign needs N > 0")
	}
	er, err := (&Engine{
		Target:        spec.Target,
		Model:         &StuckAtModel{Spec: &spec},
		N:             spec.N,
		Seed:          spec.Seed,
		HangFactor:    spec.HangFactor,
		Workers:       spec.Workers,
		Record:        spec.Record,
		NoFusion:      spec.NoFusion,
		NoCompile:     spec.NoCompile,
		NoConverge:    spec.NoConverge,
		Classifier:    spec.Classifier,
		FailurePolicy: spec.OnFailure,
		Service:       spec.Service,
	}).Run()
	if err != nil {
		return nil, err
	}
	return &StuckAtResult{Spec: spec, EngineResult: *er}, nil
}
