package core

import (
	"encoding/json"
	"fmt"

	"multiflip/internal/stats"
)

// FlipDir is the direction of a single-bit corruption: whether the
// injection cleared a set bit (1→0) or set a clear one (0→1). The
// Snippet-1 style breakdowns — and asymmetric protection schemes such
// as precharged latches — care about the two directions separately.
type FlipDir uint8

// Flip directions. DirUnknown covers experiments whose first injection
// has no single direction: multi-bit same-register flips, multi-bit
// memory masks, and stuck-at holds that never changed a value.
const (
	DirUnknown FlipDir = iota
	Dir0to1
	Dir1to0
	// NumFlipDirs sizes direction-indexed tables.
	NumFlipDirs
)

// String renders the direction as the study tables print it.
func (d FlipDir) String() string {
	switch d {
	case Dir0to1:
		return "0->1"
	case Dir1to0:
		return "1->0"
	}
	return "unknown"
}

// DirFromPre converts a pre-flip bit value (vm.Result.FirstPre: -1
// unknown, else 0 or 1) into a flip direction.
func DirFromPre(pre int) FlipDir {
	switch pre {
	case 0:
		return Dir0to1
	case 1:
		return Dir1to0
	}
	return DirUnknown
}

// Bit-position buckets: one per bit index of a 64-bit register or
// memory word, plus UnknownBit for experiments whose first injection
// has no single bit position.
const (
	// UnknownBit is the bucket for experiments with no single first-flip
	// bit (Experiment.Bit < 0).
	UnknownBit = 64
	// NumBitBuckets sizes bit-position-indexed tables.
	NumBitBuckets = 65
)

// bitBucket maps an Experiment.Bit value to its tally bucket.
func bitBucket(bit int) int {
	if bit < 0 || bit >= UnknownBit {
		return UnknownBit
	}
	return bit
}

// Tally accumulates per-outcome experiment counts and derives the
// percentage and confidence-interval statistics every campaign type
// reports. Register campaigns (CampaignResult) and memory-fault campaigns
// (memfault.Result) embed it so the §III-E outcome math lives in one
// place.
//
// Counts is the flat per-outcome total — the paper's Table I numbers —
// and stays authoritative: journal validation and every percentage
// derive from it. Dims carries the same experiments broken down by
// (outcome × bit position × flip direction); for freshly tallied data
// each outcome's Counts entry equals the sum of its Dims cells, while
// shard checkpoints written before the dimensional tally existed load
// with zero Dims (the flat totals survive, the breakdown covers only
// data recorded since).
type Tally struct {
	// Counts indexes experiment totals by Outcome.
	Counts [NumOutcomes + 1]int
	// Dims breaks the same totals down by bit position and flip
	// direction.
	Dims DimTally `json:"dims"`
}

// Add records one experiment outcome with no dimensional information
// (bit position and direction unknown).
func (t *Tally) Add(o Outcome) { t.AddDim(o, -1, DirUnknown) }

// AddDim records one experiment outcome together with its first-flip
// bit position (negative = unknown) and flip direction.
func (t *Tally) AddDim(o Outcome, bit int, dir FlipDir) {
	t.Counts[o]++
	t.Dims.add(o, bit, dir)
}

// Merge folds another tally into t. Merging is associative and
// commutative (each bucket is a sum), which is what lets campaign shards
// aggregate incrementally and in any order (see ShardResult).
func (t *Tally) Merge(o *Tally) {
	for i, c := range o.Counts {
		t.Counts[i] += c
	}
	t.Dims.merge(&o.Dims)
}

// N returns the number of experiments tallied.
func (t *Tally) N() int {
	n := 0
	for _, c := range t.Counts {
		n += c
	}
	return n
}

// Count returns the number of experiments in category o.
func (t *Tally) Count(o Outcome) int { return t.Counts[o] }

// Pct returns the percentage of experiments in category o.
func (t *Tally) Pct(o Outcome) float64 { return stats.Percent(t.Counts[o], t.N()) }

// SDCPct returns the silent-data-corruption percentage.
func (t *Tally) SDCPct() float64 { return t.Pct(OutcomeSDC) }

// DetectionPct returns the paper's aggregate Detection percentage
// (HWException + Hang + NoOutput).
func (t *Tally) DetectionPct() float64 {
	return t.Pct(OutcomeException) + t.Pct(OutcomeHang) + t.Pct(OutcomeNoOutput)
}

// Resilience returns the error-resilience estimate: the probability that
// an activated error does not produce an SDC (§II-B).
func (t *Tally) Resilience() float64 { return 1 - t.SDCPct()/100 }

// CI95 returns the half-width of the 95% confidence interval, in
// percentage points, of category o's percentage (normal approximation of
// the binomial, as the paper's error bars).
func (t *Tally) CI95(o Outcome) float64 { return stats.NormalCI95(t.Counts[o], t.N()) }

// DimTally is the dimensional half of a Tally: experiment counts by
// (outcome × bit position × flip direction). The array is dense in
// memory but sparse on the wire — MarshalJSON emits only non-zero cells
// — and the zero value is ready to use, which is what keeps old-format
// journal records (no "dims" key) loading cleanly.
type DimTally struct {
	counts [NumOutcomes + 1][NumBitBuckets][NumFlipDirs]int
}

// add records one experiment in its (outcome, bit, direction) cell.
func (d *DimTally) add(o Outcome, bit int, dir FlipDir) {
	if dir >= NumFlipDirs {
		dir = DirUnknown
	}
	d.counts[o][bitBucket(bit)][dir]++
}

// Merge folds another dimensional tally into d (associative and
// commutative: every cell is a sum). Renderers use it to aggregate
// breakdowns across campaigns without touching the flat totals.
func (d *DimTally) Merge(o *DimTally) { d.merge(o) }

// merge folds another dimensional tally into d (associative and
// commutative: every cell is a sum).
func (d *DimTally) merge(o *DimTally) {
	for i := range o.counts {
		for b := range o.counts[i] {
			for k, c := range o.counts[i][b] {
				if c != 0 {
					d.counts[i][b][k] += c
				}
			}
		}
	}
}

// Count returns the number of experiments in the (o, bit, dir) cell;
// bit < 0 addresses the unknown-position bucket.
func (d *DimTally) Count(o Outcome, bit int, dir FlipDir) int {
	if dir >= NumFlipDirs {
		dir = DirUnknown
	}
	return d.counts[o][bitBucket(bit)][dir]
}

// BitCount returns the number of category-o experiments whose first
// flip landed on bit, summed over directions.
func (d *DimTally) BitCount(o Outcome, bit int) int {
	n := 0
	for _, c := range d.counts[o][bitBucket(bit)] {
		n += c
	}
	return n
}

// DirCount returns the number of category-o experiments with flip
// direction dir, summed over bit positions.
func (d *DimTally) DirCount(o Outcome, dir FlipDir) int {
	if dir >= NumFlipDirs {
		dir = DirUnknown
	}
	n := 0
	for b := range d.counts[o] {
		n += d.counts[o][b][dir]
	}
	return n
}

// BitTotal returns the number of experiments (all outcomes) whose first
// flip landed on bit.
func (d *DimTally) BitTotal(bit int) int {
	n := 0
	for o := range d.counts {
		n += d.BitCount(Outcome(o), bit)
	}
	return n
}

// DirTotal returns the number of experiments (all outcomes) with flip
// direction dir.
func (d *DimTally) DirTotal(dir FlipDir) int {
	n := 0
	for o := range d.counts {
		n += d.DirCount(Outcome(o), dir)
	}
	return n
}

// N returns the number of experiments with dimensional information
// (zero for tallies loaded from pre-dimensional journal checkpoints).
func (d *DimTally) N() int {
	n := 0
	for o := range d.counts {
		for b := range d.counts[o] {
			for _, c := range d.counts[o][b] {
				n += c
			}
		}
	}
	return n
}

// dimCell is one non-zero cell on the wire: [outcome, bit bucket,
// direction, count].
type dimCell [4]int

// MarshalJSON emits the non-zero cells as a sparse [[o,b,d,n], ...]
// list; the dense array would bloat every shard checkpoint with ~1200
// zeros.
func (d DimTally) MarshalJSON() ([]byte, error) {
	cells := make([]dimCell, 0, 16)
	for o := range d.counts {
		for b := range d.counts[o] {
			for k, c := range d.counts[o][b] {
				if c != 0 {
					cells = append(cells, dimCell{o, b, k, c})
				}
			}
		}
	}
	return json.Marshal(cells)
}

// UnmarshalJSON loads a sparse cell list, dropping out-of-range or
// negative cells like the journal loader drops malformed records: a
// foreign or corrupt breakdown must never panic or poison the flat
// totals the campaign validates against.
func (d *DimTally) UnmarshalJSON(b []byte) error {
	var cells []dimCell
	if err := json.Unmarshal(b, &cells); err != nil {
		return fmt.Errorf("core: dimensional tally: %w", err)
	}
	*d = DimTally{}
	for _, c := range cells {
		o, bit, dir, n := c[0], c[1], c[2], c[3]
		if o < 0 || o > NumOutcomes || bit < 0 || bit >= NumBitBuckets ||
			dir < 0 || dir >= int(NumFlipDirs) || n < 0 {
			continue
		}
		d.counts[o][bit][dir] += n
	}
	return nil
}
