package core

import "multiflip/internal/stats"

// Tally accumulates per-outcome experiment counts and derives the
// percentage and confidence-interval statistics every campaign type
// reports. Register campaigns (CampaignResult) and memory-fault campaigns
// (memfault.Result) embed it so the §III-E outcome math lives in one
// place.
type Tally struct {
	// Counts indexes experiment totals by Outcome.
	Counts [NumOutcomes + 1]int
}

// Add records one experiment outcome.
func (t *Tally) Add(o Outcome) { t.Counts[o]++ }

// Merge folds another tally into t. Merging is associative and
// commutative (each bucket is a sum), which is what lets campaign shards
// aggregate incrementally and in any order (see ShardResult).
func (t *Tally) Merge(o *Tally) {
	for i, c := range o.Counts {
		t.Counts[i] += c
	}
}

// N returns the number of experiments tallied.
func (t *Tally) N() int {
	n := 0
	for _, c := range t.Counts {
		n += c
	}
	return n
}

// Count returns the number of experiments in category o.
func (t *Tally) Count(o Outcome) int { return t.Counts[o] }

// Pct returns the percentage of experiments in category o.
func (t *Tally) Pct(o Outcome) float64 { return stats.Percent(t.Counts[o], t.N()) }

// SDCPct returns the silent-data-corruption percentage.
func (t *Tally) SDCPct() float64 { return t.Pct(OutcomeSDC) }

// DetectionPct returns the paper's aggregate Detection percentage
// (HWException + Hang + NoOutput).
func (t *Tally) DetectionPct() float64 {
	return t.Pct(OutcomeException) + t.Pct(OutcomeHang) + t.Pct(OutcomeNoOutput)
}

// Resilience returns the error-resilience estimate: the probability that
// an activated error does not produce an SDC (§II-B).
func (t *Tally) Resilience() float64 { return 1 - t.SDCPct()/100 }

// CI95 returns the half-width of the 95% confidence interval, in
// percentage points, of category o's percentage (normal approximation of
// the binomial, as the paper's error bars).
func (t *Tally) CI95(o Outcome) float64 { return stats.NormalCI95(t.Counts[o], t.N()) }
