// Package core implements the paper's primary contribution: a fault model
// for single and multiple bit-flip errors over two injection techniques,
// the (max-MBF, win-size) error-space clustering of §III-C, experiment
// outcome classification (§III-E), and a parallel, deterministic campaign
// runner.
//
// # Golden-run fast-forwarding
//
// Target preparation (NewTarget) records vm.Snapshots of the golden run
// every DefaultSnapshotInterval dynamic instructions. Each campaign
// experiment then resumes from the latest snapshot whose candidate
// counter (read slots for inject-on-read, register writes for
// inject-on-write) does not exceed the experiment's first injection
// candidate, skipping the fault-free prefix instead of re-executing it.
// The prefix is deterministic and consumes none of the experiment's
// random stream — randomness is derived from (Seed, experiment index)
// only — so campaign results are bit-identical for any worker count and
// any checkpoint interval, including none (CampaignSpec.NoSnapshots); the
// differential tests in snapshot_diff_test.go enforce this. For uniformly
// drawn candidates the skipped prefix averages half the golden run, the
// overhead checkpoint-based fault injectors exist to eliminate. Snapshots
// are copy-on-write at page granularity (see internal/vm), so targets
// checkpoint densely: capture cost tracks the pages dirtied per interval
// and experiments copy only the pages they write.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"multiflip/internal/xrand"
)

// Technique is the fault-injection technique (§III-A).
type Technique int

// Techniques.
const (
	// InjectOnRead flips bits of a source register just before an
	// instruction reads it (§III-A1).
	InjectOnRead Technique = iota + 1
	// InjectOnWrite flips bits of a destination register just after an
	// instruction writes it (§III-A2).
	InjectOnWrite
)

// Techniques lists both techniques in paper order.
func Techniques() []Technique { return []Technique{InjectOnRead, InjectOnWrite} }

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case InjectOnRead:
		return "inject-on-read"
	case InjectOnWrite:
		return "inject-on-write"
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// WinSize is the dynamic window size between consecutive injections
// (§III-C): the number of dynamic instructions separating them. Lo == Hi
// denotes a fixed window; Lo < Hi denotes the paper's RND(α, β) windows,
// sampled uniformly per injection.
type WinSize struct {
	Lo, Hi int
}

// Win returns a fixed window of n dynamic instructions.
func Win(n int) WinSize { return WinSize{Lo: n, Hi: n} }

// WinRange returns a RND(lo, hi) window.
func WinRange(lo, hi int) WinSize { return WinSize{Lo: lo, Hi: hi} }

// IsZero reports the same-register cluster (win-size = 0).
func (w WinSize) IsZero() bool { return w.Lo == 0 && w.Hi == 0 }

// IsRandom reports a RND(α, β) window.
func (w WinSize) IsRandom() bool { return w.Lo != w.Hi }

// String renders Table I notation: "0", "100", "RND(2-10)".
func (w WinSize) String() string {
	if w.IsRandom() {
		return fmt.Sprintf("RND(%d-%d)", w.Lo, w.Hi)
	}
	return fmt.Sprintf("%d", w.Lo)
}

// ParseWinSize parses Table I window notation: "0", "4", "1000" (fixed)
// or "2-10", "101-1000" (RND ranges). Shared by the cmd front-ends.
func ParseWinSize(s string) (WinSize, error) {
	s = strings.TrimSpace(s)
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		l, err1 := strconv.Atoi(lo)
		h, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || l < 1 || h < l {
			return WinSize{}, fmt.Errorf("core: bad win range %q", s)
		}
		return WinRange(l, h), nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return WinSize{}, fmt.Errorf("core: bad win value %q", s)
	}
	return Win(v), nil
}

// Sampler returns the per-injection distance sampler used by multi-register
// plans. It panics for the zero window, which has no follow-up distances.
func (w WinSize) Sampler() func(*xrand.Rand) uint64 {
	if w.IsZero() {
		panic("core: zero window has no distance sampler")
	}
	if !w.IsRandom() {
		n := uint64(w.Lo)
		return func(*xrand.Rand) uint64 { return n }
	}
	lo, hi := w.Lo, w.Hi
	return func(r *xrand.Rand) uint64 { return uint64(r.IntRange(lo, hi)) }
}

// validate checks Table I constraints.
func (w WinSize) validate() error {
	if w.Lo < 0 || w.Hi < w.Lo {
		return fmt.Errorf("core: invalid win-size %+v", w)
	}
	if w.IsRandom() && w.Lo < 1 {
		return fmt.Errorf("core: random win-size must start at >= 1, got %v", w)
	}
	return nil
}

// StandardMaxMBF returns Table I's max-MBF values m1..m10.
func StandardMaxMBF() []int { return []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 30} }

// StandardWinSizes returns Table I's win-size values w1..w9.
func StandardWinSizes() []WinSize {
	return []WinSize{
		Win(0), Win(1), Win(4), WinRange(2, 10), Win(10),
		WinRange(11, 100), Win(100), WinRange(101, 1000), Win(1000),
	}
}

// Config is one error-space cluster: the paper's (max-MBF, win-size) pair.
// MaxMBF = 1 is the single bit-flip model (win-size is then irrelevant).
type Config struct {
	// MaxMBF is the maximum number of bit-flip errors injected in one run.
	// The actual (activated) count can be smaller if the run ends first.
	MaxMBF int
	// Win is the dynamic window size between consecutive injections.
	Win WinSize
}

// SingleBit returns the single bit-flip model's configuration.
func SingleBit() Config { return Config{MaxMBF: 1, Win: Win(0)} }

// IsSingle reports whether this is the single bit-flip model.
func (c Config) IsSingle() bool { return c.MaxMBF == 1 }

// String implements fmt.Stringer.
func (c Config) String() string {
	if c.IsSingle() {
		return "single-bit"
	}
	return fmt.Sprintf("mbf=%d win=%s", c.MaxMBF, c.Win)
}

func (c Config) validate() error {
	if c.MaxMBF < 1 {
		return fmt.Errorf("core: MaxMBF must be >= 1, got %d", c.MaxMBF)
	}
	return c.Win.validate()
}

// MultiRegisterConfigs enumerates the paper's 90 multi-register clusters
// per technique (10 max-MBF values x 9 win-sizes). Together with the
// single-bit campaign this yields the 91 campaigns per technique, 182 per
// program (§III-E).
func MultiRegisterConfigs() []Config {
	var cfgs []Config
	for _, m := range StandardMaxMBF() {
		for _, w := range StandardWinSizes() {
			cfgs = append(cfgs, Config{MaxMBF: m, Win: w})
		}
	}
	return cfgs
}

// Outcome classifies one experiment (§III-E).
type Outcome int

// Outcome categories.
const (
	// OutcomeBenign: normal termination, output matches the golden run.
	OutcomeBenign Outcome = iota + 1
	// OutcomeException: a hardware exception was raised (segmentation
	// fault, misaligned access, arithmetic error, abort).
	OutcomeException
	// OutcomeHang: the run exceeded its dynamic-instruction budget.
	OutcomeHang
	// OutcomeNoOutput: normal termination but no output was produced.
	OutcomeNoOutput
	// OutcomeSDC: normal termination with incorrect output and no failure
	// indication — silent data corruption.
	OutcomeSDC

	// OutcomeInternal: the experiment itself could not be executed — it
	// failed or panicked at every supervision tier — and was quarantined
	// by the Quarantine failure policy (supervise.go). Not a paper
	// category: Outcomes() excludes it, the study tables never show it
	// unless it occurred, and quarantined experiments say nothing about
	// the workload's resilience (they inflate Tally.N, so percentage
	// statistics on a quarantine-bearing campaign are lower bounds).
	OutcomeInternal

	// NumOutcomes is the number of categories.
	NumOutcomes = 6
)

// Outcomes lists the paper's categories in presentation order.
// OutcomeInternal is deliberately absent: it marks experiments the
// runtime quarantined, not a §III-E classification, and renderers
// surface it separately and only when present.
func Outcomes() []Outcome {
	return []Outcome{OutcomeBenign, OutcomeException, OutcomeHang, OutcomeNoOutput, OutcomeSDC}
}

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "Benign"
	case OutcomeException:
		return "HWException"
	case OutcomeHang:
		return "Hang"
	case OutcomeNoOutput:
		return "NoOutput"
	case OutcomeSDC:
		return "SDC"
	case OutcomeInternal:
		return "Internal"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// ContributesToResilience reports whether the category counts toward error
// resilience (everything except SDC, §II-B). Quarantined experiments
// (OutcomeInternal) say nothing about the workload and count toward
// neither side.
func (o Outcome) ContributesToResilience() bool {
	return o != OutcomeSDC && o != OutcomeInternal
}

// IsDetection reports whether the category belongs to the paper's
// aggregated Detection class (HWException + Hang + NoOutput).
func (o Outcome) IsDetection() bool {
	return o == OutcomeException || o == OutcomeHang || o == OutcomeNoOutput
}
