package core

// SetExperimentHook installs the worker-claim test seam and returns a
// restore function. The error-propagation tests use it to hold workers at
// a barrier so several fail concurrently.
func SetExperimentHook(h func(idx int)) (restore func()) {
	experimentHook = h
	return func() { experimentHook = nil }
}

// AutoClaimBatch exposes the claim-batch auto-tuner to the invariance
// and property tests.
var AutoClaimBatch = autoClaimBatch

// MaxClaimBatch exposes the auto-tuner's upper clamp.
const MaxClaimBatch = maxClaimBatch

// FaultInjections exposes the process-wide injected-fault counter, so
// fault-plan tests can assert non-vacuity (their schedule actually
// fired).
func FaultInjections() int64 { return faultsInjected.Load() }

// EngineFingerprint exposes the campaign content address to the
// classifier-identity tests.
func EngineFingerprint(e *Engine) uint64 { return e.fingerprint() }

// EngineMemoFingerprint exposes the memo content address to the
// classifier-identity tests.
func EngineMemoFingerprint(e *Engine) uint64 { return e.memoFingerprint() }
