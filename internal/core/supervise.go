package core

// The supervised execution layer: panic isolation, tiered degradation
// and the failure-policy seam. The engine's worker loop never calls
// runOne directly anymore — every experiment goes through runSupervised,
// which walks a ladder of progressively degraded execution tiers
// (compiled fast tier -> token-threaded interpreter -> unfused dispatch
// -> full interpretation with convergence off). The differential suites
// prove the tiers bit-identical, so a retry on a degraded tier is a
// legitimate result, not an approximation: a buggy generated kernel or a
// tripped VM invariant degrades one experiment to the interpreter
// instead of killing a campaign of tens of thousands.
//
// An experiment that fails at EVERY tier is decided by the engine's
// FailurePolicy: FailFast (the default, and the only behavior that
// existed before this layer) aborts the run with a joined error naming
// each tier's failure; Quarantine records a poisoned Experiment with
// full repro metadata (QuarantineRecord), tallies it under
// OutcomeInternal and lets the campaign keep draining.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"multiflip/internal/vm"
)

// FailurePolicy decides what happens to an experiment that fails (or
// panics) at every supervision tier.
type FailurePolicy int

// Failure policies.
const (
	// FailFast aborts the campaign on the first experiment that exhausts
	// the tier ladder (the engine's historical behavior, and the
	// default).
	FailFast FailurePolicy = iota
	// Quarantine records the experiment as poisoned — OutcomeInternal,
	// with a QuarantineRecord carrying the repro metadata — and keeps
	// the campaign draining. Quarantined experiments fold through shard
	// checkpoints like any other, so resumed and multi-process campaigns
	// agree on them bit for bit.
	Quarantine
)

// String renders the policy as the front-end flags spell it.
func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "fast"
	case Quarantine:
		return "quarantine"
	}
	return fmt.Sprintf("FailurePolicy(%d)", int(p))
}

// ParseFailurePolicy parses a front-end -onfail value. Empty selects
// FailFast.
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch strings.TrimSpace(s) {
	case "", "fast", "failfast":
		return FailFast, nil
	case "quarantine":
		return Quarantine, nil
	}
	return FailFast, fmt.Errorf("core: unknown failure policy %q (want fast or quarantine)", s)
}

// tier is one rung of the degradation ladder: which execution machinery
// stays enabled for a retry.
type tier struct {
	noCompile, noFuse, noConverge bool
}

// String names the rung for error messages and quarantine records.
func (t tier) String() string {
	switch {
	case !t.noCompile:
		return "full"
	case !t.noFuse:
		return "nocompile"
	case !t.noConverge:
		return "nofuse"
	}
	return "interp"
}

// ladder returns the engine's degradation ladder: the configured tier
// first, then progressively less machinery — compiled kernels off, then
// superinstruction fusion off, then convergence/memo off (pure
// interpretation). Rungs the engine's own knobs already disable collapse
// away, so a -nocompile campaign has a three-rung ladder and a fully
// degraded one retries exactly once.
func (e *Engine) ladder() []tier {
	base := tier{noCompile: e.NoCompile, noFuse: e.NoFusion, noConverge: e.NoConverge}
	steps := []tier{
		base,
		{noCompile: true, noFuse: base.noFuse, noConverge: base.noConverge},
		{noCompile: true, noFuse: true, noConverge: base.noConverge},
		{noCompile: true, noFuse: true, noConverge: true},
	}
	out := steps[:1]
	for _, t := range steps[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// panicError wraps a recovered experiment panic as an error. The stack
// digest (FNV-64a of the goroutine stack) identifies the failure site
// stably across runs without dumping whole stacks into campaign errors
// and journal records.
type panicError struct {
	value  string
	digest string
}

// Error implements error.
func (p *panicError) Error() string {
	return fmt.Sprintf("experiment panicked: %s [stack %s]", p.value, p.digest)
}

// QuarantineRecord is the repro metadata of one poisoned experiment:
// everything needed to replay the failure in isolation (the experiment
// index and campaign seed pin its private random stream, the model
// description its injection plan) plus what went wrong at each tier.
// Records fold through ShardResult/journal checkpoints; journals written
// before the supervision layer existed load with zero of them.
type QuarantineRecord struct {
	// Index is the experiment index within the campaign.
	Index int `json:"i"`
	// Seed is the campaign seed (with Index, the experiment's full
	// random-stream identity).
	Seed uint64 `json:"seed"`
	// Model is the fault model's self-description (FaultModel.Describe).
	Model string `json:"model"`
	// Tiers names the ladder rungs tried, in order.
	Tiers []string `json:"tiers"`
	// Errs holds one error string per tried tier.
	Errs []string `json:"errs"`
	// Panic is the recovered panic value of the first panicking tier
	// (empty when every tier failed with a plain error).
	Panic string `json:"panic,omitempty"`
	// Stack is the FNV-64a digest of the first panicking tier's stack.
	Stack string `json:"stack,omitempty"`
}

// sortQuarantined orders records by experiment index, making folded
// results independent of worker scheduling and fold order.
func sortQuarantined(recs []QuarantineRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Index < recs[j].Index })
}

// runSupervised performs experiment idx under the supervision ladder:
// each tier's attempt is panic-isolated, and a failed attempt retries on
// the next (more degraded) rung. On exhaustion the engine's
// FailurePolicy decides between a joined error (FailFast) and a poisoned
// experiment plus QuarantineRecord (Quarantine).
func (e *Engine) runSupervised(idx uint64, memo memoTable, trace *vm.GoldenTrace, ladder []tier) (Experiment, expStats, *QuarantineRecord, error) {
	var (
		tiers    []string
		errs     []error
		panicVal string
		panicDig string
	)
	for i, t := range ladder {
		exp, st, err := e.attempt(idx, memo, trace, t, i == 0)
		if err == nil {
			return exp, st, nil, nil
		}
		tiers = append(tiers, t.String())
		errs = append(errs, err)
		var pe *panicError
		if panicVal == "" && errors.As(err, &pe) {
			panicVal, panicDig = pe.value, pe.digest
		}
	}
	if e.FailurePolicy == Quarantine {
		rec := &QuarantineRecord{
			Index: int(idx),
			Seed:  e.Seed,
			Model: e.Model.Describe(),
			Tiers: tiers,
		}
		for _, err := range errs {
			rec.Errs = append(rec.Errs, err.Error())
		}
		rec.Panic, rec.Stack = panicVal, panicDig
		// The poisoned record: no injection metadata is trustworthy (the
		// failure may predate planning), so the experiment carries only
		// the quarantine outcome. Deterministic, hence identical across
		// resume, lease steals and worker counts.
		exp := Experiment{Bit: -1, Outcome: OutcomeInternal}
		return exp, expStats{}, rec, nil
	}
	return Experiment{}, expStats{}, nil, fmt.Errorf(
		"%s: %s experiment %d failed at every supervision tier (%s): %w",
		e.Model.Prefix(), e.Target.Name, idx, strings.Join(tiers, " -> "),
		errors.Join(dedupeErrors(errs)...))
}

// dedupeErrors drops consecutive repeats by message: a deterministic
// failure usually reads identically on every tier, and four copies of
// one cause bury the signal.
func dedupeErrors(errs []error) []error {
	out := errs[:0]
	seen := ""
	for _, err := range errs {
		if msg := err.Error(); msg != seen {
			out = append(out, err)
			seen = msg
		}
	}
	return out
}

// attempt runs one tier's try of experiment idx with panic isolation. A
// recovered panic becomes a *panicError; the worker's goroutine — and
// with it every other in-flight experiment — survives. The experiment
// hook (test seam, chaos injection) fires on the first tier only, inside
// the recover scope, so an injected panic is indistinguishable from a
// real one and each experiment observes exactly one hook call.
func (e *Engine) attempt(idx uint64, memo memoTable, trace *vm.GoldenTrace, t tier, first bool) (exp Experiment, st expStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			h := fnv.New64a()
			h.Write(stack)
			err = &panicError{
				value:  fmt.Sprint(r),
				digest: fmt.Sprintf("%016x", h.Sum64()),
			}
		}
	}()
	if first {
		if h := experimentHook; h != nil {
			h(int(idx))
		}
	}
	if t.noConverge {
		trace = nil
	}
	return e.runOne(idx, memo, trace, t)
}

// chaosPanicHook installs a panicking experiment hook when
// MULTIFLIP_CHAOS_PANIC=k is set: every k-th hook call panics. The
// panics are transient — the hook fires on the first ladder tier only,
// so the retry succeeds on the next rung and results stay bit-identical
// — which is exactly what the CI chaos ablation exercises.
func chaosPanicHook() {
	v := os.Getenv("MULTIFLIP_CHAOS_PANIC")
	if v == "" {
		return
	}
	k, err := strconv.ParseInt(v, 10, 64)
	if err != nil || k <= 0 {
		return
	}
	var calls atomic.Int64
	experimentHook = func(idx int) {
		if calls.Add(1)%k == 0 {
			panic(fmt.Sprintf("chaos: injected panic at experiment %d", idx))
		}
	}
}

func init() { chaosPanicHook() }
