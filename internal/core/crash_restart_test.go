package core_test

// The crash/restart differential harness: the PR's center of gravity.
// A journaled campaign is repeatedly killed at randomized experiment
// boundaries — Engine.Interrupt through the experimentHook seam is the
// in-process analogue of SIGKILL: workers stop dead between
// experiments, in-flight shards are abandoned un-checkpointed — and
// resumed from its file journal, sometimes with the journal's tail torn
// off first (a crash mid-write). Whatever the kill/resume history, the
// finally-completed campaign must be bit-identical to an uninterrupted
// run, for every fault model.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"multiflip/internal/core"
	"multiflip/internal/xrand"
)

// TestCrashRestartDifferential kills and resumes journaled campaigns at
// randomized boundaries until one run completes, then compares the
// completed result against the uninterrupted baseline: experiments,
// tallies and histograms bit for bit (early-exit counters excluded —
// they are scheduling-dependent by design).
func TestCrashRestartDifferential(t *testing.T) {
	const (
		n          = 96
		shardSize  = 8
		maxRounds  = 40 // safety margin; killed rounds stop at killRounds
		killRounds = 30
	)
	faultsBefore := core.FaultInjections()
	for _, prog := range []string{"qsort", "CRC32"} {
		tg := target(t, prog)
		for _, m := range engineModels() {
			t.Run(prog+"/"+m.name, func(t *testing.T) {
				baseline := func() *core.EngineResult {
					eng := m.engine(tg)
					eng.N = n
					eng.Seed = 5
					eng.Record = true
					res, err := eng.Run()
					if err != nil {
						t.Fatal(err)
					}
					return res
				}()

				dir := t.TempDir()
				rng := xrand.New(uint64(len(prog)) + uint64(len(m.name))<<8)
				var final *core.EngineResult
				for round := 0; round < maxRounds; round++ {
					eng := m.engine(tg)
					eng.N = n
					eng.Seed = 5
					eng.Record = true
					eng.Workers = 2
					// The TTL is short so a resumed round can quickly steal the
					// leases its killed predecessor still holds (production
					// resumes wait out DefaultLeaseTTL the same way, just
					// longer). A live worker losing a lease to the short TTL is
					// harmless: checkpointing is idempotent.
					// LeaseGrace is off: every simulated process shares this
					// test's clock, so the cross-process skew margin would only
					// slow each steal of a killed round's lease by the default
					// grace.
					eng.Service = &core.Service{
						Dir:        dir,
						Resume:     true,
						ShardSize:  shardSize,
						LeaseTTL:   100 * time.Millisecond,
						LeaseGrace: -1,
						WorkerID:   fmt.Sprintf("round-%d", round),
					}
					// Crash rounds: kill the campaign after a random number of
					// experiment starts, and stress the journal itself with a
					// deterministic I/O fault schedule — the retry layer must
					// absorb the injected ENOSPC/EIO/short-write/fsync failures
					// without corrupting the campaign. Late rounds run unharmed
					// (and unfaulted) so the loop terminates even if early
					// kills make no shard progress.
					var restore func()
					if round < killRounds {
						eng.Service.Fault = &core.FaultPlan{Seed: 0xC0 + uint64(round), Permille: 60}
						kill := int64(1 + rng.Intn(3*shardSize))
						var started atomic.Int64
						restore = core.SetExperimentHook(func(idx int) {
							if started.Add(1) == kill {
								eng.Interrupt()
							}
						})
					}
					res, err := eng.Run()
					if restore != nil {
						restore()
					}
					if err == nil {
						final = res
						break
					}
					// Faulted rounds may die of the injected journal faults
					// instead of the interrupt (retry exhaustion is an error,
					// not corruption); a clean round may not fail at all.
					if round >= killRounds {
						t.Fatalf("clean round %d: %v", round, err)
					} else if !errors.Is(err, core.ErrInterrupted) {
						t.Logf("round %d died of injected journal faults: %v", round, err)
					}
					// Sometimes tear the journal's tail off — a crash can lose
					// the end of the last write; it must never lose the
					// campaign.
					if rng.Intn(2) == 0 {
						tearJournalTail(t, dir, rng)
					}
				}
				if final == nil {
					t.Fatal("campaign never completed")
				}
				sameResult(t, "crash/restart differential", baseline, final, false)
			})
		}
	}
	// Non-vacuity: the kill rounds' fault plans must actually have fired
	// — a differential that never saw an injected journal fault proves
	// nothing about the retry layer.
	if core.FaultInjections() == faultsBefore {
		t.Error("no journal faults were injected across the crash rounds")
	}
}

// tearJournalTail truncates up to a few dozen bytes off the campaign
// journal, simulating a torn final write.
func tearJournalTail(t *testing.T, dir string, rng *xrand.Rand) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "campaign-*.mfj"))
	if err != nil || len(paths) == 0 {
		return
	}
	path := paths[0]
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(rng.Intn(40))
	if cut > fi.Size() {
		cut = fi.Size()
	}
	if err := os.Truncate(path, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}
}
