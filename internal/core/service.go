package core

// The campaign service: the configuration that turns an Engine run into
// a durable, resumable, multi-process job. A Service names a journal
// directory (or injects a Journal directly); the engine then executes
// through runJournaled — claiming shards, checkpointing them, folding
// stored results on resume — instead of the in-memory fast path.
//
// Files in the journal directory are content-addressed: the campaign
// journal is campaign-<fingerprint>.mfj where the fingerprint digests
// the target's observable behaviour, the fault model's parameters and
// every engine knob that shapes the recorded result. Resume therefore
// needs no bookkeeping — re-running the same campaign command with
// -resume finds its own journal, and a changed parameter lands in a
// fresh file instead of corrupting an old campaign.
//
// The directory also carries memo-<fingerprint>.mfj: the cross-campaign
// fault-equivalence memo. Its fingerprint deliberately excludes the
// fault model and campaign parameters — a memo entry maps a
// post-injection VM state to the outcome of running the program to
// completion from that state, which depends only on the program's
// behaviour and the execution budgets. Campaigns with different
// techniques, fault models or seeds over the same target share one memo
// file, which is what makes the memo a shared cache rather than a
// per-run optimization.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"multiflip/internal/vm"
	"multiflip/internal/xrand"
)

// Service configures journaled campaign execution. A zero/nil Service —
// or one with neither Journal nor Dir — leaves the engine on its
// in-memory fast path.
type Service struct {
	// Dir is the journal directory: campaign journals and shared memo
	// files are content-addressed inside it.
	Dir string
	// Resume keeps an existing campaign journal and folds its checkpoints
	// instead of re-running them. Without Resume, an existing journal for
	// the same campaign is discarded and the campaign starts fresh.
	Resume bool
	// Journal, when non-nil, overrides Dir for the campaign journal: the
	// engine binds this journal directly (in-process drainers share a
	// MemJournal this way). The caller owns its lifecycle.
	Journal Journal
	// Memo, when non-nil, overrides the Dir-derived memo file.
	// The caller owns its lifecycle.
	Memo *SharedMemo
	// WorkerID identifies this process in shard leases (empty =
	// "hostname:pid").
	WorkerID string
	// ShardSize is the experiments per shard (0 = DefaultShardSize).
	ShardSize int
	// LeaseTTL is the shard lease duration (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// LeaseGrace is the wall-clock skew margin granted to shard leases
	// stamped by other processes before they are considered expired
	// (0 = DefaultLeaseGrace, negative = none). See DefaultLeaseTTL for
	// the cross-process clock contract.
	LeaseGrace time.Duration
	// Sync fsyncs the campaign journal after every checkpoint and meta
	// append, and fsyncs the directory when a journal file is created,
	// so acknowledged checkpoints survive machine-level crashes (power
	// loss). Off by default: without it a crash can lose the unsynced
	// log tail, which deterministic shard re-execution repairs on the
	// next resume at the cost of duplicate work.
	Sync bool
	// Fault, when set, injects a deterministic I/O failure schedule into
	// the campaign journal (FaultFile) — the robustness-test and chaos-CI
	// knob. Nil falls back to the MULTIFLIP_JOURNAL_FAULTS environment
	// plan, if any. Injected faults never change campaign results, only
	// exercise the retry and recovery paths.
	Fault *FaultPlan
}

// active reports whether the service routes campaigns through a journal.
func (s *Service) active() bool {
	return s != nil && (s.Journal != nil || s.Dir != "")
}

// journalFor opens the campaign journal for an engine: the injected
// Journal if set, else the content-addressed file under Dir. The second
// return reports ownership (the engine closes journals it opened).
func (s *Service) journalFor(e *Engine) (Journal, bool, error) {
	if s.Journal != nil {
		return s.Journal, false, nil
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("core: journal dir: %w", err)
	}
	path := filepath.Join(s.Dir, fmt.Sprintf("campaign-%016x.mfj", e.fingerprint()))
	if !s.Resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, false, fmt.Errorf("core: reset journal: %w", err)
		}
	}
	j, err := OpenFileJournalOpts(path, FileJournalOptions{Sync: s.Sync, LeaseGrace: s.LeaseGrace, Fault: s.Fault})
	if err != nil {
		return nil, false, err
	}
	return j, true, nil
}

// memoFor opens the shared memo for an engine: the injected Memo if
// set, else the content-addressed file under Dir. The second return
// reports ownership. A nil table means the caller should fall back to a
// private in-memory memo.
func (s *Service) memoFor(e *Engine) (*SharedMemo, bool, error) {
	if s.Memo != nil {
		return s.Memo, false, nil
	}
	if s.Dir == "" {
		return nil, false, nil
	}
	path := filepath.Join(s.Dir, fmt.Sprintf("memo-%016x.mfj", e.memoFingerprint()))
	m, err := OpenSharedMemo(path)
	if err != nil {
		return nil, false, err
	}
	return m, true, nil
}

// defaultWorkerID identifies this process in shard leases.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// mix folds one value into a fingerprint (SplitMix64 diffusion).
func mix(h, v uint64) uint64 {
	st := h ^ v
	return xrand.SplitMix64(&st)
}

// mixBytes folds a byte string into a fingerprint via FNV-1a.
func mixBytes(h uint64, b []byte) uint64 {
	f := uint64(14695981039346656037)
	for _, c := range b {
		f = (f ^ uint64(c)) * 1099511628211
	}
	return mix(h, f)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// memoFingerprint digests everything a memo entry's validity depends on:
// the target's observable behaviour (name, golden output, dynamic
// profile, candidate-space sizes) plus the execution budgets, the
// exception surface and the outcome classifier (a memoized continuation
// outcome is a classification). Fault model, technique, N and seed are
// deliberately absent — a memoized continuation outcome holds for any
// campaign that reaches the same post-injection state.
//
// The default classifier contributes nothing, so memo files and
// campaign journals written before the classifier seam existed keep
// their content addresses and resume unchanged.
func (e *Engine) memoFingerprint() uint64 {
	t := e.Target
	hangFactor := e.HangFactor
	if hangFactor == 0 {
		hangFactor = DefaultHangFactor
	}
	h := uint64(0x6d756c7469666c69) // "multifli"
	h = mixBytes(h, []byte(t.Name))
	h = mix(h, t.GoldenDyn)
	h = mix(h, t.ReadCands)
	h = mix(h, t.WriteCands)
	h = mixBytes(h, t.Golden)
	h = mix(h, hangFactor)
	h = mix(h, b2u(e.NoAlignTrap))
	if name := e.classifier().Name(); name != "exact" {
		h = mixBytes(h, []byte(name))
	}
	return h
}

// fingerprint is the campaign's content address: the memo fingerprint
// plus the fault model's self-description and every engine knob that
// shapes the recorded result. Two engines agree on it exactly when their
// campaigns are interchangeable experiment-for-experiment.
func (e *Engine) fingerprint() uint64 {
	h := e.memoFingerprint()
	h = mixBytes(h, []byte(e.Model.Describe()))
	h = mix(h, uint64(e.N))
	h = mix(h, e.Seed)
	h = mix(h, b2u(e.Record))
	h = mix(h, b2u(e.NoConverge))
	// The failure policy folds in only when non-default: FailFast
	// campaigns — every journal written before the policy existed — keep
	// their content addresses, while a Quarantine campaign (whose stored
	// checkpoints may carry poisoned experiments) never resumes into a
	// FailFast journal or vice versa.
	if e.FailurePolicy != FailFast {
		h = mixBytes(h, []byte("onfail="+e.FailurePolicy.String()))
	}
	return h
}

// memoRec is the shared memo's on-disk record: one fault-equivalence
// fact, StateKey -> continuation outcome.
type memoRec struct {
	K vm.StateKey `json:"k"`
	V Outcome     `json:"v"`
	P vm.TrapKind `json:"p,omitempty"`
}

// SharedMemo is the cross-campaign fault-equivalence memo: a
// process-wide map mirrored to an append-only checksummed record file
// (same line codec as the journal). Campaigns sharing a memo skip the
// continuation of any post-injection state another campaign — or a
// previous process — already executed. Correctness never depends on the
// file's contents: entries are deterministic facts, a lost entry only
// costs a re-execution, and a torn line is skipped by the loader.
type SharedMemo struct {
	mu    sync.Mutex
	path  string
	m     sync.Map
	fresh []byte
}

// OpenSharedMemo opens (creating on first Flush if needed) a shared memo
// file, loading every intact record. A missing file is an empty memo.
func OpenSharedMemo(path string) (*SharedMemo, error) {
	m := &SharedMemo{path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return m, nil
		}
		return nil, fmt.Errorf("core: open memo: %w", err)
	}
	for _, line := range splitLines(data) {
		payload, ok := decodeLine(line)
		if !ok {
			continue
		}
		var rec memoRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			continue
		}
		m.m.LoadOrStore(rec.K, memoVal{outcome: rec.V, trap: rec.P})
	}
	return m, nil
}

// load implements memoTable.
func (m *SharedMemo) load(k vm.StateKey) (memoVal, bool) {
	v, ok := m.m.Load(k)
	if !ok {
		return memoVal{}, false
	}
	return v.(memoVal), true
}

// store implements memoTable: new entries are queued for the next Flush.
func (m *SharedMemo) store(k vm.StateKey, v memoVal) {
	if _, loaded := m.m.LoadOrStore(k, v); loaded {
		return
	}
	payload, err := json.Marshal(memoRec{K: k, V: v.outcome, P: v.trap})
	if err != nil {
		return
	}
	m.mu.Lock()
	m.fresh = append(m.fresh, encodeLine(payload)...)
	m.mu.Unlock()
}

// Flush appends the entries stored since the last flush to the memo file
// with a single O_APPEND write, so concurrent processes interleave whole
// records.
func (m *SharedMemo) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.fresh) == 0 {
		return nil
	}
	f, err := os.OpenFile(m.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("core: flush memo: %w", err)
	}
	_, werr := f.Write(m.fresh)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("core: flush memo: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("core: flush memo: %w", cerr)
	}
	m.fresh = nil
	return nil
}

// Close flushes pending entries.
func (m *SharedMemo) Close() error { return m.Flush() }
