package core_test

// Supervised-execution tests: the failure-policy property (Quarantine
// with zero failures is bit-identical to FailFast), transient-panic
// degradation, persistent-failure quarantine with repro metadata, the
// FailFast tier-ladder error, and quarantine's round trip through a
// journaled resume.

import (
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"multiflip/internal/core"
)

func TestParseFailurePolicy(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want core.FailurePolicy
	}{
		{"", core.FailFast},
		{"fast", core.FailFast},
		{"failfast", core.FailFast},
		{"quarantine", core.Quarantine},
		{" quarantine ", core.Quarantine},
	} {
		got, err := core.ParseFailurePolicy(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseFailurePolicy(%q) = %v, %v; want %v", tt.in, got, err, tt.want)
		}
	}
	if _, err := core.ParseFailurePolicy("explode"); err == nil {
		t.Error("ParseFailurePolicy accepted an unknown policy")
	}
	if core.FailFast.String() != "fast" || core.Quarantine.String() != "quarantine" {
		t.Error("FailurePolicy.String does not round-trip the flag spelling")
	}
}

// TestPolicyEquivalenceOnHealthyCampaign is the failure-policy property:
// on a campaign with zero failures, Quarantine must be bit-identical to
// FailFast — same tallies, same records, no quarantines — for every
// fault model. The policy may only matter when something actually
// breaks.
func TestPolicyEquivalenceOnHealthyCampaign(t *testing.T) {
	tg := target(t, "CRC32")
	for _, m := range engineModels() {
		t.Run(m.name, func(t *testing.T) {
			run := func(policy core.FailurePolicy) *core.EngineResult {
				eng := m.engine(tg)
				eng.N = 40
				eng.Seed = 17
				eng.Workers = 1
				eng.Record = true
				eng.FailurePolicy = policy
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			fast := run(core.FailFast)
			quar := run(core.Quarantine)
			sameResult(t, "policy equivalence", fast, quar, true)
			if len(fast.Quarantined)+len(quar.Quarantined) != 0 {
				t.Fatalf("healthy campaign quarantined experiments: %d/%d",
					len(fast.Quarantined), len(quar.Quarantined))
			}
			if n := quar.Count(core.OutcomeInternal); n != 0 {
				t.Fatalf("healthy campaign tallied %d Internal outcomes", n)
			}
		})
	}
}

// TestTransientPanicDegrades checks panic isolation plus tiered retry: a
// hook that panics on every experiment's first tier must not abort the
// campaign (even under FailFast) — each experiment retries on the next
// rung, and because the differential suites prove the tiers
// bit-identical, the degraded campaign reproduces the clean one's
// records exactly.
func TestTransientPanicDegrades(t *testing.T) {
	tg := target(t, "CRC32")
	baseline := func() *core.EngineResult {
		eng := registerEngine(tg)
		eng.N = 40
		eng.Seed = 17
		eng.Workers = 1
		eng.Record = true
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	eng := registerEngine(tg)
	eng.N = 40
	eng.Seed = 17
	eng.Workers = 1
	eng.Record = true
	var panics atomic.Int64
	restore := core.SetExperimentHook(func(idx int) {
		panics.Add(1)
		panic("transient: injected first-tier panic")
	})
	defer restore()
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("campaign with transient panics aborted: %v", err)
	}
	if got := panics.Load(); got != 40 {
		t.Fatalf("hook fired %d times, want once per experiment (40)", got)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("transient panics quarantined %d experiments", len(res.Quarantined))
	}
	sameResult(t, "transient-panic degradation", baseline, res, false)
}

// TestQuarantinePersistentFailure drives every fault model over a target
// that fails at every tier: under Quarantine the campaign must complete,
// tally each experiment as Internal, and carry one sorted repro record
// per experiment.
func TestQuarantinePersistentFailure(t *testing.T) {
	const n = 6
	for _, m := range engineModels() {
		t.Run(m.name, func(t *testing.T) {
			eng := m.engine(brokenTarget(t))
			eng.N = n
			eng.Seed = 3
			eng.Workers = 2
			eng.Record = true
			eng.FailurePolicy = core.Quarantine
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("quarantine campaign aborted: %v", err)
			}
			if got := res.Count(core.OutcomeInternal); got != n {
				t.Fatalf("Internal tally = %d, want %d", got, n)
			}
			if len(res.Quarantined) != n {
				t.Fatalf("quarantined %d experiments, want %d", len(res.Quarantined), n)
			}
			for i, rec := range res.Quarantined {
				if rec.Index != i {
					t.Fatalf("record %d has index %d: not sorted by experiment", i, rec.Index)
				}
				if rec.Seed != eng.Seed || rec.Model == "" {
					t.Fatalf("record %d misses repro identity: %+v", i, rec)
				}
				if len(rec.Tiers) != 4 || rec.Tiers[0] != "full" || rec.Tiers[3] != "interp" {
					t.Fatalf("record %d tier ladder = %v", i, rec.Tiers)
				}
				if len(rec.Errs) != len(rec.Tiers) {
					t.Fatalf("record %d has %d errors for %d tiers", i, len(rec.Errs), len(rec.Tiers))
				}
			}
			for i, exp := range res.Experiments {
				if exp.Outcome != core.OutcomeInternal || exp.Bit != -1 {
					t.Fatalf("experiment %d not poisoned: %+v", i, exp)
				}
			}
		})
	}
}

// TestQuarantineRecordsPanicMetadata checks that a quarantined
// experiment whose first tier panicked carries the panic value and a
// stable stack digest.
func TestQuarantineRecordsPanicMetadata(t *testing.T) {
	eng := registerEngine(brokenTarget(t))
	eng.N = 2
	eng.Seed = 3
	eng.Workers = 1
	eng.FailurePolicy = core.Quarantine
	restore := core.SetExperimentHook(func(idx int) {
		panic("boom: persistent hook panic")
	})
	defer restore()
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 2 {
		t.Fatalf("quarantined %d experiments, want 2", len(res.Quarantined))
	}
	for _, rec := range res.Quarantined {
		if !strings.Contains(rec.Panic, "boom") {
			t.Fatalf("record misses the panic value: %+v", rec)
		}
		if len(rec.Stack) != 16 {
			t.Fatalf("record stack digest %q is not 16 hex digits", rec.Stack)
		}
	}
}

// TestFailFastNamesEveryTier checks the FailFast exhaustion error: it
// must name the model, the experiment and the tier ladder walked.
func TestFailFastNamesEveryTier(t *testing.T) {
	eng := registerEngine(brokenTarget(t))
	eng.N = 1
	eng.Seed = 3
	eng.Workers = 1
	_, err := eng.Run()
	if err == nil {
		t.Fatal("fail-fast campaign on a broken target succeeded")
	}
	msg := err.Error()
	for _, want := range []string{"core:", "experiment 0", "failed at every supervision tier", "full -> nocompile -> nofuse -> interp"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error misses %q: %v", want, err)
		}
	}
}

// TestQuarantineJournaledResume checks the durability half: quarantine
// records fold through shard checkpoints, a resumed campaign reloads
// them bit-identically without re-running anything, and the journal
// status reports the poisoned count.
func TestQuarantineJournaledResume(t *testing.T) {
	const n = 10
	dir := t.TempDir()
	run := func(resume bool) *core.EngineResult {
		eng := registerEngine(brokenTarget(t))
		eng.N = n
		eng.Seed = 3
		eng.Workers = 2
		eng.Record = true
		eng.FailurePolicy = core.Quarantine
		eng.Service = &core.Service{Dir: dir, Resume: resume, ShardSize: 3}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run(false)
	if len(first.Quarantined) != n {
		t.Fatalf("quarantined %d experiments, want %d", len(first.Quarantined), n)
	}

	// The resume must fold stored checkpoints only: the hook counts
	// experiment executions and none may happen.
	var reran atomic.Int64
	restore := core.SetExperimentHook(func(idx int) { reran.Add(1) })
	second := run(true)
	restore()
	if got := reran.Load(); got != 0 {
		t.Fatalf("resume re-ran %d experiments of a drained campaign", got)
	}
	sameResult(t, "quarantine journaled resume", first, second, true)

	paths, err := filepath.Glob(filepath.Join(dir, "campaign-*.mfj"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("want one campaign journal, got %v (%v)", paths, err)
	}
	j, err := core.OpenFileJournal(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	status, err := j.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.Quarantined != n {
		t.Fatalf("journal status reports %d quarantined, want %d", status.Quarantined, n)
	}
}

// TestQuarantinePolicyChangesFingerprint pins the content-addressing
// rule: Quarantine campaigns journal under their own fingerprint (their
// tallies can legitimately differ from FailFast ones), while the default
// FailFast keeps the pre-supervision address so existing journals still
// resume.
func TestQuarantinePolicyChangesFingerprint(t *testing.T) {
	tg := target(t, "CRC32")
	fp := func(policy core.FailurePolicy) uint64 {
		eng := registerEngine(tg)
		eng.N = 8
		eng.Seed = 1
		eng.FailurePolicy = policy
		return core.EngineFingerprint(eng)
	}
	if fp(core.FailFast) == fp(core.Quarantine) {
		t.Fatal("failure policies share a campaign fingerprint")
	}
	var unset core.FailurePolicy
	if fp(unset) != fp(core.FailFast) {
		t.Fatal("zero-value policy does not fingerprint as FailFast")
	}
}
