package core

// The experiment engine: the paper's §III-E methodology is one loop —
// sample a fault, run the workload, classify the outcome — repeated N
// times per campaign. This file owns everything fault-class-independent
// about that loop: the worker pool, batched experiment claiming,
// per-worker sharded aggregation, failure collection, golden-run
// fast-forwarding plumbing, convergence-trace wiring, and the
// per-campaign fault-equivalence memo. A FaultModel contributes only the
// fault class itself: what one experiment injects and how its record is
// finalized. Register bit-flip campaigns (RegisterModel, campaign.go),
// memory-word faults (memfault.Model) and stuck-at register faults
// (StuckAtModel, stuckat.go) are all thin models over the one engine.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"multiflip/internal/vm"
	"multiflip/internal/xrand"
)

// DefaultClaimBatch caps the number of experiment indices a worker
// claims per atomic operation. At tens of thousands of experiments per
// second a single shared counter bumped once per experiment is
// measurable contention; claiming chunks amortizes it. Batches only
// affect scheduling — experiment i always draws its random stream from
// (Seed, i) — so results are bit-identical for any batch size. The
// default batch auto-tunes to N and the worker count (autoClaimBatch);
// an explicit ClaimBatch is honoured verbatim.
const DefaultClaimBatch = 16

// maxClaimBatch bounds the auto-tuned claim batch: past a few hundred
// indices per claim the counter is already cold and bigger batches only
// worsen tail imbalance.
const maxClaimBatch = 256

// claimSpread is the number of claim rounds the auto-tuned batch aims to
// give each worker: enough re-claims to rebalance around slow
// experiments, few enough to keep the counter cold.
const claimSpread = 4

// autoClaimBatch scales the claim batch to the run: N/(workers·
// claimSpread), clamped to [1, maxClaimBatch]. Small runs degrade to
// batch 1 so every worker still gets a share of the claim space; huge
// runs stop at maxClaimBatch. Results are identical for any batch — the
// invariance test covers the auto path against explicit batches.
func autoClaimBatch(n, workers int) int {
	b := n / (workers * claimSpread)
	if b < 1 {
		return 1
	}
	if b > maxClaimBatch {
		return maxClaimBatch
	}
	return b
}

// ErrInterrupted reports a campaign stopped by Engine.Interrupt before
// every experiment ran. A journaled campaign keeps its completed shard
// checkpoints; re-running with Service.Resume folds them and continues.
var ErrInterrupted = errors.New("core: campaign interrupted")

// FaultModel plugs one fault class into the Engine. Implementations
// describe a single experiment's injection; the engine owns workers,
// claiming, execution, classification (Engine.Classifier), aggregation,
// convergence and memoization. A model must be safe for concurrent use:
// Plan is called from every worker.
type FaultModel interface {
	// Prefix labels engine errors ("core", "memfault", "stuckat").
	Prefix() string
	// Describe renders the model's full parameterization as a stable
	// string: it feeds the campaign fingerprint (journal content
	// addressing) and is stored in the journal meta record, so two model
	// values must agree on it exactly when they plan identical
	// experiments.
	Describe() string
	// Validate checks the model's parameters against the prepared target
	// and the engine's experiment count before any experiment runs.
	Validate(t *Target, n int) error
	// Plan derives experiment idx's injection from the experiment's
	// private random stream. Any randomness beyond the returned fragment
	// (e.g. bit positions sampled at activation time) continues on the
	// same rng inside the VM, so a model's sampling stays deterministic
	// per (seed, idx) regardless of scheduling.
	Plan(t *Target, idx uint64, rng *xrand.Rand) Injection
	// Record finalizes the experiment record from the raw run result.
	// The engine has already set Cand (from the Injection), Outcome and
	// Trap — including for memo-resolved runs, whose outcome is reused
	// from an equivalent experiment while activation stays their own.
	Record(exp *Experiment, res *vm.Result)
}

// Injection is the vm.Options fragment a FaultModel contributes for one
// experiment: the fault mechanism plus the golden-run snapshot it may
// fast-forward from.
type Injection struct {
	// Cand identifies the first injection in the model's candidate space
	// (recorded as Experiment.Cand).
	Cand uint64
	// Plan is the register-fault plan (nil for memory-fault models).
	Plan *vm.Plan
	// MemFlips are scheduled memory-word corruptions (nil for register
	// models).
	MemFlips []vm.MemFlip
	// Resume is the golden-run snapshot to fast-forward from; nil replays
	// the fault-free prefix from instruction 0.
	Resume *vm.Snapshot
}

// Engine runs N experiments of one FaultModel over one target: the
// model-independent half of every campaign type. Campaign front-ends
// (RunCampaign, memfault.Run, RunStuckAt) validate their specs, wrap
// them in a model, and delegate here.
type Engine struct {
	// Target is the prepared workload.
	Target *Target
	// Model contributes the per-experiment fault mechanism.
	Model FaultModel
	// N is the number of experiments.
	N int
	// Seed makes the run reproducible: experiment i draws its private
	// random stream from (Seed, i) regardless of scheduling.
	Seed uint64
	// HangFactor scales the fault-free dynamic instruction count into the
	// hang budget (0 = DefaultHangFactor).
	HangFactor uint64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// ClaimBatch is the number of experiments a worker claims per atomic
	// operation (0 = DefaultClaimBatch, shrunk for small N so the pool
	// still spreads work). Results are identical for any value; the knob
	// exists for the batch-claim ablation benchmark.
	ClaimBatch int
	// Record keeps per-experiment records in the result.
	Record bool
	// NoFusion disables superinstruction execution in every experiment.
	NoFusion bool
	// NoCompile disables the compiled fast tier in every experiment.
	NoCompile bool
	// NoConverge disables convergence-gated early termination and the
	// fault-equivalence memo.
	NoConverge bool
	// NoLiveness disables static-liveness pruning: every experiment
	// executes even when the model could prove it Benign statically.
	// Recorded outcomes are bit-identical either way (pruning predicts
	// exactly what execution would record), so the knob — like the
	// process-wide MULTIFLIP_NOLIVENESS switch — stays out of the
	// campaign fingerprint.
	NoLiveness bool
	// NoAlignTrap disables the misaligned-access exception (alignment
	// ablation).
	NoAlignTrap bool
	// Classifier judges golden-vs-actual output when classifying
	// outcomes (nil = ExactClassifier, the paper's byte comparison). A
	// non-default classifier folds into the campaign fingerprint, so
	// its journals and memo entries never mix with differently
	// classified ones.
	Classifier Classifier
	// FailurePolicy decides what happens to an experiment that fails or
	// panics at every supervision tier (supervise.go): FailFast (default)
	// aborts the run, Quarantine poisons the experiment and keeps
	// draining. The choice folds into the campaign fingerprint only when
	// non-default, so existing journals keep their content addresses.
	FailurePolicy FailurePolicy
	// Service, when set (and naming a journal or directory), turns the
	// run into a durable campaign: experiments execute in journal shards
	// with per-shard checkpoints, interrupted runs resume from the last
	// checkpoint, and concurrent processes drain the same campaign via
	// lease stealing.
	Service *Service

	// interrupted is set by Interrupt: workers stop claiming work and the
	// run returns ErrInterrupted. Journaled campaigns keep their
	// checkpoints.
	interrupted atomic.Bool
}

// Interrupt asks a running campaign to stop at the next experiment
// boundary. The in-process analogue of SIGKILL for a journaled campaign:
// completed shards stay checkpointed, the in-flight shard is abandoned
// un-checkpointed, and Run returns ErrInterrupted. Safe to call from any
// goroutine, including an experimentHook.
func (e *Engine) Interrupt() { e.interrupted.Store(true) }

// EngineResult aggregates an engine run. Campaign result types embed it,
// so the outcome statistics (via Tally), histograms and early-exit
// counters live in one place.
type EngineResult struct {
	// Tally holds the per-outcome counts and derives the percentage and
	// confidence-interval statistics (N, Pct, SDCPct, DetectionPct, CI95,
	// Resilience).
	Tally
	// CrashActivated histograms the number of activated errors of
	// experiments that ended in a hardware exception, capped at
	// ActivatedCap (Fig 3's distribution).
	CrashActivated [ActivatedCap + 1]int
	// TrapCounts indexes OutcomeException experiments by vm.TrapKind,
	// breaking the paper's exception category into segmentation faults,
	// misaligned accesses, arithmetic errors, aborts and stack overflows.
	TrapCounts [NumTrapKinds]int
	// ActivatedTotal sums activated errors over all experiments.
	ActivatedTotal int
	// Converged counts experiments the VM terminated early because their
	// injected state reconverged with the golden run. Each experiment
	// converges on its own, so the count is deterministic up to memo
	// interception: an experiment that diverges, is memoized, and later
	// reconverges counts here, while a fault-equivalent twin counts
	// under MemoHits instead — unless scheduling let it run before the
	// memo store, in which case it converges on its own too.
	Converged int
	// MemoHits counts experiments resolved from the fault-equivalence
	// memo: their post-injection state matched an already-executed
	// experiment's, so the recorded outcome was reused. The count depends
	// on worker scheduling (which equivalent experiment runs first);
	// outcomes never do.
	MemoHits int
	// StaticPruned counts experiments classified Benign by the static
	// liveness tier without executing: every bit of their sampled flip
	// mask was provably dead at the injection point. Deterministic per
	// (target, model, seed) — pruning happens before scheduling can
	// intervene — and zero under NoLiveness.
	StaticPruned int
	// Experiments holds per-experiment records when Record is set.
	Experiments []Experiment
	// Quarantined holds the repro records of experiments poisoned under
	// the Quarantine failure policy, sorted by experiment index. Their
	// outcomes are tallied under OutcomeInternal; an empty slice is the
	// healthy case.
	Quarantined []QuarantineRecord
}

// memoVal is the fault-equivalence memo's payload: the outcome of the
// continuation from a post-injection state. Activation counts and first
// locations stay per-experiment — they are fixed before the memo key is
// computed.
type memoVal struct {
	outcome Outcome
	trap    vm.TrapKind
}

// expStats reports how an experiment terminated, for the engine's
// early-exit accounting.
type expStats struct {
	converged    bool
	memoHit      bool
	staticPruned bool
}

// memoTable abstracts the fault-equivalence memo store so the engine
// runs against either a per-run private map (mapMemo) or the
// cross-campaign SharedMemo.
type memoTable interface {
	load(k vm.StateKey) (memoVal, bool)
	store(k vm.StateKey, v memoVal)
}

// mapMemo is the per-run memo: a plain sync.Map scoped to one campaign.
type mapMemo struct{ m sync.Map }

func (mm *mapMemo) load(k vm.StateKey) (memoVal, bool) {
	v, ok := mm.m.Load(k)
	if !ok {
		return memoVal{}, false
	}
	return v.(memoVal), true
}

func (mm *mapMemo) store(k vm.StateKey, v memoVal) { mm.m.Store(k, v) }

// engineShard is one worker's private aggregate. Workers never touch a
// shared tally or histogram mid-run; shards merge once after the pool
// drains, so the hot loop performs no cross-core writes beyond the
// batched claim counter. The aggregate itself is a ShardResult — the
// same associative unit journaled campaigns checkpoint per shard.
type engineShard struct {
	ShardResult
	// Pad past a cache line so adjacent shards in the slice never share
	// one (the struct tail and the next shard's head are both hot).
	_ [64]byte
}

// experimentHook, when non-nil, is called with each claimed experiment
// index before it runs. Test seam: the error-propagation tests use it to
// hold workers at a barrier so several fail concurrently.
var experimentHook func(idx int)

// Run executes the experiments. They run in parallel but the result is
// identical for any worker count and claim batch: every experiment
// derives its private random stream from (Seed, experiment index). With
// an active Service the run executes as a journaled campaign
// (runJournaled); otherwise it stays on the in-memory fast path.
func (e *Engine) Run() (*EngineResult, error) {
	if e.Target == nil {
		return nil, fmt.Errorf("core: engine needs a target")
	}
	if e.Model == nil {
		return nil, fmt.Errorf("core: engine needs a fault model")
	}
	if e.N <= 0 {
		return nil, fmt.Errorf("core: engine needs N > 0")
	}
	if err := e.Model.Validate(e.Target, e.N); err != nil {
		return nil, err
	}
	e.interrupted.Store(false)
	if e.Service.active() {
		return e.runJournaled()
	}
	n := e.N
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	batch := e.ClaimBatch
	if batch <= 0 {
		// Auto-tune to the run; an explicit ClaimBatch is honoured
		// verbatim (the ablation benchmark depends on that).
		batch = autoClaimBatch(n, workers)
	}

	// Convergence-gated early termination plus the fault-equivalence
	// memo: the VM compares the post-injection state against the golden
	// trace (terminating with the golden outcome on reconvergence) and
	// hands back its state key at the first divergent boundary, so
	// experiments that collapse to an already-seen injected state reuse
	// the recorded outcome instead of re-executing.
	trace := e.Target.Trace
	if e.NoConverge {
		trace = nil
	}
	var memo memoTable = &mapMemo{}
	if e.Service != nil && e.Service.Memo != nil {
		memo = e.Service.Memo
	}

	var exps []Experiment
	if e.Record {
		exps = make([]Experiment, n)
	}
	shards := make([]engineShard, workers)
	ladder := e.ladder()
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
		errs   []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sh *engineShard) {
			defer wg.Done()
			for {
				// Batched claiming: one atomic op hands this worker a chunk
				// of indices instead of a single experiment.
				lo := int(next.Add(int64(batch))) - batch
				if lo >= n {
					return
				}
				hi := lo + batch
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					// The failed check gates every experiment: once any
					// worker errors, the whole run's result is discarded, so
					// its peers must stop instead of finishing the grid for
					// nothing.
					if failed.Load() || e.interrupted.Load() {
						return
					}
					exp, st, quar, err := e.runSupervised(uint64(i), memo, trace, ladder)
					if err != nil {
						// Every worker's failure is collected: a grid-wide
						// abort with several concurrent causes surfaces all
						// of them (errors.Join), not just whichever lost the
						// race.
						errMu.Lock()
						errs = append(errs, err)
						errMu.Unlock()
						failed.Store(true)
						return
					}
					if quar != nil {
						sh.Quarantined = append(sh.Quarantined, *quar)
					}
					sh.Add(&exp, st.converged, st.memoHit, st.staticPruned)
					if exps != nil {
						exps[i] = exp
					}
				}
			}
		}(&shards[w])
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if e.interrupted.Load() {
		return nil, ErrInterrupted
	}

	res := &EngineResult{Experiments: exps}
	for i := range shards {
		res.Fold(&shards[i].ShardResult, 0)
	}
	// Per-worker shards accumulate quarantine records in claim order;
	// sorting makes the folded result scheduling-independent.
	sortQuarantined(res.Quarantined)
	return res, nil
}

// runJournaled executes the campaign through its Service: experiments
// run in journal shards, each checkpointed on completion, with already
// checkpointed shards folded from the journal instead of re-run. Worker
// goroutines claim shards through the journal's lease protocol, so any
// number of cooperating processes can drain one campaign: leases
// minimize duplicate work, determinism makes the duplicates that do
// happen (after a lease steal) harmless, and idempotent checkpointing
// keeps every shard counted exactly once.
func (e *Engine) runJournaled() (*EngineResult, error) {
	svc := e.Service
	n := e.N
	shardSize := svc.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	ttl := svc.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	workerID := svc.WorkerID
	if workerID == "" {
		workerID = defaultWorkerID()
	}

	j, ownJournal, err := svc.journalFor(e)
	if err != nil {
		return nil, err
	}
	if ownJournal {
		defer j.Close()
	}

	trace := e.Target.Trace
	if e.NoConverge {
		trace = nil
	}
	var memo memoTable = &mapMemo{}
	var ownMemo *SharedMemo
	if trace != nil {
		shared, owned, err := svc.memoFor(e)
		if err != nil {
			return nil, err
		}
		if shared != nil {
			memo = shared
			if owned {
				ownMemo = shared
			}
		}
	}

	meta := CampaignMeta{
		Fingerprint: e.fingerprint(),
		Model:       e.Model.Describe(),
		N:           n,
		ShardSize:   shardSize,
		Seed:        e.Seed,
		Record:      e.Record,
	}
	if err := j.Bind(meta); err != nil {
		return nil, err
	}
	numShards := meta.NumShards()

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}

	ladder := e.ladder()
	var (
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
		errs   []error
	)
	fail := func(err error) {
		errMu.Lock()
		errs = append(errs, err)
		errMu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || e.interrupted.Load() {
					return
				}
				shard, state, err := j.Claim(workerID, ttl)
				if err != nil {
					fail(err)
					return
				}
				switch state {
				case ClaimDrained:
					return
				case ClaimWait:
					// Peers hold every remaining shard; wait for a
					// completion or an expired lease to steal.
					time.Sleep(time.Millisecond)
					continue
				}
				lo, hi := meta.Span(shard)
				sr := ShardResult{Shard: shard}
				if e.Record {
					sr.Experiments = make([]Experiment, 0, hi-lo)
				}
				// Lease heartbeat: once ~TTL/3 has elapsed (jittered per
				// shard and worker so co-renewing workers don't beat in
				// sync), renew at the next experiment boundary. Slow shards
				// — degraded-tier retries, -nocompile ablations, megapixel —
				// then outlive the TTL without being stolen. Renewal is
				// advisory like the lease itself: a failed renew means a
				// peer may steal and duplicate the shard, which determinism
				// plus idempotent checkpointing already make harmless.
				leaseAt := time.Now()
				renewAfter := ttl/3 + time.Duration(mixBytes(uint64(shard)+1, []byte(workerID))%uint64(ttl/6+1))
				for i := lo; i < hi; i++ {
					// An interrupt (or a peer's failure) abandons the shard
					// without a checkpoint: a partial shard is never
					// journaled, so resume re-runs it from its start.
					if failed.Load() || e.interrupted.Load() {
						return
					}
					if time.Since(leaseAt) >= renewAfter {
						_ = j.Renew(workerID, shard, ttl)
						leaseAt = time.Now()
					}
					exp, st, quar, err := e.runSupervised(uint64(i), memo, trace, ladder)
					if err != nil {
						fail(err)
						return
					}
					if quar != nil {
						sr.Quarantined = append(sr.Quarantined, *quar)
					}
					sr.Add(&exp, st.converged, st.memoHit, st.staticPruned)
					if e.Record {
						sr.Experiments = append(sr.Experiments, exp)
					}
				}
				if err := j.Checkpoint(sr); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ownMemo != nil {
		if err := ownMemo.Close(); err != nil && len(errs) == 0 {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if e.interrupted.Load() {
		return nil, ErrInterrupted
	}

	// Every worker saw ClaimDrained, so each shard has its accepted
	// checkpoint — ours or a peer's. Fold them: shard merging is
	// associative and order-independent, so the result is identical to an
	// uninterrupted single-process run.
	results, err := j.Results()
	if err != nil {
		return nil, err
	}
	if len(results) != numShards {
		return nil, fmt.Errorf("%s: journal drained with %d/%d shards checkpointed", e.Model.Prefix(), len(results), numShards)
	}
	res := &EngineResult{}
	if e.Record {
		res.Experiments = make([]Experiment, n)
	}
	for _, sr := range results {
		res.Fold(sr, sr.Shard*shardSize)
	}
	// Checkpoints fold in journal order; sort so the result matches the
	// in-memory path bit for bit.
	sortQuarantined(res.Quarantined)
	return res, nil
}

// classifier returns the engine's classifier with the default applied.
func (e *Engine) classifier() Classifier {
	if e.Classifier == nil {
		return ExactClassifier{}
	}
	return e.Classifier
}

// runOne performs experiment idx at one supervision tier. Callers go
// through runSupervised (supervise.go), which panic-isolates each
// attempt and degrades the tier on failure.
func (e *Engine) runOne(idx uint64, memo memoTable, trace *vm.GoldenTrace, ti tier) (Experiment, expStats, error) {
	t := e.Target
	rng := xrand.ForExperiment(e.Seed, idx)
	inj := e.Model.Plan(t, idx, rng)

	// Static pruning tier: a model that can prove this plan's outcome
	// from the liveness oracle records it without running the VM. The
	// prediction is exact — same Experiment fields an executed run would
	// produce — so only the StaticPruned counter distinguishes the paths.
	if !e.NoLiveness {
		if sp, ok := e.Model.(StaticPredictor); ok {
			if exp, ok := sp.PredictStatic(t, &inj); ok {
				return exp, expStats{staticPruned: true}, nil
			}
		}
	}

	hangFactor := e.HangFactor
	if hangFactor == 0 {
		hangFactor = DefaultHangFactor
	}
	var (
		hit   memoVal
		hitOK bool
	)
	var memoCheck func(vm.StateKey) bool
	if trace != nil {
		memoCheck = func(k vm.StateKey) bool {
			if v, ok := memo.load(k); ok {
				hit = v
				hitOK = true
				return true
			}
			return false
		}
	}
	res, err := vm.Run(t.Prog, vm.Options{
		MaxDyn:      hangFactor*t.GoldenDyn + 1000,
		MaxOutput:   4*len(t.Golden) + 4096,
		NoAlignTrap: e.NoAlignTrap,
		Plan:        inj.Plan,
		MemFlips:    inj.MemFlips,
		Resume:      inj.Resume,
		NoFuse:      ti.noFuse,
		NoCompile:   ti.noCompile,
		Trace:       trace,
		MemoCheck:   memoCheck,
	})
	if err != nil {
		return Experiment{}, expStats{}, fmt.Errorf("%s: %s experiment %d: %w", e.Model.Prefix(), t.Name, idx, err)
	}
	exp := Experiment{Cand: inj.Cand}
	var st expStats
	if res.Stop == vm.StopMemo && hitOK {
		// The first injection and activation count are this experiment's
		// own (fixed before the key was computed); only the continuation's
		// outcome is reused.
		exp.Outcome, exp.Trap = hit.outcome, hit.trap
		st.memoHit = true
	} else {
		if res.Stop == vm.StopTrap {
			exp.Trap = res.Trap
		}
		exp.Outcome = e.classifier().Classify(t.Golden, res)
		st.converged = res.Converged
		if res.PostKeyed {
			memo.store(res.PostKey, memoVal{outcome: exp.Outcome, trap: exp.Trap})
		}
	}
	e.Model.Record(&exp, res)
	return exp, st, nil
}
