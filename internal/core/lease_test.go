package core

// Lease-clock semantics (internal test: the seams are the unexported
// journalState and its clock). The TTL contract — documented on
// DefaultLeaseTTL — distinguishes two kinds of lease expiry:
//
//   - stamped by this process: a time.Time carrying Go's monotonic clock,
//     immune to wall-clock steps, compared exactly;
//   - absorbed from a journal record: a wall-clock UnixMilli written by
//     some other process, compared with a configurable skew grace.
//
// These tests pin the boundary conditions of both, plus the own-echo
// suppression that keeps re-reading our own appended lease records from
// downgrading a monotonic expiry to a wall-clock one.

import (
	"testing"
	"time"
)

func leaseState(t *testing.T, grace time.Duration) *journalState {
	t.Helper()
	st := &journalState{now: time.Now, grace: grace}
	if err := st.init(CampaignMeta{Model: "t", N: 8, ShardSize: 4}); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLeaseLocalExpiresExactly(t *testing.T) {
	st := leaseState(t, 0)
	t0 := time.Now()
	exp := t0.Add(100 * time.Millisecond)
	st.applyLease(0, "w1", exp, true)
	sh := &st.shards[0]
	if !st.leaseLive(sh, t0) {
		t.Fatal("fresh local lease not live")
	}
	if !st.leaseLive(sh, exp.Add(-time.Millisecond)) {
		t.Fatal("local lease dead before its expiry")
	}
	// Local leases get no grace, even with the default margin in force:
	// at and after exp the shard is stealable.
	if st.leaseLive(sh, exp) {
		t.Fatal("local lease live at its exact expiry")
	}
	if st.leaseLive(sh, exp.Add(DefaultLeaseGrace/2)) {
		t.Fatal("local lease granted the absorbed-lease grace")
	}
}

func TestLeaseAbsorbedGetsGrace(t *testing.T) {
	t0 := time.Now()
	exp := t0.Add(100 * time.Millisecond)
	for _, tt := range []struct {
		name  string
		grace time.Duration
		want  time.Duration // effective margin past exp
	}{
		{"default", 0, DefaultLeaseGrace},
		{"custom", 500 * time.Millisecond, 500 * time.Millisecond},
		{"disabled", -1, 0},
	} {
		t.Run(tt.name, func(t *testing.T) {
			st := leaseState(t, tt.grace)
			st.applyLease(1, "w2", exp, false)
			sh := &st.shards[1]
			if !st.leaseLive(sh, exp.Add(tt.want-time.Millisecond)) {
				t.Fatal("absorbed lease dead inside its grace margin")
			}
			if st.leaseLive(sh, exp.Add(tt.want)) {
				t.Fatal("absorbed lease live past its grace margin")
			}
		})
	}
}

func TestLeaseOwnEchoSuppression(t *testing.T) {
	st := leaseState(t, 0)
	exp := time.Now().Add(DefaultLeaseTTL)
	st.applyLease(0, "w1", exp, true)
	// Absorbing our own appended record — same worker, same millisecond,
	// but a wall-clock round trip through UnixMilli — must not downgrade
	// the monotonic expiry.
	st.applyLease(0, "w1", time.UnixMilli(exp.UnixMilli()), false)
	if !st.shards[0].leaseLocal {
		t.Fatal("own lease echo downgraded a local lease to wall-clock")
	}
	// A different worker's record is a real steal and must replace it.
	st.applyLease(0, "w2", time.UnixMilli(exp.UnixMilli()), false)
	if st.shards[0].leaseLocal || st.shards[0].leaseWorker != "w2" {
		t.Fatal("another worker's lease record did not replace the local lease")
	}
	// As must our own record with a different (renewed) expiry.
	st2 := leaseState(t, 0)
	st2.applyLease(0, "w1", exp, true)
	st2.applyLease(0, "w1", time.UnixMilli(exp.Add(time.Second).UnixMilli()), false)
	if st2.shards[0].leaseLocal {
		t.Fatal("a renewed lease record did not supersede the stale local lease")
	}
}

func TestLeaseIgnoredOnCheckpointedShard(t *testing.T) {
	st := leaseState(t, 0)
	st.shards[1].res = &ShardResult{Shard: 1}
	st.applyLease(1, "w9", time.Now().Add(time.Hour), true)
	if st.shards[1].leaseWorker != "" {
		t.Fatal("lease recorded on a checkpointed shard")
	}
	if st.leaseLive(&st.shards[1], time.Now()) {
		t.Fatal("checkpointed shard reports a live lease")
	}
}

// TestRenewableGuards pins every condition under which a heartbeat must
// be dropped: a renewal may only extend a live lease the same worker
// still holds on an incomplete, in-range shard. Anything else would
// stomp a thief's claim or waste a record.
func TestRenewableGuards(t *testing.T) {
	now := time.Now()
	st := leaseState(t, 0)
	if st.renewable(0, "w1") {
		t.Fatal("renewable with no lease at all")
	}
	st.applyLease(0, "w1", now.Add(time.Hour), true)
	if !st.renewable(0, "w1") {
		t.Fatal("own live lease not renewable")
	}
	if st.renewable(0, "w2") {
		t.Fatal("another worker's lease renewable")
	}
	if st.renewable(-1, "w1") || st.renewable(len(st.shards), "w1") {
		t.Fatal("out-of-range shard renewable")
	}

	// Expired lease: the shard is up for stealing; extending it now
	// would race the thief.
	st2 := leaseState(t, 0)
	st2.applyLease(0, "w1", now.Add(-time.Second), true)
	if st2.renewable(0, "w1") {
		t.Fatal("expired lease renewable")
	}

	// Checkpointed shard: nothing left to protect.
	st3 := leaseState(t, 0)
	st3.applyLease(0, "w1", now.Add(time.Hour), true)
	st3.shards[0].res = &ShardResult{Shard: 0}
	if st3.renewable(0, "w1") {
		t.Fatal("checkpointed shard renewable")
	}

	// Stolen lease: a peer's absorbed record replaced ours mid-shard;
	// our next heartbeat must drop.
	st4 := leaseState(t, 0)
	st4.applyLease(0, "w1", now.Add(time.Hour), true)
	st4.applyLease(0, "thief", now.Add(2*time.Hour), false)
	if st4.renewable(0, "w1") {
		t.Fatal("stolen lease still renewable by the original holder")
	}
	if !st4.renewable(0, "thief") {
		t.Fatal("thief cannot renew the lease it now holds")
	}
}

// TestMemJournalRenewExtendsLease drives the heartbeat protocol on a
// fake clock: a renewal pushes the expiry forward so the shard survives
// past the original TTL, a missed renewal lets a peer steal it, and a
// stale holder's renewal after the steal is a silent no-op.
func TestMemJournalRenewExtendsLease(t *testing.T) {
	base := time.Now()
	cur := base
	j := &MemJournal{st: journalState{now: func() time.Time { return cur }}}
	if err := j.Bind(CampaignMeta{Model: "t", N: 8, ShardSize: 4}); err != nil {
		t.Fatal(err)
	}
	const ttl = time.Second

	shard, state, err := j.Claim("w1", ttl)
	if err != nil || state != ClaimOK || shard != 0 {
		t.Fatalf("claim: %d, %v, %v", shard, state, err)
	}

	// Renew at 900ms: the lease now runs to 1.9s.
	cur = base.Add(900 * time.Millisecond)
	if err := j.Renew("w1", 0, ttl); err != nil {
		t.Fatal(err)
	}

	// At 1.5s — past the original expiry — shard 0 must NOT be
	// stealable; a peer gets the other shard instead.
	cur = base.Add(1500 * time.Millisecond)
	shard, state, err = j.Claim("w2", ttl)
	if err != nil || state != ClaimOK {
		t.Fatalf("peer claim: %v, %v", state, err)
	}
	if shard == 0 {
		t.Fatal("renewed lease was stolen before its extended expiry")
	}

	// At 2s the renewed lease (1.9s) lapsed without another heartbeat:
	// now the steal is legitimate.
	cur = base.Add(2 * time.Second)
	shard, state, err = j.Claim("w3", ttl)
	if err != nil || state != ClaimOK || shard != 0 {
		t.Fatalf("steal after lapsed renewal: %d, %v, %v", shard, state, err)
	}

	// The original holder's late heartbeat must not stomp the thief.
	if err := j.Renew("w1", 0, time.Hour); err != nil {
		t.Fatal(err)
	}
	status, err := j.Status()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range status.Leases {
		if l.Shard == 0 && l.Worker != "w3" {
			t.Fatalf("shard 0 leased by %q, want the thief w3", l.Worker)
		}
	}
}
