package core

// Lease-clock semantics (internal test: the seams are the unexported
// journalState and its clock). The TTL contract — documented on
// DefaultLeaseTTL — distinguishes two kinds of lease expiry:
//
//   - stamped by this process: a time.Time carrying Go's monotonic clock,
//     immune to wall-clock steps, compared exactly;
//   - absorbed from a journal record: a wall-clock UnixMilli written by
//     some other process, compared with a configurable skew grace.
//
// These tests pin the boundary conditions of both, plus the own-echo
// suppression that keeps re-reading our own appended lease records from
// downgrading a monotonic expiry to a wall-clock one.

import (
	"testing"
	"time"
)

func leaseState(t *testing.T, grace time.Duration) *journalState {
	t.Helper()
	st := &journalState{now: time.Now, grace: grace}
	if err := st.init(CampaignMeta{Model: "t", N: 8, ShardSize: 4}); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLeaseLocalExpiresExactly(t *testing.T) {
	st := leaseState(t, 0)
	t0 := time.Now()
	exp := t0.Add(100 * time.Millisecond)
	st.applyLease(0, "w1", exp, true)
	sh := &st.shards[0]
	if !st.leaseLive(sh, t0) {
		t.Fatal("fresh local lease not live")
	}
	if !st.leaseLive(sh, exp.Add(-time.Millisecond)) {
		t.Fatal("local lease dead before its expiry")
	}
	// Local leases get no grace, even with the default margin in force:
	// at and after exp the shard is stealable.
	if st.leaseLive(sh, exp) {
		t.Fatal("local lease live at its exact expiry")
	}
	if st.leaseLive(sh, exp.Add(DefaultLeaseGrace/2)) {
		t.Fatal("local lease granted the absorbed-lease grace")
	}
}

func TestLeaseAbsorbedGetsGrace(t *testing.T) {
	t0 := time.Now()
	exp := t0.Add(100 * time.Millisecond)
	for _, tt := range []struct {
		name  string
		grace time.Duration
		want  time.Duration // effective margin past exp
	}{
		{"default", 0, DefaultLeaseGrace},
		{"custom", 500 * time.Millisecond, 500 * time.Millisecond},
		{"disabled", -1, 0},
	} {
		t.Run(tt.name, func(t *testing.T) {
			st := leaseState(t, tt.grace)
			st.applyLease(1, "w2", exp, false)
			sh := &st.shards[1]
			if !st.leaseLive(sh, exp.Add(tt.want-time.Millisecond)) {
				t.Fatal("absorbed lease dead inside its grace margin")
			}
			if st.leaseLive(sh, exp.Add(tt.want)) {
				t.Fatal("absorbed lease live past its grace margin")
			}
		})
	}
}

func TestLeaseOwnEchoSuppression(t *testing.T) {
	st := leaseState(t, 0)
	exp := time.Now().Add(DefaultLeaseTTL)
	st.applyLease(0, "w1", exp, true)
	// Absorbing our own appended record — same worker, same millisecond,
	// but a wall-clock round trip through UnixMilli — must not downgrade
	// the monotonic expiry.
	st.applyLease(0, "w1", time.UnixMilli(exp.UnixMilli()), false)
	if !st.shards[0].leaseLocal {
		t.Fatal("own lease echo downgraded a local lease to wall-clock")
	}
	// A different worker's record is a real steal and must replace it.
	st.applyLease(0, "w2", time.UnixMilli(exp.UnixMilli()), false)
	if st.shards[0].leaseLocal || st.shards[0].leaseWorker != "w2" {
		t.Fatal("another worker's lease record did not replace the local lease")
	}
	// As must our own record with a different (renewed) expiry.
	st2 := leaseState(t, 0)
	st2.applyLease(0, "w1", exp, true)
	st2.applyLease(0, "w1", time.UnixMilli(exp.Add(time.Second).UnixMilli()), false)
	if st2.shards[0].leaseLocal {
		t.Fatal("a renewed lease record did not supersede the stale local lease")
	}
}

func TestLeaseIgnoredOnCheckpointedShard(t *testing.T) {
	st := leaseState(t, 0)
	st.shards[1].res = &ShardResult{Shard: 1}
	st.applyLease(1, "w9", time.Now().Add(time.Hour), true)
	if st.shards[1].leaseWorker != "" {
		t.Fatal("lease recorded on a checkpointed shard")
	}
	if st.leaseLive(&st.shards[1], time.Now()) {
		t.Fatal("checkpointed shard reports a live lease")
	}
}
