package core_test

// Journal wire-format compatibility. The dimensional tally added a
// "dims" key to every checkpoint's tally; journals written before it
// existed carry flat Counts only. The pinned fixture in testdata is
// such an old-format journal (two checkpointed shards, no "dims"
// anywhere): it must load cleanly, keep its flat totals authoritative,
// and fold into an EngineResult — with an empty dimensional breakdown,
// never an error.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multiflip/internal/core"
)

// copyFixture copies the pinned old-format journal into a temp dir
// (opening a journal may append to it; the fixture must stay pristine).
func copyFixture(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "oldformat-campaign.mfj"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "dims") {
		t.Fatal("fixture is not old-format: it mentions dims")
	}
	if strings.Contains(string(data), "spruned") {
		t.Fatal("fixture is not old-format: it mentions spruned")
	}
	p := filepath.Join(t.TempDir(), "oldformat-campaign.mfj")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOldFormatJournalLoads(t *testing.T) {
	j, err := core.OpenFileJournal(copyFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	meta := j.Meta()
	if meta.N != 10 || meta.ShardSize != 5 || meta.Seed != 7 {
		t.Fatalf("meta = %+v", meta)
	}
	st, err := j.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 || st.Pending != 0 || st.ExperimentsDone != 10 {
		t.Fatalf("status = %+v", st)
	}
	// The flat totals survive: [_, 5 benign, 1 exception, 1 hang, 0
	// no-output, 3 SDC] merged over both shards.
	want := [core.NumOutcomes + 1]int{0, 5, 1, 1, 0, 3}
	if st.Tally.Counts != want {
		t.Fatalf("tally counts = %v, want %v", st.Tally.Counts, want)
	}
	if st.Tally.N() != 10 {
		t.Fatalf("tally N = %d, want 10", st.Tally.N())
	}
	// No record carried a breakdown, so the dimensional half is empty —
	// not poisoned, not invented.
	if st.Tally.Dims.N() != 0 {
		t.Fatalf("dims N = %d, want 0 for an old-format journal", st.Tally.Dims.N())
	}

	// Folding the loaded checkpoints must reproduce the same totals.
	results, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d shard results, want 2", len(results))
	}
	var er core.EngineResult
	for _, sr := range results {
		lo, _ := meta.Span(sr.Shard)
		er.Fold(sr, lo)
	}
	if er.Tally.Counts != want || er.Tally.Dims.N() != 0 {
		t.Fatalf("folded tally = %+v", er.Tally)
	}
	if er.ActivatedTotal != 10 || er.Converged != 1 {
		t.Fatalf("folded counters: act=%d conv=%d", er.ActivatedTotal, er.Converged)
	}
	// Pre-liveness journals predate the StaticPruned counter: it must
	// load as zero, never error.
	if st.StaticPruned != 0 || er.StaticPruned != 0 {
		t.Fatalf("old-format journal invented StaticPruned: status=%d folded=%d", st.StaticPruned, er.StaticPruned)
	}
}

// TestDimsJournalRoundTrip is the forward half of the compatibility
// story: checkpoints written today carry the dimensional breakdown
// through the journal bit-for-bit.
func TestDimsJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.mfj")
	j, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	meta := core.CampaignMeta{Fingerprint: 42, Model: "roundtrip", N: 4, ShardSize: 4, Seed: 1}
	if err := j.Bind(meta); err != nil {
		t.Fatal(err)
	}
	sr := core.ShardResult{Shard: 0}
	exps := []core.Experiment{
		{Bit: 3, Dir: core.Dir0to1, Outcome: core.OutcomeBenign, Activated: 1},
		{Bit: 3, Dir: core.Dir1to0, Outcome: core.OutcomeSDC, Activated: 1},
		{Bit: 63, Dir: core.Dir0to1, Outcome: core.OutcomeException, Activated: 1},
		{Bit: -1, Dir: core.DirUnknown, Outcome: core.OutcomeSDC, Activated: 2},
	}
	for i := range exps {
		sr.Add(&exps[i], false, false, i == 0)
	}
	if err := j.Checkpoint(sr); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	results, err := j2.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("%d shard results, want 1", len(results))
	}
	if got := results[0].Tally; got != sr.Tally {
		t.Fatalf("tally did not round-trip:\n got %+v\nwant %+v", got, sr.Tally)
	}
	if results[0].StaticPruned != 1 {
		t.Fatalf("StaticPruned did not round-trip: got %d, want 1", results[0].StaticPruned)
	}
	d := &results[0].Tally.Dims
	if d.Count(core.OutcomeBenign, 3, core.Dir0to1) != 1 ||
		d.Count(core.OutcomeSDC, 3, core.Dir1to0) != 1 ||
		d.Count(core.OutcomeException, 63, core.Dir0to1) != 1 ||
		d.Count(core.OutcomeSDC, -1, core.DirUnknown) != 1 {
		t.Fatalf("dimensional cells did not round-trip: %+v", d)
	}
}
