package core_test

// Campaign-service tests: the shard-merge algebra, the lease-steal
// protocol, resume from a file journal, and the mid-flight status
// snapshot. The crash/restart differential harness lives in
// crash_restart_test.go.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multiflip/internal/core"
	"multiflip/internal/xrand"
)

// baselineRun executes a plain (unjournaled) recorded register campaign
// and returns its result: the reference every journaled variant must
// reproduce bit-identically.
func baselineRun(t *testing.T, tg *core.Target, n int, noConverge bool) *core.EngineResult {
	t.Helper()
	eng := registerEngine(tg)
	eng.N = n
	eng.Seed = 11
	eng.Record = true
	eng.NoConverge = noConverge
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// registerEngine builds a multi-bit register-model engine over tg (the
// model mix exercises every outcome class on the test programs).
func registerEngine(tg *core.Target) *core.Engine {
	return &core.Engine{Target: tg, Model: &core.RegisterModel{Spec: &core.CampaignSpec{
		Target:    tg,
		Technique: core.InjectOnRead,
		Config:    core.Config{MaxMBF: 3, Win: core.Win(10)},
	}}}
}

// sameResult fails the test unless two engine results agree on every
// deterministic field (Converged/MemoHits are compared too when both
// runs had early exits disabled — callers pass wantEarly=false to skip
// them for runs where scheduling may move the split).
func sameResult(t *testing.T, label string, want, got *core.EngineResult, wantEarly bool) {
	t.Helper()
	if want.Counts != got.Counts {
		t.Errorf("%s: tallies differ: %v vs %v", label, want.Counts, got.Counts)
	}
	if want.Tally.Dims != got.Tally.Dims {
		t.Errorf("%s: dimensional tallies differ", label)
	}
	if want.CrashActivated != got.CrashActivated {
		t.Errorf("%s: crash histograms differ", label)
	}
	if want.TrapCounts != got.TrapCounts {
		t.Errorf("%s: trap counts differ", label)
	}
	if want.ActivatedTotal != got.ActivatedTotal {
		t.Errorf("%s: activated totals differ: %d vs %d", label, want.ActivatedTotal, got.ActivatedTotal)
	}
	if wantEarly && (want.Converged != got.Converged || want.MemoHits != got.MemoHits) {
		t.Errorf("%s: early-exit counters differ: conv %d vs %d, memo %d vs %d",
			label, want.Converged, got.Converged, want.MemoHits, got.MemoHits)
	}
	if len(want.Experiments) != len(got.Experiments) {
		t.Fatalf("%s: experiment counts differ: %d vs %d", label, len(want.Experiments), len(got.Experiments))
	}
	for i := range want.Experiments {
		if want.Experiments[i] != got.Experiments[i] {
			t.Fatalf("%s: experiment %d differs: %+v vs %+v",
				label, i, want.Experiments[i], got.Experiments[i])
		}
	}
	if len(want.Quarantined) != len(got.Quarantined) {
		t.Fatalf("%s: quarantine counts differ: %d vs %d",
			label, len(want.Quarantined), len(got.Quarantined))
	}
	for i := range want.Quarantined {
		if !reflect.DeepEqual(want.Quarantined[i], got.Quarantined[i]) {
			t.Fatalf("%s: quarantine record %d differs: %+v vs %+v",
				label, i, want.Quarantined[i], got.Quarantined[i])
		}
	}
}

// TestShardMergeProperty checks the algebra resume correctness rests on:
// folding any contiguous partition of a campaign's experiments, in any
// order and any grouping, reproduces the direct result exactly. The
// partitions are random per trial; the baseline runs NoConverge so the
// per-experiment Add (which cannot know the early-exit split) matches
// the counters too.
func TestShardMergeProperty(t *testing.T) {
	tg := target(t, "CRC32")
	const n = 120
	want := baselineRun(t, tg, n, true)

	rng := xrand.New(99)
	for trial := 0; trial < 25; trial++ {
		// A random contiguous partition: each boundary is kept with
		// probability ~1/6, so shard sizes vary from 1 to tens.
		var bounds []int
		for i := 1; i < n; i++ {
			if rng.Intn(6) == 0 {
				bounds = append(bounds, i)
			}
		}
		bounds = append(bounds, n)
		// Rebuild each shard from the per-experiment records.
		type shard struct {
			sr core.ShardResult
			lo int
		}
		var shards []shard
		lo := 0
		for i, hi := range bounds {
			sr := core.ShardResult{Shard: i}
			for j := lo; j < hi; j++ {
				exp := want.Experiments[j]
				sr.Add(&exp, false, false, false)
				sr.Experiments = append(sr.Experiments, exp)
			}
			shards = append(shards, shard{sr, lo})
			lo = hi
		}
		// Shuffle: folding order must not matter.
		for i := len(shards) - 1; i > 0; i-- {
			j := int(rng.Uint64n(uint64(i + 1)))
			shards[i], shards[j] = shards[j], shards[i]
		}
		// Random grouping: split the shards across two partial results,
		// then merge the partials (in both orders — commutativity).
		for pass := 0; pass < 2; pass++ {
			parts := [2]*core.EngineResult{
				{Experiments: make([]core.Experiment, n)},
				{Experiments: make([]core.Experiment, n)},
			}
			for _, sh := range shards {
				parts[rng.Intn(2)].Fold(&sh.sr, sh.lo)
			}
			a, b := parts[pass%2], parts[(pass+1)%2]
			a.Merge(b)
			sameResult(t, "merged partition", want, a, true)
		}
	}
}

// TestJournalLeaseSteal runs two drainers over one journal with one of
// them stalled mid-shard past its lease TTL: the peer must steal the
// stalled shard, the stalled drainer's late checkpoint must be dropped
// as a duplicate, and both drainers' folded results must match the
// uninterrupted baseline exactly — no experiment lost, none counted
// twice.
func TestJournalLeaseSteal(t *testing.T) {
	tg := target(t, "CRC32")
	const n = 48
	want := baselineRun(t, tg, n, false)

	j := core.NewMemJournal()
	var stallOnce sync.Once
	restore := core.SetExperimentHook(func(idx int) {
		// The first experiment claimed by either drainer stalls well past
		// the lease TTL, forcing the peer to steal its shard.
		stallOnce.Do(func() { time.Sleep(300 * time.Millisecond) })
	})
	defer restore()

	run := func(worker string) (*core.EngineResult, error) {
		eng := registerEngine(tg)
		eng.N = n
		eng.Seed = 11
		eng.Record = true
		eng.Workers = 1
		eng.Service = &core.Service{
			Journal:   j,
			WorkerID:  worker,
			ShardSize: 4,
			LeaseTTL:  50 * time.Millisecond,
		}
		return eng.Run()
	}
	var wg sync.WaitGroup
	results := make([]*core.EngineResult, 2)
	errs := make([]error, 2)
	for i, worker := range []string{"drainer-a", "drainer-b"} {
		wg.Add(1)
		go func(i int, worker string) {
			defer wg.Done()
			results[i], errs[i] = run(worker)
		}(i, worker)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("drainer %d: %v", i, err)
		}
	}
	for i, res := range results {
		if res.Tally.N() != n {
			t.Errorf("drainer %d tallied %d experiments, want %d", i, res.Tally.N(), n)
		}
		// Early-exit counters are scheduling-dependent; everything else
		// must match the uninterrupted run bit for bit.
		sameResult(t, "stolen-lease drain", want, res, false)
	}

	st, err := j.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != st.Shards || st.Pending != 0 || st.Leased != 0 {
		t.Errorf("drained journal status %+v", st)
	}
	if st.Tally.N() != n {
		t.Errorf("journal tally holds %d experiments, want %d", st.Tally.N(), n)
	}
}

// TestFileJournalResume checks the file journal end to end: a completed
// campaign's journal resumes without re-running anything, produces the
// identical result, shows up in InspectDir — and a non-resume rerun
// discards it and starts fresh.
func TestFileJournalResume(t *testing.T) {
	tg := target(t, "CRC32")
	const n = 60
	want := baselineRun(t, tg, n, false)
	dir := t.TempDir()

	run := func(resume bool) (*core.EngineResult, int) {
		var ran atomic.Int64
		restore := core.SetExperimentHook(func(idx int) { ran.Add(1) })
		defer restore()
		eng := registerEngine(tg)
		eng.N = n
		eng.Seed = 11
		eng.Record = true
		eng.Service = &core.Service{Dir: dir, Resume: resume, ShardSize: 8}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, int(ran.Load())
	}

	first, ran := run(false)
	if ran != n {
		t.Errorf("first run executed %d experiments, want %d", ran, n)
	}
	sameResult(t, "journaled run", want, first, false)

	resumed, ran := run(true)
	if ran != 0 {
		t.Errorf("resume of a complete campaign executed %d experiments, want 0", ran)
	}
	sameResult(t, "resumed run", want, resumed, false)

	infos, err := core.InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("InspectDir found %d campaigns, want 1", len(infos))
	}
	if got := infos[0]; got.Meta.N != n || got.Status.Done != got.Status.Shards || got.Status.ExperimentsDone != n {
		t.Errorf("InspectDir reports %+v / %+v", got.Meta, got.Status)
	}

	fresh, ran := run(false)
	if ran != n {
		t.Errorf("non-resume rerun executed %d experiments, want %d (journal kept?)", ran, n)
	}
	sameResult(t, "fresh rerun", want, fresh, false)
}

// TestJournalBindMismatch checks the journal refuses to resume a
// different campaign: same file, different meta.
func TestJournalBindMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign-test.mfj")
	j, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	meta := core.CampaignMeta{Fingerprint: 1, Model: "register tech=read", N: 40, ShardSize: 8, Seed: 3}
	if err := j.Bind(meta); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, err = core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	other := meta
	other.Seed = 4
	if err := j.Bind(other); err == nil {
		t.Error("journal bound a different campaign")
	}
	if err := j.Bind(meta); err != nil {
		t.Errorf("journal refused its own campaign: %v", err)
	}
}

// TestCampaignStatusMidFlight snapshots a live campaign from inside an
// experiment hook: the shard partition must always account for every
// shard, and the running tally must only cover checkpointed shards.
func TestCampaignStatusMidFlight(t *testing.T) {
	tg := target(t, "CRC32")
	const n = 64
	j := core.NewMemJournal()

	var calls atomic.Int64
	var statusErr error
	var once sync.Once
	restore := core.SetExperimentHook(func(idx int) {
		// Probe once, midway through the campaign.
		if calls.Add(1) == n/2 {
			once.Do(func() {
				st, err := j.Status()
				if err != nil {
					statusErr = err
					return
				}
				if st.Done+st.Leased+st.Pending != st.Shards {
					statusErr = fmt.Errorf("status partition does not cover the shards: %+v", st)
					return
				}
				if st.Tally.N() != st.ExperimentsDone {
					statusErr = fmt.Errorf("status tally covers %d experiments, done says %d", st.Tally.N(), st.ExperimentsDone)
				}
			})
		}
	})
	defer restore()

	eng := registerEngine(tg)
	eng.N = n
	eng.Seed = 11
	eng.Workers = 2
	eng.Service = &core.Service{Journal: j, ShardSize: 8}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if statusErr != nil {
		t.Error(statusErr)
	}
	st, err := j.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != st.Shards || st.ExperimentsDone != n {
		t.Errorf("final status %+v", st)
	}
}

// TestLeaseHeartbeatOutlivesTTL is the heartbeat acceptance test: a
// shard whose wall-clock time far exceeds the lease TTL completes
// without being stolen, because the worker renews its lease at
// experiment boundaries. A thief polling the same journal (with the
// cross-process skew grace disabled, so expiries are judged exactly)
// must never win a claim before the campaign drains.
func TestLeaseHeartbeatOutlivesTTL(t *testing.T) {
	const (
		n   = 20
		ttl = 800 * time.Millisecond
	)
	tg := target(t, "CRC32")
	baseline := baselineRun(t, tg, n, false)

	dir := t.TempDir()
	eng := registerEngine(tg)
	eng.N = n
	eng.Seed = 11
	eng.Record = true
	eng.Workers = 1
	eng.Service = &core.Service{
		Dir:       dir,
		ShardSize: n, // one shard: its runtime (~n * 50ms) dwarfs the TTL
		LeaseTTL:  ttl,
		WorkerID:  "slowpoke",
	}
	// Each experiment dawdles 50ms, so the single shard takes ~1s
	// against an 800ms TTL: without heartbeats its lease would lapse
	// mid-shard.
	restore := core.SetExperimentHook(func(idx int) {
		time.Sleep(50 * time.Millisecond)
	})
	defer restore()

	var (
		steals  atomic.Int64
		thiefWg sync.WaitGroup
		done    = make(chan struct{})
	)
	thiefWg.Add(1)
	go func() {
		defer thiefWg.Done()
		// Wait for the campaign journal to exist, then poll for a steal.
		var path string
		for i := 0; i < 100 && path == ""; i++ {
			if paths, _ := filepath.Glob(filepath.Join(dir, "campaign-*.mfj")); len(paths) > 0 {
				path = paths[0]
			} else {
				time.Sleep(20 * time.Millisecond)
			}
		}
		if path == "" {
			return
		}
		j, err := core.OpenFileJournalOpts(path, core.FileJournalOptions{LeaseGrace: -1})
		if err != nil {
			return
		}
		defer j.Close()
		for {
			select {
			case <-done:
				return
			case <-time.After(25 * time.Millisecond):
			}
			_, state, err := j.Claim("thief", ttl)
			if err != nil {
				continue
			}
			if state == core.ClaimOK {
				steals.Add(1)
			}
			if state == core.ClaimDrained {
				return
			}
		}
	}()

	res, err := eng.Run()
	close(done)
	thiefWg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := steals.Load(); got != 0 {
		t.Fatalf("thief stole a heartbeat-protected lease %d times", got)
	}
	sameResult(t, "heartbeat-protected shard", baseline, res, false)

	// Non-vacuity: the journal must hold the initial claim plus at least
	// one renewal — the shard's ~1s runtime crosses the ~TTL/3 renewal
	// threshold several times.
	paths, err := filepath.Glob(filepath.Join(dir, "campaign-*.mfj"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("want one campaign journal, got %v (%v)", paths, err)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	leases := strings.Count(string(raw), `"t":"lease"`)
	if leases < 2 {
		t.Fatalf("journal holds %d lease records; want the claim plus at least one heartbeat renewal", leases)
	}
}
