package core_test

// Classifier-seam tests: the spec parser, the tolerance judgement, the
// zero-epsilon ≡ exact equivalence across all three fault models, and
// the fingerprint contract (default classifier keeps pre-seam content
// addresses; any other classifier changes them).

import (
	"encoding/binary"
	"math"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/memfault"
	"multiflip/internal/vm"
)

func TestParseClassifier(t *testing.T) {
	good := []struct{ spec, name string }{
		{"", "exact"},
		{"exact", "exact"},
		{"tol", "tol:abs=0,rel=0,word=4"},
		{"tol:abs=1", "tol:abs=1,rel=0,word=4"},
		{"tol:abs=2,rel=1e-06,word=8,float", "tol:abs=2,rel=1e-06,word=8,float"},
		{"tol:float", "tol:abs=0,rel=0,word=4,float"},
	}
	for _, tc := range good {
		c, err := core.ParseClassifier(tc.spec)
		if err != nil {
			t.Errorf("ParseClassifier(%q): %v", tc.spec, err)
			continue
		}
		if c.Name() != tc.name {
			t.Errorf("ParseClassifier(%q).Name() = %q, want %q", tc.spec, c.Name(), tc.name)
		}
	}
	bad := []string{"bogus", "tolx", "tol:abs", "tol:abs=-1", "tol:word=5", "tol:float=1", "tol:rel=x"}
	for _, spec := range bad {
		if _, err := core.ParseClassifier(spec); err == nil {
			t.Errorf("ParseClassifier(%q) accepted, want error", spec)
		}
	}
}

// words builds a little-endian byte string from 32-bit words.
func words(ws ...uint32) []byte {
	out := make([]byte, 0, 4*len(ws))
	for _, w := range ws {
		out = binary.LittleEndian.AppendUint32(out, w)
	}
	return out
}

func TestToleranceClassify(t *testing.T) {
	golden := words(100, 200, 300)
	returned := func(out []byte) *vm.Result { return &vm.Result{Stop: vm.StopReturned, Output: out} }
	tol := core.ToleranceClassifier{Abs: 5}
	cases := []struct {
		name string
		c    core.Classifier
		res  *vm.Result
		want core.Outcome
	}{
		{"equal", tol, returned(words(100, 200, 300)), core.OutcomeBenign},
		{"within-abs", tol, returned(words(103, 196, 300)), core.OutcomeBenign},
		{"outside-abs", tol, returned(words(100, 206, 300)), core.OutcomeSDC},
		{"length-mismatch", tol, returned(words(100, 200)), core.OutcomeSDC},
		{"within-rel", core.ToleranceClassifier{Rel: 0.01}, returned(words(101, 200, 300)), core.OutcomeBenign},
		{"outside-rel", core.ToleranceClassifier{Rel: 0.001}, returned(words(101, 200, 300)), core.OutcomeSDC},
		{"zero-eps-diff", core.ToleranceClassifier{}, returned(words(100, 200, 301)), core.OutcomeSDC},
		{"trap", tol, &vm.Result{Stop: vm.StopTrap, Trap: vm.TrapSegfault}, core.OutcomeException},
		{"hang", tol, &vm.Result{Stop: vm.StopHang}, core.OutcomeHang},
		{"no-output", tol, &vm.Result{Stop: vm.StopReturned}, core.OutcomeNoOutput},
	}
	for _, tc := range cases {
		if got := tc.c.Classify(golden, tc.res); got != tc.want {
			t.Errorf("%s: Classify = %s, want %s", tc.name, got, tc.want)
		}
	}

	// Trailing partial word: byte-exact regardless of epsilon.
	g := append(words(100), 7, 8, 9)
	if got := tol.Classify(g, returned(append(words(100), 7, 8, 9))); got != core.OutcomeBenign {
		t.Errorf("partial word equal: %s, want Benign", got)
	}
	if got := tol.Classify(g, returned(append(words(100), 7, 8, 10))); got != core.OutcomeSDC {
		t.Errorf("partial word off by one: %s, want SDC (byte-exact tail)", got)
	}

	// Float mode: a low-mantissa perturbation passes a relative
	// tolerance; NaN where golden was finite never does, but a
	// byte-identical NaN is Benign via the equality fast path.
	f := func(v float32) []byte { return words(math.Float32bits(v)) }
	fc := core.ToleranceClassifier{Rel: 1e-5, Float: true}
	if got := fc.Classify(f(1.0), returned(f(1.0000001))); got != core.OutcomeBenign {
		t.Errorf("float within rel: %s, want Benign", got)
	}
	if got := fc.Classify(f(1.0), returned(f(float32(math.NaN())))); got != core.OutcomeSDC {
		t.Errorf("float NaN vs finite: %s, want SDC", got)
	}
	nan := f(float32(math.NaN()))
	if got := fc.Classify(nan, returned(nan)); got != core.OutcomeBenign {
		t.Errorf("identical NaN bytes: %s, want Benign", got)
	}
}

// TestZeroToleranceMatchesExact is the classifier ablation in test
// form: with both epsilons zero the tolerance classifier must produce
// bit-identical campaigns to the exact default, for every fault model.
func TestZeroToleranceMatchesExact(t *testing.T) {
	tg := target(t, "CRC32")
	const n, seed = 80, 5
	zero := core.ToleranceClassifier{}

	t.Run("register", func(t *testing.T) {
		spec := core.CampaignSpec{
			Target: tg, Technique: core.InjectOnRead,
			Config: core.Config{MaxMBF: 3, Win: core.Win(10)},
			N:      n, Seed: seed, Record: true,
		}
		want, err := core.RunCampaign(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Classifier = zero
		got, err := core.RunCampaign(spec)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "register eps-0", &want.EngineResult, &got.EngineResult, false)
	})
	t.Run("stuckat", func(t *testing.T) {
		spec := core.StuckAtSpec{Target: tg, N: n, Seed: seed, Record: true}
		want, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Classifier = zero
		got, err := core.RunStuckAt(spec)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "stuckat eps-0", &want.EngineResult, &got.EngineResult, false)
	})
	t.Run("memfault", func(t *testing.T) {
		spec := memfault.Spec{Target: tg, Bits: 2, N: n, Seed: seed, Record: true}
		want, err := memfault.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Classifier = zero
		got, err := memfault.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if want.Tally != got.Tally {
			t.Errorf("memfault eps-0: tallies differ: %+v vs %+v", want.Tally, got.Tally)
		}
		if len(want.Outcomes) != len(got.Outcomes) {
			t.Fatalf("memfault eps-0: outcome counts differ: %d vs %d", len(want.Outcomes), len(got.Outcomes))
		}
		for i := range want.Outcomes {
			if want.Outcomes[i] != got.Outcomes[i] {
				t.Fatalf("memfault eps-0: outcome %d differs: %s vs %s", i, want.Outcomes[i], got.Outcomes[i])
			}
		}
	})
}

// TestClassifierFingerprint pins the content-address contract: the
// default classifier (nil or explicit exact) must keep the fingerprints
// campaigns had before the classifier seam existed — old journals and
// memos resume unchanged — while any non-default classifier must move
// to its own addresses so differently-classified results never mix.
func TestClassifierFingerprint(t *testing.T) {
	tg := target(t, "CRC32")
	eng := func(c core.Classifier) *core.Engine {
		return &core.Engine{
			Target: tg,
			Model: &core.RegisterModel{Spec: &core.CampaignSpec{
				Target: tg, Technique: core.InjectOnRead, Config: core.SingleBit(),
			}},
			N: 10, Seed: 1, Classifier: c,
		}
	}
	defFP := core.EngineFingerprint(eng(nil))
	defMemo := core.EngineMemoFingerprint(eng(nil))
	if fp := core.EngineFingerprint(eng(core.ExactClassifier{})); fp != defFP {
		t.Errorf("explicit exact classifier changed the campaign fingerprint: %x vs %x", fp, defFP)
	}
	if fp := core.EngineMemoFingerprint(eng(core.ExactClassifier{})); fp != defMemo {
		t.Errorf("explicit exact classifier changed the memo fingerprint: %x vs %x", fp, defMemo)
	}
	tolFP := core.EngineFingerprint(eng(core.ToleranceClassifier{Abs: 1}))
	if tolFP == defFP {
		t.Error("tolerance classifier shares the default campaign fingerprint")
	}
	if core.EngineMemoFingerprint(eng(core.ToleranceClassifier{Abs: 1})) == defMemo {
		t.Error("tolerance classifier shares the default memo fingerprint")
	}
	if core.EngineFingerprint(eng(core.ToleranceClassifier{Abs: 2})) == tolFP {
		t.Error("differently-parameterized tolerance classifiers share a fingerprint")
	}
}
