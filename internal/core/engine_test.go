package core_test

// Engine seam tests, written once against core.Engine and run for all
// three fault models (register flips, memory-word faults, stuck-at
// registers). They replace the per-package copies that used to live in
// internal/core and internal/memfault: concurrent-failure propagation
// and memo/scheduling determinism are engine properties, not model
// properties.

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/memfault"
)

// engineModel builds an Engine for one fault model over a target. The
// returned engine carries the model and nothing else; tests fill in N,
// Seed, Workers and the rest.
type engineModel struct {
	name   string
	prefix string // the model's error prefix
	engine func(tg *core.Target) *core.Engine
}

func engineModels() []engineModel {
	return []engineModel{
		{"register", "core", func(tg *core.Target) *core.Engine {
			return &core.Engine{Target: tg, Model: &core.RegisterModel{Spec: &core.CampaignSpec{
				Target:    tg,
				Technique: core.InjectOnRead,
				Config:    core.Config{MaxMBF: 3, Win: core.Win(10)},
			}}}
		}},
		{"memfault", "memfault", func(tg *core.Target) *core.Engine {
			return &core.Engine{Target: tg, Model: &memfault.Model{Spec: &memfault.Spec{
				Target: tg,
				Bits:   3,
			}}}
		}},
		{"stuckat", "stuckat", func(tg *core.Target) *core.Engine {
			return &core.Engine{Target: tg, Model: &core.StuckAtModel{Spec: &core.StuckAtSpec{
				Target: tg,
				Window: core.Win(50),
			}}}
		}},
	}
}

// brokenTarget returns a target whose snapshots belong to a different
// program, so every fast-forwarded experiment fails inside vm.Run.
func brokenTarget(t *testing.T) *core.Target {
	t.Helper()
	broken := *target(t, "CRC32")
	broken.Snapshots = target(t, "qsort").Snapshots
	broken.Trace = nil
	return &broken
}

// TestEngineJoinsConcurrentErrors checks the errors.Join propagation for
// every fault model: a barrier in the experiment hook holds both workers
// until each has claimed an experiment, both fail, and both failures
// surface in the returned error instead of just whichever lost the race.
func TestEngineJoinsConcurrentErrors(t *testing.T) {
	for _, m := range engineModels() {
		t.Run(m.name, func(t *testing.T) {
			eng := m.engine(brokenTarget(t))
			eng.N = 2
			eng.Seed = 1
			eng.Workers = 2
			var barrier sync.WaitGroup
			barrier.Add(2)
			restore := core.SetExperimentHook(func(idx int) {
				// Both workers must claim before either is allowed to fail,
				// so the failed flag cannot stop the second claim.
				barrier.Done()
				barrier.Wait()
			})
			defer restore()
			_, err := eng.Run()
			if err == nil {
				t.Fatal("engine run on a broken target succeeded")
			}
			msg := err.Error()
			if !strings.Contains(msg, m.prefix+":") {
				t.Errorf("error misses the model prefix: %v", err)
			}
			if !strings.Contains(msg, "experiment 0") || !strings.Contains(msg, "experiment 1") {
				t.Errorf("joined error misses a worker's failure: %v", err)
			}
			var many interface{ Unwrap() []error }
			if !errors.As(err, &many) || len(many.Unwrap()) != 2 {
				t.Errorf("want a 2-error join, got %v", err)
			}
		})
	}
}

// TestEngineMemoDeterminism checks, for every fault model, that results
// are independent of scheduling and of the early-exit tier: sequential
// reruns reproduce the early-exit counts exactly, parallel runs
// reproduce every experiment record and aggregate (only MemoHits and
// Converged may move — whether a fault-equivalent twin is intercepted
// by the memo or reconverges on its own depends on scheduling), and a
// NoConverge run reproduces the records with both tiers off.
func TestEngineMemoDeterminism(t *testing.T) {
	tg := target(t, "CRC32")
	for _, m := range engineModels() {
		t.Run(m.name, func(t *testing.T) {
			run := func(workers int, noConverge bool) *core.EngineResult {
				eng := m.engine(tg)
				eng.N = 80
				eng.Seed = 21
				eng.Workers = workers
				eng.Record = true
				eng.NoConverge = noConverge
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq := run(1, false)
			again := run(1, false)
			if seq.MemoHits != again.MemoHits || seq.Converged != again.Converged {
				t.Errorf("sequential reruns diverge: memo %d vs %d, converged %d vs %d",
					seq.MemoHits, again.MemoHits, seq.Converged, again.Converged)
			}
			par := run(8, false)
			off := run(8, true)
			if off.MemoHits != 0 || off.Converged != 0 {
				t.Errorf("NoConverge run reported early exits: memo %d, converged %d",
					off.MemoHits, off.Converged)
			}
			for _, other := range []*core.EngineResult{again, par, off} {
				if len(other.Experiments) != len(seq.Experiments) {
					t.Fatalf("experiment counts differ: %d vs %d", len(other.Experiments), len(seq.Experiments))
				}
				for i := range seq.Experiments {
					if seq.Experiments[i] != other.Experiments[i] {
						t.Fatalf("experiment %d differs across runs: %+v vs %+v",
							i, seq.Experiments[i], other.Experiments[i])
					}
				}
				if seq.Counts != other.Counts || seq.TrapCounts != other.TrapCounts ||
					seq.CrashActivated != other.CrashActivated ||
					seq.ActivatedTotal != other.ActivatedTotal {
					t.Errorf("aggregates diverge across runs")
				}
			}
		})
	}
}

// TestEngineClaimBatchInvariance checks that the claim batch size is
// invisible in the results: batch=1 (the pre-engine claim-per-experiment
// behaviour), an oversized batch, and the auto-tuned default (batch=0)
// produce bit-identical experiments.
func TestEngineClaimBatchInvariance(t *testing.T) {
	tg := target(t, "histo")
	for _, m := range engineModels() {
		t.Run(m.name, func(t *testing.T) {
			run := func(batch int) *core.EngineResult {
				eng := m.engine(tg)
				eng.N = 100
				eng.Seed = 7
				eng.Workers = 4
				eng.ClaimBatch = batch
				eng.Record = true
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			one := run(1)
			for _, batch := range []int{64, 0} {
				other := run(batch)
				if one.Counts != other.Counts {
					t.Fatalf("tallies differ between claim batch 1 and %d: %v vs %v", batch, one.Counts, other.Counts)
				}
				for i := range one.Experiments {
					if one.Experiments[i] != other.Experiments[i] {
						t.Fatalf("experiment %d differs between claim batch 1 and %d", i, batch)
					}
				}
			}
		})
	}
}

// TestAutoClaimBatch pins the auto-tuner's contract: always at least 1,
// never past the clamp, scaling with N and shrinking with workers so
// every worker gets several claim rounds.
func TestAutoClaimBatch(t *testing.T) {
	cases := []struct {
		n, workers, want int
	}{
		{1, 8, 1},         // tiny run degrades to claim-per-experiment
		{100, 4, 6},       // N/(workers*4)
		{200, 8, 6},       // the old fixed default's worst case stays small
		{10000, 8, 312},   // would overshoot: clamped
		{1000000, 1, 256}, // huge single-worker run hits the clamp
		{16, 16, 1},       // one experiment per worker
	}
	for _, c := range cases {
		got := core.AutoClaimBatch(c.n, c.workers)
		want := c.want
		if want > core.MaxClaimBatch {
			want = core.MaxClaimBatch
		}
		if got != want {
			t.Errorf("AutoClaimBatch(%d, %d) = %d, want %d", c.n, c.workers, got, want)
		}
		if got < 1 || got > core.MaxClaimBatch {
			t.Errorf("AutoClaimBatch(%d, %d) = %d outside [1, %d]", c.n, c.workers, got, core.MaxClaimBatch)
		}
		// A worker can never be starved: the batch leaves every worker at
		// least one claim when N >= workers.
		if c.n >= c.workers && got > c.n/c.workers {
			t.Errorf("AutoClaimBatch(%d, %d) = %d starves workers", c.n, c.workers, got)
		}
	}
}

// TestEngineValidation checks the engine's own parameter validation and
// that model validation runs before any experiment.
func TestEngineValidation(t *testing.T) {
	tg := target(t, "CRC32")
	if _, err := (&core.Engine{Model: &core.StuckAtModel{Spec: &core.StuckAtSpec{}}, N: 1}).Run(); err == nil {
		t.Error("engine without a target ran")
	}
	if _, err := (&core.Engine{Target: tg, N: 1}).Run(); err == nil {
		t.Error("engine without a model ran")
	}
	eng := &core.Engine{Target: tg, Model: &core.StuckAtModel{Spec: &core.StuckAtSpec{Window: core.Win(50)}}}
	if _, err := eng.Run(); err == nil {
		t.Error("engine with N = 0 ran")
	}
	bad := &core.Engine{Target: tg, Model: &core.RegisterModel{Spec: &core.CampaignSpec{}}, N: 1}
	if _, err := bad.Run(); err == nil {
		t.Error("engine accepted an invalid model spec")
	}
	// An engine N past the pin list must be rejected, not index out of
	// range inside a worker.
	mismatched := &core.Engine{
		Target: tg,
		Model: &core.RegisterModel{Spec: &core.CampaignSpec{
			Target:    tg,
			Technique: core.InjectOnRead,
			Config:    core.SingleBit(),
			Pins:      []core.Pin{{Cand: 0, Bit: 1}},
		}},
		N: 10,
	}
	if _, err := mismatched.Run(); err == nil {
		t.Error("engine accepted N != len(Pins) on a pinned register model")
	}
}
