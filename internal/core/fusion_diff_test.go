package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/memfault"
	"multiflip/internal/prog"
)

// TestCampaignFusionDifferential enforces the dispatch tentpole's
// invariant at campaign scale: for every workload, both techniques and
// several fault models, a campaign executed with superinstruction fusion
// disabled produces experiment records bit-identical to the default
// fused campaign — the fused interpreter accounts candidate slots,
// dynamic counts and injection points exactly like its unfused
// expansion.
func TestCampaignFusionDifferential(t *testing.T) {
	const (
		n    = 40
		seed = 54321
	)
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		target, err := core.NewTarget(bench.Name, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range core.Techniques() {
			for _, cfg := range []core.Config{
				core.SingleBit(),
				{MaxMBF: 4, Win: core.Win(0)},
				{MaxMBF: 3, Win: core.Win(10)},
			} {
				spec := core.CampaignSpec{
					Target:    target,
					Technique: tech,
					Config:    cfg,
					N:         n,
					Seed:      seed,
					Record:    true,
				}
				fused, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s: %v", bench.Name, tech, cfg, err)
				}
				spec.NoFusion = true
				unfused, err := core.RunCampaign(spec)
				if err != nil {
					t.Fatalf("%s %s %s (nofusion): %v", bench.Name, tech, cfg, err)
				}
				if !reflect.DeepEqual(fused.Experiments, unfused.Experiments) {
					t.Errorf("%s %s %s: experiments diverge between fused and unfused campaigns",
						bench.Name, tech, cfg)
					continue
				}
				if fused.Counts != unfused.Counts || fused.TrapCounts != unfused.TrapCounts ||
					fused.CrashActivated != unfused.CrashActivated ||
					fused.ActivatedTotal != unfused.ActivatedTotal {
					t.Errorf("%s %s %s: aggregates diverge between fused and unfused campaigns",
						bench.Name, tech, cfg)
				}
			}
		}
	}
}

// TestTargetFusionDifferential checks that target preparation is fusion
// invariant: profiling a workload with the unfused interpreter yields the
// same golden output, candidate-space sizes and snapshot placement as the
// default fused profile, and campaigns may mix targets and experiment
// dispatch freely.
func TestTargetFusionDifferential(t *testing.T) {
	bench, err := prog.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	fusedT, err := core.NewTarget(bench.Name, p)
	if err != nil {
		t.Fatal(err)
	}
	unfusedT, err := core.NewTargetOpts(bench.Name, p, core.TargetOptions{NoFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fusedT.Golden, unfusedT.Golden) {
		t.Fatal("golden outputs diverge between fused and unfused profiling")
	}
	if fusedT.GoldenDyn != unfusedT.GoldenDyn ||
		fusedT.ReadCands != unfusedT.ReadCands || fusedT.WriteCands != unfusedT.WriteCands ||
		fusedT.ReadRoles != unfusedT.ReadRoles || fusedT.WriteRoles != unfusedT.WriteRoles {
		t.Fatal("profiles diverge between fused and unfused target preparation")
	}
	if len(fusedT.Snapshots) != len(unfusedT.Snapshots) {
		t.Fatalf("snapshot counts diverge: %d vs %d", len(fusedT.Snapshots), len(unfusedT.Snapshots))
	}
	for i := range fusedT.Snapshots {
		if fusedT.Snapshots[i].Dyn != unfusedT.Snapshots[i].Dyn {
			t.Fatalf("snapshot %d placed at dyn %d (fused) vs %d (unfused)",
				i, fusedT.Snapshots[i].Dyn, unfusedT.Snapshots[i].Dyn)
		}
	}
	// Cross: fused experiments resumed from an unfused target's snapshots.
	spec := core.CampaignSpec{
		Target:    unfusedT,
		Technique: core.InjectOnRead,
		Config:    core.Config{MaxMBF: 2, Win: core.Win(4)},
		N:         50,
		Seed:      9,
		Record:    true,
	}
	cross, err := core.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Target = fusedT
	base, err := core.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cross.Experiments, base.Experiments) {
		t.Error("experiments diverge between fused and unfused target snapshots")
	}
}

// TestMemFaultFusionDifferential extends the fusion invariant to the
// memory-fault extension: scheduled memory-word corruptions classify
// identically under fused and unfused dispatch.
func TestMemFaultFusionDifferential(t *testing.T) {
	bench, err := prog.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	target, err := core.NewTarget(bench.Name, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, bits := range []int{1, 3, 8} {
		spec := memfault.Spec{
			Target: target,
			Bits:   bits,
			N:      60,
			Seed:   7,
			Record: true,
		}
		fused, err := memfault.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.NoFusion = true
		unfused, err := memfault.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused.Outcomes, unfused.Outcomes) {
			t.Errorf("bits=%d: outcomes diverge between fused and unfused campaigns", bits)
		}
		if fused.Counts != unfused.Counts {
			t.Errorf("bits=%d: tallies diverge between fused and unfused campaigns", bits)
		}
	}
}
