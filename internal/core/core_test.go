package core_test

import (
	"sync"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/prog"
	"multiflip/internal/xrand"
)

func testRng() *xrand.Rand { return xrand.New(1) }

var (
	targetMu    sync.Mutex
	targetCache = make(map[string]*core.Target)
)

// target builds and profiles a benchmark once per test binary.
func target(t *testing.T, name string) *core.Target {
	t.Helper()
	targetMu.Lock()
	defer targetMu.Unlock()
	if tg, ok := targetCache[name]; ok {
		return tg
	}
	b, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tg, err := core.NewTarget(name, p)
	if err != nil {
		t.Fatal(err)
	}
	targetCache[name] = tg
	return tg
}

func TestTechniqueStrings(t *testing.T) {
	if core.InjectOnRead.String() != "inject-on-read" ||
		core.InjectOnWrite.String() != "inject-on-write" {
		t.Fatal("technique names wrong")
	}
	if len(core.Techniques()) != 2 {
		t.Fatal("expected two techniques")
	}
}

func TestWinSizeNotation(t *testing.T) {
	tests := []struct {
		w    core.WinSize
		want string
	}{
		{core.Win(0), "0"},
		{core.Win(100), "100"},
		{core.WinRange(2, 10), "RND(2-10)"},
		{core.WinRange(101, 1000), "RND(101-1000)"},
	}
	for _, tt := range tests {
		if got := tt.w.String(); got != tt.want {
			t.Errorf("WinSize%v = %q, want %q", tt.w, got, tt.want)
		}
	}
}

func TestWinSizeSampler(t *testing.T) {
	s := core.Win(7).Sampler()
	if got := s(nil); got != 7 {
		t.Fatalf("fixed sampler = %d", got)
	}
	rng := testRng()
	rs := core.WinRange(11, 100).Sampler()
	for i := 0; i < 1000; i++ {
		v := rs(rng)
		if v < 11 || v > 100 {
			t.Fatalf("RND(11-100) sampled %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-window Sampler did not panic")
		}
	}()
	core.Win(0).Sampler()
}

func TestParseWinSize(t *testing.T) {
	tests := []struct {
		give    string
		want    core.WinSize
		wantErr bool
	}{
		{give: "0", want: core.Win(0)},
		{give: "4", want: core.Win(4)},
		{give: "1000", want: core.Win(1000)},
		{give: " 10 ", want: core.Win(10)},
		{give: "2-10", want: core.WinRange(2, 10)},
		{give: "101-1000", want: core.WinRange(101, 1000)},
		{give: "", wantErr: true},
		{give: "x", wantErr: true},
		{give: "-1", wantErr: true},
		{give: "10-2", wantErr: true},
		{give: "0-5", wantErr: true},
	}
	for _, tt := range tests {
		got, err := core.ParseWinSize(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseWinSize(%q) accepted, want error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseWinSize(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseWinSize(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestStandardTableI(t *testing.T) {
	ms := core.StandardMaxMBF()
	if len(ms) != 10 || ms[0] != 2 || ms[9] != 30 {
		t.Fatalf("max-MBF values = %v", ms)
	}
	ws := core.StandardWinSizes()
	if len(ws) != 9 {
		t.Fatalf("win-size count = %d, want 9", len(ws))
	}
	if !ws[0].IsZero() || ws[8].String() != "1000" {
		t.Fatalf("win-size endpoints wrong: %v", ws)
	}
	if got := len(core.MultiRegisterConfigs()); got != 90 {
		t.Fatalf("multi-register clusters = %d, want 90 (so 91 campaigns per technique, 182 per program)", got)
	}
}

func TestOutcomeProperties(t *testing.T) {
	// Outcomes() enumerates the paper's categories only: OutcomeInternal
	// (runtime quarantine, not a §III-E classification) stays out.
	if len(core.Outcomes()) != core.NumOutcomes-1 {
		t.Fatal("outcome enumeration incomplete")
	}
	for _, o := range core.Outcomes() {
		if o == core.OutcomeInternal {
			t.Fatal("OutcomeInternal must not be a paper category")
		}
	}
	if core.OutcomeInternal.ContributesToResilience() || core.OutcomeInternal.IsDetection() {
		t.Error("quarantined experiments say nothing about the workload")
	}
	if core.OutcomeInternal.String() != "Internal" {
		t.Errorf("OutcomeInternal renders as %q", core.OutcomeInternal)
	}
	for _, o := range core.Outcomes() {
		if o == core.OutcomeSDC {
			if o.ContributesToResilience() || o.IsDetection() {
				t.Error("SDC misclassified")
			}
			continue
		}
		if !o.ContributesToResilience() {
			t.Errorf("%v should contribute to resilience", o)
		}
	}
	for _, o := range []core.Outcome{core.OutcomeException, core.OutcomeHang, core.OutcomeNoOutput} {
		if !o.IsDetection() {
			t.Errorf("%v should be Detection", o)
		}
	}
	if core.OutcomeBenign.IsDetection() {
		t.Error("Benign is not Detection")
	}
}

func TestNewTargetProfiles(t *testing.T) {
	tg := target(t, "CRC32")
	if tg.GoldenDyn == 0 || len(tg.Golden) == 0 {
		t.Fatal("profile empty")
	}
	if tg.ReadCands <= tg.WriteCands {
		t.Fatal("expected more read candidates than write candidates")
	}
	if tg.Candidates(core.InjectOnRead) != tg.ReadCands ||
		tg.Candidates(core.InjectOnWrite) != tg.WriteCands {
		t.Fatal("Candidates accessor wrong")
	}
}

func TestRunCampaignSingleBit(t *testing.T) {
	tg := target(t, "CRC32")
	res, err := core.RunCampaign(core.CampaignSpec{
		Target:    tg,
		Technique: core.InjectOnRead,
		Config:    core.SingleBit(),
		N:         300,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 300 {
		t.Fatalf("N = %d", res.N())
	}
	// Every single-bit experiment activates exactly one error (candidates
	// are live by construction).
	if res.ActivatedTotal != 300 {
		t.Fatalf("activated total = %d, want 300", res.ActivatedTotal)
	}
	// Sanity: the campaign must produce a mix of outcomes, not all one
	// category.
	if res.Count(core.OutcomeBenign) == res.N() || res.Count(core.OutcomeSDC) == res.N() {
		t.Fatalf("degenerate outcome distribution: %v", res.Counts)
	}
	total := 0.0
	for _, o := range core.Outcomes() {
		total += res.Pct(o)
	}
	if total < 99.999 || total > 100.001 {
		t.Fatalf("percentages sum to %v", total)
	}
	if r := res.Resilience(); r < 0 || r > 1 {
		t.Fatalf("resilience = %v", r)
	}
}

func TestRunCampaignDeterministicAcrossWorkers(t *testing.T) {
	tg := target(t, "histo")
	run := func(workers int) *core.CampaignResult {
		res, err := core.RunCampaign(core.CampaignSpec{
			Target:    tg,
			Technique: core.InjectOnWrite,
			Config:    core.Config{MaxMBF: 3, Win: core.Win(10)},
			N:         200,
			Seed:      42,
			Workers:   workers,
			Record:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.Counts != b.Counts {
		t.Fatalf("counts differ across worker counts: %v vs %v", a.Counts, b.Counts)
	}
	for i := range a.Experiments {
		if a.Experiments[i] != b.Experiments[i] {
			t.Fatalf("experiment %d differs across worker counts", i)
		}
	}
}

func TestRunCampaignSeedMatters(t *testing.T) {
	tg := target(t, "histo")
	run := func(seed uint64) [core.NumOutcomes + 1]int {
		res, err := core.RunCampaign(core.CampaignSpec{
			Target:    tg,
			Technique: core.InjectOnRead,
			Config:    core.SingleBit(),
			N:         200,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counts
	}
	if run(1) == run(2) {
		t.Log("note: two seeds produced identical counts (possible but unlikely)")
	}
}

func TestMultiBitActivationBounded(t *testing.T) {
	tg := target(t, "qsort")
	res, err := core.RunCampaign(core.CampaignSpec{
		Target:    tg,
		Technique: core.InjectOnRead,
		Config:    core.Config{MaxMBF: 30, Win: core.Win(1)},
		N:         150,
		Seed:      7,
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Experiments {
		if e.Activated < 1 || e.Activated > 30 {
			t.Fatalf("activated = %d outside [1,30]", e.Activated)
		}
	}
	// Fig 3's premise: crashes generally happen after only a few activated
	// errors, so the campaign must contain crashed experiments with fewer
	// than 30 activations.
	under := 0
	for a := 0; a < 30; a++ {
		under += res.CrashActivated[a]
	}
	if res.Count(core.OutcomeException) > 0 && under == 0 {
		t.Fatal("all crashed experiments activated the full 30 errors")
	}
}

func TestSameRegisterClamp(t *testing.T) {
	tg := target(t, "CRC32")
	res, err := core.RunCampaign(core.CampaignSpec{
		Target:    tg,
		Technique: core.InjectOnWrite,
		Config:    core.Config{MaxMBF: 30, Win: core.Win(0)},
		N:         150,
		Seed:      9,
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Experiments {
		// Same-register flips are clamped to the register width, so i1
		// targets activate once, i8 targets at most 8 times, etc.
		if e.Activated < 1 || e.Activated > 30 {
			t.Fatalf("activated = %d", e.Activated)
		}
	}
}

func TestPinnedCampaignReproducesExperiments(t *testing.T) {
	// The §IV-C3 mechanism: re-running a recorded single-bit campaign with
	// pinned (candidate, bit) pairs must reproduce the outcomes exactly.
	tg := target(t, "stringsearch")
	first, err := core.RunCampaign(core.CampaignSpec{
		Target:    tg,
		Technique: core.InjectOnRead,
		Config:    core.SingleBit(),
		N:         200,
		Seed:      11,
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pins := make([]core.Pin, len(first.Experiments))
	for i, e := range first.Experiments {
		pins[i] = core.Pin{Cand: e.Cand, Bit: e.Bit}
	}
	second, err := core.RunCampaign(core.CampaignSpec{
		Target:    tg,
		Technique: core.InjectOnRead,
		Config:    core.SingleBit(),
		Seed:      9999, // seed must not matter for pinned single-bit runs
		Record:    true,
		Pins:      pins,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.N() != first.N() {
		t.Fatalf("pinned N = %d, want %d", second.N(), first.N())
	}
	for i := range first.Experiments {
		if first.Experiments[i].Outcome != second.Experiments[i].Outcome {
			t.Fatalf("experiment %d outcome changed under pinning: %v -> %v",
				i, first.Experiments[i].Outcome, second.Experiments[i].Outcome)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	tg := target(t, "CRC32")
	bad := []core.CampaignSpec{
		{Technique: core.InjectOnRead, Config: core.SingleBit(), N: 1},             // no target
		{Target: tg, Config: core.SingleBit(), N: 1},                               // no technique
		{Target: tg, Technique: core.InjectOnRead, Config: core.Config{}, N: 1},    // MaxMBF 0
		{Target: tg, Technique: core.InjectOnRead, Config: core.SingleBit(), N: 0}, // no N
		{Target: tg, Technique: core.InjectOnRead, Config: core.Config{MaxMBF: 2, Win: core.WinSize{Lo: 5, Hi: 2}}, N: 1},
	}
	for i, spec := range bad {
		if _, err := core.RunCampaign(spec); err == nil {
			t.Errorf("spec %d accepted, want error", i)
		}
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	tg := target(t, "histo")
	run := func(n int) float64 {
		res, err := core.RunCampaign(core.CampaignSpec{
			Target:    tg,
			Technique: core.InjectOnRead,
			Config:    core.SingleBit(),
			N:         n,
			Seed:      5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.CI95(core.OutcomeSDC)
	}
	small, large := run(50), run(500)
	if small != 0 && large >= small {
		t.Fatalf("CI95 did not shrink: n=50 -> %v, n=500 -> %v", small, large)
	}
}

func TestConfigStrings(t *testing.T) {
	if core.SingleBit().String() != "single-bit" {
		t.Fatal("single-bit label wrong")
	}
	c := core.Config{MaxMBF: 3, Win: core.WinRange(2, 10)}
	if c.String() != "mbf=3 win=RND(2-10)" {
		t.Fatalf("config string = %q", c.String())
	}
	if core.SingleBit().IsSingle() != true || c.IsSingle() {
		t.Fatal("IsSingle wrong")
	}
}
