// Package liveness implements a bit-level static liveness analysis over
// validated IR: for every (pc, register, bit) it decides whether a flip
// of that bit, applied at that program point, is provably unobservable —
// the bit is read by no instruction before every path out of the frame
// overwrites it or discards the register file — or possibly live.
//
// The analysis is the static half of the campaign engine's pruning
// ladder (BEC-style, see PAPERS.md): convergence gating and the
// fault-equivalence memo prune faults that die *dynamically*, while this
// pass classifies flips into statically dead bits as Benign with zero
// execution. Precision below register granularity comes from vacated-bit
// transfer functions: an `and` with an immediate mask kills the masked
// bits of its operand, a narrowing store observes only the stored bits, a
// shift vacates the bits it discards, and carries in add/sub/mul
// propagate strictly upward.
//
// Soundness is the only hard requirement — every transfer function may
// over-approximate liveness but must never report a bit dead whose flip
// could change any observable (output bytes, traps, termination, or the
// dynamic instruction count). Branch conditions, memory addresses,
// divisor operands, call arguments and returned values are therefore
// always fully live: they feed control flow, the trap surface, or
// another frame. The differential suites in internal/core and the
// FuzzVM liveness check enforce the contract by re-executing statically
// pruned flips and asserting nothing changed.
package liveness

import (
	"math/bits"

	"multiflip/internal/ir"
)

// Analysis holds the per-function liveness results for one program.
type Analysis struct {
	funcs []funcLive
}

type funcLive struct {
	// liveIn[pc][reg] is the set of bits of reg that some path starting
	// at pc (before executing pc's instruction) may observe.
	liveIn [][]uint64
	// deadRead[pc][slot] is the set of bits within the slot's injection
	// width whose flip, applied just before pc executes (the VM's
	// inject-on-read point), is provably unobservable.
	deadRead [][]uint64
	// deadWrite[pc] is the set of bits within the destination's injection
	// width whose flip, applied just after pc's destination write lands
	// (the VM's inject-on-write point — for calls, the matching return),
	// is provably unobservable.
	deadWrite []uint64
}

// Analyze runs the analysis on a validated program. It trusts the caches
// Program.Validate populates (NR, DW), like the VM does.
func Analyze(p *ir.Program) *Analysis {
	a := &Analysis{funcs: make([]funcLive, len(p.Funcs))}
	for i, f := range p.Funcs {
		a.funcs[i] = analyzeFunc(f)
	}
	return a
}

// LiveIn returns the live-bit mask of reg just before (fn, pc) executes.
func (a *Analysis) LiveIn(fn, pc int, reg ir.Reg) uint64 {
	return a.funcs[fn].liveIn[pc][reg]
}

// DeadReadBits returns the bits (within the slot's injection width) that
// are provably dead for an inject-on-read flip at (fn, pc, slot).
func (a *Analysis) DeadReadBits(fn, pc, slot int) uint64 {
	return a.funcs[fn].deadRead[pc][slot]
}

// DeadWriteBits returns the bits (within the destination's injection
// width) that are provably dead for an inject-on-write flip at the
// instruction (fn, pc). For calls the flip lands at the matching return,
// with the caller resuming at pc+1, which is the same program point.
func (a *Analysis) DeadWriteBits(fn, pc int) uint64 {
	return a.funcs[fn].deadWrite[pc]
}

// FuncStat summarizes the static dead-bit density of one function: how
// many of its injection-candidate bits (read slots and destination
// writes, summed over static instructions) are provably dead.
type FuncStat struct {
	Name      string
	ReadBits  int // total read-slot candidate bits
	DeadRead  int // provably dead read-slot bits
	WriteBits int // total destination-write candidate bits
	DeadWrite int // provably dead destination-write bits
}

// Density returns the dead fraction of the function's candidate bits,
// or 0 when it has none.
func (s FuncStat) Density() float64 {
	total := s.ReadBits + s.WriteBits
	if total == 0 {
		return 0
	}
	return float64(s.DeadRead+s.DeadWrite) / float64(total)
}

// Stats returns per-function dead-bit density statistics, indexed like
// p.Funcs.
func (a *Analysis) Stats(p *ir.Program) []FuncStat {
	out := make([]FuncStat, len(p.Funcs))
	for fi, f := range p.Funcs {
		st := FuncStat{Name: f.Name}
		fl := &a.funcs[fi]
		for pc := range f.Code {
			in := &f.Code[pc]
			for s := 0; s < int(in.NR); s++ {
				w := widthBits(ir.SlotWidth(in, s))
				st.ReadBits += w
				st.DeadRead += bits.OnesCount64(fl.deadRead[pc][s])
			}
			if in.Dst != ir.NoReg {
				st.WriteBits += destWidthBits(in)
				st.DeadWrite += bits.OnesCount64(fl.deadWrite[pc])
			}
		}
		out[fi] = st
	}
	return out
}

// ProgStat aggregates Stats over the whole program.
func (a *Analysis) ProgStat(p *ir.Program) FuncStat {
	var st FuncStat
	st.Name = p.Name
	for _, f := range a.Stats(p) {
		st.ReadBits += f.ReadBits
		st.DeadRead += f.DeadRead
		st.WriteBits += f.WriteBits
		st.DeadWrite += f.DeadWrite
	}
	return st
}

// widthBits is Width.Bits with W1 folded to one bit (its value).
func widthBits(w ir.Width) int { return w.Bits() }

// destWidthBits returns the inject-on-write sampling width of in's
// destination in bits: DestWidth for plain writes, 64 for call results
// (the VM injects those at the matching return with full width).
func destWidthBits(in *ir.Instr) int {
	if in.Op == ir.OpCall {
		return 64
	}
	return ir.DestWidth(in).Bits()
}

func maskOfBits(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// analyzeFunc runs the backward bit-level fixed point over one function.
func analyzeFunc(f *ir.Func) funcLive {
	n := len(f.Code)
	nr := f.NumRegs

	leaders := ir.BlockLeaders(f)
	nb := len(leaders)
	blockOf := make([]int, n)
	for b := 0; b < nb; b++ {
		end := n
		if b+1 < nb {
			end = leaders[b+1]
		}
		for pc := leaders[b]; pc < end; pc++ {
			blockOf[pc] = b
		}
	}
	blockEnd := func(b int) int {
		if b+1 < nb {
			return leaders[b+1]
		}
		return n
	}

	// Successor blocks, from each block's final instruction. A block may
	// also end simply because the next pc is a leader (a branch target or
	// a call/ret boundary), in which case it falls through.
	succs := make([][]int, nb)
	preds := make([][]int, nb)
	for b := 0; b < nb; b++ {
		last := &f.Code[blockEnd(b)-1]
		var s []int
		switch last.Op {
		case ir.OpBr:
			s = []int{blockOf[last.Off]}
		case ir.OpCondBr:
			s = []int{blockOf[last.Off]}
			if blockEnd(b) < n {
				s = append(s, blockOf[blockEnd(b)])
			}
		case ir.OpRet, ir.OpAbort:
			// No successors: the frame's register file is discarded (ret
			// hands only its full-width operand to the caller, which the
			// transfer function makes fully live).
		default:
			if blockEnd(b) < n {
				s = []int{blockOf[blockEnd(b)]}
			}
		}
		succs[b] = s
		for _, t := range s {
			preds[t] = append(preds[t], b)
		}
	}

	// Backward worklist over blocks: liveInB[b] is the live set at block
	// entry. Masks only ever grow, so the fixed point terminates.
	liveInB := make([][]uint64, nb)
	for b := range liveInB {
		liveInB[b] = make([]uint64, nr)
	}
	inList := make([]bool, nb)
	list := make([]int, 0, nb)
	for b := nb - 1; b >= 0; b-- {
		list = append(list, b)
		inList[b] = true
	}
	scratch := make([]uint64, nr)
	for len(list) > 0 {
		b := list[len(list)-1]
		list = list[:len(list)-1]
		inList[b] = false

		for r := range scratch {
			scratch[r] = 0
		}
		for _, s := range succs[b] {
			for r, v := range liveInB[s] {
				scratch[r] |= v
			}
		}
		for pc := blockEnd(b) - 1; pc >= leaders[b]; pc-- {
			transfer(&f.Code[pc], scratch)
		}
		changed := false
		cur := liveInB[b]
		for r, v := range scratch {
			if v&^cur[r] != 0 {
				cur[r] |= v
				changed = true
			}
		}
		if changed {
			for _, p := range preds[b] {
				if !inList[p] {
					list = append(list, p)
					inList[p] = true
				}
			}
		}
	}

	// Materialize per-pc live-in sets with one final backward sweep per
	// block, then derive the dead-bit tables at the VM's two injection
	// points.
	flat := make([]uint64, n*nr)
	liveIn := make([][]uint64, n)
	for pc := range liveIn {
		liveIn[pc] = flat[pc*nr : (pc+1)*nr]
	}
	for b := 0; b < nb; b++ {
		for r := range scratch {
			scratch[r] = 0
		}
		for _, s := range succs[b] {
			for r, v := range liveInB[s] {
				scratch[r] |= v
			}
		}
		for pc := blockEnd(b) - 1; pc >= leaders[b]; pc-- {
			transfer(&f.Code[pc], scratch)
			copy(liveIn[pc], scratch)
		}
	}

	deadRead := make([][]uint64, n)
	deadWrite := make([]uint64, n)
	for pc := range f.Code {
		in := &f.Code[pc]
		if nrr := int(in.NR); nrr > 0 {
			dr := make([]uint64, nrr)
			for s := 0; s < nrr; s++ {
				reg := in.ReadSlot(s)
				// The flip lands before pc executes, so pc's own reads of
				// reg (part of liveIn[pc]) are included.
				dr[s] = ^liveIn[pc][reg] & maskOfBits(widthBits(ir.SlotWidth(in, s)))
			}
			deadRead[pc] = dr
		}
		if in.Dst != ir.NoReg && pc+1 < n {
			// The flip lands after the destination write; control then
			// resumes at pc+1 (for calls, the caller resumes there after
			// the matching return writes the result). A validated function
			// ends in ret/br/abort, none of which write a register, so
			// pc+1 is always in range here.
			deadWrite[pc] = ^liveIn[pc+1][in.Dst] & maskOfBits(destWidthBits(in))
		}
	}

	return funcLive{liveIn: liveIn, deadRead: deadRead, deadWrite: deadWrite}
}

// transfer rewrites live (the live-out set of in) into in's live-in set:
// kill the destination's bits, then add the bits each operand's
// observation generates. Gen masks mirror the VM's handler semantics
// exactly; when in doubt they err toward live.
func transfer(in *ir.Instr, live []uint64) {
	const full = ^uint64(0)
	// Kill: every register write stores a full 64-bit value (arithmetic
	// results arrive masked-and-zero-extended, loads zero-extend, calls
	// write the full returned word).
	var liveDst uint64
	if in.Dst != ir.NoReg {
		liveDst = live[in.Dst]
		live[in.Dst] = 0
	}
	gen := func(o ir.Operand, mask uint64) {
		if mask != 0 && o.IsReg() {
			live[o.Reg()] |= mask
		}
	}
	mask := in.W.Mask() // zero for the width-less ops, unused there

	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul:
		// Carries (and borrows, and partial products) propagate strictly
		// upward: operand bit i can only influence result bits >= i.
		g := upToMSB(liveDst & mask)
		gen(in.A, g)
		gen(in.B, g)
	case ir.OpAnd:
		d := liveDst & mask
		ga, gb := d, d
		if in.B.IsImm() {
			ga = d & in.B.Imm() // bits the immediate clears are vacated
		}
		if in.A.IsImm() {
			gb = d & in.A.Imm()
		}
		gen(in.A, ga)
		gen(in.B, gb)
	case ir.OpOr:
		d := liveDst & mask
		ga, gb := d, d
		if in.B.IsImm() {
			ga = d &^ in.B.Imm() // bits the immediate forces to 1 are vacated
		}
		if in.A.IsImm() {
			gb = d &^ in.A.Imm()
		}
		gen(in.A, ga)
		gen(in.B, gb)
	case ir.OpXor:
		d := liveDst & mask
		gen(in.A, d)
		gen(in.B, d)
	case ir.OpShl:
		d := liveDst & mask
		if d == 0 {
			break // shifts cannot trap
		}
		if in.B.IsImm() {
			sh := uint(in.B.Imm()) & uint(in.W.Bits()-1)
			gen(in.A, d>>sh)
		} else {
			gen(in.A, upToMSB(d))
			gen(in.B, uint64(in.W.Bits()-1)) // the handler masks the count
		}
	case ir.OpLShr:
		d := liveDst & mask
		if d == 0 {
			break
		}
		if in.B.IsImm() {
			sh := uint(in.B.Imm()) & uint(in.W.Bits()-1)
			gen(in.A, (d<<sh)&mask)
		} else {
			// Operand bit i reaches result bits <= i, so everything at or
			// above the lowest live result bit matters.
			tz := uint(bits.TrailingZeros64(d))
			gen(in.A, mask&^(1<<tz-1))
			gen(in.B, uint64(in.W.Bits()-1))
		}
	case ir.OpAShr:
		d := liveDst & mask
		if d == 0 {
			break
		}
		sign := uint64(1) << uint(in.W.Bits()-1)
		if in.B.IsImm() {
			sh := uint(in.B.Imm()) & uint(in.W.Bits()-1)
			gen(in.A, (d<<sh)&mask|sign)
		} else {
			gen(in.A, mask)
			gen(in.B, uint64(in.W.Bits()-1))
		}
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		// The zero-divisor (and signed INT_MIN/-1) trap observes the
		// operands even when the quotient is dead.
		gen(in.A, mask)
		gen(in.B, mask)
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		if liveDst != 0 {
			gen(in.A, full)
			gen(in.B, full)
		}
	case ir.OpFNeg, ir.OpFAbs, ir.OpFSqrt:
		if liveDst != 0 {
			gen(in.A, full)
		}
	case ir.OpSExt:
		g := liveDst & mask
		if liveDst>>uint(in.W.Bits()-1) != 0 {
			g |= 1 << uint(in.W.Bits()-1) // the sign bit feeds every high bit
		}
		gen(in.A, g)
	case ir.OpZExt, ir.OpTrunc:
		gen(in.A, liveDst&mask)
	case ir.OpSIToFP:
		if liveDst != 0 {
			gen(in.A, mask)
		}
	case ir.OpFPToSI:
		if liveDst != 0 {
			gen(in.A, full)
		}
	case ir.OpMov, ir.OpBitcast:
		gen(in.A, liveDst)
	case ir.OpICmpEQ, ir.OpICmpNE, ir.OpICmpULT, ir.OpICmpULE, ir.OpICmpSLT, ir.OpICmpSLE:
		if liveDst&1 != 0 {
			gen(in.A, mask)
			gen(in.B, mask)
		}
	case ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE:
		if liveDst&1 != 0 {
			gen(in.A, full)
			gen(in.B, full)
		}
	case ir.OpSelect:
		// The handler tests the full 64-bit condition word against zero.
		if liveDst != 0 {
			gen(in.A, full)
		}
		gen(in.B, liveDst)
		gen(in.C, liveDst)
	case ir.OpLoad:
		gen(in.A, full) // address: trap surface, always observable
	case ir.OpStore:
		gen(in.A, full) // address
		gen(in.B, mask) // the stored bits reach memory
	case ir.OpAlloca:
		// Size is a constant offset; no register reads.
	case ir.OpBr:
	case ir.OpCondBr:
		gen(in.A, full) // the handler tests the full word against zero
	case ir.OpCall:
		// The callee observes each argument at full width; liveness does
		// not cross frames.
		for _, arg := range in.Args {
			gen(arg, full)
		}
	case ir.OpRet:
		gen(in.A, full) // the full word escapes to the caller
	case ir.OpOut:
		gen(in.A, mask) // the low W bytes are output
	case ir.OpAbort:
	default:
		// Unknown opcode: treat every read operand as fully live.
		gen(in.A, full)
		gen(in.B, full)
		gen(in.C, full)
		for _, arg := range in.Args {
			gen(arg, full)
		}
	}
}

// upToMSB returns a mask covering bit 0 through the most significant set
// bit of x (zero for zero).
func upToMSB(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	n := bits.Len64(x)
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}
