package liveness

import (
	"testing"

	"multiflip/internal/ir"
)

// TestMaskedAndVacatesBits is the CRC32 pattern: only the bits an `and`
// immediate keeps are live through it.
func TestMaskedAndVacatesBits(t *testing.T) {
	m := ir.NewModule("t")
	f := m.Func("main", 0)
	v := f.BinW(ir.W64, ir.OpAdd, ir.C(5), ir.C(7)) // pc0
	w := f.BinW(ir.W64, ir.OpAnd, v, ir.C(1))       // pc1
	f.Out64(w)                                      // pc2
	f.RetVoid()                                     // pc3
	p := m.MustBuild()

	a := Analyze(p)
	if got := a.LiveIn(0, 1, v); got != 1 {
		t.Fatalf("liveIn(and pc)[v] = %#x, want 1", got)
	}
	// Write flip on v lands before the and reads it: bits 1..63 are dead.
	if got := a.DeadWriteBits(0, 0); got != ^uint64(1) {
		t.Fatalf("DeadWriteBits(add) = %#x, want %#x", got, ^uint64(1))
	}
	// Read flip on v at the and: same bits.
	if got := a.DeadReadBits(0, 1, 0); got != ^uint64(1) {
		t.Fatalf("DeadReadBits(and, slot 0) = %#x, want %#x", got, ^uint64(1))
	}
	// w feeds a 64-bit out: fully live.
	if got := a.DeadWriteBits(0, 1); got != 0 {
		t.Fatalf("DeadWriteBits(and dst) = %#x, want 0", got)
	}
	// The out's own read slot is fully live.
	if got := a.DeadReadBits(0, 2, 0); got != 0 {
		t.Fatalf("DeadReadBits(out) = %#x, want 0", got)
	}
}

// TestDeadTemporary: a value never observed downstream is fully dead, and
// does not keep its own operands alive.
func TestDeadTemporary(t *testing.T) {
	m := ir.NewModule("t")
	f := m.Func("main", 0)
	v := f.BinW(ir.W64, ir.OpAdd, ir.C(5), ir.C(7)) // pc0
	f.BinW(ir.W64, ir.OpXor, v, ir.C(3))            // pc1: dead temp reading v
	f.RetVoid()                                     // pc2
	p := m.MustBuild()

	a := Analyze(p)
	if got := a.DeadWriteBits(0, 1); got != ^uint64(0) {
		t.Fatalf("DeadWriteBits(dead xor) = %#x, want all-ones", got)
	}
	// v's only reader produces a dead value, so v is dead too.
	if got := a.DeadWriteBits(0, 0); got != ^uint64(0) {
		t.Fatalf("DeadWriteBits(v) = %#x, want all-ones", got)
	}
	if got := a.DeadReadBits(0, 1, 0); got != ^uint64(0) {
		t.Fatalf("DeadReadBits(dead xor, slot 0) = %#x, want all-ones", got)
	}
}

// TestNarrowStoreVacatesHighBits: a byte store observes only the low 8
// bits of the stored register.
func TestNarrowStoreVacatesHighBits(t *testing.T) {
	m := ir.NewModule("t")
	addr := m.GlobalZero(8)
	f := m.Func("main", 0)
	g := f.BinW(ir.W64, ir.OpAdd, ir.C(300), ir.C(1)) // pc0
	f.Store8(ir.C(addr), g, 0)                        // pc1 (addr imm: slot 0 = value)
	f.RetVoid()
	p := m.MustBuild()

	a := Analyze(p)
	if got, want := a.DeadWriteBits(0, 0), ^uint64(0xff); got != want {
		t.Fatalf("DeadWriteBits(g) = %#x, want %#x", got, want)
	}
	// Within the store's 8-bit value slot, every bit reaches memory.
	if got := a.DeadReadBits(0, 1, 0); got != 0 {
		t.Fatalf("DeadReadBits(store value) = %#x, want 0", got)
	}
}

// TestControlAndTrapSurfacesStayLive: branch conditions, addresses and
// divisors are never dead, even when the data result is.
func TestControlAndTrapSurfacesStayLive(t *testing.T) {
	m := ir.NewModule("t")
	addr := m.GlobalZero(16)
	f := m.Func("main", 0)
	v := f.Let(ir.C(9))                         // pc0
	cond := f.CmpW(ir.W64, ir.OpICmpSLT, v, ir.C(10)) // pc1
	exit := f.NewLabel()
	f.JmpIf(cond, exit) // pc2
	f.Out64(v)          // pc3
	f.Bind(exit)
	q := f.BinW(ir.W64, ir.OpUDiv, ir.C(7), v) // pc4: quotient dead, divisor not
	_ = q
	av := f.LoadW(ir.W64, v, int64(addr)) // pc5: v as address, result dead
	_ = av
	f.RetVoid()
	p := m.MustBuild()

	a := Analyze(p)
	// The condbr's condition slot (W1) has its single bit live.
	if got := a.DeadReadBits(0, 2, 0); got != 0 {
		t.Fatalf("DeadReadBits(condbr) = %#x, want 0", got)
	}
	// The divisor slot is fully live despite the dead quotient.
	if got := a.DeadReadBits(0, 4, 0); got != 0 {
		t.Fatalf("DeadReadBits(udiv divisor) = %#x, want 0", got)
	}
	// The load address slot is fully live despite the dead result.
	if got := a.DeadReadBits(0, 5, 0); got != 0 {
		t.Fatalf("DeadReadBits(load addr) = %#x, want 0", got)
	}
	// The dead quotient and dead load result themselves.
	if got := a.DeadWriteBits(0, 4); got != ^uint64(0) {
		t.Fatalf("DeadWriteBits(udiv) = %#x, want all-ones", got)
	}
	if got := a.DeadWriteBits(0, 5); got != ^uint64(0) {
		t.Fatalf("DeadWriteBits(load) = %#x, want all-ones", got)
	}
}

// TestJoinAcrossBranches: liveness joins over both branch arms, so a bit
// observed on either path stays live at the split.
func TestJoinAcrossBranches(t *testing.T) {
	m := ir.NewModule("t")
	f := m.Func("main", 0)
	v := f.Let(ir.C(5)) // pc0
	thenL, end := f.NewLabel(), f.NewLabel()
	f.JmpIf(ir.C(1), thenL) // pc1
	lo := f.BinW(ir.W64, ir.OpAnd, v, ir.C(0xf)) // pc2: else arm sees low nibble
	f.Out64(lo)
	f.Jmp(end)
	f.Bind(thenL)
	f.Out64(v) // then arm sees everything
	f.Bind(end)
	f.RetVoid()
	p := m.MustBuild()

	a := Analyze(p)
	// At the write of v (pc0) both arms are ahead: the then arm keeps all
	// 64 bits live.
	if got := a.DeadWriteBits(0, 0); got != 0 {
		t.Fatalf("DeadWriteBits(v) = %#x, want 0 (then arm reads all bits)", got)
	}
	// At the else arm's and, only the low nibble of v remains live (the
	// then arm is no longer reachable from there).
	if got, want := a.DeadReadBits(0, 2, 0), ^uint64(0xf); got != want {
		t.Fatalf("DeadReadBits(else and) = %#x, want %#x", got, want)
	}
}

// TestLoopBackedge: a register consumed by the next iteration stays live
// through the backedge.
func TestLoopBackedge(t *testing.T) {
	m := ir.NewModule("t")
	f := m.Func("main", 0)
	acc := f.NewReg()
	i := f.NewReg()
	f.Mov(acc, ir.C(0)) // pc0
	f.Mov(i, ir.C(0))   // pc1
	head, exit := f.NewLabel(), f.NewLabel()
	f.Bind(head)
	done := f.CmpW(ir.W64, ir.OpICmpSLE, ir.C(8), i) // pc2
	f.JmpIf(done, exit)                              // pc3
	f.Mov(acc, f.BinW(ir.W64, ir.OpAdd, acc, i))     // pc4 (add), pc5 (mov)
	f.Mov(i, f.BinW(ir.W64, ir.OpAdd, i, ir.C(1)))   // pc6 (add), pc7 (mov)
	f.Jmp(head)                                      // pc8
	f.Bind(exit)
	f.Out64(acc) // pc9
	f.RetVoid()
	p := m.MustBuild()

	a := Analyze(p)
	// acc is live at the loop head: consumed by the body's add and by the
	// out after the exit.
	if got := a.LiveIn(0, 2, acc); got != ^uint64(0) {
		t.Fatalf("liveIn(head)[acc] = %#x, want all-ones", got)
	}
	// i is live at the head too (the comparison reads it).
	if got := a.LiveIn(0, 2, i); got == 0 {
		t.Fatalf("liveIn(head)[i] = 0, want live")
	}
}

// TestCallBoundaries: arguments are fully live at the call, the returned
// value's liveness flows from the caller's continuation, and a ret
// operand is fully live in the callee.
func TestCallBoundaries(t *testing.T) {
	m := ir.NewModule("t")
	g := m.Func("g", 1)
	r := g.BinW(ir.W64, ir.OpAdd, g.Arg(0), ir.C(1)) // g pc0
	g.Ret(r)                                         // g pc1

	f := m.Func("main", 0)
	x := f.Let(ir.C(41))     // main pc0
	y := f.Call("g", x)      // main pc1
	lo := f.BinW(ir.W64, ir.OpAnd, y, ir.C(1)) // main pc2
	f.Out64(lo)              // main pc3
	f.RetVoid()
	p := m.MustBuild()

	mainFn := p.FuncByName("main")
	gFn := p.FuncByName("g")
	a := Analyze(p)
	// The call argument is fully live (the callee observes all 64 bits).
	if got := a.DeadReadBits(mainFn, 1, 0); got != 0 {
		t.Fatalf("DeadReadBits(call arg) = %#x, want 0", got)
	}
	// The call result is observed only through `and 1`: bits 1..63 dead.
	// The VM injects call-result writes at the matching return with full
	// 64-bit width.
	if got, want := a.DeadWriteBits(mainFn, 1), ^uint64(1); got != want {
		t.Fatalf("DeadWriteBits(call) = %#x, want %#x", got, want)
	}
	// Inside g, the ret operand is fully live (it escapes to the caller).
	if got := a.DeadReadBits(gFn, 1, 0); got != 0 {
		t.Fatalf("DeadReadBits(ret operand) = %#x, want 0", got)
	}
}

// TestSextSignBit: a sign extension keeps the source's sign bit live
// whenever any extended bit is observed.
func TestSextSignBit(t *testing.T) {
	m := ir.NewModule("t")
	f := m.Func("main", 0)
	v := f.BinW(ir.W64, ir.OpAdd, ir.C(5), ir.C(2)) // pc0
	s := f.Sext(ir.W8, v)                           // pc1
	hi := f.BinW(ir.W64, ir.OpLShr, s, ir.C(32))    // pc2: observe only high bits
	f.Out64(hi)                                     // pc3
	f.RetVoid()
	p := m.MustBuild()

	a := Analyze(p)
	// Only the sign bit (bit 7) of the sext source is live: the observed
	// bits are all copies of it.
	if got, want := a.DeadWriteBits(0, 0), ^uint64(0x80); got != want {
		t.Fatalf("DeadWriteBits(v) = %#x, want %#x", got, want)
	}
}

// TestShiftVacation: constant shifts relocate liveness exactly.
func TestShiftVacation(t *testing.T) {
	m := ir.NewModule("t")
	f := m.Func("main", 0)
	v := f.BinW(ir.W64, ir.OpAdd, ir.C(5), ir.C(2)) // pc0
	h := f.BinW(ir.W64, ir.OpLShr, v, ir.C(60))     // pc1: top nibble
	f.Out64(h)                                      // pc2
	f.RetVoid()
	p := m.MustBuild()

	a := Analyze(p)
	// Only bits 60..63 of v survive the shift.
	if got, want := a.DeadWriteBits(0, 0), ^(uint64(0xf) << 60); got != want {
		t.Fatalf("DeadWriteBits(v) = %#x, want %#x", got, want)
	}
}

// TestStats: the dead-bit densities add up over a function with known
// dead candidates.
func TestStats(t *testing.T) {
	m := ir.NewModule("t")
	f := m.Func("main", 0)
	v := f.BinW(ir.W64, ir.OpAdd, ir.C(5), ir.C(7)) // 64 write bits, 63 dead
	w := f.BinW(ir.W64, ir.OpAnd, v, ir.C(1))       // read slot: 64 bits, 63 dead; write: 64 bits, 0 dead
	f.Out64(w)                                      // read slot: 64 bits, 0 dead
	f.RetVoid()
	p := m.MustBuild()

	a := Analyze(p)
	st := a.Stats(p)
	if len(st) != 1 {
		t.Fatalf("got %d func stats, want 1", len(st))
	}
	s := st[0]
	if s.ReadBits != 128 || s.DeadRead != 63 {
		t.Fatalf("read bits %d/%d, want 63/128 dead", s.DeadRead, s.ReadBits)
	}
	if s.WriteBits != 128 || s.DeadWrite != 63 {
		t.Fatalf("write bits %d/%d, want 63/128 dead", s.DeadWrite, s.WriteBits)
	}
	if d := s.Density(); d <= 0.4 || d >= 0.6 {
		t.Fatalf("density %v, want ~0.49", d)
	}
	ps := a.ProgStat(p)
	if ps.ReadBits != s.ReadBits || ps.DeadWrite != s.DeadWrite {
		t.Fatalf("ProgStat %+v does not match single-func stats %+v", ps, s)
	}
}
