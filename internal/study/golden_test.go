package study_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multiflip/internal/core"
)

// Golden-output tests for the study package's two largest render surfaces:
// figures.go (every table and figure) and answers.go (the derived
// research-question answers). The study is fully deterministic given
// (seed, N, grid) — campaign results are independent of worker count and
// snapshot configuration, which the differential tests enforce — so the
// rendered text is pinned byte for byte. Regenerate with:
//
//	go test ./internal/study -run TestGolden -update

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s: output diverged from golden file (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenFigures pins the rendered output of every figure and table in
// figures.go over the deterministic tiny study.
func TestGoldenFigures(t *testing.T) {
	s := tiny(t)
	for _, tech := range core.Techniques() {
		suffix := "read"
		if tech == core.InjectOnWrite {
			suffix = "write"
		}
		checkGolden(t, "figure1-"+suffix, s.Figure1(tech).String())
		checkGolden(t, "figure2-"+suffix, s.Figure2(tech).String())
		checkGolden(t, "figure3-"+suffix, s.Figure3(tech).String())
		checkGolden(t, "figure45-"+suffix, s.Figure45(tech).String())
		checkGolden(t, "candidate-composition-"+suffix, s.CandidateComposition(tech).String())
		checkGolden(t, "exception-breakdown-"+suffix, s.ExceptionBreakdown(tech).String())
		checkGolden(t, "bit-position-"+suffix, s.BitPosition(tech).String())
		checkGolden(t, "flip-direction-"+suffix, s.FlipDirection(tech).String())
	}
	checkGolden(t, "table2", s.TableII().String())
	t3, err := s.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table3", t3.String())
	checkGolden(t, "pruning-dividend", s.PruningDividend().String())
	checkGolden(t, "stuckat", s.StuckAtTable().String())
}

// TestDimsSumToFlat guards the dimensional breakdowns independently of
// the pinned bytes: in every campaign of the tiny study the dimensional
// cells must sum, per outcome, to the flat Counts the percentages and
// journal validation derive from.
func TestDimsSumToFlat(t *testing.T) {
	s := tiny(t)
	check := func(name string, tl *core.Tally) {
		t.Helper()
		for o := core.OutcomeBenign; o <= core.OutcomeSDC; o++ {
			dim := 0
			for b := 0; b <= core.UnknownBit; b++ {
				dim += tl.Dims.BitCount(o, b)
			}
			if dim != tl.Count(o) {
				t.Errorf("%s: outcome %s: dims sum %d != flat count %d", name, o, dim, tl.Count(o))
			}
		}
		if tl.Dims.N() != tl.N() {
			t.Errorf("%s: dims N %d != flat N %d", name, tl.Dims.N(), tl.N())
		}
	}
	for _, name := range s.Programs {
		d := s.Data[name]
		for _, tech := range core.Techniques() {
			check(name+"/single", &d.Single[tech].Tally)
			for _, r := range d.Multi[tech] {
				check(name+"/multi", &r.Tally)
			}
		}
		check(name+"/stuckat", &d.StuckAt.Tally)
	}
}

// TestGoldenAnswers pins the rendered research-question answers, both
// without transitions (RQ1-RQ4) and with the §IV-C3 transition study
// (adding RQ5).
func TestGoldenAnswers(t *testing.T) {
	s := tiny(t)
	checkGolden(t, "answers", s.Answers(nil).String())
	trans, err := s.RunTransitions()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "answers-transitions", s.Answers(trans).String())

	// Sanity guards independent of the pinned bytes, so a stale golden
	// cannot hide a structurally broken answer sheet.
	out := s.Answers(trans).String()
	for _, rq := range []string{"RQ1", "RQ2", "RQ3", "RQ4", "RQ5"} {
		if n := strings.Count(out, rq); n != 2 { // one row per technique
			t.Errorf("answers contain %d %s rows, want 2", n, rq)
		}
	}
	if !strings.Contains(out, fmt.Sprintf("max-MBF=%d", 30)) {
		t.Error("RQ1 does not reference the grid's largest max-MBF")
	}
}
