// Package study orchestrates the paper's full experimental design: 182
// fault-injection campaigns per benchmark program (§III-E) — one
// single-bit campaign plus 90 (max-MBF, win-size) multi-bit clusters per
// technique — and regenerates every table and figure of the evaluation
// from the results.
package study

import (
	"fmt"
	"io"
	"sync"

	"multiflip/internal/core"
	"multiflip/internal/prog"
	"multiflip/internal/xrand"
)

// Options configures a study run.
type Options struct {
	// N is the number of experiments per campaign. The paper uses 10,000;
	// smaller values trade confidence-interval width for wall-clock time.
	// Zero selects 500.
	N int
	// Seed drives all campaign sampling; a study is reproducible given
	// (Seed, N, Programs, grid).
	Seed uint64
	// Programs selects benchmark names; empty selects all 15.
	Programs []string
	// MaxMBFs overrides Table I's max-MBF grid (empty = standard).
	MaxMBFs []int
	// WinSizes overrides Table I's win-size grid (empty = standard).
	WinSizes []core.WinSize
	// StuckAtWindow is the hold window of the stuck-at extension
	// campaign run per program alongside the flip grid (zero =
	// core.DefaultStuckWindow).
	StuckAtWindow core.WinSize
	// NoStuckAt skips the stuck-at extension campaigns entirely; the
	// stuck-at table and the EXT answers row are then omitted.
	NoStuckAt bool
	// Workers bounds per-campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// HangFactor scales the hang budget (0 = core.DefaultHangFactor).
	HangFactor uint64
	// NoSnapshots disables golden-run fast-forwarding: every experiment
	// replays its fault-free prefix from instruction 0. Results are
	// bit-identical either way; the knob supports A/B timing and debugging.
	NoSnapshots bool
	// NoConverge disables convergence-gated early termination and the
	// fault-equivalence memo: every experiment runs to completion. Results
	// are bit-identical either way; the knob supports A/B timing and the
	// CI convergence ablation.
	NoConverge bool
	// NoCompile disables the compiled fast tier: event-horizon stretches
	// execute through the token-threaded interpreter instead of the
	// workloads' generated native kernels. Results are bit-identical
	// either way; the knob supports A/B timing and the CI compile
	// ablation.
	NoCompile bool
	// NoLiveness disables the static liveness pruning tier: experiments
	// whose flipped bits are provably dead execute on the VM instead of
	// being classified Benign up front. Results are bit-identical either
	// way modulo the StaticPruned counter; the knob supports A/B timing
	// and the CI liveness ablation.
	NoLiveness bool
	// Classifier judges golden-vs-actual output in every campaign of the
	// study (nil = core.ExactClassifier). Non-default classifiers journal
	// under their own campaign fingerprints.
	Classifier core.Classifier
	// OnFailure decides what happens to an experiment that fails or
	// panics at every supervision tier, in every campaign of the study:
	// core.FailFast (default) aborts, core.Quarantine poisons the
	// experiment and keeps draining (quarantined experiments then render
	// in their own table).
	OnFailure core.FailurePolicy
	// JournalDir, when set, runs every campaign as a durable journaled
	// job under this directory: campaigns checkpoint per shard, a killed
	// study resumes from its last checkpoints (with Resume), and
	// concurrent study processes sharing the directory drain the same
	// campaigns cooperatively. Campaign journals and the cross-campaign
	// fault-equivalence memo are content-addressed, so no coordination
	// beyond the shared directory is needed.
	JournalDir string
	// Resume folds checkpoints already present in JournalDir instead of
	// discarding them. Without it, every campaign starts fresh.
	Resume bool
	// Log, when non-nil, receives one progress line per campaign batch.
	Log io.Writer
}

// service returns the campaign Service for the study's options, or nil
// when no journal directory is configured (campaigns then run on the
// engine's in-memory fast path).
func (o Options) service() *core.Service {
	if o.JournalDir == "" {
		return nil
	}
	return &core.Service{Dir: o.JournalDir, Resume: o.Resume}
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 500
	}
	if len(o.Programs) == 0 {
		o.Programs = prog.Names()
	}
	if len(o.MaxMBFs) == 0 {
		o.MaxMBFs = core.StandardMaxMBF()
	}
	if len(o.WinSizes) == 0 {
		o.WinSizes = core.StandardWinSizes()
	}
	if o.StuckAtWindow == (core.WinSize{}) {
		o.StuckAtWindow = core.Win(core.DefaultStuckWindow)
	}
	return o
}

// ProgData holds one program's campaigns.
type ProgData struct {
	// Target is the prepared workload.
	Target *core.Target
	// Single maps technique -> the single bit-flip campaign (recorded, so
	// the transition study can pin its locations).
	Single map[core.Technique]*core.CampaignResult
	// Multi maps technique -> multi-bit campaigns in grid enumeration
	// order (max-MBF major, win-size minor).
	Multi map[core.Technique][]*core.CampaignResult
	// StuckAt is the stuck-at extension campaign: one register bit held
	// at 0/1 across every read in the configured window.
	StuckAt *core.StuckAtResult
}

// MultiByConfig returns the campaign for a configuration, or nil.
func (d *ProgData) MultiByConfig(tech core.Technique, cfg core.Config) *core.CampaignResult {
	for _, r := range d.Multi[tech] {
		if r.Spec.Config == cfg {
			return r
		}
	}
	return nil
}

// MultiWithWin returns the campaigns matching the predicate on win-size.
func (d *ProgData) MultiWithWin(tech core.Technique, keep func(core.WinSize) bool) []*core.CampaignResult {
	var out []*core.CampaignResult
	for _, r := range d.Multi[tech] {
		if keep(r.Spec.Config.Win) {
			out = append(out, r)
		}
	}
	return out
}

// Study is the complete result set.
type Study struct {
	// Opts echoes the (defaulted) options.
	Opts Options
	// Programs lists program names in Table II order.
	Programs []string
	// Data maps program name -> campaigns.
	Data map[string]*ProgData

	// transOnce memoizes RunTransitions: the §IV-C3 pinned campaigns run
	// at most once per study, no matter how many renderers (markdown,
	// CSV, answers) ask for them.
	transOnce sync.Once
	trans     map[string]map[core.Technique]*TransitionResult
	transErr  error
}

// Run executes the study: for every program and technique, the single
// bit-flip campaign plus the (MaxMBFs x WinSizes) multi-bit grid.
func Run(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	s := &Study{
		Opts:     opts,
		Programs: opts.Programs,
		Data:     make(map[string]*ProgData, len(opts.Programs)),
	}
	for _, name := range opts.Programs {
		d, err := runProgram(opts, name)
		if err != nil {
			return nil, err
		}
		s.Data[name] = d
	}
	return s, nil
}

func runProgram(opts Options, name string) (*ProgData, error) {
	b, err := prog.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("study: build %s: %w", name, err)
	}
	target, err := core.NewTargetOpts(name, p, core.TargetOptions{
		NoSnapshots: opts.NoSnapshots,
		NoConverge:  opts.NoConverge,
		NoCompile:   opts.NoCompile,
		NoLiveness:  opts.NoLiveness,
	})
	if err != nil {
		return nil, err
	}
	d := &ProgData{
		Target: target,
		Single: make(map[core.Technique]*core.CampaignResult, 2),
		Multi:  make(map[core.Technique][]*core.CampaignResult, 2),
	}
	svc := opts.service()
	for _, tech := range core.Techniques() {
		logf(opts.Log, "%s %s: single-bit + %d multi-bit campaigns (n=%d)",
			name, tech, len(opts.MaxMBFs)*len(opts.WinSizes), opts.N)
		single, err := core.RunCampaign(core.CampaignSpec{
			Target:      target,
			Technique:   tech,
			Config:      core.SingleBit(),
			N:           opts.N,
			Seed:        campaignSeed(opts.Seed, name, tech, core.SingleBit()),
			HangFactor:  opts.HangFactor,
			Workers:     opts.Workers,
			Record:      true,
			NoSnapshots: opts.NoSnapshots,
			NoConverge:  opts.NoConverge,
			NoCompile:   opts.NoCompile,
			NoLiveness:  opts.NoLiveness,
			Classifier:  opts.Classifier,
			OnFailure:   opts.OnFailure,
			Service:     svc,
		})
		if err != nil {
			return nil, err
		}
		d.Single[tech] = single
		for _, m := range opts.MaxMBFs {
			for _, w := range opts.WinSizes {
				cfg := core.Config{MaxMBF: m, Win: w}
				res, err := core.RunCampaign(core.CampaignSpec{
					Target:      target,
					Technique:   tech,
					Config:      cfg,
					N:           opts.N,
					Seed:        campaignSeed(opts.Seed, name, tech, cfg),
					HangFactor:  opts.HangFactor,
					Workers:     opts.Workers,
					NoSnapshots: opts.NoSnapshots,
					NoConverge:  opts.NoConverge,
					NoCompile:   opts.NoCompile,
					NoLiveness:  opts.NoLiveness,
					Classifier:  opts.Classifier,
					OnFailure:   opts.OnFailure,
					Service:     svc,
				})
				if err != nil {
					return nil, err
				}
				d.Multi[tech] = append(d.Multi[tech], res)
			}
		}
	}
	if opts.NoStuckAt {
		return d, nil
	}
	// The stuck-at extension rides the same engine: one campaign per
	// program, anchored in the inject-on-read candidate space.
	logf(opts.Log, "%s stuck-at: window %s (n=%d)", name, opts.StuckAtWindow, opts.N)
	stuck, err := core.RunStuckAt(core.StuckAtSpec{
		Target:      target,
		Window:      opts.StuckAtWindow,
		N:           opts.N,
		Seed:        stuckSeed(opts.Seed, name, opts.StuckAtWindow),
		HangFactor:  opts.HangFactor,
		Workers:     opts.Workers,
		NoSnapshots: opts.NoSnapshots,
		NoConverge:  opts.NoConverge,
		NoCompile:   opts.NoCompile,
		Classifier:  opts.Classifier,
		OnFailure:   opts.OnFailure,
		Service:     svc,
	})
	if err != nil {
		return nil, err
	}
	d.StuckAt = stuck
	return d, nil
}

// stuckSeed derives a stable seed per (study seed, program, window) for
// the stuck-at extension, disjoint from the flip campaigns' seeds.
func stuckSeed(seed uint64, name string, win core.WinSize) uint64 {
	h := seed ^ 0x13198a2e03707344 // distinct stream from campaignSeed
	for _, c := range []byte(name) {
		h = h*1099511628211 + uint64(c)
	}
	h ^= uint64(uint32(win.Lo)) << 16
	h ^= uint64(uint32(win.Hi))
	return xrand.SplitMix64(&h)
}

// campaignSeed derives a stable seed per (study seed, program, technique,
// config).
func campaignSeed(seed uint64, name string, tech core.Technique, cfg core.Config) uint64 {
	h := seed ^ 0x243f6a8885a308d3
	for _, c := range []byte(name) {
		h = h*1099511628211 + uint64(c)
	}
	h ^= uint64(tech) << 56
	h ^= uint64(cfg.MaxMBF) << 40
	h ^= uint64(uint32(cfg.Win.Lo)) << 16
	h ^= uint64(uint32(cfg.Win.Hi))
	return xrand.SplitMix64(&h)
}

func logf(w io.Writer, format string, args ...any) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, format+"\n", args...)
}
