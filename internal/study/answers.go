package study

import (
	"fmt"
	"math"

	"multiflip/internal/core"
	"multiflip/internal/report"
	"multiflip/internal/stats"
)

// pessimismTolerance is the slack, in percentage points, within which the
// paper treats two SDC percentages as "almost the same" (§IV-C2 uses one
// percentage point).
const pessimismTolerance = 1.0

// Answers derives the paper's research-question answers (§III-F, §IV)
// from the study data. trans may be nil, in which case RQ5 is omitted.
func (s *Study) Answers(trans map[string]map[core.Technique]*TransitionResult) *report.Table {
	t := &report.Table{
		Title:   "Research-question answers (derived from this study's data)",
		Columns: []string{"question", "technique", "answer"},
	}
	maxMBF := s.Opts.MaxMBFs[len(s.Opts.MaxMBFs)-1]
	for _, tech := range core.Techniques() {
		// RQ1: activated errors before crash at the largest max-MBF.
		hist := make([]int, core.ActivatedCap+1)
		for _, name := range s.Programs {
			for _, r := range s.Data[name].Multi[tech] {
				if r.Spec.Config.MaxMBF != maxMBF {
					continue
				}
				for a, c := range r.CrashActivated {
					hist[a] += c
				}
			}
		}
		under10, total := 0, 0
		for a, c := range hist {
			total += c
			if a <= 10 {
				under10 += c
			}
		}
		t.AddRow("RQ1", tech.String(),
			fmt.Sprintf("%s%% of crashed max-MBF=%d experiments activated at most 10 errors",
				stats.FormatPct(stats.Percent(under10, total)), maxMBF))

		// RQ2: is the single-bit model pessimistic? Noise-aware: the
		// multi-bit peak must exceed the single-bit SDC% by more than the
		// tolerance plus the combined 95% confidence half-widths before we
		// call the single-bit model non-pessimistic.
		pess, nonPess := 0, 0
		worstGap, worstProg := 0.0, ""
		for _, name := range s.Programs {
			d := s.Data[name]
			single := d.Single[tech]
			best := bestMultiCampaign(d, tech)
			if best == nil {
				continue
			}
			gap := best.SDCPct() - single.SDCPct()
			noise := combineCI(single.CI95(core.OutcomeSDC), best.CI95(core.OutcomeSDC))
			if gap <= pessimismTolerance+noise {
				pess++
			} else {
				nonPess++
				if gap > worstGap {
					worstGap, worstProg = gap, name
				}
			}
		}
		rq2 := fmt.Sprintf("single-bit pessimistic (within %.0f pp + CI noise) for %d/%d programs",
			pessimismTolerance, pess, pess+nonPess)
		if nonPess > 0 {
			rq2 += fmt.Sprintf("; largest exceedance %.1f pp (%s)", worstGap, worstProg)
		}
		t.AddRow("RQ2", tech.String(), rq2)

		// RQ3, per the paper's statistic: for how many (program, win-size)
		// pairs does max-MBF <= 3 reach the pair's highest SDC%?
		pairsOK, pairsTotal := 0, 0
		for _, name := range s.Programs {
			d := s.Data[name]
			for _, w := range s.Opts.WinSizes {
				if w.IsZero() {
					continue
				}
				peak, peakCI, small, smallCI := pairPeaks(d, tech, w)
				if peak < 0 {
					continue
				}
				pairsTotal++
				if small >= peak-pessimismTolerance-combineCI(peakCI, smallCI) {
					pairsOK++
				}
			}
		}
		t.AddRow("RQ3", tech.String(),
			fmt.Sprintf("max-MBF <= 3 reaches the highest SDC%% (within %.0f pp + CI noise) for %d/%d program/win-size pairs (%s%%)",
				pessimismTolerance, pairsOK, pairsTotal,
				stats.FormatPct(stats.Percent(pairsOK, pairsTotal))))

		// RQ4: does win-size matter? Mean SDC% range across win-sizes at
		// max-MBF = 2, plus where the best window lies.
		meanRange, lowBest := winSizeEffect(s, tech)
		t.AddRow("RQ4", tech.String(),
			fmt.Sprintf("mean SDC%% spread across win-sizes (max-MBF=2): %.1f pp; best window <5 instr for %d/%d programs",
				meanRange, lowBest, len(s.Programs)))

		// RQ5: transition-based pruning.
		if trans != nil {
			var sumI, sumII, minPrune, maxPrune float64
			minPrune = 101
			for _, name := range s.Programs {
				tr := trans[name][tech]
				sumI += tr.TranI
				sumII += tr.TranII
				if tr.Prunable < minPrune {
					minPrune = tr.Prunable
				}
				if tr.Prunable > maxPrune {
					maxPrune = tr.Prunable
				}
			}
			n := float64(len(s.Programs))
			t.AddRow("RQ5", tech.String(),
				fmt.Sprintf("mean Transition I %.1f%%, mean Transition II %.1f%%; %0.f-%0.f%% of single-bit locations prunable",
					sumI/n, sumII/n, minPrune, maxPrune))
		}
	}

	// EXT: the stuck-at extension — does the persistent model change the
	// picture relative to the single transient flip?
	var stuckSDC, flipSDC, activated float64
	progs := 0
	for _, name := range s.Programs {
		d := s.Data[name]
		if d.StuckAt == nil {
			continue
		}
		progs++
		stuckSDC += d.StuckAt.SDCPct()
		flipSDC += d.Single[core.InjectOnRead].SDCPct()
		activated += float64(d.StuckAt.ActivatedTotal) / float64(d.StuckAt.N())
	}
	if progs > 0 {
		n := float64(progs)
		t.AddRow("EXT", "stuck-at",
			fmt.Sprintf("bit held across a %s-instruction read window: mean SDC %s%% vs single transient flip %s%% (read); mean %.1f value-changing reads per experiment",
				s.Opts.StuckAtWindow, stats.FormatPct(stuckSDC/n), stats.FormatPct(flipSDC/n), activated/n))
	}
	return t
}

// bestMultiCampaign returns the multi-register campaign with the highest
// SDC percentage (the full result, so callers can read its CI).
func bestMultiCampaign(d *ProgData, tech core.Technique) *core.CampaignResult {
	var best *core.CampaignResult
	for _, r := range d.Multi[tech] {
		if r.Spec.Config.Win.IsZero() {
			continue
		}
		if best == nil || r.SDCPct() > best.SDCPct() {
			best = r
		}
	}
	return best
}

// pairPeaks returns, for one (program, win-size) pair: the peak SDC% over
// every max-MBF with its CI, and the peak SDC% restricted to max-MBF <= 3
// with its CI. It returns peak = -1 when the pair has no campaigns.
func pairPeaks(d *ProgData, tech core.Technique, w core.WinSize) (peak, peakCI, small, smallCI float64) {
	peak, small = -1, -1
	for _, r := range d.Multi[tech] {
		cfg := r.Spec.Config
		if cfg.Win != w {
			continue
		}
		sdc := r.SDCPct()
		if sdc > peak {
			peak, peakCI = sdc, r.CI95(core.OutcomeSDC)
		}
		if cfg.MaxMBF <= 3 && sdc > small {
			small, smallCI = sdc, r.CI95(core.OutcomeSDC)
		}
	}
	return peak, peakCI, small, smallCI
}

// combineCI combines two independent 95% half-widths into the half-width
// of their difference.
func combineCI(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}

// winSizeEffect returns the mean SDC% range across win-sizes at
// max-MBF = 2 and the number of programs whose best window is below 5
// dynamic instructions.
func winSizeEffect(s *Study, tech core.Technique) (meanRange float64, lowBest int) {
	for _, name := range s.Programs {
		d := s.Data[name]
		lo, hi := 101.0, -1.0
		for _, r := range d.Multi[tech] {
			cfg := r.Spec.Config
			if cfg.MaxMBF != 2 || cfg.Win.IsZero() {
				continue
			}
			sdc := r.SDCPct()
			if sdc < lo {
				lo = sdc
			}
			if sdc > hi {
				hi = sdc
			}
		}
		if hi >= 0 {
			meanRange += hi - lo
		}
		if best, err := s.BestConfig(name, tech); err == nil && !best.Config.Win.IsRandom() && best.Config.Win.Lo < 5 {
			lowBest++
		}
	}
	if len(s.Programs) > 0 {
		meanRange /= float64(len(s.Programs))
	}
	return meanRange, lowBest
}
