package study

import (
	"fmt"

	"multiflip/internal/analysis"
	"multiflip/internal/core"
	"multiflip/internal/report"
	"multiflip/internal/stats"
)

// TransitionResult holds the §IV-C3 transition study for one program and
// technique: every single-bit experiment re-run under the program's
// worst-case multi-bit configuration, with the first error pinned to the
// single-bit location.
type TransitionResult struct {
	Program string
	Tech    core.Technique
	// Best is the Table III configuration used for the multi-bit reruns.
	Best analysis.ConfigSDC
	// Matrix is the single→multi outcome transition matrix (Fig 6).
	Matrix *analysis.TransitionMatrix
	// TranI is P(multi = SDC | single = Detection) in percent.
	TranI float64
	// TranII is P(multi = SDC | single = Benign) in percent.
	TranII float64
	// Prunable is the share of single-bit locations the pruning excludes
	// (single outcome Detection or SDC) in percent.
	Prunable float64
}

// RunTransitions performs the transition study for every program and
// technique in the study. It reuses the recorded single-bit campaigns and
// runs one pinned multi-bit campaign each. The result is memoized on the
// Study: the first call pays for the campaigns, every later call (e.g. a
// CSV export after the markdown render) returns the same maps.
func (s *Study) RunTransitions() (map[string]map[core.Technique]*TransitionResult, error) {
	s.transOnce.Do(func() {
		s.trans, s.transErr = s.runTransitions()
	})
	return s.trans, s.transErr
}

func (s *Study) runTransitions() (map[string]map[core.Technique]*TransitionResult, error) {
	out := make(map[string]map[core.Technique]*TransitionResult, len(s.Programs))
	for _, name := range s.Programs {
		d := s.Data[name]
		out[name] = make(map[core.Technique]*TransitionResult, 2)
		for _, tech := range core.Techniques() {
			single := d.Single[tech]
			if len(single.Experiments) == 0 {
				return nil, fmt.Errorf("study: %s %s: single-bit campaign has no records", name, tech)
			}
			best, err := s.BestConfig(name, tech)
			if err != nil {
				return nil, err
			}
			logf(s.Opts.Log, "%s %s: transition rerun at %s", name, tech, best.Config)
			pins := make([]core.Pin, len(single.Experiments))
			for i, e := range single.Experiments {
				pins[i] = core.Pin{Cand: e.Cand, Bit: e.Bit}
			}
			pinned, err := core.RunCampaign(core.CampaignSpec{
				Target:      d.Target,
				Technique:   tech,
				Config:      best.Config,
				Seed:        campaignSeed(s.Opts.Seed, name+"/tran", tech, best.Config),
				HangFactor:  s.Opts.HangFactor,
				Workers:     s.Opts.Workers,
				Record:      true,
				Pins:        pins,
				NoSnapshots: s.Opts.NoSnapshots,
				NoConverge:  s.Opts.NoConverge,
				NoCompile:   s.Opts.NoCompile,
				OnFailure:   s.Opts.OnFailure,
				Service:     s.Opts.service(),
			})
			if err != nil {
				return nil, err
			}
			matrix, err := analysis.Transitions(single.Experiments, pinned.Experiments)
			if err != nil {
				return nil, err
			}
			out[name][tech] = &TransitionResult{
				Program:  name,
				Tech:     tech,
				Best:     best,
				Matrix:   matrix,
				TranI:    matrix.TransitionI(),
				TranII:   matrix.TransitionII(),
				Prunable: analysis.PrunableShare(single.Experiments),
			}
		}
	}
	return out, nil
}

// TableIV reproduces Table IV: the likelihood of Transition I
// (Detection→SDC) and Transition II (Benign→SDC) per program and
// technique.
func (s *Study) TableIV(trans map[string]map[core.Technique]*TransitionResult) *report.Table {
	t := &report.Table{
		Title: "Table IV: likelihood of Transition I (Detection->SDC) and Transition II (Benign->SDC)",
		Columns: []string{"program",
			"read Tran. I", "read Tran. II",
			"write Tran. I", "write Tran. II",
			"prunable (read)", "prunable (write)"},
	}
	for _, name := range s.Programs {
		read := trans[name][core.InjectOnRead]
		write := trans[name][core.InjectOnWrite]
		t.AddRow(name,
			stats.FormatPct(read.TranI)+"%", stats.FormatPct(read.TranII)+"%",
			stats.FormatPct(write.TranI)+"%", stats.FormatPct(write.TranII)+"%",
			stats.FormatPct(read.Prunable)+"%", stats.FormatPct(write.Prunable)+"%")
	}
	t.Notes = append(t.Notes,
		"Multi-bit reruns use each program's Table III configuration with the first error pinned to the single-bit location (Fig 6 transitions).",
		"Prunable = share of single-bit experiments ending in Detection or SDC; the §IV-C3 pruning injects only into Benign locations.")
	return t
}
