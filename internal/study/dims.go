package study

// Dimensional breakdowns of the single bit-flip campaigns. The flat
// Table I grid answers "how often does a flip corrupt the output"; the
// dimensional tally (outcome × bit position × flip direction) recorded
// by every campaign additionally answers *which* flips do. These two
// tables render the breakdowns next to the Table I grid: where in the
// word a flip must land to matter, and whether setting a clear bit
// (0→1) differs from clearing a set one (1→0).

import (
	"fmt"
	"strconv"

	"multiflip/internal/core"
	"multiflip/internal/report"
	"multiflip/internal/stats"
)

// bitGroup is one row of the bit-position table: a contiguous range of
// bit indices aggregated together (64 single-bit rows would drown the
// signal; byte-sized groups match how sub-word values pack).
type bitGroup struct {
	label  string
	lo, hi int // inclusive bit range
}

// bitGroups returns the fixed byte-granular grouping plus the
// unknown-position bucket (experiments whose first injection had no
// single bit index).
func bitGroups() []bitGroup {
	gs := make([]bitGroup, 0, 9)
	for lo := 0; lo < 64; lo += 8 {
		gs = append(gs, bitGroup{fmt.Sprintf("%d-%d", lo, lo+7), lo, lo + 7})
	}
	return append(gs, bitGroup{"unknown", core.UnknownBit, core.UnknownBit})
}

// BitPosition renders the single bit-flip campaigns' outcomes by
// first-flip bit index, aggregated over every program, for one
// technique. Low bits of data operands tend to stay Benign or become
// SDCs while high bits of address operands raise exceptions; this table
// makes that gradient measurable.
func (s *Study) BitPosition(tech core.Technique) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Bit position (%s, single-bit): outcomes by first-flip bit index, all programs", tech),
		Columns: []string{"bits", "exps", "Benign%", "Detection%", "SDC%"},
	}
	var dims core.DimTally
	total := 0
	for _, name := range s.Programs {
		r := s.Data[name].Single[tech]
		dims.Merge(&r.Tally.Dims)
		total += r.N()
	}
	for _, g := range bitGroups() {
		exps, benign, det, sdc := 0, 0, 0, 0
		for b := g.lo; b <= g.hi; b++ {
			exps += dims.BitTotal(b)
			benign += dims.BitCount(core.OutcomeBenign, b)
			det += dims.BitCount(core.OutcomeException, b) +
				dims.BitCount(core.OutcomeHang, b) +
				dims.BitCount(core.OutcomeNoOutput, b)
			sdc += dims.BitCount(core.OutcomeSDC, b)
		}
		t.AddRow(g.label, strconv.Itoa(exps),
			stats.FormatPct(stats.Percent(benign, exps)),
			stats.FormatPct(stats.Percent(det, exps)),
			stats.FormatPct(stats.Percent(sdc, exps)))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Aggregated over the %d single bit-flip experiments of all programs; row counts sum to that total.", total),
		"Campaigns draw the bit uniformly from the register's width, so narrow-register programs concentrate in the low groups.")
	return t
}

// FlipDirection renders the single bit-flip campaigns' outcomes split
// by flip direction — 0→1 (a clear bit set) vs 1→0 (a set bit cleared)
// — per program, for one technique. Registers holding small values are
// mostly zeros, so 0→1 flips dominate and tend to corrupt harder.
func (s *Study) FlipDirection(tech core.Technique) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Flip direction (%s, single-bit): outcomes by flip direction", tech),
		Columns: []string{"program",
			"0->1 exps", "0->1 Detection%", "0->1 SDC%",
			"1->0 exps", "1->0 Detection%", "1->0 SDC%"},
	}
	var all core.DimTally
	for _, name := range s.Programs {
		d := &s.Data[name].Single[tech].Tally.Dims
		all.Merge(d)
		t.AddRow(dirRow(name, d)...)
	}
	t.AddRow(dirRow("ALL", &all)...)
	t.Notes = append(t.Notes,
		"Direction comes from the pre-flip bit value; the two columns' experiment counts sum to the campaign size.",
		"0->1 flips outnumber 1->0 on data operands because live registers are mostly zeros above the value's width.")
	return t
}

// dirRow renders one flip-direction table row from a dimensional tally.
func dirRow(label string, d *core.DimTally) []string {
	row := []string{label}
	for _, dir := range []core.FlipDir{core.Dir0to1, core.Dir1to0} {
		exps := d.DirTotal(dir)
		det := d.DirCount(core.OutcomeException, dir) +
			d.DirCount(core.OutcomeHang, dir) +
			d.DirCount(core.OutcomeNoOutput, dir)
		row = append(row, strconv.Itoa(exps),
			stats.FormatPct(stats.Percent(det, exps)),
			stats.FormatPct(stats.Percent(d.DirCount(core.OutcomeSDC, dir), exps)))
	}
	return row
}
