package study

import (
	"fmt"
	"strconv"

	"multiflip/internal/core"
	"multiflip/internal/prog"
	"multiflip/internal/report"
	"multiflip/internal/stats"
)

// The paper fixes two environment properties we had to choose in the
// simulator: the hang watchdog budget (LLFI: 1-2 orders of magnitude over
// fault-free time) and whether unaligned accesses trap. The ablations
// quantify how sensitive the headline metric (single-bit SDC%) is to those
// choices.

// HangFactorAblation runs single-bit campaigns on one program under
// several hang budgets and reports the outcome mix per factor.
func HangFactorAblation(name string, tech core.Technique, n int, seed uint64, factors []uint64) (*report.Table, error) {
	target, err := buildTarget(name)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: hang-budget factor sensitivity (%s, %s, single-bit)", name, tech),
		Columns: []string{"hang factor", "Benign%", "Detection%", "Hang%", "SDC%"},
	}
	for _, factor := range factors {
		res, err := core.RunCampaign(core.CampaignSpec{
			Target:     target,
			Technique:  tech,
			Config:     core.SingleBit(),
			N:          n,
			Seed:       seed,
			HangFactor: factor,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(strconv.FormatUint(factor, 10),
			stats.FormatPct(res.Pct(core.OutcomeBenign)),
			stats.FormatPct(res.DetectionPct()),
			stats.FormatPct(res.Pct(core.OutcomeHang)),
			stats.FormatPct(res.SDCPct()))
	}
	t.Notes = append(t.Notes,
		"The same seed is used for every factor, so rows differ only in how long potential hangs may run.")
	return t, nil
}

// AlignmentAblation compares single-bit campaigns with and without the
// misaligned-access trap on one program.
func AlignmentAblation(name string, tech core.Technique, n int, seed uint64) (*report.Table, error) {
	target, err := buildTarget(name)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: misaligned-access trap (%s, %s, single-bit)", name, tech),
		Columns: []string{"alignment trap", "Benign%", "Detection%", "SDC%"},
	}
	for _, disable := range []bool{false, true} {
		res, err := core.RunCampaign(core.CampaignSpec{
			Target:      target,
			Technique:   tech,
			Config:      core.SingleBit(),
			N:           n,
			Seed:        seed,
			NoAlignTrap: disable,
		})
		if err != nil {
			return nil, err
		}
		label := "on"
		if disable {
			label = "off"
		}
		t.AddRow(label,
			stats.FormatPct(res.Pct(core.OutcomeBenign)),
			stats.FormatPct(res.DetectionPct()),
			stats.FormatPct(res.SDCPct()))
	}
	t.Notes = append(t.Notes,
		"With the trap off, corrupted low address bits silently read/write skewed data instead of raising an exception, shifting Detection toward SDC/Benign.")
	return t, nil
}

// buildTarget builds and profiles a benchmark by name.
func buildTarget(name string) (*core.Target, error) {
	b, err := prog.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return core.NewTarget(name, p)
}
