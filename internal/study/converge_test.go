package study_test

import (
	"os"
	"strings"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/study"
)

// TestEarlyExitTable checks the early-termination report: one row per
// program, six data columns, and — on the tiny grid — a non-zero
// convergence tally somewhere (the single-bit campaigns are dense in
// overwritten-before-read faults).
func TestEarlyExitTable(t *testing.T) {
	s := tiny(t)
	tb := s.EarlyExit()
	if len(tb.Rows) != len(s.Programs) {
		t.Fatalf("early-exit table has %d rows, want %d", len(tb.Rows), len(s.Programs))
	}
	for _, row := range tb.Rows {
		if len(row) != 7 {
			t.Fatalf("early-exit row has %d cells, want 7: %v", len(row), row)
		}
	}
	total := 0
	for _, name := range s.Programs {
		d := s.Data[name]
		for _, tech := range core.Techniques() {
			total += d.Single[tech].Converged
			for _, r := range d.Multi[tech] {
				total += r.Converged
			}
		}
	}
	if total == 0 && os.Getenv("MULTIFLIP_NOCONVERGE") == "" {
		t.Error("no campaign in the tiny study converged any experiment")
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Early termination") {
		t.Error("rendered table misses its title")
	}
}

// TestNoStuckAt checks the stuck-at extension opt-out: no campaigns run
// and neither the stuck-at table nor the EXT answers row is rendered.
func TestNoStuckAt(t *testing.T) {
	opts := tinyOpts()
	opts.Programs = []string{"CRC32"}
	opts.MaxMBFs = []int{2}
	opts.WinSizes = []core.WinSize{core.Win(0), core.Win(1)}
	opts.NoStuckAt = true
	s, err := study.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Data["CRC32"].StuckAt != nil {
		t.Error("NoStuckAt study ran a stuck-at campaign")
	}
	var b strings.Builder
	if err := s.RenderAll(&b, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "stuck-at register faults") {
		t.Error("NoStuckAt study rendered the stuck-at table")
	}
	if strings.Contains(b.String(), "EXT") {
		t.Error("NoStuckAt study rendered the EXT answers row")
	}
}

// TestStudyNoConvergeDifferential runs a reduced study with the
// convergence tier disabled and checks the rendered outcome figures are
// byte-identical to the default study's — the study-level version of the
// campaign differential.
func TestStudyNoConvergeDifferential(t *testing.T) {
	opts := tinyOpts()
	opts.Programs = []string{"CRC32"}
	opts.MaxMBFs = []int{2}
	opts.WinSizes = []core.WinSize{core.Win(0), core.Win(1)}
	on, err := study.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.NoConverge = true
	off, err := study.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range core.Techniques() {
		if got, want := on.Figure1(tech).String(), off.Figure1(tech).String(); got != want {
			t.Errorf("%s: Figure 1 differs between converge and no-converge studies:\n%s\nvs\n%s",
				tech, got, want)
		}
		if got, want := on.Figure2(tech).String(), off.Figure2(tech).String(); got != want {
			t.Errorf("%s: Figure 2 differs between converge and no-converge studies", tech)
		}
	}
	for _, name := range off.Programs {
		d := off.Data[name]
		for _, tech := range core.Techniques() {
			if d.Single[tech].Converged != 0 || d.Single[tech].MemoHits != 0 {
				t.Errorf("%s %s: NoConverge study reported early exits", name, tech)
			}
		}
	}
}
