package study_test

import (
	"strings"
	"sync"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/study"
)

// tinyOpts keeps study tests fast: two small programs, a reduced grid.
func tinyOpts() study.Options {
	return study.Options{
		N:        60,
		Seed:     1,
		Programs: []string{"CRC32", "histo"},
		MaxMBFs:  []int{2, 30},
		WinSizes: []core.WinSize{core.Win(0), core.Win(1), core.WinRange(11, 100)},
	}
}

var (
	tinyOnce  sync.Once
	tinyStudy *study.Study
	tinyErr   error
)

func tiny(t *testing.T) *study.Study {
	t.Helper()
	tinyOnce.Do(func() {
		tinyStudy, tinyErr = study.Run(tinyOpts())
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyStudy
}

func TestRunShape(t *testing.T) {
	s := tiny(t)
	if len(s.Programs) != 2 {
		t.Fatalf("programs = %v", s.Programs)
	}
	for _, name := range s.Programs {
		d := s.Data[name]
		if d == nil {
			t.Fatalf("no data for %s", name)
		}
		if d.StuckAt == nil || d.StuckAt.N() != 60 {
			t.Fatalf("%s: stuck-at extension campaign missing or wrong size", name)
		}
		for _, tech := range core.Techniques() {
			if d.Single[tech] == nil {
				t.Fatalf("%s: no single campaign for %s", name, tech)
			}
			if got, want := len(d.Multi[tech]), 2*3; got != want {
				t.Fatalf("%s %s: %d multi campaigns, want %d", name, tech, got, want)
			}
			if len(d.Single[tech].Experiments) != 60 {
				t.Fatalf("single campaign not recorded")
			}
		}
	}
}

func TestMultiByConfig(t *testing.T) {
	s := tiny(t)
	d := s.Data["CRC32"]
	r := d.MultiByConfig(core.InjectOnRead, core.Config{MaxMBF: 2, Win: core.Win(1)})
	if r == nil {
		t.Fatal("config lookup failed")
	}
	if r.Spec.Config.MaxMBF != 2 {
		t.Fatal("wrong campaign returned")
	}
	if d.MultiByConfig(core.InjectOnRead, core.Config{MaxMBF: 99, Win: core.Win(1)}) != nil {
		t.Fatal("missing config should return nil")
	}
}

func TestTableI(t *testing.T) {
	out := study.TableI().String()
	for _, want := range []string{"m1", "m10", "30", "w1", "w9", "RND(2-10)", "RND(101-1000)", "1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableII(t *testing.T) {
	s := tiny(t)
	out := s.TableII().String()
	for _, want := range []string{"CRC32", "histo", "MiBench", "Parboil"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestFigures(t *testing.T) {
	s := tiny(t)
	for _, tech := range core.Techniques() {
		f1 := s.Figure1(tech).String()
		if !strings.Contains(f1, "CRC32") || !strings.Contains(f1, "SDC") {
			t.Errorf("Figure 1 incomplete:\n%s", f1)
		}
		eb := s.ExceptionBreakdown(tech).String()
		if !strings.Contains(eb, "segfault") || !strings.Contains(eb, "misaligned") {
			t.Errorf("exception breakdown incomplete:\n%s", eb)
		}
		cc := s.CandidateComposition(tech).String()
		if !strings.Contains(cc, "address") || !strings.Contains(cc, "Detection%") {
			t.Errorf("candidate composition incomplete:\n%s", cc)
		}
		f2 := s.Figure2(tech).String()
		if !strings.Contains(f2, "win-size = 0") {
			t.Errorf("Figure 2 incomplete:\n%s", f2)
		}
		f3 := s.Figure3(tech).String()
		if !strings.Contains(f3, "ALL") || !strings.Contains(f3, ">10") {
			t.Errorf("Figure 3 incomplete:\n%s", f3)
		}
	}
	f4 := s.Figure45(core.InjectOnRead).String()
	if !strings.Contains(f4, "Figure 4") || !strings.Contains(f4, "RND(11-100)") {
		t.Errorf("Figure 4 incomplete:\n%s", f4)
	}
	f5 := s.Figure45(core.InjectOnWrite).String()
	if !strings.Contains(f5, "Figure 5") {
		t.Errorf("Figure 5 incomplete:\n%s", f5)
	}
}

func TestTableIIIAndBestConfig(t *testing.T) {
	s := tiny(t)
	tb, err := s.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "CRC32") || !strings.Contains(out, "histo") {
		t.Fatalf("Table III incomplete:\n%s", out)
	}
	best, err := s.BestConfig("CRC32", core.InjectOnRead)
	if err != nil {
		t.Fatal(err)
	}
	if best.Config.Win.IsZero() {
		t.Fatal("Table III must search multi-register (win > 0) campaigns only")
	}
	if best.Config.MaxMBF != 2 && best.Config.MaxMBF != 30 {
		t.Fatalf("best config outside grid: %+v", best.Config)
	}
}

func TestTransitionsAndTableIV(t *testing.T) {
	s := tiny(t)
	trans, err := s.RunTransitions()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range s.Programs {
		for _, tech := range core.Techniques() {
			tr := trans[name][tech]
			if tr == nil {
				t.Fatalf("missing transitions for %s %s", name, tech)
			}
			if tr.Matrix.Total() != s.Opts.N {
				t.Fatalf("%s %s: matrix total = %d, want %d", name, tech, tr.Matrix.Total(), s.Opts.N)
			}
			for _, v := range []float64{tr.TranI, tr.TranII, tr.Prunable} {
				if v < 0 || v > 100 {
					t.Fatalf("percentage out of range: %v", v)
				}
			}
		}
	}
	out := s.TableIV(trans).String()
	if !strings.Contains(out, "Tran. I") || !strings.Contains(out, "CRC32") {
		t.Fatalf("Table IV incomplete:\n%s", out)
	}
	answers := s.Answers(trans).String()
	for _, rq := range []string{"RQ1", "RQ2", "RQ3", "RQ4", "RQ5"} {
		if !strings.Contains(answers, rq) {
			t.Errorf("answers missing %s:\n%s", rq, answers)
		}
	}
}

func TestRenderAll(t *testing.T) {
	s := tiny(t)
	var b strings.Builder
	if err := s.RenderAll(&b, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "Table II", "Figure 1", "Figure 2",
		"Figure 3", "Figure 4", "Figure 5", "Table III", "Pruning dividend",
		"Candidate composition", "Exception breakdown", "stuck-at", "RQ1", "EXT"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
	if strings.Contains(out, "Table IV") {
		t.Error("Table IV rendered without transitions")
	}
}

func TestHangFactorAblation(t *testing.T) {
	tb, err := study.HangFactorAblation("histo", core.InjectOnRead, 60, 3, []uint64{2, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"hang factor", "2", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing %q:\n%s", want, out)
		}
	}
}

func TestAlignmentAblation(t *testing.T) {
	tb, err := study.AlignmentAblation("CRC32", core.InjectOnRead, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "on") || !strings.Contains(out, "off") {
		t.Fatalf("ablation incomplete:\n%s", out)
	}
}

// TestRunTransitionsMemoized pins the transition-study caching: the
// §IV-C3 pinned campaigns run once per study, and every later caller —
// the markdown renderer, the CSV export, the answers table — receives
// the same result maps instead of re-running the grid.
func TestRunTransitionsMemoized(t *testing.T) {
	s := tiny(t)
	first, err := s.RunTransitions()
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.RunTransitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("transition study returned no programs")
	}
	for name, techs := range first {
		for tech, res := range techs {
			if second[name][tech] != res {
				t.Fatalf("%s %s: transition result re-computed instead of memoized", name, tech)
			}
		}
	}
}
