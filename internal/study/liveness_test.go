package study

import (
	"os"
	"strings"
	"testing"
)

// TestLivenessPredictionTable pins the predicted-vs-executed artifact: on
// real workloads the mismatch column is always 0 (every statically
// predicted record equals the executed one field-for-field), and — with
// the tier enabled — at least one row actually predicts something, so
// the table is not vacuously sound.
func TestLivenessPredictionTable(t *testing.T) {
	tb, err := LivenessPredictionTable([]string{"qsort", "CRC32"}, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // 2 programs x 2 techniques
		t.Fatalf("got %d rows, want 4", len(tb.Rows))
	}
	predictedAny := false
	for _, row := range tb.Rows {
		if len(row) != 6 {
			t.Fatalf("row %v has %d cells, want 6", row, len(row))
		}
		predicted, benign, mismatches := row[2], row[4], row[5]
		if mismatches != "0" {
			t.Errorf("%s/%s: %s predicted records disagree with execution", row[0], row[1], mismatches)
		}
		if predicted != benign {
			t.Errorf("%s/%s: predicted %s but only %s executed Benign", row[0], row[1], predicted, benign)
		}
		if predicted != "0" {
			predictedAny = true
		}
	}
	if on := os.Getenv("MULTIFLIP_NOLIVENESS") == ""; on && !predictedAny {
		t.Error("liveness tier is enabled but no row predicted a single experiment")
	}
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Static liveness pruning") {
		t.Error("rendered table is missing its title")
	}
}
