package study

import (
	"fmt"
	"reflect"
	"strconv"

	"multiflip/internal/core"
	"multiflip/internal/report"
	"multiflip/internal/stats"
	"multiflip/internal/xrand"
)

// LivenessPredictionTable confronts the static liveness tier with ground
// truth: for each program and technique it replays the single-bit
// campaign's per-experiment planning, asks the tier which experiments it
// would classify without executing, then runs the same campaign with
// pruning disabled so every one of those experiments actually executes.
// A predicted record that differs from the executed record in any field
// counts as a mismatch; soundness means the last column is always 0.
func LivenessPredictionTable(names []string, n int, seed uint64) (*report.Table, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Static liveness pruning: predicted vs executed outcomes (single-bit, n=%d)", n),
		Columns: []string{
			"program", "technique", "predicted", "predicted%", "executed Benign of predicted", "mismatches",
		},
	}
	for _, name := range names {
		target, err := buildTarget(name)
		if err != nil {
			return nil, err
		}
		for _, tech := range core.Techniques() {
			spec := core.CampaignSpec{
				Target:     target,
				Technique:  tech,
				Config:     core.SingleBit(),
				N:          n,
				Seed:       seed,
				Record:     true,
				NoLiveness: true, // force execution: these are the measured outcomes
			}
			measured, err := core.RunCampaign(spec)
			if err != nil {
				return nil, err
			}
			model := &core.RegisterModel{Spec: &spec}
			var sp core.StaticPredictor = model
			predicted, benign, mismatches := 0, 0, 0
			for idx := uint64(0); idx < uint64(n); idx++ {
				// Replay the engine's per-experiment derivation exactly:
				// private stream from (Seed, idx), then the model's plan.
				rng := xrand.ForExperiment(spec.Seed, idx)
				inj := model.Plan(target, idx, rng)
				exp, ok := sp.PredictStatic(target, &inj)
				if !ok {
					continue
				}
				predicted++
				got := measured.Experiments[idx]
				if got.Outcome == core.OutcomeBenign {
					benign++
				}
				if !reflect.DeepEqual(exp, got) {
					mismatches++
				}
			}
			t.AddRow(name, tech.String(),
				strconv.Itoa(predicted),
				stats.FormatPct(100*float64(predicted)/float64(n)),
				strconv.Itoa(benign),
				strconv.Itoa(mismatches))
		}
	}
	t.Notes = append(t.Notes,
		"Predicted experiments are those the liveness oracle proves Benign from the dead-bit mask alone; the executed column runs them on the VM (NoLiveness) and must agree exactly.",
		"With MULTIFLIP_NOLIVENESS set the oracle is never built and every row predicts 0.")
	return t, nil
}
