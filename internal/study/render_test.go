package study_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSVDir(t *testing.T) {
	s := tiny(t)
	dir := t.TempDir()
	if err := s.WriteCSVDir(dir, false); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 10 {
		t.Fatalf("only %d CSV files written", len(entries))
	}
	var names []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".csv") {
			t.Errorf("non-CSV file %s", e.Name())
		}
		names = append(names, e.Name())
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"table-i.csv", "figure-1", "figure-4", "table-iii"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing CSV %q in %v", want, names)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "table-i.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "m1,2") {
		t.Errorf("table-i.csv content wrong:\n%s", data)
	}
}
