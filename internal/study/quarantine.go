package study

// The quarantine report: when a study runs with core.Quarantine and any
// experiment failed every supervision tier, the poisoned experiments get
// their own table — program, campaign, experiment index, campaign seed
// and the failure itself — so a long study that survived an engine bug
// ends with an actionable repro list instead of a silent gap. A healthy
// study (or one run under FailFast) produces no quarantine rows and the
// table is omitted entirely, keeping study output byte-identical to
// builds that predate the supervision layer.

import (
	"fmt"
	"strconv"
	"strings"

	"multiflip/internal/core"
	"multiflip/internal/report"
)

// quarRow ties one quarantine record to the campaign that produced it.
type quarRow struct {
	prog     string
	campaign string
	rec      core.QuarantineRecord
}

// quarantined collects every quarantine record of the study, in program
// / campaign / experiment order.
func (s *Study) quarantined() []quarRow {
	var rows []quarRow
	add := func(prog, campaign string, recs []core.QuarantineRecord) {
		for _, rec := range recs {
			rows = append(rows, quarRow{prog: prog, campaign: campaign, rec: rec})
		}
	}
	for _, name := range s.Programs {
		d := s.Data[name]
		for _, tech := range core.Techniques() {
			if r := d.Single[tech]; r != nil {
				add(name, fmt.Sprintf("%s single-bit", tech), r.Quarantined)
			}
			for _, r := range d.Multi[tech] {
				add(name, fmt.Sprintf("%s %s", tech, r.Spec.Config), r.Quarantined)
			}
		}
		if d.StuckAt != nil {
			add(name, fmt.Sprintf("stuck-at win=%s", d.StuckAt.Spec.Window), d.StuckAt.Quarantined)
		}
	}
	return rows
}

// QuarantineTable renders the study's poisoned experiments. Callers
// should omit the table when quarantined() is empty (Tables does).
func (s *Study) QuarantineTable(rows []quarRow) *report.Table {
	t := &report.Table{
		Title:   "Quarantined experiments: failed every supervision tier",
		Columns: []string{"program", "campaign", "exp", "seed", "tiers", "failure"},
	}
	for _, row := range rows {
		failure := ""
		if n := len(row.rec.Errs); n > 0 {
			failure = clip(row.rec.Errs[n-1], 80)
		}
		if row.rec.Panic != "" {
			failure = clip(fmt.Sprintf("panic: %s [stack %s]", row.rec.Panic, row.rec.Stack), 80)
		}
		t.AddRow(row.prog, row.campaign,
			strconv.Itoa(row.rec.Index),
			strconv.FormatUint(row.rec.Seed, 10),
			strings.Join(row.rec.Tiers, "->"),
			failure)
	}
	t.Notes = append(t.Notes,
		"Each row is one experiment that failed or panicked at every supervision tier and was poisoned under the Quarantine policy; (seed, exp) pins its full random stream for replay.",
		"Quarantined experiments are tallied as Internal: they say nothing about the workload's resilience, so percentage statistics in campaigns carrying them are lower bounds.")
	return t
}

// clip bounds a table cell, marking the cut.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
