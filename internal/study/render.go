package study

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"multiflip/internal/core"
	"multiflip/internal/report"
)

// Tables regenerates every table and figure of the paper from this study's
// data, in presentation order. When withTransitions is set it also runs
// the §IV-C3 transition campaigns and includes Table IV; otherwise Table
// IV is skipped (it costs one extra pinned campaign per program and
// technique).
func (s *Study) Tables(withTransitions bool) ([]*report.Table, error) {
	tables := []*report.Table{TableI(), s.TableII()}
	for _, tech := range core.Techniques() {
		tables = append(tables, s.Figure1(tech))
	}
	for _, tech := range core.Techniques() {
		tables = append(tables, s.ExceptionBreakdown(tech))
	}
	for _, tech := range core.Techniques() {
		tables = append(tables, s.CandidateComposition(tech))
	}
	for _, tech := range core.Techniques() {
		tables = append(tables, s.Figure2(tech))
	}
	for _, tech := range core.Techniques() {
		tables = append(tables, s.Figure3(tech))
	}
	tables = append(tables, s.Figure45(core.InjectOnRead), s.Figure45(core.InjectOnWrite))
	for _, tech := range core.Techniques() {
		tables = append(tables, s.BitPosition(tech))
	}
	for _, tech := range core.Techniques() {
		tables = append(tables, s.FlipDirection(tech))
	}

	t3, err := s.TableIII()
	if err != nil {
		return nil, err
	}
	tables = append(tables, t3)

	var trans map[string]map[core.Technique]*TransitionResult
	if withTransitions {
		trans, err = s.RunTransitions()
		if err != nil {
			return nil, err
		}
		tables = append(tables, s.TableIV(trans))
	}
	if !s.Opts.NoStuckAt {
		tables = append(tables, s.StuckAtTable())
	}
	tables = append(tables, s.PruningDividend(), s.EarlyExit(), s.Answers(trans))
	// The quarantine table renders only when quarantines happened, so a
	// healthy study's output is byte-identical to builds that predate the
	// supervision layer.
	if rows := s.quarantined(); len(rows) > 0 {
		tables = append(tables, s.QuarantineTable(rows))
	}
	return tables, nil
}

// RenderAll writes every table and figure to w.
func (s *Study) RenderAll(w io.Writer, withTransitions bool) error {
	header := fmt.Sprintf(
		"multiflip study: %d programs x %d campaigns/program, n=%d experiments/campaign, seed=%d\n\n",
		len(s.Programs), 2*(1+len(s.Opts.MaxMBFs)*len(s.Opts.WinSizes)), s.Opts.N, s.Opts.Seed)
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	tables, err := s.Tables(withTransitions)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVDir writes each table as an individual CSV file under dir,
// named after a slug of its title.
func (s *Study) WriteCSVDir(dir string, withTransitions bool) error {
	tables, err := s.Tables(withTransitions)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range tables {
		f, err := os.Create(filepath.Join(dir, slug(t.Title)+".csv"))
		if err != nil {
			return err
		}
		werr := t.CSV(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

// slug converts a table title into a safe file stem.
func slug(title string) string {
	if i := strings.IndexAny(title, ":("); i > 0 {
		// Keep the figure/table designator plus any technique qualifier.
		if j := strings.Index(title, ")"); j > i {
			title = title[:j+1]
		} else {
			title = title[:i]
		}
	}
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
