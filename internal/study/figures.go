package study

import (
	"fmt"
	"strconv"

	"multiflip/internal/analysis"
	"multiflip/internal/core"
	"multiflip/internal/ir"
	"multiflip/internal/prog"
	"multiflip/internal/report"
	"multiflip/internal/stats"
	"multiflip/internal/vm"
)

// TableI reproduces the paper's Table I: the max-MBF and win-size values
// that define the error-space clusters.
func TableI() *report.Table {
	t := &report.Table{
		Title:   "Table I: max-MBF and win-size values",
		Columns: []string{"max-MBF index", "max-MBF value", "win-size index", "win-size value"},
	}
	ms := core.StandardMaxMBF()
	ws := core.StandardWinSizes()
	rows := len(ms)
	if len(ws) > rows {
		rows = len(ws)
	}
	for i := 0; i < rows; i++ {
		mIdx, mVal, wIdx, wVal := "", "", "", ""
		if i < len(ms) {
			mIdx, mVal = fmt.Sprintf("m%d", i+1), strconv.Itoa(ms[i])
		}
		if i < len(ws) {
			wIdx, wVal = fmt.Sprintf("w%d", i+1), ws[i].String()
		}
		t.AddRow(mIdx, mVal, wIdx, wVal)
	}
	return t
}

// TableII reproduces Table II: the benchmark programs with their
// candidate-instruction counts for both techniques.
func (s *Study) TableII() *report.Table {
	t := &report.Table{
		Title: "Table II: selected benchmark programs",
		Columns: []string{"program", "suite", "package",
			"inject-on-read candidates", "inject-on-write candidates", "description"},
	}
	for _, name := range s.Programs {
		d := s.Data[name]
		b, err := prog.ByName(name)
		if err != nil {
			continue
		}
		t.AddRow(name, b.Suite, b.Package,
			strconv.FormatUint(d.Target.ReadCands, 10),
			strconv.FormatUint(d.Target.WriteCands, 10),
			b.Desc)
	}
	t.Notes = append(t.Notes,
		"Candidate counts come from this repository's IR profile; the paper's counts reflect LLVM IR of the C sources.",
		"Inject-on-read exceeds inject-on-write everywhere because stores and branches have no destination register.")
	return t
}

// Figure1 reproduces Fig 1 for one technique: the outcome classification
// of the single bit-flip campaigns with 95% confidence intervals.
func (s *Study) Figure1(tech core.Technique) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Figure 1 (%s): single bit-flip outcome classification (%%)", tech),
		Columns: []string{"program", "Benign", "HWException", "Hang",
			"NoOutput", "Detection", "SDC"},
	}
	for _, name := range s.Programs {
		r := s.Data[name].Single[tech]
		n := r.N()
		cell := func(o core.Outcome) string {
			return stats.FormatPctCI(r.Pct(o), stats.NormalCI95(r.Count(o), n))
		}
		det := r.Count(core.OutcomeException) + r.Count(core.OutcomeHang) + r.Count(core.OutcomeNoOutput)
		t.AddRow(name,
			cell(core.OutcomeBenign),
			cell(core.OutcomeException),
			cell(core.OutcomeHang),
			cell(core.OutcomeNoOutput),
			stats.FormatPctCI(r.DetectionPct(), stats.NormalCI95(det, n)),
			cell(core.OutcomeSDC))
	}
	t.Notes = append(t.Notes, "Detection = HWException + Hang + NoOutput; error bars are 95% confidence intervals.")
	return t
}

// Figure2 reproduces Fig 2 for one technique: SDC percentage when all
// flips land in the same register (win-size = 0), for max-MBF from 1 (the
// single-bit model) to 30.
func (s *Study) Figure2(tech core.Technique) *report.Table {
	cols := []string{"program", "1"}
	for _, m := range s.Opts.MaxMBFs {
		cols = append(cols, strconv.Itoa(m))
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 2 (%s): SDC%% for multiple flips of the same register (win-size = 0)", tech),
		Columns: cols,
	}
	for _, name := range s.Programs {
		d := s.Data[name]
		row := []string{name, stats.FormatPct(d.Single[tech].SDCPct())}
		for _, m := range s.Opts.MaxMBFs {
			r := d.MultiByConfig(tech, core.Config{MaxMBF: m, Win: core.Win(0)})
			if r == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, stats.FormatPct(r.SDCPct()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "Column headers are max-MBF; the leftmost data column is the single bit-flip model.")
	return t
}

// Figure3 reproduces Fig 3 for one technique: the distribution of
// activated errors before a crash when attempting max-MBF = 30, over all
// win-size values.
func (s *Study) Figure3(tech core.Technique) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 3 (%s): activated errors before crash, max-MBF = 30 (%% of crashed experiments)", tech),
		Columns: []string{"program", "1-5", "6-10", ">10"},
	}
	maxMBF := s.Opts.MaxMBFs[len(s.Opts.MaxMBFs)-1]
	var all []*core.CampaignResult
	for _, name := range s.Programs {
		d := s.Data[name]
		var rs []*core.CampaignResult
		for _, r := range d.Multi[tech] {
			if r.Spec.Config.MaxMBF == maxMBF {
				rs = append(rs, r)
			}
		}
		all = append(all, rs...)
		shares := analysis.ActivationShares(rs...)
		t.AddRow(name, stats.FormatPct(shares[0]), stats.FormatPct(shares[1]), stats.FormatPct(shares[2]))
	}
	total := analysis.ActivationShares(all...)
	t.AddRow("ALL", stats.FormatPct(total[0]), stats.FormatPct(total[1]), stats.FormatPct(total[2]))
	t.Notes = append(t.Notes,
		fmt.Sprintf("Aggregated over every win-size cluster with max-MBF = %d; crashed = hardware-exception outcomes.", maxMBF))
	return t
}

// Figure45 reproduces Fig 4 (inject-on-read) or Fig 5 (inject-on-write):
// the SDC percentage over the multi-register grid. Rows are (program,
// win-size) pairs; columns run from the single-bit model over every
// max-MBF value.
func (s *Study) Figure45(tech core.Technique) *report.Table {
	figure := "Figure 4"
	if tech == core.InjectOnWrite {
		figure = "Figure 5"
	}
	cols := []string{"program", "win-size", "1"}
	for _, m := range s.Opts.MaxMBFs {
		cols = append(cols, strconv.Itoa(m))
	}
	t := &report.Table{
		Title:   fmt.Sprintf("%s (%s): SDC%% for flips of multiple registers", figure, tech),
		Columns: cols,
	}
	for _, name := range s.Programs {
		d := s.Data[name]
		single := stats.FormatPct(d.Single[tech].SDCPct())
		for _, w := range s.Opts.WinSizes {
			if w.IsZero() {
				continue
			}
			row := []string{name, w.String(), single}
			for _, m := range s.Opts.MaxMBFs {
				r := d.MultiByConfig(tech, core.Config{MaxMBF: m, Win: w})
				if r == nil {
					row = append(row, "-")
					continue
				}
				row = append(row, stats.FormatPct(r.SDCPct()))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes, "Column headers are max-MBF; column 1 repeats the single bit-flip model per program.")
	return t
}

// CandidateComposition renders the data-type decomposition of each
// program's candidate space next to its single-bit Detection and SDC
// rates. The paper explains outcome differences through exactly this mix:
// address-operand-heavy programs raise more hardware exceptions, while
// data-operand-heavy programs convert errors into SDCs (§IV-A).
func (s *Study) CandidateComposition(tech core.Technique) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Candidate composition (%s): %% of candidate slots by carried data type", tech),
		Columns: []string{"program", "address", "data", "control", "float",
			"other", "Detection%", "SDC%"},
	}
	roles := []ir.SlotRole{ir.RoleAddress, ir.RoleData, ir.RoleControl,
		ir.RoleFloat, ir.RoleOther}
	for _, name := range s.Programs {
		d := s.Data[name]
		counts := d.Target.Roles(tech)
		total := uint64(0)
		for _, c := range counts {
			total += c
		}
		row := []string{name}
		for _, role := range roles {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(counts[role]) / float64(total)
			}
			row = append(row, stats.FormatPct(pct))
		}
		single := d.Single[tech]
		row = append(row,
			stats.FormatPct(single.DetectionPct()),
			stats.FormatPct(single.SDCPct()))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"Address shares predict Detection; data/float shares predict Benign+SDC (the paper's §IV-A reasoning made measurable).")
	return t
}

// ExceptionBreakdown renders the composition of the single bit-flip
// campaigns' "Detected by Hardware Exception" category per trap kind,
// matching the paper's enumeration of exception classes (§III-E).
func (s *Study) ExceptionBreakdown(tech core.Technique) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Exception breakdown (%s, single-bit): %% of all experiments per trap kind", tech),
		Columns: []string{"program", "segfault", "misaligned", "arithmetic",
			"abort", "stack-overflow"},
	}
	kinds := []vm.TrapKind{vm.TrapSegfault, vm.TrapMisaligned,
		vm.TrapArithmetic, vm.TrapAbort, vm.TrapStackOverflow}
	for _, name := range s.Programs {
		r := s.Data[name].Single[tech]
		row := []string{name}
		for _, k := range kinds {
			row = append(row, stats.FormatPct(stats.Percent(r.TrapCounts[k], r.N())))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"Segmentation faults dominate, as in the paper: corrupted addresses land outside mapped segments.")
	return t
}

// BestConfig returns Table III's entry for one program and technique: the
// multi-register configuration (win-size > 0) with the highest SDC
// percentage.
func (s *Study) BestConfig(name string, tech core.Technique) (analysis.ConfigSDC, error) {
	d, ok := s.Data[name]
	if !ok {
		return analysis.ConfigSDC{}, fmt.Errorf("study: unknown program %q", name)
	}
	multi := d.MultiWithWin(tech, func(w core.WinSize) bool { return !w.IsZero() })
	return analysis.HighestSDC(multi)
}

// EarlyExit reports the convergence/memo early-termination dividend
// alongside Table I's grid: per program and technique, how many of the
// grid's experiments the runner terminated at a golden-convergence
// boundary and how many it resolved from the fault-equivalence memo,
// without executing their post-injection tails.
func (s *Study) EarlyExit() *report.Table {
	t := &report.Table{
		Title: "Early termination: golden-convergence and fault-equivalence memo rates over the Table I grid",
		Columns: []string{"program",
			"read exps", "read conv%", "read memo%",
			"write exps", "write conv%", "write memo%"},
	}
	for _, name := range s.Programs {
		d := s.Data[name]
		row := []string{name}
		for _, tech := range core.Techniques() {
			n, conv, memo := 0, 0, 0
			add := func(r *core.CampaignResult) {
				if r == nil {
					return
				}
				n += r.N()
				conv += r.Converged
				memo += r.MemoHits
			}
			add(d.Single[tech])
			for _, r := range d.Multi[tech] {
				add(r)
			}
			row = append(row, strconv.Itoa(n),
				stats.FormatPct(stats.Percent(conv, n)),
				stats.FormatPct(stats.Percent(memo, n)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"conv% = experiments whose injected state reconverged bit-identically with the golden run and terminated with its outcome.",
		"memo% = experiments whose post-injection state matched an earlier experiment's, reusing its recorded outcome.",
		"The conv/memo split (never the outcomes) can shift with worker scheduling: a fault-equivalent twin either hits the memo or reconverges on its own.")
	return t
}

// StuckAtTable renders the stuck-at extension: the outcome
// classification of the per-program stuck-at campaigns (one register bit
// held at 0/1 across every read in the configured window) with the
// single-bit transient flip campaign's SDC% alongside, so the persistent
// and transient models compare directly.
func (s *Study) StuckAtTable() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Extension: stuck-at register faults (bit held across a %s-instruction read window)",
			s.Opts.StuckAtWindow),
		Columns: []string{"program", "Benign", "HWException", "Hang", "NoOutput",
			"Detection", "SDC", "flip SDC (read)", "mean activated"},
	}
	for _, name := range s.Programs {
		d := s.Data[name]
		r := d.StuckAt
		if r == nil {
			continue
		}
		n := r.N()
		cell := func(o core.Outcome) string {
			return stats.FormatPctCI(r.Pct(o), stats.NormalCI95(r.Count(o), n))
		}
		det := r.Count(core.OutcomeException) + r.Count(core.OutcomeHang) + r.Count(core.OutcomeNoOutput)
		t.AddRow(name,
			cell(core.OutcomeBenign),
			cell(core.OutcomeException),
			cell(core.OutcomeHang),
			cell(core.OutcomeNoOutput),
			stats.FormatPctCI(r.DetectionPct(), stats.NormalCI95(det, n)),
			cell(core.OutcomeSDC),
			stats.FormatPct(d.Single[core.InjectOnRead].SDCPct()),
			fmt.Sprintf("%.2f", float64(r.ActivatedTotal)/float64(n)))
	}
	t.Notes = append(t.Notes,
		"Stuck-at faults are persistent: the bit is re-forced at every read in the window, so a rewrite does not clear the error as it does for transient flips.",
		"Activation counts value-changing reads; zero-activation experiments (the bit already held the stuck value) are Benign by construction.")
	return t
}

// PruningDividend renders the combined effect of the paper's three
// error-space pruning layers (§V): the fraction of the multi-bit
// experiment space that still needs injections per program and technique,
// and the resulting reduction factor.
func (s *Study) PruningDividend() *report.Table {
	const keepMaxMBF = 3 // the paper's RQ3 bound
	t := &report.Table{
		Title: "Pruning dividend: remaining fraction of the multi-bit error space after layers 1-3",
		Columns: []string{"program",
			"read benign%", "read remaining", "read reduction",
			"write benign%", "write remaining", "write reduction"},
	}
	for _, name := range s.Programs {
		d := s.Data[name]
		row := []string{name}
		for _, tech := range core.Techniques() {
			sv := analysis.ComputeSavings(d.Single[tech].Experiments, s.Opts.MaxMBFs, keepMaxMBF)
			row = append(row,
				stats.FormatPct(100*sv.BenignShare),
				fmt.Sprintf("%.3f", sv.Combined),
				fmt.Sprintf("%.0fx", sv.ReductionFactor()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Layers 1+2 keep max-MBF <= %d of the %d-value grid; layer 3 keeps only single-bit-Benign first locations (RQ5).", keepMaxMBF, len(s.Opts.MaxMBFs)),
		"Remaining = kept-grid fraction x Benign location share; reduction = 1/remaining.")
	return t
}

// TableIII reproduces Table III: the (max-MBF, win-size) pair with the
// highest SDC percentage per program and technique, among multi-register
// campaigns.
func (s *Study) TableIII() (*report.Table, error) {
	t := &report.Table{
		Title: "Table III: configurations with the highest SDC percentages among multi-register campaigns",
		Columns: []string{"program",
			"read max-MBF", "read win-size", "read SDC%",
			"write max-MBF", "write win-size", "write SDC%"},
	}
	for _, name := range s.Programs {
		read, err := s.BestConfig(name, core.InjectOnRead)
		if err != nil {
			return nil, err
		}
		write, err := s.BestConfig(name, core.InjectOnWrite)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			strconv.Itoa(read.Config.MaxMBF), read.Config.Win.String(), stats.FormatPct(read.SDCPct),
			strconv.Itoa(write.Config.MaxMBF), write.Config.Win.String(), stats.FormatPct(write.SDCPct))
	}
	return t, nil
}
