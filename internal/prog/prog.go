// Package prog implements the paper's 15-program workload suite (Table II)
// in the multiflip IR: 11 MiBench programs (automotive, telecomm, network,
// security, office) and 4 Parboil programs (base, cpu).
//
// Each program is hand-written against the ir builder DSL and verified,
// in tests, against a native-Go reference implementation executing the
// same algorithm on the same deterministic input (CRC32 against
// hash/crc32, sha against crypto/sha1, qsort against sort, and so on).
// Inputs are synthetic but deterministic, sized so that a fault-free run
// executes on the order of 10^4 dynamic instructions — small enough that a
// 10,000-experiment campaign is laptop-feasible, large enough to keep each
// program's characteristic mix of address and data computation.
package prog

import (
	"fmt"

	"multiflip/internal/ir"
	"multiflip/internal/xrand"
)

// Suite names.
const (
	SuiteMiBench = "MiBench"
	SuiteParboil = "Parboil"
)

// Benchmark describes one workload.
type Benchmark struct {
	// Name matches the paper's Table II program name.
	Name string
	// Suite is MiBench or Parboil.
	Suite string
	// Package is the suite sub-package (automotive, telecomm, ...).
	Package string
	// Desc is the one-line description from Table II.
	Desc string
	// Build constructs the program with its input baked into the global
	// segment. Building is deterministic.
	Build func() (*ir.Program, error)
}

// All returns the 15 benchmarks in the paper's Table II order.
func All() []Benchmark {
	return []Benchmark{
		{
			Name: "basicmath", Suite: SuiteMiBench, Package: "automotive",
			Desc:  "Cubic equation roots, integer square roots and angle conversions over constant sets.",
			Build: buildBasicmath,
		},
		{
			Name: "qsort", Suite: SuiteMiBench, Package: "automotive",
			Desc:  "Quick Sort of a word list.",
			Build: buildQsort,
		},
		{
			Name: "susan_corners", Suite: SuiteMiBench, Package: "automotive",
			Desc:  "Finds corners of a black & white image of a rectangle.",
			Build: buildSusanCorners,
		},
		{
			Name: "susan_edges", Suite: SuiteMiBench, Package: "automotive",
			Desc:  "Finds edges of a black & white image of a rectangle.",
			Build: buildSusanEdges,
		},
		{
			Name: "susan_smoothing", Suite: SuiteMiBench, Package: "automotive",
			Desc:  "Smooths a black & white image of a rectangle.",
			Build: buildSusanSmoothing,
		},
		{
			Name: "FFT", Suite: SuiteMiBench, Package: "telecomm",
			Desc:  "Fast Fourier Transform on an array of data.",
			Build: buildFFT,
		},
		{
			Name: "IFFT", Suite: SuiteMiBench, Package: "telecomm",
			Desc:  "Inverse FFT on a spectrum array.",
			Build: buildIFFT,
		},
		{
			Name: "CRC32", Suite: SuiteMiBench, Package: "telecomm",
			Desc:  "32-bit Cyclic Redundancy Check over a data buffer.",
			Build: buildCRC32,
		},
		{
			Name: "dijkstra", Suite: SuiteMiBench, Package: "network",
			Desc:  "Shortest paths between node pairs of an adjacency-matrix graph.",
			Build: buildDijkstra,
		},
		{
			Name: "sha", Suite: SuiteMiBench, Package: "security",
			Desc:  "SHA-1, generating a 160-bit digest of a message buffer.",
			Build: buildSHA,
		},
		{
			Name: "stringsearch", Suite: SuiteMiBench, Package: "office",
			Desc:  "Case-insensitive word search in phrases.",
			Build: buildStringsearch,
		},
		{
			Name: "bfs", Suite: SuiteParboil, Package: "base",
			Desc:  "Breadth-first shortest-path costs from a single node of an irregular graph.",
			Build: buildBFS,
		},
		{
			Name: "histo", Suite: SuiteParboil, Package: "base",
			Desc:  "2-D saturating histogram with a maximum bin count of 255.",
			Build: buildHisto,
		},
		{
			Name: "sad", Suite: SuiteParboil, Package: "cpu",
			Desc:  "Sum of absolute differences over macroblocks of an image pair.",
			Build: buildSAD,
		},
		{
			Name: "spmv", Suite: SuiteParboil, Package: "cpu",
			Desc:  "Product of a sparse matrix with a dense vector.",
			Build: buildSPMV,
		},
	}
}

// SuiteSynthetic marks workloads beyond the paper's Table II suite.
const SuiteSynthetic = "synthetic"

// Extras returns named workloads beyond Table II. They are addressable
// through ByName — campaigns, the study grid (-progs megapixel) and the
// benchmarks can target them — but stay out of All() and Names(), so the
// default 15-program study and the Table II renderers are unchanged.
func Extras() []Benchmark {
	return []Benchmark{
		{
			Name: "megapixel", Suite: SuiteSynthetic, Package: "image",
			Desc:  "1 MiB image fill + neighbour-mix filter + sparse checksum over 2^17 global words.",
			Build: buildMegapixel,
		},
	}
}

// ByName returns the benchmark with the given name: the Table II suite
// first, then the named extras.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range Extras() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("prog: unknown benchmark %q", name)
}

// Names returns the Table II benchmark names in paper order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// inputRand returns the deterministic input-generation stream for a
// program. Inputs never change across builds.
func inputRand(program string) *xrand.Rand {
	seed := uint64(0x5eed_1234_abcd_0000)
	for _, c := range []byte(program) {
		seed = seed*131 + uint64(c)
	}
	return xrand.New(seed)
}
