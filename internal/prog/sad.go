package prog

import (
	"multiflip/internal/ir"
)

// SAD workload dimensions: sum-of-absolute-differences block matching of
// sadDim x sadDim frames with sadBlk x sadBlk macroblocks and a search
// range of ±sadRange pixels.
const (
	sadDim   = 16
	sadBlk   = 4
	sadRange = 1
)

// sadFrames returns the deterministic current and reference frames. The
// reference frame is the current frame shifted with noise, so block
// matching has real structure.
func sadFrames() (cur, ref []byte) {
	r := inputRand("sad")
	cur = make([]byte, sadDim*sadDim)
	for i := range cur {
		cur[i] = byte(r.Intn(256))
	}
	ref = make([]byte, sadDim*sadDim)
	for y := 0; y < sadDim; y++ {
		for x := 0; x < sadDim; x++ {
			sx, sy := x-1, y
			if sx < 0 {
				sx = 0
			}
			v := int(cur[sy*sadDim+sx]) + r.Intn(9) - 4
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			ref[y*sadDim+x] = byte(v)
		}
	}
	return cur, ref
}

// buildSAD constructs the block-matching kernel: for every macroblock of
// the current frame it scans the ±sadRange search window in the reference
// frame, computes each candidate's sum of absolute differences, and emits
// the best SAD and its encoded motion vector.
func buildSAD() (*ir.Program, error) {
	cur, ref := sadFrames()
	mb := ir.NewModule("sad")
	gCur := mb.GlobalBytes(cur)
	gRef := mb.GlobalBytes(ref)

	f := mb.Func("main", 0)
	nb := sadDim / sadBlk
	f.For(ir.C(0), ir.C(uint64(nb)), func(by ir.Reg) {
		f.For(ir.C(0), ir.C(uint64(nb)), func(bx ir.Reg) {
			baseY := f.Mul(by, ir.C(sadBlk))
			baseX := f.Mul(bx, ir.C(sadBlk))
			best := f.Let(ir.C(0x7FFFFFFF))
			bestMV := f.Let(ir.C(0))
			f.For(ir.CI(-sadRange), ir.C(sadRange+1), func(dy ir.Reg) {
				f.For(ir.CI(-sadRange), ir.C(sadRange+1), func(dx ir.Reg) {
					// Candidate block origin in the reference frame.
					oy := f.Add(baseY, dy)
					ox := f.Add(baseX, dx)
					inY := f.And(f.Sge(oy, ir.C(0)), f.Sle(oy, ir.C(sadDim-sadBlk)))
					inX := f.And(f.Sge(ox, ir.C(0)), f.Sle(ox, ir.C(sadDim-sadBlk)))
					f.If(f.And(inY, inX), func() {
						sum := f.Let(ir.C(0))
						f.For(ir.C(0), ir.C(sadBlk), func(py ir.Reg) {
							rowC := f.Mul(f.Add(baseY, py), ir.C(sadDim))
							rowR := f.Mul(f.Add(oy, py), ir.C(sadDim))
							f.For(ir.C(0), ir.C(sadBlk), func(px ir.Reg) {
								a := f.Load8(f.Idx(ir.C(gCur), f.Add(rowC, f.Add(baseX, px)), 1), 0)
								b := f.Load8(f.Idx(ir.C(gRef), f.Add(rowR, f.Add(ox, px)), 1), 0)
								d := f.Sub(a, b)
								abs := f.Select(f.Slt(d, ir.C(0)), f.Sub(ir.C(0), d), d)
								f.Mov(sum, f.Add(sum, abs))
							})
						})
						f.If(f.Slt(sum, best), func() {
							f.Mov(best, sum)
							// Encode motion vector as (dy+range)*W + (dx+range).
							mv := f.Add(
								f.Mul(f.Add(dy, ir.C(sadRange)), ir.C(2*sadRange+1)),
								f.Add(dx, ir.C(sadRange)))
							f.Mov(bestMV, mv)
						})
					})
				})
			})
			f.Out32(best)
			f.Out32(bestMV)
		})
	})
	f.RetVoid()
	return mb.Build()
}
