package prog

import (
	"math"

	"multiflip/internal/ir"
)

// Susan workload dimensions: a susanDim x susanDim grayscale image scanned
// with a 5x5 mask (border of 2 skipped), per MiBench's susan in its three
// modes.
const (
	susanDim     = 16
	susanBorder  = 2
	susanBright  = 20       // brightness-similarity threshold t
	susanMaxUSAN = 25 * 100 // mask area x full LUT weight
	susanEdgeG   = susanMaxUSAN * 3 / 4
	susanCornerG = susanMaxUSAN / 2
)

// susanImage returns the deterministic test image: a dark rectangle on a
// light background with mild noise.
func susanImage() []byte {
	r := inputRand("susan")
	img := make([]byte, susanDim*susanDim)
	for y := 0; y < susanDim; y++ {
		for x := 0; x < susanDim; x++ {
			v := 200
			if y >= 4 && y < 12 && x >= 4 && x < 12 {
				v = 50
			}
			v += r.Intn(7) - 3
			img[y*susanDim+x] = byte(v)
		}
	}
	return img
}

// susanLUT returns the brightness-similarity lookup table indexed by
// |difference| (0..255): w = round(100 * exp(-(d/t)^6)), as in susan's
// setup_brightness_lut.
func susanLUT() []byte {
	lut := make([]byte, 256)
	for d := range lut {
		e := math.Pow(float64(d)/susanBright, 6)
		lut[d] = byte(math.Round(100 * math.Exp(-e)))
	}
	return lut
}

// emitUSAN emits code computing the USAN value (sum of LUT-weighted
// brightness similarities over the 5x5 mask) of pixel (cx, cy); result in
// the returned register.
func emitUSAN(f *ir.FuncBuilder, gImg, gLUT uint64, cx, cy ir.Reg) ir.Reg {
	center := f.Load8(f.Idx(ir.C(gImg), f.Add(f.Mul(cy, ir.C(susanDim)), cx), 1), 0)
	usan := f.Let(ir.C(0))
	f.For(ir.CI(-susanBorder), ir.C(susanBorder+1), func(dy ir.Reg) {
		row := f.Mul(f.Add(cy, dy), ir.C(susanDim))
		f.For(ir.CI(-susanBorder), ir.C(susanBorder+1), func(dx ir.Reg) {
			px := f.Load8(f.Idx(ir.C(gImg), f.Add(row, f.Add(cx, dx)), 1), 0)
			d := f.Sub(px, center)
			ad := f.Select(f.Slt(d, ir.C(0)), f.Sub(ir.C(0), d), d)
			w := f.Load8(f.Idx(ir.C(gLUT), ad, 1), 0)
			f.Mov(usan, f.Add(usan, w))
		})
	})
	return usan
}

// buildSusanResponse builds a susan variant that emits, for every interior
// pixel, the response g - USAN when USAN < g, else 0.
func buildSusanResponse(name string, g uint64) (*ir.Program, error) {
	mb := ir.NewModule(name)
	gImg := mb.GlobalBytes(susanImage())
	gLUT := mb.GlobalBytes(susanLUT())

	f := mb.Func("main", 0)
	f.For(ir.C(susanBorder), ir.C(susanDim-susanBorder), func(cy ir.Reg) {
		f.For(ir.C(susanBorder), ir.C(susanDim-susanBorder), func(cx ir.Reg) {
			usan := emitUSAN(f, gImg, gLUT, cx, cy)
			resp := f.Select(f.Ult(usan, ir.C(g)), f.Sub(ir.C(g), usan), ir.C(0))
			f.Out32(resp)
		})
	})
	f.RetVoid()
	return mb.Build()
}

// buildSusanCorners constructs the corner-response variant (geometric
// threshold max/2).
func buildSusanCorners() (*ir.Program, error) {
	return buildSusanResponse("susan_corners", susanCornerG)
}

// buildSusanEdges constructs the edge-response variant (geometric
// threshold 3*max/4).
func buildSusanEdges() (*ir.Program, error) {
	return buildSusanResponse("susan_edges", susanEdgeG)
}

// buildSusanSmoothing constructs the smoothing variant: every interior
// pixel becomes the similarity-weighted mean of its 5x5 neighbourhood.
func buildSusanSmoothing() (*ir.Program, error) {
	mb := ir.NewModule("susan_smoothing")
	gImg := mb.GlobalBytes(susanImage())
	gLUT := mb.GlobalBytes(susanLUT())

	f := mb.Func("main", 0)
	f.For(ir.C(susanBorder), ir.C(susanDim-susanBorder), func(cy ir.Reg) {
		f.For(ir.C(susanBorder), ir.C(susanDim-susanBorder), func(cx ir.Reg) {
			center := f.Load8(f.Idx(ir.C(gImg), f.Add(f.Mul(cy, ir.C(susanDim)), cx), 1), 0)
			total := f.Let(ir.C(0))
			wsum := f.Let(ir.C(0))
			f.For(ir.CI(-susanBorder), ir.C(susanBorder+1), func(dy ir.Reg) {
				row := f.Mul(f.Add(cy, dy), ir.C(susanDim))
				f.For(ir.CI(-susanBorder), ir.C(susanBorder+1), func(dx ir.Reg) {
					px := f.Load8(f.Idx(ir.C(gImg), f.Add(row, f.Add(cx, dx)), 1), 0)
					d := f.Sub(px, center)
					ad := f.Select(f.Slt(d, ir.C(0)), f.Sub(ir.C(0), d), d)
					w := f.Load8(f.Idx(ir.C(gLUT), ad, 1), 0)
					f.Mov(total, f.Add(total, f.Mul(w, px)))
					f.Mov(wsum, f.Add(wsum, w))
				})
			})
			// wsum >= LUT[0] > 0 (the centre contributes full weight).
			f.Out8(f.Udiv(total, wsum))
		})
	})
	f.RetVoid()
	return mb.Build()
}

// refSusanResponse computes the expected output of a response variant.
func refSusanResponse(g uint32) []byte {
	img := susanImage()
	lut := susanLUT()
	var out outputBuf
	for cy := susanBorder; cy < susanDim-susanBorder; cy++ {
		for cx := susanBorder; cx < susanDim-susanBorder; cx++ {
			usan := refUSAN(img, lut, cx, cy)
			if usan < g {
				out.u32(g - usan)
			} else {
				out.u32(0)
			}
		}
	}
	return out.bytes
}

func refUSAN(img, lut []byte, cx, cy int) uint32 {
	center := img[cy*susanDim+cx]
	var usan uint32
	for dy := -susanBorder; dy <= susanBorder; dy++ {
		for dx := -susanBorder; dx <= susanBorder; dx++ {
			px := img[(cy+dy)*susanDim+cx+dx]
			d := int32(px) - int32(center)
			if d < 0 {
				d = -d
			}
			usan += uint32(lut[d])
		}
	}
	return usan
}

// refSusanSmoothing computes the expected smoothing output.
func refSusanSmoothing() []byte {
	img := susanImage()
	lut := susanLUT()
	var out outputBuf
	for cy := susanBorder; cy < susanDim-susanBorder; cy++ {
		for cx := susanBorder; cx < susanDim-susanBorder; cx++ {
			center := img[cy*susanDim+cx]
			var total, wsum uint32
			for dy := -susanBorder; dy <= susanBorder; dy++ {
				for dx := -susanBorder; dx <= susanBorder; dx++ {
					px := img[(cy+dy)*susanDim+cx+dx]
					d := int32(px) - int32(center)
					if d < 0 {
						d = -d
					}
					w := uint32(lut[d])
					total += w * uint32(px)
					wsum += w
				}
			}
			out.u8(uint8(total / wsum))
		}
	}
	return out.bytes
}
