package prog

import (
	"fmt"

	"multiflip/internal/ir"
)

// The megapixel workload: an image-scale synthetic program over 1 MiB of
// global data (2^17 64-bit words ~ a 1024x1024 8-bit image). Pass 1 fills
// the "image" from a cheap PRNG recurrence, pass 2 applies an in-place
// neighbour-mixing filter (a 1-D blur stand-in), and a sparse checksum
// pass emits the output. Stores sweep the whole segment, so golden-run
// capture, copy-on-write resume and convergence hashing all operate at
// real image scale — the configuration the page-granular snapshot design
// exists for. BenchmarkCampaignLargeGlobals and the study grid target it
// by name ("megapixel").
const (
	// MegapixelWords is the image size in 64-bit words (1 MiB).
	MegapixelWords = 1 << 17
	megaMulPhi     = 0x9e3779b97f4a7c15
)

// buildMegapixel constructs the workload. The build is deterministic and
// input-free: the image content comes from the fill recurrence.
func buildMegapixel() (*ir.Program, error) {
	return buildImageFill("megapixel", MegapixelWords)
}

// buildImageFill emits the fill + neighbour-mix + checksum pipeline over
// words 64-bit global words.
func buildImageFill(name string, words int) (*ir.Program, error) {
	mb := ir.NewModule(fmt.Sprintf("%s-%dKiB", name, words*8/1024))
	base := mb.GlobalZero(8 * words)
	f := mb.Func("main", 0)
	// Pass 1: fill.
	f.For(ir.C(0), ir.C(uint64(words)), func(i ir.Reg) {
		v := f.BinW(ir.W64, ir.OpMul, i, ir.C(megaMulPhi))
		v = f.BinW(ir.W64, ir.OpXor, v, f.BinW(ir.W64, ir.OpLShr, v, ir.C(29)))
		addr := f.BinW(ir.W64, ir.OpAdd, ir.C(base), f.BinW(ir.W64, ir.OpMul, i, ir.C(8)))
		f.Store64(addr, v, 0)
	})
	// Pass 2: neighbour mix, in place and in order (word i-1 is already
	// mixed when word i reads it — the reference reproduces this).
	f.For(ir.C(1), ir.C(uint64(words-1)), func(i ir.Reg) {
		addr := f.BinW(ir.W64, ir.OpAdd, ir.C(base), f.BinW(ir.W64, ir.OpMul, i, ir.C(8)))
		left := f.Load64(addr, -8)
		mid := f.Load64(addr, 0)
		right := f.Load64(addr, 8)
		mixed := f.BinW(ir.W64, ir.OpAdd, f.BinW(ir.W64, ir.OpAdd, left, right), mid)
		f.Store64(addr, mixed, 0)
	})
	// Checksum: sample every 64th word.
	acc := f.Let(ir.C(0))
	f.For(ir.C(0), ir.C(uint64(words/64)), func(i ir.Reg) {
		addr := f.BinW(ir.W64, ir.OpAdd, ir.C(base), f.BinW(ir.W64, ir.OpMul, i, ir.C(512)))
		f.Mov(acc, f.BinW(ir.W64, ir.OpXor, acc, f.Load64(addr, 0)))
	})
	f.Out64(acc)
	f.RetVoid()
	return mb.Build()
}

// refMegapixel computes the megapixel workload's expected output
// host-side, operation for operation.
func refMegapixel() []byte {
	return refImageFill(MegapixelWords)
}

// refImageFill is the host-side reference for buildImageFill.
func refImageFill(words int) []byte {
	mem := make([]uint64, words)
	for i := range mem {
		v := uint64(i) * megaMulPhi
		v ^= v >> 29
		mem[i] = v
	}
	for i := 1; i < words-1; i++ {
		mem[i] = mem[i-1] + mem[i+1] + mem[i]
	}
	var acc uint64
	for i := 0; i < words/64; i++ {
		acc ^= mem[i*64]
	}
	var out outputBuf
	out.u64(acc)
	return out.bytes
}
