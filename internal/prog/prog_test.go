package prog

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"hash/crc32"
	"math"
	"sort"
	"strings"
	"testing"

	"multiflip/internal/vm"
)

// golden builds the named benchmark and returns its fault-free output.
func golden(t *testing.T, name string) *vm.Result {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	res, err := vm.Profile(p)
	if err != nil {
		t.Fatalf("profile %s: %v", name, err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registry has %d benchmarks, want 15", len(all))
	}
	wantNames := []string{
		"basicmath", "qsort", "susan_corners", "susan_edges",
		"susan_smoothing", "FFT", "IFFT", "CRC32", "dijkstra", "sha",
		"stringsearch", "bfs", "histo", "sad", "spmv",
	}
	for i, w := range wantNames {
		if all[i].Name != w {
			t.Errorf("benchmark %d = %s, want %s (Table II order)", i, all[i].Name, w)
		}
	}
	mi, pb := 0, 0
	for _, b := range all {
		switch b.Suite {
		case SuiteMiBench:
			mi++
		case SuiteParboil:
			pb++
		default:
			t.Errorf("%s: unknown suite %q", b.Name, b.Suite)
		}
		if b.Desc == "" || b.Package == "" {
			t.Errorf("%s: missing metadata", b.Name)
		}
	}
	if mi != 11 || pb != 4 {
		t.Errorf("suite split = %d MiBench / %d Parboil, want 11/4", mi, pb)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

// TestExtrasAddressable checks the named extras resolve through ByName
// without entering the Table II registry.
func TestExtrasAddressable(t *testing.T) {
	for _, b := range Extras() {
		got, err := ByName(b.Name)
		if err != nil {
			t.Fatalf("extra %s not addressable: %v", b.Name, err)
		}
		if got.Suite != SuiteSynthetic {
			t.Errorf("%s: suite = %q, want %q", b.Name, got.Suite, SuiteSynthetic)
		}
		for _, name := range Names() {
			if name == b.Name {
				t.Errorf("extra %s leaked into the Table II name list", b.Name)
			}
		}
	}
}

// TestMegapixelMatchesReference pins the megapixel workload against its
// host-side reference: same fill recurrence, same in-place mix order,
// same sparse checksum — and checks it really is image-scale.
func TestMegapixelMatchesReference(t *testing.T) {
	b, err := ByName("megapixel")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(p.Globals), 8*MegapixelWords; got != want {
		t.Fatalf("global segment = %d bytes, want %d (1 MiB)", got, want)
	}
	res, err := vm.Profile(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := refMegapixel(); !bytes.Equal(res.Output, want) {
		t.Fatalf("megapixel output %x diverges from reference %x", res.Output, want)
	}
	if res.Dyn < uint64(MegapixelWords) {
		t.Fatalf("dynamic count %d implausibly small for %d words", res.Dyn, MegapixelWords)
	}
}

func TestAllBenchmarksBuildAndProfile(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p, err := b.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			res, err := vm.Profile(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) == 0 {
				t.Error("no output produced")
			}
			if res.Dyn < 1000 {
				t.Errorf("only %d dynamic instructions; workload too small", res.Dyn)
			}
			if res.Dyn > 2_000_000 {
				t.Errorf("%d dynamic instructions; workload too large for campaigns", res.Dyn)
			}
			// Table II property: the inject-on-read candidate space is
			// larger than inject-on-write (stores/branches read but never
			// write).
			if res.ReadSlots <= res.Writes {
				t.Errorf("read candidates (%d) not greater than write candidates (%d)",
					res.ReadSlots, res.Writes)
			}
		})
	}
}

func TestBuildDeterminism(t *testing.T) {
	for _, b := range All() {
		p1, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		p2, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p1.Globals, p2.Globals) {
			t.Errorf("%s: global image differs between builds", b.Name)
		}
		if p1.StaticInstrs() != p2.StaticInstrs() {
			t.Errorf("%s: static code differs between builds", b.Name)
		}
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	res := golden(t, "CRC32")
	want := crc32.ChecksumIEEE(crcInput())
	if len(res.Output) != 4 {
		t.Fatalf("output length %d, want 4", len(res.Output))
	}
	got := binary.LittleEndian.Uint32(res.Output)
	if got != want {
		t.Fatalf("CRC32 = %#x, want %#x", got, want)
	}
}

func TestQsortMatchesSort(t *testing.T) {
	res := golden(t, "qsort")
	in := qsortInput()
	vals := make([]int32, len(in))
	for i, v := range in {
		vals[i] = int32(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var want outputBuf
	for _, v := range vals {
		want.i32(v)
	}
	if !bytes.Equal(res.Output, want.bytes) {
		t.Fatal("qsort output does not match sorted reference")
	}
}

func TestDijkstraMatchesReference(t *testing.T) {
	res := golden(t, "dijkstra")
	adj := dijkstraGraph()
	var want outputBuf
	for _, pq := range dijkstraQueries() {
		want.u32(refDijkstra(adj, pq[0], pq[1]))
	}
	if !bytes.Equal(res.Output, want.bytes) {
		t.Fatalf("dijkstra output mismatch:\n got %x\nwant %x", res.Output, want.bytes)
	}
}

// refDijkstra mirrors the IR implementation's O(N^2) scan.
func refDijkstra(adj []uint32, src, dst int) uint32 {
	const inf = dijkstraInf
	dist := make([]uint32, dijkstraN)
	visited := make([]bool, dijkstraN)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for round := 0; round < dijkstraN; round++ {
		best := uint32(inf + 1)
		bestIdx := -1
		for i := 0; i < dijkstraN; i++ {
			if !visited[i] && dist[i] < best {
				best = dist[i]
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			continue
		}
		visited[bestIdx] = true
		du := dist[bestIdx]
		for j := 0; j < dijkstraN; j++ {
			w := adj[bestIdx*dijkstraN+j]
			if w < inf && du+w < dist[j] {
				dist[j] = du + w
			}
		}
	}
	return dist[dst]
}

func TestSHAMatchesCryptoSHA1(t *testing.T) {
	res := golden(t, "sha")
	sum := sha1.Sum(shaInput())
	// The program emits h0..h4 as little-endian words; the digest is those
	// words big-endian.
	if len(res.Output) != 20 {
		t.Fatalf("output length %d, want 20", len(res.Output))
	}
	for w := 0; w < 5; w++ {
		got := binary.LittleEndian.Uint32(res.Output[4*w:])
		want := binary.BigEndian.Uint32(sum[4*w:])
		if got != want {
			t.Fatalf("digest word %d = %#x, want %#x", w, got, want)
		}
	}
}

func TestStringsearchMatchesNaive(t *testing.T) {
	res := golden(t, "stringsearch")
	phrases, words := stringsearchCases()
	var want outputBuf
	foundAny, missedAny := false, false
	for i := range phrases {
		idx := strings.Index(strings.ToLower(phrases[i]), strings.ToLower(words[i]))
		want.i32(int32(idx))
		if idx >= 0 {
			foundAny = true
		} else {
			missedAny = true
		}
	}
	if !foundAny || !missedAny {
		t.Fatal("test input does not exercise both hit and miss paths")
	}
	if !bytes.Equal(res.Output, want.bytes) {
		t.Fatalf("stringsearch output mismatch:\n got %x\nwant %x", res.Output, want.bytes)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	res := golden(t, "bfs")
	rowPtr, colIdx := bfsGraph()
	dist := make([]int32, bfsNodes)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []uint32{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := rowPtr[u]; e < rowPtr[u+1]; e++ {
			v := colIdx[e]
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	var want outputBuf
	reached := 0
	for _, d := range dist {
		want.i32(d)
		if d >= 0 {
			reached++
		}
	}
	if reached < bfsNodes/2 {
		t.Fatalf("graph too disconnected: %d reached", reached)
	}
	if !bytes.Equal(res.Output, want.bytes) {
		t.Fatal("bfs output mismatch")
	}
}

func TestHistoMatchesReference(t *testing.T) {
	res := golden(t, "histo")
	hist := make([]uint8, histoBins)
	for _, v := range histoInput() {
		row := (v / histoW) % histoH
		col := v % histoW
		bin := row*histoW + col
		if hist[bin] < 255 {
			hist[bin]++
		}
	}
	saturated := false
	for _, h := range hist {
		if h == 255 {
			saturated = true
		}
	}
	if !saturated {
		t.Fatal("input does not exercise bin saturation")
	}
	if !bytes.Equal(res.Output, hist) {
		t.Fatalf("histo output mismatch:\n got %x\nwant %x", res.Output, hist)
	}
}

func TestSADMatchesReference(t *testing.T) {
	res := golden(t, "sad")
	cur, ref := sadFrames()
	var want outputBuf
	nb := sadDim / sadBlk
	for by := 0; by < nb; by++ {
		for bx := 0; bx < nb; bx++ {
			baseY, baseX := by*sadBlk, bx*sadBlk
			best := int32(0x7FFFFFFF)
			bestMV := int32(0)
			for dy := -sadRange; dy <= sadRange; dy++ {
				for dx := -sadRange; dx <= sadRange; dx++ {
					oy, ox := baseY+dy, baseX+dx
					if oy < 0 || oy > sadDim-sadBlk || ox < 0 || ox > sadDim-sadBlk {
						continue
					}
					var sum int32
					for py := 0; py < sadBlk; py++ {
						for px := 0; px < sadBlk; px++ {
							a := int32(cur[(baseY+py)*sadDim+baseX+px])
							b := int32(ref[(oy+py)*sadDim+ox+px])
							d := a - b
							if d < 0 {
								d = -d
							}
							sum += d
						}
					}
					if sum < best {
						best = sum
						bestMV = int32((dy+sadRange)*(2*sadRange+1) + dx + sadRange)
					}
				}
			}
			want.i32(best)
			want.i32(bestMV)
		}
	}
	if !bytes.Equal(res.Output, want.bytes) {
		t.Fatal("sad output mismatch")
	}
}

func TestSPMVMatchesReference(t *testing.T) {
	res := golden(t, "spmv")
	rowPtr, colIdx, vals, x := spmvMatrix()
	mul := func(in []float64) []float64 {
		out := make([]float64, spmvN)
		for row := 0; row < spmvN; row++ {
			acc := 0.0
			for e := rowPtr[row]; e < rowPtr[row+1]; e++ {
				m := vals[e] * in[colIdx[e]]
				acc = acc + m
			}
			out[row] = acc
		}
		return out
	}
	z := mul(mul(x))
	var want outputBuf
	for _, v := range z {
		want.f64(v)
	}
	if !bytes.Equal(res.Output, want.bytes) {
		t.Fatal("spmv output mismatch (bit-exact float comparison)")
	}
}

func TestFFTMatchesReference(t *testing.T) {
	res := golden(t, "FFT")
	re, im := refFFT(fftSignal())
	var want outputBuf
	for i := 0; i < fftN; i++ {
		want.f64(re[i])
		want.f64(im[i])
	}
	if !bytes.Equal(res.Output, want.bytes) {
		t.Fatal("FFT output mismatch (bit-exact float comparison)")
	}
}

func TestFFTRoundTripsViaDFT(t *testing.T) {
	// Independent check that refFFT is a correct Fourier transform (so the
	// FFT workload is not just self-consistent): compare against a naive
	// DFT within floating-point tolerance.
	sig := fftSignal()
	re, im := refFFT(sig)
	for k := 0; k < fftN; k++ {
		var wr, wi float64
		for n := 0; n < fftN; n++ {
			ang := -2 * math.Pi * float64(k) * float64(n) / fftN
			wr += sig[n] * math.Cos(ang)
			wi += sig[n] * math.Sin(ang)
		}
		if diff := wr - re[k]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bin %d real: fft=%v dft=%v", k, re[k], wr)
		}
		if diff := wi - im[k]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bin %d imag: fft=%v dft=%v", k, im[k], wi)
		}
	}
}

func TestIFFTMatchesReference(t *testing.T) {
	res := golden(t, "IFFT")
	re, im := refFFT(fftSignal())
	outRe, outIm := refIFFT(re, im)
	var want outputBuf
	for i := 0; i < fftN; i++ {
		want.f64(outRe[i])
		want.f64(outIm[i])
	}
	if !bytes.Equal(res.Output, want.bytes) {
		t.Fatal("IFFT output mismatch (bit-exact float comparison)")
	}
}

func TestIFFTRecoversSignal(t *testing.T) {
	re, im := refFFT(fftSignal())
	outRe, _ := refIFFT(re, im)
	sig := fftSignal()
	for i := range sig {
		diff := outRe[i] - sig[i]
		if diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("sample %d: ifft(fft(x)) = %v, x = %v", i, outRe[i], sig[i])
		}
	}
}

func TestBasicmathMatchesReference(t *testing.T) {
	res := golden(t, "basicmath")
	want := refBasicmathOutput()
	if !bytes.Equal(res.Output, want) {
		t.Fatal("basicmath output mismatch (bit-exact float comparison)")
	}
}

func TestUsqrtProperty(t *testing.T) {
	for _, v := range []uint32{0, 1, 2, 3, 4, 15, 16, 17, 1 << 20, 1<<30 - 1} {
		r := refUsqrt(v)
		if uint64(r)*uint64(r) > uint64(v) || uint64(r+1)*uint64(r+1) <= uint64(v) {
			t.Errorf("usqrt(%d) = %d", v, r)
		}
	}
}

func TestSusanCornersMatchesReference(t *testing.T) {
	res := golden(t, "susan_corners")
	if !bytes.Equal(res.Output, refSusanResponse(susanCornerG)) {
		t.Fatal("susan_corners output mismatch")
	}
}

func TestSusanEdgesMatchesReference(t *testing.T) {
	res := golden(t, "susan_edges")
	if !bytes.Equal(res.Output, refSusanResponse(susanEdgeG)) {
		t.Fatal("susan_edges output mismatch")
	}
}

func TestSusanResponsesNonTrivial(t *testing.T) {
	// The rectangle's edges/corners must produce nonzero responses while
	// flat regions produce zero, or the workload is degenerate.
	for _, g := range []uint32{susanCornerG, susanEdgeG} {
		out := refSusanResponse(g)
		zero, nonzero := 0, 0
		for i := 0; i < len(out); i += 4 {
			if binary.LittleEndian.Uint32(out[i:]) == 0 {
				zero++
			} else {
				nonzero++
			}
		}
		if zero == 0 || nonzero == 0 {
			t.Fatalf("g=%d: degenerate response map (%d zero, %d nonzero)", g, zero, nonzero)
		}
	}
}

func TestSusanSmoothingMatchesReference(t *testing.T) {
	res := golden(t, "susan_smoothing")
	if !bytes.Equal(res.Output, refSusanSmoothing()) {
		t.Fatal("susan_smoothing output mismatch")
	}
}
