package prog

import (
	"multiflip/internal/ir"
)

// Histo workload dimensions: a 2-D histogram of histoW x histoH bins over
// histoInputN input samples, saturating each 8-bit bin at 255.
const (
	histoW      = 12
	histoH      = 8
	histoBins   = histoW * histoH
	histoInputN = 1024
)

// histoInput returns the deterministic sample values. The distribution is
// deliberately skewed so several bins exceed 255 and exercise saturation,
// as Parboil's input does.
func histoInput() []uint32 {
	r := inputRand("histo")
	vals := make([]uint32, histoInputN)
	for i := range vals {
		if r.Intn(100) < 35 {
			// Hot value: enough hits to overflow an 8-bit bin, exercising
			// the saturating clamp.
			vals[i] = 700
		} else {
			vals[i] = uint32(r.Intn(4096))
		}
	}
	return vals
}

// buildHisto constructs the saturating 2-D histogram kernel: each sample
// value maps to a (row, column) bin; bins increment and clamp at 255. The
// program emits the full histogram.
func buildHisto() (*ir.Program, error) {
	input := histoInput()
	mb := ir.NewModule("histo")
	gIn := mb.GlobalU32s(input)
	gHist := mb.GlobalZero(histoBins) // byte bins

	f := mb.Func("main", 0)
	f.For(ir.C(0), ir.C(histoInputN), func(i ir.Reg) {
		v := f.Load32(f.Idx(ir.C(gIn), i, 4), 0)
		// 2-D bin coordinates, then flattened index.
		row := f.Urem(f.Udiv(v, ir.C(histoW)), ir.C(histoH))
		col := f.Urem(v, ir.C(histoW))
		bin := f.Add(f.Mul(row, ir.C(histoW)), col)
		addr := f.Idx(ir.C(gHist), bin, 1)
		cur := f.Load8(addr, 0)
		// Saturating increment.
		inc := f.Add(cur, ir.C(1))
		f.Store8(addr, f.Select(f.Ult(cur, ir.C(255)), inc, ir.C(255)), 0)
	})
	f.For(ir.C(0), ir.C(histoBins), func(i ir.Reg) {
		f.Out8(f.Load8(f.Idx(ir.C(gHist), i, 1), 0))
	})
	f.RetVoid()
	return mb.Build()
}
