package prog

import (
	"multiflip/internal/ir"
)

// stringsearchCases returns deterministic (phrase, word) pairs. Words are
// planted into about half the phrases so both hit and miss paths execute.
func stringsearchCases() (phrases []string, words []string) {
	r := inputRand("stringsearch")
	const (
		numCases  = 12
		phraseLen = 80
	)
	letters := "abcdefghijklmnopqrstuvwxyz "
	for c := 0; c < numCases; c++ {
		wordLen := 4 + r.Intn(8)
		word := make([]byte, wordLen)
		for i := range word {
			word[i] = letters[r.Intn(26)]
		}
		phrase := make([]byte, phraseLen)
		for i := range phrase {
			ch := letters[r.Intn(len(letters))]
			if r.Intn(3) == 0 {
				ch = ch &^ 0x20 // sprinkle upper case
			}
			phrase[i] = ch
		}
		if c%2 == 0 {
			// Plant the word (case-mangled) at a known-ish position.
			pos := r.Intn(phraseLen - wordLen)
			for i, wc := range word {
				if r.Intn(2) == 0 {
					wc = wc &^ 0x20
				}
				phrase[pos+i] = wc
			}
		}
		phrases = append(phrases, string(phrase))
		words = append(words, string(word))
	}
	return phrases, words
}

// buildStringsearch constructs a case-insensitive Boyer-Moore-Horspool
// search (as in MiBench's office/stringsearch): a lower-casing table and a
// per-word skip table drive the scan; the program emits the match offset
// of each word in its phrase, or -1.
func buildStringsearch() (*ir.Program, error) {
	phrases, words := stringsearchCases()
	mb := ir.NewModule("stringsearch")

	// Lower-case lookup table.
	var lower [256]byte
	for i := range lower {
		c := byte(i)
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		lower[i] = c
	}
	gLower := mb.GlobalBytes(lower[:])
	gSkip := mb.GlobalZero(256 * 4)

	type caseRef struct {
		phrase, word uint64
		plen, wlen   int
	}
	var refs []caseRef
	for i := range phrases {
		refs = append(refs, caseRef{
			phrase: mb.GlobalBytes([]byte(phrases[i])),
			word:   mb.GlobalBytes([]byte(words[i])),
			plen:   len(phrases[i]),
			wlen:   len(words[i]),
		})
	}

	main := mb.Func("main", 0)
	for _, cr := range refs {
		main.Out32(main.Call("search",
			ir.C(cr.phrase), ir.C(uint64(cr.plen)),
			ir.C(cr.word), ir.C(uint64(cr.wlen))))
	}
	main.RetVoid()

	f := mb.Func("search", 4) // text, tlen, pat, plen -> first index or -1
	text, tlen, pat, plen := f.Arg(0), f.Arg(1), f.Arg(2), f.Arg(3)
	low := func(b ir.Src) ir.Reg {
		return f.Load8(f.Idx(ir.C(gLower), b, 1), 0)
	}
	// Build the BMH skip table: default plen, then plen-1-i for pattern
	// bytes (lower-cased).
	f.For(ir.C(0), ir.C(256), func(i ir.Reg) {
		f.Store32(f.Idx(ir.C(gSkip), i, 4), plen, 0)
	})
	last := f.Sub(plen, ir.C(1))
	f.For(ir.C(0), last, func(i ir.Reg) {
		pc := low(f.Load8(f.Idx(pat, i, 1), 0))
		f.Store32(f.Idx(ir.C(gSkip), pc, 4), f.Sub(last, i), 0)
	})
	// Scan alignments left to right.
	pos := f.Let(ir.C(0))
	limit := f.Sub(tlen, plen)
	result := f.Let(ir.CI(-1))
	done := f.Let(ir.C(0))
	f.While(func() ir.Src {
		return f.And(f.Sle(pos, limit), f.Eq(done, ir.C(0)))
	}, func() {
		// Compare pattern right to left.
		k := f.Let(last)
		mismatch := f.Let(ir.C(0))
		f.While(func() ir.Src {
			return f.And(f.Sge(k, ir.C(0)), f.Eq(mismatch, ir.C(0)))
		}, func() {
			tc := low(f.Load8(f.Idx(text, f.Add(pos, k), 1), 0))
			pc := low(f.Load8(f.Idx(pat, k, 1), 0))
			f.IfElse(f.Eq(tc, pc),
				func() { f.Mov(k, f.Sub(k, ir.C(1))) },
				func() { f.Mov(mismatch, ir.C(1)) })
		})
		f.IfElse(f.Eq(mismatch, ir.C(0)), func() {
			f.Mov(result, pos)
			f.Mov(done, ir.C(1))
		}, func() {
			// Skip by the table entry of the alignment's last text byte.
			tc := low(f.Load8(f.Idx(text, f.Add(pos, last), 1), 0))
			f.Mov(pos, f.Add(pos, f.Load32(f.Idx(ir.C(gSkip), tc, 4), 0)))
		})
	})
	f.Ret(result)
	return mb.Build()
}
