package prog

import "testing"

// TestCompiledKernelManifest is the generated-code drift check: every
// suite workload must have an entry in the committed CompiledKernels
// manifest, and the fingerprint of the program it builds today must match
// the fingerprint its compiled VM kernel was generated from. The VM's
// registry gate makes a mismatch silent (it just falls back to the
// interpreter); this test makes it loud. CI enforces the same property
// for the generated sources via `go generate ./... && git diff
// --exit-code`.
func TestCompiledKernelManifest(t *testing.T) {
	benches := append(All(), Extras()...)
	if len(CompiledKernels) != len(benches) {
		t.Errorf("manifest has %d entries, suite has %d workloads; re-run go generate ./...",
			len(CompiledKernels), len(benches))
	}
	for _, b := range benches {
		want, ok := CompiledKernels[b.Name]
		if !ok {
			t.Errorf("%s: no compiled-kernel manifest entry; re-run go generate ./...", b.Name)
			continue
		}
		p, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if got := p.Fingerprint(); got != want {
			t.Errorf("%s: program fingerprint %#016x != generated-kernel fingerprint %#016x; the IR changed after the kernels were generated — re-run go generate ./...",
				b.Name, got, want)
		}
	}
}
