package prog

import (
	"multiflip/internal/ir"
)

// Dijkstra workload dimensions.
const (
	dijkstraN     = 20         // nodes in the adjacency matrix
	dijkstraPairs = 6          // (source, destination) queries
	dijkstraInf   = 0x3FFFFFFF // "no edge" / "unreached" distance
)

// dijkstraGraph returns the deterministic adjacency matrix (row-major,
// dijkstraInf marks absent edges) standing in for MiBench's input matrix.
func dijkstraGraph() []uint32 {
	r := inputRand("dijkstra")
	adj := make([]uint32, dijkstraN*dijkstraN)
	for i := range adj {
		adj[i] = dijkstraInf
	}
	for i := 0; i < dijkstraN; i++ {
		adj[i*dijkstraN+i] = 0
		// ~35% edge density with weights 1..20.
		for j := 0; j < dijkstraN; j++ {
			if i != j && r.Intn(100) < 35 {
				adj[i*dijkstraN+j] = uint32(1 + r.Intn(20))
			}
		}
	}
	return adj
}

// dijkstraQueries returns the (src, dst) query pairs.
func dijkstraQueries() [][2]int {
	r := inputRand("dijkstra-queries")
	pairs := make([][2]int, dijkstraPairs)
	for i := range pairs {
		pairs[i] = [2]int{r.Intn(dijkstraN), r.Intn(dijkstraN)}
	}
	return pairs
}

// buildDijkstra constructs the shortest-path workload: for each query pair
// it runs a full O(N^2) Dijkstra scan over the adjacency matrix and emits
// the resulting distance.
func buildDijkstra() (*ir.Program, error) {
	adj := dijkstraGraph()
	pairs := dijkstraQueries()
	mb := ir.NewModule("dijkstra")
	gAdj := mb.GlobalU32s(adj)
	gDist := mb.GlobalZero(dijkstraN * 4)
	gVisited := mb.GlobalZero(dijkstraN * 4)

	main := mb.Func("main", 0)
	for _, pq := range pairs {
		main.Out32(main.Call("shortest", ir.C(uint64(pq[0])), ir.C(uint64(pq[1]))))
	}
	main.RetVoid()

	f := mb.Func("shortest", 2) // src, dst -> distance
	src, dst := f.Arg(0), f.Arg(1)
	// Initialize dist/visited.
	f.For(ir.C(0), ir.C(dijkstraN), func(i ir.Reg) {
		f.Store32(f.Idx(ir.C(gDist), i, 4), ir.C(dijkstraInf), 0)
		f.Store32(f.Idx(ir.C(gVisited), i, 4), ir.C(0), 0)
	})
	f.Store32(f.Idx(ir.C(gDist), src, 4), ir.C(0), 0)
	// N rounds of select-min + relax.
	f.For(ir.C(0), ir.C(dijkstraN), func(round ir.Reg) {
		best := f.Let(ir.C(dijkstraInf + 1))
		bestIdx := f.Let(ir.CI(-1))
		f.For(ir.C(0), ir.C(dijkstraN), func(i ir.Reg) {
			vis := f.Load32(f.Idx(ir.C(gVisited), i, 4), 0)
			f.If(f.Eq(vis, ir.C(0)), func() {
				d := f.Load32(f.Idx(ir.C(gDist), i, 4), 0)
				f.If(f.Ult(d, best), func() {
					f.Mov(best, d)
					f.Mov(bestIdx, i)
				})
			})
		})
		f.If(f.Sge(bestIdx, ir.C(0)), func() {
			f.Store32(f.Idx(ir.C(gVisited), bestIdx, 4), ir.C(1), 0)
			du := f.Load32(f.Idx(ir.C(gDist), bestIdx, 4), 0)
			rowBase := f.Idx(ir.C(gAdj), f.Mul(bestIdx, ir.C(dijkstraN)), 4)
			f.For(ir.C(0), ir.C(dijkstraN), func(j ir.Reg) {
				w := f.Load32(f.Idx(rowBase, j, 4), 0)
				f.If(f.Ult(w, ir.C(dijkstraInf)), func() {
					cand := f.Add(du, w)
					dj := f.Load32(f.Idx(ir.C(gDist), j, 4), 0)
					f.If(f.Ult(cand, dj), func() {
						f.Store32(f.Idx(ir.C(gDist), j, 4), cand, 0)
					})
				})
			})
		})
	})
	f.Ret(f.Load32(f.Idx(ir.C(gDist), dst, 4), 0))
	return mb.Build()
}
