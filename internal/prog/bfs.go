package prog

import (
	"multiflip/internal/ir"
)

// BFS workload dimensions.
const (
	bfsNodes     = 256
	bfsAvgDegree = 4
)

// bfsGraph returns the deterministic irregular graph in CSR form (stands
// in for Parboil's New York road map): rowPtr has bfsNodes+1 entries.
func bfsGraph() (rowPtr, colIdx []uint32) {
	r := inputRand("bfs")
	adj := make([][]uint32, bfsNodes)
	for i := 0; i < bfsNodes; i++ {
		deg := 1 + r.Intn(2*bfsAvgDegree-1)
		seen := map[uint32]bool{}
		for d := 0; d < deg; d++ {
			t := uint32(r.Intn(bfsNodes))
			if t != uint32(i) && !seen[t] {
				seen[t] = true
				adj[i] = append(adj[i], t)
			}
		}
	}
	rowPtr = make([]uint32, bfsNodes+1)
	for i, row := range adj {
		rowPtr[i+1] = rowPtr[i] + uint32(len(row))
		colIdx = append(colIdx, row...)
	}
	return rowPtr, colIdx
}

// buildBFS constructs a queue-based breadth-first search from node 0 over
// the CSR graph, emitting every node's shortest-path cost in uniform-weight
// hops (-1 for unreachable nodes).
func buildBFS() (*ir.Program, error) {
	rowPtr, colIdx := bfsGraph()
	mb := ir.NewModule("bfs")
	gRow := mb.GlobalU32s(rowPtr)
	gCol := mb.GlobalU32s(colIdx)
	gDist := mb.GlobalZero(bfsNodes * 4)
	gQueue := mb.GlobalZero(bfsNodes * 4)

	f := mb.Func("main", 0)
	f.For(ir.C(0), ir.C(bfsNodes), func(i ir.Reg) {
		f.Store32(f.Idx(ir.C(gDist), i, 4), ir.CI(-1), 0)
	})
	f.Store32(ir.C(gDist), ir.C(0), 0) // dist[0] = 0
	f.Store32(ir.C(gQueue), ir.C(0), 0)
	head := f.Let(ir.C(0))
	tail := f.Let(ir.C(1))
	f.While(func() ir.Src { return f.Slt(head, tail) }, func() {
		u := f.Load32(f.Idx(ir.C(gQueue), head, 4), 0)
		f.Mov(head, f.Add(head, ir.C(1)))
		du := f.Load32(f.Idx(ir.C(gDist), u, 4), 0)
		start := f.Load32(f.Idx(ir.C(gRow), u, 4), 0)
		end := f.Load32(f.Idx(ir.C(gRow), f.Add(u, ir.C(1)), 4), 0)
		f.For(start, end, func(e ir.Reg) {
			v := f.Load32(f.Idx(ir.C(gCol), e, 4), 0)
			dv := f.Load32(f.Idx(ir.C(gDist), v, 4), 0)
			f.If(f.Eq(dv, ir.CI(-1)), func() {
				f.Store32(f.Idx(ir.C(gDist), v, 4), f.Add(du, ir.C(1)), 0)
				f.Store32(f.Idx(ir.C(gQueue), tail, 4), v, 0)
				f.Mov(tail, f.Add(tail, ir.C(1)))
			})
		})
	})
	f.For(ir.C(0), ir.C(bfsNodes), func(i ir.Reg) {
		f.Out32(f.Load32(f.Idx(ir.C(gDist), i, 4), 0))
	})
	f.RetVoid()
	return mb.Build()
}
