package prog

import (
	"multiflip/internal/ir"
)

// SpMV workload dimensions: a spmvN x spmvN sparse matrix in CSR format.
const spmvN = 64

// spmvMatrix returns the deterministic CSR matrix and dense input vector.
func spmvMatrix() (rowPtr, colIdx []uint32, vals, x []float64) {
	r := inputRand("spmv")
	rowPtr = make([]uint32, spmvN+1)
	for i := 0; i < spmvN; i++ {
		deg := 3 + r.Intn(5)
		cols := make(map[int]bool, deg)
		for len(cols) < deg {
			cols[r.Intn(spmvN)] = true
		}
		// Deterministic order: ascending columns.
		for c := 0; c < spmvN; c++ {
			if cols[c] {
				colIdx = append(colIdx, uint32(c))
				vals = append(vals, 0.25+r.Float64())
			}
		}
		rowPtr[i+1] = uint32(len(colIdx))
	}
	x = make([]float64, spmvN)
	for i := range x {
		x[i] = -1 + 2*r.Float64()
	}
	return rowPtr, colIdx, vals, x
}

// buildSPMV constructs two chained sparse matrix-vector products
// (y = A·x, z = A·y), emitting z. Chaining doubles the dynamic footprint
// and propagates any corrupted element through a second pass, like the
// iterative solvers Parboil's spmv feeds.
func buildSPMV() (*ir.Program, error) {
	rowPtr, colIdx, vals, x := spmvMatrix()
	mb := ir.NewModule("spmv")
	gRow := mb.GlobalU32s(rowPtr)
	gCol := mb.GlobalU32s(colIdx)
	gVal := mb.GlobalF64s(vals)
	gX := mb.GlobalF64s(x)
	gY := mb.GlobalZero(spmvN * 8)
	gZ := mb.GlobalZero(spmvN * 8)

	main := mb.Func("main", 0)
	main.CallVoid("spmv", ir.C(gX), ir.C(gY))
	main.CallVoid("spmv", ir.C(gY), ir.C(gZ))
	main.For(ir.C(0), ir.C(spmvN), func(i ir.Reg) {
		main.Out64(main.LoadF(main.Idx(ir.C(gZ), i, 8), 0))
	})
	main.RetVoid()

	f := mb.Func("spmv", 2) // in, out: dense vectors
	in, out := f.Arg(0), f.Arg(1)
	f.For(ir.C(0), ir.C(spmvN), func(row ir.Reg) {
		acc := f.Let(ir.CF(0))
		start := f.Load32(f.Idx(ir.C(gRow), row, 4), 0)
		end := f.Load32(f.Idx(ir.C(gRow), f.Add(row, ir.C(1)), 4), 0)
		f.For(start, end, func(e ir.Reg) {
			col := f.Load32(f.Idx(ir.C(gCol), e, 4), 0)
			av := f.LoadF(f.Idx(ir.C(gVal), e, 8), 0)
			xv := f.LoadF(f.Idx(in, col, 8), 0)
			f.Mov(acc, f.Fadd(acc, f.Fmul(av, xv)))
		})
		f.StoreF(f.Idx(out, row, 8), acc, 0)
	})
	f.RetVoid()
	return mb.Build()
}
