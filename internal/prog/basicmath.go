package prog

import (
	"math"

	"multiflip/internal/ir"
)

// Basicmath workload dimensions.
const (
	basicmathCubics    = 16  // cubic-equation coefficient sets
	basicmathNewton    = 24  // Newton iterations per cubic
	basicmathUsqrts    = 64  // integer square roots
	basicmathAngles    = 180 // degree→radian conversions
	basicmathPiOver180 = math.Pi / 180
)

// basicmathCoeffs returns deterministic monic-cubic coefficient triples
// (b, c, d) for x^3 + b x^2 + c x + d.
func basicmathCoeffs() [][3]float64 {
	r := inputRand("basicmath")
	sets := make([][3]float64, basicmathCubics)
	for i := range sets {
		sets[i] = [3]float64{
			-8 + 16*r.Float64(),
			-8 + 16*r.Float64(),
			-8 + 16*r.Float64(),
		}
	}
	return sets
}

// basicmathUsqrtInputs returns deterministic integer square-root inputs.
func basicmathUsqrtInputs() []uint32 {
	r := inputRand("basicmath-usqrt")
	vals := make([]uint32, basicmathUsqrts)
	for i := range vals {
		vals[i] = uint32(r.Uint64n(1 << 30))
	}
	return vals
}

// buildBasicmath constructs the mixed math workload of MiBench's
// basicmath: cubic-equation roots (Newton iteration plus quadratic
// deflation), bit-by-bit integer square roots, and a degree→radian
// accumulation loop.
func buildBasicmath() (*ir.Program, error) {
	coeffs := basicmathCoeffs()
	usqrtIn := basicmathUsqrtInputs()
	mb := ir.NewModule("basicmath")
	var flatCoeffs []float64
	for _, s := range coeffs {
		flatCoeffs = append(flatCoeffs, s[0], s[1], s[2])
	}
	gCoef := mb.GlobalF64s(flatCoeffs)
	gU := mb.GlobalU32s(usqrtIn)

	main := mb.Func("main", 0)
	main.For(ir.C(0), ir.C(basicmathCubics), func(i ir.Reg) {
		base := main.Idx(ir.C(gCoef), main.Mul(i, ir.C(3)), 8)
		main.CallVoid("solve_cubic",
			main.LoadF(base, 0), main.LoadF(base, 8), main.LoadF(base, 16))
	})
	main.For(ir.C(0), ir.C(basicmathUsqrts), func(i ir.Reg) {
		main.Out32(main.Call("usqrt", main.Load32(main.Idx(ir.C(gU), i, 4), 0)))
	})
	// Degree -> radian accumulation.
	acc := main.Let(ir.CF(0))
	deg := main.Let(ir.CF(0))
	main.For(ir.C(0), ir.C(basicmathAngles), func(i ir.Reg) {
		main.Mov(acc, main.Fadd(acc, main.Fmul(deg, ir.CF(basicmathPiOver180))))
		main.Mov(deg, main.Fadd(deg, ir.CF(1)))
	})
	main.Out64(acc)
	main.RetVoid()

	// solve_cubic(b, c, d): one real root via Newton from x0 = 1 - b,
	// then deflation to a quadratic solved by discriminant. Emits the real
	// root, then either the two real roots or (re, im) of the conjugate
	// pair.
	sc := mb.Func("solve_cubic", 3)
	b, c, d := sc.Arg(0), sc.Arg(1), sc.Arg(2)
	x := sc.Let(sc.Fsub(ir.CF(1), b))
	sc.For(ir.C(0), ir.C(basicmathNewton), func(i ir.Reg) {
		x2 := sc.Fmul(x, x)
		x3 := sc.Fmul(x2, x)
		fx := sc.Fadd(sc.Fadd(x3, sc.Fmul(b, x2)), sc.Fadd(sc.Fmul(c, x), d))
		fpx := sc.Fadd(sc.Fadd(sc.Fmul(ir.CF(3), x2), sc.Fmul(sc.Fmul(ir.CF(2), b), x)), c)
		sc.Mov(x, sc.Fsub(x, sc.Fdiv(fx, fpx)))
	})
	sc.Out64(x)
	// Deflate: x^3+bx^2+cx+d = (x - r)(x^2 + px + q).
	p := sc.Fadd(b, x)
	q := sc.Fadd(c, sc.Fmul(p, x))
	disc := sc.Fsub(sc.Fmul(p, p), sc.Fmul(ir.CF(4), q))
	sc.IfElse(sc.Fge(disc, ir.CF(0)), func() {
		s := sc.Fsqrt(disc)
		sc.Out64(sc.Fdiv(sc.Fadd(sc.Fneg(p), s), ir.CF(2)))
		sc.Out64(sc.Fdiv(sc.Fsub(sc.Fneg(p), s), ir.CF(2)))
	}, func() {
		sc.Out64(sc.Fdiv(sc.Fneg(p), ir.CF(2)))
		sc.Out64(sc.Fdiv(sc.Fsqrt(sc.Fneg(disc)), ir.CF(2)))
	})
	sc.RetVoid()

	// usqrt(v): classic bit-by-bit integer square root.
	us := mb.Func("usqrt", 1)
	v := us.Let(us.Arg(0))
	root := us.Let(ir.C(0))
	bit := us.Let(ir.C(1 << 30))
	us.While(func() ir.Src { return us.Ugt(bit, v) }, func() {
		us.Mov(bit, us.Lshr(bit, ir.C(2)))
	})
	us.While(func() ir.Src { return us.Ne(bit, ir.C(0)) }, func() {
		sum := us.Add(root, bit)
		us.IfElse(us.Uge(v, sum), func() {
			us.Mov(v, us.Sub(v, sum))
			us.Mov(root, us.Add(us.Lshr(root, ir.C(1)), bit))
		}, func() {
			us.Mov(root, us.Lshr(root, ir.C(1)))
		})
		us.Mov(bit, us.Lshr(bit, ir.C(2)))
	})
	us.Ret(root)
	return mb.Build()
}

// refBasicmathOutput computes the expected output host-side with the same
// operation order.
func refBasicmathOutput() []byte {
	var out outputBuf
	for _, s := range basicmathCoeffs() {
		b, c, d := s[0], s[1], s[2]
		x := 1 - b
		for i := 0; i < basicmathNewton; i++ {
			x2 := x * x
			x3 := x2 * x
			t1 := b * x2
			t2 := c * x
			fx := (x3 + t1) + (t2 + d)
			u1 := 3 * x2
			u2 := 2 * b
			u3 := u2 * x
			fpx := (u1 + u3) + c
			x = x - fx/fpx
		}
		out.f64(x)
		p := b + x
		pm := p * x
		q := c + pm
		pp := p * p
		q4 := 4 * q
		disc := pp - q4
		if disc >= 0 {
			s := math.Sqrt(disc)
			out.f64((-p + s) / 2)
			out.f64((-p - s) / 2)
		} else {
			out.f64(-p / 2)
			out.f64(math.Sqrt(-disc) / 2)
		}
	}
	for _, u := range basicmathUsqrtInputs() {
		out.u32(refUsqrt(u))
	}
	acc, deg := 0.0, 0.0
	for i := 0; i < basicmathAngles; i++ {
		m := deg * basicmathPiOver180
		acc = acc + m
		deg = deg + 1
	}
	out.f64(acc)
	return out.bytes
}

// refUsqrt mirrors the IR usqrt.
func refUsqrt(v uint32) uint32 {
	var root uint32
	bit := uint32(1 << 30)
	for bit > v {
		bit >>= 2
	}
	for bit != 0 {
		sum := root + bit
		if v >= sum {
			v -= sum
			root = root>>1 + bit
		} else {
			root >>= 1
		}
		bit >>= 2
	}
	return root
}
