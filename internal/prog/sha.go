package prog

import (
	"multiflip/internal/ir"
)

// shaMsgLen is the message length hashed by the sha workload.
const shaMsgLen = 256

// shaInput returns the deterministic message buffer (stands in for
// MiBench's ASCII input file).
func shaInput() []byte {
	r := inputRand("sha")
	msg := make([]byte, shaMsgLen)
	for i := range msg {
		msg[i] = byte(' ' + r.Intn(95)) // printable ASCII
	}
	return msg
}

// buildSHA constructs a complete SHA-1: message padding, big-endian block
// decoding, the 80-word schedule and all 80 rounds per block, emitting the
// five digest words.
func buildSHA() (*ir.Program, error) {
	msg := shaInput()
	// Padded length: message + 0x80 + zeros + 8-byte big-endian bit length,
	// rounded to a 64-byte multiple.
	padded := ((shaMsgLen+8)/64 + 1) * 64
	blocks := padded / 64

	mb := ir.NewModule("sha")
	gMsg := mb.GlobalBytes(msg)
	gBuf := mb.GlobalZero(padded) // working buffer: message + padding
	gW := mb.GlobalZero(80 * 4)   // round schedule

	f := mb.Func("main", 0)

	// --- padding (done by the program itself, as in MiBench) ---
	f.For(ir.C(0), ir.C(shaMsgLen), func(i ir.Reg) {
		f.Store8(f.Idx(ir.C(gBuf), i, 1), f.Load8(f.Idx(ir.C(gMsg), i, 1), 0), 0)
	})
	f.Store8(ir.C(gBuf+shaMsgLen), ir.C(0x80), 0)
	// Bit length, big-endian, in the last 8 bytes.
	bitLen := uint64(shaMsgLen) * 8
	for i := 0; i < 8; i++ {
		f.Store8(ir.C(gBuf+uint64(padded)-8+uint64(i)), ir.C((bitLen>>uint(56-8*i))&0xff), 0)
	}

	// --- digest state ---
	h0 := f.Let(ir.C(0x67452301))
	h1 := f.Let(ir.C(0xEFCDAB89))
	h2 := f.Let(ir.C(0x98BADCFE))
	h3 := f.Let(ir.C(0x10325476))
	h4 := f.Let(ir.C(0xC3D2E1F0))

	rotl := func(x ir.Src, n uint) ir.Reg {
		return f.Or(f.Shl(x, ir.C(uint64(n))), f.Lshr(x, ir.C(uint64(32-n))))
	}

	f.For(ir.C(0), ir.C(uint64(blocks)), func(blk ir.Reg) {
		base := f.Idx(ir.C(gBuf), blk, 64)
		// Load 16 big-endian words.
		f.For(ir.C(0), ir.C(16), func(i ir.Reg) {
			p := f.Idx(base, i, 4)
			b0 := f.Load8(p, 0)
			b1 := f.Load8(p, 1)
			b2 := f.Load8(p, 2)
			b3 := f.Load8(p, 3)
			w := f.Or(f.Or(f.Shl(b0, ir.C(24)), f.Shl(b1, ir.C(16))),
				f.Or(f.Shl(b2, ir.C(8)), b3))
			f.Store32(f.Idx(ir.C(gW), i, 4), w, 0)
		})
		// Extend to 80 words.
		f.For(ir.C(16), ir.C(80), func(i ir.Reg) {
			x := f.Xor(
				f.Xor(
					f.Load32(f.Idx(ir.C(gW), f.Sub(i, ir.C(3)), 4), 0),
					f.Load32(f.Idx(ir.C(gW), f.Sub(i, ir.C(8)), 4), 0)),
				f.Xor(
					f.Load32(f.Idx(ir.C(gW), f.Sub(i, ir.C(14)), 4), 0),
					f.Load32(f.Idx(ir.C(gW), f.Sub(i, ir.C(16)), 4), 0)))
			f.Store32(f.Idx(ir.C(gW), i, 4), rotl(x, 1), 0)
		})
		// 80 rounds.
		a := f.Let(h0)
		b := f.Let(h1)
		c := f.Let(h2)
		d := f.Let(h3)
		e := f.Let(h4)
		f.For(ir.C(0), ir.C(80), func(i ir.Reg) {
			// Round function and constant by quarter.
			fv := f.Let(ir.C(0))
			kv := f.Let(ir.C(0))
			q := f.Sdiv(i, ir.C(20))
			f.If(f.Eq(q, ir.C(0)), func() {
				f.Mov(fv, f.Or(f.And(b, c), f.And(f.Xor(b, ir.C(0xFFFFFFFF)), d)))
				f.Mov(kv, ir.C(0x5A827999))
			})
			f.If(f.Eq(q, ir.C(1)), func() {
				f.Mov(fv, f.Xor(f.Xor(b, c), d))
				f.Mov(kv, ir.C(0x6ED9EBA1))
			})
			f.If(f.Eq(q, ir.C(2)), func() {
				f.Mov(fv, f.Or(f.Or(f.And(b, c), f.And(b, d)), f.And(c, d)))
				f.Mov(kv, ir.C(0x8F1BBCDC))
			})
			f.If(f.Eq(q, ir.C(3)), func() {
				f.Mov(fv, f.Xor(f.Xor(b, c), d))
				f.Mov(kv, ir.C(0xCA62C1D6))
			})
			wi := f.Load32(f.Idx(ir.C(gW), i, 4), 0)
			tmp := f.Add(f.Add(f.Add(rotl(a, 5), fv), f.Add(e, kv)), wi)
			f.Mov(e, d)
			f.Mov(d, c)
			f.Mov(c, rotl(b, 30))
			f.Mov(b, a)
			f.Mov(a, tmp)
		})
		f.Mov(h0, f.Add(h0, a))
		f.Mov(h1, f.Add(h1, b))
		f.Mov(h2, f.Add(h2, c))
		f.Mov(h3, f.Add(h3, d))
		f.Mov(h4, f.Add(h4, e))
	})
	f.Out32(h0)
	f.Out32(h1)
	f.Out32(h2)
	f.Out32(h3)
	f.Out32(h4)
	f.RetVoid()
	return mb.Build()
}
