package prog

import (
	"multiflip/internal/ir"
)

// qsortN is the number of 32-bit words sorted by the qsort workload.
const qsortN = 150

// qsortInput returns the deterministic unsorted word list.
func qsortInput() []uint32 {
	r := inputRand("qsort")
	vals := make([]uint32, qsortN)
	for i := range vals {
		vals[i] = uint32(r.Uint64()) // full signed range
	}
	return vals
}

// buildQsort constructs a recursive Lomuto-partition quicksort over a
// global word array, emitting the sorted array. Comparisons are signed,
// like the MiBench program's integer comparator.
func buildQsort() (*ir.Program, error) {
	input := qsortInput()
	mb := ir.NewModule("qsort")
	gArr := mb.GlobalU32s(input)

	main := mb.Func("main", 0)
	main.CallVoid("quicksort", ir.C(gArr), ir.C(0), ir.C(qsortN-1))
	main.For(ir.C(0), ir.C(qsortN), func(i ir.Reg) {
		main.Out32(main.Load32(main.Idx(ir.C(gArr), i, 4), 0))
	})
	main.RetVoid()

	qs := mb.Func("quicksort", 3) // arr, lo, hi (signed i32 bounds)
	arr, lo, hi := qs.Arg(0), qs.Arg(1), qs.Arg(2)
	qs.If(qs.Sge(lo, hi), func() { qs.RetVoid() })
	// Lomuto partition with arr[hi] as pivot.
	pivot := qs.Load32(qs.Idx(arr, hi, 4), 0)
	i := qs.Let(qs.Sub(lo, ir.C(1)))
	qs.For(lo, hi, func(j ir.Reg) {
		vj := qs.Load32(qs.Idx(arr, j, 4), 0)
		qs.If(qs.Sle(vj, pivot), func() {
			qs.Mov(i, qs.Add(i, ir.C(1)))
			vi := qs.Load32(qs.Idx(arr, i, 4), 0)
			qs.Store32(qs.Idx(arr, i, 4), vj, 0)
			qs.Store32(qs.Idx(arr, j, 4), vi, 0)
		})
	})
	p := qs.Add(i, ir.C(1))
	vp := qs.Load32(qs.Idx(arr, p, 4), 0)
	vh := qs.Load32(qs.Idx(arr, hi, 4), 0)
	qs.Store32(qs.Idx(arr, p, 4), vh, 0)
	qs.Store32(qs.Idx(arr, hi, 4), vp, 0)
	qs.CallVoid("quicksort", arr, lo, qs.Sub(p, ir.C(1)))
	qs.CallVoid("quicksort", arr, qs.Add(p, ir.C(1)), hi)
	qs.RetVoid()
	return mb.Build()
}
