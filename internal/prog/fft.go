package prog

import (
	"math"

	"multiflip/internal/ir"
)

// fftN is the transform size (power of two).
const fftN = 32

// fftSignal returns the deterministic real input signal.
func fftSignal() []float64 {
	r := inputRand("FFT")
	sig := make([]float64, fftN)
	for i := range sig {
		sig[i] = -1 + 2*r.Float64()
	}
	return sig
}

// fftTwiddles returns the cos/sin tables for the butterflies. Trig values
// are precomputed host-side (the IR has no transcendental ops; a real
// program would read them from libm — this stands in for that table).
func fftTwiddles() (cosTab, sinTab []float64) {
	cosTab = make([]float64, fftN/2)
	sinTab = make([]float64, fftN/2)
	for k := range cosTab {
		ang := -2 * math.Pi * float64(k) / fftN
		cosTab[k] = math.Cos(ang)
		sinTab[k] = math.Sin(ang)
	}
	return cosTab, sinTab
}

// fftBits is log2(fftN).
func fftBits() int {
	b := 0
	for 1<<uint(b) < fftN {
		b++
	}
	return b
}

// emitFFTKernel emits an in-place iterative radix-2 transform over the
// re/im arrays using the given twiddle tables. Shared by FFT and IFFT.
func emitFFTKernel(f *ir.FuncBuilder, gRe, gIm, gCos, gSin uint64) {
	bitsN := fftBits()
	// Bit-reversal permutation, computing the reversed index in IR.
	f.For(ir.C(0), ir.C(fftN), func(i ir.Reg) {
		rev := f.Let(ir.C(0))
		v := f.Let(i)
		for b := 0; b < bitsN; b++ {
			f.Mov(rev, f.Or(f.Shl(rev, ir.C(1)), f.And(v, ir.C(1))))
			f.Mov(v, f.Lshr(v, ir.C(1)))
		}
		f.If(f.Ult(i, rev), func() {
			pi := f.Idx(ir.C(gRe), i, 8)
			pr := f.Idx(ir.C(gRe), rev, 8)
			qi := f.Idx(ir.C(gIm), i, 8)
			qr := f.Idx(ir.C(gIm), rev, 8)
			t1 := f.LoadF(pi, 0)
			f.StoreF(pi, f.LoadF(pr, 0), 0)
			f.StoreF(pr, t1, 0)
			t2 := f.LoadF(qi, 0)
			f.StoreF(qi, f.LoadF(qr, 0), 0)
			f.StoreF(qr, t2, 0)
		})
	})
	// Butterfly stages.
	length := f.Let(ir.C(2))
	f.While(func() ir.Src { return f.Ule(length, ir.C(fftN)) }, func() {
		half := f.Udiv(length, ir.C(2))
		step := f.Udiv(ir.C(fftN), length)
		i := f.Let(ir.C(0))
		f.While(func() ir.Src { return f.Ult(i, ir.C(fftN)) }, func() {
			f.For(ir.C(0), half, func(j ir.Reg) {
				tw := f.Mul(j, step)
				wr := f.LoadF(f.Idx(ir.C(gCos), tw, 8), 0)
				wi := f.LoadF(f.Idx(ir.C(gSin), tw, 8), 0)
				a := f.Add(i, j)
				b := f.Add(a, half)
				pa := f.Idx(ir.C(gRe), a, 8)
				qa := f.Idx(ir.C(gIm), a, 8)
				pb := f.Idx(ir.C(gRe), b, 8)
				qb := f.Idx(ir.C(gIm), b, 8)
				xr := f.LoadF(pb, 0)
				xi := f.LoadF(qb, 0)
				// (vr, vi) = (xr, xi) * (wr, wi)
				vr := f.Fsub(f.Fmul(xr, wr), f.Fmul(xi, wi))
				vi := f.Fadd(f.Fmul(xr, wi), f.Fmul(xi, wr))
				ur := f.LoadF(pa, 0)
				ui := f.LoadF(qa, 0)
				f.StoreF(pa, f.Fadd(ur, vr), 0)
				f.StoreF(qa, f.Fadd(ui, vi), 0)
				f.StoreF(pb, f.Fsub(ur, vr), 0)
				f.StoreF(qb, f.Fsub(ui, vi), 0)
			})
			f.Mov(i, f.Add(i, length))
		})
		f.Mov(length, f.Mul(length, ir.C(2)))
	})
}

// buildFFT constructs the forward transform of the input signal, emitting
// the full complex spectrum.
func buildFFT() (*ir.Program, error) {
	sig := fftSignal()
	cosTab, sinTab := fftTwiddles()
	mb := ir.NewModule("FFT")
	gRe := mb.GlobalF64s(sig)
	gIm := mb.GlobalF64s(make([]float64, fftN))
	gCos := mb.GlobalF64s(cosTab)
	gSin := mb.GlobalF64s(sinTab)

	f := mb.Func("main", 0)
	emitFFTKernel(f, gRe, gIm, gCos, gSin)
	f.For(ir.C(0), ir.C(fftN), func(i ir.Reg) {
		f.Out64(f.LoadF(f.Idx(ir.C(gRe), i, 8), 0))
		f.Out64(f.LoadF(f.Idx(ir.C(gIm), i, 8), 0))
	})
	f.RetVoid()
	return mb.Build()
}

// buildIFFT constructs the inverse transform of the signal's precomputed
// spectrum (conjugate twiddles plus 1/N scaling), emitting the recovered
// time-domain samples.
func buildIFFT() (*ir.Program, error) {
	// The input spectrum is the host-computed forward transform of the
	// same signal, so IFFT operates on realistic frequency data.
	re, im := refFFT(fftSignal())
	cosTab, sinTab := fftTwiddles()
	inv := make([]float64, len(sinTab))
	for i, s := range sinTab {
		inv[i] = -s // conjugate twiddles
	}
	mb := ir.NewModule("IFFT")
	gRe := mb.GlobalF64s(re)
	gIm := mb.GlobalF64s(im)
	gCos := mb.GlobalF64s(cosTab)
	gSin := mb.GlobalF64s(inv)

	f := mb.Func("main", 0)
	emitFFTKernel(f, gRe, gIm, gCos, gSin)
	scale := ir.CF(1.0 / fftN)
	f.For(ir.C(0), ir.C(fftN), func(i ir.Reg) {
		f.Out64(f.Fmul(f.LoadF(f.Idx(ir.C(gRe), i, 8), 0), scale))
		f.Out64(f.Fmul(f.LoadF(f.Idx(ir.C(gIm), i, 8), 0), scale))
	})
	f.RetVoid()
	return mb.Build()
}

// refFFT runs the identical radix-2 algorithm host-side (same operation
// order, so results are bit-identical to the VM's). Used to prepare IFFT
// input and by tests as the reference implementation.
func refFFT(signal []float64) (re, im []float64) {
	re = append([]float64(nil), signal...)
	im = make([]float64, fftN)
	cosTab, sinTab := fftTwiddles()
	bitsN := fftBits()
	for i := 0; i < fftN; i++ {
		rev := 0
		v := i
		for b := 0; b < bitsN; b++ {
			rev = rev<<1 | v&1
			v >>= 1
		}
		if i < rev {
			re[i], re[rev] = re[rev], re[i]
			im[i], im[rev] = im[rev], im[i]
		}
	}
	for length := 2; length <= fftN; length *= 2 {
		half := length / 2
		step := fftN / length
		for i := 0; i < fftN; i += length {
			for j := 0; j < half; j++ {
				wr := cosTab[j*step]
				wi := sinTab[j*step]
				a, b := i+j, i+j+half
				xr, xi := re[b], im[b]
				m1 := xr * wr
				m2 := xi * wi
				m3 := xr * wi
				m4 := xi * wr
				vr := m1 - m2
				vi := m3 + m4
				ur, ui := re[a], im[a]
				re[a], im[a] = ur+vr, ui+vi
				re[b], im[b] = ur-vr, ui-vi
			}
		}
	}
	return re, im
}

// refIFFT runs the identical inverse transform host-side.
func refIFFT(re, im []float64) (outRe, outIm []float64) {
	cosTab, sinTab := fftTwiddles()
	inv := make([]float64, len(sinTab))
	for i, s := range sinTab {
		inv[i] = -s
	}
	outRe = append([]float64(nil), re...)
	outIm = append([]float64(nil), im...)
	bitsN := fftBits()
	for i := 0; i < fftN; i++ {
		rev := 0
		v := i
		for b := 0; b < bitsN; b++ {
			rev = rev<<1 | v&1
			v >>= 1
		}
		if i < rev {
			outRe[i], outRe[rev] = outRe[rev], outRe[i]
			outIm[i], outIm[rev] = outIm[rev], outIm[i]
		}
	}
	for length := 2; length <= fftN; length *= 2 {
		half := length / 2
		step := fftN / length
		for i := 0; i < fftN; i += length {
			for j := 0; j < half; j++ {
				wr := cosTab[j*step]
				wi := inv[j*step]
				a, b := i+j, i+j+half
				xr, xi := outRe[b], outIm[b]
				m1 := xr * wr
				m2 := xi * wi
				m3 := xr * wi
				m4 := xi * wr
				vr := m1 - m2
				vi := m3 + m4
				ur, ui := outRe[a], outIm[a]
				outRe[a], outIm[a] = ur+vr, ui+vi
				outRe[b], outIm[b] = ur-vr, ui-vi
			}
		}
	}
	for i := range outRe {
		outRe[i] *= 1.0 / fftN
		outIm[i] *= 1.0 / fftN
	}
	return outRe, outIm
}
