package prog

import (
	"encoding/binary"
	"math"
)

// outputBuf accumulates expected program output for the host-side
// reference implementations, using the same little-endian encoding as the
// VM's Out instruction.
type outputBuf struct {
	bytes []byte
}

func (o *outputBuf) u8(v uint8) {
	o.bytes = append(o.bytes, v)
}

func (o *outputBuf) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	o.bytes = append(o.bytes, b[:]...)
}

func (o *outputBuf) i32(v int32) { o.u32(uint32(v)) }

func (o *outputBuf) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	o.bytes = append(o.bytes, b[:]...)
}

func (o *outputBuf) f64(v float64) { o.u64(math.Float64bits(v)) }
