package prog

import (
	"multiflip/internal/ir"
)

// crcInputLen is the data-buffer length checksummed by the CRC32 workload.
const crcInputLen = 512

// crcInput returns the deterministic input buffer (stands in for MiBench's
// sound file).
func crcInput() []byte {
	r := inputRand("CRC32")
	buf := make([]byte, crcInputLen)
	for i := range buf {
		buf[i] = byte(r.Uint64())
	}
	return buf
}

// buildCRC32 constructs the CRC32 workload: it derives the IEEE-802.3
// reflected lookup table in IR (as the MiBench program does at startup) and
// folds the input buffer through it, emitting the final checksum.
func buildCRC32() (*ir.Program, error) {
	input := crcInput()
	mb := ir.NewModule("CRC32")
	gIn := mb.GlobalBytes(input)
	gTab := mb.GlobalZero(256 * 4)

	f := mb.Func("main", 0)
	// Build the 256-entry reflected table: for each byte value, eight
	// conditional polynomial folds.
	f.For(ir.C(0), ir.C(256), func(i ir.Reg) {
		c := f.Let(i)
		f.For(ir.C(0), ir.C(8), func(k ir.Reg) {
			lsb := f.And(c, ir.C(1))
			sh := f.Lshr(c, ir.C(1))
			folded := f.Xor(sh, ir.C(0xEDB88320))
			f.Mov(c, f.Select(lsb, folded, sh))
		})
		f.Store32(f.Idx(ir.C(gTab), i, 4), c, 0)
	})
	// Fold the buffer.
	crc := f.Let(ir.C(0xFFFFFFFF))
	f.For(ir.C(0), ir.C(crcInputLen), func(i ir.Reg) {
		b := f.Load8(f.Idx(ir.C(gIn), i, 1), 0)
		idx := f.And(f.Xor(crc, b), ir.C(0xFF))
		entry := f.Load32(f.Idx(ir.C(gTab), idx, 4), 0)
		f.Mov(crc, f.Xor(entry, f.Lshr(crc, ir.C(8))))
	})
	f.Out32(f.Xor(crc, ir.C(0xFFFFFFFF)))
	f.RetVoid()
	return mb.Build()
}
