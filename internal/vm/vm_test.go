package vm

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"multiflip/internal/ir"
)

// buildAndRun builds a single-function program via fn and runs it.
func buildAndRun(t *testing.T, fn func(mb *ir.ModuleBuilder, f *ir.FuncBuilder)) *Result {
	t.Helper()
	mb := ir.NewModule("t")
	f := mb.Func("main", 0)
	fn(mb, f)
	p, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func out32(vals ...uint32) []byte {
	var buf bytes.Buffer
	for _, v := range vals {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	return buf.Bytes()
}

func TestArithmetic(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		f.Out32(f.Add(ir.C(40), ir.C(2)))
		f.Out32(f.Sub(ir.C(1), ir.C(2))) // -1 => 0xffffffff
		f.Out32(f.Mul(ir.C(7), ir.C(6)))
		f.Out32(f.Udiv(ir.C(100), ir.C(7)))   // 14
		f.Out32(f.Sdiv(ir.CI(-100), ir.C(7))) // -14
		f.Out32(f.Srem(ir.CI(-100), ir.C(7))) // -2
		f.Out32(f.Shl(ir.C(1), ir.C(5)))      // 32
		f.Out32(f.Ashr(ir.CI(-8), ir.C(1)))   // -4
		f.Out32(f.Lshr(ir.CI(-8), ir.C(1)))   // 0x7ffffffc
		f.RetVoid()
	})
	want := out32(42, 0xffffffff, 42, 14, uint32(0xfffffff2), uint32(0xfffffffe),
		32, uint32(0xfffffffc), 0x7ffffffc)
	if res.Stop != StopReturned {
		t.Fatalf("stop = %v", res.Stop)
	}
	if !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
}

func TestComparisonsAndSelect(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		f.Out32(f.Slt(ir.CI(-1), ir.C(1)))             // 1 (signed)
		f.Out32(f.Ult(ir.CI(-1), ir.C(1)))             // 0 (unsigned: 0xffffffff > 1)
		f.Out32(f.Eq(ir.C(5), ir.C(5)))                // 1
		f.Out32(f.Select(ir.C(1), ir.C(10), ir.C(20))) // 10
		f.Out32(f.Select(ir.C(0), ir.C(10), ir.C(20))) // 20
		f.RetVoid()
	})
	want := out32(1, 0, 1, 10, 20)
	if !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
}

func TestFloatOps(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		s := f.Fadd(ir.CF(1.5), ir.CF(2.25))
		f.Out64(s)                              // 3.75
		f.Out64(f.Fsqrt(ir.CF(9.0)))            // 3
		f.Out64(f.Fdiv(ir.CF(1.0), ir.CF(0.0))) // +Inf, no trap
		f.Out32(f.FpToSi(ir.W32, ir.CF(-2.9)))  // -2 (truncation)
		f.Out64(f.SiToFp(ir.W32, ir.CI(-3)))    // -3.0
		f.RetVoid()
	})
	if res.Stop != StopReturned {
		t.Fatalf("stop = %v trap=%v", res.Stop, res.Trap)
	}
	buf := res.Output
	if got := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])); got != 3.75 {
		t.Errorf("fadd = %v", got)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])); got != 3 {
		t.Errorf("fsqrt = %v", got)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])); !math.IsInf(got, 1) {
		t.Errorf("fdiv by zero = %v, want +Inf", got)
	}
	if got := int32(binary.LittleEndian.Uint32(buf[24:])); got != -2 {
		t.Errorf("fptosi = %d", got)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(buf[28:])); got != -3 {
		t.Errorf("sitofp = %v", got)
	}
}

func TestGlobalsAndMemory(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		g := mb.GlobalU32s([]uint32{11, 22, 33})
		sum := f.Let(ir.C(0))
		f.For(ir.C(0), ir.C(3), func(i ir.Reg) {
			f.Mov(sum, f.Add(sum, f.Load32(f.Idx(ir.C(g), i, 4), 0)))
		})
		f.Out32(sum)
		f.RetVoid()
	})
	if !bytes.Equal(res.Output, out32(66)) {
		t.Fatalf("output = %x", res.Output)
	}
}

func TestAllocaStack(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		buf := f.Alloca(64)
		f.For(ir.C(0), ir.C(8), func(i ir.Reg) {
			f.Store64(f.Idx(buf, i, 8), i, 0)
		})
		sum := f.Let(ir.C(0))
		f.For(ir.C(0), ir.C(8), func(i ir.Reg) {
			f.Mov(sum, f.Add(sum, f.Load64(f.Idx(buf, i, 8), 0)))
		})
		f.Out32(sum) // 0+1+...+7 = 28
		f.RetVoid()
	})
	if !bytes.Equal(res.Output, out32(28)) {
		t.Fatalf("output = %x", res.Output)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	mb := ir.NewModule("fib")
	main := mb.Func("main", 0)
	main.Out32(main.Call("fib", ir.C(10)))
	main.RetVoid()
	fib := mb.Func("fib", 1)
	n := fib.Arg(0)
	fib.If(fib.Slt(n, ir.C(2)), func() { fib.Ret(n) })
	a := fib.Call("fib", fib.Sub(n, ir.C(1)))
	b := fib.Call("fib", fib.Sub(n, ir.C(2)))
	fib.Ret(fib.Add(a, b))
	p := mb.MustBuild()
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, out32(55)) {
		t.Fatalf("fib(10) output = %x", res.Output)
	}
}

func TestTrapDivZero(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		z := f.Let(ir.C(0))
		f.Out32(f.Udiv(ir.C(1), z))
		f.RetVoid()
	})
	if res.Stop != StopTrap || res.Trap != TrapArithmetic {
		t.Fatalf("stop=%v trap=%v, want arithmetic trap", res.Stop, res.Trap)
	}
}

func TestTrapSDivOverflow(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		f.Out32(f.Sdiv(ir.C(0x80000000), ir.CI(-1)))
		f.RetVoid()
	})
	if res.Trap != TrapArithmetic {
		t.Fatalf("trap = %v, want arithmetic", res.Trap)
	}
}

func TestTrapSegfault(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		f.Out32(f.Load32(ir.C(0x10), 0)) // null-ish pointer
		f.RetVoid()
	})
	if res.Stop != StopTrap || res.Trap != TrapSegfault {
		t.Fatalf("stop=%v trap=%v, want segfault", res.Stop, res.Trap)
	}
}

func TestTrapSegfaultPastGlobals(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		g := mb.GlobalU32s([]uint32{1})
		f.Out32(f.Load32(ir.C(g+4096), 0))
		f.RetVoid()
	})
	if res.Trap != TrapSegfault {
		t.Fatalf("trap = %v, want segfault", res.Trap)
	}
}

func TestTrapMisaligned(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		g := mb.GlobalU32s([]uint32{1, 2})
		f.Out32(f.Load32(ir.C(g+1), 0))
		f.RetVoid()
	})
	if res.Trap != TrapMisaligned {
		t.Fatalf("trap = %v, want misaligned", res.Trap)
	}
}

func TestTrapStackOverflowRecursion(t *testing.T) {
	mb := ir.NewModule("t")
	main := mb.Func("main", 0)
	main.CallVoid("rec", ir.C(0))
	main.RetVoid()
	rec := mb.Func("rec", 1)
	rec.CallVoid("rec", rec.Arg(0))
	rec.RetVoid()
	res, err := Run(mb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != TrapStackOverflow {
		t.Fatalf("trap = %v, want stack overflow", res.Trap)
	}
}

func TestTrapStackOverflowAlloca(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		f.For(ir.C(0), ir.C(100000), func(i ir.Reg) {
			f.Alloca(1 << 16)
		})
		f.RetVoid()
	})
	if res.Trap != TrapStackOverflow {
		t.Fatalf("trap = %v, want stack overflow", res.Trap)
	}
}

func TestTrapAbort(t *testing.T) {
	res := buildAndRun(t, func(mb *ir.ModuleBuilder, f *ir.FuncBuilder) {
		f.Abort()
	})
	if res.Trap != TrapAbort {
		t.Fatalf("trap = %v, want abort", res.Trap)
	}
}

func TestHangBudget(t *testing.T) {
	mb := ir.NewModule("t")
	f := mb.Func("main", 0)
	l := f.NewLabel()
	f.Bind(l)
	f.Jmp(l)
	res, err := Run(mb.MustBuild(), Options{MaxDyn: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopHang {
		t.Fatalf("stop = %v, want hang", res.Stop)
	}
	if res.Dyn != 1000 {
		t.Fatalf("dyn = %d, want 1000", res.Dyn)
	}
}

func TestOutputLimit(t *testing.T) {
	mb := ir.NewModule("t")
	f := mb.Func("main", 0)
	l := f.NewLabel()
	f.Bind(l)
	f.Out32(ir.C(1))
	f.Jmp(l)
	res, err := Run(mb.MustBuild(), Options{MaxOutput: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopOutputLimit {
		t.Fatalf("stop = %v, want output-limit", res.Stop)
	}
}

func TestStackFreedOnReturn(t *testing.T) {
	// Alloca space must be released at return so deep call sequences
	// don't exhaust the stack.
	mb := ir.NewModule("t")
	main := mb.Func("main", 0)
	main.For(ir.C(0), ir.C(10000), func(i ir.Reg) {
		main.CallVoid("user", i)
	})
	main.Out32(ir.C(7))
	main.RetVoid()
	user := mb.Func("user", 1)
	buf := user.Alloca(512)
	user.Store32(buf, user.Arg(0), 0)
	user.RetVoid()
	res, err := Run(mb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopReturned {
		t.Fatalf("stop=%v trap=%v, want clean return", res.Stop, res.Trap)
	}
}

func TestStaleStackUnmappedAfterReturn(t *testing.T) {
	// An address into a popped frame is unmapped (fresh sp=0 at main scope
	// if main made no allocas) — accessing it faults.
	mb := ir.NewModule("t")
	main := mb.Func("main", 0)
	addr := main.Call("leak")
	main.Out32(main.Load32(addr, 0)) // dangling stack address
	main.RetVoid()
	leak := mb.Func("leak", 0)
	b := leak.Alloca(16)
	leak.Store32(b, ir.C(42), 0)
	leak.Ret(b)
	res, err := Run(mb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != TrapSegfault {
		t.Fatalf("trap = %v, want segfault on dangling stack address", res.Trap)
	}
}

func TestProfileCounts(t *testing.T) {
	mb := ir.NewModule("t")
	f := mb.Func("main", 0)
	x := f.Let(ir.C(1)) // mov imm: 0 reads, 1 write
	y := f.Add(x, x)    // 2 reads, 1 write
	f.Out32(y)          // 1 read, 0 writes
	f.RetVoid()         // 0 reads
	p := mb.MustBuild()
	res, err := Profile(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dyn != 4 {
		t.Errorf("dyn = %d, want 4", res.Dyn)
	}
	if res.ReadSlots != 3 {
		t.Errorf("readSlots = %d, want 3", res.ReadSlots)
	}
	if res.Writes != 2 {
		t.Errorf("writes = %d, want 2", res.Writes)
	}
}

func TestProfileRejectsTrappingProgram(t *testing.T) {
	mb := ir.NewModule("t")
	f := mb.Func("main", 0)
	f.Abort()
	if _, err := Profile(mb.MustBuild()); err == nil {
		t.Fatal("expected error profiling a trapping program")
	}
}

func TestDeterministicRuns(t *testing.T) {
	mb := ir.NewModule("t")
	f := mb.Func("main", 0)
	g := mb.GlobalZero(256)
	f.For(ir.C(0), ir.C(64), func(i ir.Reg) {
		f.Store32(f.Idx(ir.C(g), i, 4), f.Mul(i, i), 0)
	})
	sum := f.Let(ir.C(0))
	f.For(ir.C(0), ir.C(64), func(i ir.Reg) {
		f.Mov(sum, f.Add(sum, f.Load32(f.Idx(ir.C(g), i, 4), 0)))
	})
	f.Out32(sum)
	f.RetVoid()
	p := mb.MustBuild()
	a, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Output, b.Output) || a.Dyn != b.Dyn ||
		a.ReadSlots != b.ReadSlots || a.Writes != b.Writes {
		t.Fatal("identical runs produced different observables")
	}
}

func TestGlobalsNotSharedAcrossRuns(t *testing.T) {
	// A run mutating globals must not leak into the next run.
	mb := ir.NewModule("t")
	f := mb.Func("main", 0)
	g := mb.GlobalU32s([]uint32{1})
	v := f.Load32(ir.C(g), 0)
	f.Store32(ir.C(g), f.Add(v, ir.C(1)), 0)
	f.Out32(v)
	f.RetVoid()
	p := mb.MustBuild()
	a, _ := Run(p, Options{})
	b, _ := Run(p, Options{})
	if !bytes.Equal(a.Output, b.Output) {
		t.Fatal("global mutation leaked across runs")
	}
}
