package vm

// Convergence-gated early termination. A fault-injection experiment whose
// flipped bits are overwritten before they are read reconverges with the
// golden run: from that point on its execution is bit-identical to the
// fault-free run, so its outcome is already known. This file implements
// the detector.
//
// The golden (checkpointing) run records a GoldenTrace: at every snapshot
// boundary, a fingerprint of the full machine state — memory via
// incrementally maintained per-page hashes (piggybacking on the
// copy-on-write dirty bitmap, so hashing scales with the interval's write
// set, not with segment size), the register arena and call frames, and
// the output prefix. An injected run carrying the trace maintains the
// same incremental fingerprint and, once its injections are complete,
// compares it against the golden entry at matching dynamic-instruction
// boundaries. On a match the state is bit-identical to the golden state
// at the same instant, the continuation is fully determined, and the run
// terminates immediately with the golden outcome, output and counters
// (Result.Converged marks the provenance).
//
// The same fingerprint doubles as a fault-equivalence key: at the first
// boundary after injection completes, the run's StateKey identifies its
// post-injection state. Campaign runners memoize outcomes by StateKey, so
// experiments that collapse to an already-seen injected state reuse the
// recorded outcome instead of re-executing (Options.MemoCheck, StopMemo).
//
// Memory fingerprints are defined relative to the program image: the
// contribution of a page is H(current) XOR H(image), folded into one
// running value with XOR, so untouched pages contribute nothing and
// neither side ever hashes a full segment. Page hashes are recorded at
// the first store to a page (its content is then still the pre-fault
// baseline), which makes the scheme exact without consulting the image.

import (
	"encoding/binary"
	"os"
	"sort"

	"multiflip/internal/ir"
)

// convergeEnabled is the process-wide convergence kill switch: setting
// MULTIFLIP_NOCONVERGE forces every run to execute to completion even
// when a golden trace is available. CI's convergence-ablation job uses it
// to keep both paths green; Options.NoConverge disables it per run.
var convergeEnabled = os.Getenv("MULTIFLIP_NOCONVERGE") == ""

// GoldenTrace is a golden run's per-boundary state-hash trace plus its
// final observables. It is immutable once recorded, so one trace (stored
// on the campaign target) serves any number of concurrent experiments.
type GoldenTrace struct {
	prog    *ir.Program
	entries []traceEntry // ascending dyn, one per snapshot boundary

	finalDyn       uint64
	finalReadSlots uint64
	finalWrites    uint64
	finalOut       []byte
	finalStop      StopReason
	maxFrames      int
	noAlign        bool
}

// Entries reports the number of recorded boundaries (diagnostics only).
func (t *GoldenTrace) Entries() int { return len(t.entries) }

// traceEntry fingerprints the golden machine state after dyn instructions.
type traceEntry struct {
	dyn       uint64
	readSlots uint64
	writes    uint64
	memH      uint64 // memory fingerprint, relative to the program image
	regsH     uint64 // register arena + call frames + sp
	outH      uint64 // rolling FNV-1a over the output prefix
	outLen    uint64
}

// StateKey fingerprints a run's machine state at the first event-horizon
// boundary after its injections completed. Equal keys mean (up to hash
// collision) bit-identical states at the same dynamic instant, hence
// identical continuations: campaign runners use it to memoize outcomes
// across fault-equivalent experiments.
type StateKey struct {
	Dyn    uint64
	Mem    uint64
	Regs   uint64
	Out    uint64
	OutLen uint64
}

// entryAt returns the trace entry recorded exactly at dyn, or nil.
func (t *GoldenTrace) entryAt(dyn uint64) *traceEntry {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].dyn >= dyn })
	if i < len(t.entries) && t.entries[i].dyn == dyn {
		return &t.entries[i]
	}
	return nil
}

// compatible reports whether a converged run under m's options would
// replay the golden continuation unchanged: the golden run terminated
// normally and fits within this run's budgets, and the exception surface
// matches. A mismatch silently disables convergence — the run is still
// correct, just never early-terminated.
func (t *GoldenTrace) compatible(m *machine) bool {
	return t.finalStop == StopReturned &&
		t.finalDyn <= m.maxDyn &&
		len(t.finalOut) <= m.maxOut &&
		t.maxFrames <= m.maxDepth &&
		t.noAlign == m.noAlign
}

// noConv disables convergence checks in the interpreter loop.
const noConv = ^uint64(0)

// Hashing. Page and register hashes use word-wise FNV-1a with a splitmix
// pre-mix; the output hash is byte-serial FNV-1a so it can be absorbed in
// arbitrary chunks (golden and injected runs reach boundaries with
// different output increments).
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
	hashPhi   uint64 = 0x9e3779b97f4a7c15

	saltGlobals uint64 = 0x67b5a2f1c4d98e37
	saltStack   uint64 = 0x51c64b8f9ea3d70b
)

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// absorb folds one word into a running hash: word-wise FNV-1a with a
// shift-xor diffusion round after the multiply (the callers apply mix64
// once at the end). The diffusion step is load-bearing for correctness,
// not just quality: under plain (h^v)*prime, a difference confined to a
// word's top byte stays in the running hash's top byte forever —
// d·2^56·prime mod 2^64 = (d·0xb3 mod 256)·2^56 — so several corrupted
// words whose deltas sit in bits 56..63 can cancel mod 256, a ~1/256
// state-fingerprint collision instead of 2^-64. (The VM fuzzer found
// exactly that: an injected run with 1<<56 in four registers hashed
// equal to the golden arena and false-converged.) Folding the high half
// back down after each multiply breaks the closed subgroup: the next
// multiply spreads the delta full-width.
func absorb(h, v uint64) uint64 {
	h = (h ^ v) * fnvPrime
	return h ^ h>>32
}

// hashPage hashes one page's content under seed, implicitly zero-padding
// to the page size so clamped views (segment tails, stack high-water
// captures) hash identically to their fully materialized form. Four
// independent multiply lanes break the serial dependency chain, so the
// hash runs near memory speed rather than multiplier latency. Each lane
// applies the same shift-xor diffusion round as absorb — see there for
// why top-byte differences must not stay confined to the top byte. The
// round costs ~20% on this function in isolation (an 8-lane variant
// measured slower: the wider combine tail outweighs the ILP win on a
// 256-byte page) and is noise-level on campaign throughput.
func hashPage(seed uint64, b []byte) uint64 {
	if len(b) != pageSize {
		var buf [pageSize]byte
		copy(buf[:], b)
		b = buf[:]
	}
	h0 := seed
	h1 := seed ^ 0xa5a5a5a5a5a5a5a5
	h2 := seed ^ 0x3c3c3c3c3c3c3c3c
	h3 := seed ^ 0x0f0f0f0f0f0f0f0f
	for i := 0; i < pageSize; i += 32 {
		h0 = (h0 ^ binary.LittleEndian.Uint64(b[i:])) * fnvPrime
		h0 ^= h0 >> 32
		h1 = (h1 ^ binary.LittleEndian.Uint64(b[i+8:])) * fnvPrime
		h1 ^= h1 >> 32
		h2 = (h2 ^ binary.LittleEndian.Uint64(b[i+16:])) * fnvPrime
		h2 ^= h2 >> 32
		h3 = (h3 ^ binary.LittleEndian.Uint64(b[i+24:])) * fnvPrime
		h3 ^= h3 >> 32
	}
	return mix64(h0 ^ mix64(h1) ^ mix64(h2)*3 ^ mix64(h3)*5)
}

// absorbOut folds the not-yet-hashed output suffix into the rolling
// output hash.
func (m *machine) absorbOut() {
	h := m.outH
	for _, b := range m.out[m.outHashed:] {
		h = (h ^ uint64(b)) * fnvPrime
	}
	m.outH = h
	m.outHashed = len(m.out)
}

// regsHash fingerprints the register arena, the call-frame structure and
// the stack pointer. Cost is proportional to the live register count, so
// it is paid only at convergence checks, never per instruction.
func (m *machine) regsHash() uint64 {
	h := fnvOffset
	h = absorb(h, uint64(len(m.frames)))
	for i := range m.frames {
		fr := &m.frames[i]
		h = absorb(h, uint64(fr.fn))
		h = absorb(h, uint64(fr.pc))
		h = absorb(h, uint64(fr.regBase))
		h = absorb(h, uint64(len(fr.regs)))
		h = absorb(h, uint64(fr.savedSP))
		rd := uint64(fr.retDst)
		if fr.hasRet {
			rd |= 1 << 32
		}
		h = absorb(h, rd)
	}
	h = absorb(h, uint64(m.sp))
	for _, v := range m.regArena[:m.regTop] {
		h = absorb(h, v)
	}
	return mix64(h)
}

// recordTraceEntry appends the golden run's state fingerprint for the
// boundary at m.dyn. Called by takeSnapshot with the interval's page
// deltas (whose contents captureDelta already copied), so trace recording
// re-hashes exactly the dirtied pages and nothing else.
func (m *machine) recordTraceEntry(gd, sd pageDelta) {
	m.memH ^= m.globals.foldDelta(gd)
	m.memH ^= m.stack.foldDelta(sd)
	m.absorbOut()
	m.rec.entries = append(m.rec.entries, traceEntry{
		dyn:       m.dyn,
		readSlots: m.readSlots,
		writes:    m.writes,
		memH:      m.memH,
		regsH:     m.regsHash(),
		outH:      m.outH,
		outLen:    uint64(len(m.out)),
	})
}

// scheduleConv arms the convergence checks once the run's injections are
// complete: the first check lands on the first golden boundary at or
// after the current instant. The schedule depends only on the injection
// completion point, so it is identical across worker counts, snapshot
// fast-forwarding and dispatch variants — a requirement for StateKey
// memo canonicity.
func (m *machine) scheduleConv() {
	m.convSched = true
	m.convStride = 1
	es := m.trace.entries
	m.convIdx = sort.Search(len(es), func(i int) bool { return es[i].dyn >= m.dyn })
	if m.convIdx >= len(es) {
		m.nextConv = noConv
		return
	}
	m.nextConv = es[m.convIdx].dyn
}

// checkConverge runs one convergence check at the boundary the event
// horizon stopped on. It returns true when the run is over: either the
// state reconverged with the golden run (m.converged, golden outcome
// installed) or the caller's memo already knows this post-injection state
// (StopMemo). On divergence the next check backs off exponentially in
// boundaries, so runs that never reconverge pay O(log n) checks.
func (m *machine) checkConverge() bool {
	es := m.trace.entries
	for m.convIdx < len(es) && es[m.convIdx].dyn < m.dyn {
		m.convIdx++
	}
	if m.convIdx >= len(es) {
		m.nextConv = noConv
		return false
	}
	e := &es[m.convIdx]
	if e.dyn > m.dyn {
		m.nextConv = e.dyn
		return false
	}

	// At the boundary: bring the incremental fingerprint up to date and
	// compare against the golden entry. The register hash is the
	// expensive part (it walks the live arena), so once the memo key has
	// been taken it is computed only when the memory and output
	// fingerprints already match — runs diverging in memory (the typical
	// SDC) pay only the fold.
	m.memH ^= m.globals.foldDirty()
	m.memH ^= m.stack.foldDirty()
	m.absorbOut()
	memEq := m.memH == e.memH && uint64(len(m.out)) == e.outLen && m.outH == e.outH
	if memEq || !m.memoDone {
		regsH := m.regsHash()
		if memEq && regsH == e.regsH {
			m.convergeFinish(e)
			return true
		}
		if !m.memoDone {
			// First post-injection boundary and the state diverges from
			// golden: this is the canonical fault-equivalence key for the
			// experiment.
			m.memoDone = true
			m.postKey = StateKey{
				Dyn: m.dyn, Mem: m.memH, Regs: regsH,
				Out: m.outH, OutLen: uint64(len(m.out)),
			}
			m.postKeyed = true
			if m.memoCheck != nil && m.memoCheck(m.postKey) {
				m.stop = StopMemo
				return true
			}
		}
	}

	// Back off exponentially, capped: uncapped doubling would effectively
	// stop checking long divergent runs and miss faults that die late in
	// the tail, while checking every boundary would tax runs that never
	// reconverge. The cap keeps the worst case at ~boundaries/cap cheap
	// fold-and-compare checks.
	m.convIdx += m.convStride
	if m.convStride < convStrideCap {
		m.convStride *= 2
	}
	if m.convIdx >= len(es) {
		m.nextConv = noConv
	} else {
		m.nextConv = es[m.convIdx].dyn
	}
	return false
}

// convStrideCap bounds the exponential back-off of memory-divergent
// convergence checks, in golden boundaries: uncapped back-off would
// effectively stop checking long divergent runs and miss faults whose
// corrupted memory is overwritten late.
const convStrideCap = 64

// convergeFinish terminates a converged run with the golden outcome. The
// machine state at boundary e is bit-identical to the golden state, so
// the continuation is the golden continuation: final output, stop reason
// and counters follow without executing it. Counters are adjusted by the
// golden suffix rather than overwritten — an injected run may reach the
// convergence point over a different path with different candidate
// counts, and the suffix delta is exact either way.
func (m *machine) convergeFinish(e *traceEntry) {
	t := m.trace
	m.readSlots += t.finalReadSlots - e.readSlots
	m.writes += t.finalWrites - e.writes
	m.dyn = t.finalDyn
	m.out = t.finalOut
	m.stop = t.finalStop
	m.converged = true
}
