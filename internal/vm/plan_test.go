package vm

import (
	"bytes"
	"testing"

	"multiflip/internal/ir"
	"multiflip/internal/xrand"
)

// passthrough builds a program that loads a global word, adds 0, and
// prints the result: a small, fully deterministic injection target.
func passthrough() *ir.Program {
	mb := ir.NewModule("pass")
	f := mb.Func("main", 0)
	g := mb.GlobalU32s([]uint32{0})
	v := f.Load32(ir.C(g), 0) // write cand 0; read slots: none (imm addr)
	w := f.Add(v, ir.C(0))    // write cand 1; read slot 0 (v)
	f.Out32(w)                // read slot 1 (w)
	f.RetVoid()
	return mb.MustBuild()
}

func fixedWindow(w uint64) func(*xrand.Rand) uint64 {
	return func(*xrand.Rand) uint64 { return w }
}

func TestInjectOnReadFlipsValue(t *testing.T) {
	p := passthrough()
	// Candidate 0 is the Add's read of v (width W32). Flip exactly bit 5.
	res, err := Run(p, Options{Plan: &Plan{
		FirstCand: 0,
		MaxFlips:  1,
		SameReg:   true,
		Rng:       fixedBitRng(5),
		PinnedBit: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopReturned {
		t.Fatalf("stop = %v", res.Stop)
	}
	if res.Injected != 1 {
		t.Fatalf("injected = %d, want 1", res.Injected)
	}
	if want := out32(1 << 5); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
}

func TestInjectOnReadLastSlot(t *testing.T) {
	p := passthrough()
	// Candidate 1 is Out32's read of w: the flip must appear in output.
	res, err := Run(p, Options{Plan: &Plan{
		FirstCand: 1,
		MaxFlips:  1,
		SameReg:   true,
		Rng:       fixedBitRng(0),
		PinnedBit: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := out32(1); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
}

func TestInjectOnReadCandidatePastEndIsNoop(t *testing.T) {
	p := passthrough()
	res, err := Run(p, Options{Plan: &Plan{
		FirstCand: 999, // beyond the candidate space
		MaxFlips:  1,
		SameReg:   true,
		Rng:       xrand.New(1),
		PinnedBit: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 0 {
		t.Fatalf("injected = %d, want 0", res.Injected)
	}
	if !bytes.Equal(res.Output, out32(0)) {
		t.Fatalf("output corrupted without injection")
	}
}

func TestInjectOnWriteFlipsValue(t *testing.T) {
	p := passthrough()
	// Write candidate 0 is the Load's destination.
	res, err := Run(p, Options{Plan: &Plan{
		OnWrite:   true,
		FirstCand: 0,
		MaxFlips:  1,
		SameReg:   true,
		Rng:       fixedBitRng(3),
		PinnedBit: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 1 {
		t.Fatalf("injected = %d, want 1", res.Injected)
	}
	if want := out32(1 << 3); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
}

func TestInjectOnWriteCallResult(t *testing.T) {
	mb := ir.NewModule("t")
	main := mb.Func("main", 0)
	r := main.Call("forty") // write candidate: counted at callee's ret
	main.Out32(r)
	main.RetVoid()
	forty := mb.Func("forty", 0)
	forty.Ret(ir.C(40))
	p := mb.MustBuild()

	// Profile to find the call's write-candidate index.
	prof, err := Profile(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Writes != 1 {
		t.Fatalf("writes = %d, want 1 (the call result)", prof.Writes)
	}
	// Call results have width W64, so pin the bit instead of searching RNG
	// seeds: SameReg=false with MaxFlips=1 uses PinnedBit directly.
	res, err := Run(p, Options{Plan: &Plan{
		OnWrite:   true,
		FirstCand: 0,
		MaxFlips:  1,
		Rng:       xrand.New(1),
		PinnedBit: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := out32(40 ^ 2); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
}

func TestSameRegMultiFlipClampsToWidth(t *testing.T) {
	p := passthrough()
	// W32 target: 30 flips fit; all 30 distinct bits flip in one register.
	res, err := Run(p, Options{Plan: &Plan{
		FirstCand: 0,
		MaxFlips:  30,
		SameReg:   true,
		Rng:       xrand.New(7),
		PinnedBit: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 30 {
		t.Fatalf("injected = %d, want 30", res.Injected)
	}
	// The W1 case: flip a branch condition; only one bit is available.
	mb := ir.NewModule("w1")
	f := mb.Func("main", 0)
	c := f.Slt(ir.C(1), ir.C(2)) // true
	f.IfElse(c, func() { f.Out32(ir.C(111)) }, func() { f.Out32(ir.C(222)) })
	f.RetVoid()
	p2 := mb.MustBuild()
	// Read candidates: JmpIfNot materializes (cond==0) comparison reading c
	// (slot 0, width W32? no: icmp.eq reads at instruction width W64)...
	// Target instead the condbr read via on-read at its candidate index by
	// scanning: flip every candidate until output changes.
	flipped := false
	for cand := uint64(0); cand < 8; cand++ {
		res2, err := Run(p2, Options{Plan: &Plan{
			FirstCand: cand,
			MaxFlips:  30,
			SameReg:   true,
			Rng:       xrand.New(9),
			PinnedBit: -1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Injected == 1 {
			flipped = true // a W1 slot clamped 30 flips to 1
		}
	}
	if !flipped {
		t.Fatal("no W1 slot found that clamps 30 flips to 1")
	}
}

func TestMultiRegisterWindowSpacing(t *testing.T) {
	// A long straight-line program: every Add reads one register slot.
	mb := ir.NewModule("chain")
	f := mb.Func("main", 0)
	acc := f.Let(ir.C(1))
	for i := 0; i < 200; i++ {
		f.Mov(acc, f.Add(acc, ir.C(1)))
	}
	f.Out32(acc)
	f.RetVoid()
	p := mb.MustBuild()

	const win = 10
	res, err := Run(p, Options{Plan: &Plan{
		FirstCand:  0,
		MaxFlips:   5,
		NextWindow: fixedWindow(win),
		Rng:        xrand.New(3),
		PinnedBit:  -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 5 {
		t.Fatalf("injected = %d, want 5", res.Injected)
	}
	for i := 1; i < len(res.InjectionDyns); i++ {
		gap := res.InjectionDyns[i] - res.InjectionDyns[i-1]
		if gap < win {
			t.Fatalf("injection gap %d < window %d", gap, win)
		}
	}
}

func TestActivationStopsOnCrash(t *testing.T) {
	// Program loads through a pointer register; flipping the pointer makes
	// it crash long before all 30 flips are performed.
	mb := ir.NewModule("ptr")
	f := mb.Func("main", 0)
	g := mb.GlobalU32s(make([]uint32, 64))
	ptr := f.Let(ir.C(g))
	sum := f.Let(ir.C(0))
	f.For(ir.C(0), ir.C(64), func(i ir.Reg) {
		f.Mov(sum, f.Add(sum, f.Load32(ptr, 0)))
		f.Mov(ptr, f.BinW(ir.W64, ir.OpAdd, ptr, ir.C(4)))
	})
	f.Out32(sum)
	f.RetVoid()
	p := mb.MustBuild()

	prof, err := Profile(p)
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	for seed := uint64(0); seed < 200 && !crashed; seed++ {
		rng := xrand.New(seed)
		cand := rng.Uint64n(prof.ReadSlots)
		res, err := Run(p, Options{Plan: &Plan{
			FirstCand:  cand,
			MaxFlips:   30,
			NextWindow: fixedWindow(1),
			Rng:        rng,
			PinnedBit:  -1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stop == StopTrap && res.Injected < 30 {
			crashed = true
		}
	}
	if !crashed {
		t.Error("no experiment crashed before completing 30 injections")
	}
}

func TestThirtyInjectionsCompleteInSafeProgram(t *testing.T) {
	// A straight-line integer chain has no pointers and no divisions, so
	// every planned flip activates.
	mb := ir.NewModule("chain30")
	f := mb.Func("main", 0)
	acc := f.Let(ir.C(1))
	for i := 0; i < 100; i++ {
		f.Mov(acc, f.Add(acc, ir.C(1)))
	}
	f.Out32(acc)
	f.RetVoid()
	p := mb.MustBuild()
	res, err := Run(p, Options{Plan: &Plan{
		FirstCand:  0,
		MaxFlips:   30,
		NextWindow: fixedWindow(1),
		Rng:        xrand.New(4),
		PinnedBit:  -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 30 {
		t.Fatalf("injected = %d, want 30", res.Injected)
	}
	if res.Stop != StopReturned {
		t.Fatalf("stop = %v, want returned", res.Stop)
	}
}

func TestPinnedBitDeterminism(t *testing.T) {
	p := passthrough()
	run := func() []byte {
		res, err := Run(p, Options{Plan: &Plan{
			FirstCand: 0,
			MaxFlips:  1,
			SameReg:   false,
			Rng:       xrand.New(1),
			PinnedBit: 17,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("pinned-bit runs diverged")
	}
	if !bytes.Equal(a, out32(1<<17)) {
		t.Fatalf("output = %x, want bit 17 flipped", a)
	}
}

func TestPlanValidation(t *testing.T) {
	p := passthrough()
	if _, err := Run(p, Options{Plan: &Plan{MaxFlips: 1, PinnedBit: -1}}); err == nil {
		t.Error("plan without Rng accepted")
	}
	if _, err := Run(p, Options{Plan: &Plan{Rng: xrand.New(1), PinnedBit: -1}}); err == nil {
		t.Error("plan with MaxFlips 0 accepted")
	}
	if _, err := Run(p, Options{Plan: &Plan{Rng: xrand.New(1), MaxFlips: 2, PinnedBit: -1}}); err == nil {
		t.Error("multi-register plan without NextWindow accepted")
	}
}

// fixedBitRng returns an Rng whose first Intn(width) call yields bit (for
// deterministic single-bit tests). It relies on Intn(32) consuming one
// Uint64: we search a seed whose first draw lands on the wanted bit.
func fixedBitRng(bit int) *xrand.Rand {
	for seed := uint64(0); ; seed++ {
		r := xrand.New(seed)
		if r.Intn(32) == bit {
			return xrand.New(seed)
		}
	}
}
