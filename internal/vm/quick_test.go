package vm

import (
	"bytes"
	"testing"
	"testing/quick"

	"multiflip/internal/ir"
	"multiflip/internal/xrand"
)

// fuzzTarget builds a program mixing integer, float, memory and control
// flow, so random injections can reach every trap path.
func fuzzTarget() *ir.Program {
	mb := ir.NewModule("fuzz")
	g := mb.GlobalU32s([]uint32{3, 1, 4, 1, 5, 9, 2, 6})
	gOut := mb.GlobalZero(64)
	f := mb.Func("main", 0)
	acc := f.Let(ir.C(1))
	facc := f.Let(ir.CF(1.0))
	f.For(ir.C(0), ir.C(8), func(i ir.Reg) {
		v := f.Load32(f.Idx(ir.C(g), i, 4), 0)
		f.Mov(acc, f.Add(f.Mul(acc, ir.C(3)), v))
		f.Mov(acc, f.Urem(acc, ir.C(100003)))
		f.Mov(facc, f.Fadd(facc, f.Fdiv(f.SiToFp(ir.W32, v), ir.CF(3.5))))
		f.If(f.Sgt(v, ir.C(4)), func() {
			f.Store32(f.Idx(ir.C(gOut), i, 4), acc, 0)
		})
	})
	f.Out32(acc)
	f.Out64(facc)
	f.RetVoid()
	return mb.MustBuild()
}

// TestInjectionNeverErrors: whatever candidate, bit count and window the
// fault model picks, Run must end in a classified stop — never a Go error
// or panic.
func TestInjectionNeverErrors(t *testing.T) {
	p := fuzzTarget()
	prof, err := Profile(p)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed uint64, onWrite bool, maxFlips uint8, sameReg bool, win uint16) bool {
		rng := xrand.New(seed)
		space := prof.ReadSlots
		if onWrite {
			space = prof.Writes
		}
		flips := int(maxFlips)%30 + 1
		plan := &Plan{
			OnWrite:   onWrite,
			FirstCand: rng.Uint64n(space * 2), // may exceed the space: must be a no-op
			MaxFlips:  flips,
			SameReg:   sameReg,
			Rng:       rng,
			PinnedBit: -1,
		}
		if !sameReg && flips > 1 {
			w := uint64(win)%1000 + 1
			plan.NextWindow = func(*xrand.Rand) uint64 { return w }
		}
		res, err := Run(p, Options{MaxDyn: prof.Dyn * 10, Plan: plan})
		if err != nil {
			return false
		}
		switch res.Stop {
		case StopReturned, StopTrap, StopHang, StopOutputLimit:
		default:
			return false
		}
		return res.Injected <= flips
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestInjectionDeterministicProperty: identical plans produce identical
// observable results.
func TestInjectionDeterministicProperty(t *testing.T) {
	p := fuzzTarget()
	prof, err := Profile(p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, onWrite bool) bool {
		mk := func() *Result {
			rng := xrand.New(seed)
			space := prof.ReadSlots
			if onWrite {
				space = prof.Writes
			}
			res, err := Run(p, Options{Plan: &Plan{
				OnWrite:    onWrite,
				FirstCand:  rng.Uint64n(space),
				MaxFlips:   5,
				NextWindow: func(r *xrand.Rand) uint64 { return r.Uint64n(50) + 1 },
				Rng:        rng,
				PinnedBit:  -1,
			}})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := mk(), mk()
		return a.Stop == b.Stop && a.Trap == b.Trap && a.Injected == b.Injected &&
			a.Dyn == b.Dyn && bytes.Equal(a.Output, b.Output)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestNoAlignTrapOption: with the trap disabled, an unaligned in-segment
// load succeeds.
func TestNoAlignTrapOption(t *testing.T) {
	mb := ir.NewModule("t")
	f := mb.Func("main", 0)
	g := mb.GlobalU32s([]uint32{0x04030201, 0x08070605})
	f.Out32(f.Load32(ir.C(g+1), 0))
	f.RetVoid()
	p := mb.MustBuild()
	res, err := Run(p, Options{NoAlignTrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopReturned {
		t.Fatalf("stop = %v trap = %v, want clean return", res.Stop, res.Trap)
	}
	if want := []byte{2, 3, 4, 5}; !bytes.Equal(res.Output, want) {
		t.Fatalf("unaligned load = %x, want %x", res.Output, want)
	}
	// Bounds still enforced without alignment checks.
	mb2 := ir.NewModule("t2")
	f2 := mb2.Func("main", 0)
	g2 := mb2.GlobalU32s([]uint32{1})
	f2.Out32(f2.Load32(ir.C(g2+1), 0)) // crosses the end of globals
	f2.RetVoid()
	res2, err := Run(mb2.MustBuild(), Options{NoAlignTrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trap != TrapSegfault {
		t.Fatalf("trap = %v, want segfault on out-of-bounds unaligned access", res2.Trap)
	}
}

// TestInjectionIntoCallArgs: a flip landing on a call-argument slot must
// reach the callee.
func TestInjectionIntoCallArgs(t *testing.T) {
	mb := ir.NewModule("t")
	main := mb.Func("main", 0)
	x := main.Let(ir.C(100))
	main.Out32(main.Call("id", x)) // read slot 1 (slot 0 is Let? Let reads an imm -> no)
	main.RetVoid()
	id := mb.Func("id", 1)
	id.Ret(id.Arg(0))
	p := mb.MustBuild()
	prof, err := Profile(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.ReadSlots != 3 { // call arg + callee's ret operand + out
		t.Fatalf("read slots = %d, want 3", prof.ReadSlots)
	}
	res, err := Run(p, Options{Plan: &Plan{
		FirstCand: 0, // the call argument
		MaxFlips:  1,
		Rng:       xrand.New(1),
		PinnedBit: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := out32(100 ^ 16); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
}

// TestLastCandidateReachable: FirstCand = space-1 injects exactly once.
func TestLastCandidateReachable(t *testing.T) {
	p := fuzzTarget()
	prof, err := Profile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, onWrite := range []bool{false, true} {
		space := prof.ReadSlots
		if onWrite {
			space = prof.Writes
		}
		res, err := Run(p, Options{Plan: &Plan{
			OnWrite:   onWrite,
			FirstCand: space - 1,
			MaxFlips:  1,
			Rng:       xrand.New(2),
			PinnedBit: -1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Injected != 1 {
			t.Fatalf("onWrite=%v: last candidate not reached (injected=%d)", onWrite, res.Injected)
		}
	}
}
