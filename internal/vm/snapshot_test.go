package vm

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"multiflip/internal/ir"
	"multiflip/internal/prog"
	"multiflip/internal/xrand"
)

// checkIntervals is the spread of checkpoint spacings the round-trip
// property is verified under: far below, near, and far above the typical
// golden-run length.
var checkIntervals = []uint64{37, 256, 4096}

// sameResult compares the observable fields of two results (everything
// except Snapshots, which only a checkpointing run fills).
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Stop != want.Stop || got.Trap != want.Trap {
		t.Fatalf("%s: stop %s/%s, want %s/%s", label, got.Stop, got.Trap, want.Stop, want.Trap)
	}
	if !bytes.Equal(got.Output, want.Output) {
		t.Fatalf("%s: output differs (%d bytes vs %d)", label, len(got.Output), len(want.Output))
	}
	if got.Dyn != want.Dyn || got.ReadSlots != want.ReadSlots || got.Writes != want.Writes {
		t.Fatalf("%s: counters (dyn=%d rs=%d w=%d), want (dyn=%d rs=%d w=%d)", label,
			got.Dyn, got.ReadSlots, got.Writes, want.Dyn, want.ReadSlots, want.Writes)
	}
	if got.Injected != want.Injected || got.FirstBit != want.FirstBit {
		t.Fatalf("%s: injected=%d firstBit=%d, want injected=%d firstBit=%d", label,
			got.Injected, got.FirstBit, want.Injected, want.FirstBit)
	}
	if !reflect.DeepEqual(got.InjectionDyns, want.InjectionDyns) {
		t.Fatalf("%s: injection dyns %v, want %v", label, got.InjectionDyns, want.InjectionDyns)
	}
	if got.ReadRoles != want.ReadRoles || got.WriteRoles != want.WriteRoles {
		t.Fatalf("%s: role counters differ", label)
	}
}

// TestSnapshotRoundTrip proves the core resume property on every workload:
// a run resumed from any golden-run snapshot finishes with exactly the
// straight run's observable result, for several checkpoint intervals, and
// checkpointing itself does not perturb the run.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		straight, err := Run(p, Options{CountRoles: true})
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		for _, interval := range checkIntervals {
			t.Run(fmt.Sprintf("%s/k=%d", bench.Name, interval), func(t *testing.T) {
				ckpt, err := Run(p, Options{CountRoles: true, Checkpoint: interval})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "checkpointing run", ckpt, straight)
				if len(ckpt.Snapshots) == 0 {
					t.Fatalf("no snapshots at interval %d (dyn=%d)", interval, straight.Dyn)
				}
				for _, idx := range []int{0, len(ckpt.Snapshots) / 2, len(ckpt.Snapshots) - 1} {
					s := ckpt.Snapshots[idx]
					res, err := Run(p, Options{CountRoles: true, Resume: s})
					if err != nil {
						t.Fatalf("resume from snapshot %d (dyn=%d): %v", idx, s.Dyn, err)
					}
					sameResult(t, fmt.Sprintf("resume from dyn=%d", s.Dyn), res, straight)
				}
			})
		}
	}
}

// TestSnapshotResumeWithPlan proves injection plans behave identically
// after a restore: for both techniques and single- and multi-bit plans,
// an experiment resumed from a snapshot preceding its first candidate
// produces exactly the straight experiment's result.
func TestSnapshotResumeWithPlan(t *testing.T) {
	plans := []struct {
		name     string
		onWrite  bool
		maxFlips int
		sameReg  bool
	}{
		{"read-single", false, 1, true},
		{"write-single", true, 1, true},
		{"read-multi-samereg", false, 4, true},
		{"read-multi-window", false, 3, false},
		{"write-multi-window", true, 3, false},
	}
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		ckpt, err := Run(p, Options{Checkpoint: 199})
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		if len(ckpt.Snapshots) == 0 {
			t.Fatalf("%s: no snapshots", bench.Name)
		}
		snap := ckpt.Snapshots[len(ckpt.Snapshots)/2]
		for _, pc := range plans {
			t.Run(bench.Name+"/"+pc.name, func(t *testing.T) {
				for trial := uint64(0); trial < 4; trial++ {
					// First candidate at or after the snapshot's counter;
					// trial 0 exercises the equality edge.
					cand := snap.Candidates(pc.onWrite) + 17*trial
					mkPlan := func() *Plan {
						pl := &Plan{
							OnWrite:   pc.onWrite,
							FirstCand: cand,
							MaxFlips:  pc.maxFlips,
							SameReg:   pc.sameReg,
							PinnedBit: -1,
							Rng:       xrand.ForExperiment(99, trial),
						}
						if !pc.sameReg {
							pl.NextWindow = func(r *xrand.Rand) uint64 { return 1 + uint64(r.Intn(10)) }
						}
						return pl
					}
					opts := Options{MaxDyn: 10 * ckpt.Dyn}
					straightOpts := opts
					straightOpts.Plan = mkPlan()
					straight, err := Run(p, straightOpts)
					if err != nil {
						t.Fatal(err)
					}
					resumeOpts := opts
					resumeOpts.Plan = mkPlan()
					resumeOpts.Resume = snap
					resumed, err := Run(p, resumeOpts)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, fmt.Sprintf("cand=%d", cand), resumed, straight)
				}
			})
		}
	}
}

// TestSnapshotImmutableUnderConcurrentResume resumes one snapshot from
// many goroutines with distinct injection plans; each run must match its
// own sequential replay, proving restore never aliases snapshot state.
func TestSnapshotImmutableUnderConcurrentResume(t *testing.T) {
	bench, err := prog.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := Run(p, Options{Checkpoint: 500})
	if err != nil {
		t.Fatal(err)
	}
	snap := ckpt.Snapshots[len(ckpt.Snapshots)/2]

	const goroutines = 16
	results := make([]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := Run(p, Options{
				MaxDyn: 10 * ckpt.Dyn,
				Resume: snap,
				Plan: &Plan{
					FirstCand: snap.ReadSlots + uint64(g)*31,
					MaxFlips:  2,
					SameReg:   true,
					PinnedBit: -1,
					Rng:       xrand.ForExperiment(7, uint64(g)),
				},
			})
			if err == nil {
				results[g] = res
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if results[g] == nil {
			t.Fatalf("goroutine %d failed", g)
		}
		again, err := Run(p, Options{
			MaxDyn: 10 * ckpt.Dyn,
			Resume: snap,
			Plan: &Plan{
				FirstCand: snap.ReadSlots + uint64(g)*31,
				MaxFlips:  2,
				SameReg:   true,
				PinnedBit: -1,
				Rng:       xrand.ForExperiment(7, uint64(g)),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("goroutine %d", g), results[g], again)
	}
}

// TestSnapshotThinning checks the interval-doubling cap: a run forced to
// tiny intervals keeps at most MaxSnapshots snapshots, still in strictly
// increasing dynamic order, and each remains resumable.
func TestSnapshotThinning(t *testing.T) {
	bench, err := prog.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	const maxSnaps = 8
	ckpt, err := Run(p, Options{Checkpoint: 1, MaxSnapshots: maxSnaps})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ckpt.Snapshots); n == 0 || n >= maxSnaps {
		t.Fatalf("kept %d snapshots, want in [1, %d)", n, maxSnaps)
	}
	var prev uint64
	for _, s := range ckpt.Snapshots {
		if s.Dyn <= prev && prev != 0 {
			t.Fatalf("snapshots out of order: %d after %d", s.Dyn, prev)
		}
		prev = s.Dyn
		res, err := Run(p, Options{Resume: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dyn != ckpt.Dyn || !bytes.Equal(res.Output, ckpt.Output) {
			t.Fatalf("resume from dyn=%d diverged", s.Dyn)
		}
	}

	// A degenerate cap must not thin away every snapshot.
	one, err := Run(p, Options{Checkpoint: 1, MaxSnapshots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Snapshots) == 0 {
		t.Fatal("MaxSnapshots=1 kept no snapshots")
	}
}

// TestSnapshotResumeValidation covers the restore error paths: foreign
// program, a first candidate the snapshot has already passed, and a
// memory flip due before the snapshot point.
func TestSnapshotResumeValidation(t *testing.T) {
	benchA, _ := prog.ByName("CRC32")
	benchB, _ := prog.ByName("qsort")
	pa, err := benchA.Build()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := benchB.Build()
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := Run(pa, Options{Checkpoint: 1000})
	if err != nil {
		t.Fatal(err)
	}
	snap := ckpt.Snapshots[len(ckpt.Snapshots)-1]
	if snap.ReadSlots == 0 || snap.Writes == 0 {
		t.Fatalf("last snapshot has zero counters: %+v", snap)
	}

	if _, err := Run(pb, Options{Resume: snap}); err == nil {
		t.Error("foreign-program resume accepted")
	}
	for _, onWrite := range []bool{false, true} {
		_, err := Run(pa, Options{
			Resume: snap,
			Plan: &Plan{
				OnWrite:   onWrite,
				FirstCand: snap.Candidates(onWrite) - 1,
				MaxFlips:  1,
				SameReg:   true,
				PinnedBit: -1,
				Rng:       xrand.New(1),
			},
		})
		if err == nil {
			t.Errorf("onWrite=%v: pre-snapshot candidate accepted", onWrite)
		}
	}
	if _, err := Run(pa, Options{
		Resume:   snap,
		MemFlips: []MemFlip{{AtDyn: snap.Dyn - 1, Word: 0, Mask: 1}},
	}); err == nil {
		t.Error("pre-snapshot memory flip accepted")
	}

	// Checkpointing only supports fault-free runs: snapshots do not carry
	// injection state, so a corrupted prefix must not become resumable.
	if _, err := Run(pa, Options{
		Checkpoint: 100,
		Plan: &Plan{
			FirstCand: 0, MaxFlips: 1, SameReg: true, PinnedBit: -1, Rng: xrand.New(1),
		},
	}); err == nil {
		t.Error("checkpointing an injection run accepted")
	}
	if _, err := Run(pa, Options{
		Checkpoint: 100,
		MemFlips:   []MemFlip{{AtDyn: 10, Word: 0, Mask: 1}},
	}); err == nil {
		t.Error("checkpointing a memory-flip run accepted")
	}
}

// TestSnapshotStackRoundTrip pins the subtlest part of restore: stack
// bytes between the live pointer and the high-water mark (popped frames'
// stale data) must survive the round trip, because a fault can redirect a
// load into them.
func TestSnapshotStackRoundTrip(t *testing.T) {
	// main: calls leaf() which allocates and writes a slot, then after the
	// call (sp popped back) allocates again and reads the recycled memory
	// without initializing it — legal here, deterministic in the VM.
	mb := ir.NewModule("stale-stack")
	leaf := mb.Func("leaf", 0)
	leaf.Store64(leaf.Alloca(8), ir.C(0xdeadbeef), 0)
	leaf.RetVoid()
	f := mb.Func("main", 0)
	f.CallVoid("leaf")
	f.Out32(f.Load64(f.Alloca(8), 0)) // reads leaf's stale 0xdeadbeef
	f.RetVoid()
	p := mb.MustBuild()

	straight, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := Run(p, Options{Checkpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "checkpointing run", ckpt, straight)
	for _, s := range ckpt.Snapshots {
		res, err := Run(p, Options{Resume: s})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("resume from dyn=%d", s.Dyn), res, straight)
	}
}
