// Package vm executes ir.Programs and provides the mechanism half of fault
// injection: it counts injection candidates as the program runs and applies
// bit-flip masks to live registers at positions chosen by an injection
// Plan. Policy — which candidates, how many flips, window sampling — lives
// in internal/core.
//
// The VM also emulates the hardware-exception surface the study depends
// on: corrupted addresses hit unmapped space (segmentation fault) or lose
// alignment (misaligned access); corrupted divisors trap (arithmetic);
// runaway control flow exhausts a dynamic-instruction budget (hang).
//
// # Golden-run checkpointing
//
// A run with Options.Checkpoint > 0 records an immutable Snapshot of the
// full machine state (call frames, registers, pc, globals, stack, output,
// and the dynamic/candidate counters) every Checkpoint dynamic
// instructions, thinning to Options.MaxSnapshots by interval doubling. A
// later run with Options.Resume starts from such a snapshot instead of
// instruction 0. Because the fault-free prefix of every injection run is
// deterministic and consumes no randomness, resuming from any snapshot
// taken before the first injection candidate is bit-identical to a full
// replay: same Result, same trap, same output, same injection sampling.
// internal/core uses this to fast-forward each campaign experiment past
// the prefix its golden run already computed.
//
// Snapshots are copy-on-write at page granularity: the machine keeps a
// dirty-page bitmap updated by stores, capture copies only the pages
// dirtied since the previous checkpoint (sharing every clean page with
// its predecessor), and resume installs shared pages lazily — a page is
// copied only when the resumed run first writes it. See mem.go.
package vm

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"multiflip/internal/ir"
)

// TrapKind identifies the hardware exception that ended a run.
type TrapKind int

// Trap kinds, mirroring the exception classes in the paper's "Detected by
// Hardware Exceptions" category (§III-E).
const (
	TrapNone TrapKind = iota
	TrapSegfault
	TrapMisaligned
	TrapArithmetic
	TrapAbort
	TrapStackOverflow
)

var trapNames = map[TrapKind]string{
	TrapNone:          "none",
	TrapSegfault:      "segfault",
	TrapMisaligned:    "misaligned",
	TrapArithmetic:    "arithmetic",
	TrapAbort:         "abort",
	TrapStackOverflow: "stack-overflow",
}

// String implements fmt.Stringer.
func (t TrapKind) String() string {
	if s, ok := trapNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TrapKind(%d)", int(t))
}

// StopReason says why a run ended.
type StopReason int

// Stop reasons.
const (
	StopReturned    StopReason = iota + 1 // main returned normally
	StopTrap                              // hardware exception raised
	StopHang                              // dynamic-instruction budget exhausted
	StopOutputLimit                       // output exceeded its limit (runaway output loop)
	StopMemo                              // Options.MemoCheck recognized the post-injection state
)

var stopNames = map[StopReason]string{
	StopReturned:    "returned",
	StopTrap:        "trap",
	StopHang:        "hang",
	StopOutputLimit: "output-limit",
	StopMemo:        "memo-hit",
}

// String implements fmt.Stringer.
func (s StopReason) String() string {
	if n, ok := stopNames[s]; ok {
		return n
	}
	return fmt.Sprintf("StopReason(%d)", int(s))
}

// Defaults for Options fields left zero.
const (
	DefaultMaxDyn    = 200_000_000
	DefaultMaxOutput = 1 << 20
	DefaultMaxDepth  = 256
)

// Options configures a run.
type Options struct {
	// MaxDyn is the dynamic-instruction budget; exceeding it stops the run
	// with StopHang. Zero selects DefaultMaxDyn.
	MaxDyn uint64
	// MaxOutput caps the output buffer. Zero selects DefaultMaxOutput.
	MaxOutput int
	// MaxDepth caps call depth; exceeding it raises TrapStackOverflow.
	// Zero selects DefaultMaxDepth.
	MaxDepth int
	// NoAlignTrap disables the misaligned-access exception: unaligned
	// accesses inside a segment then succeed, as on hardware that supports
	// unaligned loads. Used by the alignment ablation study.
	NoAlignTrap bool
	// OnCand, when non-nil, is called once per injection candidate in
	// candidate order as the run encounters them: onWrite selects the
	// write-candidate space, cand is the candidate index within it, (fn,
	// pc) locate the instruction, and val is the register's fault-free
	// value at the injection point (pre-instruction for reads,
	// post-write for writes). slot is the read-slot index for reads, -1
	// for plain destination writes, and -2 for call-result writes (which
	// the VM performs at the matching return; pc is then the caller's
	// resume pc, with the call instruction at pc-1). Setting OnCand
	// forces the per-instruction observer tier, like CountRoles;
	// profiling only.
	OnCand func(onWrite bool, cand uint64, fn, pc, slot int, val uint64)
	// CountRoles additionally classifies every candidate slot by
	// ir.SlotRole during the run (address/data/control/float), filling
	// Result.ReadRoles and Result.WriteRoles. Profiling only: it slows the
	// interpreter loop.
	CountRoles bool
	// Plan, when non-nil, enables register fault injection for this run.
	Plan *Plan
	// MemFlips, when non-empty, flips bits in global-memory words at given
	// dynamic instants (the ECC-escape scenario of the paper's future
	// work). Entries must be sorted by AtDyn.
	MemFlips []MemFlip
	// Checkpoint, when > 0, records a Snapshot of the machine state every
	// Checkpoint dynamic instructions into Result.Snapshots. Campaigns use
	// checkpoints taken during the golden run to fast-forward experiments
	// past the fault-free prefix. Checkpointing a run that injects faults
	// (Plan or MemFlips set) is rejected: snapshots do not capture
	// injection state.
	Checkpoint uint64
	// MaxSnapshots bounds the snapshots a checkpointing run keeps; when the
	// cap is hit, every other snapshot is dropped and the interval doubles.
	// Zero selects DefaultMaxSnapshots; values below 2 are raised to 2.
	MaxSnapshots int
	// Resume, when non-nil, starts the run from a restored snapshot instead
	// of instruction 0. The snapshot must come from the same *ir.Program,
	// Plan.FirstCand must not precede the snapshot's candidate counter, and
	// no MemFlip may be due before the snapshot's Dyn.
	Resume *Snapshot
	// NoFuse disables superinstruction execution for this run: every
	// instruction dispatches alone through the handler table. Results are
	// bit-identical either way (the fusion differential tests enforce it);
	// the knob exists for that comparison and for the CI dispatch
	// ablation. The MULTIFLIP_NOFUSE environment variable disables fusion
	// process-wide.
	NoFuse bool
	// NoCompile disables the compiled fast tier for this run: between
	// event horizons the VM then sprints token-threaded instead of
	// executing the workload's generated native kernel (kern.go). Results
	// are bit-identical either way (the compile differential tests enforce
	// it); the knob exists for that comparison and for the CI compile
	// ablation. The MULTIFLIP_NOCOMPILE environment variable disables the
	// tier process-wide.
	NoCompile bool
	// RecordTrace, together with Checkpoint > 0, records a GoldenTrace in
	// Result.Trace: a per-boundary state-hash trace of this (fault-free)
	// run that later injected runs can converge against. Ignored when
	// resuming (a trace must start at instruction 0).
	RecordTrace bool
	// Trace, when non-nil, enables convergence-gated early termination:
	// once this run's injections are complete, its state fingerprint is
	// compared against the golden trace at event-horizon boundaries, and
	// on a match the run terminates immediately with the golden outcome
	// (Result.Converged). The trace must come from the same *ir.Program;
	// incompatible budgets or exception options silently disable the
	// checks. Ignored for checkpointing or role-counting runs.
	Trace *GoldenTrace
	// NoConverge disables convergence-gated early termination (and the
	// MemoCheck callback) for this run even when Trace is set. Results
	// are bit-identical either way (the convergence differential tests
	// enforce it); the knob exists for that comparison and for the CI
	// convergence ablation. The MULTIFLIP_NOCONVERGE environment variable
	// disables convergence process-wide.
	NoConverge bool
	// MemoCheck, when non-nil (and Trace is active), is called once with
	// the run's StateKey at the first event-horizon boundary after its
	// injections completed and its state diverges from golden. Returning
	// true stops the run immediately with StopMemo: the caller already
	// knows the outcome of this post-injection state. Campaign runners
	// use it for fault-equivalence memoization.
	MemoCheck func(StateKey) bool
}

// MemFlip describes one memory-word corruption: just before the dynamic
// instruction at AtDyn executes, the 8-byte global word at byte offset
// Word (8-aligned) is XORed with Mask.
type MemFlip struct {
	// AtDyn is the dynamic-instruction index at which the flip lands.
	AtDyn uint64
	// Word is the byte offset of the 8-byte-aligned word within the
	// global segment.
	Word uint64
	// Mask is the XOR mask applied to the word (little-endian).
	Mask uint64
}

// Result reports everything observable about a run.
type Result struct {
	Stop   StopReason
	Trap   TrapKind
	Output []byte
	// Dyn counts executed dynamic instructions.
	Dyn uint64
	// ReadSlots counts dynamic register-read operand slots: the
	// inject-on-read candidate space (Table II, left column).
	ReadSlots uint64
	// Writes counts dynamic instructions with a destination register: the
	// inject-on-write candidate space (Table II, right column).
	Writes uint64
	// Injected is the number of bit-flip errors performed (activated).
	Injected int
	// FirstBit is the bit index of the first injection within its target
	// register, or -1 if no injection occurred or the first injection
	// flipped multiple bits (same-register multi-flip). Campaigns record
	// it so later runs can pin the exact same first error (§IV-C3).
	FirstBit int
	// FirstPre is the pre-flip value (0 or 1) of the first injected bit,
	// giving the flip direction (0 = flipped 0→1, 1 = flipped 1→0), or
	// -1 when FirstBit is unknown or nothing changed a value. For
	// stuck-at holds it reports the bit value the first value-changing
	// forced read replaced.
	FirstPre int
	// FirstRole is the ir.SlotRole of the first injection's target: the
	// role of the read slot or destination register for register plans,
	// the anchor read slot for stuck-at holds, and ir.RoleData for
	// memory-word flips. ir.RoleNone (0) when no injection occurred.
	FirstRole ir.SlotRole
	// InjectionDyns records the dynamic index of each injection.
	InjectionDyns []uint64
	// ReadRoles counts inject-on-read candidates by ir.SlotRole; filled
	// only when Options.CountRoles is set.
	ReadRoles [ir.NumSlotRoles]uint64
	// WriteRoles counts inject-on-write candidates by ir.SlotRole; filled
	// only when Options.CountRoles is set.
	WriteRoles [ir.NumSlotRoles]uint64
	// Snapshots holds the machine-state checkpoints taken during the run;
	// filled only when Options.Checkpoint > 0.
	Snapshots []*Snapshot
	// Trace is the golden state-hash trace recorded by this run; filled
	// only when Options.RecordTrace is set alongside Checkpoint.
	Trace *GoldenTrace
	// Converged marks an early-terminated run: the injected state became
	// bit-identical to the golden state at the same dynamic instant, and
	// Stop/Output/Dyn and the candidate counters report the golden
	// continuation without it having been executed.
	Converged bool
	// PostKeyed reports that PostKey holds the run's fault-equivalence
	// fingerprint: the state key at the first event-horizon boundary
	// after the injections completed with state diverging from golden.
	PostKeyed bool
	PostKey   StateKey
}

// frame is one call-stack entry. Register files live in the machine's
// register arena; regBase is the frame's offset into it, so arena growth
// and snapshot capture can rebase or slab-copy all frames at once.
type frame struct {
	code    []ir.Instr
	pc      int
	fn      int32 // function index, part of the convergence fingerprint
	regs    []uint64
	regBase int
	savedSP int
	retDst  ir.Reg // register in the CALLER receiving the return value
	hasRet  bool
}

// machine is the transient run state.
type machine struct {
	prog     *ir.Program
	globals  mem
	stack    mem
	sp       int
	stackHW  int // high-water mark of sp: bytes above it are still zero
	frames   []frame
	regArena []uint64 // concatenated register files of the live frames
	regTop   int
	out      []byte
	maxOut   int
	maxDepth int
	dyn      uint64
	maxDyn   uint64

	readSlots uint64
	writes    uint64

	checkpoint uint64
	nextSnap   uint64
	maxSnaps   int
	snaps      []*Snapshot
	// lastSnap is the previous capture (or the restore source): the base
	// the next capture's delta patches. imgPages is the program image's
	// page table, the baseline when there is no previous capture.
	lastSnap *Snapshot
	imgPages [][]byte

	noAlign    bool
	countRoles bool
	onCand     func(onWrite bool, cand uint64, fn, pc, slot int, val uint64)
	readRoles  [ir.NumSlotRoles]uint64
	writeRoles [ir.NumSlotRoles]uint64

	plan *Plan
	// injRead/injWrite gate the per-instruction injection checks; both
	// drop to false once the plan has performed its last flip, so the
	// post-injection tail runs at fault-free speed.
	injRead  bool
	injWrite bool
	// fuse enables superinstruction execution (see dispatch.go); cleared
	// by Options.NoFuse or the MULTIFLIP_NOFUSE environment variable.
	fuse bool
	// kern holds the program's generated native kernels (one per
	// function), or nil when the program has none or the compiled tier is
	// disabled (Options.NoCompile / MULTIFLIP_NOCOMPILE).
	kern []kernFn
	// retDst is the caller result register of the last statRetWrote
	// return, for the dispatch loop's write accounting and injection.
	retDst      ir.Reg
	memFlips    []MemFlip
	memIdx      int
	nextMemFlip uint64
	injected    int
	firstBit    int
	firstPre    int
	firstRole   ir.SlotRole
	firstDone   bool
	nextDyn     uint64 // next dynamic index eligible for a follow-up injection
	injDyns     []uint64
	// Stuck-at hold state (Plan.Stuck): the held register and bit, the
	// dynamic index the hold expires at, and the activation frame depth
	// (the per-frame register file gives the register no identity beyond
	// its frame).
	holdReg   ir.Reg
	holdBit   int
	holdEnd   uint64
	holdDepth int

	// Convergence machinery (trace.go). trace/rec are mutually exclusive:
	// a run either consumes a golden trace (injected runs) or records one
	// (the golden checkpointing run), so the incremental fingerprint
	// fields (memH, outH, outHashed) are shared.
	trace      *GoldenTrace
	rec        *GoldenTrace
	memoCheck  func(StateKey) bool
	memH       uint64
	outH       uint64
	outHashed  int
	nextConv   uint64
	convIdx    int
	convStride int
	convSched  bool
	memoDone   bool
	converged  bool
	postKey    StateKey
	postKeyed  bool
	// gSpare/sSpare hold the segments' recyclable tracking buffers
	// between pooled runs.
	gSpare, sSpare memBufs

	trap TrapKind
	stop StopReason
}

var errNoMain = errors.New("vm: program main must take no arguments")

// machinePool recycles machines (and their register arena, frame slice
// and segment buffers) across runs: a campaign executes hundreds of
// thousands of short resumed runs, and per-run allocation would dominate.
var machinePool = sync.Pool{New: func() any { return new(machine) }}

// putMachine resets m, keeping only its reusable buffers, and returns it
// to the pool. Everything that escaped into the Result (output, snapshots,
// injection dyns) is left untouched; everything else is dropped so pooled
// machines do not retain programs or snapshot pages.
func putMachine(m *machine) {
	arena := m.regArena
	frames := m.frames[:cap(m.frames)]
	clear(frames)
	gbuf := m.globals.flat[:0]
	sbuf := m.stack.flat[:0]
	// Tracking buffers (dirty/convergence bitmaps, page-hash arrays) are
	// kept as spares: runs that did not track leave them in the spare
	// slots, runs that did carry them in the segments.
	gSpare := mergeBufs(m.globals.takeBufs(), m.gSpare)
	sSpare := mergeBufs(m.stack.takeBufs(), m.sSpare)
	*m = machine{}
	m.regArena = arena
	m.frames = frames[:0]
	m.globals.flat = gbuf
	m.stack.flat = sbuf
	m.gSpare = gSpare
	m.sSpare = sSpare
	machinePool.Put(m)
}

// Run executes p under opts and returns the observable result. Structural
// errors (invalid program shape) return an error; traps, hangs and output
// overflows are reported in Result.
//
// p must have passed ir.Program.Validate — true of every program built
// with the ir builder's Build/MustBuild — because the interpreter trusts
// the per-instruction caches Validate populates (Instr.NR). Running a
// hand-assembled, unvalidated Program mis-counts injection candidates
// silently.
func Run(p *ir.Program, opts Options) (*Result, error) {
	mainFn := p.Funcs[p.Main]
	if mainFn.NumArgs != 0 {
		return nil, errNoMain
	}
	m := machinePool.Get().(*machine)
	defer putMachine(m)
	m.prog = p
	m.maxOut = opts.MaxOutput
	m.maxDepth = opts.MaxDepth
	m.maxDyn = opts.MaxDyn
	m.noAlign = opts.NoAlignTrap
	m.countRoles = opts.CountRoles
	m.onCand = opts.OnCand
	if m.onCand != nil {
		// Candidate enumeration needs every instruction stepped through
		// the observer tier (and keeps convergence and the fast tier off),
		// exactly like role counting.
		m.countRoles = true
	}
	m.plan = opts.Plan
	m.memFlips = opts.MemFlips
	m.nextMemFlip = ^uint64(0)
	m.firstBit = -1
	m.firstPre = -1
	m.fuse = fusionEnabled && !opts.NoFuse
	if compileEnabled && !opts.NoCompile {
		m.kern = kernelsFor(p)
	}
	if m.maxOut == 0 {
		m.maxOut = DefaultMaxOutput
	}
	if m.maxDepth == 0 {
		m.maxDepth = DefaultMaxDepth
	}
	if m.maxDyn == 0 {
		m.maxDyn = DefaultMaxDyn
	}
	if len(m.memFlips) > 0 {
		m.nextMemFlip = m.memFlips[0].AtDyn
	}
	if m.plan != nil {
		if err := m.plan.validate(); err != nil {
			return nil, err
		}
		m.injRead = !m.plan.OnWrite
		m.injWrite = m.plan.OnWrite
	}
	m.checkpoint = opts.Checkpoint
	m.nextSnap = noSnap
	m.nextConv = noConv
	if m.checkpoint > 0 {
		// Snapshots deliberately omit injection state (plan progress, memory
		// flip cursor); checkpointing is a golden-run facility and corrupted
		// state must not masquerade as a resumable prefix.
		if m.plan != nil || len(m.memFlips) > 0 {
			return nil, errCheckpointFault
		}
		m.maxSnaps = opts.MaxSnapshots
		if m.maxSnaps == 0 {
			m.maxSnaps = DefaultMaxSnapshots
		}
		// Thinning keeps floor(n/2) snapshots; a cap below 2 would discard
		// everything on every round.
		if m.maxSnaps < 2 {
			m.maxSnaps = 2
		}
	}
	// Convergence: a run can consume a golden trace (injected runs) or
	// record one (the golden checkpointing run), never both. Role-counting
	// runs never reach the fast tier, so convergence is pointless there;
	// incompatible budgets or exception options disable it silently (the
	// run is still correct, just never early-terminated).
	m.trace = opts.Trace
	if m.trace != nil {
		// A trace from a different program is a caller bug and is rejected
		// even when convergence is disabled, so the ablation paths validate
		// wiring exactly like the normal path.
		if m.trace.prog != p {
			return nil, errTraceProg
		}
		if opts.NoConverge || !convergeEnabled || m.checkpoint > 0 ||
			m.countRoles || !m.trace.compatible(m) {
			m.trace = nil
		}
	}
	if opts.RecordTrace && m.checkpoint > 0 && opts.Resume == nil {
		m.rec = &GoldenTrace{prog: p, noAlign: m.noAlign}
	}
	if opts.Resume != nil {
		if err := m.restore(opts.Resume); err != nil {
			return nil, err
		}
	} else {
		m.globals = flatMem(len(p.Globals), append(m.globals.flat[:0], p.Globals...))
		m.stack = mem{n: ir.StackSize, flat: m.stack.flat[:0]}
		m.pushFrame(p.Main, nil, ir.NoReg, false)
	}
	if m.checkpoint > 0 {
		m.globals.dirty, m.gSpare.dirty = m.gSpare.dirty, nil
		m.stack.dirty, m.sSpare.dirty = m.sSpare.dirty, nil
		m.globals.track()
		m.stack.track()
		if opts.Resume == nil {
			// Clean pages of the first capture share the immutable program
			// image rather than being copied.
			m.imgPages = pageTable(p.Globals)
		}
		m.nextSnap = m.dyn + m.checkpoint
	}
	if m.rec != nil || m.trace != nil {
		if m.checkpoint == 0 {
			// Trace-consuming runs do not checkpoint; they still need the
			// dirty bitmap to fold page hashes at convergence checks.
			m.globals.dirty, m.gSpare.dirty = m.gSpare.dirty, nil
			m.stack.dirty, m.sSpare.dirty = m.sSpare.dirty, nil
			m.globals.track()
			m.stack.track()
		}
		m.globals.convKnown, m.globals.convH = m.gSpare.convKnown, m.gSpare.convH
		m.gSpare.convKnown, m.gSpare.convH = nil, nil
		m.stack.convKnown, m.stack.convH = m.sSpare.convKnown, m.sSpare.convH
		m.sSpare.convKnown, m.sSpare.convH = nil, nil
		m.globals.trackConv(saltGlobals)
		m.stack.trackConv(saltStack)
		m.outH = fnvOffset
		m.nextConv = noConv
		if m.trace != nil && opts.Resume != nil {
			// Seed the fingerprint from the golden entry at the resume
			// point; a snapshot off the trace's boundary grid cannot be
			// fingerprinted incrementally, so convergence is disabled.
			if e := m.trace.entryAt(opts.Resume.Dyn); e != nil && e.outLen == uint64(len(m.out)) {
				m.memH = e.memH
				m.outH = e.outH
			} else {
				m.trace = nil
			}
		}
		m.outHashed = len(m.out)
	}
	if m.trace != nil {
		m.memoCheck = opts.MemoCheck
		// Pre-size the output buffer to the golden length: runs that reach
		// the output phase otherwise pay repeated growth copies (the
		// clamped snapshot prefix forces a copy on first append anyway).
		if want := len(m.trace.finalOut) + 64; cap(m.out)-len(m.out) < want {
			m.out = append(make([]byte, 0, len(m.out)+want), m.out...)
		}
	}
	m.run()
	res := &Result{
		Stop:          m.stop,
		Trap:          m.trap,
		Output:        m.out,
		Dyn:           m.dyn,
		ReadSlots:     m.readSlots,
		Writes:        m.writes,
		Injected:      m.injected,
		FirstBit:      m.firstBit,
		FirstPre:      m.firstPre,
		FirstRole:     m.firstRole,
		InjectionDyns: m.injDyns,
		ReadRoles:     m.readRoles,
		WriteRoles:    m.writeRoles,
		Snapshots:     m.snaps,
		Converged:     m.converged,
		PostKeyed:     m.postKeyed,
		PostKey:       m.postKey,
	}
	if m.rec != nil {
		m.rec.finalDyn = m.dyn
		m.rec.finalReadSlots = m.readSlots
		m.rec.finalWrites = m.writes
		m.rec.finalOut = m.out[:len(m.out):len(m.out)]
		m.rec.finalStop = m.stop
		res.Trace = m.rec
	}
	return res, nil
}

// Profile runs p fault-free and returns the result; callers use it to
// capture the golden output, the fault-free dynamic instruction count, the
// candidate-space sizes and the per-role candidate composition.
func Profile(p *ir.Program) (*Result, error) {
	return ProfileWith(p, Options{})
}

// ProfileWith is Profile with explicit options (e.g. Checkpoint, to record
// golden-run snapshots while profiling). CountRoles is always enabled; a
// run that does not terminate normally is an error.
func ProfileWith(p *ir.Program, opts Options) (*Result, error) {
	opts.CountRoles = true
	opts.Plan = nil
	opts.MemFlips = nil
	res, err := Run(p, opts)
	if err != nil {
		return nil, err
	}
	if res.Stop != StopReturned {
		return nil, fmt.Errorf("vm: fault-free run of %s stopped with %s/%s",
			p.Name, res.Stop, res.Trap)
	}
	return res, nil
}

// allocRegs carves n zeroed registers off the arena, growing it (and
// rebasing the live frames' register slices) when full.
func (m *machine) allocRegs(n int) []uint64 {
	need := m.regTop + n
	if need > len(m.regArena) {
		c := 2 * len(m.regArena)
		if c < need {
			c = need
		}
		if c < 64 {
			c = 64
		}
		na := make([]uint64, c)
		copy(na, m.regArena[:m.regTop])
		m.regArena = na
		for i := range m.frames {
			fr := &m.frames[i]
			fr.regs = na[fr.regBase : fr.regBase+len(fr.regs) : fr.regBase+len(fr.regs)]
		}
	}
	s := m.regArena[m.regTop:need:need]
	for i := range s {
		s[i] = 0
	}
	m.regTop = need
	return s
}

func (m *machine) pushFrame(fIdx int, args []uint64, retDst ir.Reg, hasRet bool) {
	f := m.prog.Funcs[fIdx]
	base := m.regTop
	regs := m.allocRegs(f.NumRegs)
	copy(regs, args)
	m.frames = append(m.frames, frame{
		code:    f.Code,
		fn:      int32(fIdx),
		regs:    regs,
		regBase: base,
		savedSP: m.sp,
		retDst:  retDst,
		hasRet:  hasRet,
	})
	if m.rec != nil && len(m.frames) > m.rec.maxFrames {
		// Convergence under a smaller call-depth budget than the golden
		// run's peak could hide a stack-overflow trap in the continuation;
		// the recorded peak lets compatible() refuse such runs.
		m.rec.maxFrames = len(m.frames)
	}
}

func (m *machine) trapOut(k TrapKind) {
	m.trap = k
	m.stop = StopTrap
}

// endPlan marks the injection plan complete, removing its per-instruction
// checks from the interpreter loop.
func (m *machine) endPlan() {
	m.injRead = false
	m.injWrite = false
}

// val returns the raw 64-bit payload of an operand.
func val(regs []uint64, o ir.Operand) uint64 {
	if o.IsImm() {
		return o.Imm()
	}
	return regs[o.Reg()]
}

// run is the interpreter loop. It sets m.stop before returning.
//
// The loop is two-tier. The outer tier handles the events that can fire
// between instructions — hang budget, snapshot capture, scheduled memory
// flips — and decides which execution tier the next stretch takes:
//
//   - While any per-instruction observer is armed (an injection plan
//     still in progress, or role counting), instructions execute one at
//     a time through step(), which drives the indirect handler table and
//     interleaves the injection checks exactly as the pre-dispatch-table
//     interpreter did.
//   - Otherwise sprint() runs: a tight token-threaded loop that executes
//     up to the event horizon (the nearest of the hang budget, the next
//     snapshot and the next memory flip) with no per-instruction event
//     checks at all, keeping the dynamic and candidate counters in
//     locals. Superinstructions execute there in a single dispatch
//     round; the horizon check (at least two instructions of headroom)
//     guarantees no event can fire between the halves, so fusion never
//     perturbs snapshot boundaries or flip instants.
//
// Injection plans re-enter the fast tier once complete: endPlan clears
// the armed flags, so the post-injection tail of every experiment runs at
// fault-free speed.
func (m *machine) run() {
	fr := &m.frames[len(m.frames)-1]
	for {
		if m.dyn >= m.maxDyn {
			m.stop = StopHang
			return
		}
		if m.dyn >= m.nextSnap {
			m.takeSnapshot()
		}
		if m.dyn >= m.nextMemFlip {
			m.applyMemFlip(m.dyn)
		}
		if m.injRead || m.injWrite || m.countRoles {
			if fr = m.step(fr); fr == nil {
				return
			}
			continue
		}
		// Convergence checks arm once every injection is done (an armed
		// plan keeps the observer tier above; memory flips are checked
		// here) and fire at golden-trace boundaries via the event horizon.
		if m.trace != nil && m.memIdx == len(m.memFlips) {
			if !m.convSched {
				m.scheduleConv()
			}
			if m.dyn >= m.nextConv && m.checkConverge() {
				return
			}
		}
		// The event horizon: no snapshot, memory flip, convergence check
		// or hang stop can fire strictly before this dynamic index.
		// applyMemFlip, takeSnapshot and checkConverge always advance
		// their cursors past m.dyn, so the execution tiers below make
		// progress on every outer iteration (m.dyn < limit holds here).
		limit := m.maxDyn
		if m.nextSnap < limit {
			limit = m.nextSnap
		}
		if m.nextMemFlip < limit {
			limit = m.nextMemFlip
		}
		if m.nextConv < limit {
			limit = m.nextConv
		}
		// Third tier: the workload's generated native kernel executes to
		// the horizon with no dispatch at all. Calls and returns punt to
		// one observed step (cheap: they are rare and already cold), halts
		// end the run, and a bail — a pc or frame shape the kernel does
		// not know — falls back to the token-threaded sprint.
		if m.kern != nil && int(fr.fn) < len(m.kern) {
			if kf := m.kern[fr.fn]; kf != nil {
				switch kf(m, fr, limit) {
				case kernHorizon:
					continue
				case kernOut:
					if fr = m.step(fr); fr == nil {
						return
					}
					continue
				case kernHalt:
					return
				}
				// kernBail: nothing executed; sprint handles the stretch.
			}
		}
		if fr = m.sprint(fr, limit); fr == nil {
			return
		}
	}
}

// sprint is the fast execution tier: it executes instructions until the
// dynamic counter reaches limit (the event horizon computed by run) or
// the run stops, and returns the frame holding control, or nil when the
// run is over.
//
// Dispatch is token-threaded: the switch over validation-resolved tokens
// compiles to a dense jump table whose targets are the handler bodies
// (the small handlers inline; the rest are direct calls), so there is no
// per-instruction indirect call and no operand-kind or width re-testing.
// The dynamic, read-slot and write counters live in locals for the whole
// sprint — handlers never touch them — and are flushed back to the
// machine on every exit so snapshots and the observer tier always see
// exact values.
//
// Superinstructions (in.FTok) execute both halves in one dispatch round
// with bit-identical accounting to their unfused expansion: the counters
// advance per half, destination writes count per half, and a trap in the
// second half leaves exactly the state the unfused execution would (the
// head's effects visible, the tail's write uncounted). The fused path is
// taken only with two instructions of headroom before the horizon, so no
// snapshot or memory flip can land between the halves; pairs straddling
// the horizon simply execute unfused, which is always legal.
func (m *machine) sprint(fr *frame, limit uint64) *frame {
	dyn, readSlots, writes := m.dyn, m.readSlots, m.writes
	fuse := m.fuse
	for dyn < limit {
		in := &fr.code[fr.pc]
		if ft := in.FTok; ft > ir.FusePair && fuse && limit-dyn >= 2 {
			if ft == ir.FuseMov {
				// mov+arith superinstruction: the move executes here with
				// its own accounting, and its successor dispatches through
				// the token switch below in the same round.
				regs := fr.regs
				regs[in.Dst] = regs[in.A.RegRaw()]
				dyn++
				readSlots += uint64(in.NR)
				writes++
				fr.pc++
				in = &fr.code[fr.pc]
				goto dispatch
			}
			if ft == ir.FuseCmpCmpBr {
				// cmp+cmp+condbr loop-head superinstruction: three halves
				// in one dispatch round. Both compare results are written
				// to their destinations — later code, snapshots and the
				// observer tier see them — before the branch consumes the
				// second. A pair of headroom is not enough for three
				// halves; the head then executes alone (always legal —
				// fusion annotations are advisory).
				if limit-dyn < 3 {
					goto dispatch
				}
				in2 := &fr.code[fr.pc+1]
				in3 := &fr.code[fr.pc+2]
				regs := fr.regs
				dyn += 3
				readSlots += uint64(in.NR) + uint64(in2.NR) + uint64(in3.NR)
				regs[in.Dst] = icmpVal(regs, in)
				c := icmpVal(regs, in2)
				regs[in2.Dst] = c
				writes += 2
				if c != 0 {
					fr.pc = int(in3.Off)
				} else {
					fr.pc += 3
				}
				continue
			}
			// Pair-specialized superinstruction: both halves in this round.
			in2 := &fr.code[fr.pc+1]
			regs := fr.regs
			dyn += 2
			readSlots += uint64(in.NR) + uint64(in2.NR)
			switch ft {
			case ir.FuseAddLoad:
				// The sum is still written to the add's destination —
				// later code and snapshots observe it — then feeds the
				// load address directly.
				sum := val(regs, in.A) + val(regs, in.B)
				regs[in.Dst] = sum
				writes++
				v, trap := m.load(sum+uint64(in2.Off), in2.W.Bytes())
				if trap != TrapNone {
					m.trapOut(trap)
					goto halt
				}
				regs[in2.Dst] = v
				writes++
				fr.pc += 2
			case ir.FuseAddStore:
				sum := val(regs, in.A) + val(regs, in.B)
				regs[in.Dst] = sum
				writes++
				if trap := m.store(sum+uint64(in2.Off), in2.W.Bytes(), val(regs, in2.B)); trap != TrapNone {
					m.trapOut(trap)
					goto halt
				}
				fr.pc += 2
			case ir.FuseMulAdd:
				// mul.64 feeding one operand of the next add.64 — the
				// address-scaling idiom (base + index*size). The product is
				// written first, then the add reads it like any operand.
				regs[in.Dst] = val(regs, in.A) * val(regs, in.B)
				writes++
				regs[in2.Dst] = val(regs, in2.A) + val(regs, in2.B)
				writes++
				fr.pc += 2
			case ir.FuseShlAnd:
				// shl then and — FFT's shift-and-mask idiom. Both halves run
				// their generic width-masked bodies in order; the shift is
				// written first, so a dependent and reads it like any
				// operand.
				w := in.W
				mask := w.Mask()
				sh := val(regs, in.B) & uint64(w.Bits()-1)
				regs[in.Dst] = ((val(regs, in.A) & mask) << sh) & mask
				writes++
				regs[in2.Dst] = val(regs, in2.A) & val(regs, in2.B) & in2.W.Mask()
				writes++
				fr.pc += 2
			case ir.FuseAndLshr:
				// and then lshr — CRC32's mask-and-shift idiom (lsb = c&1
				// ahead of c>>1). Both halves run their generic
				// width-masked bodies in order; the and is written first,
				// so a dependent shift reads it like any operand.
				regs[in.Dst] = val(regs, in.A) & val(regs, in.B) & in.W.Mask()
				writes++
				w2 := in2.W
				sh := val(regs, in2.B) & uint64(w2.Bits()-1)
				regs[in2.Dst] = (val(regs, in2.A) & w2.Mask()) >> sh
				writes++
				fr.pc += 2
			default:
				// Compare+branch: the compare result is still written to
				// its destination register before the branch consumes it.
				var c uint64
				w := in.W
				mask := w.Mask()
				a := val(regs, in.A) & mask
				b := val(regs, in.B) & mask
				switch ft {
				case ir.FuseCmpEQBr:
					c = boolBit(a == b)
				case ir.FuseCmpNEBr:
					c = boolBit(a != b)
				case ir.FuseCmpULTBr:
					c = boolBit(a < b)
				case ir.FuseCmpULEBr:
					c = boolBit(a <= b)
				case ir.FuseCmpSLTBr:
					c = boolBit(w.SignExtend(a) < w.SignExtend(b))
				default: // ir.FuseCmpSLEBr
					c = boolBit(w.SignExtend(a) <= w.SignExtend(b))
				}
				regs[in.Dst] = c
				writes++
				if c != 0 {
					fr.pc = int(in2.Off)
				} else {
					fr.pc += 2
				}
			}
			continue
		}
	dispatch:
		dyn++
		readSlots += uint64(in.NR)
		regs := fr.regs
		switch in.Tok {
		case ir.TokAdd64RR:
			regs[in.Dst] = regs[in.A.RegRaw()] + regs[in.B.RegRaw()]
			writes++
			fr.pc++
		case ir.TokAdd64RI:
			regs[in.Dst] = regs[in.A.RegRaw()] + in.B.ImmRaw()
			writes++
			fr.pc++
		case ir.TokAdd32RR:
			regs[in.Dst] = uint64(uint32(regs[in.A.RegRaw()]) + uint32(regs[in.B.RegRaw()]))
			writes++
			fr.pc++
		case ir.TokAdd32RI:
			regs[in.Dst] = uint64(uint32(regs[in.A.RegRaw()]) + uint32(in.B.ImmRaw()))
			writes++
			fr.pc++
		case ir.TokCmpSLT32RR:
			regs[in.Dst] = boolBit(int32(regs[in.A.RegRaw()]) < int32(regs[in.B.RegRaw()]))
			writes++
			fr.pc++
		case ir.TokXor64RR:
			regs[in.Dst] = regs[in.A.RegRaw()] ^ regs[in.B.RegRaw()]
			writes++
			fr.pc++
		case ir.TokMovR:
			regs[in.Dst] = regs[in.A.RegRaw()]
			writes++
			fr.pc++
		case ir.TokLoadR:
			v, trap := m.load(regs[in.A.RegRaw()]+uint64(in.Off), in.W.Bytes())
			if trap != TrapNone {
				m.trapOut(trap)
				goto halt
			}
			regs[in.Dst] = v
			writes++
			fr.pc++
		case ir.TokStoreRR:
			if trap := m.store(regs[in.A.RegRaw()]+uint64(in.Off), in.W.Bytes(), regs[in.B.RegRaw()]); trap != TrapNone {
				m.trapOut(trap)
				goto halt
			}
			fr.pc++
		case ir.TokAdd:
			regs[in.Dst] = (val(regs, in.A) + val(regs, in.B)) & in.W.Mask()
			writes++
			fr.pc++
		case ir.TokSub:
			regs[in.Dst] = (val(regs, in.A) - val(regs, in.B)) & in.W.Mask()
			writes++
			fr.pc++
		case ir.TokMul:
			regs[in.Dst] = (val(regs, in.A) * val(regs, in.B)) & in.W.Mask()
			writes++
			fr.pc++
		case ir.TokAnd:
			regs[in.Dst] = val(regs, in.A) & val(regs, in.B) & in.W.Mask()
			writes++
			fr.pc++
		case ir.TokOr:
			regs[in.Dst] = (val(regs, in.A) | val(regs, in.B)) & in.W.Mask()
			writes++
			fr.pc++
		case ir.TokXor:
			regs[in.Dst] = (val(regs, in.A) ^ val(regs, in.B)) & in.W.Mask()
			writes++
			fr.pc++
		case ir.TokShl:
			mask := in.W.Mask()
			sh := val(regs, in.B) & uint64(in.W.Bits()-1)
			regs[in.Dst] = ((val(regs, in.A) & mask) << sh) & mask
			writes++
			fr.pc++
		case ir.TokLShr:
			mask := in.W.Mask()
			sh := val(regs, in.B) & uint64(in.W.Bits()-1)
			regs[in.Dst] = (val(regs, in.A) & mask) >> sh
			writes++
			fr.pc++
		case ir.TokAShr:
			w := in.W
			sh := val(regs, in.B) & w.Mask() & uint64(w.Bits()-1)
			regs[in.Dst] = uint64(w.SignExtend(val(regs, in.A)&w.Mask())>>sh) & w.Mask()
			writes++
			fr.pc++
		case ir.TokDiv:
			mask := in.W.Mask()
			r, trap := intDiv(in.Op, in.W, val(regs, in.A)&mask, val(regs, in.B)&mask)
			if trap != TrapNone {
				m.trapOut(trap)
				goto halt
			}
			regs[in.Dst] = r & mask
			writes++
			fr.pc++
		case ir.TokFBin:
			a := math.Float64frombits(val(regs, in.A))
			b := math.Float64frombits(val(regs, in.B))
			regs[in.Dst] = math.Float64bits(floatBin(in.Op, a, b))
			writes++
			fr.pc++
		case ir.TokFNeg:
			regs[in.Dst] = math.Float64bits(-math.Float64frombits(val(regs, in.A)))
			writes++
			fr.pc++
		case ir.TokFAbs:
			regs[in.Dst] = math.Float64bits(math.Abs(math.Float64frombits(val(regs, in.A))))
			writes++
			fr.pc++
		case ir.TokFSqrt:
			regs[in.Dst] = math.Float64bits(math.Sqrt(math.Float64frombits(val(regs, in.A))))
			writes++
			fr.pc++
		case ir.TokSExt:
			regs[in.Dst] = uint64(in.W.SignExtend(val(regs, in.A) & in.W.Mask()))
			writes++
			fr.pc++
		case ir.TokZTrunc:
			regs[in.Dst] = val(regs, in.A) & in.W.Mask()
			writes++
			fr.pc++
		case ir.TokSIToFP:
			regs[in.Dst] = math.Float64bits(float64(in.W.SignExtend(val(regs, in.A) & in.W.Mask())))
			writes++
			fr.pc++
		case ir.TokFPToSI:
			regs[in.Dst] = fpToSI(math.Float64frombits(val(regs, in.A)), in.W)
			writes++
			fr.pc++
		case ir.TokMov:
			regs[in.Dst] = val(regs, in.A)
			writes++
			fr.pc++
		case ir.TokCmpEQ:
			mask := in.W.Mask()
			regs[in.Dst] = boolBit(val(regs, in.A)&mask == val(regs, in.B)&mask)
			writes++
			fr.pc++
		case ir.TokCmpNE:
			mask := in.W.Mask()
			regs[in.Dst] = boolBit(val(regs, in.A)&mask != val(regs, in.B)&mask)
			writes++
			fr.pc++
		case ir.TokCmpULT:
			mask := in.W.Mask()
			regs[in.Dst] = boolBit(val(regs, in.A)&mask < val(regs, in.B)&mask)
			writes++
			fr.pc++
		case ir.TokCmpULE:
			mask := in.W.Mask()
			regs[in.Dst] = boolBit(val(regs, in.A)&mask <= val(regs, in.B)&mask)
			writes++
			fr.pc++
		case ir.TokCmpSLT:
			w := in.W
			mask := w.Mask()
			regs[in.Dst] = boolBit(w.SignExtend(val(regs, in.A)&mask) < w.SignExtend(val(regs, in.B)&mask))
			writes++
			fr.pc++
		case ir.TokCmpSLE:
			w := in.W
			mask := w.Mask()
			regs[in.Dst] = boolBit(w.SignExtend(val(regs, in.A)&mask) <= w.SignExtend(val(regs, in.B)&mask))
			writes++
			fr.pc++
		case ir.TokFCmp:
			a := math.Float64frombits(val(regs, in.A))
			b := math.Float64frombits(val(regs, in.B))
			regs[in.Dst] = boolBit(floatCmp(in.Op, a, b))
			writes++
			fr.pc++
		case ir.TokSelect:
			if val(regs, in.A) != 0 {
				regs[in.Dst] = val(regs, in.B)
			} else {
				regs[in.Dst] = val(regs, in.C)
			}
			writes++
			fr.pc++
		case ir.TokLoad:
			v, trap := m.load(val(regs, in.A)+uint64(in.Off), in.W.Bytes())
			if trap != TrapNone {
				m.trapOut(trap)
				goto halt
			}
			regs[in.Dst] = v
			writes++
			fr.pc++
		case ir.TokStore:
			if trap := m.store(val(regs, in.A)+uint64(in.Off), in.W.Bytes(), val(regs, in.B)); trap != TrapNone {
				m.trapOut(trap)
				goto halt
			}
			fr.pc++
		case ir.TokAlloca:
			if hAlloca(m, fr, in) != statNext {
				goto halt
			}
			writes++
			fr.pc++
		case ir.TokBr:
			fr.pc = int(in.Off)
		case ir.TokCondBr:
			if val(regs, in.A) != 0 {
				fr.pc = int(in.Off)
			} else {
				fr.pc++
			}
		case ir.TokCall:
			if hCall(m, fr, in) != statFrame {
				goto halt
			}
			fr = &m.frames[len(m.frames)-1]
		case ir.TokRet:
			switch hRet(m, fr, in) {
			case statRet:
				fr = &m.frames[len(m.frames)-1]
			case statRetWrote:
				fr = &m.frames[len(m.frames)-1]
				writes++
			default: // statHalt: main returned
				goto halt
			}
		case ir.TokOut:
			if hOut(m, fr, in) != statNext {
				goto halt
			}
			fr.pc++
		default: // TokAbort, TokInvalid (unvalidated program)
			m.trapOut(TrapAbort)
			goto halt
		}
	}
	m.dyn, m.readSlots, m.writes = dyn, readSlots, writes
	return fr
halt:
	m.dyn, m.readSlots, m.writes = dyn, readSlots, writes
	return nil
}

// step executes a single instruction with the per-instruction observers
// armed: inject-on-read before the instruction consumes its operands,
// role tallies, and inject-on-write after the destination is written. It
// returns the frame holding control afterwards, or nil when the run
// stopped. Events (hang, snapshot, memory flips) are the outer loop's
// job.
func (m *machine) step(fr *frame) *frame {
	di := m.dyn
	m.dyn++
	in := &fr.code[fr.pc]
	nr := int(in.NR)

	// Inject-on-read: corrupt a source register just before the
	// instruction consumes it.
	if m.injRead {
		m.maybeInjectRead(di, in, fr.regs, nr)
	}
	if m.onCand != nil {
		for s := 0; s < nr; s++ {
			m.onCand(false, m.readSlots+uint64(s), int(fr.fn), fr.pc, s, fr.regs[in.ReadSlot(s)])
		}
	}
	m.readSlots += uint64(nr)
	if m.countRoles {
		for s := 0; s < nr; s++ {
			m.readRoles[ir.ReadSlotRole(in, s)]++
		}
		if in.DW != 0 {
			m.writeRoles[ir.DestRole(in)]++
		} else if in.Op == ir.OpRet && fr.hasRet {
			m.writeRoles[ir.RoleOther]++ // the caller's call result
		}
	}

	switch handlers[in.Tok](m, fr, in) {
	case statNext:
		// Inject-on-write: corrupt the destination register just after
		// the instruction writes it. Calls are handled at their matching
		// Ret.
		if in.DW != 0 {
			m.writes++
			if m.injWrite {
				m.maybeInjectWrite(di, ir.DestWidth(in), fr.regs, in.Dst, ir.DestRole(in))
			}
			if m.onCand != nil {
				m.onCand(true, m.writes-1, int(fr.fn), fr.pc, -1, fr.regs[in.Dst])
			}
		}
		fr.pc++
	case statJump:
	case statFrame, statRet:
		fr = &m.frames[len(m.frames)-1]
	case statRetWrote:
		// The caller's Call instruction wrote its destination now; treat
		// the return as that write for injection purposes.
		fr = &m.frames[len(m.frames)-1]
		m.writes++
		if m.injWrite {
			m.maybeInjectWrite(di, ir.W64, fr.regs, m.retDst, ir.RoleOther)
		}
		if m.onCand != nil {
			m.onCand(true, m.writes-1, int(fr.fn), fr.pc, -2, fr.regs[m.retDst])
		}
	default: // statHalt
		return nil
	}
	return fr
}

// boolBit converts a bool to 0/1.
func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// icmpVal evaluates one integer-compare instruction over regs: the
// generic width-masked compare body, shared by the cmp+cmp+condbr
// superinstruction whose halves can be any of the six compares.
func icmpVal(regs []uint64, in *ir.Instr) uint64 {
	w := in.W
	mask := w.Mask()
	a := val(regs, in.A) & mask
	b := val(regs, in.B) & mask
	switch in.Op {
	case ir.OpICmpEQ:
		return boolBit(a == b)
	case ir.OpICmpNE:
		return boolBit(a != b)
	case ir.OpICmpULT:
		return boolBit(a < b)
	case ir.OpICmpULE:
		return boolBit(a <= b)
	case ir.OpICmpSLT:
		return boolBit(w.SignExtend(a) < w.SignExtend(b))
	default: // ir.OpICmpSLE
		return boolBit(w.SignExtend(a) <= w.SignExtend(b))
	}
}

// intDiv evaluates division/remainder, reporting arithmetic traps.
func intDiv(op ir.Op, w ir.Width, a, b uint64) (uint64, TrapKind) {
	if b == 0 {
		return 0, TrapArithmetic
	}
	switch op {
	case ir.OpUDiv:
		return a / b, TrapNone
	case ir.OpURem:
		return a % b, TrapNone
	}
	sa, sb := w.SignExtend(a), w.SignExtend(b)
	// INT_MIN / -1 overflows: x86 raises #DE.
	if sb == -1 && sa == minInt(w) {
		return 0, TrapArithmetic
	}
	switch op {
	case ir.OpSDiv:
		return uint64(sa / sb), TrapNone
	case ir.OpSRem:
		return uint64(sa % sb), TrapNone
	}
	panic("vm: intDiv bad op")
}

func minInt(w ir.Width) int64 {
	return -(int64(1) << uint(w.Bits()-1))
}

func floatBin(op ir.Op, a, b float64) float64 {
	switch op {
	case ir.OpFAdd:
		return a + b
	case ir.OpFSub:
		return a - b
	case ir.OpFMul:
		return a * b
	case ir.OpFDiv:
		return a / b
	}
	panic("vm: floatBin bad op")
}

func floatCmp(op ir.Op, a, b float64) bool {
	switch op {
	case ir.OpFCmpEQ:
		return a == b
	case ir.OpFCmpNE:
		return a != b
	case ir.OpFCmpLT:
		return a < b
	case ir.OpFCmpLE:
		return a <= b
	}
	panic("vm: floatCmp bad op")
}

// fpToSI converts saturating, then truncates to width.
func fpToSI(f float64, w ir.Width) uint64 {
	if math.IsNaN(f) {
		return 0
	}
	lo, hi := float64(minInt(w)), float64(uint64(1)<<uint(w.Bits()-1)-1)
	if f < lo {
		f = lo
	}
	if f > hi {
		f = hi
	}
	return uint64(int64(f)) & w.Mask()
}

// load reads size bytes little-endian from the segmented address space.
func (m *machine) load(addr uint64, size int) (uint64, TrapKind) {
	s, off, trap := m.resolve(addr, size)
	if trap != TrapNone {
		return 0, trap
	}
	return s.load(off, size), TrapNone
}

// store writes size bytes little-endian.
func (m *machine) store(addr uint64, size int, v uint64) TrapKind {
	s, off, trap := m.resolve(addr, size)
	if trap != TrapNone {
		return trap
	}
	s.store(off, size, v)
	return TrapNone
}

// resolve maps a virtual address range onto a segment, enforcing alignment
// and bounds. Unmapped access is a segmentation fault; unaligned access is
// a misaligned-access exception.
func (m *machine) resolve(addr uint64, size int) (*mem, int, TrapKind) {
	// size is a power of two (1, 2, 4 or 8), so the alignment check is a
	// mask rather than a division.
	if addr&uint64(size-1) != 0 && !m.noAlign {
		return nil, 0, TrapMisaligned
	}
	if addr >= ir.GlobalBase && addr+uint64(size) <= ir.GlobalBase+uint64(m.globals.n) {
		return &m.globals, int(addr - ir.GlobalBase), TrapNone
	}
	// Only the live part of the stack ([StackBase, StackBase+sp)) is mapped.
	if addr >= ir.StackBase && addr+uint64(size) <= ir.StackBase+uint64(m.sp) {
		return &m.stack, int(addr - ir.StackBase), TrapNone
	}
	return nil, 0, TrapSegfault
}

// applyMemFlip performs every due memory flip at dynamic index di.
func (m *machine) applyMemFlip(di uint64) {
	for m.memIdx < len(m.memFlips) && di >= m.memFlips[m.memIdx].AtDyn {
		mf := m.memFlips[m.memIdx]
		m.memIdx++
		if mf.Word+8 > uint64(m.globals.n) {
			continue // outside the global image: nothing to corrupt
		}
		v := m.globals.load(int(mf.Word), 8)
		if m.injected == 0 {
			// Uniform first-flip metadata, like the register injectors: a
			// corrupted memory word carries data, and a single-bit mask
			// has a definite position and direction.
			m.firstRole = ir.RoleData
			if popcount(mf.Mask) == 1 {
				m.firstBit = trailingZeros(mf.Mask)
				m.firstPre = int((v >> uint(m.firstBit)) & 1)
			}
		}
		m.globals.store(int(mf.Word), 8, v^mf.Mask)
		m.injected += popcount(mf.Mask)
		m.injDyns = append(m.injDyns, di)
	}
	m.nextMemFlip = ^uint64(0)
	if m.memIdx < len(m.memFlips) {
		m.nextMemFlip = m.memFlips[m.memIdx].AtDyn
	}
}

// popcount and trailingZeros are small aliases used by the injector.
func popcount(v uint64) int      { return bits.OnesCount64(v) }
func trailingZeros(v uint64) int { return bits.TrailingZeros64(v) }
