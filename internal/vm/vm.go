// Package vm executes ir.Programs and provides the mechanism half of fault
// injection: it counts injection candidates as the program runs and applies
// bit-flip masks to live registers at positions chosen by an injection
// Plan. Policy — which candidates, how many flips, window sampling — lives
// in internal/core.
//
// The VM also emulates the hardware-exception surface the study depends
// on: corrupted addresses hit unmapped space (segmentation fault) or lose
// alignment (misaligned access); corrupted divisors trap (arithmetic);
// runaway control flow exhausts a dynamic-instruction budget (hang).
//
// # Golden-run checkpointing
//
// A run with Options.Checkpoint > 0 records an immutable Snapshot of the
// full machine state (call frames, registers, pc, globals, stack, output,
// and the dynamic/candidate counters) every Checkpoint dynamic
// instructions, thinning to Options.MaxSnapshots by interval doubling. A
// later run with Options.Resume starts from such a snapshot instead of
// instruction 0. Because the fault-free prefix of every injection run is
// deterministic and consumes no randomness, resuming from any snapshot
// taken before the first injection candidate is bit-identical to a full
// replay: same Result, same trap, same output, same injection sampling.
// internal/core uses this to fast-forward each campaign experiment past
// the prefix its golden run already computed.
package vm

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"multiflip/internal/ir"
)

// TrapKind identifies the hardware exception that ended a run.
type TrapKind int

// Trap kinds, mirroring the exception classes in the paper's "Detected by
// Hardware Exceptions" category (§III-E).
const (
	TrapNone TrapKind = iota
	TrapSegfault
	TrapMisaligned
	TrapArithmetic
	TrapAbort
	TrapStackOverflow
)

var trapNames = map[TrapKind]string{
	TrapNone:          "none",
	TrapSegfault:      "segfault",
	TrapMisaligned:    "misaligned",
	TrapArithmetic:    "arithmetic",
	TrapAbort:         "abort",
	TrapStackOverflow: "stack-overflow",
}

// String implements fmt.Stringer.
func (t TrapKind) String() string {
	if s, ok := trapNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TrapKind(%d)", int(t))
}

// StopReason says why a run ended.
type StopReason int

// Stop reasons.
const (
	StopReturned    StopReason = iota + 1 // main returned normally
	StopTrap                              // hardware exception raised
	StopHang                              // dynamic-instruction budget exhausted
	StopOutputLimit                       // output exceeded its limit (runaway output loop)
)

var stopNames = map[StopReason]string{
	StopReturned:    "returned",
	StopTrap:        "trap",
	StopHang:        "hang",
	StopOutputLimit: "output-limit",
}

// String implements fmt.Stringer.
func (s StopReason) String() string {
	if n, ok := stopNames[s]; ok {
		return n
	}
	return fmt.Sprintf("StopReason(%d)", int(s))
}

// Defaults for Options fields left zero.
const (
	DefaultMaxDyn    = 200_000_000
	DefaultMaxOutput = 1 << 20
	DefaultMaxDepth  = 256
)

// Options configures a run.
type Options struct {
	// MaxDyn is the dynamic-instruction budget; exceeding it stops the run
	// with StopHang. Zero selects DefaultMaxDyn.
	MaxDyn uint64
	// MaxOutput caps the output buffer. Zero selects DefaultMaxOutput.
	MaxOutput int
	// MaxDepth caps call depth; exceeding it raises TrapStackOverflow.
	// Zero selects DefaultMaxDepth.
	MaxDepth int
	// NoAlignTrap disables the misaligned-access exception: unaligned
	// accesses inside a segment then succeed, as on hardware that supports
	// unaligned loads. Used by the alignment ablation study.
	NoAlignTrap bool
	// CountRoles additionally classifies every candidate slot by
	// ir.SlotRole during the run (address/data/control/float), filling
	// Result.ReadRoles and Result.WriteRoles. Profiling only: it slows the
	// interpreter loop.
	CountRoles bool
	// Plan, when non-nil, enables register fault injection for this run.
	Plan *Plan
	// MemFlips, when non-empty, flips bits in global-memory words at given
	// dynamic instants (the ECC-escape scenario of the paper's future
	// work). Entries must be sorted by AtDyn.
	MemFlips []MemFlip
	// Checkpoint, when > 0, records a Snapshot of the machine state every
	// Checkpoint dynamic instructions into Result.Snapshots. Campaigns use
	// checkpoints taken during the golden run to fast-forward experiments
	// past the fault-free prefix. Checkpointing a run that injects faults
	// (Plan or MemFlips set) is rejected: snapshots do not capture
	// injection state.
	Checkpoint uint64
	// MaxSnapshots bounds the snapshots a checkpointing run keeps; when the
	// cap is hit, every other snapshot is dropped and the interval doubles.
	// Zero selects DefaultMaxSnapshots; values below 2 are raised to 2.
	MaxSnapshots int
	// Resume, when non-nil, starts the run from a restored snapshot instead
	// of instruction 0. The snapshot must come from the same *ir.Program,
	// Plan.FirstCand must not precede the snapshot's candidate counter, and
	// no MemFlip may be due before the snapshot's Dyn.
	Resume *Snapshot
}

// MemFlip describes one memory-word corruption: just before the dynamic
// instruction at AtDyn executes, the 8-byte global word at byte offset
// Word (8-aligned) is XORed with Mask.
type MemFlip struct {
	// AtDyn is the dynamic-instruction index at which the flip lands.
	AtDyn uint64
	// Word is the byte offset of the 8-byte-aligned word within the
	// global segment.
	Word uint64
	// Mask is the XOR mask applied to the word (little-endian).
	Mask uint64
}

// Result reports everything observable about a run.
type Result struct {
	Stop   StopReason
	Trap   TrapKind
	Output []byte
	// Dyn counts executed dynamic instructions.
	Dyn uint64
	// ReadSlots counts dynamic register-read operand slots: the
	// inject-on-read candidate space (Table II, left column).
	ReadSlots uint64
	// Writes counts dynamic instructions with a destination register: the
	// inject-on-write candidate space (Table II, right column).
	Writes uint64
	// Injected is the number of bit-flip errors performed (activated).
	Injected int
	// FirstBit is the bit index of the first injection within its target
	// register, or -1 if no injection occurred or the first injection
	// flipped multiple bits (same-register multi-flip). Campaigns record
	// it so later runs can pin the exact same first error (§IV-C3).
	FirstBit int
	// InjectionDyns records the dynamic index of each injection.
	InjectionDyns []uint64
	// ReadRoles counts inject-on-read candidates by ir.SlotRole; filled
	// only when Options.CountRoles is set.
	ReadRoles [ir.NumSlotRoles]uint64
	// WriteRoles counts inject-on-write candidates by ir.SlotRole; filled
	// only when Options.CountRoles is set.
	WriteRoles [ir.NumSlotRoles]uint64
	// Snapshots holds the machine-state checkpoints taken during the run;
	// filled only when Options.Checkpoint > 0.
	Snapshots []*Snapshot
}

// frame is one call-stack entry.
type frame struct {
	code    []ir.Instr
	pc      int
	regs    []uint64
	savedSP int
	retDst  ir.Reg // register in the CALLER receiving the return value
	hasRet  bool
}

// machine is the transient run state.
type machine struct {
	prog      *ir.Program
	globals   []byte
	stack     []byte
	sp        int
	stackHW   int // high-water mark of sp: bytes above it are still zero
	frames    []frame
	out       []byte
	maxOut    int
	maxDepth  int
	dyn       uint64
	maxDyn    uint64
	readSlots uint64
	writes    uint64

	checkpoint uint64
	nextSnap   uint64
	maxSnaps   int
	snaps      []*Snapshot

	noAlign    bool
	countRoles bool
	readRoles  [ir.NumSlotRoles]uint64
	writeRoles [ir.NumSlotRoles]uint64
	plan       *Plan
	memFlips   []MemFlip
	memIdx     int
	injected   int
	firstBit   int
	firstDone  bool
	planDone   bool
	nextDyn    uint64 // next dynamic index eligible for a follow-up injection
	injDyns    []uint64

	trap TrapKind
	stop StopReason
}

var errNoMain = errors.New("vm: program main must take no arguments")

// Run executes p under opts and returns the observable result. Structural
// errors (invalid program shape) return an error; traps, hangs and output
// overflows are reported in Result.
func Run(p *ir.Program, opts Options) (*Result, error) {
	mainFn := p.Funcs[p.Main]
	if mainFn.NumArgs != 0 {
		return nil, errNoMain
	}
	m := &machine{
		prog:       p,
		globals:    append([]byte(nil), p.Globals...),
		maxOut:     opts.MaxOutput,
		maxDepth:   opts.MaxDepth,
		maxDyn:     opts.MaxDyn,
		noAlign:    opts.NoAlignTrap,
		countRoles: opts.CountRoles,
		plan:       opts.Plan,
		memFlips:   opts.MemFlips,
		firstBit:   -1,
	}
	if m.maxOut == 0 {
		m.maxOut = DefaultMaxOutput
	}
	if m.maxDepth == 0 {
		m.maxDepth = DefaultMaxDepth
	}
	if m.maxDyn == 0 {
		m.maxDyn = DefaultMaxDyn
	}
	if m.plan != nil {
		if err := m.plan.validate(); err != nil {
			return nil, err
		}
	}
	m.checkpoint = opts.Checkpoint
	m.nextSnap = noSnap
	if m.checkpoint > 0 {
		// Snapshots deliberately omit injection state (plan progress, memory
		// flip cursor); checkpointing is a golden-run facility and corrupted
		// state must not masquerade as a resumable prefix.
		if m.plan != nil || len(m.memFlips) > 0 {
			return nil, errCheckpointFault
		}
		m.maxSnaps = opts.MaxSnapshots
		if m.maxSnaps == 0 {
			m.maxSnaps = DefaultMaxSnapshots
		}
		// Thinning keeps floor(n/2) snapshots; a cap below 2 would discard
		// everything on every round.
		if m.maxSnaps < 2 {
			m.maxSnaps = 2
		}
	}
	if opts.Resume != nil {
		if err := m.restore(opts.Resume); err != nil {
			return nil, err
		}
	} else {
		m.pushFrame(mainFn, nil, ir.NoReg, false)
	}
	if m.checkpoint > 0 {
		m.nextSnap = m.dyn + m.checkpoint
	}
	m.run()
	return &Result{
		Stop:          m.stop,
		Trap:          m.trap,
		Output:        m.out,
		Dyn:           m.dyn,
		ReadSlots:     m.readSlots,
		Writes:        m.writes,
		Injected:      m.injected,
		FirstBit:      m.firstBit,
		InjectionDyns: m.injDyns,
		ReadRoles:     m.readRoles,
		WriteRoles:    m.writeRoles,
		Snapshots:     m.snaps,
	}, nil
}

// Profile runs p fault-free and returns the result; callers use it to
// capture the golden output, the fault-free dynamic instruction count, the
// candidate-space sizes and the per-role candidate composition.
func Profile(p *ir.Program) (*Result, error) {
	return ProfileWith(p, Options{})
}

// ProfileWith is Profile with explicit options (e.g. Checkpoint, to record
// golden-run snapshots while profiling). CountRoles is always enabled; a
// run that does not terminate normally is an error.
func ProfileWith(p *ir.Program, opts Options) (*Result, error) {
	opts.CountRoles = true
	opts.Plan = nil
	opts.MemFlips = nil
	res, err := Run(p, opts)
	if err != nil {
		return nil, err
	}
	if res.Stop != StopReturned {
		return nil, fmt.Errorf("vm: fault-free run of %s stopped with %s/%s",
			p.Name, res.Stop, res.Trap)
	}
	return res, nil
}

func (m *machine) pushFrame(f *ir.Func, args []uint64, retDst ir.Reg, hasRet bool) {
	regs := make([]uint64, f.NumRegs)
	copy(regs, args)
	m.frames = append(m.frames, frame{
		code:    f.Code,
		regs:    regs,
		savedSP: m.sp,
		retDst:  retDst,
		hasRet:  hasRet,
	})
}

func (m *machine) trapOut(k TrapKind) {
	m.trap = k
	m.stop = StopTrap
}

// val returns the raw 64-bit payload of an operand.
func val(regs []uint64, o ir.Operand) uint64 {
	if o.IsImm() {
		return o.Imm()
	}
	return regs[o.Reg()]
}

// run is the interpreter loop. It sets m.stop before returning.
func (m *machine) run() {
	fr := &m.frames[len(m.frames)-1]
	for {
		if m.dyn >= m.maxDyn {
			m.stop = StopHang
			return
		}
		if m.dyn >= m.nextSnap {
			m.takeSnapshot()
		}
		di := m.dyn
		m.dyn++
		if m.memIdx < len(m.memFlips) && di >= m.memFlips[m.memIdx].AtDyn {
			m.applyMemFlip(di)
		}
		in := &fr.code[fr.pc]
		nr := in.NumRegReads()

		// Inject-on-read: corrupt a source register just before the
		// instruction consumes it.
		if m.plan != nil && !m.planDone && !m.plan.OnWrite {
			m.maybeInjectRead(di, in, fr.regs, nr)
		}
		m.readSlots += uint64(nr)
		if m.countRoles {
			for s := 0; s < nr; s++ {
				m.readRoles[ir.ReadSlotRole(in, s)]++
			}
			if in.HasDst() && in.Op != ir.OpCall {
				m.writeRoles[ir.DestRole(in)]++
			} else if in.Op == ir.OpRet && fr.hasRet {
				m.writeRoles[ir.RoleOther]++ // the caller's call result
			}
		}

		regs := fr.regs
		advance := true
		switch in.Op {
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
			ir.OpShl, ir.OpLShr, ir.OpAShr:
			mask := in.W.Mask()
			a := val(regs, in.A) & mask
			b := val(regs, in.B) & mask
			regs[in.Dst] = intBin(in.Op, in.W, a, b) & mask

		case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
			mask := in.W.Mask()
			a := val(regs, in.A) & mask
			b := val(regs, in.B) & mask
			r, trap := intDiv(in.Op, in.W, a, b)
			if trap != TrapNone {
				m.trapOut(trap)
				return
			}
			regs[in.Dst] = r & mask

		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
			a := math.Float64frombits(val(regs, in.A))
			b := math.Float64frombits(val(regs, in.B))
			regs[in.Dst] = math.Float64bits(floatBin(in.Op, a, b))

		case ir.OpFNeg:
			regs[in.Dst] = math.Float64bits(-math.Float64frombits(val(regs, in.A)))
		case ir.OpFAbs:
			regs[in.Dst] = math.Float64bits(math.Abs(math.Float64frombits(val(regs, in.A))))
		case ir.OpFSqrt:
			regs[in.Dst] = math.Float64bits(math.Sqrt(math.Float64frombits(val(regs, in.A))))

		case ir.OpSExt:
			regs[in.Dst] = uint64(in.W.SignExtend(val(regs, in.A) & in.W.Mask()))
		case ir.OpZExt, ir.OpTrunc:
			regs[in.Dst] = val(regs, in.A) & in.W.Mask()
		case ir.OpSIToFP:
			regs[in.Dst] = math.Float64bits(float64(in.W.SignExtend(val(regs, in.A) & in.W.Mask())))
		case ir.OpFPToSI:
			regs[in.Dst] = fpToSI(math.Float64frombits(val(regs, in.A)), in.W)
		case ir.OpBitcast, ir.OpMov:
			regs[in.Dst] = val(regs, in.A)

		case ir.OpICmpEQ, ir.OpICmpNE, ir.OpICmpULT, ir.OpICmpULE,
			ir.OpICmpSLT, ir.OpICmpSLE:
			mask := in.W.Mask()
			a := val(regs, in.A) & mask
			b := val(regs, in.B) & mask
			regs[in.Dst] = boolBit(intCmp(in.Op, in.W, a, b))
		case ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE:
			a := math.Float64frombits(val(regs, in.A))
			b := math.Float64frombits(val(regs, in.B))
			regs[in.Dst] = boolBit(floatCmp(in.Op, a, b))

		case ir.OpSelect:
			if val(regs, in.A) != 0 {
				regs[in.Dst] = val(regs, in.B)
			} else {
				regs[in.Dst] = val(regs, in.C)
			}

		case ir.OpLoad:
			addr := val(regs, in.A) + uint64(in.Off)
			v, trap := m.load(addr, in.W.Bytes())
			if trap != TrapNone {
				m.trapOut(trap)
				return
			}
			regs[in.Dst] = v
		case ir.OpStore:
			addr := val(regs, in.A) + uint64(in.Off)
			if trap := m.store(addr, in.W.Bytes(), val(regs, in.B)); trap != TrapNone {
				m.trapOut(trap)
				return
			}
		case ir.OpAlloca:
			// The stack segment materializes on first use; programs with
			// no allocas never pay for it.
			if m.stack == nil {
				m.stack = make([]byte, ir.StackSize)
			}
			size := (in.Off + 7) &^ 7
			if m.sp+int(size) > len(m.stack) {
				m.trapOut(TrapStackOverflow)
				return
			}
			regs[in.Dst] = uint64(ir.StackBase + m.sp)
			m.sp += int(size)
			if m.sp > m.stackHW {
				m.stackHW = m.sp
			}

		case ir.OpBr:
			fr.pc = int(in.Off)
			advance = false
		case ir.OpCondBr:
			if val(regs, in.A) != 0 {
				fr.pc = int(in.Off)
				advance = false
			}

		case ir.OpCall:
			if len(m.frames) >= m.maxDepth {
				m.trapOut(TrapStackOverflow)
				return
			}
			callee := m.prog.Funcs[in.Off]
			var argbuf [8]uint64
			args := argbuf[:0]
			for _, a := range in.Args {
				args = append(args, val(regs, a))
			}
			fr.pc++ // resume after the call
			m.pushFrame(callee, args, in.Dst, in.HasDst())
			// The call's destination is written when the callee returns;
			// it becomes an inject-on-write candidate at OpRet.
			fr = &m.frames[len(m.frames)-1]
			advance = false

		case ir.OpRet:
			retVal := uint64(0)
			hasVal := !in.A.IsNone()
			if hasVal {
				retVal = val(regs, in.A)
			}
			m.sp = fr.savedSP
			retDst, hasRet := fr.retDst, fr.hasRet
			m.frames = m.frames[:len(m.frames)-1]
			if len(m.frames) == 0 {
				m.stop = StopReturned
				return
			}
			caller := &m.frames[len(m.frames)-1]
			if hasRet {
				caller.regs[retDst] = retVal
			}
			fr = caller
			advance = false
			// The caller's Call instruction wrote its destination now;
			// treat the return as that write for injection purposes.
			if hasRet {
				m.writes++
				if m.plan != nil && !m.planDone && m.plan.OnWrite {
					m.maybeInjectWrite(di, ir.W64, caller.regs, retDst)
				}
			}

		case ir.OpOut:
			v := val(regs, in.A) & in.W.Mask()
			n := in.W.Bytes()
			for i := 0; i < n; i++ {
				m.out = append(m.out, byte(v>>(8*uint(i))))
			}
			if len(m.out) > m.maxOut {
				m.stop = StopOutputLimit
				return
			}
		case ir.OpAbort:
			m.trapOut(TrapAbort)
			return
		default:
			m.trapOut(TrapAbort)
			return
		}

		// Inject-on-write: corrupt the destination register just after the
		// instruction writes it. Calls are handled at their matching Ret.
		if in.HasDst() && in.Op != ir.OpCall {
			m.writes++
			if m.plan != nil && !m.planDone && m.plan.OnWrite {
				m.maybeInjectWrite(di, ir.DestWidth(in), regs, in.Dst)
			}
		}

		if advance {
			fr.pc++
		}
	}
}

// boolBit converts a bool to 0/1.
func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// intBin evaluates non-trapping integer binaries on width-masked inputs.
func intBin(op ir.Op, w ir.Width, a, b uint64) uint64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (b & uint64(w.Bits()-1))
	case ir.OpLShr:
		return a >> (b & uint64(w.Bits()-1))
	case ir.OpAShr:
		sh := b & uint64(w.Bits()-1)
		return uint64(w.SignExtend(a) >> sh)
	}
	panic("vm: intBin bad op")
}

// intDiv evaluates division/remainder, reporting arithmetic traps.
func intDiv(op ir.Op, w ir.Width, a, b uint64) (uint64, TrapKind) {
	if b == 0 {
		return 0, TrapArithmetic
	}
	switch op {
	case ir.OpUDiv:
		return a / b, TrapNone
	case ir.OpURem:
		return a % b, TrapNone
	}
	sa, sb := w.SignExtend(a), w.SignExtend(b)
	// INT_MIN / -1 overflows: x86 raises #DE.
	if sb == -1 && sa == minInt(w) {
		return 0, TrapArithmetic
	}
	switch op {
	case ir.OpSDiv:
		return uint64(sa / sb), TrapNone
	case ir.OpSRem:
		return uint64(sa % sb), TrapNone
	}
	panic("vm: intDiv bad op")
}

func minInt(w ir.Width) int64 {
	return -(int64(1) << uint(w.Bits()-1))
}

func floatBin(op ir.Op, a, b float64) float64 {
	switch op {
	case ir.OpFAdd:
		return a + b
	case ir.OpFSub:
		return a - b
	case ir.OpFMul:
		return a * b
	case ir.OpFDiv:
		return a / b
	}
	panic("vm: floatBin bad op")
}

func intCmp(op ir.Op, w ir.Width, a, b uint64) bool {
	switch op {
	case ir.OpICmpEQ:
		return a == b
	case ir.OpICmpNE:
		return a != b
	case ir.OpICmpULT:
		return a < b
	case ir.OpICmpULE:
		return a <= b
	case ir.OpICmpSLT:
		return w.SignExtend(a) < w.SignExtend(b)
	case ir.OpICmpSLE:
		return w.SignExtend(a) <= w.SignExtend(b)
	}
	panic("vm: intCmp bad op")
}

func floatCmp(op ir.Op, a, b float64) bool {
	switch op {
	case ir.OpFCmpEQ:
		return a == b
	case ir.OpFCmpNE:
		return a != b
	case ir.OpFCmpLT:
		return a < b
	case ir.OpFCmpLE:
		return a <= b
	}
	panic("vm: floatCmp bad op")
}

// fpToSI converts saturating, then truncates to width.
func fpToSI(f float64, w ir.Width) uint64 {
	if math.IsNaN(f) {
		return 0
	}
	lo, hi := float64(minInt(w)), float64(uint64(1)<<uint(w.Bits()-1)-1)
	if f < lo {
		f = lo
	}
	if f > hi {
		f = hi
	}
	return uint64(int64(f)) & w.Mask()
}

// load reads size bytes little-endian from the segmented address space.
func (m *machine) load(addr uint64, size int) (uint64, TrapKind) {
	seg, off, trap := m.resolve(addr, size)
	if trap != TrapNone {
		return 0, trap
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(seg[off+i])
	}
	return v, TrapNone
}

// store writes size bytes little-endian.
func (m *machine) store(addr uint64, size int, v uint64) TrapKind {
	seg, off, trap := m.resolve(addr, size)
	if trap != TrapNone {
		return trap
	}
	for i := 0; i < size; i++ {
		seg[off+i] = byte(v >> (8 * uint(i)))
	}
	return TrapNone
}

// resolve maps a virtual address range onto a segment, enforcing alignment
// and bounds. Unmapped access is a segmentation fault; unaligned access is
// a misaligned-access exception.
func (m *machine) resolve(addr uint64, size int) ([]byte, int, TrapKind) {
	if size > 1 && addr%uint64(size) != 0 && !m.noAlign {
		return nil, 0, TrapMisaligned
	}
	if addr >= ir.GlobalBase && addr+uint64(size) <= ir.GlobalBase+uint64(len(m.globals)) {
		return m.globals, int(addr - ir.GlobalBase), TrapNone
	}
	// Only the live part of the stack ([StackBase, StackBase+sp)) is mapped.
	if addr >= ir.StackBase && addr+uint64(size) <= ir.StackBase+uint64(m.sp) {
		return m.stack, int(addr - ir.StackBase), TrapNone
	}
	return nil, 0, TrapSegfault
}

// applyMemFlip performs every due memory flip at dynamic index di.
func (m *machine) applyMemFlip(di uint64) {
	for m.memIdx < len(m.memFlips) && di >= m.memFlips[m.memIdx].AtDyn {
		mf := m.memFlips[m.memIdx]
		m.memIdx++
		if mf.Word+8 > uint64(len(m.globals)) {
			continue // outside the global image: nothing to corrupt
		}
		w := m.globals[mf.Word : mf.Word+8]
		v := uint64(0)
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(w[i])
		}
		v ^= mf.Mask
		for i := 0; i < 8; i++ {
			w[i] = byte(v >> (8 * uint(i)))
		}
		m.injected += popcount(mf.Mask)
		m.injDyns = append(m.injDyns, di)
	}
}

// popcount and trailingZeros are small aliases used by the injector.
func popcount(v uint64) int      { return bits.OnesCount64(v) }
func trailingZeros(v uint64) int { return bits.TrailingZeros64(v) }
