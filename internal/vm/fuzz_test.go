package vm

import (
	"bytes"
	"fmt"
	"testing"

	"multiflip/internal/ir"
	"multiflip/internal/liveness"
	"multiflip/internal/xrand"
)

// fuzzSrc doles out decision bytes from the fuzz input; exhausted input
// yields zeroes, so every prefix decodes to some program.
type fuzzSrc struct {
	data []byte
	i    int
}

func (z *fuzzSrc) next() byte {
	if z.i >= len(z.data) {
		return 0
	}
	b := z.data[z.i]
	z.i++
	return b
}

// n returns a value in [0, bound).
func (z *fuzzSrc) n(bound int) int { return int(z.next()) % bound }

func (z *fuzzSrc) u64() uint64 {
	v := uint64(0)
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(z.next())
	}
	return v
}

// emitOps appends up to count byte-driven operations to f, drawing and
// extending a register pool. Programs are valid by construction: every
// register is defined before use, labels come from the structured-control
// helpers, and global accesses use properly aligned in-bounds immediates
// (wild accesses go through register-valued addresses, which may trap —
// traps are legitimate outcomes, not generator bugs).
func emitOps(z *fuzzSrc, f *ir.FuncBuilder, pool []ir.Reg, gbase uint64, gwords, count int, depth int) []ir.Reg {
	pick := func() ir.Reg { return pool[z.n(len(pool))] }
	intBinOps := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr}
	divOps := []ir.Op{ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem}
	cmpOps := []ir.Op{ir.OpICmpEQ, ir.OpICmpNE, ir.OpICmpULT, ir.OpICmpSLT, ir.OpICmpSLE}
	widths := []ir.Width{ir.W8, ir.W16, ir.W32, ir.W64}
	for k := 0; k < count; k++ {
		switch z.n(12) {
		case 0, 1, 2:
			w := widths[z.n(len(widths))]
			pool = append(pool, f.BinW(w, intBinOps[z.n(len(intBinOps))], pick(), pick()))
		case 3:
			// Division traps on zero divisors and INT_MIN/-1: exercised on
			// purpose, with an immediate fallback so not every program dies.
			b := ir.Src(pick())
			if z.n(2) == 0 {
				b = ir.C(uint64(1 + z.n(200)))
			}
			pool = append(pool, f.BinW(ir.W32, divOps[z.n(len(divOps))], pick(), b))
		case 4:
			pool = append(pool, f.CmpW(ir.W32, cmpOps[z.n(len(cmpOps))], pick(), pick()))
		case 5:
			// Aligned in-bounds global access.
			w := widths[z.n(len(widths))]
			off := int64(z.n(gwords)) * 8
			if z.n(2) == 0 {
				pool = append(pool, f.LoadW(w, ir.C(gbase), off))
			} else {
				f.StoreW(w, ir.C(gbase), pick(), off)
			}
		case 6:
			// Register-valued address: usually out of every segment.
			if z.n(4) == 0 {
				f.StoreW(ir.W32, pick(), pick(), int64(z.n(64))*4)
			} else {
				pool = append(pool, f.LoadW(ir.W32, pick(), int64(z.n(64))*4))
			}
		case 7:
			size := int64(8 * (1 + z.n(16)))
			addr := f.Alloca(size)
			f.Store64(addr, pick(), 0)
			pool = append(pool, f.Load64(addr, 0))
		case 8:
			pool = append(pool, f.Fmul(f.SiToFp(ir.W32, pick()), ir.CF(1.5)))
			pool = append(pool, f.FpToSi(ir.W32, f.Fadd(pick(), pick())))
		case 9:
			f.OutW(widths[z.n(len(widths))], pick())
		case 10:
			if depth > 0 {
				iters := 1 + z.n(10)
				inner := z.n(3) + 1
				f.For(ir.C(0), ir.C(uint64(iters)), func(i ir.Reg) {
					loopPool := append(append([]ir.Reg(nil), pool...), i)
					emitOps(z, f, loopPool, gbase, gwords, inner, depth-1)
				})
			}
		case 11:
			if depth > 0 {
				cond := pick()
				inner := z.n(3) + 1
				f.If(cond, func() {
					emitOps(z, f, pool, gbase, gwords, inner, depth-1)
				})
			}
		}
	}
	return pool
}

// genFuzzProg decodes the fuzz input into a valid program: a global
// segment seeded from the input, a helper function, and a byte-driven
// main that may call it.
func genFuzzProg(data []byte) *ir.Program {
	z := &fuzzSrc{data: data}
	gwords := 4 + z.n(29)
	init := make([]uint64, gwords)
	for i := range init {
		init[i] = z.u64()
	}
	mb := ir.NewModule("fuzz")
	gbase := mb.GlobalU64s(init)

	helper := mb.Func("helper", 2)
	hpool := []ir.Reg{helper.Arg(0), helper.Arg(1), helper.Let(ir.C(z.u64()))}
	hpool = emitOps(z, helper, hpool, gbase, gwords, 2+z.n(6), 1)
	helper.Ret(hpool[z.n(len(hpool))])

	main := mb.Func("main", 0)
	pool := []ir.Reg{
		main.Let(ir.C(z.u64())),
		main.Let(ir.C(gbase)),
		main.Let(ir.C(uint64(z.n(255)))),
	}
	nops := 4 + z.n(40)
	for k := 0; k < nops; k++ {
		if z.n(8) == 0 {
			pool = append(pool, main.Call("helper", pool[z.n(len(pool))], pool[z.n(len(pool))]))
		} else {
			pool = emitOps(z, main, pool, gbase, gwords, 1, 2)
		}
	}
	main.Out64(pool[len(pool)-1])
	main.RetVoid()

	p, err := mb.Build()
	if err != nil {
		// The generator is valid by construction; a build error is a bug.
		panic(err)
	}
	return p
}

// FuzzVM generates random programs, injection plans and resume points and
// checks the VM's core contracts on each: runs never panic, the dynamic
// budget is always respected, checkpointing never perturbs a run, and
// resuming from any captured snapshot — fault-free, with a register
// injection plan, or with a scheduled memory flip — is bit-identical to
// the corresponding cold start.
func FuzzVM(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte("the quick brown fox jumps over the lazy dog and keeps going for a while"))
	seed := make([]byte, 96)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := genFuzzProg(data)
		z := &fuzzSrc{data: data}
		maxDyn := uint64(4000 + 64*z.n(250))
		base := Options{MaxDyn: maxDyn, MaxOutput: 1 << 14, MaxDepth: 32}

		straight, err := Run(p, base)
		if err != nil {
			t.Fatalf("straight run: %v", err)
		}
		if straight.Dyn > maxDyn {
			t.Fatalf("dynamic budget violated: %d > %d", straight.Dyn, maxDyn)
		}

		// Superinstruction fusion must be invisible: random programs are
		// dense in fused pairs, and the unfused run must match the fused
		// one bit for bit.
		nofuse := base
		nofuse.NoFuse = true
		nf, err := Run(p, nofuse)
		if err != nil {
			t.Fatalf("unfused run: %v", err)
		}
		sameResult(t, "unfused vs fused", nf, straight)

		ckOpts := base
		ckOpts.Checkpoint = uint64(8 + z.n(300))
		ckOpts.MaxSnapshots = 2 + z.n(40)
		ckpt, err := Run(p, ckOpts)
		if err != nil {
			t.Fatalf("checkpointing run: %v", err)
		}
		sameResult(t, "checkpointing run", ckpt, straight)

		for _, s := range ckpt.Snapshots {
			if s.Dyn >= maxDyn {
				t.Fatalf("snapshot beyond the budget: dyn=%d", s.Dyn)
			}
		}
		if len(ckpt.Snapshots) == 0 {
			return
		}

		// Fault-free resume from a fuzz-chosen snapshot.
		snap := ckpt.Snapshots[z.n(len(ckpt.Snapshots))]
		resumeOpts := base
		resumeOpts.Resume = snap
		res, err := Run(p, resumeOpts)
		if err != nil {
			t.Fatalf("resume from dyn=%d: %v", snap.Dyn, err)
		}
		sameResult(t, fmt.Sprintf("resume from dyn=%d", snap.Dyn), res, straight)
		if res.Dyn > maxDyn {
			t.Fatalf("resumed run violated the budget: %d > %d", res.Dyn, maxDyn)
		}

		// Cross-dispatch resume: an unfused checkpointing run places its
		// snapshots at the same instants, including between the halves of
		// an annotated pair; resuming such a snapshot with fusion enabled
		// (and vice versa) must replay identically.
		ckNoFuse := ckOpts
		ckNoFuse.NoFuse = true
		ckptNF, err := Run(p, ckNoFuse)
		if err != nil {
			t.Fatalf("unfused checkpointing run: %v", err)
		}
		sameResult(t, "unfused checkpointing run", ckptNF, straight)
		if len(ckptNF.Snapshots) != len(ckpt.Snapshots) {
			t.Fatalf("snapshot counts diverge across dispatch paths: %d vs %d",
				len(ckptNF.Snapshots), len(ckpt.Snapshots))
		}
		snapNF := ckptNF.Snapshots[z.n(len(ckptNF.Snapshots))]
		crossOpts := base
		crossOpts.Resume = snapNF
		cross, err := Run(p, crossOpts)
		if err != nil {
			t.Fatalf("fused resume from unfused snapshot dyn=%d: %v", snapNF.Dyn, err)
		}
		sameResult(t, fmt.Sprintf("fused resume from unfused dyn=%d", snapNF.Dyn), cross, straight)
		crossOpts = nofuse
		crossOpts.Resume = snap
		cross, err = Run(p, crossOpts)
		if err != nil {
			t.Fatalf("unfused resume from fused snapshot dyn=%d: %v", snap.Dyn, err)
		}
		sameResult(t, fmt.Sprintf("unfused resume from fused dyn=%d", snap.Dyn), cross, straight)

		// A register plan behaves identically from a cold start and from a
		// snapshot preceding its first candidate.
		onWrite := z.n(2) == 1
		mkPlan := func() *Plan {
			pl := &Plan{
				OnWrite:   onWrite,
				FirstCand: snap.Candidates(onWrite) + uint64(z.n(64)),
				MaxFlips:  1 + z.n(5),
				SameReg:   z.n(2) == 0,
				PinnedBit: -1,
				Rng:       xrand.ForExperiment(uint64(len(data)), uint64(z.n(16))),
			}
			if !pl.SameReg && pl.MaxFlips > 1 {
				win := uint64(1 + z.n(20))
				pl.NextWindow = func(r *xrand.Rand) uint64 { return win }
			}
			return pl
		}
		zz := *z // same decisions for both plan constructions
		planStraight := base
		planStraight.Plan = mkPlan()
		*z = zz
		planResumed := base
		planResumed.Plan = mkPlan()
		planResumed.Resume = snap
		ps, err := Run(p, planStraight)
		if err != nil {
			t.Fatalf("plan straight: %v", err)
		}
		if ps.Dyn > maxDyn {
			t.Fatalf("plan run violated the budget: %d > %d", ps.Dyn, maxDyn)
		}
		pr, err := Run(p, planResumed)
		if err != nil {
			t.Fatalf("plan resumed: %v", err)
		}
		sameResult(t, "plan resumed vs cold", pr, ps)

		// A scheduled memory flip behaves identically from a cold start and
		// from a snapshot at or before its instant.
		flip := MemFlip{
			AtDyn: snap.Dyn + uint64(z.n(200)),
			Word:  uint64(z.n(len(p.Globals)/8)) * 8,
			Mask:  z.u64() | 1,
		}
		memStraight := base
		memStraight.MemFlips = []MemFlip{flip}
		memResumed := memStraight
		memResumed.Resume = snap
		ms, err := Run(p, memStraight)
		if err != nil {
			t.Fatalf("memflip straight: %v", err)
		}
		mr, err := Run(p, memResumed)
		if err != nil {
			t.Fatalf("memflip resumed: %v", err)
		}
		sameResult(t, "memflip resumed vs cold", mr, ms)

		// Convergence-gated early termination must be invisible: a golden
		// hash trace recorded alongside the checkpoints never perturbs the
		// recording run, and every faulted run carrying it — converged or
		// not, cold or resumed — matches its traceless twin bit for bit.
		trOpts := ckOpts
		trOpts.RecordTrace = true
		trun, err := Run(p, trOpts)
		if err != nil {
			t.Fatalf("trace-recording run: %v", err)
		}
		sameResult(t, "trace-recording run", trun, straight)
		trace := trun.Trace
		if trace == nil {
			t.Fatal("checkpointing run with RecordTrace recorded no trace")
		}

		*z = zz
		planConv := base
		planConv.Plan = mkPlan()
		planConv.Trace = trace
		pc, err := Run(p, planConv)
		if err != nil {
			t.Fatalf("plan converge cold: %v", err)
		}
		sameResult(t, "plan converge cold vs full", pc, ps)

		*z = zz
		planConvRes := base
		planConvRes.Plan = mkPlan()
		planConvRes.Trace = trace
		planConvRes.Resume = snap
		pcr, err := Run(p, planConvRes)
		if err != nil {
			t.Fatalf("plan converge resumed: %v", err)
		}
		sameResult(t, "plan converge resumed vs full", pcr, ps)

		memConv := memStraight
		memConv.Trace = trace
		mc, err := Run(p, memConv)
		if err != nil {
			t.Fatalf("memflip converge: %v", err)
		}
		sameResult(t, "memflip converge vs full", mc, ms)

		// The kill switch forces full execution and clears the provenance.
		*z = zz
		planKill := planConv
		planKill.Plan = mkPlan()
		planKill.NoConverge = true
		pk, err := Run(p, planKill)
		if err != nil {
			t.Fatalf("plan NoConverge: %v", err)
		}
		if pk.Converged {
			t.Fatal("NoConverge run reported convergence")
		}
		sameResult(t, "plan NoConverge vs full", pk, ps)

		// Liveness-vs-execution: the bit-level static analysis claims some
		// (candidate, bit) flips are unobservable. Enumerate the dead
		// candidates of this random program, force one to execute with a
		// pinned single-bit plan, and demand the run is bit-identical to
		// the fault-free one — a diverging result is an unsound transfer
		// function, the exact bug class the static pruning tier must never
		// ship.
		an := liveness.Analyze(p)
		type deadCand struct {
			onWrite bool
			cand    uint64
			dead    uint64
			wbits   int
		}
		var deads []deadCand
		enumOpts := base
		enumOpts.OnCand = func(onWrite bool, cand uint64, fn, pcx, slot int, val uint64) {
			if len(deads) >= 512 {
				return
			}
			var dead uint64
			wbits := 64
			switch {
			case slot >= 0:
				dead = an.DeadReadBits(fn, pcx, slot)
				wbits = ir.SlotWidth(&p.Funcs[fn].Code[pcx], slot).Bits()
			case slot == -1:
				dead = an.DeadWriteBits(fn, pcx)
				wbits = ir.DestWidth(&p.Funcs[fn].Code[pcx]).Bits()
			default:
				dead = an.DeadWriteBits(fn, pcx-1)
			}
			if dead == 0 {
				return
			}
			deads = append(deads, deadCand{onWrite: onWrite, cand: cand, dead: dead, wbits: wbits})
		}
		// The observable core — everything a dead flip could corrupt if the
		// analysis were wrong. Role counters and injection metadata are
		// excluded: the enumeration run counts roles the straight run does
		// not, and the injected run legitimately reports its one flip.
		sameCore := func(label string, got, want *Result) {
			t.Helper()
			if got.Stop != want.Stop || got.Trap != want.Trap {
				t.Fatalf("%s: stop %s/%s, want %s/%s", label, got.Stop, got.Trap, want.Stop, want.Trap)
			}
			if !bytes.Equal(got.Output, want.Output) {
				t.Fatalf("%s: output differs (%d bytes vs %d)", label, len(got.Output), len(want.Output))
			}
			if got.Dyn != want.Dyn || got.ReadSlots != want.ReadSlots || got.Writes != want.Writes {
				t.Fatalf("%s: counters (dyn=%d rs=%d w=%d), want (dyn=%d rs=%d w=%d)", label,
					got.Dyn, got.ReadSlots, got.Writes, want.Dyn, want.ReadSlots, want.Writes)
			}
		}
		enum, err := Run(p, enumOpts)
		if err != nil {
			t.Fatalf("candidate enumeration run: %v", err)
		}
		sameCore("candidate enumeration run", enum, straight)
		if len(deads) > 0 {
			dc := deads[z.n(len(deads))]
			bit := -1
			for b := 0; b < dc.wbits; b++ {
				if dc.dead>>uint(b)&1 != 0 {
					bit = b
					break
				}
			}
			if bit >= 0 {
				deadOpts := base
				deadOpts.Plan = &Plan{
					OnWrite:   dc.onWrite,
					FirstCand: dc.cand,
					MaxFlips:  1,
					SameReg:   true,
					PinnedBit: bit,
					Rng:       xrand.ForExperiment(uint64(len(data)), 99),
				}
				dr, err := Run(p, deadOpts)
				if err != nil {
					t.Fatalf("dead-bit injection run: %v", err)
				}
				if dr.Injected != 1 {
					t.Fatalf("dead-bit plan injected %d flips, want 1", dr.Injected)
				}
				sameCore(fmt.Sprintf("dead-bit flip cand=%d bit=%d onWrite=%v", dc.cand, bit, dc.onWrite), dr, straight)
			}
		}

		// Compiled fast tier: fuzz-generated programs never have kernels
		// (the registry gate is keyed by name), so draw a real suite
		// workload with fuzz-chosen budgets and pit the compiled tier
		// against the interpreter — results, trap surfaces and snapshots
		// must be bit-identical, and snapshots must resume across tiers.
		wp := suitePrograms()[z.n(len(suitePrograms()))]
		wOpts := Options{
			MaxDyn:       uint64(1000 + 64*z.n(400)),
			MaxOutput:    1 << 14,
			Checkpoint:   uint64(100 + z.n(400)),
			MaxSnapshots: 4,
		}
		wFast, err := Run(wp, wOpts)
		if err != nil {
			t.Fatalf("workload compiled: %v", err)
		}
		wSlowOpts := wOpts
		wSlowOpts.NoCompile = true
		wSlow, err := Run(wp, wSlowOpts)
		if err != nil {
			t.Fatalf("workload interpreted: %v", err)
		}
		sameResult(t, "workload compiled vs interpreted", wFast, wSlow)
		if len(wFast.Snapshots) != len(wSlow.Snapshots) {
			t.Fatalf("workload snapshot counts diverge: %d compiled vs %d interpreted",
				len(wFast.Snapshots), len(wSlow.Snapshots))
		}
		if len(wFast.Snapshots) > 0 {
			wSnap := wFast.Snapshots[z.n(len(wFast.Snapshots))]
			xOpts := Options{MaxDyn: wOpts.MaxDyn, MaxOutput: wOpts.MaxOutput}
			xWant, err := Run(wp, xOpts)
			if err != nil {
				t.Fatalf("workload cross-tier baseline: %v", err)
			}
			xOpts.Resume = wSnap
			xOpts.NoCompile = true
			xr, err := Run(wp, xOpts)
			if err != nil {
				t.Fatalf("workload cross-tier resume: %v", err)
			}
			sameResult(t, "interpreted resume from compiled workload snapshot", xr, xWant)
			xOpts.NoCompile = false
			xOpts.Resume = wSlow.Snapshots[z.n(len(wSlow.Snapshots))]
			xc, err := Run(wp, xOpts)
			if err != nil {
				t.Fatalf("workload cross-tier resume compiled: %v", err)
			}
			sameResult(t, "compiled resume from interpreted workload snapshot", xc, xWant)
		}
	})
}
