package vm

import (
	"errors"

	"multiflip/internal/ir"
)

// Snapshot captures the complete machine state at a dynamic-instruction
// boundary: after the first Dyn instructions have fully executed and before
// instruction Dyn begins. A snapshot is immutable once taken — capture and
// restore both deep-copy every mutable segment (frames, register files,
// globals, stack, output) — so one stored snapshot can seed any number of
// concurrent resumed runs.
//
// Snapshots are the mechanism behind golden-run fast-forwarding: the
// campaign runner records them during the fault-free profile run and starts
// each experiment from the latest snapshot that precedes the experiment's
// first injection candidate, skipping the deterministic fault-free prefix.
type Snapshot struct {
	// Dyn is the number of dynamic instructions executed before this
	// snapshot; resuming continues with instruction index Dyn.
	Dyn uint64
	// ReadSlots is the number of register-read operand slots consumed so
	// far: the inject-on-read candidate counter at the snapshot point.
	ReadSlots uint64
	// Writes is the number of destination-register writes performed so far:
	// the inject-on-write candidate counter at the snapshot point.
	Writes uint64

	prog       *ir.Program
	frames     []frame
	globals    []byte
	stack      []byte // live prefix [0, stackHW); nil when never materialized
	sp         int
	stackHW    int
	out        []byte
	readRoles  [ir.NumSlotRoles]uint64
	writeRoles [ir.NumSlotRoles]uint64
}

// Candidates returns the snapshot's candidate counter for a technique:
// Writes for inject-on-write, ReadSlots for inject-on-read. A plan whose
// FirstCand is >= this value can safely resume from the snapshot.
func (s *Snapshot) Candidates(onWrite bool) uint64 {
	if onWrite {
		return s.Writes
	}
	return s.ReadSlots
}

// DefaultMaxSnapshots bounds the snapshots a checkpointing run keeps when
// Options.MaxSnapshots is zero. When the cap is reached the run drops every
// other snapshot and doubles its interval, so any run length yields between
// MaxSnapshots/2 and MaxSnapshots evenly spaced snapshots.
const DefaultMaxSnapshots = 128

// noSnap disables checkpointing in the interpreter loop.
const noSnap = ^uint64(0)

// takeSnapshot records the current machine state. Called at the top of the
// interpreter loop, so m.dyn instructions have fully executed and every
// counter is at an instruction boundary.
func (m *machine) takeSnapshot() {
	s := &Snapshot{
		Dyn:        m.dyn,
		ReadSlots:  m.readSlots,
		Writes:     m.writes,
		prog:       m.prog,
		frames:     make([]frame, len(m.frames)),
		globals:    append([]byte(nil), m.globals...),
		sp:         m.sp,
		stackHW:    m.stackHW,
		out:        append([]byte(nil), m.out...),
		readRoles:  m.readRoles,
		writeRoles: m.writeRoles,
	}
	if m.stack != nil {
		// Only [0, stackHW) has ever been written; bytes above are still
		// zero and need not be stored.
		s.stack = append([]byte(nil), m.stack[:m.stackHW]...)
	}
	for i, fr := range m.frames {
		fr.regs = append([]uint64(nil), fr.regs...)
		s.frames[i] = fr
	}
	m.snaps = append(m.snaps, s)
	if len(m.snaps) >= m.maxSnaps {
		// Thin to every other snapshot and double the interval; long runs
		// keep bounded memory at proportionally coarser granularity.
		k := 0
		for i := 1; i < len(m.snaps); i += 2 {
			m.snaps[k] = m.snaps[i]
			k++
		}
		m.snaps = m.snaps[:k]
		m.checkpoint *= 2
	}
	m.nextSnap = m.dyn + m.checkpoint
}

var (
	errResumeProg      = errors.New("vm: resume snapshot belongs to a different program")
	errResumeCand      = errors.New("vm: plan's first candidate precedes the resume snapshot")
	errResumeMem       = errors.New("vm: memory flip scheduled before the resume snapshot")
	errCheckpointFault = errors.New("vm: checkpointing a run with injections is not supported")
)

// restore initializes the machine from a snapshot, deep-copying every
// mutable segment so the snapshot stays reusable. It returns an error when
// the snapshot cannot reproduce a straight run under the machine's options:
// wrong program, a plan whose first candidate the snapshot has already
// passed, or a memory flip due before the snapshot point.
func (m *machine) restore(s *Snapshot) error {
	if s.prog != m.prog {
		return errResumeProg
	}
	if p := m.plan; p != nil && p.FirstCand < s.Candidates(p.OnWrite) {
		return errResumeCand
	}
	if len(m.memFlips) > 0 && m.memFlips[0].AtDyn < s.Dyn {
		return errResumeMem
	}
	m.dyn = s.Dyn
	m.readSlots = s.ReadSlots
	m.writes = s.Writes
	m.globals = append([]byte(nil), s.globals...)
	m.sp = s.sp
	m.stackHW = s.stackHW
	if s.stack != nil {
		m.stack = make([]byte, ir.StackSize)
		copy(m.stack, s.stack)
	}
	m.out = append([]byte(nil), s.out...)
	if m.countRoles {
		// Continue the role tallies from the snapshot so a checkpointing
		// profile run and its resumed halves agree. Runs that do not count
		// roles leave the arrays zero, matching the Result contract.
		m.readRoles = s.readRoles
		m.writeRoles = s.writeRoles
	}
	m.frames = make([]frame, len(s.frames))
	for i, fr := range s.frames {
		fr.regs = append([]uint64(nil), fr.regs...)
		m.frames[i] = fr
	}
	return nil
}
