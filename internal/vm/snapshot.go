package vm

import (
	"errors"
	"sync"

	"multiflip/internal/ir"
)

// Snapshot captures the complete machine state at a dynamic-instruction
// boundary: after the first Dyn instructions have fully executed and before
// instruction Dyn begins. A snapshot is immutable once taken, so one stored
// snapshot can seed any number of concurrent resumed runs.
//
// Memory is captured as page-granular deltas: each snapshot records only
// the pages dirtied since its base (the previous snapshot of the same run,
// or the run's resume point), so capture cost scales with the interval's
// write set, not with segment size. The full page tables a resume needs
// are materialized lazily — once per snapshot, memoized, walking the base
// chain — and every clean page in them is shared with the predecessor
// (ultimately with the immutable program image). Resume in turn installs
// shared pages lazily: the resumed machine reads them in place and copies
// a page into private storage only when it first writes it.
//
// Snapshots are the mechanism behind golden-run fast-forwarding: the
// campaign runner records them during the fault-free profile run and starts
// each experiment from the latest snapshot that precedes the experiment's
// first injection candidate, skipping the deterministic fault-free prefix.
type Snapshot struct {
	// Dyn is the number of dynamic instructions executed before this
	// snapshot; resuming continues with instruction index Dyn.
	Dyn uint64
	// ReadSlots is the number of register-read operand slots consumed so
	// far: the inject-on-read candidate counter at the snapshot point.
	ReadSlots uint64
	// Writes is the number of destination-register writes performed so far:
	// the inject-on-write candidate counter at the snapshot point.
	Writes uint64

	prog *ir.Program
	// frames' register files are subslices of regSlab, mirroring the
	// machine's arena layout so restore is one copy plus rebasing.
	frames  []frame
	regSlab []uint64

	// base is the snapshot this one's deltas patch: the run's previous
	// capture, or its resume point. nil means the baseline is the program
	// image (globals) and an all-zero stack.
	base        *Snapshot
	imgPages    [][]byte // program-image page table, the base==nil baseline
	globalDelta pageDelta
	stackDelta  pageDelta
	globalLen   int
	sp          int
	stackHW     int

	// Materialized full page tables (tables()); globalTbl covers the whole
	// global segment, stackTbl the live prefix [0, stackHW). A nil page is
	// all zeroes.
	tblOnce   sync.Once
	globalTbl [][]byte
	stackTbl  [][]byte

	out        []byte
	readRoles  [ir.NumSlotRoles]uint64
	writeRoles [ir.NumSlotRoles]uint64
}

// Candidates returns the snapshot's candidate counter for a technique:
// Writes for inject-on-write, ReadSlots for inject-on-read. A plan whose
// FirstCand is >= this value can safely resume from the snapshot.
func (s *Snapshot) Candidates(onWrite bool) uint64 {
	if onWrite {
		return s.Writes
	}
	return s.ReadSlots
}

// patchPages materializes a full np-entry page table from a base table
// and a delta: clean pages share the base entry (nil — all-zero — beyond
// it), dirtied pages take the delta's copies.
func patchPages(base [][]byte, d pageDelta, np int) [][]byte {
	t := make([][]byte, np)
	copy(t, base)
	for k, i := range d.idx {
		t[i] = d.pages[k]
	}
	return t
}

// tables returns the snapshot's materialized page tables, building them
// on first use by patching the base chain's tables with this snapshot's
// deltas. Memoized: the cost is paid once per snapshot no matter how many
// runs resume from it, and never for snapshots no run resumes from.
func (s *Snapshot) tables() (globalTbl, stackTbl [][]byte) {
	s.tblOnce.Do(func() {
		gt := s.imgPages
		var st [][]byte
		if s.base != nil {
			gt, st = s.base.tables()
		}
		s.globalTbl = patchPages(gt, s.globalDelta, numPages(s.globalLen))
		s.stackTbl = patchPages(st, s.stackDelta, numPages(s.stackHW))
	})
	return s.globalTbl, s.stackTbl
}

// selfContain materializes the snapshot's tables and drops its base
// reference, so thinned-away predecessors (and their frame slabs) can be
// collected. Only safe while the owning run still has exclusive access.
func (s *Snapshot) selfContain() {
	s.tables()
	s.base = nil
	s.imgPages = nil
}

// DefaultMaxSnapshots bounds the snapshots a checkpointing run keeps when
// Options.MaxSnapshots is zero. When the cap is reached the run drops every
// other snapshot and doubles its interval, so any run length yields between
// MaxSnapshots/2 and MaxSnapshots evenly spaced snapshots.
const DefaultMaxSnapshots = 128

// noSnap disables checkpointing in the interpreter loop.
const noSnap = ^uint64(0)

// eagerRestoreBytes is the segment size up to which restore materializes
// a flat private copy instead of installing pages lazily: for small
// segments one memcpy is cheaper than per-access residency checks, while
// large segments profit from paying only for the pages they write. 16 KiB
// keeps recursion-heavy workloads (whose stack high-water mark passes
// 4 KiB, e.g. qsort) on the eager path — their experiments touch most of
// the live stack anyway, and the residency test on every array access
// costs more than the one-shot copy.
const eagerRestoreBytes = 16384

// takeSnapshot records the current machine state. Called at the top of the
// interpreter loop, so m.dyn instructions have fully executed and every
// counter is at an instruction boundary.
func (m *machine) takeSnapshot() {
	// Only the pages dirtied since the previous capture are copied;
	// everything else is represented by the base chain.
	gd := m.globals.captureDelta(m.globals.n)
	var sd pageDelta
	if m.stackHW > 0 {
		sd = m.stack.captureDelta(m.stackHW)
	}
	if m.rec != nil {
		// Golden trace recording piggybacks on the capture pass: the
		// deltas hold exactly the pages dirtied this interval, so the
		// state fingerprint updates from them without re-scanning.
		m.recordTraceEntry(gd, sd)
	}
	s := &Snapshot{
		Dyn:         m.dyn,
		ReadSlots:   m.readSlots,
		Writes:      m.writes,
		prog:        m.prog,
		base:        m.lastSnap,
		globalDelta: gd,
		stackDelta:  sd,
		globalLen:   m.globals.n,
		sp:          m.sp,
		stackHW:     m.stackHW,
		// The output buffer is append-only; a capacity-clamped view of the
		// current prefix is immutable without copying.
		out:        m.out[:len(m.out):len(m.out)],
		readRoles:  m.readRoles,
		writeRoles: m.writeRoles,
	}
	if s.base == nil {
		s.imgPages = m.imgPages
	}
	m.lastSnap = s

	// The arena is exactly the concatenation of the live frames' register
	// files: snapshot it as one slab and rebase the frame slices into it.
	s.regSlab = append([]uint64(nil), m.regArena[:m.regTop]...)
	s.frames = append([]frame(nil), m.frames...)
	for i := range s.frames {
		fr := &s.frames[i]
		hi := fr.regBase + len(fr.regs)
		fr.regs = s.regSlab[fr.regBase:hi:hi]
	}

	m.snaps = append(m.snaps, s)
	if len(m.snaps) >= m.maxSnaps {
		// Thin to every other snapshot and double the interval; long runs
		// keep bounded memory at proportionally coarser granularity. The
		// survivors are made self-contained so the dropped snapshots'
		// memory is actually released.
		k := 0
		for i := 1; i < len(m.snaps); i += 2 {
			m.snaps[k] = m.snaps[i]
			k++
		}
		m.snaps = m.snaps[:k]
		for _, kept := range m.snaps {
			kept.selfContain()
		}
		m.checkpoint *= 2
	}
	m.nextSnap = m.dyn + m.checkpoint
}

var (
	errResumeProg      = errors.New("vm: resume snapshot belongs to a different program")
	errResumeCand      = errors.New("vm: plan's first candidate precedes the resume snapshot")
	errResumeMem       = errors.New("vm: memory flip scheduled before the resume snapshot")
	errCheckpointFault = errors.New("vm: checkpointing a run with injections is not supported")
	errTraceProg       = errors.New("vm: golden trace belongs to a different program")
)

// restore initializes the machine from a snapshot. Small segments are
// copied eagerly; large ones are mounted copy-on-write, with the snapshot's
// shared pages installed lazily on first write. Either way the snapshot
// stays reusable: the machine never writes through to snapshot pages. It
// returns an error when the snapshot cannot reproduce a straight run under
// the machine's options: wrong program, a plan whose first candidate the
// snapshot has already passed, or a memory flip due before the snapshot
// point.
func (m *machine) restore(s *Snapshot) error {
	if s.prog != m.prog {
		return errResumeProg
	}
	if p := m.plan; p != nil && p.FirstCand < s.Candidates(p.OnWrite) {
		return errResumeCand
	}
	if len(m.memFlips) > 0 && m.memFlips[0].AtDyn < s.Dyn {
		return errResumeMem
	}
	m.dyn = s.Dyn
	m.readSlots = s.ReadSlots
	m.writes = s.Writes
	globalTbl, stackTbl := s.tables()
	gbuf := m.globals.flat[:0]
	if s.globalLen <= eagerRestoreBytes {
		m.globals = flatMem(s.globalLen, flattenInto(gbuf, globalTbl, s.globalLen))
	} else {
		m.globals = cowMem(s.globalLen, globalTbl)
		m.globals.flat = gbuf
	}
	m.sp = s.sp
	m.stackHW = s.stackHW
	sbuf := m.stack.flat[:0]
	m.stack = mem{n: ir.StackSize, flat: sbuf}
	if s.stackHW > 0 {
		if s.stackHW <= eagerRestoreBytes {
			// flat covers [0, stackHW); every mapped access is below sp <=
			// stackHW, and later high-water growth extends it.
			m.stack = flatMem(ir.StackSize, flattenInto(sbuf, stackTbl, s.stackHW))
		} else {
			m.stack = cowMem(ir.StackSize, stackTbl)
			m.stack.flat = sbuf
		}
	}
	m.out = s.out[:len(s.out):len(s.out)]
	if m.countRoles {
		// Continue the role tallies from the snapshot so a checkpointing
		// profile run and its resumed halves agree. Runs that do not count
		// roles leave the arrays zero, matching the Result contract.
		m.readRoles = s.readRoles
		m.writeRoles = s.writeRoles
	}
	// If this run checkpoints too, its captures patch the resume point.
	m.lastSnap = s

	if need := len(s.regSlab) + 64; cap(m.regArena) < need {
		m.regArena = make([]uint64, need)
	} else {
		m.regArena = m.regArena[:cap(m.regArena)]
	}
	m.regTop = copy(m.regArena, s.regSlab)
	m.frames = append(m.frames[:0], s.frames...)
	for i := range m.frames {
		fr := &m.frames[i]
		hi := fr.regBase + len(fr.regs)
		fr.regs = m.regArena[fr.regBase:hi:hi]
	}
	return nil
}
