package vm

import (
	"bytes"
	"fmt"
	"testing"

	"multiflip/internal/ir"
)

// buildStrideProg builds a program over a zeroed global array of words
// 64-bit words (words must be a power of two). Each of loops iterations
// stores to word (i*stride)&(words-1) and folds a load back into an
// accumulator that is emitted at the end. stride = 0 keeps every write in
// word 0 (one dirty page per checkpoint interval); an odd stride sweeps
// the whole segment. The instruction count per iteration is independent
// of stride, so run lengths are comparable.
func buildStrideProg(words, loops, stride int) *ir.Program {
	mb := ir.NewModule(fmt.Sprintf("stride-%d-%d-%d", words, loops, stride))
	base := mb.GlobalZero(8 * words)
	f := mb.Func("main", 0)
	acc := f.Let(ir.C(0))
	f.For(ir.C(0), ir.C(uint64(loops)), func(i ir.Reg) {
		w := f.BinW(ir.W64, ir.OpAnd, f.BinW(ir.W64, ir.OpMul, i, ir.C(uint64(stride))), ir.C(uint64(words-1)))
		addr := f.BinW(ir.W64, ir.OpAdd, ir.C(base), f.BinW(ir.W64, ir.OpMul, w, ir.C(8)))
		f.Store64(addr, f.BinW(ir.W64, ir.OpAdd, i, ir.C(0x9e3779b9)), 0)
		f.Mov(acc, f.BinW(ir.W64, ir.OpXor, acc, f.Load64(addr, 0)))
	})
	f.Out64(acc)
	f.RetVoid()
	return mb.MustBuild()
}

// samePage reports whether two snapshot pages share storage (or are both
// nil zero-pages).
func samePage(a, b []byte) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(a) == 0 && len(b) == 0
	}
	return &a[0] == &b[0]
}

// TestSnapshotPageSharingChain pins the copy-on-write capture contract:
// each snapshot's delta holds exactly the pages dirtied in its interval
// (at most the one data page here, since all writes stay in one word),
// and the materialized tables share every clean page with the
// predecessor's table.
func TestSnapshotPageSharingChain(t *testing.T) {
	p := buildStrideProg(1<<13, 4000, 0) // 64 KiB of globals, writes in word 0 only
	ckpt, err := Run(p, Options{Checkpoint: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpt.Snapshots) < 4 {
		t.Fatalf("only %d snapshots", len(ckpt.Snapshots))
	}
	for k := 1; k < len(ckpt.Snapshots); k++ {
		prev, cur := ckpt.Snapshots[k-1], ckpt.Snapshots[k]
		if got := len(cur.globalDelta.idx); got > 1 {
			t.Errorf("snapshot %d: delta holds %d pages, want <= 1 (writes stay in one page)", k, got)
		}
		prevTbl, _ := prev.tables()
		curTbl, _ := cur.tables()
		if len(curTbl) != numPages(cur.globalLen) {
			t.Fatalf("snapshot %d: %d pages for %d bytes", k, len(curTbl), cur.globalLen)
		}
		copied := 0
		for i := range curTbl {
			if !samePage(prevTbl[i], curTbl[i]) {
				copied++
			}
		}
		if copied > 1 {
			t.Errorf("snapshot %d: %d table pages copied, want <= 1", k, copied)
		}
	}
}

// TestSnapshotFirstCaptureSharesImage checks that a first capture shares
// every untouched page with the program's immutable global image instead
// of copying it.
func TestSnapshotFirstCaptureSharesImage(t *testing.T) {
	p := buildStrideProg(1<<13, 100, 0)
	ckpt, err := Run(p, Options{Checkpoint: 50})
	if err != nil {
		t.Fatal(err)
	}
	img := pageTable(p.Globals)
	firstTbl, _ := ckpt.Snapshots[0].tables()
	shared := 0
	for i := range firstTbl {
		if samePage(img[i], firstTbl[i]) {
			shared++
		}
	}
	if want := len(img) - 1; shared < want {
		t.Errorf("first capture shares %d/%d image pages, want >= %d", shared, len(img), want)
	}
}

// TestSnapshotCaptureCostScalesWithDirt compares the copied-page totals of
// a write-local and a write-everywhere run over the same segment size and
// instruction count: the capture work (copied pages) must track the write
// set, not the segment size.
func TestSnapshotCaptureCostScalesWithDirt(t *testing.T) {
	copiedPages := func(stride int) int {
		p := buildStrideProg(1<<13, 4000, stride)
		ckpt, err := Run(p, Options{Checkpoint: 500, MaxSnapshots: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		copied := 0
		for _, s := range ckpt.Snapshots {
			copied += len(s.globalDelta.idx)
		}
		return copied
	}
	local, spread := copiedPages(0), copiedPages(37)
	if local*8 > spread {
		t.Errorf("local writes copied %d pages vs %d for spread writes; want far fewer", local, spread)
	}
}

// TestSnapshotResumeLazyGlobals drives the lazy (copy-on-write) restore
// path: the globals exceed the eager-restore bound, so the resumed run
// mounts the snapshot pages in place. The result must match the straight
// run and the snapshot must survive unmodified for a second resume.
func TestSnapshotResumeLazyGlobals(t *testing.T) {
	p := buildStrideProg(1<<13, 4000, 37) // 64 KiB > eagerRestoreBytes
	if (1<<13)*8 <= eagerRestoreBytes {
		t.Fatal("test program no longer exceeds the eager-restore bound")
	}
	straight, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := Run(p, Options{Checkpoint: 1000})
	if err != nil {
		t.Fatal(err)
	}
	snap := ckpt.Snapshots[len(ckpt.Snapshots)/2]
	snapTbl, _ := snap.tables()
	before := make([][]byte, len(snapTbl))
	for i, pg := range snapTbl {
		before[i] = append([]byte(nil), pg...)
	}
	for trial := 0; trial < 2; trial++ {
		res, err := Run(p, Options{Resume: snap})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("lazy resume trial %d", trial), res, straight)
		for i, pg := range snapTbl {
			if !bytes.Equal(before[i], pg) {
				t.Fatalf("trial %d corrupted snapshot page %d", trial, i)
			}
		}
	}
}

// TestSnapshotResumeLazyStack exercises the lazy stack path: a stack
// frame larger than the eager-restore bound, written sparsely, restored
// copy-on-write, with stale bytes beyond the live pointer preserved.
func TestSnapshotResumeLazyStack(t *testing.T) {
	const bufWords = 1 << 11 // 16 KiB alloca > eagerRestoreBytes
	mb := ir.NewModule("big-stack")
	f := mb.Func("main", 0)
	buf := f.Alloca(8 * bufWords)
	f.For(ir.C(0), ir.C(400), func(i ir.Reg) {
		w := f.BinW(ir.W64, ir.OpAnd, f.BinW(ir.W64, ir.OpMul, i, ir.C(571)), ir.C(bufWords-1))
		addr := f.BinW(ir.W64, ir.OpAdd, buf, f.BinW(ir.W64, ir.OpMul, w, ir.C(8)))
		f.Store64(addr, f.BinW(ir.W64, ir.OpMul, i, i), 0)
	})
	acc := f.Let(ir.C(0))
	f.For(ir.C(0), ir.C(bufWords), func(i ir.Reg) {
		addr := f.BinW(ir.W64, ir.OpAdd, buf, f.BinW(ir.W64, ir.OpMul, i, ir.C(8)))
		f.Mov(acc, f.BinW(ir.W64, ir.OpXor, acc, f.Load64(addr, 0)))
	})
	f.Out64(acc)
	f.RetVoid()
	p := mb.MustBuild()

	straight, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := Run(p, Options{Checkpoint: 300})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "checkpointing run", ckpt, straight)
	for _, idx := range []int{0, len(ckpt.Snapshots) / 2, len(ckpt.Snapshots) - 1} {
		snap := ckpt.Snapshots[idx]
		res, err := Run(p, Options{Resume: snap})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("resume from dyn=%d", snap.Dyn), res, straight)
	}
}

// TestSnapshotOutputViewImmutable pins the zero-copy output capture: a
// snapshot's output view must not change when the checkpointing machine
// keeps appending, and a resumed run must not write into the shared
// backing array.
func TestSnapshotOutputViewImmutable(t *testing.T) {
	mb := ir.NewModule("out-chain")
	f := mb.Func("main", 0)
	f.For(ir.C(0), ir.C(64), func(i ir.Reg) {
		f.Out32(f.BinW(ir.W32, ir.OpMul, i, ir.C(3)))
	})
	f.RetVoid()
	p := mb.MustBuild()

	straight, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := Run(p, Options{Checkpoint: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ckpt.Snapshots {
		if !bytes.Equal(s.out, straight.Output[:len(s.out)]) {
			t.Fatalf("snapshot at dyn=%d: output view diverged from the golden prefix", s.Dyn)
		}
		if cap(s.out) != len(s.out) {
			t.Fatalf("snapshot at dyn=%d: output view has spare capacity %d", s.Dyn, cap(s.out)-len(s.out))
		}
		res, err := Run(p, Options{Resume: s})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("resume from dyn=%d", s.Dyn), res, straight)
		if !bytes.Equal(s.out, straight.Output[:len(s.out)]) {
			t.Fatalf("resumed run mutated snapshot output view at dyn=%d", s.Dyn)
		}
	}
}
