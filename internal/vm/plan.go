package vm

import (
	"errors"

	"multiflip/internal/ir"
	"multiflip/internal/xrand"
)

// Plan describes the bit flips one experiment performs. It is mechanism
// only; internal/core samples the fields from the campaign's fault model.
//
// The candidate space is defined by the technique:
//
//   - inject-on-read (OnWrite=false): every dynamic register-read operand
//     slot, in execution order;
//   - inject-on-write (OnWrite=true): every dynamic instruction that writes
//     a destination register (calls count at their matching return, when
//     the destination is actually written).
//
// The first flip lands on candidate index FirstCand. With SameReg (the
// paper's win-size = 0), all MaxFlips flips are distinct bits of that one
// register, clamped to its width. Otherwise follow-up flips land on the
// first eligible candidate at a dynamic-instruction distance of at least
// NextWindow(rng) from the previous flip, one random bit each.
type Plan struct {
	// OnWrite selects the technique: false = inject-on-read, true =
	// inject-on-write.
	OnWrite bool
	// FirstCand is the candidate index of the first injection.
	FirstCand uint64
	// MaxFlips is the paper's max-MBF: the maximum number of bit-flip
	// errors in this run. Must be >= 1.
	MaxFlips int
	// SameReg corresponds to win-size = 0: all flips target the first
	// candidate's register as distinct bits.
	SameReg bool
	// NextWindow samples the dynamic-instruction distance to the next
	// injection. Required when !SameReg and MaxFlips > 1; must return a
	// value >= 1.
	NextWindow func(*xrand.Rand) uint64
	// Rng drives slot, bit and window sampling. Required.
	Rng *xrand.Rand
	// PinnedBit pins the bit index of the FIRST flip (reduced modulo the
	// target register width); use -1 to sample uniformly. Pinning supports
	// the paper's §IV-C3 reruns, which start multi-bit experiments at the
	// exact locations of earlier single-bit experiments.
	PinnedBit int
	// Stuck selects the stuck-at model instead of transient flips: the
	// first candidate's register has one bit held at a constant value
	// (StuckHigh) across every read of that register that can observe it
	// (the reading slot's width covers the bit — the transient model's
	// flip-within-slot-width rule), for HoldWindow dynamic instructions
	// starting at the first candidate's instruction. The hold ends early
	// when the activation frame returns — the register file is
	// per-frame, so the faulty register has no identity beyond it. Only
	// inject-on-read is meaningful (OnWrite must be false); MaxFlips,
	// SameReg and NextWindow are ignored. Each observing read whose
	// value the hold actually changes counts as one activated error, so
	// Result.Injected can be zero (the bit already carried the held
	// value, or the register was never read again in the window).
	Stuck bool
	// StuckHigh selects the held value: true = stuck-at-1, false =
	// stuck-at-0.
	StuckHigh bool
	// HoldWindow is the dynamic length of the hold in instructions; must
	// be >= 1 when Stuck is set.
	HoldWindow uint64
}

var (
	errPlanRng         = errors.New("vm: plan requires an Rng")
	errPlanFlips       = errors.New("vm: plan requires MaxFlips >= 1")
	errPlanWindow      = errors.New("vm: multi-register plan requires NextWindow")
	errPlanStuckWrite  = errors.New("vm: stuck-at plan requires the inject-on-read technique")
	errPlanStuckWindow = errors.New("vm: stuck-at plan requires HoldWindow >= 1")
)

func (p *Plan) validate() error {
	if p.Rng == nil {
		return errPlanRng
	}
	if p.Stuck {
		if p.OnWrite {
			return errPlanStuckWrite
		}
		if p.HoldWindow < 1 {
			return errPlanStuckWindow
		}
		return nil
	}
	if p.MaxFlips < 1 {
		return errPlanFlips
	}
	if !p.SameReg && p.MaxFlips > 1 && p.NextWindow == nil {
		return errPlanWindow
	}
	return nil
}

// maybeInjectRead performs due inject-on-read flips for the instruction at
// dynamic index di, before it executes. nr is the instruction's register
// read-slot count.
func (m *machine) maybeInjectRead(di uint64, in *ir.Instr, regs []uint64, nr int) {
	p := m.plan
	if p.Stuck {
		m.stuckRead(di, in, regs, nr)
		return
	}
	if !m.firstDone {
		if nr == 0 || m.readSlots+uint64(nr) <= p.FirstCand {
			return
		}
		slot := int(p.FirstCand - m.readSlots)
		reg := in.ReadSlot(slot)
		m.applyFirst(di, regs, reg, ir.SlotWidth(in, slot).Bits(), ir.ReadSlotRole(in, slot))
		return
	}
	if di < m.nextDyn || nr == 0 {
		return
	}
	slot := p.Rng.Intn(nr)
	reg := in.ReadSlot(slot)
	m.applyFollow(di, regs, reg, ir.SlotWidth(in, slot).Bits())
}

// maybeInjectWrite performs due inject-on-write flips for the destination
// register dst (role, per ir.DestRole), just written by the instruction
// at dynamic index di.
func (m *machine) maybeInjectWrite(di uint64, w ir.Width, regs []uint64, dst ir.Reg, role ir.SlotRole) {
	p := m.plan
	if !m.firstDone {
		// m.writes has already been incremented for this instruction, so
		// the candidate index of this write is m.writes-1.
		if m.writes-1 != p.FirstCand {
			return
		}
		m.applyFirst(di, regs, dst, w.Bits(), role)
		return
	}
	if di < m.nextDyn {
		return
	}
	m.applyFollow(di, regs, dst, w.Bits())
}

// applyFirst performs the first injection on reg (width wbits, role per
// the injecting slot), recording the uniform first-flip metadata every
// fault model reports: bit position, pre-flip bit value (the flip
// direction) and target role. Multi-bit first flips have no single bit
// or direction and leave firstBit/firstPre at -1.
func (m *machine) applyFirst(di uint64, regs []uint64, reg ir.Reg, wbits int, role ir.SlotRole) {
	p := m.plan
	m.firstDone = true
	m.firstRole = role
	if p.SameReg {
		var mask uint64
		if p.PinnedBit >= 0 {
			// Honour the pin as one of the flipped bits, then add the rest.
			mask = 1 << uint(p.PinnedBit%wbits)
			for popcount(mask) < p.MaxFlips && popcount(mask) < wbits {
				mask |= p.Rng.DistinctBits(1, wbits)
			}
		} else {
			mask = p.Rng.DistinctBits(p.MaxFlips, wbits)
		}
		n := popcount(mask)
		if n == 1 {
			m.firstBit = trailingZeros(mask)
			m.firstPre = int((regs[reg] >> uint(m.firstBit)) & 1)
		}
		regs[reg] ^= mask
		m.injected += n
		for i := 0; i < n; i++ {
			m.injDyns = append(m.injDyns, di)
		}
		m.endPlan()
		return
	}
	bit := p.PinnedBit
	if bit < 0 {
		bit = p.Rng.Intn(wbits)
	} else {
		bit %= wbits
	}
	m.firstBit = bit
	m.firstPre = int((regs[reg] >> uint(bit)) & 1)
	regs[reg] ^= 1 << uint(bit)
	m.injected++
	m.injDyns = append(m.injDyns, di)
	if m.injected >= p.MaxFlips {
		m.endPlan()
		return
	}
	m.nextDyn = di + p.NextWindow(p.Rng)
}

// stuckRead drives the stuck-at model (Plan.Stuck): the first due
// candidate picks the held register and bit, and every later read of
// that register forces the bit to the held value until the window
// elapses or the activation frame returns. Frames deeper than the
// activation frame (callees) have their own register files and are
// skipped; a *different* frame at the activation depth is unreachable
// while the hold is live, because replacing it requires first executing
// an instruction at a shallower depth, which deactivates here.
func (m *machine) stuckRead(di uint64, in *ir.Instr, regs []uint64, nr int) {
	p := m.plan
	if !m.firstDone {
		if nr == 0 || m.readSlots+uint64(nr) <= p.FirstCand {
			return
		}
		slot := int(p.FirstCand - m.readSlots)
		reg := in.ReadSlot(slot)
		wbits := ir.SlotWidth(in, slot).Bits()
		bit := p.PinnedBit
		if bit < 0 {
			bit = p.Rng.Intn(wbits)
		} else {
			bit %= wbits
		}
		m.firstDone = true
		m.firstBit = bit
		// The anchor read's slot role; the pre-flip value is recorded by
		// the first value-changing force (forceHeld), since activation
		// alone may never change a value.
		m.firstRole = ir.ReadSlotRole(in, slot)
		m.holdReg = reg
		m.holdBit = bit
		m.holdEnd = di + p.HoldWindow
		m.holdDepth = len(m.frames)
		m.forceHeld(di, regs)
		return
	}
	if di >= m.holdEnd || len(m.frames) < m.holdDepth {
		m.endPlan()
		return
	}
	if len(m.frames) != m.holdDepth {
		return // inside a callee: its registers are not the held register
	}
	for s := 0; s < nr; s++ {
		if in.ReadSlot(s) != m.holdReg {
			continue
		}
		// The read observes the held bit only when its slot width covers
		// it: a narrower read is not corrupted and must neither force the
		// register nor count an activation — the transient model's
		// flip-within-slot-width rule, applied per read. One clamp covers
		// every observing slot (the register itself is forced).
		if m.holdBit < ir.SlotWidth(in, s).Bits() {
			m.forceHeld(di, regs)
			return
		}
	}
}

// forceHeld clamps the held bit to the stuck value, counting an
// activated error only when the read value actually changes.
func (m *machine) forceHeld(di uint64, regs []uint64) {
	mask := uint64(1) << uint(m.holdBit)
	old := regs[m.holdReg]
	nv := old &^ mask
	if m.plan.StuckHigh {
		nv = old | mask
	}
	if nv != old {
		if m.firstPre < 0 {
			m.firstPre = int((old >> uint(m.holdBit)) & 1)
		}
		regs[m.holdReg] = nv
		m.injected++
		m.injDyns = append(m.injDyns, di)
	}
}

// applyFollow performs a follow-up injection (multi-register mode).
func (m *machine) applyFollow(di uint64, regs []uint64, reg ir.Reg, wbits int) {
	p := m.plan
	regs[reg] ^= 1 << uint(p.Rng.Intn(wbits))
	m.injected++
	m.injDyns = append(m.injDyns, di)
	if m.injected >= p.MaxFlips {
		m.endPlan()
		return
	}
	m.nextDyn = di + p.NextWindow(p.Rng)
}
