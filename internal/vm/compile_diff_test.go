package vm

// The compiled-tier differential suite: for every workload in the suite
// (the 15 paper programs plus the extras), runs with the generated native
// kernels must be bit-identical to NoCompile runs through the
// token-threaded interpreter — outputs, counters, snapshots, golden trace
// fingerprints, injection behaviour and convergence alike. The companion
// campaign-level suite lives in internal/core and internal/memfault.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"multiflip/internal/ir"
	"multiflip/internal/prog"
	"multiflip/internal/xrand"
)

var (
	suiteOnce  sync.Once
	suiteProgs []*ir.Program
)

// suitePrograms builds every suite workload (All + Extras) once per test
// binary, in registry order.
func suitePrograms() []*ir.Program {
	suiteOnce.Do(func() {
		for _, b := range append(prog.All(), prog.Extras()...) {
			p, err := b.Build()
			if err != nil {
				panic(fmt.Sprintf("build %s: %v", b.Name, err))
			}
			suiteProgs = append(suiteProgs, p)
		}
	})
	return suiteProgs
}

// TestCompiledKernelsEngage pins the suite's non-vacuity: unless the
// process-wide kill switch is set, every suite workload must actually
// run on its generated kernel — otherwise the differential tests below
// compare the interpreter against itself.
func TestCompiledKernelsEngage(t *testing.T) {
	if !compileEnabled {
		t.Skip("MULTIFLIP_NOCOMPILE is set")
	}
	for _, p := range suitePrograms() {
		if !Compiled(p) {
			t.Errorf("%s: no compiled kernel engages (stale fingerprint or missing registration; re-run go generate ./...)", p.Name)
		}
	}
}

// TestCompiledDifferential is the tier's core contract, program by
// program: fault-free runs, checkpointing runs (including snapshot
// placement and golden-trace fingerprints), cross-tier snapshot resume,
// register injection plans (both techniques), stuck-at holds, scheduled
// memory flips and convergence-gated runs all match the interpreter bit
// for bit.
func TestCompiledDifferential(t *testing.T) {
	for _, p := range suitePrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			base := Options{CountRoles: true}
			noComp := func(o Options) Options { o.NoCompile = true; return o }

			straight, err := Run(p, base)
			if err != nil {
				t.Fatal(err)
			}
			interp, err := Run(p, noComp(base))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "fault-free compiled vs interpreted", straight, interp)

			// Checkpointing: snapshot instants and the golden state-hash
			// trace are part of the observable contract — campaigns resume
			// and converge against them.
			ck := Options{Checkpoint: 64, MaxSnapshots: 32, RecordTrace: true}
			fast, err := Run(p, ck)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := Run(p, noComp(ck))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "checkpointing compiled vs interpreted", fast, slow)
			if len(fast.Snapshots) != len(slow.Snapshots) {
				t.Fatalf("snapshot counts diverge: %d compiled vs %d interpreted",
					len(fast.Snapshots), len(slow.Snapshots))
			}
			for i := range fast.Snapshots {
				if fast.Snapshots[i].Dyn != slow.Snapshots[i].Dyn {
					t.Fatalf("snapshot %d instant diverges: %d vs %d",
						i, fast.Snapshots[i].Dyn, slow.Snapshots[i].Dyn)
				}
			}
			if fast.Trace == nil || slow.Trace == nil {
				t.Fatal("checkpointing run recorded no trace")
			}
			if !reflect.DeepEqual(fast.Trace.entries, slow.Trace.entries) {
				t.Fatal("golden trace fingerprints diverge between tiers")
			}

			// Cross-tier resume: a snapshot taken by one tier replays
			// identically under the other.
			if len(fast.Snapshots) > 0 {
				mid := fast.Snapshots[len(fast.Snapshots)/2]
				res, err := Run(p, noComp(Options{Resume: mid}))
				if err != nil {
					t.Fatal(err)
				}
				crossWant, err := Run(p, Options{})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "interpreted resume from compiled snapshot", res, crossWant)
				midSlow := slow.Snapshots[len(slow.Snapshots)/2]
				res, err = Run(p, Options{Resume: midSlow})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "compiled resume from interpreted snapshot", res, crossWant)
			}

			// Injection plans: both techniques, multi-flip, with and without
			// the golden trace (convergence must fire identically).
			hang := Options{MaxDyn: 4*straight.Dyn + 1000, MaxOutput: 4*len(straight.Output) + 4096}
			for i, onWrite := range []bool{false, true} {
				mkPlan := func() *Plan {
					return &Plan{
						OnWrite:    onWrite,
						FirstCand:  uint64(7 + 131*i),
						MaxFlips:   3,
						PinnedBit:  -1,
						NextWindow: func(*xrand.Rand) uint64 { return 9 },
						Rng:        xrand.ForExperiment(99, uint64(i)),
					}
				}
				po := hang
				po.Plan = mkPlan()
				a, err := Run(p, po)
				if err != nil {
					t.Fatal(err)
				}
				po = noComp(hang)
				po.Plan = mkPlan()
				b, err := Run(p, po)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, fmt.Sprintf("plan onWrite=%v compiled vs interpreted", onWrite), a, b)

				po = hang
				po.Plan = mkPlan()
				po.Trace = fast.Trace
				ac, err := Run(p, po)
				if err != nil {
					t.Fatal(err)
				}
				po = noComp(hang)
				po.Plan = mkPlan()
				po.Trace = slow.Trace
				bc, err := Run(p, po)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, fmt.Sprintf("plan+trace onWrite=%v compiled vs interpreted", onWrite), ac, bc)
				if ac.Converged != bc.Converged {
					t.Fatalf("plan onWrite=%v: convergence diverges: %v vs %v", onWrite, ac.Converged, bc.Converged)
				}
			}

			// Stuck-at hold.
			mkStuck := func() *Plan {
				return &Plan{
					Stuck:      true,
					StuckHigh:  true,
					HoldWindow: 120,
					FirstCand:  41,
					MaxFlips:   1,
					PinnedBit:  -1,
					Rng:        xrand.ForExperiment(7, 3),
				}
			}
			po := hang
			po.Plan = mkStuck()
			sa, err := Run(p, po)
			if err != nil {
				t.Fatal(err)
			}
			po = noComp(hang)
			po.Plan = mkStuck()
			sb, err := Run(p, po)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "stuck-at compiled vs interpreted", sa, sb)

			// A scheduled memory flip mid-run.
			if len(p.Globals) >= 8 {
				flip := MemFlip{AtDyn: straight.Dyn / 2, Word: uint64(len(p.Globals)/16) * 8, Mask: 1 << 17}
				po = hang
				po.MemFlips = []MemFlip{flip}
				ma, err := Run(p, po)
				if err != nil {
					t.Fatal(err)
				}
				po = noComp(hang)
				po.MemFlips = []MemFlip{flip}
				mb, err := Run(p, po)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "memflip compiled vs interpreted", ma, mb)
			}
		})
	}
}
