package vm

import "testing"

// oldAbsorb is the pre-diffusion fold: word-wise FNV-1a with no
// shift-xor round. Kept here to demonstrate the weakness the current
// absorb exists to close.
func oldAbsorb(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// chain hashes a word sequence with the given fold, mirroring regsHash's
// structure (offset basis, mix64 finalizer).
func chain(fold func(h, v uint64) uint64, words []uint64) uint64 {
	h := fnvOffset
	for _, v := range words {
		h = fold(h, v)
	}
	return mix64(h)
}

// TestAbsorbDiffusesTopByteDeltas pins the diffusion round in absorb.
// Under plain word-wise FNV-1a, a delta confined to a word's top byte
// stays confined to the hash's top byte (d*2^56*prime mod 2^64 =
// (d*0xb3 mod 256)*2^56), so deltas injected at several positions
// cancel with probability ~1/256 — the VM fuzzer caught an injected
// register arena false-converging exactly this way. The test sweeps
// two-position top-byte deltas over a zero arena: the old fold collides
// somewhere in the sweep, the current one must never.
func TestAbsorbDiffusesTopByteDeltas(t *testing.T) {
	const n = 24
	base := make([]uint64, n)
	perturb := func(i, j int) []uint64 {
		w := make([]uint64, n)
		copy(w, base)
		w[i] ^= 1 << 56
		w[j] ^= 1 << 56
		return w
	}
	oldCollisions, newCollisions := 0, 0
	oldBase := chain(oldAbsorb, base)
	newBase := chain(absorb, base)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := perturb(i, j)
			if chain(oldAbsorb, w) == oldBase {
				oldCollisions++
			}
			if chain(absorb, w) == newBase {
				newCollisions++
			}
		}
	}
	if oldCollisions == 0 {
		t.Log("note: the old fold happened to avoid collisions on this sweep")
	}
	if newCollisions != 0 {
		t.Fatalf("absorb collided on %d two-position top-byte deltas; the diffusion round regressed", newCollisions)
	}
}

// TestHashPageDiffusesTopByteDeltas is the page-hash counterpart: two
// words in one lane differing only in their top bytes must change the
// page hash.
func TestHashPageDiffusesTopByteDeltas(t *testing.T) {
	base := make([]byte, pageSize)
	h := hashPage(saltGlobals, base)
	// Same lane (stride 32 bytes), top byte of each 8-byte word.
	for off := 7; off+64 < pageSize; off += 32 {
		for d := byte(1); d != 0; d <<= 1 {
			mut := make([]byte, pageSize)
			copy(mut, base)
			mut[off] ^= d
			mut[off+32] ^= d
			if hashPage(saltGlobals, mut) == h {
				t.Fatalf("page hash collided on top-byte delta %#x at offsets %d/%d", d, off, off+32)
			}
		}
	}
}
