package vm

import (
	"encoding/binary"
	"math"
	"testing"

	"multiflip/internal/ir"
)

// TestEveryOpcodeExecutes runs a program touching every opcode the IR
// defines and checks the numeric results, so no dispatch arm goes
// untested.
func TestEveryOpcodeExecutes(t *testing.T) {
	mb := ir.NewModule("allops")
	g := mb.GlobalU64s([]uint64{0x1122334455667788})
	f := mb.Func("main", 0)

	// Integer width variants.
	f.OutW(ir.W8, f.BinW(ir.W8, ir.OpAdd, ir.C(250), ir.C(10)))    // 4 (wraps at 8 bits)
	f.OutW(ir.W16, f.BinW(ir.W16, ir.OpMul, ir.C(300), ir.C(300))) // 90000 & 0xffff = 24464
	f.Out32(f.BinW(ir.W32, ir.OpUDiv, ir.C(7), ir.C(2)))           // 3
	f.Out32(f.BinW(ir.W32, ir.OpURem, ir.C(7), ir.C(2)))           // 1
	f.Out32(f.BinW(ir.W32, ir.OpSDiv, ir.CI(-7), ir.C(2)))         // -3
	f.Out32(f.BinW(ir.W32, ir.OpSRem, ir.CI(-7), ir.C(2)))         // -1
	f.Out32(f.BinW(ir.W32, ir.OpAnd, ir.C(0xF0), ir.C(0x3C)))      // 0x30
	f.Out32(f.BinW(ir.W32, ir.OpOr, ir.C(0xF0), ir.C(0x0F)))       // 0xFF
	f.Out32(f.BinW(ir.W32, ir.OpXor, ir.C(0xFF), ir.C(0x0F)))      // 0xF0
	f.Out32(f.BinW(ir.W32, ir.OpShl, ir.C(1), ir.C(33)))           // count masked: 1<<1 = 2
	f.Out32(f.BinW(ir.W32, ir.OpLShr, ir.C(0x80000000), ir.C(31))) // 1
	f.Out32(f.BinW(ir.W32, ir.OpAShr, ir.C(0x80000000), ir.C(31))) // -1

	// Conversions.
	f.Out64(f.Sext(ir.W8, ir.C(0xFF)))           // -1 as 64-bit
	f.Out64(f.Trunc(ir.W8, ir.C(0x1234)))        // 0x34
	f.Out64(f.Zext(ir.W16, ir.C(0xFFFFF)))       // 0xFFFF
	f.Out64(f.Bitcast(ir.CF(1.0)))               // raw bits of 1.0
	f.Out64(f.SiToFp(ir.W16, ir.C(0x8000)))      // -32768.0
	f.Out32(f.FpToSi(ir.W32, ir.CF(3.99)))       // 3
	f.Out32(f.FpToSi(ir.W32, ir.CF(1e300)))      // saturates to MaxInt32
	f.Out32(f.FpToSi(ir.W32, ir.CF(math.NaN()))) // 0

	// Floats.
	f.Out64(f.Fsub(ir.CF(1.5), ir.CF(0.25))) // 1.25
	f.Out64(f.Fneg(ir.CF(2.0)))              // -2
	f.Out64(f.Fabs(ir.CF(-2.5)))             // 2.5
	f.Out32(f.Feq(ir.CF(1), ir.CF(1)))       // 1
	f.Out32(f.Fne(ir.CF(1), ir.CF(2)))       // 1
	f.Out32(f.Flt(ir.CF(1), ir.CF(2)))       // 1
	f.Out32(f.Fle(ir.CF(2), ir.CF(2)))       // 1
	f.Out32(f.Fgt(ir.CF(3), ir.CF(2)))       // 1
	f.Out32(f.Fge(ir.CF(2), ir.CF(3)))       // 0

	// Comparisons not covered elsewhere.
	f.Out32(f.Ule(ir.C(2), ir.C(2)))   // 1
	f.Out32(f.Sle(ir.CI(-3), ir.C(0))) // 1
	f.Out32(f.Uge(ir.C(3), ir.C(4)))   // 0
	f.Out32(f.Sge(ir.C(4), ir.C(4)))   // 1
	f.Out32(f.Ugt(ir.C(5), ir.C(4)))   // 1

	// Memory width variants.
	f.OutW(ir.W16, f.LoadW(ir.W16, ir.C(g), 2)) // bytes 2..3 of the global
	f.StoreW(ir.W16, ir.C(g), ir.C(0xBEEF), 4)
	f.Out64(f.Load64(ir.C(g), 0))

	f.RetVoid()
	p := mb.MustBuild()
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopReturned {
		t.Fatalf("stop = %v trap=%v", res.Stop, res.Trap)
	}
	buf := res.Output
	pos := 0
	next8 := func() uint8 { v := buf[pos]; pos++; return v }
	next16 := func() uint16 { v := binary.LittleEndian.Uint16(buf[pos:]); pos += 2; return v }
	next32 := func() uint32 { v := binary.LittleEndian.Uint32(buf[pos:]); pos += 4; return v }
	next64 := func() uint64 { v := binary.LittleEndian.Uint64(buf[pos:]); pos += 8; return v }
	nextF := func() float64 { return math.Float64frombits(next64()) }

	if v := next8(); v != 4 {
		t.Errorf("add.i8 = %d", v)
	}
	if v := next16(); v != 24464 {
		t.Errorf("mul.i16 = %d", v)
	}
	wants32 := []uint32{3, 1, uint32(0xfffffffd), uint32(0xffffffff),
		0x30, 0xFF, 0xF0, 2, 1, uint32(0xffffffff)}
	for i, w := range wants32 {
		if v := next32(); v != w {
			t.Errorf("int op %d = %#x, want %#x", i, v, w)
		}
	}
	if v := next64(); v != ^uint64(0) {
		t.Errorf("sext = %#x", v)
	}
	if v := next64(); v != 0x34 {
		t.Errorf("trunc = %#x", v)
	}
	if v := next64(); v != 0xFFFF {
		t.Errorf("zext = %#x", v)
	}
	if v := next64(); v != math.Float64bits(1.0) {
		t.Errorf("bitcast = %#x", v)
	}
	if v := nextF(); v != -32768 {
		t.Errorf("sitofp = %v", v)
	}
	if v := next32(); v != 3 {
		t.Errorf("fptosi = %d", v)
	}
	if v := int32(next32()); v != math.MaxInt32 {
		t.Errorf("fptosi saturate = %d", v)
	}
	if v := next32(); v != 0 {
		t.Errorf("fptosi nan = %d", v)
	}
	if v := nextF(); v != 1.25 {
		t.Errorf("fsub = %v", v)
	}
	if v := nextF(); v != -2 {
		t.Errorf("fneg = %v", v)
	}
	if v := nextF(); v != 2.5 {
		t.Errorf("fabs = %v", v)
	}
	fcmpWants := []uint32{1, 1, 1, 1, 1, 0}
	for i, w := range fcmpWants {
		if v := next32(); v != w {
			t.Errorf("fcmp %d = %d, want %d", i, v, w)
		}
	}
	icmpWants := []uint32{1, 1, 0, 1, 1}
	for i, w := range icmpWants {
		if v := next32(); v != w {
			t.Errorf("icmp %d = %d, want %d", i, v, w)
		}
	}
	if v := next16(); v != 0x5566 {
		t.Errorf("load.i16 = %#x", v)
	}
	if v := next64(); v != 0x1122BEEF55667788 {
		t.Errorf("store.i16 readback = %#x", v)
	}
	if pos != len(buf) {
		t.Errorf("consumed %d of %d output bytes", pos, len(buf))
	}
}
