package vm

import "encoding/binary"

// Page granularity of the copy-on-write machinery. 256 bytes keeps the
// page tables small for the suite's kilobyte-scale segments while still
// making a dirtied page cheap to copy at snapshot time.
const (
	pageShift = 8
	pageSize  = 1 << pageShift
)

// pageOf returns the page index covering byte offset off.
func pageOf(off int) int { return off >> pageShift }

// numPages returns the number of pages covering n bytes.
func numPages(n int) int { return (n + pageSize - 1) >> pageShift }

// bitmap is a fixed-capacity bitset over page indices.
type bitmap []uint64

func newBitmap(pages int) bitmap { return make(bitmap, (pages+63)/64) }

// ensureBits returns a cleared bitmap covering pages, reusing b's storage
// when it is large enough. Machines are pooled across runs, so tracking
// bitmaps are recycled rather than reallocated per experiment.
func ensureBits(b bitmap, pages int) bitmap {
	words := (pages + 63) / 64
	if cap(b) < words {
		return make(bitmap, words)
	}
	b = b[:words]
	clear(b)
	return b
}

func (b bitmap) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b bitmap) set(i int)      { b[i>>6] |= 1 << uint(i&63) }

// mem is one byte segment of the machine (globals or stack) with
// page-granular copy-on-write against an immutable backing.
//
// Two regimes exist:
//
//   - back == nil (and res == nil): flat is authoritative. Fresh runs use
//     this for both segments, and restore uses it for segments small
//     enough that an eager copy beats per-access bookkeeping.
//   - back != nil: the segment was restored from a snapshot's page table.
//     A page is served from flat iff its res bit is set; otherwise from
//     back (a nil backing page reads as zeroes). Loads read the backing
//     in place; the first store to a page installs it — copies it into
//     flat and sets its res bit — so resume cost scales with the pages a
//     run actually writes, not with segment size.
//
// dirty, when non-nil, records the pages stored to since the last
// snapshot capture (or convergence check); only checkpointing and
// convergence-tracking runs pay for it.
//
// convH/convKnown, when non-nil, maintain the per-page hashes behind the
// convergence fingerprint (see trace.go): the first store to a page since
// tracking began hashes its pre-store content (the golden baseline), and
// each fold re-hashes only the pages dirtied since the previous fold.
type mem struct {
	n     int    // segment length in bytes
	flat  []byte // private storage; grows toward n as pages are written
	back  [][]byte
	res   bitmap
	dirty bitmap

	convSalt  uint64
	convKnown bitmap
	convH     []uint64
}

// memBufs carries a segment's recyclable tracking buffers between pooled
// runs.
type memBufs struct {
	dirty, convKnown bitmap
	convH            []uint64
}

// takeBufs detaches the tracking buffers for recycling.
func (s *mem) takeBufs() memBufs {
	b := memBufs{s.dirty, s.convKnown, s.convH}
	s.dirty, s.convKnown, s.convH = nil, nil, nil
	return b
}

// mergeBufs keeps the non-nil buffers of a, falling back to b's.
func mergeBufs(a, b memBufs) memBufs {
	if a.dirty == nil {
		a.dirty = b.dirty
	}
	if a.convKnown == nil {
		a.convKnown = b.convKnown
	}
	if a.convH == nil {
		a.convH = b.convH
	}
	return a
}

// flatMem returns a segment fully materialized in flat.
func flatMem(n int, flat []byte) mem { return mem{n: n, flat: flat} }

// cowMem returns a segment lazily backed by a snapshot page table. Pages
// beyond the table (possible for the stack, whose table only covers the
// captured high-water mark) read as zeroes.
func cowMem(n int, back [][]byte) mem {
	return mem{n: n, back: back, res: newBitmap(numPages(n))}
}

// track enables dirty-page tracking (checkpointing and convergence-
// tracking runs), reusing s.dirty's storage when possible.
func (s *mem) track() { s.dirty = ensureBits(s.dirty, numPages(s.n)) }

// trackConv enables convergence-hash tracking under salt, reusing the
// attached buffers when large enough. convH entries are only read for
// pages whose convKnown bit is set, so the array itself needs no
// clearing.
func (s *mem) trackConv(salt uint64) {
	pages := numPages(s.n)
	s.convSalt = salt
	s.convKnown = ensureBits(s.convKnown, pages)
	if cap(s.convH) < pages {
		s.convH = make([]uint64, pages)
	} else {
		s.convH = s.convH[:pages]
	}
}

// pageSeed returns the position-dependent hash seed of page p, so equal
// content on different pages (or segments) hashes differently.
func (s *mem) pageSeed(p int) uint64 { return s.convSalt ^ uint64(p)*hashPhi }

// pageBytes returns page p's materialized content. Bytes beyond flat are
// zero by the segment invariants (stack above the high-water mark, eager
// growth zero-fill), which hashPage's implicit padding supplies.
func (s *mem) pageBytes(p int) []byte {
	lo := p << pageShift
	hi := lo + pageSize
	if hi > s.n {
		hi = s.n
	}
	if lo >= len(s.flat) {
		return nil
	}
	if hi > len(s.flat) {
		hi = len(s.flat)
	}
	return s.flat[lo:hi]
}

// firstTouch hashes page p's pre-store content: the caller is about to
// perform the first store to p since convergence tracking began, so the
// current content is still the baseline the fingerprint is relative to.
func (s *mem) firstTouch(p int) {
	s.convKnown.set(p)
	s.convH[p] = hashPage(s.pageSeed(p), s.pageBytes(p))
}

// foldDirty re-hashes every page dirtied since the previous fold, clears
// the dirty map, and returns the XOR delta to the segment's convergence
// fingerprint. Cost scales with the interval's write set.
func (s *mem) foldDirty() uint64 {
	var delta uint64
	for w := range s.dirty {
		bitsLeft := s.dirty[w]
		for bitsLeft != 0 {
			p := w<<6 + trailingZeros(bitsLeft)
			bitsLeft &= bitsLeft - 1
			nh := hashPage(s.pageSeed(p), s.pageBytes(p))
			if old := s.convH[p]; nh != old {
				delta ^= old ^ nh
				s.convH[p] = nh
			}
		}
		s.dirty[w] = 0
	}
	return delta
}

// foldDelta is foldDirty for the golden recording run, which shares its
// dirty bitmap with snapshot capture: it re-hashes the pages from the
// delta captureDelta just produced (their contents already copied and
// clamped exactly as a resumed run would see them).
func (s *mem) foldDelta(d pageDelta) uint64 {
	var delta uint64
	for k, i := range d.idx {
		p := int(i)
		nh := hashPage(s.pageSeed(p), d.pages[k])
		if old := s.convH[p]; nh != old {
			delta ^= old ^ nh
			s.convH[p] = nh
		}
	}
	return delta
}

// backPage returns the backing page p, or nil (all zeroes) when the
// table does not cover it.
func (s *mem) backPage(p int) []byte {
	if p < len(s.back) {
		return s.back[p]
	}
	return nil
}

// growFlat extends flat to at least end bytes (clamped to the segment
// length), preserving contents and zero-filling the extension. Spare
// capacity — machines are pooled across runs — is reused but must be
// re-zeroed: it holds a previous run's bytes.
func (s *mem) growFlat(end int) {
	if end <= len(s.flat) {
		return
	}
	c := 2 * len(s.flat)
	if c < end {
		c = end
	}
	if c < 4*pageSize {
		c = 4 * pageSize
	}
	if c > s.n {
		c = s.n
	}
	if c <= cap(s.flat) {
		old := len(s.flat)
		s.flat = s.flat[:c]
		clear(s.flat[old:])
		return
	}
	nf := make([]byte, c)
	copy(nf, s.flat)
	s.flat = nf
}

// install copies backing page p into flat and marks it resident.
func (s *mem) install(p int) {
	lo := p << pageShift
	hi := lo + pageSize
	if hi > s.n {
		hi = s.n
	}
	s.growFlat(hi)
	if b := s.backPage(p); b != nil {
		copy(s.flat[lo:hi], b)
	}
	s.res.set(p)
}

// load reads size bytes little-endian at off. The caller has bounds- and
// alignment-checked [off, off+size).
func (s *mem) load(off, size int) uint64 {
	if s.res != nil {
		p := pageOf(off)
		if !s.res.get(p) || pageOf(off+size-1) != p {
			return s.loadSlow(off, size)
		}
	}
	b := s.flat[off:]
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(b)
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	default:
		return uint64(b[0])
	}
}

// loadSlow reads bytewise through the page table: the access touches a
// non-resident page, or spans two pages in mixed residency states.
func (s *mem) loadSlow(off, size int) uint64 {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(s.byteAt(off+i))
	}
	return v
}

// byteAt reads one byte through the residency map.
func (s *mem) byteAt(off int) byte {
	p := pageOf(off)
	if s.res.get(p) {
		return s.flat[off]
	}
	if b := s.backPage(p); b != nil {
		if i := off & (pageSize - 1); i < len(b) {
			return b[i]
		}
	}
	return 0
}

// store writes size bytes little-endian at off, installing and dirtying
// the pages it touches. The caller has bounds- and alignment-checked the
// range; without backing, flat already covers it.
func (s *mem) store(off, size int, v uint64) {
	p0 := pageOf(off)
	p1 := pageOf(off + size - 1)
	if s.res != nil {
		if !s.res.get(p0) {
			s.install(p0)
		}
		if p1 != p0 && !s.res.get(p1) {
			s.install(p1)
		}
	}
	if s.dirty != nil {
		// Repeat stores to an already-dirty page skip all tracking work;
		// on the 0->1 transition, the first store since convergence
		// tracking began additionally hashes the page's pre-store content
		// (the baseline the fingerprint deltas are computed against).
		if !s.dirty.get(p0) {
			if s.convH != nil && !s.convKnown.get(p0) {
				s.firstTouch(p0)
			}
			s.dirty.set(p0)
		}
		if p1 != p0 && !s.dirty.get(p1) {
			if s.convH != nil && !s.convKnown.get(p1) {
				s.firstTouch(p1)
			}
			s.dirty.set(p1)
		}
	}
	b := s.flat[off:]
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	default:
		b[0] = byte(v)
	}
}

// pageDelta records the pages of one segment dirtied during a snapshot
// interval: ascending page indices and private copies of their contents.
// Clean pages are represented implicitly by the snapshot's base chain, so
// capture cost is proportional to the write set, not the segment size.
type pageDelta struct {
	idx   []int32
	pages [][]byte
}

// captureDelta copies the pages of [0, upTo) dirtied since the previous
// capture and clears the dirty map. Iteration walks the dirty bitmap
// wordwise, so the scan is O(pages/64) and the copying O(dirtied pages).
func (s *mem) captureDelta(upTo int) pageDelta {
	np := numPages(upTo)
	var d pageDelta
	for w := 0; w<<6 < np; w++ {
		bitsLeft := s.dirty[w]
		for bitsLeft != 0 {
			p := w<<6 + trailingZeros(bitsLeft)
			bitsLeft &= bitsLeft - 1
			if p >= np {
				break
			}
			lo := p << pageShift
			hi := lo + pageSize
			if hi > upTo {
				hi = upTo
			}
			d.idx = append(d.idx, int32(p))
			d.pages = append(d.pages, append([]byte(nil), s.flat[lo:hi]...))
		}
		s.dirty[w] = 0
	}
	return d
}

// pageTable slices an immutable flat image into a page table without
// copying. Used to seed capture sharing for fresh runs (the program's
// global image) and to publish eager restores.
func pageTable(img []byte) [][]byte {
	pages := make([][]byte, numPages(len(img)))
	for p := range pages {
		lo := p << pageShift
		hi := lo + pageSize
		if hi > len(img) {
			hi = len(img)
		}
		pages[p] = img[lo:hi:hi]
	}
	return pages
}

// flattenInto materializes a page table into buf (grown if needed),
// returning the n-byte flat image. Reused buffers hold a previous run's
// bytes, so gaps the pages do not cover are explicitly zeroed.
func flattenInto(buf []byte, pages [][]byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	for p := 0; p<<pageShift < n; p++ {
		lo := p << pageShift
		hi := lo + pageSize
		if hi > n {
			hi = n
		}
		var b []byte
		if p < len(pages) {
			b = pages[p]
		}
		k := copy(buf[lo:hi], b)
		clear(buf[lo+k : hi])
	}
	return buf
}
