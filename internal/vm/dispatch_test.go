package vm

import (
	"fmt"
	"testing"

	"multiflip/internal/ir"
	"multiflip/internal/prog"
)

// TestDispatchTokensAssigned checks the validation-time dispatch
// metadata over every benchmark program: all instructions carry a real
// token, the destination-write cache matches the instruction shape, and
// superinstruction annotations obey the fusion legality rules (only
// straight-line heads, no call/ret tails, never on a function's last
// instruction).
func TestDispatchTokensAssigned(t *testing.T) {
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		for _, f := range p.Funcs {
			for pc := range f.Code {
				in := &f.Code[pc]
				if in.Tok == ir.TokInvalid {
					t.Fatalf("%s %s pc %d: %s has no dispatch token", bench.Name, f.Name, pc, in.Op)
				}
				wantDW := uint8(0)
				if in.Dst != ir.NoReg && in.Op != ir.OpCall {
					wantDW = 1
				}
				if in.DW != wantDW {
					t.Fatalf("%s %s pc %d: %s DW=%d, want %d", bench.Name, f.Name, pc, in.Op, in.DW, wantDW)
				}
				if in.FTok == ir.FuseNone {
					continue
				}
				if pc+1 >= len(f.Code) {
					t.Fatalf("%s %s pc %d: fusion annotation on the last instruction", bench.Name, f.Name, pc)
				}
				switch in.Op {
				case ir.OpBr, ir.OpCondBr, ir.OpCall, ir.OpRet, ir.OpAbort:
					t.Fatalf("%s %s pc %d: %s cannot head a superinstruction", bench.Name, f.Name, pc, in.Op)
				}
				switch tail := f.Code[pc+1].Op; tail {
				case ir.OpCall, ir.OpRet:
					t.Fatalf("%s %s pc %d: %s cannot close a superinstruction", bench.Name, f.Name, pc, tail)
				}
			}
		}
	}
}

// TestFusionDifferentialWorkloads proves the dispatch invariant on every
// workload: a run with superinstruction fusion disabled is bit-identical
// to the fused run — same stop, output, and dynamic/candidate counters.
func TestFusionDifferentialWorkloads(t *testing.T) {
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		fused, err := Run(p, Options{})
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		unfused, err := Run(p, Options{NoFuse: true})
		if err != nil {
			t.Fatalf("%s (nofuse): %v", bench.Name, err)
		}
		sameResult(t, bench.Name+": unfused vs fused", unfused, fused)
	}
}

// TestFuseShlAndAnnotated pins the FuseShlAnd promotion: FFT's
// bit-reversal loop must carry executed shl+and superinstructions (not
// the annotation-only FusePair it carried before the promotion).
func TestFuseShlAndAnnotated(t *testing.T) {
	bench, err := prog.ByName("FFT")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, f := range p.Funcs {
		for pc := range f.Code {
			if f.Code[pc].FTok == ir.FuseShlAnd {
				count++
				if f.Code[pc].Op != ir.OpShl || f.Code[pc+1].Op != ir.OpAnd {
					t.Fatalf("FuseShlAnd on a %s+%s pair", f.Code[pc].Op, f.Code[pc+1].Op)
				}
			}
		}
	}
	if count == 0 {
		t.Fatal("FFT carries no FuseShlAnd superinstruction")
	}
}

// TestFuseShlAndDifferential exercises the shl+and superinstruction in
// both shapes — the and depending on the shift's destination, and the
// independent adjacent pair FFT's bit-reversal uses — against unfused
// dispatch, across mixed widths.
func TestFuseShlAndDifferential(t *testing.T) {
	mb := ir.NewModule("shl-and")
	g := mb.GlobalU64s([]uint64{0xfedcba9876543210})
	f := mb.Func("main", 0)
	v := f.Load64(ir.C(g), 0)
	f.For(ir.C(0), ir.C(64), func(i ir.Reg) {
		// Dependent: and reads the shift's destination.
		s := f.BinW(ir.W64, ir.OpShl, v, i)
		m := f.BinW(ir.W64, ir.OpAnd, s, ir.C(0xff00ff00ff00ff00))
		// Independent: adjacent shl+and with disjoint operands (the FFT
		// idiom), at a different width.
		s2 := f.Shl(v, ir.C(1))
		m2 := f.And(v, ir.C(1))
		f.Out64(m)
		f.Out32(f.Add(s2, m2))
	})
	f.RetVoid()
	p := mb.MustBuild()

	shlAnds := 0
	for _, fn := range p.Funcs {
		for pc := range fn.Code {
			if fn.Code[pc].FTok == ir.FuseShlAnd {
				shlAnds++
			}
		}
	}
	if shlAnds < 2 {
		t.Fatalf("expected both shl+and shapes annotated, got %d", shlAnds)
	}
	fused, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := Run(p, Options{NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "shl+and unfused vs fused", unfused, fused)
}

// TestFusionCheckpointDifferential pins the interaction of fusion with
// golden-run checkpointing: fused and unfused checkpointing runs place
// snapshots at identical dynamic indices (the event horizon forces pairs
// straddling a checkpoint to execute unfused), and a snapshot captured by
// either variant resumes bit-identically under the other — including
// resume points that land in the middle of an annotated pair.
func TestFusionCheckpointDifferential(t *testing.T) {
	for _, name := range []string{"qsort", "CRC32", "FFT"} {
		bench, err := prog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := bench.Build()
		if err != nil {
			t.Fatal(err)
		}
		straight, err := Run(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, interval := range []uint64{37, 256} {
			t.Run(fmt.Sprintf("%s/k=%d", name, interval), func(t *testing.T) {
				fused, err := Run(p, Options{Checkpoint: interval})
				if err != nil {
					t.Fatal(err)
				}
				unfused, err := Run(p, Options{Checkpoint: interval, NoFuse: true})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "unfused checkpointing run", unfused, fused)
				if len(fused.Snapshots) != len(unfused.Snapshots) {
					t.Fatalf("snapshot counts diverge: fused %d, unfused %d",
						len(fused.Snapshots), len(unfused.Snapshots))
				}
				for i := range fused.Snapshots {
					if fused.Snapshots[i].Dyn != unfused.Snapshots[i].Dyn {
						t.Fatalf("snapshot %d at dyn %d (fused) vs %d (unfused)",
							i, fused.Snapshots[i].Dyn, unfused.Snapshots[i].Dyn)
					}
				}
				// Cross-resume: unfused snapshots may sit between the halves
				// of an annotated pair; resuming with fusion enabled must
				// simply execute the stranded half alone.
				for _, idx := range []int{0, len(unfused.Snapshots) / 2, len(unfused.Snapshots) - 1} {
					res, err := Run(p, Options{Resume: unfused.Snapshots[idx]})
					if err != nil {
						t.Fatalf("fused resume from unfused snapshot %d: %v", idx, err)
					}
					sameResult(t, fmt.Sprintf("fused resume from unfused dyn=%d",
						unfused.Snapshots[idx].Dyn), res, straight)
					res, err = Run(p, Options{Resume: fused.Snapshots[idx], NoFuse: true})
					if err != nil {
						t.Fatalf("unfused resume from fused snapshot %d: %v", idx, err)
					}
					sameResult(t, fmt.Sprintf("unfused resume from fused dyn=%d",
						fused.Snapshots[idx].Dyn), res, straight)
				}
			})
		}
	}
}

// TestFuseAndLshrAnnotated pins the FuseAndLshr promotion: CRC32's
// table-derivation loop (lsb = c&1 ahead of c>>1) must carry executed
// and+lshr superinstructions (not the annotation-only FusePair it
// carried before the promotion).
func TestFuseAndLshrAnnotated(t *testing.T) {
	bench, err := prog.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, f := range p.Funcs {
		for pc := range f.Code {
			if f.Code[pc].FTok == ir.FuseAndLshr {
				count++
				if f.Code[pc].Op != ir.OpAnd || f.Code[pc+1].Op != ir.OpLShr {
					t.Fatalf("FuseAndLshr on a %s+%s pair", f.Code[pc].Op, f.Code[pc+1].Op)
				}
			}
		}
	}
	if count == 0 {
		t.Fatal("CRC32 carries no FuseAndLshr superinstruction")
	}
}

// TestFuseAndLshrDifferential exercises the and+lshr superinstruction in
// both shapes — the shift depending on the and's destination, and the
// independent adjacent pair CRC32's table loop uses — against unfused
// dispatch, across mixed widths.
func TestFuseAndLshrDifferential(t *testing.T) {
	mb := ir.NewModule("and-lshr")
	g := mb.GlobalU64s([]uint64{0xfedcba9876543210})
	f := mb.Func("main", 0)
	v := f.Load64(ir.C(g), 0)
	f.For(ir.C(0), ir.C(64), func(i ir.Reg) {
		// Dependent: the shift reads the and's destination.
		m := f.BinW(ir.W64, ir.OpAnd, v, ir.C(0xff00ff00ff00ff00))
		s := f.BinW(ir.W64, ir.OpLShr, m, i)
		// Independent: adjacent and+lshr with disjoint operands (the
		// CRC32 idiom), at a different width.
		m2 := f.And(v, ir.C(1))
		s2 := f.Lshr(v, ir.C(1))
		f.Out64(s)
		f.Out32(f.Add(m2, s2))
	})
	f.RetVoid()
	p := mb.MustBuild()

	andLshrs := 0
	for _, fn := range p.Funcs {
		for pc := range fn.Code {
			if fn.Code[pc].FTok == ir.FuseAndLshr {
				andLshrs++
			}
		}
	}
	if andLshrs < 2 {
		t.Fatalf("expected both and+lshr shapes annotated, got %d", andLshrs)
	}
	fused, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := Run(p, Options{NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "and+lshr unfused vs fused", unfused, fused)
}

// TestFuseCmpCmpBrAnnotated pins the three-wide loop-head promotion: the
// builder's While loops expand to cmp; cmp-eq-0; condbr chains, so real
// workloads must carry FuseCmpCmpBr annotations, each on a well-formed
// chain whose branch reads the second compare's destination.
func TestFuseCmpCmpBrAnnotated(t *testing.T) {
	count := 0
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		for _, f := range p.Funcs {
			for pc := range f.Code {
				if f.Code[pc].FTok != ir.FuseCmpCmpBr {
					continue
				}
				count++
				if pc+2 >= len(f.Code) {
					t.Fatalf("%s %s pc %d: FuseCmpCmpBr without two successors", bench.Name, f.Name, pc)
				}
				in2, in3 := &f.Code[pc+1], &f.Code[pc+2]
				if in3.Op != ir.OpCondBr {
					t.Fatalf("%s %s pc %d: FuseCmpCmpBr chain ends in %s", bench.Name, f.Name, pc, in3.Op)
				}
				if !in3.A.IsReg() || in3.A.Reg() != in2.Dst {
					t.Fatalf("%s %s pc %d: branch does not read the second compare's destination", bench.Name, f.Name, pc)
				}
			}
		}
	}
	if count == 0 {
		t.Fatal("no workload carries a FuseCmpCmpBr superinstruction")
	}
}

// TestFuseCmpCmpBrDifferential exercises the cmp+cmp+condbr
// superinstruction against unfused dispatch: While loops (the JmpIfNot
// expansion the promotion targets) over signed and unsigned compares at
// mixed widths, with loop bodies that observe both compare destinations
// so a miscounted write or a wrong branch shows in the output.
func TestFuseCmpCmpBrDifferential(t *testing.T) {
	mb := ir.NewModule("cmp-cmp-br")
	f := mb.Func("main", 0)
	i := f.Let(ir.C(0))
	f.While(func() ir.Src { return f.Slt(i, ir.C(37)) }, func() {
		f.Out32(i)
		f.Mov(i, f.Add(i, ir.C(1)))
	})
	j := f.Let(ir.C(100))
	f.While(func() ir.Src { return f.Ugt(j, ir.C(3)) }, func() {
		f.Out32(j)
		f.Mov(j, f.Sub(j, ir.C(7)))
	})
	// A 64-bit chain: cmp feeding cmp feeding the branch.
	k := f.Let(ir.C(0))
	f.While(func() ir.Src {
		lt := f.CmpW(ir.W64, ir.OpICmpULT, k, ir.C(19))
		return f.CmpW(ir.W64, ir.OpICmpNE, lt, ir.C(0))
	}, func() {
		f.Out64(k)
		f.Mov(k, f.BinW(ir.W64, ir.OpAdd, k, ir.C(3)))
	})
	f.RetVoid()
	p := mb.MustBuild()

	chains := 0
	for _, fn := range p.Funcs {
		for pc := range fn.Code {
			if fn.Code[pc].FTok == ir.FuseCmpCmpBr {
				chains++
			}
		}
	}
	if chains < 3 {
		t.Fatalf("expected every loop head annotated, got %d chains", chains)
	}
	fused, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := Run(p, Options{NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "cmp+cmp+br unfused vs fused", unfused, fused)
}
