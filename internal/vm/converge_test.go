package vm

import (
	"fmt"
	"testing"

	"multiflip/internal/ir"
	"multiflip/internal/prog"
	"multiflip/internal/xrand"
)

// goldenWithTrace profiles p with checkpointing and trace recording at
// the campaign defaults.
func goldenWithTrace(t *testing.T, p *ir.Program) *Result {
	t.Helper()
	golden, err := Run(p, Options{Checkpoint: 64, MaxSnapshots: 512, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if golden.Trace == nil {
		t.Fatal("checkpointing run with RecordTrace produced no trace")
	}
	if golden.Trace.Entries() == 0 {
		t.Fatal("golden trace has no entries")
	}
	return golden
}

// TestConvergeDifferentialWorkloads proves the tentpole invariant at the
// VM level on every workload: a faulted run carrying the golden trace is
// bit-identical to the traceless run — whether it converged, diverged, or
// had convergence disabled by the kill switch — and at least some runs
// across the suite actually terminate early.
func TestConvergeDifferentialWorkloads(t *testing.T) {
	converged := 0
	for _, bench := range prog.All() {
		p, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		golden := goldenWithTrace(t, p)
		base := Options{
			MaxDyn:    10*golden.Dyn + 1000,
			MaxOutput: 4*len(golden.Output) + 4096,
		}
		for seed := uint64(0); seed < 6; seed++ {
			for _, onWrite := range []bool{false, true} {
				cands := golden.ReadSlots
				if onWrite {
					cands = golden.Writes
				}
				mkPlan := func() *Plan {
					rng := xrand.ForExperiment(77, seed)
					return &Plan{
						OnWrite:   onWrite,
						FirstCand: rng.Uint64n(cands),
						MaxFlips:  1 + int(seed%3),
						SameReg:   true,
						PinnedBit: -1,
						Rng:       rng,
					}
				}
				label := fmt.Sprintf("%s seed=%d onWrite=%v", bench.Name, seed, onWrite)

				full := base
				full.Plan = mkPlan()
				want, err := Run(p, full)
				if err != nil {
					t.Fatalf("%s: full run: %v", label, err)
				}

				conv := base
				conv.Plan = mkPlan()
				conv.Trace = golden.Trace
				got, err := Run(p, conv)
				if err != nil {
					t.Fatalf("%s: converge run: %v", label, err)
				}
				sameResult(t, label+": converge vs full", got, want)
				if got.Converged {
					converged++
				}

				off := base
				off.Plan = mkPlan()
				off.Trace = golden.Trace
				off.NoConverge = true
				kill, err := Run(p, off)
				if err != nil {
					t.Fatalf("%s: NoConverge run: %v", label, err)
				}
				if kill.Converged {
					t.Fatalf("%s: NoConverge run reported convergence", label)
				}
				sameResult(t, label+": NoConverge vs full", kill, want)
			}
		}
	}
	if converged == 0 && convergeEnabled {
		t.Error("no run converged across the whole suite; the detector never fires")
	}
}

// TestConvergeMemFlipGuaranteed pins a convergence case by construction:
// a memory flip lands in a global word that the program overwrites every
// iteration and never reads, so the corrupted state must reconverge with
// the golden run and terminate early with the golden result.
func TestConvergeMemFlipGuaranteed(t *testing.T) {
	mb := ir.NewModule("conv-memflip")
	g := mb.GlobalU64s([]uint64{0x1234_5678_9abc_def0, 0})
	f := mb.Func("main", 0)
	acc := f.Let(ir.C(0))
	f.For(ir.C(0), ir.C(2000), func(i ir.Reg) {
		// G[1] is stored every iteration and never loaded: any corruption
		// in it is overwritten within one iteration.
		f.StoreW(ir.W64, ir.C(g), i, 8)
		f.Mov(acc, f.BinW(ir.W64, ir.OpXor, acc, f.LoadW(ir.W64, ir.C(g), 0)))
	})
	f.Out64(acc)
	f.RetVoid()
	p, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	golden := goldenWithTrace(t, p)

	flip := MemFlip{AtDyn: golden.Dyn / 2, Word: 8, Mask: 0x00ff_00ff_00ff_00ff}
	base := Options{
		MaxDyn:    10*golden.Dyn + 1000,
		MaxOutput: 4*len(golden.Output) + 4096,
		MemFlips:  []MemFlip{flip},
	}
	want, err := Run(p, base)
	if err != nil {
		t.Fatal(err)
	}
	conv := base
	conv.Trace = golden.Trace
	got, err := Run(p, conv)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Converged && convergeEnabled {
		t.Error("dead memory corruption did not converge with the golden run")
	}
	sameResult(t, "guaranteed memflip convergence", got, want)
	if got.Stop != StopReturned || got.Dyn != golden.Dyn {
		t.Errorf("converged run reports stop=%s dyn=%d, want returned/%d", got.Stop, got.Dyn, golden.Dyn)
	}
}

// TestConvergePlanGuaranteed finds a register fault that is masked by
// construction (the flipped operand feeds an And with zero) and checks it
// converges; scanning the candidate space also exercises many
// non-converging comparisons against the same trace.
func TestConvergePlanGuaranteed(t *testing.T) {
	mb := ir.NewModule("conv-plan")
	g := mb.GlobalU64s([]uint64{7})
	f := mb.Func("main", 0)
	acc := f.Let(ir.C(0))
	f.For(ir.C(0), ir.C(300), func(i ir.Reg) {
		x := f.Let(f.LoadW(ir.W64, ir.C(g), 0))
		// x is consumed only by And with 0: flips on that read are always
		// masked out of the dataflow and the register is re-let next
		// iteration.
		dead := f.BinW(ir.W64, ir.OpAnd, x, ir.C(0))
		f.Mov(acc, f.BinW(ir.W64, ir.OpAdd, acc, dead))
	})
	f.Out64(acc)
	f.RetVoid()
	p, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	golden := goldenWithTrace(t, p)
	base := Options{
		MaxDyn:    10*golden.Dyn + 1000,
		MaxOutput: 4*len(golden.Output) + 4096,
	}
	found := false
	for cand := uint64(40); cand < 140 && !found; cand++ {
		mkPlan := func() *Plan {
			return &Plan{
				FirstCand: cand,
				MaxFlips:  1,
				SameReg:   true,
				PinnedBit: -1,
				Rng:       xrand.ForExperiment(5, cand),
			}
		}
		full := base
		full.Plan = mkPlan()
		want, err := Run(p, full)
		if err != nil {
			t.Fatal(err)
		}
		conv := base
		conv.Plan = mkPlan()
		conv.Trace = golden.Trace
		got, err := Run(p, conv)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("cand=%d", cand), got, want)
		found = found || got.Converged
	}
	if !found && convergeEnabled {
		t.Error("no masked register fault converged in the scanned candidate range")
	}
}

// TestConvergeTraceValidation covers the trace acceptance rules: a trace
// from a different program is an error; incompatible budgets or exception
// options silently disable convergence but leave the run bit-identical.
func TestConvergeTraceValidation(t *testing.T) {
	bench, err := prog.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	other, err := prog.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	po, err := other.Build()
	if err != nil {
		t.Fatal(err)
	}
	golden := goldenWithTrace(t, p)

	mkPlan := func() *Plan {
		return &Plan{FirstCand: 1000, MaxFlips: 1, SameReg: true, PinnedBit: -1,
			Rng: xrand.ForExperiment(9, 9)}
	}
	// Rejected even under the kill switches: wiring bugs must not pass
	// validation only in ablation runs.
	if _, err := Run(po, Options{Plan: mkPlan(), Trace: golden.Trace}); err == nil {
		t.Error("trace from a different program accepted")
	}
	if _, err := Run(po, Options{Plan: mkPlan(), Trace: golden.Trace, NoConverge: true}); err == nil {
		t.Error("trace from a different program accepted under NoConverge")
	}

	// A hang budget below the golden run's length cannot replay the golden
	// continuation; convergence must disable itself, not misreport.
	tight := Options{MaxDyn: golden.Dyn / 2, Plan: mkPlan(), Trace: golden.Trace}
	res, err := Run(p, tight)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("run with an incompatible budget reported convergence")
	}
	wantOpts := Options{MaxDyn: golden.Dyn / 2, Plan: mkPlan()}
	want, err := Run(p, wantOpts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "incompatible budget", res, want)

	// Mismatched alignment semantics likewise disable convergence.
	align := Options{NoAlignTrap: true, Plan: mkPlan(), Trace: golden.Trace}
	res, err = Run(p, align)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("run with mismatched alignment options reported convergence")
	}
}

// TestConvergeResumeOffTraceGrid checks that resuming from a snapshot
// whose dynamic instant is not on the trace's boundary grid disables
// convergence silently rather than fingerprinting from a wrong baseline.
func TestConvergeResumeOffTraceGrid(t *testing.T) {
	bench, err := prog.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	golden := goldenWithTrace(t, p)
	// A second checkpointing run on a different grid yields snapshots at
	// instants the trace has no entries for.
	offGrid, err := Run(p, Options{Checkpoint: 37, MaxSnapshots: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(offGrid.Snapshots) == 0 {
		t.Fatal("no off-grid snapshots")
	}
	snap := offGrid.Snapshots[len(offGrid.Snapshots)/2]
	mkPlan := func() *Plan {
		return &Plan{FirstCand: snap.Candidates(false) + 100, MaxFlips: 1, SameReg: true,
			PinnedBit: -1, Rng: xrand.ForExperiment(3, 4)}
	}
	want, err := Run(p, Options{Plan: mkPlan()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(p, Options{Plan: mkPlan(), Resume: snap, Trace: golden.Trace})
	if err != nil {
		t.Fatal(err)
	}
	if got.Converged {
		t.Error("off-grid resume reported convergence")
	}
	sameResult(t, "off-grid resume", got, want)
}

// TestFuseMulAddAnnotated checks the promoted mul+add superinstruction is
// actually planted by the fusion pass on the workloads that motivated it.
func TestFuseMulAddAnnotated(t *testing.T) {
	for _, name := range []string{"qsort", "FFT"} {
		bench, err := prog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := bench.Build()
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, f := range p.Funcs {
			for pc := range f.Code {
				if f.Code[pc].FTok == ir.FuseMulAdd {
					n++
				}
			}
		}
		if n == 0 {
			t.Errorf("%s: no FuseMulAdd annotations planted", name)
		}
	}
}
