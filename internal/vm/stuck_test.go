package vm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"multiflip/internal/ir"
	"multiflip/internal/xrand"
)

// stuckTarget builds a straight-line program whose register v is read
// three times with rewrites in between, so a held bit is re-forced where
// a transient flip would decay:
//
//	v = 0;  a = v + 0     // read slot 0
//	v = 0;  b = v + 0     // read slot 1
//	v = 64; c = v + 0     // read slot 2
//	out a, b, c           // read slots 3, 4, 5
func stuckTarget() *ir.Program {
	mb := ir.NewModule("stuck")
	f := mb.Func("main", 0)
	v := f.Let(ir.C(0))
	a := f.Add(v, ir.C(0))
	f.Mov(v, ir.C(0))
	b := f.Add(v, ir.C(0))
	f.Mov(v, ir.C(64))
	c := f.Add(v, ir.C(0))
	f.Out32(a)
	f.Out32(b)
	f.Out32(c)
	f.RetVoid()
	return mb.MustBuild()
}

// TestStuckAtReForcesAfterOverwrite is the defining stuck-at property: a
// transient flip decays when the register is rewritten, a held bit does
// not. Bit 5 stuck at 1 across the window forces every read of v, so all
// three reads observe the fault and each value-changing clamp counts as
// one activated error.
func TestStuckAtReForcesAfterOverwrite(t *testing.T) {
	res, err := Run(stuckTarget(), Options{Plan: &Plan{
		FirstCand:  0,
		MaxFlips:   1,
		PinnedBit:  -1,
		Rng:        fixedBitRng(5),
		Stuck:      true,
		StuckHigh:  true,
		HoldWindow: 100,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopReturned {
		t.Fatalf("stop = %v", res.Stop)
	}
	// v = 0 forces to 32 twice; v = 64 forces to 96 (bit 5 was clear).
	if want := out32(32, 32, 96); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
	if res.Injected != 3 {
		t.Fatalf("injected = %d, want 3 (one per value-changing read)", res.Injected)
	}
	if res.FirstBit != 5 {
		t.Fatalf("first bit = %d, want 5", res.FirstBit)
	}
	if len(res.InjectionDyns) != 3 {
		t.Fatalf("injection dyns = %v, want 3 entries", res.InjectionDyns)
	}
}

// TestStuckAtWindowExpires checks the hold length: a one-instruction
// window forces only the activation read, and the plan disarms afterwards
// so later reads run clean.
func TestStuckAtWindowExpires(t *testing.T) {
	res, err := Run(stuckTarget(), Options{Plan: &Plan{
		FirstCand:  0,
		MaxFlips:   1,
		PinnedBit:  -1,
		Rng:        fixedBitRng(5),
		Stuck:      true,
		StuckHigh:  true,
		HoldWindow: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := out32(32, 0, 64); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
	if res.Injected != 1 {
		t.Fatalf("injected = %d, want 1", res.Injected)
	}
}

// TestStuckAtNoActivation checks the zero-activation case unique to the
// stuck-at model: a bit stuck at the value it already carries never
// changes a read, so nothing activates and the run is the golden run.
func TestStuckAtNoActivation(t *testing.T) {
	res, err := Run(stuckTarget(), Options{Plan: &Plan{
		FirstCand:  0,
		MaxFlips:   1,
		PinnedBit:  -1,
		Rng:        fixedBitRng(5),
		Stuck:      true,
		StuckHigh:  false, // v is 0 at slots 0-1; 64 has bit 5 clear too
		HoldWindow: 100,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := out32(0, 0, 64); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want golden %x", res.Output, want)
	}
	if res.Injected != 0 {
		t.Fatalf("injected = %d, want 0", res.Injected)
	}
	// The fault was still placed: FirstBit records the held position.
	if res.FirstBit != 5 {
		t.Fatalf("first bit = %d, want 5", res.FirstBit)
	}
}

// TestStuckAtPinnedBit checks PinnedBit selects the held position without
// consuming randomness.
func TestStuckAtPinnedBit(t *testing.T) {
	res, err := Run(stuckTarget(), Options{Plan: &Plan{
		FirstCand:  0,
		MaxFlips:   1,
		PinnedBit:  3,
		Rng:        xrand.New(1),
		Stuck:      true,
		StuckHigh:  true,
		HoldWindow: 100,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := out32(8, 8, 72); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
}

// TestStuckAtEndsWithFrame checks that the hold dies with its frame: the
// register file is per-frame, so once the activation frame returns, no
// later read — whatever register index it uses — is forced.
func TestStuckAtEndsWithFrame(t *testing.T) {
	mb := ir.NewModule("stuck-frame")
	leaf := mb.Func("leaf", 1)
	x := leaf.Arg(0)
	y := leaf.Add(x, ir.C(0)) // read slot 0: the activation site
	leaf.Ret(y)
	f := mb.Func("main", 0)
	r := f.Call("leaf", ir.C(0))
	s := f.Add(r, ir.C(0)) // read slot 1, after the activation frame popped
	f.Out32(r)
	f.Out32(s)
	f.RetVoid()
	p := mb.MustBuild()

	res, err := Run(p, Options{Plan: &Plan{
		FirstCand:  0,
		MaxFlips:   1,
		PinnedBit:  3,
		Rng:        xrand.New(1),
		Stuck:      true,
		StuckHigh:  true,
		HoldWindow: 1 << 20,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The callee's read of x is forced (0 -> 8) and returns 8; nothing in
	// main is forced even though the window is still open.
	if want := out32(8, 8); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
	if res.Injected != 1 {
		t.Fatalf("injected = %d, want 1 (only the callee read)", res.Injected)
	}
}

// TestStuckAtWidthRule checks the flip-within-slot-width rule: a read
// too narrow to observe the held bit is neither corrupted nor counted.
// The hold activates on a 64-bit read with the bit pinned at 40, the
// register is then rewritten through a 32-bit pipeline (clearing bit
// 40), and a final 32-bit read must not re-force the invisible bit.
func TestStuckAtWidthRule(t *testing.T) {
	mb := ir.NewModule("stuck-width")
	f := mb.Func("main", 0)
	v := f.Let(ir.C(0))
	a := f.BinW(ir.W64, ir.OpAdd, v, ir.C(0)) // slot 0 (W64): activation
	f.Mov(v, f.Add(v, ir.C(0)))               // 32-bit rewrite clears bit 40
	c := f.Add(v, ir.C(0))                    // W32 read: cannot observe bit 40
	f.Out64(a)
	f.Out32(c)
	f.RetVoid()
	p := mb.MustBuild()

	res, err := Run(p, Options{Plan: &Plan{
		FirstCand:  0,
		MaxFlips:   1,
		PinnedBit:  40,
		Rng:        xrand.New(1),
		Stuck:      true,
		StuckHigh:  true,
		HoldWindow: 100,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 1 {
		t.Fatalf("injected = %d, want 1 (the 32-bit reads cannot observe bit 40)", res.Injected)
	}
	var want [12]byte
	binary.LittleEndian.PutUint64(want[:8], 1<<40)
	binary.LittleEndian.PutUint32(want[8:], 0)
	if !bytes.Equal(res.Output, want[:]) {
		t.Fatalf("output = %x, want %x", res.Output, want)
	}
}

// TestStuckAtValidation checks the plan-shape errors.
func TestStuckAtValidation(t *testing.T) {
	p := stuckTarget()
	if _, err := Run(p, Options{Plan: &Plan{
		Rng: xrand.New(1), PinnedBit: -1, Stuck: true, StuckHigh: true, OnWrite: true, HoldWindow: 10,
	}}); err == nil {
		t.Error("stuck-at plan with OnWrite accepted")
	}
	if _, err := Run(p, Options{Plan: &Plan{
		Rng: xrand.New(1), PinnedBit: -1, Stuck: true,
	}}); err == nil {
		t.Error("stuck-at plan without HoldWindow accepted")
	}
}
