package vm

// The compiled fast tier: ahead-of-time generated native kernels for the
// static workload suite.
//
// internal/proggen runs under `go generate` and emits one kern_*_gen.go
// file per workload into this package: for every function of the program,
// a straight-line Go translation of its basic blocks operating on the
// same frame/register-arena/CoW-memory state the interpreter uses. The
// files register themselves here, keyed by program name and guarded by
// the IR's semantic fingerprint (ir.Program.Fingerprint), so a kernel
// generated from stale IR is silently ignored and the run falls back to
// the interpreter.
//
// The kernel contract mirrors sprint's: execute from fr.pc with the
// dynamic, read-slot and write counters in locals, never past the event
// horizon `lim`, and flush exact counter values on every exit. Unlike
// sprint, a kernel performs no dispatch at all — blocks are native
// straight-line code with one horizon check per block, and a stepwise
// per-instruction path handles blocks the horizon interrupts — so between
// events the interpreter is escaped entirely. Calls and returns are left
// to the interpreter (kernOut): frame manipulation is rare, cold, and
// shared with the observer tier.

import (
	"os"
	"sync"

	"multiflip/internal/ir"
)

//go:generate go run multiflip/internal/proggen

// compileEnabled is the process-wide compiled-tier kill switch: setting
// MULTIFLIP_NOCOMPILE forces every run onto the interpreter, mirroring
// MULTIFLIP_NOFUSE and MULTIFLIP_NOCONVERGE. CI's compile-ablation job
// uses it to keep both tiers green; Options.NoCompile disables the tier
// per run.
var compileEnabled = os.Getenv("MULTIFLIP_NOCOMPILE") == ""

// kernStat is a kernel's report of why it returned control.
type kernStat uint8

const (
	// kernHorizon: the event horizon was reached (m.dyn == the lim the
	// kernel was called with); fr.pc and the counters are flushed and the
	// outer loop's event checks run next.
	kernHorizon kernStat = iota
	// kernOut: fr.pc holds a call or return (and m.dyn < lim); the driver
	// executes that one instruction through the observer tier's step and
	// re-enters the outer loop.
	kernOut
	// kernHalt: the run is over; m.stop (and m.trap) are set and the
	// counters are flushed.
	kernHalt
	// kernBail: the kernel could not run at all (unknown pc, frame shape
	// mismatch); nothing was executed and the caller should sprint.
	kernBail
)

// kernFn executes one function's compiled code from fr.pc until the
// horizon, a frame operation, or a halt.
type kernFn func(m *machine, fr *frame, lim uint64) kernStat

// kernProg is one registered workload: the fingerprint of the IR the
// kernels were generated from, and one kernel per function (indexed like
// Program.Funcs).
type kernProg struct {
	fp  uint64
	fns []kernFn
}

// kernRegistry maps program name -> generated kernels. Populated by the
// generated files' init functions; read-only afterwards.
var kernRegistry = map[string]*kernProg{}

// registerKernel is called from generated code.
func registerKernel(name string, fp uint64, fns []kernFn) {
	kernRegistry[name] = &kernProg{fp: fp, fns: fns}
}

// kernCache memoizes the fingerprint comparison per program pointer:
// campaigns run hundreds of thousands of short VM runs against a handful
// of long-lived *ir.Program values, and rehashing the program image each
// run would dominate short experiments. Keyed misses for names outside
// the registry are never cached (fuzz programs are churned by the
// thousands).
var kernCache sync.Map // *ir.Program -> []kernFn (nil when stale)

// kernelsFor returns the generated kernels for p, or nil when p has none
// or its IR no longer matches the generation-time fingerprint.
func kernelsFor(p *ir.Program) []kernFn {
	kp, ok := kernRegistry[p.Name]
	if !ok {
		return nil
	}
	if v, ok := kernCache.Load(p); ok {
		return v.([]kernFn)
	}
	var fns []kernFn
	if len(kp.fns) == len(p.Funcs) && kp.fp == p.Fingerprint() {
		fns = kp.fns
	}
	kernCache.Store(p, fns)
	return fns
}

// Compiled reports whether runs of p use the compiled fast tier (a
// generated kernel is registered for p's name, its fingerprint matches,
// and neither the MULTIFLIP_NOCOMPILE kill switch nor anything else
// disables the tier process-wide). The differential suites use it to
// prove they compare a real compiled run against the interpreter rather
// than two interpreted runs.
func Compiled(p *ir.Program) bool {
	return compileEnabled && kernelsFor(p) != nil
}

// outAppend appends the low n bytes of v little-endian to the output
// buffer and reports whether the output limit still holds. Generated
// kernels call it for Out instructions.
func (m *machine) outAppend(v uint64, n int) bool {
	var buf [8]byte
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
	buf[2] = byte(v >> 16)
	buf[3] = byte(v >> 24)
	buf[4] = byte(v >> 32)
	buf[5] = byte(v >> 40)
	buf[6] = byte(v >> 48)
	buf[7] = byte(v >> 56)
	m.out = append(m.out, buf[:n]...)
	return len(m.out) <= m.maxOut
}
