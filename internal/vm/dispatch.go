package vm

// Token-threaded dispatch: ir.Validate resolves every instruction to a
// dispatch token, and this file defines the per-token handlers plus the
// indirect handler table. Specialized tokens (64-bit register-register
// adds, register-addressed loads, ...) bind operand kinds and widths at
// validation time, so their handlers carry no per-execution operand
// tests.
//
// The table drives the observer tier (machine.step), which interleaves
// injection checks between handlers. The fast tier (machine.sprint in
// vm.go) threads the same tokens through an inline jump table — the
// handler bodies duplicated or inlined — and also executes the
// superinstructions an instruction's FTok annotation names: its switch
// over ir.FuseKind is where fused pairs run in a single dispatch round,
// gated on the event horizon so no injection, memory flip, or snapshot
// can fire between the halves.

import (
	"encoding/binary"
	"math"
	"os"

	"multiflip/internal/ir"
)

// fusionEnabled is the process-wide superinstruction kill switch: setting
// MULTIFLIP_NOFUSE forces every run onto the unfused dispatch path. CI's
// dispatch-ablation job uses it to keep both paths green; Options.NoFuse
// disables fusion per run.
var fusionEnabled = os.Getenv("MULTIFLIP_NOFUSE") == ""

// stat is a handler's report of how an instruction left the control
// state.
type stat uint8

const (
	// statNext: straight-line success; the loop advances pc and accounts
	// the destination write.
	statNext stat = iota
	// statJump: pc is already set (branches, fused pairs).
	statJump
	// statFrame: a frame was pushed (call); reload the frame pointer.
	statFrame
	// statRet: a frame was popped without writing a caller result.
	statRet
	// statRetWrote: a frame was popped and the caller's result register
	// (machine.retDst) was written — an inject-on-write candidate.
	statRetWrote
	// statHalt: the run is over; m.stop (and m.trap) are set.
	statHalt
)

type handlerFunc func(m *machine, fr *frame, in *ir.Instr) stat

// handlers is sized 256 and indexed by the uint8-typed token, so lookups
// compile without bounds checks. init fills the unassigned tail with the
// abort handler and verifies every declared token has a handler.
var handlers [256]handlerFunc

func init() {
	assign := map[ir.Token]handlerFunc{
		ir.TokInvalid:    hInvalid,
		ir.TokAdd:        hAdd,
		ir.TokSub:        hSub,
		ir.TokMul:        hMul,
		ir.TokAnd:        hAnd,
		ir.TokOr:         hOr,
		ir.TokXor:        hXor,
		ir.TokShl:        hShl,
		ir.TokLShr:       hLShr,
		ir.TokAShr:       hAShr,
		ir.TokDiv:        hDiv,
		ir.TokFBin:       hFBin,
		ir.TokFNeg:       hFNeg,
		ir.TokFAbs:       hFAbs,
		ir.TokFSqrt:      hFSqrt,
		ir.TokSExt:       hSExt,
		ir.TokZTrunc:     hZTrunc,
		ir.TokSIToFP:     hSIToFP,
		ir.TokFPToSI:     hFPToSI,
		ir.TokMov:        hMov,
		ir.TokCmpEQ:      hCmpEQ,
		ir.TokCmpNE:      hCmpNE,
		ir.TokCmpULT:     hCmpULT,
		ir.TokCmpULE:     hCmpULE,
		ir.TokCmpSLT:     hCmpSLT,
		ir.TokCmpSLE:     hCmpSLE,
		ir.TokFCmp:       hFCmp,
		ir.TokSelect:     hSelect,
		ir.TokLoad:       hLoad,
		ir.TokStore:      hStore,
		ir.TokAlloca:     hAlloca,
		ir.TokBr:         hBr,
		ir.TokCondBr:     hCondBr,
		ir.TokCall:       hCall,
		ir.TokRet:        hRet,
		ir.TokOut:        hOut,
		ir.TokAbort:      hAbort,
		ir.TokAdd64RR:    hAdd64RR,
		ir.TokAdd64RI:    hAdd64RI,
		ir.TokAdd32RR:    hAdd32RR,
		ir.TokAdd32RI:    hAdd32RI,
		ir.TokXor64RR:    hXor64RR,
		ir.TokCmpSLT32RR: hCmpSLT32RR,
		ir.TokLoadR:      hLoadR,
		ir.TokStoreRR:    hStoreRR,
		ir.TokMovR:       hMovR,
	}
	if len(assign) != int(ir.NumTokens) {
		panic("vm: dispatch table does not cover the token space")
	}
	for i := range handlers {
		handlers[i] = hInvalid
	}
	for tok, h := range assign {
		handlers[tok] = h
	}

}

// hInvalid mirrors the old switch's default case: an instruction the
// dispatcher does not know (an unvalidated program) aborts the run.
func hInvalid(m *machine, fr *frame, in *ir.Instr) stat {
	m.trapOut(TrapAbort)
	return statHalt
}

func hAdd(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = (val(regs, in.A) + val(regs, in.B)) & in.W.Mask()
	return statNext
}

func hAdd64RR(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = regs[in.A.RegRaw()] + regs[in.B.RegRaw()]
	return statNext
}

func hAdd64RI(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = regs[in.A.RegRaw()] + in.B.ImmRaw()
	return statNext
}

func hAdd32RR(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = uint64(uint32(regs[in.A.RegRaw()]) + uint32(regs[in.B.RegRaw()]))
	return statNext
}

func hAdd32RI(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = uint64(uint32(regs[in.A.RegRaw()]) + uint32(in.B.ImmRaw()))
	return statNext
}

func hCmpSLT32RR(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = boolBit(int32(regs[in.A.RegRaw()]) < int32(regs[in.B.RegRaw()]))
	return statNext
}

func hSub(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = (val(regs, in.A) - val(regs, in.B)) & in.W.Mask()
	return statNext
}

func hMul(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = (val(regs, in.A) * val(regs, in.B)) & in.W.Mask()
	return statNext
}

func hAnd(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = val(regs, in.A) & val(regs, in.B) & in.W.Mask()
	return statNext
}

func hOr(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = (val(regs, in.A) | val(regs, in.B)) & in.W.Mask()
	return statNext
}

func hXor(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = (val(regs, in.A) ^ val(regs, in.B)) & in.W.Mask()
	return statNext
}

func hXor64RR(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = regs[in.A.RegRaw()] ^ regs[in.B.RegRaw()]
	return statNext
}

func hShl(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	mask := in.W.Mask()
	sh := val(regs, in.B) & uint64(in.W.Bits()-1)
	regs[in.Dst] = ((val(regs, in.A) & mask) << sh) & mask
	return statNext
}

func hLShr(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	mask := in.W.Mask()
	sh := val(regs, in.B) & uint64(in.W.Bits()-1)
	regs[in.Dst] = (val(regs, in.A) & mask) >> sh
	return statNext
}

func hAShr(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	w := in.W
	sh := val(regs, in.B) & w.Mask() & uint64(w.Bits()-1)
	regs[in.Dst] = uint64(w.SignExtend(val(regs, in.A)&w.Mask())>>sh) & w.Mask()
	return statNext
}

func hDiv(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	mask := in.W.Mask()
	a := val(regs, in.A) & mask
	b := val(regs, in.B) & mask
	r, trap := intDiv(in.Op, in.W, a, b)
	if trap != TrapNone {
		m.trapOut(trap)
		return statHalt
	}
	regs[in.Dst] = r & mask
	return statNext
}

func hFBin(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	a := math.Float64frombits(val(regs, in.A))
	b := math.Float64frombits(val(regs, in.B))
	regs[in.Dst] = math.Float64bits(floatBin(in.Op, a, b))
	return statNext
}

func hFNeg(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = math.Float64bits(-math.Float64frombits(val(regs, in.A)))
	return statNext
}

func hFAbs(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = math.Float64bits(math.Abs(math.Float64frombits(val(regs, in.A))))
	return statNext
}

func hFSqrt(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = math.Float64bits(math.Sqrt(math.Float64frombits(val(regs, in.A))))
	return statNext
}

func hSExt(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = uint64(in.W.SignExtend(val(regs, in.A) & in.W.Mask()))
	return statNext
}

func hZTrunc(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = val(regs, in.A) & in.W.Mask()
	return statNext
}

func hSIToFP(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = math.Float64bits(float64(in.W.SignExtend(val(regs, in.A) & in.W.Mask())))
	return statNext
}

func hFPToSI(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = fpToSI(math.Float64frombits(val(regs, in.A)), in.W)
	return statNext
}

func hMov(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = val(regs, in.A)
	return statNext
}

func hMovR(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	regs[in.Dst] = regs[in.A.RegRaw()]
	return statNext
}

func hCmpEQ(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	mask := in.W.Mask()
	regs[in.Dst] = boolBit(val(regs, in.A)&mask == val(regs, in.B)&mask)
	return statNext
}

func hCmpNE(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	mask := in.W.Mask()
	regs[in.Dst] = boolBit(val(regs, in.A)&mask != val(regs, in.B)&mask)
	return statNext
}

func hCmpULT(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	mask := in.W.Mask()
	regs[in.Dst] = boolBit(val(regs, in.A)&mask < val(regs, in.B)&mask)
	return statNext
}

func hCmpULE(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	mask := in.W.Mask()
	regs[in.Dst] = boolBit(val(regs, in.A)&mask <= val(regs, in.B)&mask)
	return statNext
}

func hCmpSLT(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	w := in.W
	mask := w.Mask()
	regs[in.Dst] = boolBit(w.SignExtend(val(regs, in.A)&mask) < w.SignExtend(val(regs, in.B)&mask))
	return statNext
}

func hCmpSLE(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	w := in.W
	mask := w.Mask()
	regs[in.Dst] = boolBit(w.SignExtend(val(regs, in.A)&mask) <= w.SignExtend(val(regs, in.B)&mask))
	return statNext
}

func hFCmp(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	a := math.Float64frombits(val(regs, in.A))
	b := math.Float64frombits(val(regs, in.B))
	regs[in.Dst] = boolBit(floatCmp(in.Op, a, b))
	return statNext
}

func hSelect(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	if val(regs, in.A) != 0 {
		regs[in.Dst] = val(regs, in.B)
	} else {
		regs[in.Dst] = val(regs, in.C)
	}
	return statNext
}

func hLoad(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	addr := val(regs, in.A) + uint64(in.Off)
	v, trap := m.load(addr, in.W.Bytes())
	if trap != TrapNone {
		m.trapOut(trap)
		return statHalt
	}
	regs[in.Dst] = v
	return statNext
}

func hLoadR(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	addr := regs[in.A.RegRaw()] + uint64(in.Off)
	v, trap := m.load(addr, in.W.Bytes())
	if trap != TrapNone {
		m.trapOut(trap)
		return statHalt
	}
	regs[in.Dst] = v
	return statNext
}

func hStore(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	addr := val(regs, in.A) + uint64(in.Off)
	if trap := m.store(addr, in.W.Bytes(), val(regs, in.B)); trap != TrapNone {
		m.trapOut(trap)
		return statHalt
	}
	return statNext
}

func hStoreRR(m *machine, fr *frame, in *ir.Instr) stat {
	regs := fr.regs
	addr := regs[in.A.RegRaw()] + uint64(in.Off)
	if trap := m.store(addr, in.W.Bytes(), regs[in.B.RegRaw()]); trap != TrapNone {
		m.trapOut(trap)
		return statHalt
	}
	return statNext
}

func hAlloca(m *machine, fr *frame, in *ir.Instr) stat {
	size := (in.Off + 7) &^ 7
	if m.sp+int(size) > m.stack.n {
		m.trapOut(TrapStackOverflow)
		return statHalt
	}
	fr.regs[in.Dst] = uint64(ir.StackBase + m.sp)
	m.sp += int(size)
	if m.sp > m.stackHW {
		m.stackHW = m.sp
		if m.stack.res == nil {
			// Unbacked stacks keep flat covering the live range so loads
			// and stores can index it directly.
			m.stack.growFlat(m.sp)
		}
	}
	return statNext
}

func hBr(m *machine, fr *frame, in *ir.Instr) stat {
	fr.pc = int(in.Off)
	return statJump
}

func hCondBr(m *machine, fr *frame, in *ir.Instr) stat {
	if val(fr.regs, in.A) != 0 {
		fr.pc = int(in.Off)
	} else {
		fr.pc++
	}
	return statJump
}

func hCall(m *machine, fr *frame, in *ir.Instr) stat {
	if len(m.frames) >= m.maxDepth {
		m.trapOut(TrapStackOverflow)
		return statHalt
	}
	var argbuf [8]uint64
	args := argbuf[:0]
	for _, a := range in.Args {
		args = append(args, val(fr.regs, a))
	}
	fr.pc++ // resume after the call
	// The call's destination is written when the callee returns; it
	// becomes an inject-on-write candidate at OpRet.
	m.pushFrame(int(in.Off), args, in.Dst, in.HasDst())
	return statFrame
}

func hRet(m *machine, fr *frame, in *ir.Instr) stat {
	retVal := uint64(0)
	if !in.A.IsNone() {
		retVal = val(fr.regs, in.A)
	}
	m.sp = fr.savedSP
	m.regTop = fr.regBase
	retDst, hasRet := fr.retDst, fr.hasRet
	m.frames = m.frames[:len(m.frames)-1]
	if len(m.frames) == 0 {
		m.stop = StopReturned
		return statHalt
	}
	if hasRet {
		// The caller's Call instruction wrote its destination now; the
		// dispatch loop accounts the write (and injects into it).
		m.frames[len(m.frames)-1].regs[retDst] = retVal
		m.retDst = retDst
		return statRetWrote
	}
	return statRet
}

func hOut(m *machine, fr *frame, in *ir.Instr) stat {
	v := val(fr.regs, in.A) & in.W.Mask()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.out = append(m.out, buf[:in.W.Bytes()]...)
	if len(m.out) > m.maxOut {
		m.stop = StopOutputLimit
		return statHalt
	}
	return statNext
}

func hAbort(m *machine, fr *frame, in *ir.Instr) stat {
	m.trapOut(TrapAbort)
	return statHalt
}
