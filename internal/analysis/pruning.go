package analysis

import (
	"multiflip/internal/core"
)

// PruningSavings quantifies the paper's three error-space pruning layers
// for one program and technique (§V "Taken together..."):
//
//	layer 1 caps max-MBF (RQ1: activations beyond ~10 almost never
//	  happen; the paper's grid tops out at 30);
//	layer 2 keeps only the pessimistic clusters (RQ3: max-MBF <= 3
//	  already reaches the conservative SDC bound, so the max-MBF
//	  dimension shrinks from the full grid to 2..3);
//	layer 3 keeps only first-error locations that were Benign under the
//	  single bit-flip model (RQ5: Detection/SDC locations almost never
//	  add SDCs).
//
// The result expresses each layer as the fraction of the multi-bit
// experiment space that remains, plus the combined fraction.
type PruningSavings struct {
	// MaxMBFValues is the number of max-MBF values in the full grid.
	MaxMBFValues int
	// MaxMBFKept is the number of max-MBF values layers 1+2 keep.
	MaxMBFKept int
	// BenignShare is the fraction (0..1) of single-bit locations with a
	// Benign outcome — the locations layer 3 keeps.
	BenignShare float64
	// Layer12 is the fraction of the cluster grid kept by layers 1+2.
	Layer12 float64
	// Combined is the fraction of the full multi-bit experiment space
	// that still needs injections after all three layers.
	Combined float64
}

// ComputeSavings derives the pruning savings from a recorded single-bit
// campaign and the grid's max-MBF values. keepMaxMBF is the RQ3 bound
// (the paper: 3).
func ComputeSavings(single []core.Experiment, gridMaxMBFs []int, keepMaxMBF int) PruningSavings {
	kept := 0
	for _, m := range gridMaxMBFs {
		if m <= keepMaxMBF {
			kept++
		}
	}
	benign := 0
	for _, e := range single {
		if e.Outcome == core.OutcomeBenign {
			benign++
		}
	}
	s := PruningSavings{
		MaxMBFValues: len(gridMaxMBFs),
		MaxMBFKept:   kept,
	}
	if len(single) > 0 {
		s.BenignShare = float64(benign) / float64(len(single))
	}
	if s.MaxMBFValues > 0 {
		s.Layer12 = float64(s.MaxMBFKept) / float64(s.MaxMBFValues)
	}
	s.Combined = s.Layer12 * s.BenignShare
	return s
}

// ReductionFactor returns how many times smaller the pruned space is
// (1/Combined), or 0 when nothing remains.
func (s PruningSavings) ReductionFactor() float64 {
	if s.Combined == 0 {
		return 0
	}
	return 1 / s.Combined
}
