package analysis

import (
	"math"
	"testing"

	"multiflip/internal/core"
)

func cfg(m, win int) core.Config {
	return core.Config{MaxMBF: m, Win: core.Win(win)}
}

// fakeCampaign builds a CampaignResult with the given SDC count out of n.
func fakeCampaign(c core.Config, sdc, n int) *core.CampaignResult {
	r := &core.CampaignResult{Spec: core.CampaignSpec{Config: c}}
	r.Counts[core.OutcomeSDC] = sdc
	r.Counts[core.OutcomeBenign] = n - sdc
	return r
}

func TestHighestSDC(t *testing.T) {
	rs := []*core.CampaignResult{
		fakeCampaign(cfg(2, 1), 10, 100),
		fakeCampaign(cfg(3, 1), 30, 100),
		fakeCampaign(cfg(4, 1), 20, 100),
	}
	best, err := HighestSDC(rs)
	if err != nil {
		t.Fatal(err)
	}
	if best.Config != cfg(3, 1) || math.Abs(best.SDCPct-30) > 1e-9 {
		t.Fatalf("best = %+v", best)
	}
}

func TestHighestSDCTieKeepsFirst(t *testing.T) {
	rs := []*core.CampaignResult{
		fakeCampaign(cfg(2, 1), 30, 100),
		fakeCampaign(cfg(9, 1), 30, 100),
	}
	best, _ := HighestSDC(rs)
	if best.Config != cfg(2, 1) {
		t.Fatalf("tie should keep the earliest config, got %+v", best.Config)
	}
}

func TestHighestSDCEmpty(t *testing.T) {
	if _, err := HighestSDC(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestMaxMBFBound(t *testing.T) {
	rs := []*core.CampaignResult{
		fakeCampaign(cfg(2, 1), 28, 100), // within 1pp of the peak
		fakeCampaign(cfg(3, 1), 29, 100), // the peak
		fakeCampaign(cfg(10, 1), 5, 100),
	}
	b, err := MaxMBFBound(rs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if b != 2 {
		t.Fatalf("bound = %d, want 2", b)
	}
	b, _ = MaxMBFBound(rs, 0.5)
	if b != 3 {
		t.Fatalf("tight bound = %d, want 3", b)
	}
}

func exp(cand uint64, out core.Outcome) core.Experiment {
	return core.Experiment{Cand: cand, Bit: 0, Outcome: out, Activated: 1}
}

func TestTransitions(t *testing.T) {
	single := []core.Experiment{
		exp(1, core.OutcomeBenign),
		exp(2, core.OutcomeBenign),
		exp(3, core.OutcomeException),
		exp(4, core.OutcomeException),
		exp(5, core.OutcomeSDC),
	}
	multi := []core.Experiment{
		exp(1, core.OutcomeSDC),       // Benign -> SDC: Transition II
		exp(2, core.OutcomeBenign),    // Benign -> Benign
		exp(3, core.OutcomeSDC),       // Detection -> SDC: Transition I
		exp(4, core.OutcomeException), // Detection -> Detection
		exp(5, core.OutcomeSDC),       // SDC -> SDC (not counted by I/II)
	}
	m, err := Transitions(single, multi)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 5 {
		t.Fatalf("total = %d", m.Total())
	}
	if got := m.TransitionI(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Transition I = %v, want 50", got)
	}
	if got := m.TransitionII(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Transition II = %v, want 50", got)
	}
}

func TestTransitionsRejectMismatch(t *testing.T) {
	if _, err := Transitions([]core.Experiment{exp(1, core.OutcomeBenign)}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	_, err := Transitions(
		[]core.Experiment{exp(1, core.OutcomeBenign)},
		[]core.Experiment{exp(2, core.OutcomeBenign)})
	if err == nil {
		t.Fatal("unpinned rerun accepted")
	}
}

func TestPrunableShare(t *testing.T) {
	single := []core.Experiment{
		exp(1, core.OutcomeBenign),
		exp(2, core.OutcomeException),
		exp(3, core.OutcomeSDC),
		exp(4, core.OutcomeHang),
	}
	// Exception, SDC and Hang locations are prunable; Benign is not.
	if got := PrunableShare(single); math.Abs(got-75) > 1e-9 {
		t.Fatalf("prunable = %v, want 75", got)
	}
	if got := PrunableShare(nil); got != 0 {
		t.Fatalf("prunable of empty = %v", got)
	}
}

func TestPessimismGap(t *testing.T) {
	multi := []*core.CampaignResult{
		fakeCampaign(cfg(2, 1), 20, 100),
		fakeCampaign(cfg(3, 1), 25, 100),
	}
	gap, best, err := PessimismGap(30, multi)
	if err != nil {
		t.Fatal(err)
	}
	if gap >= 0 {
		t.Fatalf("gap = %v, want negative (single-bit pessimistic)", gap)
	}
	if best.Config != cfg(3, 1) {
		t.Fatalf("best = %+v", best)
	}
	gap, _, _ = PessimismGap(10, multi)
	if math.Abs(gap-15) > 1e-9 {
		t.Fatalf("gap = %v, want 15", gap)
	}
}

func TestActivationShares(t *testing.T) {
	a := &core.CampaignResult{}
	a.CrashActivated[1] = 60
	a.CrashActivated[7] = 30
	b := &core.CampaignResult{}
	b.CrashActivated[20] = 10
	shares := ActivationShares(a, b)
	want := []float64{60, 30, 10}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-9 {
			t.Fatalf("shares = %v, want %v", shares, want)
		}
	}
}
