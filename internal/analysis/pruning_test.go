package analysis

import (
	"math"
	"testing"

	"multiflip/internal/core"
)

func TestComputeSavings(t *testing.T) {
	single := []core.Experiment{
		exp(1, core.OutcomeBenign),
		exp(2, core.OutcomeBenign),
		exp(3, core.OutcomeException),
		exp(4, core.OutcomeSDC),
	}
	grid := []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 30}
	s := ComputeSavings(single, grid, 3)
	if s.MaxMBFValues != 10 || s.MaxMBFKept != 2 {
		t.Fatalf("grid accounting wrong: %+v", s)
	}
	if math.Abs(s.BenignShare-0.5) > 1e-9 {
		t.Fatalf("benign share = %v, want 0.5", s.BenignShare)
	}
	if math.Abs(s.Layer12-0.2) > 1e-9 {
		t.Fatalf("layer12 = %v, want 0.2", s.Layer12)
	}
	if math.Abs(s.Combined-0.1) > 1e-9 {
		t.Fatalf("combined = %v, want 0.1", s.Combined)
	}
	if math.Abs(s.ReductionFactor()-10) > 1e-9 {
		t.Fatalf("reduction = %v, want 10x", s.ReductionFactor())
	}
}

func TestComputeSavingsEmpty(t *testing.T) {
	s := ComputeSavings(nil, nil, 3)
	if s.Combined != 0 || s.ReductionFactor() != 0 {
		t.Fatalf("empty savings = %+v", s)
	}
}
