// Package analysis implements the paper's result analyses: the
// activated-error distribution (RQ1, Fig 3), the pessimistic-configuration
// search (RQ2-RQ4, Table III), the single→multi outcome transition matrix
// (Fig 6, Table IV) and the three error-space pruning layers derived from
// them (§III-F, §IV-C3).
package analysis

import (
	"fmt"

	"multiflip/internal/core"
	"multiflip/internal/stats"
)

// ActivationShares aggregates the crash-activation histograms of one or
// more max-MBF=30 campaigns into the paper's Fig 3 buckets (1-5, 6-10,
// >10), returning each bucket's percentage of crashed experiments.
func ActivationShares(results ...*core.CampaignResult) []float64 {
	hist := make([]int, core.ActivatedCap+1)
	for _, r := range results {
		for a, c := range r.CrashActivated {
			hist[a] += c
		}
	}
	return stats.BucketShares(hist, stats.Fig3Buckets())
}

// ConfigSDC pairs a configuration with its campaign's SDC percentage.
type ConfigSDC struct {
	Config core.Config
	SDCPct float64
}

// HighestSDC returns the configuration with the highest SDC percentage
// among the given campaigns (Table III's per-program argmax). Ties keep
// the earliest configuration in iteration order of the slice.
func HighestSDC(results []*core.CampaignResult) (ConfigSDC, error) {
	if len(results) == 0 {
		return ConfigSDC{}, fmt.Errorf("analysis: no campaigns to search")
	}
	best := ConfigSDC{Config: results[0].Spec.Config, SDCPct: results[0].SDCPct()}
	for _, r := range results[1:] {
		if s := r.SDCPct(); s > best.SDCPct {
			best = ConfigSDC{Config: r.Spec.Config, SDCPct: s}
		}
	}
	return best, nil
}

// MaxMBFBound returns the smallest max-MBF m such that, among the given
// campaigns, some campaign with MaxMBF <= m reaches within tolerance
// percentage points of the overall highest SDC percentage (the paper's
// RQ3 bound: "at most 3 errors are enough").
func MaxMBFBound(results []*core.CampaignResult, tolerance float64) (int, error) {
	best, err := HighestSDC(results)
	if err != nil {
		return 0, err
	}
	bound := best.Config.MaxMBF
	for _, r := range results {
		m := r.Spec.Config.MaxMBF
		if m < bound && r.SDCPct() >= best.SDCPct-tolerance {
			bound = m
		}
	}
	return bound, nil
}

// TransitionMatrix counts single-bit outcome → multi-bit outcome
// transitions for experiments whose multi-bit run starts at the exact
// location (candidate, bit) of the single-bit run — the paper's Fig 6.
type TransitionMatrix struct {
	// Counts[s][m] is the number of experiments whose single-bit outcome
	// was s and whose multi-bit outcome was m.
	Counts [core.NumOutcomes + 1][core.NumOutcomes + 1]int
}

// Transitions builds the matrix from a recorded single-bit campaign and
// its pinned multi-bit rerun (same experiment order).
func Transitions(single, multi []core.Experiment) (*TransitionMatrix, error) {
	if len(single) != len(multi) {
		return nil, fmt.Errorf("analysis: experiment counts differ: %d vs %d",
			len(single), len(multi))
	}
	var m TransitionMatrix
	for i := range single {
		if single[i].Cand != multi[i].Cand {
			return nil, fmt.Errorf("analysis: experiment %d not pinned to the single-bit location", i)
		}
		m.Counts[single[i].Outcome][multi[i].Outcome]++
	}
	return &m, nil
}

// Total returns the number of recorded transitions.
func (m *TransitionMatrix) Total() int {
	n := 0
	for s := range m.Counts {
		for d := range m.Counts[s] {
			n += m.Counts[s][d]
		}
	}
	return n
}

// fromCount sums the row(s) of single-bit outcomes selected by keep.
func (m *TransitionMatrix) fromCount(keep func(core.Outcome) bool) (from, toSDC int) {
	for _, s := range core.Outcomes() {
		if !keep(s) {
			continue
		}
		for _, d := range core.Outcomes() {
			from += m.Counts[s][d]
		}
		toSDC += m.Counts[s][core.OutcomeSDC]
	}
	return from, toSDC
}

// TransitionI returns the paper's Transition I likelihood in percent:
// P(multi-bit outcome = SDC | single-bit outcome = Detection).
func (m *TransitionMatrix) TransitionI() float64 {
	from, to := m.fromCount(core.Outcome.IsDetection)
	return stats.Percent(to, from)
}

// TransitionII returns the paper's Transition II likelihood in percent:
// P(multi-bit outcome = SDC | single-bit outcome = Benign).
func (m *TransitionMatrix) TransitionII() float64 {
	from, to := m.fromCount(func(o core.Outcome) bool { return o == core.OutcomeBenign })
	return stats.Percent(to, from)
}

// PrunableShare returns the percentage of single-bit experiments whose
// locations the §IV-C3 pruning excludes from multi-bit injection: those
// that ended in Detection or SDC under the single bit-flip model. Only
// Benign locations can add new SDCs under multiple bit flips.
func PrunableShare(single []core.Experiment) float64 {
	prunable := 0
	for _, e := range single {
		if e.Outcome.IsDetection() || e.Outcome == core.OutcomeSDC {
			prunable++
		}
	}
	return stats.Percent(prunable, len(single))
}

// PessimismGap compares the single bit-flip model against the best
// multi-bit configuration: it returns bestMulti.SDCPct - singleSDC in
// percentage points. A non-positive gap means the single-bit model is
// pessimistic (conservative) for this program/technique — the paper's
// RQ2.
func PessimismGap(singleSDC float64, multi []*core.CampaignResult) (float64, ConfigSDC, error) {
	best, err := HighestSDC(multi)
	if err != nil {
		return 0, ConfigSDC{}, err
	}
	return best.SDCPct - singleSDC, best, nil
}
