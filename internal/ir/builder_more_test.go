package ir

import (
	"strings"
	"testing"
)

func TestDuplicateFunction(t *testing.T) {
	mb := NewModule("t")
	f := mb.Func("main", 0)
	f.RetVoid()
	g := mb.Func("main", 0)
	g.RetVoid()
	if _, err := mb.Build(); err == nil {
		t.Fatal("duplicate function accepted")
	}
}

func TestArgOutOfRange(t *testing.T) {
	mb := NewModule("t")
	f := mb.Func("main", 0)
	f.Arg(0) // main has no args
	f.RetVoid()
	if _, err := mb.Build(); err == nil {
		t.Fatal("out-of-range Arg accepted")
	}
}

func TestLabelBoundTwice(t *testing.T) {
	mb := NewModule("t")
	f := mb.Func("main", 0)
	l := f.NewLabel()
	f.Bind(l)
	f.Bind(l)
	f.RetVoid()
	if _, err := mb.Build(); err == nil {
		t.Fatal("double-bound label accepted")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid module")
		}
	}()
	mb := NewModule("t") // no main
	mb.MustBuild()
}

func TestCallArityChecked(t *testing.T) {
	mb := NewModule("t")
	f := mb.Func("main", 0)
	f.CallVoid("two", C(1)) // wrong arity
	f.RetVoid()
	two := mb.Func("two", 2)
	two.RetVoid()
	if _, err := mb.Build(); err == nil {
		t.Fatal("wrong-arity call accepted")
	}
}

func TestAllocaSizeValidated(t *testing.T) {
	mb := NewModule("t")
	f := mb.Func("main", 0)
	f.Alloca(0)
	f.RetVoid()
	if _, err := mb.Build(); err == nil {
		t.Fatal("zero-size alloca accepted")
	}
}

func TestOperandStringForms(t *testing.T) {
	if R(3).operand().String() != "r3" {
		t.Error("register operand string wrong")
	}
	if C(7).String() != "#7" {
		t.Error("immediate operand string wrong")
	}
	if noneOperand.String() != "_" {
		t.Error("none operand string wrong")
	}
}

func TestOperandAccessorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Reg on imm", func() { C(1).Reg() })
	mustPanic("Imm on reg", func() { R(1).operand().Imm() })
	mustPanic("ReadSlot range", func() {
		in := Instr{Op: OpMov, Dst: 0, A: C(1), B: noneOperand, C: noneOperand}
		in.ReadSlot(0)
	})
}

func TestDisassembleCoversOpShapes(t *testing.T) {
	mb := NewModule("shapes")
	g := mb.GlobalU32s([]uint32{1})
	f := mb.Func("main", 0)
	v := f.Load32(C(g), 0)
	f.Store32(C(g), v, 0)
	buf := f.Alloca(16)
	f.Store32(buf, f.Select(f.Eq(v, C(1)), C(2), C(3)), 0)
	l := f.NewLabel()
	f.JmpIf(v, l)
	f.Bind(l)
	r := f.Call("aux", v)
	f.Out32(r)
	f.Abort()
	aux := mb.Func("aux", 1)
	aux.Ret(aux.Arg(0))
	asm := Disassemble(mb.MustBuild())
	for _, want := range []string{
		"load.i32", "store.i32", "alloca", "select", "condbr", "call",
		"out.i32", "abort", "ret r0", "16 bytes", "? ",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestStaticInstrsAndFuncByName(t *testing.T) {
	mb := NewModule("t")
	f := mb.Func("main", 0)
	f.Out32(C(1))
	f.RetVoid()
	aux := mb.Func("aux", 0)
	aux.RetVoid()
	p := mb.MustBuild()
	if p.StaticInstrs() != 3 {
		t.Errorf("static instrs = %d, want 3", p.StaticInstrs())
	}
	if p.FuncByName("aux") != 1 || p.FuncByName("nope") != -1 {
		t.Error("FuncByName wrong")
	}
}
