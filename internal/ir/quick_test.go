package ir

import (
	"testing"
	"testing/quick"
)

// TestSlotWidthDefinedForAllSlots: for any instruction shape, SlotWidth
// must return a usable width (>= 1 bit) for every read slot RegReads
// enumerates, in the same order.
func TestSlotWidthDefinedForAllSlots(t *testing.T) {
	ops := []Op{
		OpAdd, OpSub, OpMul, OpUDiv, OpAnd, OpShl, OpFAdd, OpFMul, OpFNeg,
		OpSExt, OpZExt, OpTrunc, OpSIToFP, OpFPToSI, OpBitcast,
		OpICmpEQ, OpICmpSLT, OpFCmpLT, OpMov, OpSelect, OpLoad, OpStore,
		OpCondBr, OpRet, OpOut,
	}
	widths := []Width{W8, W16, W32, W64}
	mkOperand := func(kind uint8, reg uint8) Operand {
		switch kind % 3 {
		case 0:
			return R(Reg(reg))
		case 1:
			return C(uint64(reg))
		default:
			return noneOperand
		}
	}
	f := func(opIdx, wIdx, ka, ra, kb, rb, kc, rc uint8) bool {
		in := Instr{
			Op:  ops[int(opIdx)%len(ops)],
			W:   widths[int(wIdx)%len(widths)],
			Dst: 1,
			A:   mkOperand(ka, ra),
			B:   mkOperand(kb, rb),
			C:   mkOperand(kc, rc),
		}
		n := in.NumRegReads()
		if n != len(in.RegReads(nil)) {
			return false
		}
		for slot := 0; slot < n; slot++ {
			if SlotWidth(&in, slot).Bits() < 1 {
				return false
			}
			// ReadSlot must return the register RegReads lists.
			if in.ReadSlot(slot) != in.RegReads(nil)[slot] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDestWidthPositive: any instruction with a destination has a usable
// dest width.
func TestDestWidthPositive(t *testing.T) {
	for op := OpAdd; op <= OpAbort; op++ {
		for _, w := range []Width{W8, W32, W64} {
			in := Instr{Op: op, W: w, Dst: 1, A: R(0), B: R(0), C: R(0)}
			if got := DestWidth(&in); got.Bits() < 1 {
				t.Errorf("DestWidth(%v, %v) = %v", op, w, got)
			}
		}
		in := Instr{Op: op, W: W32, Dst: NoReg, A: R(0), B: R(0), C: R(0)}
		if DestWidth(&in) != 0 {
			t.Errorf("DestWidth of dst-less %v should be 0", op)
		}
	}
}

// TestSignExtendRoundTrip: masking a sign-extended value recovers the
// original payload.
func TestSignExtendRoundTrip(t *testing.T) {
	f := func(v uint64, wIdx uint8) bool {
		w := []Width{W8, W16, W32, W64}[int(wIdx)%4]
		masked := v & w.Mask()
		return uint64(w.SignExtend(masked))&w.Mask() == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWidthMaskMatchesBits: Mask always covers exactly Bits low bits.
func TestWidthMaskMatchesBits(t *testing.T) {
	for _, w := range []Width{W1, W8, W16, W32, W64} {
		mask := w.Mask()
		bits := w.Bits()
		if bits == 64 {
			if mask != ^uint64(0) {
				t.Errorf("%v mask wrong", w)
			}
			continue
		}
		if mask != 1<<uint(bits)-1 {
			t.Errorf("%v: mask %#x does not match %d bits", w, mask, bits)
		}
	}
}
