package ir

import (
	"fmt"
	"strings"
)

// Disassemble renders a human-readable listing of the program, one
// instruction per line, for debugging benchmark construction and for
// documenting what the injector targets.
func Disassemble(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s: %d funcs, %d global bytes\n",
		p.Name, len(p.Funcs), len(p.Globals))
	for fi, f := range p.Funcs {
		marker := ""
		if fi == p.Main {
			marker = " ; entry"
		}
		fmt.Fprintf(&b, "\nfunc %s(args=%d, regs=%d)%s\n", f.Name, f.NumArgs, f.NumRegs, marker)
		for pc := range f.Code {
			b.WriteString(formatInstr(p, &f.Code[pc], pc))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func formatInstr(p *Program, in *Instr, pc int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %4d: ", pc)
	if in.HasDst() {
		fmt.Fprintf(&b, "r%d = ", in.Dst)
	}
	b.WriteString(in.Op.String())
	if in.W != 0 {
		fmt.Fprintf(&b, ".%s", in.W)
	}
	switch in.Op {
	case OpBr:
		fmt.Fprintf(&b, " -> %d", in.Off)
	case OpCondBr:
		fmt.Fprintf(&b, " %s -> %d", in.A, in.Off)
	case OpCall:
		name := fmt.Sprintf("f%d", in.Off)
		if in.Off >= 0 && in.Off < int64(len(p.Funcs)) {
			name = p.Funcs[in.Off].Name
		}
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		fmt.Fprintf(&b, " %s(%s)", name, strings.Join(args, ", "))
	case OpLoad:
		fmt.Fprintf(&b, " [%s%+d]", in.A, in.Off)
	case OpStore:
		fmt.Fprintf(&b, " [%s%+d] <- %s", in.A, in.Off, in.B)
	case OpAlloca:
		fmt.Fprintf(&b, " %d bytes", in.Off)
	case OpSelect:
		fmt.Fprintf(&b, " %s ? %s : %s", in.A, in.B, in.C)
	case OpRet:
		if !in.A.IsNone() {
			fmt.Fprintf(&b, " %s", in.A)
		}
	case OpAbort:
	default:
		if !in.A.IsNone() {
			fmt.Fprintf(&b, " %s", in.A)
		}
		if !in.B.IsNone() {
			fmt.Fprintf(&b, ", %s", in.B)
		}
	}
	return b.String()
}
