package ir

import (
	"strings"
	"testing"
)

func TestWidthAccessors(t *testing.T) {
	tests := []struct {
		w     Width
		bits  int
		bytes int
		mask  uint64
	}{
		{W1, 1, 0, 1},
		{W8, 8, 1, 0xff},
		{W16, 16, 2, 0xffff},
		{W32, 32, 4, 0xffffffff},
		{W64, 64, 8, ^uint64(0)},
	}
	for _, tt := range tests {
		if got := tt.w.Bits(); got != tt.bits {
			t.Errorf("%v.Bits() = %d, want %d", tt.w, got, tt.bits)
		}
		if tt.w != W1 {
			if got := tt.w.Bytes(); got != tt.bytes {
				t.Errorf("%v.Bytes() = %d, want %d", tt.w, got, tt.bytes)
			}
		}
		if got := tt.w.Mask(); got != tt.mask {
			t.Errorf("%v.Mask() = %#x, want %#x", tt.w, got, tt.mask)
		}
	}
}

func TestSignExtend(t *testing.T) {
	tests := []struct {
		w    Width
		v    uint64
		want int64
	}{
		{W8, 0x7f, 127},
		{W8, 0x80, -128},
		{W8, 0xff, -1},
		{W16, 0x8000, -32768},
		{W32, 0xffffffff, -1},
		{W32, 0x7fffffff, 0x7fffffff},
		{W64, ^uint64(0), -1},
	}
	for _, tt := range tests {
		if got := tt.w.SignExtend(tt.v); got != tt.want {
			t.Errorf("%v.SignExtend(%#x) = %d, want %d", tt.w, tt.v, got, tt.want)
		}
	}
}

func TestOperandConstructors(t *testing.T) {
	r := R(5)
	if !r.IsReg() || r.Reg() != 5 {
		t.Errorf("R(5) is not register 5")
	}
	c := C(0xdead)
	if !c.IsImm() || c.Imm() != 0xdead {
		t.Errorf("C(0xdead) is not immediate 0xdead")
	}
	ci := CI(-1)
	if ci.Imm() != ^uint64(0) {
		t.Errorf("CI(-1) = %#x", ci.Imm())
	}
	cf := CF(1.0)
	if cf.Imm() != 0x3ff0000000000000 {
		t.Errorf("CF(1.0) = %#x", cf.Imm())
	}
}

func TestRegReadsAndSlots(t *testing.T) {
	in := Instr{
		Op: OpStore, W: W32,
		Dst: NoReg,
		A:   R(3), B: R(7), C: noneOperand,
	}
	reads := in.RegReads(nil)
	if len(reads) != 2 || reads[0] != 3 || reads[1] != 7 {
		t.Fatalf("RegReads = %v, want [3 7]", reads)
	}
	if in.NumRegReads() != 2 {
		t.Fatalf("NumRegReads = %d", in.NumRegReads())
	}
	if in.ReadSlot(0) != 3 || in.ReadSlot(1) != 7 {
		t.Fatalf("ReadSlot mismatch")
	}
	// Immediates are not read slots.
	in2 := Instr{Op: OpAdd, W: W32, Dst: 1, A: R(2), B: C(9), C: noneOperand}
	if in2.NumRegReads() != 1 || in2.ReadSlot(0) != 2 {
		t.Fatalf("immediate treated as read slot")
	}
	// Call arguments are read slots.
	in3 := Instr{Op: OpCall, Dst: 1, A: noneOperand, B: noneOperand, C: noneOperand,
		Args: []Operand{R(4), C(1), R(6)}}
	if got := in3.NumRegReads(); got != 2 {
		t.Fatalf("call NumRegReads = %d, want 2", got)
	}
	if in3.ReadSlot(0) != 4 || in3.ReadSlot(1) != 6 {
		t.Fatalf("call ReadSlot mismatch")
	}
}

func TestSlotAndDestWidths(t *testing.T) {
	load := Instr{Op: OpLoad, W: W8, Dst: 1, A: R(2), B: noneOperand, C: noneOperand}
	if SlotWidth(&load, 0) != W64 {
		t.Errorf("load address slot width = %v, want W64", SlotWidth(&load, 0))
	}
	if DestWidth(&load) != W8 {
		t.Errorf("load dest width = %v, want W8", DestWidth(&load))
	}
	store := Instr{Op: OpStore, W: W16, Dst: NoReg, A: R(2), B: R(3), C: noneOperand}
	if SlotWidth(&store, 0) != W64 || SlotWidth(&store, 1) != W16 {
		t.Errorf("store slot widths wrong")
	}
	if DestWidth(&store) != 0 {
		t.Errorf("store has no dest width")
	}
	cmp := Instr{Op: OpICmpSLT, W: W32, Dst: 1, A: R(2), B: R(3), C: noneOperand}
	if DestWidth(&cmp) != W1 {
		t.Errorf("cmp dest width = %v, want W1", DestWidth(&cmp))
	}
	br := Instr{Op: OpCondBr, Dst: NoReg, A: R(2), B: noneOperand, C: noneOperand}
	if SlotWidth(&br, 0) != W1 {
		t.Errorf("condbr cond width = %v, want W1", SlotWidth(&br, 0))
	}
	fadd := Instr{Op: OpFAdd, W: W64, Dst: 1, A: R(2), B: R(3), C: noneOperand}
	if SlotWidth(&fadd, 0) != W64 || DestWidth(&fadd) != W64 {
		t.Errorf("fadd widths wrong")
	}
}

func TestBuilderSimpleProgram(t *testing.T) {
	mb := NewModule("t")
	f := mb.Func("main", 0)
	x := f.Let(C(40))
	y := f.Add(x, C(2))
	f.Out32(y)
	f.RetVoid()
	p, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Main != 0 || len(p.Funcs) != 1 {
		t.Fatalf("unexpected program shape")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderForwardCall(t *testing.T) {
	mb := NewModule("t")
	main := mb.Func("main", 0)
	r := main.Call("helper", C(20), C(22)) // declared below
	main.Out32(r)
	main.RetVoid()
	h := mb.Func("helper", 2)
	h.Ret(h.Add(h.Arg(0), h.Arg(1)))
	if _, err := mb.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderUnknownCall(t *testing.T) {
	mb := NewModule("t")
	main := mb.Func("main", 0)
	main.CallVoid("nope")
	main.RetVoid()
	if _, err := mb.Build(); err == nil {
		t.Fatal("expected unknown-call error")
	}
}

func TestBuilderMissingMain(t *testing.T) {
	mb := NewModule("t")
	f := mb.Func("f", 0)
	f.RetVoid()
	if _, err := mb.Build(); err == nil {
		t.Fatal("expected missing-main error")
	}
}

func TestBuilderUnboundLabel(t *testing.T) {
	mb := NewModule("t")
	f := mb.Func("main", 0)
	l := f.NewLabel()
	f.Jmp(l)
	f.RetVoid()
	if _, err := mb.Build(); err == nil {
		t.Fatal("expected unbound-label error")
	}
}

func TestBuilderGlobals(t *testing.T) {
	mb := NewModule("t")
	a := mb.GlobalBytes([]byte{1, 2, 3})
	b := mb.GlobalU32s([]uint32{0x11223344})
	c := mb.GlobalF64s([]float64{2.5})
	d := mb.GlobalZero(16)
	if a != GlobalBase {
		t.Errorf("first global at %#x, want %#x", a, uint64(GlobalBase))
	}
	for _, addr := range []uint64{b, c, d} {
		if addr%8 != 0 {
			t.Errorf("global at %#x not 8-byte aligned", addr)
		}
	}
	f := mb.Func("main", 0)
	f.RetVoid()
	p := mb.MustBuild()
	if len(p.Globals)%1 != 0 || len(p.Globals) < 3+4+8+16 {
		t.Errorf("global image too small: %d", len(p.Globals))
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	p := &Program{
		Funcs: []*Func{{
			Name: "main", NumRegs: 1,
			Code: []Instr{
				{Op: OpBr, Dst: NoReg, A: noneOperand, B: noneOperand, C: noneOperand, Off: 99},
			},
		}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("expected branch-range error")
	}
}

func TestValidateCatchesBadReg(t *testing.T) {
	p := &Program{
		Funcs: []*Func{{
			Name: "main", NumRegs: 1,
			Code: []Instr{
				{Op: OpMov, W: W64, Dst: 0, A: R(9), B: noneOperand, C: noneOperand},
				{Op: OpRet, Dst: NoReg, A: noneOperand, B: noneOperand, C: noneOperand},
			},
		}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("expected register-range error")
	}
}

func TestValidateRequiresTerminator(t *testing.T) {
	p := &Program{
		Funcs: []*Func{{
			Name: "main", NumRegs: 1,
			Code: []Instr{
				{Op: OpMov, W: W64, Dst: 0, A: C(1), B: noneOperand, C: noneOperand},
			},
		}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("expected terminator error")
	}
}

func TestDisassembleSmoke(t *testing.T) {
	mb := NewModule("smoke")
	f := mb.Func("main", 0)
	g := mb.GlobalU32s([]uint32{7})
	v := f.Load32(C(g), 0)
	f.If(f.Sgt(v, C(3)), func() {
		f.Out32(v)
	})
	f.CallVoid("aux", v)
	f.RetVoid()
	aux := mb.Func("aux", 1)
	aux.RetVoid()
	p := mb.MustBuild()
	asm := Disassemble(p)
	for _, want := range []string{"func main", "func aux", "load.i32", "call", "aux(r", "; entry"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}
