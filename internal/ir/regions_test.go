package ir

import (
	"sort"
	"testing"
)

// regionProg builds a two-function program with branches, a call and an
// abort arm — enough control flow to exercise every leader rule.
func regionProg(t *testing.T) *Program {
	t.Helper()
	mb := NewModule("regions")
	base := mb.GlobalU64s([]uint64{3, 1, 4, 1, 5})

	helper := mb.Func("helper", 1)
	v := helper.BinW(W64, OpMul, helper.Arg(0), C(7))
	helper.Ret(v)

	f := mb.Func("main", 0)
	acc := f.Let(C(0))
	f.For(C(0), C(5), func(i Reg) {
		w := f.Load64(f.Idx(C(base), i, 8), 0)
		f.IfElse(f.Ult(w, C(4)),
			func() { f.Mov(acc, f.BinW(W64, OpAdd, acc, w)) },
			func() { f.Mov(acc, f.BinW(W64, OpXor, acc, f.Call("helper", w))) },
		)
	})
	f.If(f.Eq(acc, C(0xdead)), func() { f.Abort() })
	f.Out64(acc)
	f.RetVoid()

	p, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBlockLeaders checks the leader-set properties the kernel generator
// relies on: pc 0 leads, every branch target leads, and every pc after a
// block terminator (Br, CondBr, Call, Ret, Abort) leads — so a generated
// kernel only ever enters a block at its head.
func TestBlockLeaders(t *testing.T) {
	p := regionProg(t)
	for fi := range p.Funcs {
		f := p.Funcs[fi]
		leaders := BlockLeaders(f)
		if !sort.IntsAreSorted(leaders) {
			t.Fatalf("func %d: leaders not sorted: %v", fi, leaders)
		}
		isLeader := make(map[int]bool, len(leaders))
		for _, l := range leaders {
			if l < 0 || l >= len(f.Code) {
				t.Fatalf("func %d: leader %d out of range [0,%d)", fi, l, len(f.Code))
			}
			if isLeader[l] {
				t.Fatalf("func %d: duplicate leader %d", fi, l)
			}
			isLeader[l] = true
		}
		if len(f.Code) > 0 && !isLeader[0] {
			t.Fatalf("func %d: pc 0 is not a leader", fi)
		}
		for pc := range f.Code {
			in := &f.Code[pc]
			switch in.Op {
			case OpBr, OpCondBr:
				if !isLeader[int(in.Off)] {
					t.Errorf("func %d: branch target %d of pc %d is not a leader", fi, in.Off, pc)
				}
				fallthrough
			case OpCall, OpRet, OpAbort:
				if pc+1 < len(f.Code) && !isLeader[pc+1] {
					t.Errorf("func %d: pc %d after terminator at %d is not a leader", fi, pc+1, pc)
				}
			}
		}
	}
}

// TestFingerprintStable pins the properties the kernel registry depends
// on: the fingerprint is deterministic, unchanged by validation (which
// only populates derived caches) and by function renames, and changed by
// any semantic mutation — opcode, immediate, operand kind, branch offset
// or global image.
func TestFingerprintStable(t *testing.T) {
	p := regionProg(t)
	fp := p.Fingerprint()
	if fp2 := regionProg(t).Fingerprint(); fp2 != fp {
		t.Fatalf("fingerprint not deterministic: %#x vs %#x", fp, fp2)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Fingerprint(); got != fp {
		t.Fatalf("fingerprint changed across Validate: %#x vs %#x", got, fp)
	}
	p.Funcs[0].Name = "renamed"
	if got := p.Fingerprint(); got != fp {
		t.Fatalf("fingerprint changed across a function rename: %#x vs %#x", got, fp)
	}

	mutations := []struct {
		name string
		mut  func(*Program)
	}{
		{"opcode", func(q *Program) {
			for fi := range q.Funcs {
				for pc := range q.Funcs[fi].Code {
					in := &q.Funcs[fi].Code[pc]
					if in.Op == OpAdd {
						in.Op = OpSub
						return
					}
				}
			}
			t.Fatal("no OpAdd to mutate")
		}},
		{"immediate", func(q *Program) {
			for fi := range q.Funcs {
				for pc := range q.Funcs[fi].Code {
					in := &q.Funcs[fi].Code[pc]
					if in.B.IsImm() {
						in.B = C(in.B.Imm() + 1)
						return
					}
				}
			}
			t.Fatal("no immediate operand to mutate")
		}},
		{"operand kind", func(q *Program) {
			for fi := range q.Funcs {
				for pc := range q.Funcs[fi].Code {
					in := &q.Funcs[fi].Code[pc]
					if in.B.IsImm() {
						in.B = R(Reg(in.B.Imm()) % 4)
						return
					}
				}
			}
			t.Fatal("no immediate operand to mutate")
		}},
		{"branch offset", func(q *Program) {
			for fi := range q.Funcs {
				for pc := range q.Funcs[fi].Code {
					in := &q.Funcs[fi].Code[pc]
					if in.Op == OpBr {
						in.Off++
						return
					}
				}
			}
			t.Fatal("no OpBr to mutate")
		}},
		{"global image", func(q *Program) {
			q.Globals[0] ^= 1
		}},
	}
	for _, m := range mutations {
		q := regionProg(t)
		m.mut(q)
		if q.Fingerprint() == fp {
			t.Errorf("%s mutation left the fingerprint unchanged", m.name)
		}
	}
}
