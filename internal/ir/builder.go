package ir

import (
	"encoding/binary"
	"fmt"
	"math"
)

func f64bits(v float64) uint64 { return math.Float64bits(v) }

// Src is anything that can serve as an instruction operand: a Reg or an
// Operand (immediate or register). It keeps benchmark code readable:
//
//	sum := f.Add(sum, f.Load32(base, 0))
//	f.Store32(base, ir.C(0), 4)
type Src interface {
	operand() Operand
}

func (r Reg) operand() Operand     { return R(r) }
func (o Operand) operand() Operand { return o }

// Label is a branch target inside a function under construction.
type Label int

// ModuleBuilder assembles a Program: global data plus functions.
type ModuleBuilder struct {
	name    string
	globals []byte
	funcs   []*FuncBuilder
	byName  map[string]int
	err     error
}

// NewModule returns an empty module builder.
func NewModule(name string) *ModuleBuilder {
	return &ModuleBuilder{
		name:   name,
		byName: make(map[string]int),
	}
}

func (m *ModuleBuilder) setErr(err error) {
	if m.err == nil {
		m.err = err
	}
}

// align8 pads the global image to an 8-byte boundary.
func (m *ModuleBuilder) align8() {
	for len(m.globals)%8 != 0 {
		m.globals = append(m.globals, 0)
	}
}

// GlobalBytes places data in the global segment and returns its virtual
// address.
func (m *ModuleBuilder) GlobalBytes(data []byte) uint64 {
	m.align8()
	addr := uint64(GlobalBase + len(m.globals))
	m.globals = append(m.globals, data...)
	return addr
}

// GlobalZero reserves n zeroed bytes in the global segment and returns the
// virtual address.
func (m *ModuleBuilder) GlobalZero(n int) uint64 {
	m.align8()
	addr := uint64(GlobalBase + len(m.globals))
	m.globals = append(m.globals, make([]byte, n)...)
	return addr
}

// GlobalU32s places a little-endian array of 32-bit words.
func (m *ModuleBuilder) GlobalU32s(vals []uint32) uint64 {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	return m.GlobalBytes(buf)
}

// GlobalU64s places a little-endian array of 64-bit words.
func (m *ModuleBuilder) GlobalU64s(vals []uint64) uint64 {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	return m.GlobalBytes(buf)
}

// GlobalF64s places an array of IEEE-754 doubles.
func (m *ModuleBuilder) GlobalF64s(vals []float64) uint64 {
	u := make([]uint64, len(vals))
	for i, v := range vals {
		u[i] = f64bits(v)
	}
	return m.GlobalU64s(u)
}

// Func starts a new function with the given number of arguments. Arguments
// occupy registers 0..numArgs-1.
func (m *ModuleBuilder) Func(name string, numArgs int) *FuncBuilder {
	if _, dup := m.byName[name]; dup {
		m.setErr(fmt.Errorf("ir: duplicate function %q", name))
	}
	fb := &FuncBuilder{
		mod:     m,
		name:    name,
		numArgs: numArgs,
		nextReg: Reg(numArgs),
	}
	m.byName[name] = len(m.funcs)
	m.funcs = append(m.funcs, fb)
	return fb
}

// Build resolves labels and call targets, validates the program, and
// returns it. The entry point is the function named "main".
func (m *ModuleBuilder) Build() (*Program, error) {
	if m.err != nil {
		return nil, m.err
	}
	mainIdx, ok := m.byName["main"]
	if !ok {
		return nil, fmt.Errorf("ir: module %q has no main function", m.name)
	}
	p := &Program{
		Name:    m.name,
		Globals: append([]byte(nil), m.globals...),
		Main:    mainIdx,
	}
	for _, fb := range m.funcs {
		f, err := fb.finish()
		if err != nil {
			return nil, fmt.Errorf("ir: func %s: %w", fb.name, err)
		}
		p.Funcs = append(p.Funcs, f)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for tests and static program constructors where a
// build error is a programming bug.
func (m *ModuleBuilder) MustBuild() *Program {
	p, err := m.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// FuncBuilder assembles one function.
type FuncBuilder struct {
	mod      *ModuleBuilder
	name     string
	numArgs  int
	nextReg  Reg
	code     []Instr
	labels   []int // label -> pc (-1 while unbound)
	branches []int // pcs whose Off is a label id awaiting resolution
	calls    []int // pcs whose Off is a callee index awaiting arity check
	callees  []string
}

// Name returns the function name.
func (f *FuncBuilder) Name() string { return f.name }

// Arg returns the register holding the i-th argument.
func (f *FuncBuilder) Arg(i int) Reg {
	if i < 0 || i >= f.numArgs {
		f.mod.setErr(fmt.Errorf("ir: func %s: arg %d out of range", f.name, i))
		return 0
	}
	return Reg(i)
}

// NewReg allocates a fresh virtual register.
func (f *FuncBuilder) NewReg() Reg {
	r := f.nextReg
	if f.nextReg == NoReg-1 {
		f.mod.setErr(fmt.Errorf("ir: func %s: register file exhausted", f.name))
	}
	f.nextReg++
	return r
}

func (f *FuncBuilder) emit(in Instr) { f.code = append(f.code, in) }

// emitDst emits in with a fresh destination register and returns it.
func (f *FuncBuilder) emitDst(in Instr) Reg {
	d := f.NewReg()
	in.Dst = d
	f.emit(in)
	return d
}

// --- labels and branches ---

// NewLabel creates an unbound label.
func (f *FuncBuilder) NewLabel() Label {
	f.labels = append(f.labels, -1)
	return Label(len(f.labels) - 1)
}

// Bind binds a label to the current position.
func (f *FuncBuilder) Bind(l Label) {
	if f.labels[l] != -1 {
		f.mod.setErr(fmt.Errorf("ir: func %s: label bound twice", f.name))
	}
	f.labels[l] = len(f.code)
}

// Jmp emits an unconditional jump to l.
func (f *FuncBuilder) Jmp(l Label) {
	f.branches = append(f.branches, len(f.code))
	f.emit(Instr{Op: OpBr, Dst: NoReg, A: noneOperand, B: noneOperand, C: noneOperand, Off: int64(l)})
}

// JmpIf emits a jump to l taken when cond is non-zero.
func (f *FuncBuilder) JmpIf(cond Src, l Label) {
	f.branches = append(f.branches, len(f.code))
	f.emit(Instr{Op: OpCondBr, Dst: NoReg, A: cond.operand(), B: noneOperand, C: noneOperand, Off: int64(l)})
}

// JmpIfNot emits a jump to l taken when cond is zero.
func (f *FuncBuilder) JmpIfNot(cond Src, l Label) {
	z := f.CmpW(W64, OpICmpEQ, cond, C(0))
	f.JmpIf(z, l)
}

// --- structured control flow ---

// If runs then() only when cond is non-zero.
func (f *FuncBuilder) If(cond Src, then func()) {
	end := f.NewLabel()
	f.JmpIfNot(cond, end)
	then()
	f.Bind(end)
}

// IfElse runs then() when cond is non-zero, otherwise els().
func (f *FuncBuilder) IfElse(cond Src, then, els func()) {
	elseL := f.NewLabel()
	end := f.NewLabel()
	f.JmpIfNot(cond, elseL)
	then()
	f.Jmp(end)
	f.Bind(elseL)
	els()
	f.Bind(end)
}

// While loops while cond() evaluates non-zero. cond is re-emitted at the
// loop head each iteration.
func (f *FuncBuilder) While(cond func() Src, body func()) {
	head := f.NewLabel()
	exit := f.NewLabel()
	f.Bind(head)
	f.JmpIfNot(cond(), exit)
	body()
	f.Jmp(head)
	f.Bind(exit)
}

// For runs body(i) for i in [lo, hi) with a signed 32-bit counter held in a
// fresh register.
func (f *FuncBuilder) For(lo, hi Src, body func(i Reg)) {
	i := f.NewReg()
	f.Mov(i, lo)
	hiOp := hi.operand()
	f.While(func() Src { return f.Slt(i, hiOp) }, func() {
		body(i)
		f.Mov(i, f.Add(i, C(1)))
	})
}

// --- data movement ---

// Mov assigns src to the existing register dst.
func (f *FuncBuilder) Mov(dst Reg, src Src) {
	f.emit(Instr{Op: OpMov, W: W64, Dst: dst, A: src.operand(), B: noneOperand, C: noneOperand})
}

// Let materializes src into a fresh register.
func (f *FuncBuilder) Let(src Src) Reg {
	return f.emitDst(Instr{Op: OpMov, W: W64, A: src.operand(), B: noneOperand, C: noneOperand})
}

// Select returns cond != 0 ? a : b.
func (f *FuncBuilder) Select(cond, a, b Src) Reg {
	return f.emitDst(Instr{Op: OpSelect, W: W64, A: cond.operand(), B: a.operand(), C: b.operand()})
}

// --- integer arithmetic (width-explicit core + 32-bit conveniences) ---

// BinW emits a width-w binary integer instruction and returns its result.
func (f *FuncBuilder) BinW(w Width, op Op, a, b Src) Reg {
	return f.emitDst(Instr{Op: op, W: w, A: a.operand(), B: b.operand(), C: noneOperand})
}

// CmpW emits a width-w comparison and returns the 0/1 result.
func (f *FuncBuilder) CmpW(w Width, op Op, a, b Src) Reg {
	return f.emitDst(Instr{Op: op, W: w, A: a.operand(), B: b.operand(), C: noneOperand})
}

// 32-bit conveniences: the dominant integer width in the benchmark suite,
// matching the i32-heavy LLVM IR of the original C programs.

func (f *FuncBuilder) Add(a, b Src) Reg  { return f.BinW(W32, OpAdd, a, b) }
func (f *FuncBuilder) Sub(a, b Src) Reg  { return f.BinW(W32, OpSub, a, b) }
func (f *FuncBuilder) Mul(a, b Src) Reg  { return f.BinW(W32, OpMul, a, b) }
func (f *FuncBuilder) Udiv(a, b Src) Reg { return f.BinW(W32, OpUDiv, a, b) }
func (f *FuncBuilder) Sdiv(a, b Src) Reg { return f.BinW(W32, OpSDiv, a, b) }
func (f *FuncBuilder) Urem(a, b Src) Reg { return f.BinW(W32, OpURem, a, b) }
func (f *FuncBuilder) Srem(a, b Src) Reg { return f.BinW(W32, OpSRem, a, b) }
func (f *FuncBuilder) And(a, b Src) Reg  { return f.BinW(W32, OpAnd, a, b) }
func (f *FuncBuilder) Or(a, b Src) Reg   { return f.BinW(W32, OpOr, a, b) }
func (f *FuncBuilder) Xor(a, b Src) Reg  { return f.BinW(W32, OpXor, a, b) }
func (f *FuncBuilder) Shl(a, b Src) Reg  { return f.BinW(W32, OpShl, a, b) }
func (f *FuncBuilder) Lshr(a, b Src) Reg { return f.BinW(W32, OpLShr, a, b) }
func (f *FuncBuilder) Ashr(a, b Src) Reg { return f.BinW(W32, OpAShr, a, b) }

func (f *FuncBuilder) Eq(a, b Src) Reg  { return f.CmpW(W32, OpICmpEQ, a, b) }
func (f *FuncBuilder) Ne(a, b Src) Reg  { return f.CmpW(W32, OpICmpNE, a, b) }
func (f *FuncBuilder) Ult(a, b Src) Reg { return f.CmpW(W32, OpICmpULT, a, b) }
func (f *FuncBuilder) Ule(a, b Src) Reg { return f.CmpW(W32, OpICmpULE, a, b) }
func (f *FuncBuilder) Slt(a, b Src) Reg { return f.CmpW(W32, OpICmpSLT, a, b) }
func (f *FuncBuilder) Sle(a, b Src) Reg { return f.CmpW(W32, OpICmpSLE, a, b) }
func (f *FuncBuilder) Sgt(a, b Src) Reg { return f.CmpW(W32, OpICmpSLT, b, a) }
func (f *FuncBuilder) Sge(a, b Src) Reg { return f.CmpW(W32, OpICmpSLE, b, a) }
func (f *FuncBuilder) Ugt(a, b Src) Reg { return f.CmpW(W32, OpICmpULT, b, a) }
func (f *FuncBuilder) Uge(a, b Src) Reg { return f.CmpW(W32, OpICmpULE, b, a) }

// --- floating point ---

func (f *FuncBuilder) fbin(op Op, a, b Src) Reg {
	return f.emitDst(Instr{Op: op, W: W64, A: a.operand(), B: b.operand(), C: noneOperand})
}

func (f *FuncBuilder) funary(op Op, a Src) Reg {
	return f.emitDst(Instr{Op: op, W: W64, A: a.operand(), B: noneOperand, C: noneOperand})
}

func (f *FuncBuilder) Fadd(a, b Src) Reg { return f.fbin(OpFAdd, a, b) }
func (f *FuncBuilder) Fsub(a, b Src) Reg { return f.fbin(OpFSub, a, b) }
func (f *FuncBuilder) Fmul(a, b Src) Reg { return f.fbin(OpFMul, a, b) }
func (f *FuncBuilder) Fdiv(a, b Src) Reg { return f.fbin(OpFDiv, a, b) }
func (f *FuncBuilder) Fneg(a Src) Reg    { return f.funary(OpFNeg, a) }
func (f *FuncBuilder) Fabs(a Src) Reg    { return f.funary(OpFAbs, a) }
func (f *FuncBuilder) Fsqrt(a Src) Reg   { return f.funary(OpFSqrt, a) }
func (f *FuncBuilder) Feq(a, b Src) Reg  { return f.fbin(OpFCmpEQ, a, b) }
func (f *FuncBuilder) Fne(a, b Src) Reg  { return f.fbin(OpFCmpNE, a, b) }
func (f *FuncBuilder) Flt(a, b Src) Reg  { return f.fbin(OpFCmpLT, a, b) }
func (f *FuncBuilder) Fle(a, b Src) Reg  { return f.fbin(OpFCmpLE, a, b) }
func (f *FuncBuilder) Fgt(a, b Src) Reg  { return f.fbin(OpFCmpLT, b, a) }
func (f *FuncBuilder) Fge(a, b Src) Reg  { return f.fbin(OpFCmpLE, b, a) }

// SiToFp converts a signed w-bit integer to float64.
func (f *FuncBuilder) SiToFp(w Width, a Src) Reg {
	return f.emitDst(Instr{Op: OpSIToFP, W: w, A: a.operand(), B: noneOperand, C: noneOperand})
}

// FpToSi converts a float64 to a signed w-bit integer (saturating).
func (f *FuncBuilder) FpToSi(w Width, a Src) Reg {
	return f.emitDst(Instr{Op: OpFPToSI, W: w, A: a.operand(), B: noneOperand, C: noneOperand})
}

// Sext sign-extends the w-bit value a to 64 bits.
func (f *FuncBuilder) Sext(w Width, a Src) Reg {
	return f.emitDst(Instr{Op: OpSExt, W: w, A: a.operand(), B: noneOperand, C: noneOperand})
}

// Zext zero-extends the w-bit value a to 64 bits.
func (f *FuncBuilder) Zext(w Width, a Src) Reg {
	return f.emitDst(Instr{Op: OpZExt, W: w, A: a.operand(), B: noneOperand, C: noneOperand})
}

// Bitcast moves a raw 64-bit payload unchanged (reinterpreting int/float).
func (f *FuncBuilder) Bitcast(a Src) Reg {
	return f.emitDst(Instr{Op: OpBitcast, W: W64, A: a.operand(), B: noneOperand, C: noneOperand})
}

// Trunc truncates a to w bits.
func (f *FuncBuilder) Trunc(w Width, a Src) Reg {
	return f.emitDst(Instr{Op: OpTrunc, W: w, A: a.operand(), B: noneOperand, C: noneOperand})
}

// --- memory ---

// LoadW loads a w-width value from addr+off, zero-extended.
func (f *FuncBuilder) LoadW(w Width, addr Src, off int64) Reg {
	return f.emitDst(Instr{Op: OpLoad, W: w, A: addr.operand(), B: noneOperand, C: noneOperand, Off: off})
}

// StoreW stores the low w bits of val to addr+off.
func (f *FuncBuilder) StoreW(w Width, addr Src, val Src, off int64) {
	f.emit(Instr{Op: OpStore, W: w, Dst: NoReg, A: addr.operand(), B: val.operand(), C: noneOperand, Off: off})
}

func (f *FuncBuilder) Load8(addr Src, off int64) Reg    { return f.LoadW(W8, addr, off) }
func (f *FuncBuilder) Load32(addr Src, off int64) Reg   { return f.LoadW(W32, addr, off) }
func (f *FuncBuilder) Load64(addr Src, off int64) Reg   { return f.LoadW(W64, addr, off) }
func (f *FuncBuilder) LoadF(addr Src, off int64) Reg    { return f.LoadW(W64, addr, off) }
func (f *FuncBuilder) Store8(addr, val Src, off int64)  { f.StoreW(W8, addr, val, off) }
func (f *FuncBuilder) Store32(addr, val Src, off int64) { f.StoreW(W32, addr, val, off) }
func (f *FuncBuilder) Store64(addr, val Src, off int64) { f.StoreW(W64, addr, val, off) }
func (f *FuncBuilder) StoreF(addr, val Src, off int64)  { f.StoreW(W64, addr, val, off) }

// Alloca reserves size bytes on the stack and returns their address.
func (f *FuncBuilder) Alloca(size int64) Reg {
	return f.emitDst(Instr{Op: OpAlloca, W: W64, A: noneOperand, B: noneOperand, C: noneOperand, Off: size})
}

// Idx computes base + idx*scale as a 64-bit address. idx is treated as an
// unsigned 32-bit value (benchmark indices are non-negative).
func (f *FuncBuilder) Idx(base Src, idx Src, scale int64) Reg {
	scaled := f.BinW(W64, OpMul, idx, CI(scale))
	return f.BinW(W64, OpAdd, base, scaled)
}

// --- calls, returns, environment ---

// Call emits a call to the named function and returns the register holding
// its result. For void callees the result register holds zero. The callee
// may be declared later in the module; names resolve at Build time.
func (f *FuncBuilder) Call(name string, args ...Src) Reg {
	ops := make([]Operand, len(args))
	for i, a := range args {
		ops[i] = a.operand()
	}
	f.calls = append(f.calls, len(f.code))
	f.callees = append(f.callees, name)
	return f.emitDst(Instr{Op: OpCall, W: W64, A: noneOperand, B: noneOperand, C: noneOperand, Off: -1, Args: ops})
}

// CallVoid emits a call whose result is discarded.
func (f *FuncBuilder) CallVoid(name string, args ...Src) {
	ops := make([]Operand, len(args))
	for i, a := range args {
		ops[i] = a.operand()
	}
	f.calls = append(f.calls, len(f.code))
	f.callees = append(f.callees, name)
	f.emit(Instr{Op: OpCall, W: W64, Dst: NoReg, A: noneOperand, B: noneOperand, C: noneOperand, Off: -1, Args: ops})
}

// Ret returns v from the function.
func (f *FuncBuilder) Ret(v Src) {
	f.emit(Instr{Op: OpRet, Dst: NoReg, A: v.operand(), B: noneOperand, C: noneOperand})
}

// RetVoid returns from the function without a value.
func (f *FuncBuilder) RetVoid() {
	f.emit(Instr{Op: OpRet, Dst: NoReg, A: noneOperand, B: noneOperand, C: noneOperand})
}

// OutW appends the low w bytes of v to the program output.
func (f *FuncBuilder) OutW(w Width, v Src) {
	f.emit(Instr{Op: OpOut, W: w, Dst: NoReg, A: v.operand(), B: noneOperand, C: noneOperand})
}

func (f *FuncBuilder) Out8(v Src)  { f.OutW(W8, v) }
func (f *FuncBuilder) Out32(v Src) { f.OutW(W32, v) }
func (f *FuncBuilder) Out64(v Src) { f.OutW(W64, v) }

// Abort terminates the run with a self-detected failure.
func (f *FuncBuilder) Abort() {
	f.emit(Instr{Op: OpAbort, Dst: NoReg, A: noneOperand, B: noneOperand, C: noneOperand})
}

// finish resolves this function's labels into PC offsets and call names
// into function indices.
func (f *FuncBuilder) finish() (*Func, error) {
	for _, pc := range f.branches {
		l := Label(f.code[pc].Off)
		if int(l) >= len(f.labels) || f.labels[l] == -1 {
			return nil, fmt.Errorf("unbound label at pc %d", pc)
		}
		f.code[pc].Off = int64(f.labels[l])
	}
	for i, pc := range f.calls {
		idx, ok := f.mod.byName[f.callees[i]]
		if !ok {
			return nil, fmt.Errorf("call to unknown function %q at pc %d", f.callees[i], pc)
		}
		f.code[pc].Off = int64(idx)
	}
	return &Func{
		Name:    f.name,
		NumArgs: f.numArgs,
		NumRegs: int(f.nextReg),
		Code:    f.code,
	}, nil
}
