package ir

// Virtual-address-space layout shared by the builder (which embeds global
// addresses as immediates) and the VM (which maps segments).
//
// Segments are deliberately sparse: the vast majority of the 64-bit address
// space is unmapped, so a bit flip in an address operand usually produces
// an access outside every segment and raises a segmentation-fault trap —
// mirroring how corrupted pointers behave on paged hardware, which is the
// dominant source of the paper's "Detected by Hardware Exception" outcomes.
const (
	// NullGuardSize is the size of the unmapped region at address zero;
	// accesses below it always fault (null-pointer dereference).
	NullGuardSize = 0x1000

	// GlobalBase is the base virtual address of the global data segment.
	GlobalBase = 0x0000_0000_1000_0000

	// StackBase is the base virtual address of the stack segment. The
	// stack grows upward from StackBase in this model.
	StackBase = 0x0000_7fff_f000_0000

	// StackSize is the size of the stack segment in bytes.
	StackSize = 1 << 20
)
