package ir

import "fmt"

// SlotRole classifies what kind of data a register operand carries. The
// paper explains the outcome differences between programs and techniques
// through exactly this distinction (§IV-A, §IV-C2): errors in memory
// addresses are mostly caught by hardware exceptions, errors in data
// values mostly surface as benign or SDC outcomes, and errors in branch
// conditions redirect control flow.
type SlotRole uint8

// RoleNone is the zero SlotRole: no register was read or written (for
// example, a run whose injection never happened).
const RoleNone SlotRole = 0

// Roles.
const (
	// RoleAddress marks pointer-carrying operands: load/store addresses
	// and 64-bit integer arithmetic, which the builder DSL uses for
	// address computation.
	RoleAddress SlotRole = iota + 1
	// RoleData marks narrow (< 64-bit) integer value operands.
	RoleData
	// RoleControl marks branch and select conditions.
	RoleControl
	// RoleFloat marks floating-point operands.
	RoleFloat
	// RoleOther marks untyped 64-bit moves, call arguments and returns.
	RoleOther

	// NumSlotRoles sizes role-indexed arrays (roles start at 1).
	NumSlotRoles = 6
)

// String implements fmt.Stringer.
func (r SlotRole) String() string {
	switch r {
	case RoleAddress:
		return "address"
	case RoleData:
		return "data"
	case RoleControl:
		return "control"
	case RoleFloat:
		return "float"
	case RoleOther:
		return "other"
	case RoleNone:
		return "none"
	}
	return fmt.Sprintf("SlotRole(%d)", uint8(r))
}

// ReadSlotRole returns the role of the slot-th register operand read by
// in (RegReads order).
func ReadSlotRole(in *Instr, slot int) SlotRole {
	if in.A.IsReg() {
		if slot == 0 {
			return roleOfA(in)
		}
		slot--
	}
	if in.B.IsReg() {
		if slot == 0 {
			return roleOfB(in)
		}
		slot--
	}
	if in.C.IsReg() && slot == 0 {
		return RoleOther // select alternative value
	}
	return RoleOther // call arguments
}

// DestRole returns the role of the register written by in, or 0 when in
// writes no register.
func DestRole(in *Instr) SlotRole {
	if !in.HasDst() {
		return 0
	}
	switch in.Op {
	case OpAlloca:
		return RoleAddress
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpFAbs, OpFSqrt, OpSIToFP:
		return RoleFloat
	case OpICmpEQ, OpICmpNE, OpICmpULT, OpICmpULE, OpICmpSLT, OpICmpSLE,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE:
		return RoleControl
	case OpAdd, OpSub, OpMul, OpUDiv, OpSDiv, OpURem, OpSRem,
		OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		if in.W == W64 {
			return RoleAddress // the DSL computes addresses in 64-bit
		}
		return RoleData
	case OpLoad, OpTrunc, OpZExt, OpSExt, OpFPToSI:
		if in.W == W64 {
			return RoleOther
		}
		return RoleData
	default:
		return RoleOther
	}
}

func roleOfA(in *Instr) SlotRole {
	switch in.Op {
	case OpLoad, OpStore:
		return RoleAddress
	case OpCondBr, OpSelect:
		return RoleControl
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpFAbs, OpFSqrt,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFPToSI:
		return RoleFloat
	case OpAdd, OpSub, OpMul, OpUDiv, OpSDiv, OpURem, OpSRem,
		OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr,
		OpICmpEQ, OpICmpNE, OpICmpULT, OpICmpULE, OpICmpSLT, OpICmpSLE:
		if in.W == W64 {
			return RoleAddress
		}
		return RoleData
	case OpSExt, OpZExt, OpTrunc, OpSIToFP, OpOut:
		if in.W == W64 {
			return RoleOther
		}
		return RoleData
	default:
		return RoleOther
	}
}

func roleOfB(in *Instr) SlotRole {
	switch in.Op {
	case OpStore:
		if in.W == W64 {
			return RoleOther
		}
		return RoleData
	case OpSelect:
		return RoleOther
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE:
		return RoleFloat
	default:
		if in.W == W64 {
			return RoleAddress
		}
		return RoleData
	}
}
