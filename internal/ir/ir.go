// Package ir defines a typed, LLVM-IR-like intermediate representation used
// as the fault-injection substrate of this repository.
//
// The original study (Sangchoolie et al., DSN 2017) extends LLFI, which
// injects bit flips into the virtual registers of LLVM IR. Go has no
// workable LLVM bindings, so this package reproduces the observables the
// fault model needs:
//
//   - programs are sequences of typed instructions over virtual registers;
//   - every dynamic instruction reads zero or more register operands
//     (inject-on-read candidates) and writes at most one destination
//     register (inject-on-write candidates);
//   - register payloads are raw 64-bit words, so a bit flip is an XOR mask.
//
// Instructions use a flat, PC-based encoding inside each function; the
// builder (builder.go) offers structured control flow on top.
package ir

import (
	"fmt"
	"math"
)

// Width is the operand width of an integer instruction. Float instructions
// always operate on 64-bit IEEE-754 payloads.
type Width uint8

// Supported integer operand widths.
const (
	W8 Width = iota + 1
	W16
	W32
	W64
)

// Bits returns the number of bits in the width.
func (w Width) Bits() int {
	// W8..W64 are 1..4, so their bit counts are 8 << (w-1); the branchless
	// form keeps this hot interpreter helper out of the profile.
	if n := uint(w) - 1; n < 4 {
		return 8 << n
	}
	if w == W1 {
		return 1
	}
	return 0
}

// Bytes returns the number of bytes in the width.
func (w Width) Bytes() int {
	if n := uint(w) - 1; n < 4 {
		return 1 << n
	}
	return w.Bits() / 8
}

// Mask returns a mask covering the low Bits() bits.
func (w Width) Mask() uint64 {
	if w == W64 {
		return ^uint64(0)
	}
	return 1<<uint(w.Bits()) - 1
}

// String implements fmt.Stringer.
func (w Width) String() string {
	if b := w.Bits(); b != 0 {
		return fmt.Sprintf("i%d", b)
	}
	return fmt.Sprintf("Width(%d)", uint8(w))
}

// SignExtend interprets v as a w-bit two's-complement integer and returns
// its 64-bit sign extension.
func (w Width) SignExtend(v uint64) int64 {
	switch w {
	case W8:
		return int64(int8(v))
	case W16:
		return int64(int16(v))
	case W32:
		return int64(int32(v))
	default:
		return int64(v)
	}
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. Integer arithmetic is width-sensitive (results are truncated to
// the instruction width); float arithmetic is 64-bit IEEE-754.
const (
	// Integer arithmetic and bitwise logic: Dst = A op B.
	OpAdd Op = iota + 1
	OpSub
	OpMul
	OpUDiv // traps on zero divisor
	OpSDiv // traps on zero divisor and INT_MIN/-1
	OpURem // traps on zero divisor
	OpSRem // traps on zero divisor and INT_MIN/-1
	OpAnd
	OpOr
	OpXor
	OpShl  // shift count masked to width, like common hardware
	OpLShr // logical shift right
	OpAShr // arithmetic shift right

	// Floating point (64-bit): Dst = A op B (or unary on A).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv // IEEE semantics: x/0 = ±Inf/NaN, no trap (matches FPU default)
	OpFNeg
	OpFAbs
	OpFSqrt

	// Conversions.
	OpSExt   // Dst = sign-extend(A) from width W to 64 bits
	OpZExt   // Dst = zero-extend(A) from width W (truncate then extend)
	OpTrunc  // Dst = A masked to width W
	OpSIToFP // Dst = float64(signed W-bit A)
	OpFPToSI // Dst = int64(float64 A), saturating, truncated to W
	OpBitcast

	// Comparisons: Dst = 1 if the relation holds over W-bit operands, else 0.
	OpICmpEQ
	OpICmpNE
	OpICmpULT
	OpICmpULE
	OpICmpSLT
	OpICmpSLE
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE

	// Data movement.
	OpMov    // Dst = A
	OpSelect // Dst = A != 0 ? B : C

	// Memory. Addresses are 64-bit virtual addresses; Off is a constant
	// byte displacement added to the A operand.
	OpLoad   // Dst = *(A + Off), W bytes, zero-extended
	OpStore  // *(A + Off) = B, W bytes
	OpAlloca // Dst = address of a fresh Off-byte stack block

	// Control flow. Branch targets are intra-function PCs held in Off.
	OpBr     // unconditional jump to Off
	OpCondBr // if A != 0 jump to Off, else fall through
	OpCall   // Dst = Funcs[Off](Args...); Dst may be NoReg
	OpRet    // return A (or nothing if A is the none operand)

	// Environment.
	OpOut   // append the low W bytes of A (little-endian) to the output
	OpAbort // terminate with an abort trap (self-detected failure)
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpUDiv: "udiv", OpSDiv: "sdiv",
	OpURem: "urem", OpSRem: "srem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpFAbs: "fabs", OpFSqrt: "fsqrt",
	OpSExt: "sext", OpZExt: "zext", OpTrunc: "trunc",
	OpSIToFP: "sitofp", OpFPToSI: "fptosi", OpBitcast: "bitcast",
	OpICmpEQ: "icmp.eq", OpICmpNE: "icmp.ne", OpICmpULT: "icmp.ult",
	OpICmpULE: "icmp.ule", OpICmpSLT: "icmp.slt", OpICmpSLE: "icmp.sle",
	OpFCmpEQ: "fcmp.eq", OpFCmpNE: "fcmp.ne", OpFCmpLT: "fcmp.lt",
	OpFCmpLE: "fcmp.le",
	OpMov:    "mov", OpSelect: "select",
	OpLoad: "load", OpStore: "store", OpAlloca: "alloca",
	OpBr: "br", OpCondBr: "condbr", OpCall: "call", OpRet: "ret",
	OpOut: "out", OpAbort: "abort",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Reg identifies a virtual register within a function frame.
type Reg uint16

// NoReg marks an absent destination register (e.g. stores, branches, calls
// to void functions). Instructions with Dst == NoReg are not candidates for
// inject-on-write.
const NoReg Reg = 0xffff

// Operand is either a virtual register or an immediate constant. Immediate
// operands are not fault-injection candidates: LLFI targets registers.
type Operand struct {
	imm   uint64
	reg   Reg
	isImm bool
	none  bool
}

// noneOperand is the absent operand (e.g. Ret with no value).
var noneOperand = Operand{none: true}

// R returns a register operand.
func R(r Reg) Operand { return Operand{reg: r} }

// C returns an immediate operand holding the raw 64-bit payload v.
func C(v uint64) Operand { return Operand{imm: v, isImm: true} }

// CI returns an immediate operand holding the two's-complement encoding of v.
func CI(v int64) Operand { return C(uint64(v)) }

// CF returns an immediate operand holding the IEEE-754 bits of v.
func CF(v float64) Operand { return C(math.Float64bits(v)) }

// IsImm reports whether the operand is an immediate constant.
func (o Operand) IsImm() bool { return o.isImm }

// IsReg reports whether the operand is a register.
func (o Operand) IsReg() bool { return !o.isImm && !o.none }

// IsNone reports whether the operand is absent.
func (o Operand) IsNone() bool { return o.none }

// Reg returns the register of a register operand. It panics otherwise.
func (o Operand) Reg() Reg {
	if !o.IsReg() {
		panic("ir: Reg() on non-register operand")
	}
	return o.reg
}

// Imm returns the payload of an immediate operand. It panics otherwise.
func (o Operand) Imm() uint64 {
	if !o.isImm {
		panic("ir: Imm() on non-immediate operand")
	}
	return o.imm
}

// String implements fmt.Stringer.
func (o Operand) String() string {
	switch {
	case o.none:
		return "_"
	case o.isImm:
		return fmt.Sprintf("#%d", o.imm)
	default:
		return fmt.Sprintf("r%d", o.reg)
	}
}

// Instr is a single IR instruction.
//
// Operand roles by opcode:
//
//	binary int/float ops:  Dst = A op B
//	unary ops:             Dst = op A
//	OpSelect:              Dst = A != 0 ? B : C
//	OpLoad:                Dst = mem[A + Off]
//	OpStore:               mem[A + Off] = B
//	OpAlloca:              Dst = new stack block of Off bytes
//	OpBr:                  goto Off
//	OpCondBr:              if A != 0 goto Off
//	OpCall:                Dst = Funcs[Off](Args...)
//	OpRet:                 return A (may be the none operand)
//	OpOut:                 emit low W bytes of A
type Instr struct {
	Op   Op
	W    Width
	Dst  Reg
	A    Operand
	B    Operand
	C    Operand
	Off  int64
	Args []Operand
	// NR caches NumRegReads(): the instruction's register-read operand
	// slot count, which the VM consumes on every dynamic execution.
	// Populated by Program.Validate (and therefore by Build).
	NR uint8
	// DW caches the instruction's destination-register write count (1 when
	// the instruction is an inject-on-write candidate at its own PC, else
	// 0; calls count at their matching return instead). Populated by
	// Program.Validate.
	DW uint8
	// Tok is the instruction's dispatch token: the VM handler-table index,
	// with operand kinds and widths resolved once. Populated by
	// Program.Validate; the zero value dispatches to an abort trap.
	Tok Token
	// FTok, when not FuseNone, marks this instruction and its successor as
	// a superinstruction the VM may execute in one dispatch round.
	// Populated by Program.Validate's fusion pass.
	FTok FuseKind
}

// HasDst reports whether the instruction writes a destination register,
// i.e. whether it is an inject-on-write candidate.
func (in *Instr) HasDst() bool { return in.Dst != NoReg }

// RegReads appends the register operands read by the instruction to dst and
// returns it. The order is stable (A, B, C, Args...). Each entry is an
// inject-on-read candidate slot.
func (in *Instr) RegReads(dst []Reg) []Reg {
	if in.A.IsReg() {
		dst = append(dst, in.A.reg)
	}
	if in.B.IsReg() {
		dst = append(dst, in.B.reg)
	}
	if in.C.IsReg() {
		dst = append(dst, in.C.reg)
	}
	for _, a := range in.Args {
		if a.IsReg() {
			dst = append(dst, a.reg)
		}
	}
	return dst
}

// NumRegReads returns the number of register operands the instruction reads.
func (in *Instr) NumRegReads() int {
	n := 0
	if in.A.IsReg() {
		n++
	}
	if in.B.IsReg() {
		n++
	}
	if in.C.IsReg() {
		n++
	}
	for _, a := range in.Args {
		if a.IsReg() {
			n++
		}
	}
	return n
}

// ReadSlot returns a pointer to the i-th register operand (0-based, in
// RegReads order), so an injector can corrupt the register it names. It
// returns the register id; the caller flips bits in the frame's register
// file. It panics if i is out of range.
func (in *Instr) ReadSlot(i int) Reg {
	if in.A.IsReg() {
		if i == 0 {
			return in.A.reg
		}
		i--
	}
	if in.B.IsReg() {
		if i == 0 {
			return in.B.reg
		}
		i--
	}
	if in.C.IsReg() {
		if i == 0 {
			return in.C.reg
		}
		i--
	}
	for _, a := range in.Args {
		if a.IsReg() {
			if i == 0 {
				return a.reg
			}
			i--
		}
	}
	panic("ir: ReadSlot index out of range")
}

// Func is a function: a flat instruction sequence with PC-based branches.
// Arguments arrive in registers 0..NumArgs-1.
type Func struct {
	Name    string
	NumArgs int
	NumRegs int
	Code    []Instr
}

// Program is a complete executable module.
type Program struct {
	Name    string
	Funcs   []*Func
	Globals []byte // initial image of the global data segment
	Main    int    // index into Funcs of the entry point
}

// FuncByName returns the index of the named function, or -1.
func (p *Program) FuncByName(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// StaticInstrs returns the total static instruction count.
func (p *Program) StaticInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Code)
	}
	return n
}

// Validate checks structural invariants: branch targets in range, register
// ids within the frame, calls referencing existing functions with matching
// arity, widths present where required, and a terminated instruction
// stream. It also populates the per-instruction caches the VM relies on
// (Instr.NR, Instr.DW, the dispatch token Instr.Tok, and the
// superinstruction annotation Instr.FTok), so a hand-assembled Program
// must pass through Validate before it is run. Programs produced by the
// builder are validated at Build time.
func (p *Program) Validate() error {
	if p.Main < 0 || p.Main >= len(p.Funcs) {
		return fmt.Errorf("ir: main index %d out of range (%d funcs)", p.Main, len(p.Funcs))
	}
	for fi, f := range p.Funcs {
		if err := p.validateFunc(f); err != nil {
			return fmt.Errorf("ir: func %d (%s): %w", fi, f.Name, err)
		}
	}
	return nil
}

func (p *Program) validateFunc(f *Func) error {
	if f.NumArgs > f.NumRegs {
		return fmt.Errorf("%d args but only %d regs", f.NumArgs, f.NumRegs)
	}
	if len(f.Code) == 0 {
		return fmt.Errorf("empty body")
	}
	checkOperand := func(pc int, o Operand) error {
		if o.IsReg() && int(o.reg) >= f.NumRegs {
			return fmt.Errorf("pc %d: register r%d out of range (%d regs)", pc, o.reg, f.NumRegs)
		}
		return nil
	}
	for pc := range f.Code {
		in := &f.Code[pc]
		nr := in.NumRegReads()
		if nr > 255 {
			// NR is a uint8 cache; a wider count would silently truncate
			// the VM's candidate accounting.
			return fmt.Errorf("pc %d: %d register-read operands exceed the limit of 255", pc, nr)
		}
		in.NR = uint8(nr)
		in.DW = 0
		if in.Dst != NoReg && in.Op != OpCall {
			in.DW = 1
		}
		in.Tok = tokenOf(in)
		if in.Dst != NoReg && int(in.Dst) >= f.NumRegs {
			return fmt.Errorf("pc %d: dst r%d out of range (%d regs)", pc, in.Dst, f.NumRegs)
		}
		for _, o := range []Operand{in.A, in.B, in.C} {
			if err := checkOperand(pc, o); err != nil {
				return err
			}
		}
		for _, o := range in.Args {
			if err := checkOperand(pc, o); err != nil {
				return err
			}
		}
		switch in.Op {
		case OpBr, OpCondBr:
			if in.Off < 0 || in.Off >= int64(len(f.Code)) {
				return fmt.Errorf("pc %d: branch target %d out of range", pc, in.Off)
			}
		case OpCall:
			if in.Off < 0 || in.Off >= int64(len(p.Funcs)) {
				return fmt.Errorf("pc %d: call target %d out of range", pc, in.Off)
			}
			callee := p.Funcs[in.Off]
			if len(in.Args) != callee.NumArgs {
				return fmt.Errorf("pc %d: call %s with %d args, want %d",
					pc, callee.Name, len(in.Args), callee.NumArgs)
			}
		case OpAlloca:
			if in.Off <= 0 {
				return fmt.Errorf("pc %d: alloca size %d must be positive", pc, in.Off)
			}
		case OpLoad, OpStore, OpOut, OpTrunc, OpZExt, OpSExt, OpSIToFP, OpFPToSI,
			OpAdd, OpSub, OpMul, OpUDiv, OpSDiv, OpURem, OpSRem,
			OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr,
			OpICmpEQ, OpICmpNE, OpICmpULT, OpICmpULE, OpICmpSLT, OpICmpSLE:
			if in.W.Bits() == 0 {
				return fmt.Errorf("pc %d: %s requires a width", pc, in.Op)
			}
		}
	}
	last := f.Code[len(f.Code)-1]
	if last.Op != OpRet && last.Op != OpBr && last.Op != OpAbort {
		return fmt.Errorf("function does not end in ret/br/abort (got %s)", last.Op)
	}
	fuseFunc(f)
	return nil
}
