package ir

import "testing"

// mk builds a test instruction with absent operands explicitly marked, the
// way the builder emits them.
func mk(op Op, w Width, dst Reg, ops ...Operand) Instr {
	in := Instr{Op: op, W: w, Dst: dst, A: noneOperand, B: noneOperand, C: noneOperand}
	if len(ops) > 0 {
		in.A = ops[0]
	}
	if len(ops) > 1 {
		in.B = ops[1]
	}
	if len(ops) > 2 {
		in.C = ops[2]
	}
	return in
}

func TestReadSlotRoles(t *testing.T) {
	tests := []struct {
		name string
		in   Instr
		slot int
		want SlotRole
	}{
		{"load addr", mk(OpLoad, W32, 1, R(2)), 0, RoleAddress},
		{"store addr", mk(OpStore, W32, NoReg, R(2), R(3)), 0, RoleAddress},
		{"store value", mk(OpStore, W32, NoReg, R(2), R(3)), 1, RoleData},
		{"store value 64", mk(OpStore, W64, NoReg, R(2), R(3)), 1, RoleOther},
		{"condbr", mk(OpCondBr, 0, NoReg, R(2)), 0, RoleControl},
		{"select cond", mk(OpSelect, W64, 1, R(2), R(3), R(4)), 0, RoleControl},
		{"fadd", mk(OpFAdd, W64, 1, R(2), R(3)), 0, RoleFloat},
		{"i32 add", mk(OpAdd, W32, 1, R(2), R(3)), 0, RoleData},
		{"i64 add (address arith)", mk(OpAdd, W64, 1, R(2), R(3)), 0, RoleAddress},
		{"mov", mk(OpMov, W64, 1, R(2)), 0, RoleOther},
		{"out data", mk(OpOut, W32, NoReg, R(2)), 0, RoleData},
	}
	for _, tt := range tests {
		if got := ReadSlotRole(&tt.in, tt.slot); got != tt.want {
			t.Errorf("%s: role = %v, want %v", tt.name, got, tt.want)
		}
	}
	// Call arguments are RoleOther.
	call := mk(OpCall, W64, 1)
	call.Args = []Operand{R(4)}
	if got := ReadSlotRole(&call, 0); got != RoleOther {
		t.Errorf("call arg role = %v, want other", got)
	}
}

func TestDestRoles(t *testing.T) {
	tests := []struct {
		name string
		in   Instr
		want SlotRole
	}{
		{"alloca", mk(OpAlloca, W64, 1), RoleAddress},
		{"fmul", mk(OpFMul, W64, 1, R(2), R(3)), RoleFloat},
		{"icmp", mk(OpICmpEQ, W32, 1, R(2), R(3)), RoleControl},
		{"i32 add", mk(OpAdd, W32, 1, R(2), R(3)), RoleData},
		{"i64 add", mk(OpAdd, W64, 1, R(2), R(3)), RoleAddress},
		{"load32", mk(OpLoad, W32, 1, R(2)), RoleData},
		{"load64", mk(OpLoad, W64, 1, R(2)), RoleOther},
		{"mov", mk(OpMov, W64, 1, R(2)), RoleOther},
		{"store (no dst)", mk(OpStore, W32, NoReg, R(2), R(3)), 0},
	}
	for _, tt := range tests {
		if got := DestRole(&tt.in); got != tt.want {
			t.Errorf("%s: dest role = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestRoleStrings(t *testing.T) {
	for _, r := range []SlotRole{RoleAddress, RoleData, RoleControl, RoleFloat, RoleOther} {
		if r.String() == "" || r.String()[0] == 'S' {
			t.Errorf("role %d has no name", r)
		}
	}
}
