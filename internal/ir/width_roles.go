package ir

// This file defines the effective bit width of each register an instruction
// reads or writes. The fault injector flips bits uniformly within that
// width, mirroring LLFI, which flips bits within the data width of the
// targeted LLVM IR register (an i32 value yields 32 candidate bits, an i1
// branch condition a single bit, a pointer 64 bits).

// W1 models LLVM's i1: comparison results and branch conditions. Flipping
// an i1 register always inverts it. W1 is only used to describe injection
// widths; instructions themselves carry W8..W64.
const W1 Width = 200

// DestWidth returns the effective width of the register written by in, for
// inject-on-write bit sampling. It returns 0 if in writes no register.
func DestWidth(in *Instr) Width {
	if !in.HasDst() {
		return 0
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpUDiv, OpSDiv, OpURem, OpSRem,
		OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr, OpTrunc, OpFPToSI, OpLoad:
		return in.W
	case OpICmpEQ, OpICmpNE, OpICmpULT, OpICmpULE, OpICmpSLT, OpICmpSLE,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE:
		return W1
	default:
		// Float arithmetic, moves, selects, allocas, calls, extensions.
		return W64
	}
}

// SlotWidth returns the effective width of the slot-th register operand
// read by in (in RegReads order), for inject-on-read bit sampling.
func SlotWidth(in *Instr, slot int) Width {
	if in.A.IsReg() {
		if slot == 0 {
			return widthOfA(in)
		}
		slot--
	}
	if in.B.IsReg() {
		if slot == 0 {
			return widthOfB(in)
		}
		slot--
	}
	if in.C.IsReg() {
		if slot == 0 {
			return W64 // OpSelect alternative value
		}
		slot--
	}
	// Call arguments: full payload width (they may carry addresses).
	return W64
}

func widthOfA(in *Instr) Width {
	switch in.Op {
	case OpLoad, OpStore:
		return W64 // address operand
	case OpCondBr:
		return W1 // branch condition (i1)
	case OpSelect:
		return W1 // select condition (i1)
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpFAbs, OpFSqrt,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFPToSI:
		return W64
	case OpMov, OpRet, OpBitcast:
		return W64
	case OpAdd, OpSub, OpMul, OpUDiv, OpSDiv, OpURem, OpSRem,
		OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr,
		OpICmpEQ, OpICmpNE, OpICmpULT, OpICmpULE, OpICmpSLT, OpICmpSLE,
		OpSExt, OpZExt, OpTrunc, OpSIToFP, OpOut:
		return in.W
	default:
		return W64
	}
}

func widthOfB(in *Instr) Width {
	switch in.Op {
	case OpStore:
		return in.W // stored value
	case OpSelect:
		return W64 // selected value
	case OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE:
		return W64
	default:
		return in.W
	}
}
