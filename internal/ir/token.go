package ir

// This file defines the dispatch metadata consumed by the VM's
// token-threaded interpreter. Validate resolves every instruction to a
// dispatch Token — a per-opcode handler index, specialized by operand
// kind and width where that removes per-execution branches — and runs the
// superinstruction fusion pass, which annotates instructions whose
// adjacent successor can be executed in the same dispatch round.
//
// Tokens and fusion kinds are pure annotations: the instruction stream,
// its PCs, and its injection-candidate accounting are unchanged. The VM
// may execute an annotated pair fused (one dispatch, two instructions) or
// unfused (two dispatches) and must produce bit-identical machine state
// either way; the fusion pass only asserts legality, never semantics.

// Token indexes the VM's handler table. It is resolved once per
// instruction at validation time, so per-execution dispatch is a single
// table load: the token already encodes choices — opcode, operand
// immediacy, width — that the interpreter would otherwise re-test on
// every dynamic execution.
type Token uint8

// Dispatch tokens. The generic per-opcode tokens mirror the opcode set;
// the specialized tokens at the end resolve operand kind and width for
// the hottest shapes (64-bit address arithmetic, register-addressed
// memory access, register moves).
const (
	// TokInvalid marks an unvalidated instruction; the VM's handler for
	// it raises an abort trap, mirroring the old switch's default case.
	TokInvalid Token = iota

	TokAdd
	TokSub
	TokMul
	TokAnd
	TokOr
	TokXor
	TokShl
	TokLShr
	TokAShr
	TokDiv // UDiv/SDiv/URem/SRem
	TokFBin
	TokFNeg
	TokFAbs
	TokFSqrt
	TokSExt
	TokZTrunc // ZExt/Trunc (identical semantics: mask to width)
	TokSIToFP
	TokFPToSI
	TokMov // Mov/Bitcast
	TokCmpEQ
	TokCmpNE
	TokCmpULT
	TokCmpULE
	TokCmpSLT
	TokCmpSLE
	TokFCmp
	TokSelect
	TokLoad
	TokStore
	TokAlloca
	TokBr
	TokCondBr
	TokCall
	TokRet
	TokOut
	TokAbort

	// Specialized tokens: operand kinds and widths resolved at validation
	// time, so the handlers skip the imm/reg tests and width masking the
	// generic handlers pay per execution.
	TokAdd64RR    // add.64 dst, reg, reg — address arithmetic
	TokAdd64RI    // add.64 dst, reg, imm — address/induction arithmetic
	TokAdd32RR    // add.32 dst, reg, reg — index arithmetic
	TokAdd32RI    // add.32 dst, reg, imm — index/induction arithmetic
	TokXor64RR    // xor.64 dst, reg, reg
	TokCmpSLT32RR // icmp.slt.32 dst, reg, reg — loop/compare bounds
	TokLoadR      // load with a register address operand
	TokStoreRR    // store with register address and register value
	TokMovR       // mov/bitcast from a register

	// NumTokens sizes token-indexed tables.
	NumTokens
)

// FuseKind classifies a superinstruction: an instruction pair the VM may
// execute in one dispatch round. The annotation lives on the pair's first
// instruction and is only consulted when control is at that instruction,
// so branching into the middle of a pair simply executes the second half
// on its own — pair annotations may overlap freely.
type FuseKind uint8

// Fusion kinds, from generic to most specialized.
const (
	// FuseNone marks an instruction that must dispatch alone: control
	// flow, calls/returns, aborts, the last instruction of a function,
	// or a successor that is itself unfusable.
	FuseNone FuseKind = iota
	// FusePair marks a legal but unspecialized pair: both halves satisfy
	// the fusion legality rules, but no dedicated superinstruction exists
	// yet, so the VM executes them in separate dispatch rounds. The
	// annotation documents pairability and is the candidate set for
	// future specialized kinds (see the ROADMAP's dispatch follow-ups).
	FusePair
	// Kinds above FusePair execute both halves in one dispatch round.

	// FuseAddLoad is add.64 feeding the address of the next load.
	FuseAddLoad
	// FuseAddStore is add.64 feeding the address of the next store.
	FuseAddStore
	// FuseMulAdd is mul.64 feeding an operand of the next add.64 — the
	// address-scaling idiom (base + index*size) that profiling showed as
	// the hottest annotation-only pair shape.
	FuseMulAdd
	// FuseShlAnd is a shift-left followed by an and — the shift-and-mask
	// idiom of FFT's bit-reversal loop (rev = rev<<1 | v&1 runs it once
	// per bit per element), the hottest remaining annotation-only pair in
	// the FFT profile.
	FuseShlAnd
	// FuseAndLshr is an and followed by a logical shift-right — the
	// mask-and-shift idiom of CRC32's table-derivation loop (lsb = c&1
	// ahead of c>>1 runs once per bit per table entry), the ROADMAP's
	// residual dispatch follow-up.
	FuseAndLshr
	// FuseCmpEQBr .. FuseCmpSLEBr are an integer compare followed by a
	// conditional branch on the compare's destination register.
	FuseCmpEQBr
	FuseCmpNEBr
	FuseCmpULTBr
	FuseCmpULEBr
	FuseCmpSLTBr
	FuseCmpSLEBr
	// FuseMov is a register-to-register mov (or bitcast) followed by any
	// fusible instruction — the mov+arith superinstruction: the move
	// executes inline and its successor dispatches in the same round.
	FuseMov
	// FuseCmpCmpBr is an integer compare followed by another integer
	// compare followed by a conditional branch on the second compare's
	// result — the three-wide loop-head idiom the builder's JmpIfNot
	// expands to (cond; eq cond,0; condbr), the last ROADMAP dispatch
	// residual. The annotation lives on the first compare; the second
	// keeps its own cmp+br pair annotation for control entering mid-chain.
	FuseCmpCmpBr

	// NumFuseKinds sizes fusion-kind-indexed tables.
	NumFuseKinds
)

// tokenOf resolves an instruction's dispatch token. Called by Validate.
func tokenOf(in *Instr) Token {
	switch in.Op {
	case OpAdd:
		if in.W == W64 && in.A.IsReg() {
			if in.B.IsReg() {
				return TokAdd64RR
			}
			if in.B.IsImm() {
				return TokAdd64RI
			}
		}
		if in.W == W32 && in.A.IsReg() {
			if in.B.IsReg() {
				return TokAdd32RR
			}
			if in.B.IsImm() {
				return TokAdd32RI
			}
		}
		return TokAdd
	case OpSub:
		return TokSub
	case OpMul:
		return TokMul
	case OpAnd:
		return TokAnd
	case OpOr:
		return TokOr
	case OpXor:
		if in.W == W64 && in.A.IsReg() && in.B.IsReg() {
			return TokXor64RR
		}
		return TokXor
	case OpShl:
		return TokShl
	case OpLShr:
		return TokLShr
	case OpAShr:
		return TokAShr
	case OpUDiv, OpSDiv, OpURem, OpSRem:
		return TokDiv
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		return TokFBin
	case OpFNeg:
		return TokFNeg
	case OpFAbs:
		return TokFAbs
	case OpFSqrt:
		return TokFSqrt
	case OpSExt:
		return TokSExt
	case OpZExt, OpTrunc:
		return TokZTrunc
	case OpSIToFP:
		return TokSIToFP
	case OpFPToSI:
		return TokFPToSI
	case OpMov, OpBitcast:
		if in.A.IsReg() {
			return TokMovR
		}
		return TokMov
	case OpICmpEQ:
		return TokCmpEQ
	case OpICmpNE:
		return TokCmpNE
	case OpICmpULT:
		return TokCmpULT
	case OpICmpULE:
		return TokCmpULE
	case OpICmpSLT:
		if in.W == W32 && in.A.IsReg() && in.B.IsReg() {
			return TokCmpSLT32RR
		}
		return TokCmpSLT
	case OpICmpSLE:
		return TokCmpSLE
	case OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE:
		return TokFCmp
	case OpSelect:
		return TokSelect
	case OpLoad:
		if in.A.IsReg() {
			return TokLoadR
		}
		return TokLoad
	case OpStore:
		if in.A.IsReg() && in.B.IsReg() {
			return TokStoreRR
		}
		return TokStore
	case OpAlloca:
		return TokAlloca
	case OpBr:
		return TokBr
	case OpCondBr:
		return TokCondBr
	case OpCall:
		return TokCall
	case OpRet:
		return TokRet
	case OpOut:
		return TokOut
	case OpAbort:
		return TokAbort
	}
	return TokInvalid
}

// fusibleHead reports whether op may head a superinstruction: it must be
// straight-line (control stays at pc+1 on success), keep the frame stack
// unchanged, and fail only by halting the run (trap or output limit) —
// exactly the shapes whose mid-pair accounting the VM can reproduce
// unfused.
func fusibleHead(op Op) bool {
	switch op {
	case OpBr, OpCondBr, OpCall, OpRet, OpAbort:
		return false
	}
	return true
}

// fusibleTail reports whether op may close a superinstruction. Branches
// are allowed (they end the pair by redirecting control); calls and
// returns are not, because they change the frame the dispatch loop holds.
func fusibleTail(op Op) bool {
	switch op {
	case OpCall, OpRet:
		return false
	}
	return true
}

// fuseKind classifies the pair (a, b) at adjacent PCs, returning the most
// specialized legal superinstruction, or FuseNone.
func fuseKind(a, b *Instr) FuseKind {
	if !fusibleHead(a.Op) || !fusibleTail(b.Op) {
		return FuseNone
	}
	// cmp + condbr on the compare's result register.
	if b.Op == OpCondBr && a.Dst != NoReg && b.A.IsReg() && b.A.reg == a.Dst {
		switch a.Op {
		case OpICmpEQ:
			return FuseCmpEQBr
		case OpICmpNE:
			return FuseCmpNEBr
		case OpICmpULT:
			return FuseCmpULTBr
		case OpICmpULE:
			return FuseCmpULEBr
		case OpICmpSLT:
			return FuseCmpSLTBr
		case OpICmpSLE:
			return FuseCmpSLEBr
		}
	}
	// add.64 feeding the next memory access's address operand.
	if a.Op == OpAdd && a.W == W64 && a.Dst != NoReg {
		if b.Op == OpLoad && b.A.IsReg() && b.A.reg == a.Dst {
			return FuseAddLoad
		}
		if b.Op == OpStore && b.A.IsReg() && b.A.reg == a.Dst {
			return FuseAddStore
		}
	}
	// mul.64 feeding an operand of the next add.64 (address scaling).
	if a.Op == OpMul && a.W == W64 && a.Dst != NoReg && b.Op == OpAdd && b.W == W64 {
		if (b.A.IsReg() && b.A.reg == a.Dst) || (b.B.IsReg() && b.B.reg == a.Dst) {
			return FuseMulAdd
		}
	}
	// shl followed by and — the shift-and-mask idiom of FFT's
	// bit-reversal loop (rev<<1 ahead of v&1). The halves need not be
	// dependent: both run the generic width-masked bodies in order, and
	// neither can trap, so any adjacent pair is legal.
	if a.Op == OpShl && b.Op == OpAnd {
		return FuseShlAnd
	}
	// and followed by lshr — the mask-and-shift idiom of CRC32's table
	// loop (c&1 ahead of c>>1). Like shl+and, the halves need not be
	// dependent and neither can trap, so any adjacent pair is legal.
	if a.Op == OpAnd && b.Op == OpLShr {
		return FuseAndLshr
	}
	// Register move + anything: the mov executes inline ahead of its
	// successor's dispatch.
	if (a.Op == OpMov || a.Op == OpBitcast) && a.A.IsReg() && a.Dst != NoReg {
		return FuseMov
	}
	return FusePair
}

// fuse runs the superinstruction fusion pass over one function: every
// instruction whose successor can legally share its dispatch round is
// annotated with the pair's FuseKind. Annotations may overlap (pc and
// pc+1 can both head pairs); the VM consults only the annotation of the
// instruction control is at.
func fuseFunc(f *Func) {
	for pc := 0; pc+1 < len(f.Code); pc++ {
		f.Code[pc].FTok = fuseKind(&f.Code[pc], &f.Code[pc+1])
	}
	f.Code[len(f.Code)-1].FTok = FuseNone
	// Three-wide post-pass: an integer compare whose two successors are
	// another integer compare and a conditional branch on the second
	// compare's result. The annotation overrides the head's pair kind;
	// the middle compare keeps its own cmp+br annotation, so control
	// branching into the chain's interior still fuses the remaining pair.
	for pc := 0; pc+2 < len(f.Code); pc++ {
		a, b, c := &f.Code[pc], &f.Code[pc+1], &f.Code[pc+2]
		if isICmp(a.Op) && isICmp(b.Op) && c.Op == OpCondBr &&
			a.Dst != NoReg && b.Dst != NoReg && c.A.IsReg() && c.A.reg == b.Dst {
			a.FTok = FuseCmpCmpBr
		}
	}
}

// isICmp reports whether op is one of the six integer compares.
func isICmp(op Op) bool {
	switch op {
	case OpICmpEQ, OpICmpNE, OpICmpULT, OpICmpULE, OpICmpSLT, OpICmpSLE:
		return true
	}
	return false
}

// RegRaw returns the operand's register id without checking the operand
// kind. Only dispatch handlers whose token guarantees a register operand
// (resolved at validation time) may use it.
func (o Operand) RegRaw() Reg { return o.reg }

// ImmRaw returns the operand's raw immediate payload without checking the
// operand kind. Only dispatch handlers whose token guarantees an
// immediate operand may use it.
func (o Operand) ImmRaw() uint64 { return o.imm }
