package memfault

import (
	"fmt"

	"multiflip/internal/core"
	"multiflip/internal/report"
	"multiflip/internal/stats"
)

// SweepTable runs memory-fault campaigns over a list of per-word flip
// counts and renders the outcome mix per count — the extension study's
// equivalent of Fig 2 for memory words.
func SweepTable(target *core.Target, bitsList []int, n int, seed uint64) (*report.Table, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Extension: multi-bit faults in memory words (%s, n=%d per row)",
			target.Name, n),
		Columns: []string{"bits/word", "ECC outcome", "Benign%", "Detection%", "SDC%"},
	}
	for _, bits := range bitsList {
		res, err := Run(Spec{
			Target: target,
			Bits:   bits,
			N:      n,
			Seed:   seed,
		})
		if err != nil {
			return nil, err
		}
		ecc := "escapes ECC"
		switch bits {
		case 1:
			ecc = "corrected"
		case 2:
			ecc = "detected"
		}
		t.AddRow(fmt.Sprintf("%d", bits), ecc,
			stats.FormatPct(res.Pct(core.OutcomeBenign)),
			stats.FormatPct(res.DetectionPct()),
			stats.FormatPct(res.SDCPct()))
	}
	t.Notes = append(t.Notes,
		"Rows with 1-2 bits/word are the baseline ECC would handle; rows with >= 3 bits model the undetected faults of the paper's future work (§V).",
		"Memory faults are not liveness-filtered, so a high Benign share (never-read words) is expected.")
	return t, nil
}
