package memfault_test

import (
	"strings"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/memfault"
	"multiflip/internal/prog"
)

func target(t *testing.T, name string) *core.Target {
	t.Helper()
	b, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tg, err := core.NewTarget(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestRunBasic(t *testing.T) {
	tg := target(t, "CRC32")
	res, err := memfault.Run(memfault.Spec{Target: tg, Bits: 3, N: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 300 {
		t.Fatalf("N = %d", res.N())
	}
	// The input buffer dominates CRC32's globals and is read once, so
	// corrupting it must produce SDCs (the checksum changes) while flips
	// in already-consumed data stay benign.
	if res.Counts[core.OutcomeSDC] == 0 {
		t.Fatal("no SDCs from memory corruption of a checksummed buffer")
	}
	if res.Counts[core.OutcomeBenign] == 0 {
		t.Fatal("no benign outcomes; memory faults should often be masked")
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	tg := target(t, "histo")
	run := func(workers int) [core.NumOutcomes + 1]int {
		res, err := memfault.Run(memfault.Spec{
			Target: tg, Bits: 3, N: 200, Seed: 9, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counts
	}
	if run(1) != run(4) {
		t.Fatal("memory-fault campaign not deterministic across worker counts")
	}
}

func TestMoreBitsNoFewerSDCsOnAverage(t *testing.T) {
	// Not a strict monotonicity law, but across a read-heavy workload a
	// 16-bit word corruption must corrupt output at least as often as a
	// 1-bit corruption within noise; assert a loose ordering.
	tg := target(t, "sha")
	one, err := memfault.Run(memfault.Spec{Target: tg, Bits: 1, N: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	many, err := memfault.Run(memfault.Spec{Target: tg, Bits: 16, N: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if many.SDCPct()+10 < one.SDCPct() {
		t.Fatalf("16-bit word faults produce far fewer SDCs (%v%%) than 1-bit (%v%%)",
			many.SDCPct(), one.SDCPct())
	}
}

func TestValidation(t *testing.T) {
	tg := target(t, "CRC32")
	bad := []memfault.Spec{
		{Bits: 3, N: 10},              // no target
		{Target: tg, Bits: 0, N: 10},  // bits too small
		{Target: tg, Bits: 65, N: 10}, // bits too large
		{Target: tg, Bits: 3, N: 0},   // no N
	}
	for i, s := range bad {
		if _, err := memfault.Run(s); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestSweepTable(t *testing.T) {
	tg := target(t, "CRC32")
	tb, err := memfault.SweepTable(tg, []int{1, 2, 3, 8}, 120, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"bits/word", "corrected", "detected", "escapes ECC", "SDC%"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
}
