package memfault

// SetExperimentHook installs the worker-claim test seam and returns a
// restore function. The error-propagation tests use it to hold workers at
// a barrier so several fail concurrently.
func SetExperimentHook(h func(idx int)) (restore func()) {
	experimentHook = h
	return func() { experimentHook = nil }
}
