package memfault_test

import (
	"reflect"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/memfault"
	"multiflip/internal/prog"
)

// diffBits spans the ECC regimes: correctable (1), detectable (2), and
// ECC-escaping (3, 5) per-word flip counts.
var diffBits = []int{1, 2, 3, 5}

// TestMemFaultSnapshotDifferential mirrors core's snapshot_diff_test for
// memory-fault campaigns: for several workloads (including histo, whose
// global segment exceeds the VM's eager-restore bound and so takes the
// lazy copy-on-write resume path) and every ECC regime, a campaign
// fast-forwarded by corruption instant must produce per-experiment
// outcomes bit-identical to a full-replay campaign.
func TestMemFaultSnapshotDifferential(t *testing.T) {
	const (
		n    = 120
		seed = 4242
	)
	for _, name := range []string{"CRC32", "histo", "sha", "qsort"} {
		tg := target(t, name)
		if len(tg.Snapshots) == 0 {
			t.Fatalf("%s: target has no golden-run snapshots", name)
		}
		for _, bits := range diffBits {
			spec := memfault.Spec{
				Target: tg,
				Bits:   bits,
				N:      n,
				Seed:   seed,
				Record: true,
			}
			fast, err := memfault.Run(spec)
			if err != nil {
				t.Fatalf("%s bits=%d: %v", name, bits, err)
			}
			spec.NoSnapshots = true
			slow, err := memfault.Run(spec)
			if err != nil {
				t.Fatalf("%s bits=%d (no snapshots): %v", name, bits, err)
			}
			if !reflect.DeepEqual(fast.Outcomes, slow.Outcomes) {
				t.Errorf("%s bits=%d: outcomes diverge between snapshot and full-replay campaigns",
					name, bits)
				continue
			}
			if fast.Counts != slow.Counts {
				t.Errorf("%s bits=%d: aggregates diverge between snapshot and full-replay campaigns",
					name, bits)
			}
		}
	}
}

// TestMemFaultSnapshotIntervalInvariance checks that memory-fault results
// do not depend on where checkpoints happen to fall: targets prepared
// with very different snapshot intervals (and the snapshot-free target)
// all yield the same outcomes.
func TestMemFaultSnapshotIntervalInvariance(t *testing.T) {
	const (
		n    = 150
		seed = 7
	)
	b, err := prog.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	variants := []core.TargetOptions{
		{NoSnapshots: true},
		{SnapshotInterval: 13, MaxSnapshots: 4}, // tiny interval, heavy thinning
		{SnapshotInterval: 800},
		{SnapshotInterval: 1 << 30}, // beyond the golden run: no snapshots land
	}
	var baseline *memfault.Result
	for i, topts := range variants {
		tg, err := core.NewTargetOpts("CRC32", p, topts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := memfault.Run(memfault.Spec{
			Target: tg, Bits: 3, N: n, Seed: seed, Record: true,
		})
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if i == 0 {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(res.Outcomes, baseline.Outcomes) {
			t.Errorf("variant %d: outcomes differ from full-replay baseline", i)
		}
	}
}
