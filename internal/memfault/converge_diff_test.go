package memfault_test

import (
	"os"
	"reflect"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/memfault"
	"multiflip/internal/prog"
)

// TestMemFaultConvergeDifferential checks memory-fault campaigns are
// invariant under convergence-gated early termination and memoization:
// corrupted words that are overwritten before being read reconverge with
// the golden run, and the outcome mix is bit-identical either way.
func TestMemFaultConvergeDifferential(t *testing.T) {
	earlyExits := 0
	for _, name := range []string{"CRC32", "sha", "histo", "qsort"} {
		bench, err := prog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := bench.Build()
		if err != nil {
			t.Fatal(err)
		}
		target, err := core.NewTarget(name, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, bits := range []int{1, 3, 8} {
			spec := memfault.Spec{
				Target: target,
				Bits:   bits,
				N:      50,
				Seed:   11,
				Record: true,
			}
			fast, err := memfault.Run(spec)
			if err != nil {
				t.Fatalf("%s bits=%d: %v", name, bits, err)
			}
			spec.NoConverge = true
			slow, err := memfault.Run(spec)
			if err != nil {
				t.Fatalf("%s bits=%d (noconverge): %v", name, bits, err)
			}
			if slow.Converged != 0 || slow.MemoHits != 0 {
				t.Fatalf("%s bits=%d: NoConverge campaign reported early exits", name, bits)
			}
			earlyExits += fast.Converged + fast.MemoHits
			if !reflect.DeepEqual(fast.Outcomes, slow.Outcomes) {
				t.Errorf("%s bits=%d: outcomes diverge between converge and no-converge campaigns", name, bits)
			}
			if fast.Counts != slow.Counts {
				t.Errorf("%s bits=%d: tallies diverge between converge and no-converge campaigns", name, bits)
			}
		}
	}
	if earlyExits == 0 && os.Getenv("MULTIFLIP_NOCONVERGE") == "" {
		t.Error("no memory-fault experiment converged or hit the memo; never-read corruptions should")
	}
}

// The concurrent-failure (errors.Join) test moved to the engine seam
// suite in internal/core/engine_test.go: it is an engine property,
// written once against core.Engine and run for all three fault models
// (including this package's Model).
