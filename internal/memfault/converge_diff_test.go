package memfault_test

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/memfault"
	"multiflip/internal/prog"
)

// TestMemFaultConvergeDifferential checks memory-fault campaigns are
// invariant under convergence-gated early termination and memoization:
// corrupted words that are overwritten before being read reconverge with
// the golden run, and the outcome mix is bit-identical either way.
func TestMemFaultConvergeDifferential(t *testing.T) {
	earlyExits := 0
	for _, name := range []string{"CRC32", "sha", "histo", "qsort"} {
		bench, err := prog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := bench.Build()
		if err != nil {
			t.Fatal(err)
		}
		target, err := core.NewTarget(name, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, bits := range []int{1, 3, 8} {
			spec := memfault.Spec{
				Target: target,
				Bits:   bits,
				N:      50,
				Seed:   11,
				Record: true,
			}
			fast, err := memfault.Run(spec)
			if err != nil {
				t.Fatalf("%s bits=%d: %v", name, bits, err)
			}
			spec.NoConverge = true
			slow, err := memfault.Run(spec)
			if err != nil {
				t.Fatalf("%s bits=%d (noconverge): %v", name, bits, err)
			}
			if slow.Converged != 0 || slow.MemoHits != 0 {
				t.Fatalf("%s bits=%d: NoConverge campaign reported early exits", name, bits)
			}
			earlyExits += fast.Converged + fast.MemoHits
			if !reflect.DeepEqual(fast.Outcomes, slow.Outcomes) {
				t.Errorf("%s bits=%d: outcomes diverge between converge and no-converge campaigns", name, bits)
			}
			if fast.Counts != slow.Counts {
				t.Errorf("%s bits=%d: tallies diverge between converge and no-converge campaigns", name, bits)
			}
		}
	}
	if earlyExits == 0 && os.Getenv("MULTIFLIP_NOCONVERGE") == "" {
		t.Error("no memory-fault experiment converged or hit the memo; never-read corruptions should")
	}
}

// TestMemFaultJoinsConcurrentErrors mirrors the campaign error-join test:
// both workers fail concurrently (a barrier holds them until both have
// claimed), and both failures surface via errors.Join.
func TestMemFaultJoinsConcurrentErrors(t *testing.T) {
	target := target(t, "CRC32")
	other := target2(t, "qsort")
	broken := *target
	broken.Snapshots = other.Snapshots
	broken.Trace = nil
	var barrier sync.WaitGroup
	barrier.Add(2)
	restore := memfault.SetExperimentHook(func(idx int) {
		barrier.Done()
		barrier.Wait()
	})
	defer restore()
	_, err := memfault.Run(memfault.Spec{
		Target:  &broken,
		Bits:    3,
		N:       2,
		Seed:    1,
		Workers: 2,
	})
	if err == nil {
		t.Fatal("memfault campaign on a broken target succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "experiment 0") || !strings.Contains(msg, "experiment 1") {
		t.Errorf("joined error misses a worker's failure: %v", err)
	}
	var many interface{ Unwrap() []error }
	if !errors.As(err, &many) || len(many.Unwrap()) != 2 {
		t.Errorf("want a 2-error join, got %v", err)
	}
}

// target2 builds a second prepared workload (helper alongside target in
// memfault_test.go).
func target2(t *testing.T, name string) *core.Target {
	t.Helper()
	bench, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := core.NewTarget(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}
