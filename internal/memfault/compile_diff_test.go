package memfault_test

// The memory-fault leg of the compiled-tier differential suite: campaigns
// executed on the VM's generated native kernels must be bit-identical to
// NoCompile campaigns through the interpreter — per-experiment outcomes,
// tallies and (with Workers=1) the early-exit counters alike. The
// register and stuck-at legs live in internal/core, the VM-level suite in
// internal/vm.

import (
	"os"
	"reflect"
	"testing"

	"multiflip/internal/core"
	"multiflip/internal/memfault"
	"multiflip/internal/prog"
	"multiflip/internal/vm"
)

func TestMemFaultCompileDifferential(t *testing.T) {
	for _, name := range []string{"CRC32", "sha", "histo", "qsort"} {
		bench, err := prog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := bench.Build()
		if err != nil {
			t.Fatal(err)
		}
		if os.Getenv("MULTIFLIP_NOCOMPILE") == "" && !vm.Compiled(p) {
			t.Fatalf("%s: no compiled kernel engages; the differential below would compare the interpreter against itself (re-run go generate ./...)", name)
		}
		target, err := core.NewTarget(name, p)
		if err != nil {
			t.Fatal(err)
		}
		off, err := core.NewTargetOpts(name, p, core.TargetOptions{NoCompile: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, bits := range []int{1, 3, 8} {
			spec := memfault.Spec{
				Target:  target,
				Bits:    bits,
				N:       50,
				Seed:    23,
				Workers: 1,
				Record:  true,
			}
			fast, err := memfault.Run(spec)
			if err != nil {
				t.Fatalf("%s bits=%d: %v", name, bits, err)
			}
			spec.Target = off
			spec.NoCompile = true
			slow, err := memfault.Run(spec)
			if err != nil {
				t.Fatalf("%s bits=%d (nocompile): %v", name, bits, err)
			}
			if !reflect.DeepEqual(fast.Outcomes, slow.Outcomes) {
				t.Errorf("%s bits=%d: outcomes diverge between compiled and nocompile campaigns", name, bits)
			}
			if fast.Counts != slow.Counts {
				t.Errorf("%s bits=%d: tallies diverge between compiled and nocompile campaigns", name, bits)
			}
			if fast.Converged != slow.Converged || fast.MemoHits != slow.MemoHits {
				t.Errorf("%s bits=%d: early-exit counters diverge between compiled (%d/%d) and nocompile (%d/%d) campaigns",
					name, bits, fast.Converged, fast.MemoHits, slow.Converged, slow.MemoHits)
			}
		}
	}
}
