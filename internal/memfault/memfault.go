// Package memfault implements the paper's stated future work (§V):
// multiple-bit faults in MEMORY rather than in registers.
//
// ECC memory corrects single-bit errors and detects double-bit errors per
// word, but three or more flipped bits in the same word can escape ECC
// entirely (§II-A). A memfault experiment therefore flips k distinct bits
// of one 64-bit word of the program's global data at a uniformly sampled
// dynamic instant and classifies the outcome with the same §III-E
// categories as the register campaigns.
//
// Unlike register faults, memory faults are not filtered for liveness: a
// corrupted word may never be read again, so low activation — a high
// Benign share — is part of the phenomenon being measured.
//
// The campaign itself — workers, batched claiming, sharded aggregation,
// convergence and the fault-equivalence memo — is the shared experiment
// engine in internal/core; this package contributes only the Model.
package memfault

import (
	"fmt"

	"multiflip/internal/core"
	"multiflip/internal/vm"
	"multiflip/internal/xrand"
)

// Spec describes a memory-fault campaign.
type Spec struct {
	// Target is the prepared workload.
	Target *core.Target
	// Bits is the number of distinct bits flipped in one 64-bit word.
	// 1 and 2 model faults ECC would catch (baseline); >= 3 model the
	// ECC-escaping faults the paper's future work targets.
	Bits int
	// N is the number of experiments.
	N int
	// Seed makes the campaign reproducible.
	Seed uint64
	// HangFactor scales the hang budget (0 = core.DefaultHangFactor).
	HangFactor uint64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// NoSnapshots forces every experiment to replay the fault-free prefix
	// from instruction 0 instead of fast-forwarding from the latest
	// golden-run snapshot at or before the corruption instant. Results are
	// bit-identical either way (the differential tests enforce it).
	NoSnapshots bool
	// NoFusion disables superinstruction execution in every experiment:
	// each instruction dispatches alone through the VM's handler table.
	// Results are bit-identical either way (the fusion differential tests
	// enforce it).
	NoFusion bool
	// NoCompile disables the compiled fast tier in every experiment:
	// event-horizon stretches execute through the token-threaded
	// interpreter instead of the workload's generated native kernel.
	// Results are bit-identical either way (the compile differential
	// tests enforce it).
	NoCompile bool
	// NoConverge disables convergence-gated early termination and the
	// fault-equivalence memo: every experiment runs to completion even
	// after its corrupted word is overwritten and the state reconverges
	// with the golden run. Results are bit-identical either way (the
	// convergence differential tests enforce it).
	NoConverge bool
	// Record keeps per-experiment outcomes in the result.
	Record bool
	// Classifier judges golden-vs-actual output when classifying
	// outcomes (nil = core.ExactClassifier).
	Classifier core.Classifier
	// OnFailure decides what happens to an experiment that fails or
	// panics at every supervision tier (core.FailFast aborts,
	// core.Quarantine poisons and keeps draining).
	OnFailure core.FailurePolicy
	// Service, when set (and naming a journal or directory), runs the
	// campaign as a durable job (see core.Service).
	Service *core.Service
}

// validate checks the engine-level fields; the model-level checks (bit
// count, global segment size) run once inside core.Engine.Run via
// Model.Validate.
func (s *Spec) validate() error {
	if s.Target == nil {
		return fmt.Errorf("memfault: campaign needs a target")
	}
	if s.N <= 0 {
		return fmt.Errorf("memfault: campaign needs N > 0")
	}
	return nil
}

// Result aggregates a memory-fault campaign.
type Result struct {
	// Spec echoes the campaign parameters.
	Spec Spec
	// Tally holds the per-outcome counts and derives the percentage and
	// confidence-interval statistics (N, Pct, SDCPct, DetectionPct, CI95),
	// shared with the register campaigns in internal/core.
	core.Tally
	// Converged counts experiments the VM terminated early because their
	// corrupted state reconverged with the golden run (deterministic up
	// to memo interception — see core.EngineResult.Converged).
	Converged int
	// MemoHits counts experiments resolved from the fault-equivalence
	// memo (dependent on worker scheduling; outcomes never are).
	MemoHits int
	// Outcomes holds per-experiment outcomes when Spec.Record is set.
	Outcomes []core.Outcome
	// Quarantined holds the repro records of experiments poisoned under
	// the Quarantine failure policy (empty is the healthy case).
	Quarantined []core.QuarantineRecord
}

// Model is the memory-word fault class expressed as an engine FaultModel:
// k distinct bits of one uniformly drawn 64-bit global word flipped at a
// uniformly sampled dynamic instant. Run wraps it; the type is exported
// so the engine seam tests — and campaigns composed directly on
// core.Engine — can construct it.
type Model struct {
	// Spec supplies the flip count and the snapshot knob; its
	// engine-level fields (N, Seed, Workers, ...) are ignored here.
	Spec *Spec
}

// Prefix implements core.FaultModel.
func (m *Model) Prefix() string { return "memfault" }

// Describe implements core.FaultModel.
func (m *Model) Describe() string { return fmt.Sprintf("memfault bits=%d", m.Spec.Bits) }

// Validate implements core.FaultModel.
func (m *Model) Validate(t *core.Target, n int) error {
	if m.Spec.Bits < 1 || m.Spec.Bits > 64 {
		return fmt.Errorf("memfault: bits must be in [1,64], got %d", m.Spec.Bits)
	}
	if len(t.Prog.Globals) < 8 {
		return fmt.Errorf("memfault: target %s has no global words", t.Name)
	}
	return nil
}

// Plan implements core.FaultModel: the corruption instant, the word and
// the bit mask all come from the experiment's private stream, and the
// experiment fast-forwards from the latest golden-run snapshot at or
// before the instant (the corruption is scheduled by dynamic instant
// rather than by candidate index). Experiment.Cand records the instant.
func (m *Model) Plan(t *core.Target, idx uint64, rng *xrand.Rand) core.Injection {
	words := uint64(len(t.Prog.Globals)) / 8
	flip := vm.MemFlip{
		AtDyn: rng.Uint64n(t.GoldenDyn),
		Word:  rng.Uint64n(words) * 8,
		Mask:  rng.DistinctBits(m.Spec.Bits, 64),
	}
	inj := core.Injection{Cand: flip.AtDyn, MemFlips: []vm.MemFlip{flip}}
	if !m.Spec.NoSnapshots {
		inj.Resume = t.SnapshotBeforeDyn(flip.AtDyn)
	}
	return inj
}

// Record implements core.FaultModel. The uniform first-flip metadata
// is surfaced by the VM for memory flips too: a single-bit mask (Bits
// = 1) reports its bit position and direction like a register flip.
func (m *Model) Record(exp *core.Experiment, res *vm.Result) {
	core.RecordFlipMeta(exp, res)
}

// Run executes the campaign on the shared experiment engine. Like
// register campaigns, results are reproducible for any worker count.
func Run(spec Spec) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	er, err := (&core.Engine{
		Target:        spec.Target,
		Model:         &Model{Spec: &spec},
		N:             spec.N,
		Seed:          spec.Seed,
		HangFactor:    spec.HangFactor,
		Workers:       spec.Workers,
		Record:        spec.Record,
		NoFusion:      spec.NoFusion,
		NoCompile:     spec.NoCompile,
		NoConverge:    spec.NoConverge,
		Classifier:    spec.Classifier,
		FailurePolicy: spec.OnFailure,
		Service:       spec.Service,
	}).Run()
	if err != nil {
		return nil, err
	}
	r := &Result{
		Spec:        spec,
		Tally:       er.Tally,
		Converged:   er.Converged,
		MemoHits:    er.MemoHits,
		Quarantined: er.Quarantined,
	}
	if spec.Record {
		r.Outcomes = make([]core.Outcome, len(er.Experiments))
		for i := range er.Experiments {
			r.Outcomes[i] = er.Experiments[i].Outcome
		}
	}
	return r, nil
}
