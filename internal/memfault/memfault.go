// Package memfault implements the paper's stated future work (§V):
// multiple-bit faults in MEMORY rather than in registers.
//
// ECC memory corrects single-bit errors and detects double-bit errors per
// word, but three or more flipped bits in the same word can escape ECC
// entirely (§II-A). A memfault experiment therefore flips k distinct bits
// of one 64-bit word of the program's global data at a uniformly sampled
// dynamic instant and classifies the outcome with the same §III-E
// categories as the register campaigns.
//
// Unlike register faults, memory faults are not filtered for liveness: a
// corrupted word may never be read again, so low activation — a high
// Benign share — is part of the phenomenon being measured.
package memfault

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"multiflip/internal/core"
	"multiflip/internal/vm"
	"multiflip/internal/xrand"
)

// Spec describes a memory-fault campaign.
type Spec struct {
	// Target is the prepared workload.
	Target *core.Target
	// Bits is the number of distinct bits flipped in one 64-bit word.
	// 1 and 2 model faults ECC would catch (baseline); >= 3 model the
	// ECC-escaping faults the paper's future work targets.
	Bits int
	// N is the number of experiments.
	N int
	// Seed makes the campaign reproducible.
	Seed uint64
	// HangFactor scales the hang budget (0 = core.DefaultHangFactor).
	HangFactor uint64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// NoSnapshots forces every experiment to replay the fault-free prefix
	// from instruction 0 instead of fast-forwarding from the latest
	// golden-run snapshot at or before the corruption instant. Results are
	// bit-identical either way (the differential tests enforce it).
	NoSnapshots bool
	// NoFusion disables superinstruction execution in every experiment:
	// each instruction dispatches alone through the VM's handler table.
	// Results are bit-identical either way (the fusion differential tests
	// enforce it).
	NoFusion bool
	// NoConverge disables convergence-gated early termination and the
	// fault-equivalence memo: every experiment runs to completion even
	// after its corrupted word is overwritten and the state reconverges
	// with the golden run. Results are bit-identical either way (the
	// convergence differential tests enforce it).
	NoConverge bool
	// Record keeps per-experiment outcomes in the result.
	Record bool
}

func (s *Spec) validate() error {
	if s.Target == nil {
		return fmt.Errorf("memfault: campaign needs a target")
	}
	if s.Bits < 1 || s.Bits > 64 {
		return fmt.Errorf("memfault: bits must be in [1,64], got %d", s.Bits)
	}
	if s.N <= 0 {
		return fmt.Errorf("memfault: campaign needs N > 0")
	}
	if len(s.Target.Prog.Globals) < 8 {
		return fmt.Errorf("memfault: target %s has no global words", s.Target.Name)
	}
	return nil
}

// Result aggregates a memory-fault campaign.
type Result struct {
	// Spec echoes the campaign parameters.
	Spec Spec
	// Tally holds the per-outcome counts and derives the percentage and
	// confidence-interval statistics (N, Pct, SDCPct, DetectionPct, CI95),
	// shared with the register campaigns in internal/core.
	core.Tally
	// Converged counts experiments the VM terminated early because their
	// corrupted state reconverged with the golden run (deterministic).
	Converged int
	// MemoHits counts experiments resolved from the fault-equivalence
	// memo (dependent on worker scheduling; outcomes never are).
	MemoHits int
	// Outcomes holds per-experiment outcomes when Spec.Record is set.
	Outcomes []core.Outcome
}

// experimentHook, when non-nil, is called with each claimed experiment
// index before it runs. Test seam for the error-propagation tests.
var experimentHook func(idx int)

// Run executes the campaign. Like register campaigns, results are
// reproducible for any worker count.
func Run(spec Spec) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.N {
		workers = spec.N
	}
	hangFactor := spec.HangFactor
	if hangFactor == 0 {
		hangFactor = core.DefaultHangFactor
	}
	t := spec.Target
	words := uint64(len(t.Prog.Globals)) / 8

	// Convergence-gated early termination plus the fault-equivalence memo
	// (see core.RunCampaign): experiments whose corrupted word is
	// overwritten before it is read reconverge with the golden run and
	// terminate at the next event-horizon boundary, and experiments that
	// collapse to an already-seen corrupted state reuse the recorded
	// outcome.
	trace := t.Trace
	if spec.NoConverge {
		trace = nil
	}

	outcomes := make([]core.Outcome, spec.N)
	var (
		next      atomic.Int64
		failed    atomic.Bool
		wg        sync.WaitGroup
		errMu     sync.Mutex
		errs      []error
		memo      sync.Map
		converged atomic.Int64
		memoHits  atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				// Stop claiming experiments once any worker errored: the
				// campaign aborts and every further result is discarded.
				i := int(next.Add(1)) - 1
				if i >= spec.N {
					return
				}
				if h := experimentHook; h != nil {
					h(i)
				}
				rng := xrand.ForExperiment(spec.Seed, uint64(i))
				flip := vm.MemFlip{
					AtDyn: rng.Uint64n(t.GoldenDyn),
					Word:  rng.Uint64n(words) * 8,
					Mask:  rng.DistinctBits(spec.Bits, 64),
				}
				// Fast-forward past the fault-free prefix: the corruption
				// instant is known up front, so resume from the latest
				// golden-run snapshot at or before it. The prefix is
				// deterministic and consumes no randomness, so the outcome
				// is bit-identical to a full replay.
				var resume *vm.Snapshot
				if !spec.NoSnapshots {
					resume = t.SnapshotBeforeDyn(flip.AtDyn)
				}
				var (
					hit   core.Outcome
					hitOK bool
				)
				var memoCheck func(vm.StateKey) bool
				if trace != nil {
					memoCheck = func(k vm.StateKey) bool {
						if v, ok := memo.Load(k); ok {
							hit = v.(core.Outcome)
							hitOK = true
							return true
						}
						return false
					}
				}
				res, err := vm.Run(t.Prog, vm.Options{
					MaxDyn:    hangFactor*t.GoldenDyn + 1000,
					MaxOutput: 4*len(t.Golden) + 4096,
					MemFlips:  []vm.MemFlip{flip},
					Resume:    resume,
					NoFuse:    spec.NoFusion,
					Trace:     trace,
					MemoCheck: memoCheck,
				})
				if err != nil {
					// Collect every worker's failure (errors.Join below), not
					// just whichever surfaced first.
					errMu.Lock()
					errs = append(errs, fmt.Errorf("memfault: %s experiment %d: %w", t.Name, i, err))
					errMu.Unlock()
					failed.Store(true)
					return
				}
				if res.Stop == vm.StopMemo && hitOK {
					outcomes[i] = hit
					memoHits.Add(1)
					continue
				}
				o := t.Classify(res)
				outcomes[i] = o
				if res.Converged {
					converged.Add(1)
				}
				if res.PostKeyed {
					memo.Store(res.PostKey, o)
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	r := &Result{
		Spec:      spec,
		Converged: int(converged.Load()),
		MemoHits:  int(memoHits.Load()),
	}
	for _, o := range outcomes {
		r.Add(o)
	}
	if spec.Record {
		r.Outcomes = outcomes
	}
	return r, nil
}
