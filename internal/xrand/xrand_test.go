package xrand

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the SplitMix64 reference
	// implementation (Vigna).
	st := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&st); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestForExperimentIndependence(t *testing.T) {
	seen := make(map[uint64]bool)
	for idx := uint64(0); idx < 1000; idx++ {
		v := ForExperiment(7, idx).Uint64()
		if seen[v] {
			t.Fatalf("experiment streams collide at idx %d", idx)
		}
		seen[v] = true
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(1)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(11, 100)
		if v < 11 || v > 100 {
			t.Fatalf("IntRange(11,100) = %d out of bounds", v)
		}
	}
	// Degenerate range.
	if v := r.IntRange(5, 5); v != 5 {
		t.Fatalf("IntRange(5,5) = %d, want 5", v)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, iters = 10, 100000
	var counts [n]int
	for i := 0; i < iters; i++ {
		counts[r.Intn(n)]++
	}
	for b, c := range counts {
		// Each bucket expects iters/n = 10000; allow 10% slack.
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d has %d hits, expected ~%d", b, c, iters/n)
		}
	}
}

func TestDistinctBits(t *testing.T) {
	r := New(5)
	tests := []struct {
		k, width  int
		wantCount int
	}{
		{1, 32, 1},
		{3, 32, 3},
		{5, 8, 5},
		{30, 8, 8}, // clamped to width
		{30, 32, 30},
		{64, 64, 64},
		{1, 1, 1},
	}
	for _, tt := range tests {
		mask := r.DistinctBits(tt.k, tt.width)
		if got := bits.OnesCount64(mask); got != tt.wantCount {
			t.Errorf("DistinctBits(%d,%d): %d bits set, want %d",
				tt.k, tt.width, got, tt.wantCount)
		}
		if tt.width < 64 && mask>>uint(tt.width) != 0 {
			t.Errorf("DistinctBits(%d,%d): bits set above width", tt.k, tt.width)
		}
	}
}

func TestDistinctBitsProperty(t *testing.T) {
	r := New(8)
	f := func(kRaw, wRaw uint8) bool {
		width := int(wRaw)%64 + 1
		k := int(kRaw)%70 + 1
		mask := r.DistinctBits(k, width)
		want := k
		if want > width {
			want = width
		}
		if bits.OnesCount64(mask) != want {
			return false
		}
		return width == 64 || mask>>uint(width) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestReseedResets(t *testing.T) {
	r := New(17)
	first := make([]uint64, 8)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(17)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("Reseed did not reset stream at %d", i)
		}
	}
}
