// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used to sample fault locations and bit positions.
//
// Fault-injection campaigns must be exactly reproducible: a campaign is
// identified by (program, technique, configuration, N, seed), and every
// experiment derives its own independent stream from the campaign seed and
// the experiment index. xrand implements SplitMix64 for seeding and
// xoshiro256** for the stream, both with well-studied statistical quality
// and zero allocation.
package xrand

import "math/bits"

// SplitMix64 advances the given state and returns the next 64-bit output.
// It is used to derive independent seeds: successive calls on a shared
// state produce decorrelated values.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// one with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, guaranteeing a
// non-degenerate internal state for every seed, including zero.
func New(seed uint64) *Rand {
	var r Rand
	r.Reseed(seed)
	return &r
}

// ForExperiment returns a generator for experiment index idx of a campaign
// with the given seed. Streams for distinct (seed, idx) pairs are
// decorrelated, so campaigns are reproducible independently of how
// experiments are scheduled across workers.
func ForExperiment(seed, idx uint64) *Rand {
	st := seed ^ 0x6a09e667f3bcc909
	_ = SplitMix64(&st)
	st ^= idx * 0x9e3779b97f4a7c15
	return New(SplitMix64(&st))
}

// Reseed resets the generator state from seed.
func (r *Rand) Reseed(seed uint64) {
	st := seed
	r.s[0] = SplitMix64(&st)
	r.s[1] = SplitMix64(&st)
	r.s[2] = SplitMix64(&st)
	r.s[3] = SplitMix64(&st)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniformly distributed value in [0, n). It panics if
// n == 0. Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntRange returns a uniformly distributed int in [lo, hi]. It panics if
// hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// DistinctBits returns a mask with k distinct bits set, each chosen
// uniformly from the low `width` bit positions. k is clamped to width.
func (r *Rand) DistinctBits(k, width int) uint64 {
	if width <= 0 || width > 64 {
		panic("xrand: DistinctBits width out of range")
	}
	if k > width {
		k = width
	}
	var mask uint64
	for set := 0; set < k; {
		bit := uint64(1) << uint(r.Intn(width))
		if mask&bit == 0 {
			mask |= bit
			set++
		}
	}
	return mask
}
