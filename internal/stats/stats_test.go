package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPercent(t *testing.T) {
	tests := []struct {
		count, n int
		want     float64
	}{
		{0, 0, 0},
		{0, 100, 0},
		{50, 100, 50},
		{100, 100, 100},
		{1, 3, 100.0 / 3},
	}
	for _, tt := range tests {
		if got := Percent(tt.count, tt.n); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percent(%d,%d) = %v, want %v", tt.count, tt.n, got, tt.want)
		}
	}
}

func TestNormalCI95KnownValue(t *testing.T) {
	// p = 0.5, n = 10000: 1.96 * sqrt(0.25/10000) = 0.0098 -> 0.98 pp.
	got := NormalCI95(5000, 10000)
	if math.Abs(got-0.98) > 0.001 {
		t.Fatalf("NormalCI95(5000,10000) = %v, want ~0.98", got)
	}
	if NormalCI95(0, 0) != 0 {
		t.Fatal("CI of empty sample must be 0")
	}
}

func TestNormalCI95ShrinksWithN(t *testing.T) {
	if NormalCI95(50, 100) <= NormalCI95(500, 1000) {
		t.Fatal("CI must shrink as n grows at fixed p")
	}
}

func TestWilsonCI95Properties(t *testing.T) {
	f := func(countRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		count := int(countRaw) % (n + 1)
		lo, hi := WilsonCI95(count, n)
		p := Percent(count, n)
		return lo >= 0 && hi <= 100 && lo <= p+1e-9 && hi >= p-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonCI95Extremes(t *testing.T) {
	lo, hi := WilsonCI95(0, 100)
	if lo != 0 || hi <= 0 {
		t.Fatalf("Wilson(0,100) = (%v,%v)", lo, hi)
	}
	lo, hi = WilsonCI95(100, 100)
	if hi != 100 || lo >= 100 {
		t.Fatalf("Wilson(100,100) = (%v,%v)", lo, hi)
	}
}

func TestFig3Buckets(t *testing.T) {
	bs := Fig3Buckets()
	if len(bs) != 3 || bs[0].Label != "1-5" || bs[2].Hi != -1 {
		t.Fatalf("Fig3Buckets = %+v", bs)
	}
}

func TestBucketShares(t *testing.T) {
	hist := make([]int, 32)
	hist[1] = 50  // bucket 1-5
	hist[5] = 10  // bucket 1-5
	hist[7] = 20  // bucket 6-10
	hist[15] = 20 // bucket >10
	hist[0] = 99  // outside all buckets: ignored
	shares := BucketShares(hist, Fig3Buckets())
	want := []float64{60, 20, 20}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-9 {
			t.Fatalf("shares = %v, want %v", shares, want)
		}
	}
}

func TestBucketSharesEmpty(t *testing.T) {
	shares := BucketShares(make([]int, 8), Fig3Buckets())
	for _, s := range shares {
		if s != 0 {
			t.Fatal("empty histogram must give zero shares")
		}
	}
}

func TestBucketSharesSumTo100(t *testing.T) {
	f := func(vals [16]uint8) bool {
		hist := make([]int, 16)
		total := 0
		for i, v := range vals {
			if i == 0 {
				continue // index 0 is outside the buckets
			}
			hist[i] = int(v)
			total += int(v)
		}
		shares := BucketShares(hist, Fig3Buckets())
		sum := shares[0] + shares[1] + shares[2]
		if total == 0 {
			return sum == 0
		}
		return math.Abs(sum-100) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatting(t *testing.T) {
	if got := FormatPct(12.345); got != "12.3" {
		t.Errorf("FormatPct = %q", got)
	}
	if got := FormatPctCI(12.345, 0.678); got != "12.3±0.7" {
		t.Errorf("FormatPctCI = %q", got)
	}
}
