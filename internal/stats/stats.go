// Package stats provides the small statistical toolkit the study needs:
// binomial proportions with 95% confidence intervals (the paper's error
// bars) and histogram bucketing for the activated-error distribution.
package stats

import (
	"fmt"
	"math"
)

// z95 is the standard-normal quantile for two-sided 95% confidence.
const z95 = 1.959963984540054

// Percent returns 100*count/n, or 0 for n == 0.
func Percent(count, n int) float64 {
	if n == 0 {
		return 0
	}
	return 100 * float64(count) / float64(n)
}

// NormalCI95 returns the half-width, in percentage points, of the 95%
// confidence interval of a binomial proportion count/n under the normal
// approximation — the error-bar convention of the paper.
func NormalCI95(count, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(count) / float64(n)
	return 100 * z95 * math.Sqrt(p*(1-p)/float64(n))
}

// WilsonCI95 returns the 95% Wilson score interval of a binomial
// proportion, in percent. It behaves sensibly at the extremes (count = 0
// or count = n), where the normal approximation collapses to zero width.
func WilsonCI95(count, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 0
	}
	p := float64(count) / float64(n)
	nn := float64(n)
	z2 := z95 * z95
	den := 1 + z2/nn
	center := (p + z2/(2*nn)) / den
	half := z95 * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn)) / den
	lo, hi = 100*(center-half), 100*(center+half)
	if lo < 0 {
		lo = 0
	}
	if hi > 100 {
		hi = 100
	}
	return lo, hi
}

// Bucket is a labelled integer range [Lo, Hi] (Hi < 0 means unbounded).
type Bucket struct {
	Label  string
	Lo, Hi int
}

// Fig3Buckets returns the paper's activated-error buckets: 1-5, 6-10, >10.
func Fig3Buckets() []Bucket {
	return []Bucket{
		{Label: "1-5", Lo: 1, Hi: 5},
		{Label: "6-10", Lo: 6, Hi: 10},
		{Label: ">10", Lo: 11, Hi: -1},
	}
}

// BucketShares distributes a histogram (index = value, cell = count) over
// buckets and returns each bucket's percentage share of the histogram
// total. Values outside every bucket are ignored.
func BucketShares(hist []int, buckets []Bucket) []float64 {
	total := 0
	sums := make([]int, len(buckets))
	for v, c := range hist {
		for bi, b := range buckets {
			if v >= b.Lo && (b.Hi < 0 || v <= b.Hi) {
				sums[bi] += c
				total += c
				break
			}
		}
	}
	shares := make([]float64, len(buckets))
	if total == 0 {
		return shares
	}
	for i, s := range sums {
		shares[i] = 100 * float64(s) / float64(total)
	}
	return shares
}

// FormatPct renders a percentage with one decimal, e.g. "12.3".
func FormatPct(v float64) string { return fmt.Sprintf("%.1f", v) }

// FormatPctCI renders a percentage with its CI half-width, e.g.
// "12.3±0.6".
func FormatPctCI(v, ci float64) string { return fmt.Sprintf("%.1f±%.1f", v, ci) }
