// pruning: the paper's third error-space pruning layer (§IV-C3, RQ5).
//
// A recorded single bit-flip campaign tells us which injection locations
// already end in Detection or SDC. Re-running multi-bit experiments whose
// first error is pinned to those exact locations shows that Detection
// locations almost never turn into SDCs (Transition I), while Benign
// locations often do (Transition II) — so multi-bit campaigns only need
// to start from Benign locations.
package main

import (
	"fmt"
	"log"

	"multiflip/internal/analysis"
	"multiflip/internal/core"
	"multiflip/internal/prog"
)

const (
	programName = "stringsearch"
	experiments = 1500
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bench, err := prog.ByName(programName)
	if err != nil {
		return err
	}
	program, err := bench.Build()
	if err != nil {
		return err
	}
	target, err := core.NewTarget(bench.Name, program)
	if err != nil {
		return err
	}

	for _, tech := range core.Techniques() {
		// 1. Recorded single-bit campaign: the per-location outcomes.
		single, err := core.RunCampaign(core.CampaignSpec{
			Target:    target,
			Technique: tech,
			Config:    core.SingleBit(),
			N:         experiments,
			Seed:      11,
			Record:    true,
		})
		if err != nil {
			return err
		}

		// 2. Pinned multi-bit rerun: first error at the same locations,
		// using a worst-case multi-bit configuration (3 errors, window 1).
		pins := make([]core.Pin, len(single.Experiments))
		for i, e := range single.Experiments {
			pins[i] = core.Pin{Cand: e.Cand, Bit: e.Bit}
		}
		multi, err := core.RunCampaign(core.CampaignSpec{
			Target:    target,
			Technique: tech,
			Config:    core.Config{MaxMBF: 3, Win: core.Win(1)},
			Seed:      12,
			Record:    true,
			Pins:      pins,
		})
		if err != nil {
			return err
		}

		// 3. Transition analysis (Fig 6 / Table IV).
		matrix, err := analysis.Transitions(single.Experiments, multi.Experiments)
		if err != nil {
			return err
		}
		fmt.Printf("== %s on %s (n=%d) ==\n", tech, programName, experiments)
		fmt.Printf("Transition I  (Detection -> SDC): %5.1f%%\n", matrix.TransitionI())
		fmt.Printf("Transition II (Benign    -> SDC): %5.1f%%\n", matrix.TransitionII())
		prunable := analysis.PrunableShare(single.Experiments)
		fmt.Printf("prunable first-error locations:  %5.1f%%\n", prunable)
		fmt.Printf("-> start multi-bit experiments only at the %.1f%% Benign locations;\n"+
			"   Detection locations rarely become SDCs under more flips.\n\n", 100-prunable)
	}
	return nil
}
