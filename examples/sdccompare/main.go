// sdccompare: the paper's core question in miniature — does the multiple
// bit-flip model produce more silent data corruptions than the single
// bit-flip model? This example sweeps max-MBF over one program for both
// techniques (win-size = 0 and a small multi-register window) and reports
// where the pessimistic SDC estimate comes from.
package main

import (
	"fmt"
	"log"

	"multiflip/internal/core"
	"multiflip/internal/prog"
)

const (
	programName = "basicmath" // a paper outlier: low detection, high SDC
	experiments = 1500
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bench, err := prog.ByName(programName)
	if err != nil {
		return err
	}
	program, err := bench.Build()
	if err != nil {
		return err
	}
	target, err := core.NewTarget(bench.Name, program)
	if err != nil {
		return err
	}

	for _, tech := range core.Techniques() {
		fmt.Printf("== %s on %s ==\n", tech, programName)
		single, err := campaign(target, tech, core.SingleBit())
		if err != nil {
			return err
		}
		fmt.Printf("single bit-flip SDC: %5.1f%%\n", single.SDCPct())

		bestSDC, bestCfg := single.SDCPct(), core.SingleBit()
		for _, win := range []core.WinSize{core.Win(0), core.Win(1), core.Win(100)} {
			fmt.Printf("win=%-4s:", win)
			for _, mbf := range []int{2, 3, 5, 10, 30} {
				cfg := core.Config{MaxMBF: mbf, Win: win}
				res, err := campaign(target, tech, cfg)
				if err != nil {
					return err
				}
				fmt.Printf("  mbf=%-2d %5.1f%%", mbf, res.SDCPct())
				if res.SDCPct() > bestSDC {
					bestSDC, bestCfg = res.SDCPct(), cfg
				}
			}
			fmt.Println()
		}
		if bestCfg.IsSingle() {
			fmt.Printf("-> the single bit-flip model is already pessimistic (RQ2)\n\n")
		} else {
			fmt.Printf("-> pessimistic SDC%% needs %s (+%.1f pp over single-bit)\n\n",
				bestCfg, bestSDC-single.SDCPct())
		}
	}
	return nil
}

func campaign(target *core.Target, tech core.Technique, cfg core.Config) (*core.CampaignResult, error) {
	return core.RunCampaign(core.CampaignSpec{
		Target:    target,
		Technique: tech,
		Config:    cfg,
		N:         experiments,
		Seed:      7,
	})
}
