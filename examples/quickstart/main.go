// Quickstart: run a single bit-flip fault-injection campaign against one
// of the bundled benchmark programs with both techniques and print the
// outcome distribution — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"multiflip/internal/core"
	"multiflip/internal/prog"
	"multiflip/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Pick a workload from the Table II suite and build it.
	bench, err := prog.ByName("CRC32")
	if err != nil {
		return err
	}
	program, err := bench.Build()
	if err != nil {
		return err
	}

	// 2. Profile it fault-free: golden output + candidate spaces.
	target, err := core.NewTarget(bench.Name, program)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d dynamic instructions, %d read / %d write candidates\n\n",
		target.Name, target.GoldenDyn, target.ReadCands, target.WriteCands)

	// 3. Run one campaign per technique with the single bit-flip model.
	for _, tech := range core.Techniques() {
		res, err := core.RunCampaign(core.CampaignSpec{
			Target:    target,
			Technique: tech,
			Config:    core.SingleBit(),
			N:         2000,
			Seed:      42,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s (n=%d):\n", tech, res.N())
		for _, o := range core.Outcomes() {
			fmt.Printf("  %-12s %6.2f%% ± %.2f\n", o, res.Pct(o),
				stats.NormalCI95(res.Count(o), res.N()))
		}
		fmt.Printf("  error resilience: %.3f\n\n", res.Resilience())
	}
	return nil
}
