// customprogram: assess the error resilience of your own code, not just
// the bundled suite. This example writes a small fixed-point IIR filter
// in the multiflip IR, verifies it fault-free, then measures how its SDC
// rate responds to single and triple bit flips — exactly the workflow a
// user follows to evaluate software-implemented hardening.
package main

import (
	"fmt"
	"log"

	"multiflip/internal/core"
	"multiflip/internal/ir"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildFilter constructs a 64-sample fixed-point low-pass filter:
// y[i] = y[i-1] + (x[i] - y[i-1])/8, with a checksum emitted at the end.
// The duplicate accumulation in "hardened" mode emulates a simple
// software-implemented error-detection mechanism (duplication with
// comparison): mismatching copies abort instead of emitting silent
// corruption.
func buildFilter(hardened bool) (*ir.Program, error) {
	mb := ir.NewModule("iir")
	input := make([]uint32, 64)
	state := uint32(1)
	for i := range input {
		state = state*1664525 + 1013904223
		input[i] = state >> 20
	}
	gIn := mb.GlobalU32s(input)

	f := mb.Func("main", 0)
	y := f.Let(ir.C(0))
	y2 := f.Let(ir.C(0)) // duplicate for the hardened variant
	f.For(ir.C(0), ir.C(64), func(i ir.Reg) {
		x := f.Load32(f.Idx(ir.C(gIn), i, 4), 0)
		f.Mov(y, f.Add(y, f.Sdiv(f.Sub(x, y), ir.C(8))))
		if hardened {
			f.Mov(y2, f.Add(y2, f.Sdiv(f.Sub(x, y2), ir.C(8))))
			f.If(f.Ne(y, y2), func() { f.Abort() })
		}
		f.Out32(y)
	})
	f.RetVoid()
	return mb.Build()
}

func run() error {
	for _, hardened := range []bool{false, true} {
		program, err := buildFilter(hardened)
		if err != nil {
			return err
		}
		target, err := core.NewTarget("iir", program)
		if err != nil {
			return err
		}
		label := "baseline"
		if hardened {
			label = "hardened (duplication+compare)"
		}
		fmt.Printf("== %s: %d dynamic instructions ==\n", label, target.GoldenDyn)
		for _, cfg := range []core.Config{
			core.SingleBit(),
			{MaxMBF: 3, Win: core.Win(1)},
		} {
			res, err := core.RunCampaign(core.CampaignSpec{
				Target:    target,
				Technique: core.InjectOnWrite,
				Config:    cfg,
				N:         3000,
				Seed:      5,
			})
			if err != nil {
				return err
			}
			fmt.Printf("  %-14s SDC %5.1f%%  detected %5.1f%%  benign %5.1f%%  resilience %.3f\n",
				cfg, res.SDCPct(), res.DetectionPct(),
				res.Pct(core.OutcomeBenign), res.Resilience())
		}
		fmt.Println()
	}
	fmt.Println("The hardened variant converts silent corruptions into detected aborts,")
	fmt.Println("which is precisely the class of mechanism the paper's fault models evaluate.")
	return nil
}
