# Developer entry points. Everything here is plain `go` — the Makefile
# only names the invocations CI and the docs refer to.

GO ?= go

# Benchmarks included in the machine-readable summary: the campaign-tier
# perf benchmarks (snapshot/convergence/liveness) plus the VM golden-run
# tiers. Override BENCH to widen or narrow the sweep.
BENCH ?= BenchmarkCampaign(Snapshot|NoSnapshot|NoConverge|Liveness)$$|BenchmarkVMGoldenRun
BENCHTIME ?= 20x
BENCH_OUT ?= BENCH_10.json

.PHONY: build test vet bench bench-summary

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The full human-readable benchmark sweep (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable benchmark summary: run the perf-tier benchmarks and
# condense them to JSON via cmd/benchsummary. $(BENCH_OUT) is committed
# as the reference numbers for this tree; CI regenerates it on every
# push and uploads the fresh copy as an artifact.
bench-summary:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchsummary -o $(BENCH_OUT)
