module multiflip

go 1.24
